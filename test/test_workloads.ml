module Workload = Mirage_core.Workload
module Plan = Mirage_relalg.Plan
module Db = Mirage_engine.Db
module Features = Mirage_workloads.Features
module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value

let test_ssb_shape () =
  let w, db, _ = Mirage_workloads.Ssb.make ~sf:0.5 ~seed:1 in
  Alcotest.(check int) "13 queries" 13 (List.length w.Workload.w_queries);
  Alcotest.(check int) "5 tables" 5 (List.length (Schema.tables w.Workload.w_schema));
  Alcotest.(check bool) "lineorder populated" true (Db.row_count db "lineorder" > 0)

let test_tpch_shape () =
  let w, db, _ = Mirage_workloads.Tpch.make ~sf:0.05 ~seed:1 in
  Alcotest.(check int) "22 queries" 22 (List.length w.Workload.w_queries);
  Alcotest.(check int) "8 tables" 8 (List.length (Schema.tables w.Workload.w_schema));
  Alcotest.(check int) "region fixed" 5 (Db.row_count db "region");
  Alcotest.(check int) "nation fixed" 25 (Db.row_count db "nation")

let test_tpcds_shape () =
  let w, _, _ = Mirage_workloads.Tpcds.make ~sf:0.05 ~seed:1 in
  Alcotest.(check int) "100 queries" 100 (List.length w.Workload.w_queries);
  Alcotest.(check int) "9 tables" 9 (List.length (Schema.tables w.Workload.w_schema))

let test_tpch_feature_coverage () =
  (* the paper's Table 1 columns must all be exercised by the 22 templates *)
  let w, _, _ = Mirage_workloads.Tpch.make ~sf:0.05 ~seed:1 in
  let schema = w.Workload.w_schema in
  let features =
    List.map (fun (q : Workload.query) -> Features.of_plan schema q.Workload.q_plan)
      w.Workload.w_queries
  in
  let any f = List.exists f features in
  Alcotest.(check bool) "arith" true (any (fun x -> x.Features.f_arith));
  Alcotest.(check bool) "like" true (any (fun x -> x.Features.f_like));
  Alcotest.(check bool) "in" true (any (fun x -> x.Features.f_in_pred));
  Alcotest.(check bool) "outer" true (any (fun x -> x.Features.f_outer_join));
  Alcotest.(check bool) "semi" true (any (fun x -> x.Features.f_semi_join));
  Alcotest.(check bool) "anti" true (any (fun x -> x.Features.f_anti_join));
  Alcotest.(check bool) "or across" true (any (fun x -> x.Features.f_or_across_join));
  Alcotest.(check bool) "fk projection" true (any (fun x -> x.Features.f_fk_projection))

let test_feature_detection_units () =
  let w, _, _ = Mirage_workloads.Tpch.make ~sf:0.05 ~seed:1 in
  let schema = w.Workload.w_schema in
  let feat name =
    Features.of_plan schema (Workload.query w name).Workload.q_plan
  in
  Alcotest.(check bool) "q1 plain" true
    (feat "tpch_q1" = { Features.none with Features.f_string_range = false });
  Alcotest.(check bool) "q13 outer+like" true
    (let f = feat "tpch_q13" in f.Features.f_outer_join && f.Features.f_like);
  Alcotest.(check bool) "q19 or-across" true (feat "tpch_q19").Features.f_or_across_join;
  Alcotest.(check bool) "q16 fk projection" true (feat "tpch_q16").Features.f_fk_projection

let test_refgen_determinism () =
  let _, a, _ = Mirage_workloads.Tpch.make ~sf:0.05 ~seed:42 in
  let _, b, _ = Mirage_workloads.Tpch.make ~sf:0.05 ~seed:42 in
  Alcotest.(check string) "same seed same data" (Db.to_csv a "supplier") (Db.to_csv b "supplier")

let test_refgen_perm_string () =
  let _, db, _ = Mirage_workloads.Tpch.make ~sf:0.05 ~seed:1 in
  (* nation names are a permutation: every row distinct *)
  Alcotest.(check int) "25 distinct names" 25 (Db.distinct_count db "nation" "n_name")

let test_refgen_fk_validity () =
  let w, db, _ = Mirage_workloads.Ssb.make ~sf:0.25 ~seed:3 in
  let schema = w.Workload.w_schema in
  List.iter
    (fun (tbl : Schema.table) ->
      List.iter
        (fun (f : Schema.fk) ->
          let fks = Db.column db tbl.Schema.tname f.Schema.fk_col in
          let target = Db.row_count db f.Schema.references in
          Array.iter
            (fun v ->
              match v with
              | Value.Int x ->
                  Alcotest.(check bool) "fk in range" true (x >= 1 && x <= target)
              | _ -> Alcotest.fail "non-int fk")
            fks)
        tbl.Schema.fks)
    (Schema.tables schema)

let test_sf_scaling () =
  let _, small, _ = Mirage_workloads.Ssb.make ~sf:0.5 ~seed:1 in
  let _, big, _ = Mirage_workloads.Ssb.make ~sf:1.0 ~seed:1 in
  Alcotest.(check bool) "scales" true
    (Db.row_count big "lineorder" = 2 * Db.row_count small "lineorder")

let test_take_prefix () =
  let w, _, _ = Mirage_workloads.Tpch.make ~sf:0.05 ~seed:1 in
  Alcotest.(check int) "take 5" 5 (List.length (Workload.take w 5).Workload.w_queries)

let () =
  Alcotest.run "workloads"
    [
      ( "shape",
        [
          Alcotest.test_case "ssb" `Quick test_ssb_shape;
          Alcotest.test_case "tpch" `Quick test_tpch_shape;
          Alcotest.test_case "tpcds" `Quick test_tpcds_shape;
          Alcotest.test_case "take prefix" `Quick test_take_prefix;
        ] );
      ( "features",
        [
          Alcotest.test_case "tpch coverage" `Quick test_tpch_feature_coverage;
          Alcotest.test_case "unit detection" `Quick test_feature_detection_units;
        ] );
      ( "refgen",
        [
          Alcotest.test_case "deterministic" `Quick test_refgen_determinism;
          Alcotest.test_case "perm strings" `Quick test_refgen_perm_string;
          Alcotest.test_case "fk validity" `Quick test_refgen_fk_validity;
          Alcotest.test_case "sf scaling" `Quick test_sf_scaling;
        ] );
    ]
