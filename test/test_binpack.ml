module Binpack = Mirage_binpack.Binpack

let test_exact_fit () =
  match Binpack.best_fit_decreasing ~capacities:[| 5; 7 |] ~sizes:[| 5; 7 |] with
  | Some r ->
      Alcotest.(check bool) "feasible" true
        (Binpack.feasible ~capacities:[| 5; 7 |] ~sizes:[| 5; 7 |] r);
      Alcotest.(check (array int)) "no slack" [| 0; 0 |] r.Binpack.slack
  | None -> Alcotest.fail "should fit"

let test_best_fit_prefers_tight_bin () =
  (* item 4 should go into the 4-bin, not the 10-bin *)
  match Binpack.best_fit_decreasing ~capacities:[| 10; 4 |] ~sizes:[| 4 |] with
  | Some r -> Alcotest.(check int) "tight bin" 1 r.Binpack.assignment.(0)
  | None -> Alcotest.fail "should fit"

let test_infeasible () =
  Alcotest.(check bool) "too big" true
    (Binpack.best_fit_decreasing ~capacities:[| 3 |] ~sizes:[| 4 |] = None);
  Alcotest.(check bool) "sum too big" true
    (Binpack.best_fit_decreasing ~capacities:[| 3; 3 |] ~sizes:[| 2; 2; 2; 2 |] = None)

let test_decreasing_helps () =
  (* FFD succeeds where first-fit in given order would fail *)
  match Binpack.best_fit_decreasing ~capacities:[| 6; 6 |] ~sizes:[| 2; 6; 4 |] with
  | Some r ->
      Alcotest.(check bool) "feasible" true
        (Binpack.feasible ~capacities:[| 6; 6 |] ~sizes:[| 2; 6; 4 |] r)
  | None -> Alcotest.fail "FFD should pack [6][4,2]"

let test_empty () =
  match Binpack.best_fit_decreasing ~capacities:[| 3 |] ~sizes:[||] with
  | Some r -> Alcotest.(check (array int)) "slack untouched" [| 3 |] r.Binpack.slack
  | None -> Alcotest.fail "empty always fits"

let test_negative_rejected () =
  Alcotest.(check bool) "negative size" true
    (try ignore (Binpack.best_fit_decreasing ~capacities:[| 1 |] ~sizes:[| -1 |]); false
     with Invalid_argument _ -> true)

let prop_result_always_feasible =
  QCheck.Test.make ~name:"any Some result is feasible" ~count:300
    QCheck.(pair (list (int_range 0 20)) (list (int_range 0 10)))
    (fun (caps, sizes) ->
      let capacities = Array.of_list caps and sizes = Array.of_list sizes in
      match Binpack.best_fit_decreasing ~capacities ~sizes with
      | Some r -> Binpack.feasible ~capacities ~sizes r
      | None -> true)

let prop_exact_instances_succeed =
  (* one item per bin, exactly its capacity: best-fit-decreasing always packs
     (greedy bin packing is not complete for arbitrary splits, matching the
     paper's need for fallbacks) *)
  QCheck.Test.make ~name:"exact-fit instances always pack" ~count:200
    QCheck.(list_of_size Gen.(1 -- 8) (int_range 1 50))
    (fun caps ->
      let capacities = Array.of_list caps in
      let sizes = Array.of_list caps in
      match Binpack.best_fit_decreasing ~capacities ~sizes with
      | Some r ->
          Binpack.feasible ~capacities ~sizes r
          && Array.for_all (fun s -> s = 0) r.Binpack.slack
      | None -> false)

let () =
  Alcotest.run "binpack"
    [
      ( "best-fit-decreasing",
        [
          Alcotest.test_case "exact fit" `Quick test_exact_fit;
          Alcotest.test_case "prefers tight bin" `Quick test_best_fit_prefers_tight_bin;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "decreasing order helps" `Quick test_decreasing_helps;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "negative rejected" `Quick test_negative_rejected;
          QCheck_alcotest.to_alcotest prop_result_always_feasible;
          QCheck_alcotest.to_alcotest prop_exact_instances_succeed;
        ] );
    ]
