module Cp = Mirage_cp.Cp

let solve_exn m =
  match Cp.solve m with
  | Cp.Sat f, _ -> f
  | Cp.Unsat, _ -> Alcotest.fail "unexpectedly unsat"
  | Cp.Unknown, _ -> Alcotest.fail "node limit"

let test_simple_eq () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:10 and y = Cp.var m ~lo:0 ~hi:10 in
  Cp.linear_eq m [ (1, x); (1, y) ] 7;
  Cp.linear_le m [ (1, x) ] 3;
  let f = solve_exn m in
  Alcotest.(check int) "sum" 7 (f x + f y);
  Alcotest.(check bool) "x bound" true (f x <= 3)

let test_unsat_bounds () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:3 and y = Cp.var m ~lo:0 ~hi:3 in
  Cp.linear_eq m [ (1, x); (1, y) ] 10;
  match Cp.solve m with
  | Cp.Unsat, st ->
      Alcotest.(check bool) "stats on unsat" true (st.Cp.st_nodes >= 1)
  | _ -> Alcotest.fail "expected unsat"

let test_ge_constraint () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:10 and y = Cp.var m ~lo:4 ~hi:10 in
  Cp.ge m x y;
  Cp.linear_le m [ (1, x) ] 4;
  let f = solve_exn m in
  Alcotest.(check int) "x = y = 4" 4 (f x);
  Alcotest.(check int) "y" 4 (f y)

let test_imply_pos () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:2 ~hi:5 and y = Cp.var m ~lo:0 ~hi:5 in
  Cp.imply_pos m x y;
  let f = solve_exn m in
  Alcotest.(check bool) "y forced positive" true (f y >= 1)

let test_imply_pos_contrapositive () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:5 and y = Cp.var m ~lo:0 ~hi:0 in
  Cp.imply_pos m x y;
  let f = solve_exn m in
  Alcotest.(check int) "x forced zero" 0 (f x)

let test_negative_coefficients () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:10 and y = Cp.var m ~lo:0 ~hi:10 in
  (* x - y = 3 *)
  Cp.linear_eq m [ (1, x); (-1, y) ] 3;
  Cp.linear_le m [ (1, y) ] 2;
  let f = solve_exn m in
  Alcotest.(check int) "difference" 3 (f x - f y)

let test_transportation_model () =
  (* the keygen shape: two covers + overlapping group sums *)
  let m = Cp.create () in
  let xs = Array.init 6 (fun i -> Cp.var m ~name:(string_of_int i) ~lo:0 ~hi:100) in
  Cp.linear_eq m [ (1, xs.(0)); (1, xs.(1)); (1, xs.(2)) ] 60;
  Cp.linear_eq m [ (1, xs.(3)); (1, xs.(4)); (1, xs.(5)) ] 40;
  Cp.linear_eq m [ (1, xs.(0)); (1, xs.(3)) ] 30;
  Cp.linear_eq m [ (1, xs.(1)); (1, xs.(4)) ] 45;
  let f = solve_exn m in
  Alcotest.(check int) "cover 1" 60 (f xs.(0) + f xs.(1) + f xs.(2));
  Alcotest.(check int) "group a" 30 (f xs.(0) + f xs.(3));
  Alcotest.(check int) "group b" 45 (f xs.(1) + f xs.(4))

let test_aux_vars_not_searched () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:5 in
  let y = Cp.var m ~aux:true ~lo:0 ~hi:1_000_000 in
  Cp.lp_linear_le m [ (1, y); (-1, x) ] 0;
  Cp.linear_eq m [ (1, x) ] 3;
  let f = solve_exn m in
  Alcotest.(check int) "x" 3 (f x)

let test_lp_objective_guides () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:100 and y = Cp.var m ~lo:0 ~hi:100 in
  Cp.linear_eq m [ (1, x); (1, y) ] 50;
  Cp.set_objective m [ (1, x) ];
  let f = solve_exn m in
  Alcotest.(check int) "still feasible" 50 (f x + f y)

let test_empty_model () =
  let m = Cp.create () in
  Alcotest.(check bool) "trivially sat" true
    (match Cp.solve m with Cp.Sat _, _ -> true | _ -> false)

let test_restart_ladder () =
  (* market-split instance: all-even weights, odd target.  Unsat, but the
     proof needs far more nodes than the budget, so every rung of the
     escalating-restart ladder is node-limited and the outcome is Unknown
     with restarts recorded. *)
  let m = Cp.create () in
  let rng = Mirage_util.Rng.create 42 in
  let xs = Array.init 30 (fun _ -> Cp.var m ~lo:0 ~hi:1) in
  let terms =
    Array.to_list
      (Array.map (fun x -> (2 * (1 + Mirage_util.Rng.int rng 50), x)) xs)
  in
  Cp.linear_eq m terms 101;
  match Cp.solve ~max_nodes:10_000 ~lp_guide:false m with
  | Cp.Unknown, st ->
      Alcotest.(check bool) "restarted" true (st.Cp.st_restarts >= 1);
      Alcotest.(check bool) "nodes near budget" true
        (st.Cp.st_nodes >= 10_000 && st.Cp.st_nodes <= 10_010)
  | Cp.Sat _, _ -> Alcotest.fail "weights are even, target odd: cannot be sat"
  | Cp.Unsat, _ -> Alcotest.fail "unsat proof should exceed the node budget"

let test_var_validation () =
  let m = Cp.create () in
  Alcotest.(check bool) "lo > hi" true
    (try ignore (Cp.var m ~lo:3 ~hi:2); false with Invalid_argument _ -> true)

(* property: random transportation systems built from a known feasible point
   must be solved, and the solution must satisfy every constraint *)
let prop_random_feasible_systems =
  QCheck.Test.make ~name:"systems built from a point are solved correctly" ~count:100
    QCheck.(pair (int_range 2 4) (int_range 2 4))
    (fun (ni, nj) ->
      let rng = Mirage_util.Rng.create ((ni * 7) + nj) in
      let point = Array.init (ni * nj) (fun _ -> Mirage_util.Rng.int rng 50) in
      let m = Cp.create () in
      let xs = Array.init (ni * nj) (fun _ -> Cp.var m ~lo:0 ~hi:200) in
      (* covers per column j *)
      let col_sum j =
        List.init ni (fun i -> point.((i * nj) + j)) |> List.fold_left ( + ) 0
      in
      for j = 0 to nj - 1 do
        Cp.linear_eq m (List.init ni (fun i -> (1, xs.((i * nj) + j)))) (col_sum j)
      done;
      (* one overlapping group sum *)
      let group = List.init nj (fun j -> (1, xs.(j))) in
      let gsum = List.init nj (fun j -> point.(j)) |> List.fold_left ( + ) 0 in
      Cp.linear_eq m group gsum;
      match Cp.solve m with
      | Cp.Sat f, _ ->
          List.for_all
            (fun j ->
              List.init ni (fun i -> f xs.((i * nj) + j)) |> List.fold_left ( + ) 0
              = col_sum j)
            (List.init nj (fun j -> j))
          && List.init nj (fun j -> f xs.(j)) |> List.fold_left ( + ) 0 = gsum
      | (Cp.Unsat | Cp.Unknown), _ -> false)

let () =
  Alcotest.run "cp"
    [
      ( "solver",
        [
          Alcotest.test_case "simple equality" `Quick test_simple_eq;
          Alcotest.test_case "unsat by bounds" `Quick test_unsat_bounds;
          Alcotest.test_case "ge" `Quick test_ge_constraint;
          Alcotest.test_case "imply_pos" `Quick test_imply_pos;
          Alcotest.test_case "imply contrapositive" `Quick test_imply_pos_contrapositive;
          Alcotest.test_case "negative coefficients" `Quick test_negative_coefficients;
          Alcotest.test_case "transportation model" `Quick test_transportation_model;
          Alcotest.test_case "aux vars" `Quick test_aux_vars_not_searched;
          Alcotest.test_case "lp objective" `Quick test_lp_objective_guides;
          Alcotest.test_case "empty model" `Quick test_empty_model;
          Alcotest.test_case "restart ladder" `Quick test_restart_ladder;
          Alcotest.test_case "var validation" `Quick test_var_validation;
          QCheck_alcotest.to_alcotest prop_random_feasible_systems;
        ] );
    ]
