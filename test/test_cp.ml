module Cp = Mirage_cp.Cp

let solve_exn m =
  match Cp.solve m with
  | Cp.Sat f, _ -> f
  | Cp.Unsat, _ -> Alcotest.fail "unexpectedly unsat"
  | Cp.Unknown, _ -> Alcotest.fail "node limit"

let test_simple_eq () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:10 and y = Cp.var m ~lo:0 ~hi:10 in
  Cp.linear_eq m [ (1, x); (1, y) ] 7;
  Cp.linear_le m [ (1, x) ] 3;
  let f = solve_exn m in
  Alcotest.(check int) "sum" 7 (f x + f y);
  Alcotest.(check bool) "x bound" true (f x <= 3)

let test_unsat_bounds () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:3 and y = Cp.var m ~lo:0 ~hi:3 in
  Cp.linear_eq m [ (1, x); (1, y) ] 10;
  match Cp.solve m with
  | Cp.Unsat, st ->
      Alcotest.(check bool) "stats on unsat" true (st.Cp.st_nodes >= 1)
  | _ -> Alcotest.fail "expected unsat"

let test_ge_constraint () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:10 and y = Cp.var m ~lo:4 ~hi:10 in
  Cp.ge m x y;
  Cp.linear_le m [ (1, x) ] 4;
  let f = solve_exn m in
  Alcotest.(check int) "x = y = 4" 4 (f x);
  Alcotest.(check int) "y" 4 (f y)

let test_imply_pos () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:2 ~hi:5 and y = Cp.var m ~lo:0 ~hi:5 in
  Cp.imply_pos m x y;
  let f = solve_exn m in
  Alcotest.(check bool) "y forced positive" true (f y >= 1)

let test_imply_pos_contrapositive () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:5 and y = Cp.var m ~lo:0 ~hi:0 in
  Cp.imply_pos m x y;
  let f = solve_exn m in
  Alcotest.(check int) "x forced zero" 0 (f x)

let test_negative_coefficients () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:10 and y = Cp.var m ~lo:0 ~hi:10 in
  (* x - y = 3 *)
  Cp.linear_eq m [ (1, x); (-1, y) ] 3;
  Cp.linear_le m [ (1, y) ] 2;
  let f = solve_exn m in
  Alcotest.(check int) "difference" 3 (f x - f y)

let test_transportation_model () =
  (* the keygen shape: two covers + overlapping group sums *)
  let m = Cp.create () in
  let xs = Array.init 6 (fun i -> Cp.var m ~name:(string_of_int i) ~lo:0 ~hi:100) in
  Cp.linear_eq m [ (1, xs.(0)); (1, xs.(1)); (1, xs.(2)) ] 60;
  Cp.linear_eq m [ (1, xs.(3)); (1, xs.(4)); (1, xs.(5)) ] 40;
  Cp.linear_eq m [ (1, xs.(0)); (1, xs.(3)) ] 30;
  Cp.linear_eq m [ (1, xs.(1)); (1, xs.(4)) ] 45;
  let f = solve_exn m in
  Alcotest.(check int) "cover 1" 60 (f xs.(0) + f xs.(1) + f xs.(2));
  Alcotest.(check int) "group a" 30 (f xs.(0) + f xs.(3));
  Alcotest.(check int) "group b" 45 (f xs.(1) + f xs.(4))

let test_aux_vars_not_searched () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:5 in
  let y = Cp.var m ~aux:true ~lo:0 ~hi:1_000_000 in
  Cp.lp_linear_le m [ (1, y); (-1, x) ] 0;
  Cp.linear_eq m [ (1, x) ] 3;
  let f = solve_exn m in
  Alcotest.(check int) "x" 3 (f x)

let test_lp_objective_guides () =
  let m = Cp.create () in
  let x = Cp.var m ~lo:0 ~hi:100 and y = Cp.var m ~lo:0 ~hi:100 in
  Cp.linear_eq m [ (1, x); (1, y) ] 50;
  Cp.set_objective m [ (1, x) ];
  let f = solve_exn m in
  Alcotest.(check int) "still feasible" 50 (f x + f y)

let test_empty_model () =
  let m = Cp.create () in
  Alcotest.(check bool) "trivially sat" true
    (match Cp.solve m with Cp.Sat _, _ -> true | _ -> false)

let test_restart_ladder () =
  (* market-split instance: all-even weights, odd target.  Unsat, but the
     proof needs far more nodes than the budget, so every rung of the
     escalating-restart ladder is node-limited and the outcome is Unknown
     with restarts recorded. *)
  let m = Cp.create () in
  let rng = Mirage_util.Rng.create 42 in
  let xs = Array.init 30 (fun _ -> Cp.var m ~lo:0 ~hi:1) in
  let terms =
    Array.to_list
      (Array.map (fun x -> (2 * (1 + Mirage_util.Rng.int rng 50), x)) xs)
  in
  Cp.linear_eq m terms 101;
  match Cp.solve ~max_nodes:10_000 ~lp_guide:false m with
  | Cp.Unknown, st ->
      Alcotest.(check bool) "restarted" true (st.Cp.st_restarts >= 1);
      Alcotest.(check bool) "nodes near budget" true
        (st.Cp.st_nodes >= 10_000 && st.Cp.st_nodes <= 10_010)
  | Cp.Sat _, _ -> Alcotest.fail "weights are even, target odd: cannot be sat"
  | Cp.Unsat, _ -> Alcotest.fail "unsat proof should exceed the node budget"

let test_var_validation () =
  let m = Cp.create () in
  Alcotest.(check bool) "lo > hi" true
    (try ignore (Cp.var m ~lo:3 ~hi:2); false with Invalid_argument _ -> true)

(* property: random transportation systems built from a known feasible point
   must be solved, and the solution must satisfy every constraint *)
let prop_random_feasible_systems =
  QCheck.Test.make ~name:"systems built from a point are solved correctly" ~count:100
    QCheck.(pair (int_range 2 4) (int_range 2 4))
    (fun (ni, nj) ->
      let rng = Mirage_util.Rng.create ((ni * 7) + nj) in
      let point = Array.init (ni * nj) (fun _ -> Mirage_util.Rng.int rng 50) in
      let m = Cp.create () in
      let xs = Array.init (ni * nj) (fun _ -> Cp.var m ~lo:0 ~hi:200) in
      (* covers per column j *)
      let col_sum j =
        List.init ni (fun i -> point.((i * nj) + j)) |> List.fold_left ( + ) 0
      in
      for j = 0 to nj - 1 do
        Cp.linear_eq m (List.init ni (fun i -> (1, xs.((i * nj) + j)))) (col_sum j)
      done;
      (* one overlapping group sum *)
      let group = List.init nj (fun j -> (1, xs.(j))) in
      let gsum = List.init nj (fun j -> point.(j)) |> List.fold_left ( + ) 0 in
      Cp.linear_eq m group gsum;
      match Cp.solve m with
      | Cp.Sat f, _ ->
          List.for_all
            (fun j ->
              List.init ni (fun i -> f xs.((i * nj) + j)) |> List.fold_left ( + ) 0
              = col_sum j)
            (List.init nj (fun j -> j))
          && List.init nj (fun j -> f xs.(j)) |> List.fold_left ( + ) 0 = gsum
      | (Cp.Unsat | Cp.Unknown), _ -> false)

(* --- differential: event kernel vs naive full-sweep reference ------------ *)

(* Test-local reference semantics, independent of the kernel: a full
   constraint sweep repeated to fixpoint (the pre-watch-list algorithm), and
   brute-force enumeration as feasibility ground truth. *)
type ref_constr =
  | R_lin of { terms : (int * int) list; eq : bool; rhs : int }
  | R_ge of int * int
  | R_imp of int * int

exception Ref_fail

let ref_fixpoint constrs lo hi =
  let changed = ref true in
  let tighten_lo v x =
    if x > lo.(v) then begin
      lo.(v) <- x;
      if lo.(v) > hi.(v) then raise Ref_fail;
      changed := true
    end
  in
  let tighten_hi v x =
    if x < hi.(v) then begin
      hi.(v) <- x;
      if lo.(v) > hi.(v) then raise Ref_fail;
      changed := true
    end
  in
  let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
  let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b) in
  while !changed do
    changed := false;
    List.iter
      (function
        | R_lin { terms; eq; rhs } ->
            let sum_lo = ref 0 and sum_hi = ref 0 in
            List.iter
              (fun (a, v) ->
                if a >= 0 then begin
                  sum_lo := !sum_lo + (a * lo.(v));
                  sum_hi := !sum_hi + (a * hi.(v))
                end
                else begin
                  sum_lo := !sum_lo + (a * hi.(v));
                  sum_hi := !sum_hi + (a * lo.(v))
                end)
              terms;
            if !sum_lo > rhs then raise Ref_fail;
            if eq && !sum_hi < rhs then raise Ref_fail;
            List.iter
              (fun (a, v) ->
                if a <> 0 then begin
                  let term_lo = if a >= 0 then a * lo.(v) else a * hi.(v) in
                  let term_hi = if a >= 0 then a * hi.(v) else a * lo.(v) in
                  let ub = rhs - (!sum_lo - term_lo) in
                  if a > 0 then tighten_hi v (fdiv ub a)
                  else tighten_lo v (cdiv (-ub) (-a));
                  if eq then begin
                    let lb = rhs - (!sum_hi - term_hi) in
                    if a > 0 then tighten_lo v (cdiv lb a)
                    else tighten_hi v (fdiv (-lb) (-a))
                  end
                end)
              terms
        | R_ge (x, y) ->
            tighten_lo x lo.(y);
            tighten_hi y hi.(x)
        | R_imp (x, y) ->
            if hi.(y) = 0 then tighten_hi x 0;
            if lo.(x) > 0 then tighten_lo y 1)
      constrs
  done

let ref_holds constrs a =
  List.for_all
    (function
      | R_lin { terms; eq; rhs } ->
          let s = List.fold_left (fun acc (c, v) -> acc + (c * a.(v))) 0 terms in
          if eq then s = rhs else s <= rhs
      | R_ge (x, y) -> a.(x) >= a.(y)
      | R_imp (x, y) -> a.(x) <= 0 || a.(y) > 0)
    constrs

(* exhaustive feasibility over the (tiny) initial box *)
let ref_brute_force constrs lo hi =
  let n = Array.length lo in
  let a = Array.copy lo in
  let rec go v = if v = n then ref_holds constrs a
    else begin
      let found = ref false in
      let x = ref lo.(v) in
      while (not !found) && !x <= hi.(v) do
        a.(v) <- !x;
        if go (v + 1) then found := true;
        incr x
      done;
      !found
    end
  in
  go 0

(* random small system, posted simultaneously to the kernel and to the
   reference representation *)
let gen_system seed =
  let rng = Mirage_util.Rng.create seed in
  let n = 3 + Mirage_util.Rng.int rng 4 in
  let lo0 = Array.init n (fun _ -> Mirage_util.Rng.int rng 3) in
  let hi0 = Array.init n (fun i -> lo0.(i) + Mirage_util.Rng.int rng 4) in
  let m = Cp.create () in
  let xs = Array.init n (fun i -> Cp.var m ~lo:lo0.(i) ~hi:hi0.(i)) in
  let constrs = ref [] in
  let nc = 1 + Mirage_util.Rng.int rng 5 in
  for _ = 1 to nc do
    match Mirage_util.Rng.int rng 4 with
    | 0 | 1 ->
        let k = 2 + Mirage_util.Rng.int rng (min 3 n - 1) in
        let terms =
          List.init k (fun _ ->
              let c =
                match Mirage_util.Rng.int rng 4 with
                | 0 -> -2
                | 1 -> -1
                | 2 -> 1
                | _ -> 2
              in
              (c, Mirage_util.Rng.int rng n))
        in
        let eq = Mirage_util.Rng.int rng 2 = 0 in
        let rhs = Mirage_util.Rng.int rng 10 - 2 in
        if eq then Cp.linear_eq m (List.map (fun (c, v) -> (c, xs.(v))) terms) rhs
        else Cp.linear_le m (List.map (fun (c, v) -> (c, xs.(v))) terms) rhs;
        constrs := R_lin { terms; eq; rhs } :: !constrs
    | 2 ->
        let x = Mirage_util.Rng.int rng n and y = Mirage_util.Rng.int rng n in
        Cp.ge m xs.(x) xs.(y);
        constrs := R_ge (x, y) :: !constrs
    | _ ->
        let x = Mirage_util.Rng.int rng n and y = Mirage_util.Rng.int rng n in
        Cp.imply_pos m xs.(x) xs.(y);
        constrs := R_imp (x, y) :: !constrs
  done;
  (m, List.rev !constrs, lo0, hi0)

let prop_differential_kernel =
  QCheck.Test.make
    ~name:"event kernel == naive fixpoint bounds, solve == brute-force verdict"
    ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let m, constrs, lo0, hi0 = gen_system seed in
      (* 1. root propagation: identical fixpoint bounds or identical failure *)
      let reference =
        let lo = Array.copy lo0 and hi = Array.copy hi0 in
        match ref_fixpoint constrs lo hi with
        | () -> Some (lo, hi)
        | exception Ref_fail -> None
      in
      let bounds_ok =
        match (reference, Cp.root_fixpoint m) with
        | None, None -> true
        | Some (rlo, rhi), Some (klo, khi) -> rlo = klo && rhi = khi
        | _ -> false
      in
      (* 2. full solve: verdict must match exhaustive enumeration, and a Sat
         witness must actually satisfy every constraint *)
      let sat_truth = ref_brute_force constrs lo0 hi0 in
      let verdict_ok =
        match Cp.solve ~lp_guide:false m with
        | Cp.Sat f, _ -> sat_truth && ref_holds constrs (Cp.solution_of_fun m f)
        | Cp.Unsat, _ -> not sat_truth
        | Cp.Unknown, _ -> false
      in
      if not (bounds_ok && verdict_ok) then begin
        (let o, _ = Cp.solve ~lp_guide:false m in
         Printf.eprintf "outcome=%s\n"
           (match o with
           | Cp.Sat f ->
               Printf.sprintf "Sat [%s]"
                 (String.concat ";"
                    (Array.to_list
                       (Array.map string_of_int (Cp.solution_of_fun m f))))
           | Cp.Unsat -> "Unsat"
           | Cp.Unknown -> "Unknown"));
        Printf.eprintf "seed=%d bounds_ok=%b verdict_ok=%b sat_truth=%b\n" seed
          bounds_ok verdict_ok sat_truth;
        Printf.eprintf "lo0=[%s] hi0=[%s]\n"
          (String.concat ";" (Array.to_list (Array.map string_of_int lo0)))
          (String.concat ";" (Array.to_list (Array.map string_of_int hi0)));
        List.iter
          (function
            | R_lin { terms; eq; rhs } ->
                Printf.eprintf "  lin %s %s %d\n"
                  (String.concat "+"
                     (List.map (fun (c, v) -> Printf.sprintf "%d*x%d" c v) terms))
                  (if eq then "=" else "<=")
                  rhs
            | R_ge (x, y) -> Printf.eprintf "  x%d >= x%d\n" x y
            | R_imp (x, y) -> Printf.eprintf "  x%d>0 -> x%d>0\n" x y)
          constrs
      end;
      bounds_ok && verdict_ok)

let () =
  Alcotest.run "cp"
    [
      ( "solver",
        [
          Alcotest.test_case "simple equality" `Quick test_simple_eq;
          Alcotest.test_case "unsat by bounds" `Quick test_unsat_bounds;
          Alcotest.test_case "ge" `Quick test_ge_constraint;
          Alcotest.test_case "imply_pos" `Quick test_imply_pos;
          Alcotest.test_case "imply contrapositive" `Quick test_imply_pos_contrapositive;
          Alcotest.test_case "negative coefficients" `Quick test_negative_coefficients;
          Alcotest.test_case "transportation model" `Quick test_transportation_model;
          Alcotest.test_case "aux vars" `Quick test_aux_vars_not_searched;
          Alcotest.test_case "lp objective" `Quick test_lp_objective_guides;
          Alcotest.test_case "empty model" `Quick test_empty_model;
          Alcotest.test_case "restart ladder" `Quick test_restart_ladder;
          Alcotest.test_case "var validation" `Quick test_var_validation;
          QCheck_alcotest.to_alcotest prop_random_feasible_systems;
          QCheck_alcotest.to_alcotest prop_differential_kernel;
        ] );
    ]
