module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Parser = Mirage_sql.Parser
module Schema = Mirage_sql.Schema
module Plan = Mirage_relalg.Plan
module Db = Mirage_engine.Db
module Rel = Mirage_engine.Rel
module Exec = Mirage_engine.Exec

let schema =
  Schema.make
    [
      {
        Schema.tname = "s";
        pk = "s_pk";
        nonkeys = [ { Schema.cname = "s1"; domain_size = 4; kind = Schema.Kint } ];
        fks = [];
        row_count = 4;
      };
      {
        Schema.tname = "t";
        pk = "t_pk";
        nonkeys =
          [
            { Schema.cname = "t1"; domain_size = 5; kind = Schema.Kint };
            { Schema.cname = "t2"; domain_size = 4; kind = Schema.Kint };
          ];
        fks = [ { Schema.fk_col = "t_fk"; references = "s" } ];
        row_count = 8;
      };
    ]

let ints l = Array.of_list (List.map (fun x -> Value.Int x) l)

(* S has pks 1..4; T rows reference 1,2,2,3,3,3,4,4 (Example 2.4) *)
let db () =
  let db = Db.create schema in
  Db.put db "s" [ ("s_pk", ints [ 1; 2; 3; 4 ]); ("s1", ints [ 10; 20; 30; 40 ]) ];
  Db.put db "t"
    [
      ("t_pk", ints [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
      ("t_fk", ints [ 1; 2; 2; 3; 3; 3; 4; 4 ]);
      ("t1", ints [ 1; 2; 3; 4; 4; 4; 5; 3 ]);
      ("t2", ints [ 1; 2; 2; 2; 3; 4; 1; 3 ]);
    ];
  db

let env =
  Pred.Env.of_list
    [
      ("p1", Pred.Env.Scalar (Value.Int 30));
      ("p2", Pred.Env.Scalar (Value.Int 2));
    ]

(* --- Db ------------------------------------------------------------------ *)

let test_db_counts () =
  let db = db () in
  Alcotest.(check int) "|s|" 4 (Db.row_count db "s");
  Alcotest.(check int) "|t|" 8 (Db.row_count db "t");
  Alcotest.(check int) "unpopulated" 0 (Db.row_count db "nope")

let test_db_distinct () =
  let db = db () in
  Alcotest.(check int) "|t|_t1" 5 (Db.distinct_count db "t" "t1");
  Alcotest.(check int) "|t|_t2" 4 (Db.distinct_count db "t" "t2")

let test_db_put_validation () =
  let db = Db.create schema in
  Alcotest.(check bool) "missing column" true
    (try Db.put db "s" [ ("s_pk", ints [ 1 ]) ]; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "ragged" true
    (try
       Db.put db "s" [ ("s_pk", ints [ 1; 2 ]); ("s1", ints [ 1 ]) ];
       false
     with Invalid_argument _ -> true)

let test_db_csv () =
  let db = db () in
  let lines = String.split_on_char '\n' (Db.to_csv db "s") in
  Alcotest.(check string) "header" "s_pk,s1" (List.hd lines);
  Alcotest.(check string) "first row" "1,10" (List.nth lines 1)

let test_db_csv_roundtrip () =
  let src = db () in
  let dst = Db.create schema in
  Db.load_csv dst "s" (Db.to_csv src "s");
  Db.load_csv dst "t" (Db.to_csv src "t");
  Alcotest.(check string) "s round trip" (Db.to_csv src "s") (Db.to_csv dst "s");
  Alcotest.(check string) "t round trip" (Db.to_csv src "t") (Db.to_csv dst "t")

let test_db_csv_rejects () =
  let dst = Db.create schema in
  Alcotest.(check bool) "header mismatch" true
    (try Db.load_csv dst "s" "wrong,header\n1,2\n"; false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad cell" true
    (try Db.load_csv dst "s" "s_pk,s1\nx,2\n"; false
     with Invalid_argument _ -> true)

(* --- Rel ------------------------------------------------------------------ *)

let test_rel_distinct () =
  let r =
    Rel.of_rows [| "a"; "b" |]
      [| [| Value.Int 1; Value.Int 2 |]; [| Value.Int 1; Value.Int 2 |];
         [| Value.Int 1; Value.Int 3 |] |]
  in
  Alcotest.(check int) "distinct pairs" 2 (Rel.card (Rel.distinct_on r [ "a"; "b" ]));
  Alcotest.(check int) "distinct a" 1 (Rel.distinct_count_on r [ "a" ]);
  Alcotest.(check int) "int set" 1 (Hashtbl.length (Rel.int_set r "a"))

(* --- selection ------------------------------------------------------------ *)

let test_selection_counts () =
  let db = db () in
  Alcotest.(check int) "s1 < 30" 2
    (Exec.count_select db ~env ~table:"s" (Parser.pred "s1 < $p1"));
  Alcotest.(check int) "t1 > 2" 6
    (Exec.count_select db ~env ~table:"t" (Parser.pred "t1 > $p2"));
  Alcotest.(check int) "arith" 4
    (Exec.count_select db ~env ~table:"t" (Parser.pred "t1 - t2 > 0"))

(* --- joins: Table 2 output sizes ------------------------------------------ *)

(* With V_l = sigma(s1<30)(S) = {1,2} and V_r = sigma(t1>2)(T) = rows 3..8:
   matched pairs: rows with fk in {1,2} among t1>2 -> rows 3 (fk 2) and 8? t1
   values by row: [1;2;3;4;4;4;5;3], so t1>2 keeps rows 3,4,5,6,7,8 with fks
   [2;3;3;3;4;4].  Matches against {1,2}: row 3 only -> jcc=1, jdc=1. *)
let join_of jt =
  Plan.Join
    {
      jt;
      pk_table = "s";
      fk_table = "t";
      fk_col = "t_fk";
      left = Plan.Select (Parser.pred "s1 < $p1", Plan.Table "s");
      right = Plan.Select (Parser.pred "t1 > $p2", Plan.Table "t");
    }

let sizes jt =
  let db = db () in
  let a = Exec.analyze db ~env (join_of jt) in
  let _, stat = List.hd a.Exec.join_stats |> fun (i, s) -> (i, s) in
  (a.Exec.cards.(0), stat)

let test_join_stats () =
  let _, stat = sizes Plan.Inner in
  Alcotest.(check int) "jcc" 1 stat.Exec.jcc;
  Alcotest.(check int) "jdc" 1 stat.Exec.jdc;
  Alcotest.(check int) "|Vl|" 2 stat.Exec.left_card;
  Alcotest.(check int) "|Vr|" 6 stat.Exec.right_card

(* Table 2: sizes in terms of |Vl|=2, |Vr|=6, jcc=1, jdc=1 *)
let test_join_sizes_table2 () =
  let check jt expect =
    let size, _ = sizes jt in
    Alcotest.(check int) (Plan.node_label (join_of jt)) expect size
  in
  check Plan.Inner 1 (* n_jcc *);
  check Plan.Left_outer 2 (* |Vl| - jdc + jcc = 2-1+1 *);
  check Plan.Right_outer 6 (* |Vr| *);
  check Plan.Full_outer 7 (* |Vl| - jdc + |Vr| = 2-1+6 *);
  check Plan.Left_semi 1 (* jdc *);
  check Plan.Right_semi 1 (* jcc *);
  check Plan.Left_anti 1 (* |Vl| - jdc *);
  check Plan.Right_anti 5 (* |Vr| - jcc *)

let test_projection_distinct () =
  let db = db () in
  let plan = Plan.Project { cols = [ "t_fk" ]; input = Plan.Table "t" } in
  let a = Exec.analyze db ~env plan in
  Alcotest.(check int) "distinct fks" 4 a.Exec.cards.(0)

let test_projection_over_join () =
  let db = db () in
  let plan = Plan.Project { cols = [ "t_fk" ]; input = join_of Plan.Inner } in
  Alcotest.(check int) "distinct matched fks" 1
    (Rel.card (Exec.run db ~env plan))

let test_nested_join_cards () =
  (* cards array uses preorder indexing *)
  let db = db () in
  let plan = Plan.Select (Parser.pred "t2 >= 1", join_of Plan.Inner) in
  let a = Exec.analyze db ~env plan in
  Alcotest.(check int) "outer select" 1 a.Exec.cards.(0);
  Alcotest.(check int) "join below" 1 a.Exec.cards.(1);
  Alcotest.(check int) "left select" 2 a.Exec.cards.(2);
  Alcotest.(check int) "s table" 4 a.Exec.cards.(3)

let test_outer_join_null_padding () =
  let db = db () in
  let rel = Exec.run db ~env (join_of Plan.Left_outer) in
  (* the unmatched S row (pk 1, since fk 1's t1=1 fails t1>2) has nulls *)
  let has_null_row =
    Array.exists (fun row -> Array.exists (fun v -> v = Value.Null) row)
      (Rel.rows rel)
  in
  Alcotest.(check bool) "padded row exists" true has_null_row

let test_aggregate_groups () =
  let db = db () in
  let plan =
    Plan.Aggregate
      {
        group_by = [ "t_fk" ];
        aggs = [ (Plan.Count, "t_pk"); (Plan.Sum, "t1"); (Plan.Min, "t2"); (Plan.Max, "t2") ];
        input = Plan.Table "t";
      }
  in
  let rel = Exec.run db ~env plan in
  Alcotest.(check int) "4 groups" 4 (Rel.card rel);
  (* group fk=3 has rows with t1 = 4,4,4 and t2 = 2,3,4 *)
  let fki = Rel.col_index rel "t_fk" in
  let row =
    Array.to_list (Rel.rows rel)
    |> List.find (fun r -> r.(fki) = Value.Int 3)
  in
  Alcotest.(check bool) "count 3" true (row.(Rel.col_index rel "count_t_pk") = Value.Int 3);
  Alcotest.(check bool) "sum 12" true (row.(Rel.col_index rel "sum_t1") = Value.Float 12.0);
  Alcotest.(check bool) "min 2" true (row.(Rel.col_index rel "min_t2") = Value.Float 2.0);
  Alcotest.(check bool) "max 4" true (row.(Rel.col_index rel "max_t2") = Value.Float 4.0)

let test_aggregate_global () =
  let db = db () in
  let plan =
    Plan.Aggregate
      { group_by = []; aggs = [ (Plan.Avg, "t1") ]; input = Plan.Table "t" }
  in
  let rel = Exec.run db ~env plan in
  Alcotest.(check int) "one global group" 1 (Rel.card rel);
  match (Rel.rows rel).(0).(0) with
  | Value.Float avg -> Alcotest.(check (float 1e-9)) "avg" 3.25 avg
  | _ -> Alcotest.fail "expected float"

let test_aggregate_over_empty () =
  let db = db () in
  let plan =
    Plan.Aggregate
      {
        group_by = [];
        aggs = [ (Plan.Sum, "t1") ];
        input = Plan.Select (Parser.pred "t1 > 99", Plan.Table "t");
      }
  in
  Alcotest.(check int) "no groups from no rows" 0 (Rel.card (Exec.run db ~env plan))

let prop_join_size_equations =
  (* generate random small PK-FK instances and check the Table 2 identities
     between the 8 join types *)
  QCheck.Test.make ~name:"Table 2 size identities on random instances" ~count:200
    QCheck.(pair (int_range 1 6) (int_range 0 12))
    (fun (ns, nt) ->
      let db = Db.create schema in
      let seed = (ns * 31) + nt in
      let rng = Mirage_util.Rng.create seed in
      let ns = min ns 4 in
      Db.put db "s"
        [
          ("s_pk", Array.init ns (fun i -> Value.Int (i + 1)));
          ("s1", Array.init ns (fun _ -> Value.Int (Mirage_util.Rng.int_in rng 10 40)));
        ];
      Db.put db "t"
        [
          ("t_pk", Array.init nt (fun i -> Value.Int (i + 1)));
          ("t_fk", Array.init nt (fun _ -> Value.Int (Mirage_util.Rng.int_in rng 1 ns)));
          ("t1", Array.init nt (fun _ -> Value.Int (Mirage_util.Rng.int_in rng 1 5)));
          ("t2", Array.init nt (fun _ -> Value.Int (Mirage_util.Rng.int_in rng 1 4)));
        ];
      let size jt = (Exec.analyze db ~env (join_of jt)).Exec.cards.(0) in
      let stat jt = List.hd (Exec.analyze db ~env (join_of jt)).Exec.join_stats |> snd in
      let s = stat Plan.Inner in
      size Plan.Inner = s.Exec.jcc
      && size Plan.Left_outer = s.Exec.left_card - s.Exec.jdc + s.Exec.jcc
      && size Plan.Right_outer = s.Exec.right_card
      && size Plan.Full_outer = s.Exec.left_card - s.Exec.jdc + s.Exec.right_card
      && size Plan.Left_semi = s.Exec.jdc
      && size Plan.Right_semi = s.Exec.jcc
      && size Plan.Left_anti = s.Exec.left_card - s.Exec.jdc
      && size Plan.Right_anti = s.Exec.right_card - s.Exec.jcc)

let () =
  Alcotest.run "engine"
    [
      ( "db",
        [
          Alcotest.test_case "counts" `Quick test_db_counts;
          Alcotest.test_case "distinct" `Quick test_db_distinct;
          Alcotest.test_case "put validation" `Quick test_db_put_validation;
          Alcotest.test_case "csv" `Quick test_db_csv;
          Alcotest.test_case "csv round trip" `Quick test_db_csv_roundtrip;
          Alcotest.test_case "csv rejects bad input" `Quick test_db_csv_rejects;
        ] );
      ("rel", [ Alcotest.test_case "distinct" `Quick test_rel_distinct ]);
      ( "exec",
        [
          Alcotest.test_case "selection counts" `Quick test_selection_counts;
          Alcotest.test_case "join stats" `Quick test_join_stats;
          Alcotest.test_case "Table 2 join sizes" `Quick test_join_sizes_table2;
          Alcotest.test_case "projection distinct" `Quick test_projection_distinct;
          Alcotest.test_case "projection over join" `Quick test_projection_over_join;
          Alcotest.test_case "nested cards preorder" `Quick test_nested_join_cards;
          Alcotest.test_case "outer join null padding" `Quick test_outer_join_null_padding;
          Alcotest.test_case "aggregate groups" `Quick test_aggregate_groups;
          Alcotest.test_case "aggregate global" `Quick test_aggregate_global;
          Alcotest.test_case "aggregate over empty" `Quick test_aggregate_over_empty;
          QCheck_alcotest.to_alcotest prop_join_size_equations;
        ] );
    ]
