(* Streamed fact-table generation (Driver.config.chunk_rows): the
   chunk-at-a-time pipeline must produce byte-identical databases and
   parameters to the monolithic path — across workloads, domain counts and
   chunk sizes (including a non-dividing one), through a kill-and-resume
   export mid-fact-table, and with the big-rows threshold scoped to the
   chunk and restored afterwards. *)

module Driver = Mirage_core.Driver
module Chunk_plan = Mirage_core.Chunk_plan
module Scale_out = Mirage_core.Scale_out
module Sink = Mirage_engine.Sink
module Db = Mirage_engine.Db
module Col = Mirage_engine.Col
module Par = Mirage_par.Par
module Schema = Mirage_sql.Schema

let fresh_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Sink.mkdir_p base;
  base

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let table_names db =
  List.map (fun (t : Schema.table) -> t.Schema.tname) (Schema.tables (Db.schema db))

let concat_shards dir tname =
  let rec go k acc =
    let p = Filename.concat dir (Printf.sprintf "%s.csv.%d" tname k) in
    if Sys.file_exists p then go (k + 1) (acc ^ read_file p) else acc
  in
  go 0 ""

let generate ?chunk_rows ?(domains = 1) make ~sf =
  let workload, ref_db, prod_env = make ~sf ~seed:7 in
  let config =
    { Driver.default_config with
      seed = 42; batch_size = 1_000_000; domains; chunk_rows }
  in
  match Driver.generate ~config workload ~ref_db ~prod_env with
  | Error d -> Alcotest.fail (Mirage_core.Diag.to_string d)
  | Ok r -> r

let export db dir = Scale_out.to_csv_dir ~db ~copies:1 ~dir ()

let largest_table db =
  List.fold_left (fun m t -> max m (Db.row_count db t)) 1 (table_names db)

(* --- unit: chunk plans ----------------------------------------------------- *)

let test_chunk_plan_ranges () =
  Alcotest.(check (list (pair int int)))
    "ragged tail" [ (0, 3); (3, 3); (6, 3); (9, 1) ]
    (Array.to_list (Chunk_plan.ranges ~rows:10 ~chunk_rows:3));
  Alcotest.(check (list (pair int int)))
    "single chunk when rows <= chunk" [ (0, 10) ]
    (Array.to_list (Chunk_plan.ranges ~rows:10 ~chunk_rows:37));
  Alcotest.(check (list (pair int int)))
    "empty table" []
    (Array.to_list (Chunk_plan.ranges ~rows:0 ~chunk_rows:4));
  Alcotest.check_raises "chunk_rows 0 rejected"
    (Invalid_argument "Chunk_plan: chunk_rows must be >= 1") (fun () ->
      ignore (Chunk_plan.ranges ~rows:10 ~chunk_rows:0))

let test_chunk_plan_covers () =
  let t = Chunk_plan.make ~table:"t" ~rows:100 ~chunk_rows:33 in
  Alcotest.(check int) "chunk count" 4 (Chunk_plan.n_chunks t);
  let covered = ref 0 and next_lo = ref 0 in
  Chunk_plan.iter t (fun c ->
      Alcotest.(check int) "contiguous" !next_lo c.Chunk_plan.c_lo;
      covered := !covered + c.Chunk_plan.c_rows;
      next_lo := c.Chunk_plan.c_lo + c.Chunk_plan.c_rows);
  Alcotest.(check int) "covers every row exactly once" 100 !covered

(* driver-side plans: one per table, covering the generated row counts *)
let test_driver_plans () =
  let r = generate ~chunk_rows:37 Mirage_workloads.Ssb.make ~sf:0.05 in
  let db = r.Driver.r_db in
  Alcotest.(check int)
    "one plan per table"
    (List.length (table_names db))
    (List.length r.Driver.r_chunk_plans);
  List.iter
    (fun (p : Chunk_plan.t) ->
      let covered = ref 0 in
      Chunk_plan.iter p (fun c -> covered := !covered + c.Chunk_plan.c_rows);
      Alcotest.(check int)
        (p.Chunk_plan.cp_table ^ " plan covers the table")
        (Db.row_count db p.Chunk_plan.cp_table)
        !covered)
    r.Driver.r_chunk_plans;
  let mono = generate Mirage_workloads.Ssb.make ~sf:0.05 in
  Alcotest.(check int)
    "monolithic run has no plans" 0
    (List.length mono.Driver.r_chunk_plans)

(* --- streamed = monolithic byte identity ----------------------------------- *)

let check_identity ~label mono r =
  let dir_m = fresh_dir "mirage_stream_m" and dir_s = fresh_dir "mirage_stream_s" in
  export mono.Driver.r_db dir_m;
  export r.Driver.r_db dir_s;
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s streamed = monolithic" label t)
        true
        (String.equal
           (read_file (Filename.concat dir_m (t ^ ".csv")))
           (read_file (Filename.concat dir_s (t ^ ".csv")))))
    (table_names mono.Driver.r_db);
  rm_rf dir_m;
  rm_rf dir_s;
  Alcotest.(check bool)
    (label ^ ": parameters identical")
    true
    (Mirage_sql.Pred.Env.bindings mono.Driver.r_env
    = Mirage_sql.Pred.Env.bindings r.Driver.r_env)

let test_stream_identity make ~sf () =
  let mono = generate make ~sf in
  let largest = largest_table mono.Driver.r_db in
  (* a power-of-two-ish size and a non-dividing prime, so the last chunk of
     every fact table is ragged in at least one configuration *)
  List.iter
    (fun chunk_rows ->
      List.iter
        (fun domains ->
          let r = generate ~chunk_rows ~domains make ~sf in
          check_identity
            ~label:(Printf.sprintf "chunk=%d domains=%d" chunk_rows domains)
            mono r)
        [ 1; 2; 4 ])
    [ max 2 (largest / 4); 37 ]

(* --- kill-and-resume export of a streamed database ------------------------- *)

let test_stream_crash_resume () =
  let mono = generate Mirage_workloads.Ssb.make ~sf:0.05 in
  let r = generate ~chunk_rows:37 Mirage_workloads.Ssb.make ~sf:0.05 in
  let db = r.Driver.r_db in
  let dir_m = fresh_dir "mirage_stream_cm" and dir_c = fresh_dir "mirage_stream_cc" in
  export mono.Driver.r_db dir_m;
  (* several shards per fact table, crash after two commits: the kill lands
     mid-fact-table, and the resumed run must complete byte-identically.
     The export threshold is lowered below the fact tables so both runs take
     the per-window streaming branch rather than the cached whole-table
     template fast path — dimensions stay under it and mix both paths. *)
  let chunk_rows = max 1 (largest_table db / 3) in
  let run_id = "stream-resume" in
  let saved_thr = Col.big_rows () in
  Fun.protect
    ~finally:(fun () -> Col.set_big_rows saved_thr)
    (fun () ->
      Col.set_big_rows (max 2 (chunk_rows / 2));
      let crashed =
        Par.with_pool ~domains:2 (fun pool ->
            let backend =
              Sink.faulty
                { Sink.no_faults with Sink.crash_after_shards = Some 2 }
                Sink.os_backend
            in
            match
              Scale_out.to_csv_chunked ~pool ~backend ~db ~copies:1 ~chunk_rows
                ~dir:dir_c ~run_id ()
            with
            | _ -> false
            | exception Sink.Injected_crash _ -> true)
      in
      Alcotest.(check bool) "run 1 crashed" true crashed;
      Par.with_pool ~domains:2 (fun pool ->
          let rep =
            Scale_out.to_csv_chunked ~pool ~resume:true ~db ~copies:1
              ~chunk_rows ~dir:dir_c ~run_id ()
          in
          Alcotest.(check int) "committed prefix resumed" 2
            rep.Scale_out.cr_resumed));
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: resumed streamed export = monolithic" t)
        true
        (String.equal
           (read_file (Filename.concat dir_m (t ^ ".csv")))
           (concat_shards dir_c t)))
    (table_names db);
  rm_rf dir_m;
  rm_rf dir_c

(* --- threshold scoping ----------------------------------------------------- *)

(* a streamed run narrows the big-rows threshold to one chunk for its own
   duration and must restore the caller's value on the way out *)
let test_big_rows_restored () =
  let saved = Col.big_rows () in
  Fun.protect
    ~finally:(fun () -> Col.set_big_rows saved)
    (fun () ->
      Col.set_big_rows 123_456;
      let r = generate ~chunk_rows:37 Mirage_workloads.Ssb.make ~sf:0.05 in
      ignore r.Driver.r_db;
      Alcotest.(check int) "threshold restored" 123_456 (Col.big_rows ()))

let () =
  Alcotest.run "stream"
    [
      ( "plans",
        [
          Alcotest.test_case "chunk ranges" `Quick test_chunk_plan_ranges;
          Alcotest.test_case "plan covers table" `Quick test_chunk_plan_covers;
          Alcotest.test_case "driver emits per-table plans" `Slow
            test_driver_plans;
        ] );
      ( "identity",
        [
          Alcotest.test_case
            "ssb streamed = monolithic, chunks x domains 1/2/4" `Slow
            (test_stream_identity Mirage_workloads.Ssb.make ~sf:0.05);
          Alcotest.test_case
            "tpch streamed = monolithic, chunks x domains 1/2/4" `Slow
            (test_stream_identity Mirage_workloads.Tpch.make ~sf:0.05);
          Alcotest.test_case "streamed db kill+resume export identity" `Slow
            test_stream_crash_resume;
          Alcotest.test_case "big-rows threshold restored" `Slow
            test_big_rows_restored;
        ] );
    ]
