(* Crash-safe chunked export: sink unit tests (CRC, manifest, fault
   injection, stale-file hygiene) and end-to-end resume byte-identity on
   generated SSB / TPC-H databases across domain counts. *)

module Sink = Mirage_engine.Sink
module Budget = Mirage_util.Budget
module Driver = Mirage_core.Driver
module Diag = Mirage_core.Diag
module Scale_out = Mirage_core.Scale_out
module Sql_export = Mirage_core.Sql_export
module Par = Mirage_par.Par
module Schema = Mirage_sql.Schema
module Db = Mirage_engine.Db

let fresh_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Sink.mkdir_p base;
  base

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let tmp_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f -> Filename.check_suffix f ".tmp")

let put_string w s =
  Sink.put w (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

(* --- unit: crc32 ---------------------------------------------------------- *)

let test_crc32 () =
  let b = Bytes.of_string "123456789" in
  Alcotest.(check int)
    "known answer" 0xCBF43926
    (Sink.crc32 b ~pos:0 ~len:(Bytes.length b));
  (* incremental over a split equals one-shot *)
  let c1 = Sink.crc32 b ~pos:0 ~len:4 in
  let c2 = Sink.crc32 ~crc:c1 b ~pos:4 ~len:5 in
  Alcotest.(check int) "incremental" 0xCBF43926 c2;
  Alcotest.(check int) "empty is zero" 0 (Sink.crc32 b ~pos:0 ~len:0)

(* --- unit: manifest round trip -------------------------------------------- *)

let test_manifest_roundtrip () =
  let dir = fresh_dir "mirage_sink_rt" in
  let t = Sink.create ~dir ~run_id:"rt-1" () in
  Sink.write_shard t ~name:"a.csv.0" (fun w -> put_string w "hello,world\n");
  Sink.write_shard t ~name:"a.csv.1" (fun w -> put_string w "more\n");
  Sink.finish t;
  let t2 = Sink.create ~resume:true ~dir ~run_id:"rt-1" () in
  Alcotest.(check int) "resumed both" 2 (Sink.resumed_shards t2);
  Alcotest.(check bool) "a.csv.0 done" true (Sink.is_done t2 "a.csv.0");
  Alcotest.(check bool) "a.csv.1 done" true (Sink.is_done t2 "a.csv.1");
  Alcotest.(check bool) "unknown not done" false (Sink.is_done t2 "a.csv.2");
  let names = List.map (fun s -> s.Sink.sh_name) (Sink.completed t2) in
  Alcotest.(check (list string)) "commit order" [ "a.csv.0"; "a.csv.1" ] names;
  let sizes = List.map (fun s -> s.Sink.sh_bytes) (Sink.completed t2) in
  Alcotest.(check (list int)) "sizes" [ 12; 5 ] sizes;
  (* a write_shard for a committed name is a no-op *)
  Sink.write_shard t2 ~name:"a.csv.0" (fun _ -> Alcotest.fail "re-rendered");
  rm_rf dir

let test_run_id_mismatch () =
  let dir = fresh_dir "mirage_sink_id" in
  let t = Sink.create ~dir ~run_id:"old" () in
  Sink.write_shard t ~name:"a.csv.0" (fun w -> put_string w "x\n");
  let t2 = Sink.create ~resume:true ~dir ~run_id:"new" () in
  Alcotest.(check int) "fresh start" 0 (Sink.resumed_shards t2);
  Alcotest.(check bool) "nothing done" false (Sink.is_done t2 "a.csv.0");
  Alcotest.(check bool)
    "stale manifest removed" false
    (Sys.file_exists (Sink.manifest_path ~dir));
  rm_rf dir

let test_stale_tmp_cleanup () =
  let dir = fresh_dir "mirage_sink_tmp" in
  write_file (Filename.concat dir "dead.csv.3.tmp") "half a shard";
  write_file (Filename.concat dir "MANIFEST.json.tmp") "half a manifest";
  let _ = Sink.create ~dir ~run_id:"x" () in
  Alcotest.(check (list string)) "tmp files removed" [] (tmp_files dir);
  rm_rf dir

let test_resume_drops_bad_size () =
  let dir = fresh_dir "mirage_sink_size" in
  let t = Sink.create ~dir ~run_id:"s" () in
  Sink.write_shard t ~name:"a.csv.0" (fun w -> put_string w "0123456789\n");
  (* truncate behind the manifest's back, as a torn disk would *)
  write_file (Filename.concat dir "a.csv.0") "0123";
  let t2 = Sink.create ~resume:true ~dir ~run_id:"s" () in
  Alcotest.(check bool)
    "mismatched shard re-rendered" false
    (Sink.is_done t2 "a.csv.0");
  rm_rf dir

let test_mkdir_p_concurrent () =
  let base = fresh_dir "mirage_mkdir" in
  let target = Filename.concat (Filename.concat base "a") "b" in
  (* both domains race the same nested creation; the loser must treat the
     winner's directory as success *)
  Par.with_pool ~domains:2 @@ fun pool ->
  Par.run pool 2 (fun _ -> Sink.mkdir_p target);
  Alcotest.(check bool) "created" true (Sys.is_directory target);
  Sink.mkdir_p target;
  rm_rf base

(* --- unit: fault injection ------------------------------------------------- *)

let test_enospc_no_orphans () =
  let dir = fresh_dir "mirage_sink_enospc" in
  let backend =
    Sink.faulty
      { Sink.no_faults with enospc_after_bytes = Some 8 }
      Sink.os_backend
  in
  let t = Sink.create ~backend ~dir ~run_id:"e" () in
  Sink.write_shard t ~name:"a.csv.0" (fun w -> put_string w "0123456789\n");
  let failed =
    match
      Sink.write_shard t ~name:"a.csv.1" (fun w ->
          put_string w "this write crosses the injected capacity\n")
    with
    | () -> false
    | exception Sink.Io_failure _ -> true
  in
  Alcotest.(check bool) "Io_failure raised" true failed;
  Alcotest.(check (list string)) "no orphaned temp files" [] (tmp_files dir);
  Alcotest.(check bool)
    "committed shard intact" true
    (Sys.file_exists (Filename.concat dir "a.csv.0"));
  (* the manifest still checkpoints exactly the committed prefix *)
  let t2 = Sink.create ~resume:true ~dir ~run_id:"e" () in
  Alcotest.(check int) "resume sees one shard" 1 (Sink.resumed_shards t2);
  rm_rf dir

let test_short_writes_byte_exact () =
  let dir = fresh_dir "mirage_sink_short" in
  let backend = Sink.faulty { Sink.no_faults with short_writes = true } Sink.os_backend in
  let t = Sink.create ~backend ~dir ~run_id:"s" () in
  let payload = String.concat "," (List.init 200 string_of_int) ^ "\n" in
  Sink.write_shard t ~name:"a.csv.0" (fun w -> put_string w payload);
  Alcotest.(check string)
    "partial writes drained" payload
    (read_file (Filename.concat dir "a.csv.0"));
  rm_rf dir

let test_crash_leaves_tmp_then_resume () =
  let dir = fresh_dir "mirage_sink_crash" in
  let backend =
    Sink.faulty { Sink.no_faults with crash_after_shards = Some 1 } Sink.os_backend
  in
  let t = Sink.create ~backend ~dir ~run_id:"c" () in
  Sink.write_shard t ~name:"a.csv.0" (fun w -> put_string w "first\n");
  let crashed =
    match Sink.write_shard t ~name:"a.csv.1" (fun w -> put_string w "second\n") with
    | () -> false
    | exception Sink.Injected_crash _ -> true
  in
  Alcotest.(check bool) "crash raised" true crashed;
  Alcotest.(check (list string))
    "kill leaves the temp file" [ "a.csv.1.tmp" ] (tmp_files dir);
  (* restart: stale tmp swept, committed prefix resumed, rest re-rendered *)
  let t2 = Sink.create ~resume:true ~dir ~run_id:"c" () in
  Alcotest.(check (list string)) "tmp swept on resume" [] (tmp_files dir);
  Alcotest.(check int) "one shard resumed" 1 (Sink.resumed_shards t2);
  Sink.write_shard t2 ~name:"a.csv.1" (fun w -> put_string w "second\n");
  Alcotest.(check string)
    "identical after resume" "first\nsecond\n"
    (read_file (Filename.concat dir "a.csv.0")
    ^ read_file (Filename.concat dir "a.csv.1"));
  rm_rf dir

(* --- end-to-end: generated workloads -------------------------------------- *)

let generate make ~sf =
  let workload, ref_db, prod_env = make ~sf ~seed:7 in
  let config =
    { Driver.default_config with seed = 42; batch_size = 1_000_000; domains = 1 }
  in
  match Driver.generate ~config workload ~ref_db ~prod_env with
  | Error d -> Alcotest.fail (Mirage_core.Diag.to_string d)
  | Ok r -> (workload, r)

let concat_shards dir tname =
  let rec go k acc =
    let p = Filename.concat dir (Printf.sprintf "%s.csv.%d" tname k) in
    if Sys.file_exists p then go (k + 1) (acc ^ read_file p) else acc
  in
  go 0 ""

let table_names db =
  List.map (fun (t : Schema.table) -> t.Schema.tname) (Schema.tables (Db.schema db))

(* shard fan-out small enough to be quick, large enough that the fact table
   splits into several shards *)
let chunk_rows_for db =
  let largest =
    List.fold_left (fun m t -> max m (Db.row_count db t)) 1 (table_names db)
  in
  max 1 (largest / 2)

let check_chunked_identity ~label ~db ~copies ~domains =
  let mono = fresh_dir "mirage_mono" and chunk = fresh_dir "mirage_chunk" in
  Scale_out.to_csv_dir ~db ~copies ~dir:mono ();
  Par.with_pool ~domains (fun pool ->
      let rep =
        Scale_out.to_csv_chunked ~pool ~db ~copies
          ~chunk_rows:(chunk_rows_for db) ~dir:chunk ~run_id:label ()
      in
      Alcotest.(check int) (label ^ ": nothing resumed") 0 rep.Scale_out.cr_resumed);
  List.iter
    (fun t ->
      let m = read_file (Filename.concat mono (t ^ ".csv")) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s chunked = monolithic" label t)
        true
        (String.equal m (concat_shards chunk t)))
    (table_names db);
  rm_rf mono;
  rm_rf chunk

let check_crash_resume ~label ~db ~copies ~domains ~crash_after =
  let mono = fresh_dir "mirage_mono" and chunk = fresh_dir "mirage_chunk" in
  Scale_out.to_csv_dir ~db ~copies ~dir:mono ();
  let chunk_rows = chunk_rows_for db in
  let run_id = label ^ "-resume" in
  (* run 1: killed after [crash_after] committed shards *)
  let crashed =
    Par.with_pool ~domains (fun pool ->
        let backend =
          Sink.faulty
            { Sink.no_faults with crash_after_shards = Some crash_after }
            Sink.os_backend
        in
        match
          Scale_out.to_csv_chunked ~pool ~backend ~db ~copies ~chunk_rows
            ~dir:chunk ~run_id ()
        with
        | _ -> false
        | exception Sink.Injected_crash _ -> true)
  in
  Alcotest.(check bool) (label ^ ": run 1 crashed") true crashed;
  (* run 2: resume from the manifest, clean backend *)
  Par.with_pool ~domains (fun pool ->
      let rep =
        Scale_out.to_csv_chunked ~pool ~resume:true ~db ~copies ~chunk_rows
          ~dir:chunk ~run_id ()
      in
      Alcotest.(check int)
        (label ^ ": committed prefix resumed")
        crash_after rep.Scale_out.cr_resumed);
  Alcotest.(check (list string)) (label ^ ": no temp files") [] (tmp_files chunk);
  List.iter
    (fun t ->
      let m = read_file (Filename.concat mono (t ^ ".csv")) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s resumed run byte-identical" label t)
        true
        (String.equal m (concat_shards chunk t)))
    (table_names db);
  rm_rf mono;
  rm_rf chunk

let test_workload_chunked name make ~sf () =
  let _, r = generate make ~sf in
  let db = r.Driver.r_db in
  List.iter
    (fun domains ->
      check_chunked_identity
        ~label:(Printf.sprintf "%s domains=%d" name domains)
        ~db ~copies:3 ~domains)
    [ 1; 2; 4 ]

let test_workload_crash_resume name make ~sf () =
  let _, r = generate make ~sf in
  let db = r.Driver.r_db in
  List.iter
    (fun domains ->
      check_crash_resume
        ~label:(Printf.sprintf "%s domains=%d" name domains)
        ~db ~copies:3 ~domains ~crash_after:2)
    [ 1; 2; 4 ]

let test_sql_chunked_identity () =
  let workload, r = generate Mirage_workloads.Ssb.make ~sf:0.05 in
  let db = r.Driver.r_db and env = r.Driver.r_env in
  let mono = fresh_dir "mirage_sqlm" and chunk = fresh_dir "mirage_sqlc" in
  Sql_export.export_dir ~db ~workload ~env ~dir:mono;
  (* crash mid-export, then resume *)
  let crashed =
    let backend =
      Sink.faulty { Sink.no_faults with crash_after_shards = Some 2 } Sink.os_backend
    in
    match
      Sql_export.export_chunked ~backend ~db ~workload ~env ~dir:chunk
        ~chunk_rows:700 ~run_id:"sql" ()
    with
    | _ -> false
    | exception Sink.Injected_crash _ -> true
  in
  Alcotest.(check bool) "sql run 1 crashed" true crashed;
  let _, resumed =
    Sql_export.export_chunked ~resume:true ~db ~workload ~env ~dir:chunk
      ~chunk_rows:700 ~run_id:"sql" ()
  in
  Alcotest.(check int) "sql shards resumed" 2 resumed;
  let rec cat k acc =
    let p = Filename.concat chunk (Printf.sprintf "data.sql.%d" k) in
    if Sys.file_exists p then cat (k + 1) (acc ^ read_file p) else acc
  in
  Alcotest.(check bool)
    "data.sql chunked = monolithic" true
    (String.equal (read_file (Filename.concat mono "data.sql")) (cat 0 ""));
  Alcotest.(check bool)
    "schema.sql written" true
    (String.equal
       (read_file (Filename.concat mono "schema.sql"))
       (read_file (Filename.concat chunk "schema.sql")));
  rm_rf mono;
  rm_rf chunk

(* --- domain-owned sharded writer ------------------------------------------- *)

let check_sharded_identity ~label ~db ~copies ~domains =
  let mono = fresh_dir "mirage_mono" and shard = fresh_dir "mirage_shard" in
  Scale_out.to_csv_dir ~db ~copies ~dir:mono ();
  Par.with_pool ~domains (fun pool ->
      let rep =
        Scale_out.to_csv_sharded ~pool ~db ~copies
          ~chunk_rows:(chunk_rows_for db) ~dir:shard ~run_id:label ()
      in
      Alcotest.(check int) (label ^ ": nothing resumed") 0 rep.Scale_out.cr_resumed);
  List.iter
    (fun t ->
      let m = read_file (Filename.concat mono (t ^ ".csv")) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s sharded = monolithic" label t)
        true
        (String.equal m (concat_shards shard t)))
    (table_names db);
  rm_rf mono;
  rm_rf shard

let test_workload_sharded name make ~sf () =
  let _, r = generate make ~sf in
  let db = r.Driver.r_db in
  List.iter
    (fun domains ->
      check_sharded_identity
        ~label:(Printf.sprintf "%s sharded domains=%d" name domains)
        ~db ~copies:3 ~domains)
    [ 1; 2; 4 ]

(* --- gzip round trip: the reference decompressor is the oracle ------------- *)

let gunzip_bytes label s =
  let gz = Filename.temp_file "mirage_gz" ".gz" in
  let out = Filename.temp_file "mirage_gz" ".out" in
  write_file gz s;
  let rc =
    Sys.command
      (Printf.sprintf "gzip -dc %s > %s 2>/dev/null" (Filename.quote gz)
         (Filename.quote out))
  in
  let r = if rc = 0 then Some (read_file out) else None in
  Sys.remove gz;
  Sys.remove out;
  match r with
  | Some s -> s
  | None -> Alcotest.fail (label ^ ": gzip -d rejected the stream")

let concat_gz_shards dir tname =
  (* shard index order is manifest (seq) order per table *)
  let rec go k acc =
    let p = Filename.concat dir (Printf.sprintf "%s.csv.%d.gz" tname k) in
    if Sys.file_exists p then go (k + 1) (acc ^ read_file p) else acc
  in
  go 0 ""

let check_gzip_roundtrip ~label ~db ~copies ~domains ~sharded =
  let mono = fresh_dir "mirage_mono" and gzd = fresh_dir "mirage_gzd" in
  Scale_out.to_csv_dir ~db ~copies ~dir:mono ();
  let export =
    if sharded then Scale_out.to_csv_sharded else Scale_out.to_csv_chunked
  in
  Par.with_pool ~domains (fun pool ->
      ignore
        (export ~pool ~compress:true ~db ~copies
           ~chunk_rows:(chunk_rows_for db) ~dir:gzd ~run_id:label ()));
  List.iter
    (fun t ->
      let m = read_file (Filename.concat mono (t ^ ".csv")) in
      let cat = concat_gz_shards gzd t in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s gz shards present" label t)
        true (cat <> "");
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s gunzipped concatenation = monolithic" label t)
        true
        (String.equal m (gunzip_bytes (label ^ "/" ^ t) cat)))
    (table_names db);
  rm_rf mono;
  rm_rf gzd

let test_workload_gzip name make ~sf () =
  let _, r = generate make ~sf in
  let db = r.Driver.r_db in
  List.iter
    (fun domains ->
      check_gzip_roundtrip
        ~label:(Printf.sprintf "%s gz sharded domains=%d" name domains)
        ~db ~copies:3 ~domains ~sharded:true)
    [ 1; 2; 4 ];
  (* the single-drain writer compresses to the same bytes *)
  check_gzip_roundtrip
    ~label:(name ^ " gz drain")
    ~db ~copies:3 ~domains:2 ~sharded:false

(* --- budget breach racing the domain-owned writers ------------------------- *)

let test_budget_race_sharded () =
  let _, r = generate Mirage_workloads.Ssb.make ~sf:0.05 in
  let db = r.Driver.r_db in
  let copies = 3 in
  let chunk_rows = chunk_rows_for db in
  List.iter
    (fun domains ->
      let label = Printf.sprintf "race domains=%d" domains in
      let dir = fresh_dir "mirage_race" in
      let run_id = label in
      (* the deadline token is already expired; the countdown delays the
         first check so several writers are mid-shard across domains when
         the breach lands *)
      let token =
        Budget.start { Budget.no_limits with Budget.deadline_s = Some 0.0 }
      in
      let polls = Atomic.make 0 in
      let interrupt () =
        if Atomic.fetch_and_add polls 1 >= 3 * domains then Budget.check token
      in
      let tripped =
        Par.with_pool ~domains (fun pool ->
            match
              Scale_out.to_csv_sharded ~pool ~interrupt ~db ~copies ~chunk_rows
                ~dir ~run_id ()
            with
            | _ -> false
            | exception Budget.Exceeded _ -> true)
      in
      Alcotest.(check bool) (label ^ ": budget tripped") true tripped;
      Alcotest.(check (list string))
        (label ^ ": no orphaned temp files")
        [] (tmp_files dir);
      (* every shard the manifest committed is on disk at its recorded size *)
      let t2 = Sink.create ~resume:true ~dir ~run_id () in
      let committed = Sink.completed t2 in
      List.iter
        (fun (s : Sink.shard) ->
          let p = Filename.concat dir s.Sink.sh_name in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s exists" label s.Sink.sh_name)
            true (Sys.file_exists p);
          Alcotest.(check int)
            (Printf.sprintf "%s: %s size matches manifest" label s.Sink.sh_name)
            s.Sink.sh_bytes
            (let st = Unix.stat p in
             st.Unix.st_size))
        committed;
      (* a clean resume completes the export byte-identically *)
      let mono = fresh_dir "mirage_mono" in
      Scale_out.to_csv_dir ~db ~copies ~dir:mono ();
      Par.with_pool ~domains (fun pool ->
          let rep =
            Scale_out.to_csv_sharded ~pool ~resume:true ~db ~copies ~chunk_rows
              ~dir ~run_id ()
          in
          Alcotest.(check int)
            (label ^ ": committed shards resumed")
            (List.length committed) rep.Scale_out.cr_resumed);
      List.iter
        (fun t ->
          let m = read_file (Filename.concat mono (t ^ ".csv")) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s resumed run byte-identical" label t)
            true
            (String.equal m (concat_shards dir t)))
        (table_names db);
      rm_rf mono;
      rm_rf dir)
    [ 1; 2; 4 ]

(* --- big-column backend is representation-blind ---------------------------- *)

let test_big_rows_representation_blind () =
  let module Col = Mirage_engine.Col in
  let export db =
    let dir = fresh_dir "mirage_repr" in
    Scale_out.to_csv_dir ~db ~copies:2 ~dir ();
    let bytes =
      String.concat "\x00"
        (List.map
           (fun t -> read_file (Filename.concat dir (t ^ ".csv")))
           (table_names db))
    in
    rm_rf dir;
    bytes
  in
  let saved = Col.big_rows () in
  Fun.protect
    ~finally:(fun () -> Col.set_big_rows saved)
    (fun () ->
      let _, r_small = generate Mirage_workloads.Ssb.make ~sf:0.05 in
      let heap_bytes = export r_small.Driver.r_db in
      (* rerun the whole pipeline with a threshold low enough that every
         table-sized structure takes the Bigarray path *)
      Col.set_big_rows 8;
      let _, r_big = generate Mirage_workloads.Ssb.make ~sf:0.05 in
      let big_bytes = export r_big.Driver.r_db in
      Alcotest.(check bool)
        "big-column and heap columns generate identical bytes" true
        (String.equal heap_bytes big_bytes))

(* --- budget: typed degradation, not exceptions ----------------------------- *)

let test_deadline_typed_diag () =
  let workload, ref_db, prod_env = Mirage_workloads.Ssb.make ~sf:0.05 ~seed:7 in
  let config =
    { Driver.default_config with
      seed = 42;
      domains = 1;
      budget = { Budget.no_limits with Budget.deadline_s = Some 0.0 } }
  in
  match Driver.generate ~config workload ~ref_db ~prod_env with
  | Ok _ -> Alcotest.fail "expected a budget breach"
  | Error d ->
      Alcotest.(check string) "stage" "budget" (Diag.stage_name d.Diag.d_stage);
      Alcotest.(check int) "exit code" 3 (Diag.exit_code d)

let test_export_deadline_no_orphans () =
  let _, r = generate Mirage_workloads.Ssb.make ~sf:0.05 in
  let db = r.Driver.r_db in
  let dir = fresh_dir "mirage_deadline" in
  let token =
    Budget.start { Budget.no_limits with Budget.deadline_s = Some 0.0 }
  in
  let tripped =
    match
      Scale_out.to_csv_chunked
        ~interrupt:(fun () -> Budget.check token)
        ~db ~copies:2 ~chunk_rows:100 ~dir ~run_id:"dl" ()
    with
    | _ -> false
    | exception Budget.Exceeded (Budget.Deadline _) -> true
  in
  Alcotest.(check bool) "deadline tripped during export" true tripped;
  Alcotest.(check (list string)) "no temp files left" [] (tmp_files dir);
  rm_rf dir

let () =
  Alcotest.run "sink"
    [
      ( "unit",
        [
          Alcotest.test_case "crc32 known answers" `Quick test_crc32;
          Alcotest.test_case "manifest round trip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "run_id mismatch starts fresh" `Quick
            test_run_id_mismatch;
          Alcotest.test_case "stale tmp files swept" `Quick test_stale_tmp_cleanup;
          Alcotest.test_case "size mismatch re-renders" `Quick
            test_resume_drops_bad_size;
          Alcotest.test_case "mkdir_p concurrent creation" `Quick
            test_mkdir_p_concurrent;
        ] );
      ( "faults",
        [
          Alcotest.test_case "ENOSPC leaves no orphans" `Quick
            test_enospc_no_orphans;
          Alcotest.test_case "short writes drain byte-exact" `Quick
            test_short_writes_byte_exact;
          Alcotest.test_case "crash leaves tmp; resume sweeps and completes"
            `Quick test_crash_leaves_tmp_then_resume;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "ssb chunked = monolithic, domains 1/2/4" `Slow
            (test_workload_chunked "ssb" Mirage_workloads.Ssb.make ~sf:0.05);
          Alcotest.test_case "tpch chunked = monolithic, domains 1/2/4" `Slow
            (test_workload_chunked "tpch" Mirage_workloads.Tpch.make ~sf:0.05);
          Alcotest.test_case "ssb crash+resume byte-identity, domains 1/2/4"
            `Slow
            (test_workload_crash_resume "ssb" Mirage_workloads.Ssb.make ~sf:0.05);
          Alcotest.test_case "tpch crash+resume byte-identity, domains 1/2/4"
            `Slow
            (test_workload_crash_resume "tpch" Mirage_workloads.Tpch.make
               ~sf:0.05);
          Alcotest.test_case "data.sql crash+resume identity" `Slow
            test_sql_chunked_identity;
          Alcotest.test_case "ssb sharded = monolithic, domains 1/2/4" `Slow
            (test_workload_sharded "ssb" Mirage_workloads.Ssb.make ~sf:0.05);
          Alcotest.test_case "tpch sharded = monolithic, domains 1/2/4" `Slow
            (test_workload_sharded "tpch" Mirage_workloads.Tpch.make ~sf:0.05);
          Alcotest.test_case
            "ssb gzip shards gunzip to monolithic, domains 1/2/4" `Slow
            (test_workload_gzip "ssb" Mirage_workloads.Ssb.make ~sf:0.05);
          Alcotest.test_case
            "tpch gzip shards gunzip to monolithic, domains 1/2/4" `Slow
            (test_workload_gzip "tpch" Mirage_workloads.Tpch.make ~sf:0.05);
          Alcotest.test_case "big-column backend is representation-blind" `Slow
            test_big_rows_representation_blind;
        ] );
      ( "budget",
        [
          Alcotest.test_case "deadline yields typed Diag (exit 3)" `Quick
            test_deadline_typed_diag;
          Alcotest.test_case "export deadline leaves no orphans" `Quick
            test_export_deadline_no_orphans;
          Alcotest.test_case
            "budget breach racing sharded writers, domains 1/2/4" `Slow
            test_budget_race_sharded;
        ] );
    ]
