(* Fault-injection tests: a broken annotation, a broken bundle or a starved
   CP solver must degrade generation, never abort it without a diagnosis. *)

module Value = Mirage_sql.Value
module Schema = Mirage_sql.Schema
module Plan = Mirage_relalg.Plan
module Db = Mirage_engine.Db
module Ir = Mirage_core.Ir
module Diag = Mirage_core.Diag
module Workload = Mirage_core.Workload
module Bundle = Mirage_core.Bundle
module Driver = Mirage_core.Driver
module Error = Mirage_core.Error

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- fixture: the S/T running example as a hand-built bundle ---------------- *)

let schema =
  Schema.make
    [
      {
        Schema.tname = "s";
        pk = "s_pk";
        nonkeys = [ { Schema.cname = "s1"; domain_size = 4; kind = Schema.Kint } ];
        fks = [];
        row_count = 4;
      };
      {
        Schema.tname = "t";
        pk = "t_pk";
        nonkeys =
          [
            { Schema.cname = "t1"; domain_size = 5; kind = Schema.Kint };
            { Schema.cname = "t2"; domain_size = 4; kind = Schema.Kint };
          ];
        fks = [ { Schema.fk_col = "t_fk"; references = "s" } ];
        row_count = 8;
      };
    ]

let join_plan left =
  Plan.Join
    {
      jt = Plan.Inner;
      pk_table = "s";
      fk_table = "t";
      fk_col = "t_fk";
      left;
      right = Plan.Table "t";
    }

let sel_s = Plan.Select (Mirage_sql.Parser.pred "s1 <= $p1", Plan.Table "s")

let workload =
  Workload.make schema
    [
      { Workload.q_name = "q1"; q_plan = join_plan sel_s };
      { Workload.q_name = "q2"; q_plan = join_plan (Plan.Table "s") };
    ]

let edge = { Ir.e_pk_table = "s"; e_fk_table = "t"; e_fk_col = "t_fk" }

(* joins over a strict-subset left view: |σ(s1≤$p1)(S)| is pinned to 2 by
   an SCC, so conflicting jcc annotations cannot be normalised away *)
let join ~source ~jcc =
  {
    Ir.jc_edge = edge;
    jc_left = Ir.Cv_select { cv_table = "s"; cv_pred = Mirage_sql.Parser.pred "s1 <= $p1" };
    jc_right = Ir.Cv_full "t";
    jc_jcc = Some jcc;
    jc_jdc = None;
    jc_source = source;
  }

let sel_scc =
  {
    Ir.scc_table = "s";
    scc_pred = Mirage_sql.Parser.pred "s1 <= $p1";
    scc_rows = 2;
    scc_source = "q1#s0";
  }

let ir ?(table_cards = [ ("s", 4); ("t", 8) ]) joins =
  {
    Ir.sccs = [ sel_scc ];
    joins;
    table_cards;
    column_cards = [ (("t", "t1"), 5); (("t", "t2"), 4); (("s", "s1"), 4) ];
    param_elements = [];
  }

let bundle ?table_cards joins =
  {
    Bundle.b_workload = workload;
    b_ir = ir ?table_cards joins;
    b_env =
      Mirage_sql.Pred.Env.of_list
        [ ("p1", Mirage_sql.Pred.Env.Scalar (Value.Int 2)) ];
  }

let feasible = join ~source:"q1#j0" ~jcc:8

(* q2 pins the same subset-view join to two further, mutually inconsistent
   counts: nothing to resize, provably infeasible *)
let contradictory = [ join ~source:"q2#j0" ~jcc:3; join ~source:"q2#j1" ~jcc:2 ]

(* --- degraded mode ----------------------------------------------------------- *)

let test_quarantine_contradictory () =
  match Driver.generate_from_bundle (bundle (feasible :: contradictory)) with
  | Error d ->
      Alcotest.failf "expected degraded Ok, got Error: %s" (Diag.to_string d)
  | Ok r ->
      (* the infeasible query is quarantined and named *)
      let verdict q =
        List.find (fun (v : Diag.verdict) -> v.Diag.v_query = q) r.Driver.r_verdicts
      in
      (match (verdict "q2").Diag.v_status with
      | Diag.Quarantined -> ()
      | other ->
          Alcotest.failf "q2 verdict: expected Quarantined, got %s"
            (Diag.status_name other));
      (match (verdict "q1").Diag.v_status with
      | Diag.Exact -> ()
      | other ->
          Alcotest.failf "q1 verdict: expected Exact, got %s"
            (Diag.status_name other));
      Alcotest.(check bool) "quarantine diagnosed by name" true
        (List.exists
           (fun (d : Diag.t) ->
             d.Diag.d_severity = Diag.Error && Diag.base_query d = Some "q2")
           r.Driver.r_diags);
      (* the surviving constraints are honoured exactly *)
      Alcotest.(check int) "|S|" 4 (Db.row_count r.Driver.r_db "s");
      Alcotest.(check int) "|T|" 8 (Db.row_count r.Driver.r_db "t");
      let fk = Db.column r.Driver.r_db "t" "t_fk" in
      let keys =
        Array.to_list fk
        |> List.filter_map (function Value.Int k -> Some k | _ -> None)
      in
      Alcotest.(check int) "no null fks" 8 (List.length keys);
      (* q1's jcc=8: every T row must reference an S row inside the
         σ(s1≤p1) view, whose cardinality the SCC pins to 2 *)
      let s1 = Db.column r.Driver.r_db "s" "s1" in
      let p1 =
        match Mirage_sql.Pred.Env.find "p1" r.Driver.r_env with
        | Some (Mirage_sql.Pred.Env.Scalar (Value.Int v)) -> v
        | _ -> Alcotest.fail "p1 not instantiated"
      in
      List.iter
        (fun k ->
          Alcotest.(check bool) "fk in range" true (k >= 1 && k <= 4);
          match s1.(k - 1) with
          | Value.Int v ->
              Alcotest.(check bool) "fk lands in the selected view" true (v <= p1)
          | _ -> Alcotest.fail "non-int s1")
        keys

let test_all_queries_infeasible () =
  (* both queries carry self-contradictory annotations: the quarantine must
     widen until nothing is left, and the result is still Ok *)
  let b =
    bundle
      [
        join ~source:"q1#j0" ~jcc:8;
        join ~source:"q1#j1" ~jcc:7;
        join ~source:"q2#j0" ~jcc:3;
        join ~source:"q2#j1" ~jcc:2;
      ]
  in
  match Driver.generate_from_bundle b with
  | Error d -> Alcotest.failf "expected Ok, got Error: %s" (Diag.to_string d)
  | Ok r ->
      Alcotest.(check int) "two verdicts" 2 (List.length r.Driver.r_verdicts);
      List.iter
        (fun (v : Diag.verdict) ->
          Alcotest.(check bool)
            (v.Diag.v_query ^ " quarantined")
            true
            (v.Diag.v_status = Diag.Quarantined))
        r.Driver.r_verdicts;
      Alcotest.(check int) "|T| still generated" 8
        (Db.row_count r.Driver.r_db "t")

(* --- bundle validation ------------------------------------------------------- *)

let has_error diags =
  List.exists (fun (d : Diag.t) -> d.Diag.d_severity = Diag.Error) diags

let test_dangling_fk () =
  let dangling =
    {
      feasible with
      Ir.jc_edge = { Ir.e_pk_table = "s"; e_fk_table = "t"; e_fk_col = "t_bogus" };
      jc_source = "q1#j0";
    }
  in
  let b = bundle [ dangling ] in
  Alcotest.(check bool) "validate flags dangling fk" true
    (has_error (Bundle.validate b));
  match Driver.generate_from_bundle b with
  | Error d ->
      Alcotest.(check bool) "names the missing fk" true
        (contains d.Diag.d_message "t_bogus")
  | Ok _ -> Alcotest.fail "dangling fk accepted"

let test_zero_row_referenced_table () =
  let b = bundle ~table_cards:[ ("s", 0); ("t", 8) ] [ feasible ] in
  Alcotest.(check bool) "validate flags zero-row referenced table" true
    (has_error (Bundle.validate b));
  match Driver.generate_from_bundle b with
  | Error d ->
      Alcotest.(check bool) "blames the referenced table" true
        (d.Diag.d_table = Some "s")
  | Ok _ -> Alcotest.fail "zero-row referenced table accepted"

let test_selection_exceeds_table () =
  let scc =
    {
      Ir.scc_table = "t";
      scc_pred = Mirage_sql.Parser.pred "t1 > 2";
      scc_rows = 99;
      scc_source = "q1#s0";
    }
  in
  let b =
    { (bundle [ feasible ]) with Bundle.b_ir = { (ir [ feasible ]) with Ir.sccs = [ scc ] } }
  in
  Alcotest.(check bool) "validate flags |sigma(T)| > |T|" true
    (has_error (Bundle.validate b))

let test_valid_bundle_clean () =
  Alcotest.(check int) "no diagnostics on a sane bundle" 0
    (List.length (Bundle.validate (bundle [ feasible ])))

(* --- bundle parsing ---------------------------------------------------------- *)

let test_malformed_int () =
  match Bundle.of_string "(mirage-bundle 1)\n(rows t abc)\n" with
  | Error m ->
      Alcotest.(check bool) "mentions the bad integer" true
        (contains m "abc")
  | Ok _ -> Alcotest.fail "accepted a non-integer row count"

let test_truncated_bundle () =
  let whole = Bundle.to_string (bundle [ feasible ]) in
  let cut = String.sub whole 0 (String.length whole - 5) in
  match Bundle.of_string cut with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a truncated bundle"

(* --- starved CP solver ------------------------------------------------------- *)

let test_tiny_node_budget () =
  let config = { Driver.default_config with Driver.cp_max_nodes = 2 } in
  match Driver.generate_from_bundle ~config (bundle [ feasible ]) with
  | Error d ->
      Alcotest.failf "tiny budget must degrade, not fail: %s" (Diag.to_string d)
  | Ok r ->
      Alcotest.(check int) "|T| generated" 8 (Db.row_count r.Driver.r_db "t");
      List.iter
        (fun (v : Diag.verdict) ->
          Alcotest.(check bool) "no Unsupported verdict" true
            (v.Diag.v_status <> Diag.Unsupported))
        r.Driver.r_verdicts

(* --- multi-seed smoke -------------------------------------------------------- *)

let test_multi_seed_smoke () =
  List.iter
    (fun seed ->
      let workload, ref_db, prod_env = Mirage_workloads.Ssb.make ~sf:0.5 ~seed in
      match Driver.generate ~config:{ Driver.default_config with seed } workload ~ref_db ~prod_env with
      | Error d ->
          Alcotest.failf "seed %d failed: %s" seed (Diag.to_string d)
      | Ok r ->
          let worst =
            List.fold_left
              (fun a (e : Error.query_error) -> max a e.Error.qe_relative)
              0.0 (Driver.measure_errors r)
          in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d within bound (worst %.5f)" seed worst)
            true (worst < 0.02))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "robustness"
    [
      ( "degraded-mode",
        [
          Alcotest.test_case "contradictory annotation quarantined" `Quick
            test_quarantine_contradictory;
          Alcotest.test_case "all queries infeasible" `Quick
            test_all_queries_infeasible;
          Alcotest.test_case "tiny cp node budget" `Quick test_tiny_node_budget;
        ] );
      ( "bundle-validation",
        [
          Alcotest.test_case "dangling fk" `Quick test_dangling_fk;
          Alcotest.test_case "zero-row referenced table" `Quick
            test_zero_row_referenced_table;
          Alcotest.test_case "selection exceeds table" `Quick
            test_selection_exceeds_table;
          Alcotest.test_case "sane bundle is clean" `Quick test_valid_bundle_clean;
          Alcotest.test_case "malformed integer" `Quick test_malformed_int;
          Alcotest.test_case "truncated bundle" `Quick test_truncated_bundle;
        ] );
      ( "multi-seed",
        [ Alcotest.test_case "three-seed ssb smoke" `Quick test_multi_seed_smoke ] );
    ]
