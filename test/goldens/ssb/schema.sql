CREATE TABLE ddate (
  d_datekey BIGINT PRIMARY KEY,
  d_year BIGINT,
  d_yearmonthnum BIGINT,
  d_weeknuminyear BIGINT,
  d_sellingseason VARCHAR(64)
);

CREATE TABLE customer (
  c_custkey BIGINT PRIMARY KEY,
  c_region VARCHAR(64),
  c_nation VARCHAR(64),
  c_city VARCHAR(64),
  c_mktsegment VARCHAR(64)
);

CREATE TABLE supplier (
  s_suppkey BIGINT PRIMARY KEY,
  s_region VARCHAR(64),
  s_nation VARCHAR(64),
  s_city VARCHAR(64)
);

CREATE TABLE part (
  p_partkey BIGINT PRIMARY KEY,
  p_mfgr VARCHAR(64),
  p_category VARCHAR(64),
  p_brand1 VARCHAR(64)
);

CREATE TABLE lineorder (
  lo_orderkey BIGINT PRIMARY KEY,
  lo_quantity BIGINT,
  lo_discount BIGINT,
  lo_extendedprice BIGINT,
  lo_revenue BIGINT,
  lo_custkey BIGINT REFERENCES customer,
  lo_suppkey BIGINT REFERENCES supplier,
  lo_partkey BIGINT REFERENCES part,
  lo_orderdate BIGINT REFERENCES ddate
);

