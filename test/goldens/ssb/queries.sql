-- ssb_q1.1
SELECT * FROM (SELECT * FROM ddate WHERE d_year = 3) q1 JOIN (SELECT * FROM lineorder WHERE (lo_discount >= 9 AND lo_discount <= 11 AND lo_quantity < 51)) q2 ON d_datekey = lo_orderdate;

-- ssb_q1.2
SELECT * FROM (SELECT * FROM ddate WHERE d_yearmonthnum = 1) q3 JOIN (SELECT * FROM lineorder WHERE (lo_discount >= 11 AND lo_discount <= 11 AND lo_quantity >= 1 AND lo_quantity <= 50)) q4 ON d_datekey = lo_orderdate;

-- ssb_q1.3
SELECT * FROM (SELECT * FROM ddate WHERE (d_weeknuminyear = 1 AND d_year = 4)) q5 JOIN (SELECT * FROM lineorder WHERE (lo_discount >= 10 AND lo_discount <= 11 AND lo_quantity >= 1 AND lo_quantity <= 50)) q6 ON d_datekey = lo_orderdate;

-- ssb_q2.1
SELECT * FROM (SELECT * FROM part WHERE p_category = 'v00000001') q7 JOIN (SELECT * FROM (SELECT * FROM supplier WHERE s_region = 'v00000000') q8 JOIN (SELECT * FROM ddate JOIN lineorder ON d_datekey = lo_orderdate) q9 ON s_suppkey = lo_suppkey) q10 ON p_partkey = lo_partkey;

-- ssb_q2.2
SELECT * FROM (SELECT * FROM part WHERE (p_brand1 >= 'v00000016' AND p_brand1 <= 'v00000016')) q11 JOIN (SELECT * FROM (SELECT * FROM supplier WHERE s_region = 'v00000001') q12 JOIN (SELECT * FROM ddate JOIN lineorder ON d_datekey = lo_orderdate) q13 ON s_suppkey = lo_suppkey) q14 ON p_partkey = lo_partkey;

-- ssb_q2.3
SELECT * FROM (SELECT * FROM part WHERE p_brand1 = 'v00000000') q15 JOIN (SELECT * FROM (SELECT * FROM supplier WHERE s_region = 'v00000002') q16 JOIN (SELECT * FROM ddate JOIN lineorder ON d_datekey = lo_orderdate) q17 ON s_suppkey = lo_suppkey) q18 ON p_partkey = lo_partkey;

-- ssb_q3.1
SELECT * FROM (SELECT * FROM customer WHERE c_region = 'v00000001') q19 JOIN (SELECT * FROM (SELECT * FROM supplier WHERE s_region = 'v00000000') q20 JOIN (SELECT * FROM (SELECT * FROM ddate WHERE (d_year >= 3 AND d_year <= 6)) q21 JOIN lineorder ON d_datekey = lo_orderdate) q22 ON s_suppkey = lo_suppkey) q23 ON c_custkey = lo_custkey;

-- ssb_q3.2
SELECT * FROM (SELECT * FROM customer WHERE c_nation = 'v00000001') q24 JOIN (SELECT * FROM (SELECT * FROM supplier WHERE s_nation = 'v00000001') q25 JOIN (SELECT * FROM (SELECT * FROM ddate WHERE (d_year >= 3 AND d_year <= 6)) q26 JOIN lineorder ON d_datekey = lo_orderdate) q27 ON s_suppkey = lo_suppkey) q28 ON c_custkey = lo_custkey;

-- ssb_q3.3
SELECT * FROM (SELECT * FROM customer WHERE c_city IN ('v00000000', 'v00000001')) q29 JOIN (SELECT * FROM (SELECT * FROM supplier WHERE s_city IN ('v00000000', 'v00000000')) q30 JOIN (SELECT * FROM (SELECT * FROM ddate WHERE (d_year >= 3 AND d_year <= 6)) q31 JOIN lineorder ON d_datekey = lo_orderdate) q32 ON s_suppkey = lo_suppkey) q33 ON c_custkey = lo_custkey;

-- ssb_q3.4
SELECT * FROM (SELECT * FROM customer WHERE c_city IN ('v00000000', 'v00000001')) q34 JOIN (SELECT * FROM (SELECT * FROM supplier WHERE s_city IN ('v00000000', 'v00000000')) q35 JOIN (SELECT * FROM (SELECT * FROM ddate WHERE d_yearmonthnum = 2) q36 JOIN lineorder ON d_datekey = lo_orderdate) q37 ON s_suppkey = lo_suppkey) q38 ON c_custkey = lo_custkey;

-- ssb_q4.1
SELECT * FROM (SELECT * FROM part WHERE p_mfgr IN ('v00000001', 'v00000002')) q39 JOIN (SELECT * FROM (SELECT * FROM customer WHERE c_region = 'v00000002') q40 JOIN (SELECT * FROM (SELECT * FROM supplier WHERE s_region = 'v00000003') q41 JOIN (SELECT * FROM (SELECT * FROM ddate WHERE d_year >= 3) q42 JOIN lineorder ON d_datekey = lo_orderdate) q43 ON s_suppkey = lo_suppkey) q44 ON c_custkey = lo_custkey) q45 ON p_partkey = lo_partkey;

-- ssb_q4.2
SELECT * FROM (SELECT * FROM part WHERE p_mfgr IN ('v00000001', 'v00000002')) q46 JOIN (SELECT * FROM (SELECT * FROM customer WHERE c_region = 'v00000002') q47 JOIN (SELECT * FROM (SELECT * FROM supplier WHERE s_region = 'v00000003') q48 JOIN (SELECT * FROM (SELECT * FROM ddate WHERE (d_year >= 6 AND d_year <= 6)) q49 JOIN lineorder ON d_datekey = lo_orderdate) q50 ON s_suppkey = lo_suppkey) q51 ON c_custkey = lo_custkey) q52 ON p_partkey = lo_partkey;

-- ssb_q4.3
SELECT * FROM (SELECT * FROM part WHERE p_category = 'v00000002') q53 JOIN (SELECT * FROM (SELECT * FROM customer WHERE c_region = 'v00000002') q54 JOIN (SELECT * FROM (SELECT * FROM supplier WHERE s_nation = 'v00000002') q55 JOIN (SELECT * FROM (SELECT * FROM ddate WHERE (d_year >= 6 AND d_year <= 6)) q56 JOIN lineorder ON d_datekey = lo_orderdate) q57 ON s_suppkey = lo_suppkey) q58 ON c_custkey = lo_custkey) q59 ON p_partkey = lo_partkey;

