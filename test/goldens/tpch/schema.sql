CREATE TABLE region (
  r_regionkey BIGINT PRIMARY KEY,
  r_name VARCHAR(64)
);

CREATE TABLE nation (
  n_nationkey BIGINT PRIMARY KEY,
  n_name VARCHAR(64),
  n_regionkey BIGINT REFERENCES region
);

CREATE TABLE supplier (
  s_suppkey BIGINT PRIMARY KEY,
  s_acctbal BIGINT,
  s_comment VARCHAR(64),
  s_nationkey BIGINT REFERENCES nation
);

CREATE TABLE customer (
  c_custkey BIGINT PRIMARY KEY,
  c_mktsegment VARCHAR(64),
  c_acctbal BIGINT,
  c_phonecc BIGINT,
  c_nationkey BIGINT REFERENCES nation
);

CREATE TABLE part (
  p_partkey BIGINT PRIMARY KEY,
  p_brand VARCHAR(64),
  p_type VARCHAR(64),
  p_container VARCHAR(64),
  p_size BIGINT,
  p_name VARCHAR(64)
);

CREATE TABLE partsupp (
  ps_partsuppkey BIGINT PRIMARY KEY,
  ps_availqty BIGINT,
  ps_supplycost BIGINT,
  ps_partkey BIGINT REFERENCES part,
  ps_suppkey BIGINT REFERENCES supplier
);

CREATE TABLE orders (
  o_orderkey BIGINT PRIMARY KEY,
  o_orderdate BIGINT,
  o_orderpriority VARCHAR(64),
  o_orderstatus VARCHAR(64),
  o_comment VARCHAR(64),
  o_custkey BIGINT REFERENCES customer
);

CREATE TABLE lineitem (
  l_linekey BIGINT PRIMARY KEY,
  l_quantity BIGINT,
  l_discount BIGINT,
  l_shipdate BIGINT,
  l_commitdate BIGINT,
  l_receiptdate BIGINT,
  l_returnflag VARCHAR(64),
  l_shipmode VARCHAR(64),
  l_extendedprice BIGINT,
  l_orderkey BIGINT REFERENCES orders,
  l_partkey BIGINT REFERENCES part,
  l_suppkey BIGINT REFERENCES supplier
);

