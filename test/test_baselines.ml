module Workload = Mirage_core.Workload
module Error = Mirage_core.Error
module Extract = Mirage_core.Extract
module Types = Mirage_baselines.Types
module Support = Mirage_baselines.Support
module Capability = Mirage_baselines.Capability

let tpch () = Mirage_workloads.Tpch.make ~sf:0.05 ~seed:1
let ssb () = Mirage_workloads.Ssb.make ~sf:0.5 ~seed:1

let count_supported supports (w : Workload.t) =
  List.length
    (List.filter
       (fun (q : Workload.query) -> supports w.Workload.w_schema q.Workload.q_plan)
       w.Workload.w_queries)

let test_support_counts_tpch () =
  let w, _, _ = tpch () in
  (* Touchstone: everything except semi/anti/or-across (paper claims Q1-16;
     our Q4 models EXISTS as a semi join, hence 15 — see EXPERIMENTS.md) *)
  Alcotest.(check int) "touchstone" 15 (count_supported Support.touchstone_supports w);
  Alcotest.(check int) "hydra" 8 (count_supported Support.hydra_supports w);
  Alcotest.(check int) "mirage" 22 (count_supported Support.mirage_supports w)

let test_support_counts_ssb () =
  let w, _, _ = ssb () in
  Alcotest.(check int) "touchstone all" 13 (count_supported Support.touchstone_supports w);
  (* the string-range query (our q2.2) is Hydra's only unsupported one *)
  Alcotest.(check int) "hydra 12" 12 (count_supported Support.hydra_supports w)

let run_and_score gen =
  let w, ref_db, prod_env = ssb () in
  let r : Types.result = gen w ~ref_db ~prod_env ~seed:2 in
  let aqts = (Extract.run w ~ref_db ~prod_env).Extract.aqts in
  let errs = Error.measure ~aqts ~db:r.Types.b_db ~env:r.Types.b_env in
  (r, errs)

let test_touchstone_small_errors () =
  let r, errs = run_and_score Mirage_baselines.Touchstone.generate in
  Alcotest.(check int) "all ssb supported" 13 (List.length r.Types.b_supported);
  List.iter
    (fun (e : Error.query_error) ->
      if not (List.mem e.Error.qe_name r.Types.b_unsupported) then
        Alcotest.(check bool)
          (Printf.sprintf "%s error small (%.4f)" e.Error.qe_name e.Error.qe_relative)
          true
          (e.Error.qe_relative < 0.08))
    errs

let test_touchstone_preserves_row_counts () =
  let w, ref_db, prod_env = ssb () in
  let r = Mirage_baselines.Touchstone.generate w ~ref_db ~prod_env ~seed:2 in
  Alcotest.(check int) "lineorder rows" (Mirage_engine.Db.row_count ref_db "lineorder")
    (Mirage_engine.Db.row_count r.Types.b_db "lineorder")

let test_hydra_small_errors_where_supported () =
  let r, errs = run_and_score Mirage_baselines.Hydra.generate in
  List.iter
    (fun (e : Error.query_error) ->
      if not (List.mem e.Error.qe_name r.Types.b_unsupported) then
        Alcotest.(check bool)
          (Printf.sprintf "%s slender (%.4f)" e.Error.qe_name e.Error.qe_relative)
          true
          (e.Error.qe_relative < 0.10))
    errs

let test_hydra_marks_string_range_unsupported () =
  let r, _ = run_and_score Mirage_baselines.Hydra.generate in
  Alcotest.(check bool) "q2.2 unsupported" true
    (List.mem "ssb_q2.2" r.Types.b_unsupported)

let test_capability_matrix () =
  let rows = Capability.table () in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  let find n = List.find (fun (r : Capability.row) -> r.Capability.r_name = n) rows in
  Alcotest.(check int) "mirage full" 22 (find "Mirage").Capability.r_tpch_supported;
  Alcotest.(check bool) "mirage only with all joins" true
    (let m = find "Mirage" in
     m.Capability.r_anti && m.Capability.r_outer && m.Capability.r_semi);
  Alcotest.(check bool) "hydra fewer than touchstone" true
    ((find "Hydra").Capability.r_tpch_supported
    < (find "Touchstone").Capability.r_tpch_supported)

let () =
  Alcotest.run "baselines"
    [
      ( "support",
        [
          Alcotest.test_case "tpch counts" `Quick test_support_counts_tpch;
          Alcotest.test_case "ssb counts" `Quick test_support_counts_ssb;
        ] );
      ( "touchstone",
        [
          Alcotest.test_case "small errors on ssb" `Quick test_touchstone_small_errors;
          Alcotest.test_case "row counts preserved" `Quick test_touchstone_preserves_row_counts;
        ] );
      ( "hydra",
        [
          Alcotest.test_case "slender errors" `Quick test_hydra_small_errors_where_supported;
          Alcotest.test_case "string range unsupported" `Quick test_hydra_marks_string_range_unsupported;
        ] );
      ("capability", [ Alcotest.test_case "matrix" `Quick test_capability_matrix ]);
    ]
