module Value = Mirage_sql.Value
module Like = Mirage_sql.Like
module Pred = Mirage_sql.Pred
module Parser = Mirage_sql.Parser
module Schema = Mirage_sql.Schema

(* --- Value --------------------------------------------------------------- *)

let test_value_compare_total () =
  Alcotest.(check bool) "null first" true (Value.compare Value.Null (Value.Int 0) < 0);
  Alcotest.(check int) "ints" (-1) (compare (Value.compare (Value.Int 1) (Value.Int 2)) 0);
  Alcotest.(check int) "int/float numeric" 0 (Value.compare (Value.Int 2) (Value.Float 2.0))

let test_value_cmp_sql_null () =
  Alcotest.(check bool) "null incomparable" true
    (Value.cmp_sql Value.Null (Value.Int 1) = None);
  Alcotest.(check bool) "null vs null" true (Value.cmp_sql Value.Null Value.Null = None)

let test_value_cmp_sql_mixed () =
  Alcotest.(check (option int)) "int vs float" (Some 0)
    (Value.cmp_sql (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check (option int)) "str" (Some (-1))
    (Option.map (fun c -> compare c 0) (Value.cmp_sql (Value.Str "a") (Value.Str "b")));
  Alcotest.(check bool) "str vs int incomparable" true
    (Value.cmp_sql (Value.Str "1") (Value.Int 1) = None)

let test_value_to_float () =
  Alcotest.(check (option (float 0.0))) "int" (Some 4.0) (Value.to_float (Value.Int 4));
  Alcotest.(check bool) "str none" true (Value.to_float (Value.Str "x") = None)

(* --- Like ---------------------------------------------------------------- *)

let like_cases =
  [
    ("abc", "abc", true);
    ("abc", "abd", false);
    ("%", "", true);
    ("%", "anything", true);
    ("a%", "abc", true);
    ("a%", "bac", false);
    ("%c", "abc", true);
    ("%c", "cab", false);
    ("%b%", "abc", true);
    ("%b%", "ac", false);
    ("a_c", "abc", true);
    ("a_c", "ac", false);
    ("a__", "abc", true);
    ("%a%b%", "xxaxxbxx", true);
    ("%a%b%", "xxbxxaxx", false);
    ("%special%requests%", "the special customer requests arrived", true);
    ("%special%requests%", "requests special", false);
    ("", "", true);
    ("", "a", false);
    ("%%", "x", true);
    ("_%", "", false);
  ]

let test_like_cases () =
  List.iter
    (fun (pattern, s, expect) ->
      Alcotest.(check bool) (Printf.sprintf "%s ~ %s" pattern s) expect
        (Like.matches ~pattern s))
    like_cases

(* reference implementation: recursive descent *)
let rec like_ref p s pi si =
  if pi = String.length p then si = String.length s
  else
    match p.[pi] with
    | '%' ->
        let rec try_skip k =
          k <= String.length s && (like_ref p s (pi + 1) k || try_skip (k + 1))
        in
        try_skip si
    | '_' -> si < String.length s && like_ref p s (pi + 1) (si + 1)
    | c -> si < String.length s && s.[si] = c && like_ref p s (pi + 1) (si + 1)

let prop_like_vs_reference =
  let gen =
    QCheck.Gen.(
      pair
        (string_size ~gen:(oneofl [ 'a'; 'b'; '%'; '_' ]) (0 -- 8))
        (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 10)))
  in
  QCheck.Test.make ~name:"like agrees with reference matcher" ~count:500
    (QCheck.make gen) (fun (pattern, s) ->
      Like.matches ~pattern s = like_ref pattern s 0 0)

(* --- Pred ---------------------------------------------------------------- *)

let lookup_of l c = match List.assoc_opt c l with Some v -> v | None -> Value.Null

let env =
  Pred.Env.of_list
    [
      ("p", Pred.Env.Scalar (Value.Int 5));
      ("q", Pred.Env.Scalar (Value.Str "hi"));
      ("l", Pred.Env.Vlist [ Value.Int 1; Value.Int 3 ]);
      ("pat", Pred.Env.Scalar (Value.Str "h%"));
      ("f", Pred.Env.Scalar (Value.Float 2.5));
    ]

let row = [ ("a", Value.Int 4); ("b", Value.Str "hi"); ("c", Value.Int 3); ("n", Value.Null) ]

let ev p = Pred.eval ~env (lookup_of row) p

let test_pred_cmp () =
  Alcotest.(check bool) "a < p" true (ev (Parser.pred "a < $p"));
  Alcotest.(check bool) "a > p" false (ev (Parser.pred "a > $p"));
  Alcotest.(check bool) "a <> p" true (ev (Parser.pred "a <> $p"));
  Alcotest.(check bool) "a = 4" true (ev (Parser.pred "a = 4"));
  Alcotest.(check bool) "a >= 4" true (ev (Parser.pred "a >= 4"));
  Alcotest.(check bool) "a <= 3" false (ev (Parser.pred "a <= 3"))

let test_pred_null_semantics () =
  Alcotest.(check bool) "n = p false" false (ev (Parser.pred "n = $p"));
  Alcotest.(check bool) "n <> p false (SQL-ish)" false (ev (Parser.pred "n <> $p"));
  Alcotest.(check bool) "n in l false" false (ev (Parser.pred "n in $l"))

let test_pred_in_like () =
  Alcotest.(check bool) "c in l" true (ev (Parser.pred "c in $l"));
  Alcotest.(check bool) "a not in l" true (ev (Parser.pred "a not in $l"));
  Alcotest.(check bool) "b like pat" true (ev (Parser.pred "b like $pat"));
  Alcotest.(check bool) "b not like pat" false (ev (Parser.pred "b not like $pat"));
  Alcotest.(check bool) "b in literal list" true (ev (Parser.pred "b in ('hi', 'ho')"))

let test_pred_arith () =
  Alcotest.(check bool) "a - c > f" false (ev (Parser.pred "a - c > $f"));
  Alcotest.(check bool) "a + c > f" true (ev (Parser.pred "a + c > $f"));
  Alcotest.(check bool) "a * c >= 12" true (ev (Parser.pred "a * c >= 12"));
  Alcotest.(check bool) "arith with null false" false (ev (Parser.pred "a - n > $f"))

let test_pred_logic () =
  Alcotest.(check bool) "and" true (ev (Parser.pred "a = 4 and c = 3"));
  Alcotest.(check bool) "or" true (ev (Parser.pred "a = 9 or c = 3"));
  Alcotest.(check bool) "not" true (ev (Parser.pred "not a = 9"));
  Alcotest.(check bool) "nested" true (ev (Parser.pred "(a = 9 or c = 3) and b = 'hi'"))

let test_pred_unbound_param () =
  Alcotest.check_raises "unbound"
    (Invalid_argument "Pred.eval: unbound parameter zz") (fun () ->
      ignore (ev (Parser.pred "a < $zz")))

let test_columns_params () =
  let p = Parser.pred "a < $p and (b = $q or c - a > $r)" in
  Alcotest.(check (list string)) "columns" [ "a"; "b"; "c" ] (Pred.columns p);
  Alcotest.(check (list string)) "params" [ "p"; "q"; "r" ] (Pred.params p)

let test_negate_literal_involution () =
  let lits =
    [
      Pred.Cmp { col = "a"; cmp = Pred.Lt; arg = Pred.Param "p" };
      Pred.Cmp { col = "a"; cmp = Pred.Eq; arg = Pred.Param "p" };
      Pred.In { col = "a"; neg = false; arg = Pred.Param "l" };
      Pred.Like { col = "a"; neg = true; arg = Pred.Param "pat" };
    ]
  in
  List.iter
    (fun l ->
      match Pred.negate_literal l with
      | Some l' -> (
          match Pred.negate_literal l' with
          | Some l'' -> Alcotest.(check bool) "involution" true (l = l'')
          | None -> Alcotest.fail "negate failed")
      | None -> Alcotest.fail "negate failed")
    lits

(* random predicate generator over a fixed row, for the CNF property *)
let gen_pred : Pred.t QCheck.Gen.t =
  let open QCheck.Gen in
  let lit =
    oneof
      [
        map (fun v -> Parser.pred (Printf.sprintf "a < %d" v)) (int_range 0 9);
        map (fun v -> Parser.pred (Printf.sprintf "c = %d" v)) (int_range 0 5);
        map (fun v -> Parser.pred (Printf.sprintf "a - c > %d" v)) (int_range (-5) 5);
      ]
  in
  fix
    (fun self n ->
      if n = 0 then lit
      else
        frequency
          [
            (2, lit);
            (2, map2 (fun a b -> Pred.And [ a; b ]) (self (n - 1)) (self (n - 1)));
            (2, map2 (fun a b -> Pred.Or [ a; b ]) (self (n - 1)) (self (n - 1)));
            (1, map (fun a -> Pred.Not a) (self (n - 1)));
          ])
    3

let prop_cnf_preserves_semantics =
  QCheck.Test.make ~name:"CNF conversion preserves evaluation" ~count:300
    (QCheck.make gen_pred) (fun p ->
      let direct = ev p in
      let clauses = Pred.cnf p in
      let via_cnf =
        List.for_all (fun clause -> List.exists (fun l -> ev l) clause) clauses
      in
      direct = via_cnf)

let prop_pp_parse_roundtrip =
  (* the bundle format serialises predicates through Pred.pp and re-parses
     them with Parser.pred: the round trip must preserve evaluation *)
  QCheck.Test.make ~name:"pp/parse round trip preserves evaluation" ~count:300
    (QCheck.make gen_pred) (fun p ->
      match Parser.pred_opt (Pred.to_string p) with
      | Error _ -> false
      | Ok p' -> ev p = ev p')

(* --- Parser -------------------------------------------------------------- *)

let test_parser_roundtrip_shapes () =
  let ok s = match Parser.pred_opt s with Ok _ -> true | Error _ -> false in
  List.iter
    (fun s -> Alcotest.(check bool) s true (ok s))
    [
      "a = $p";
      "a <= 10 and b >= 3";
      "a in (1, 2, 3)";
      "name like '%x%'";
      "a - b * c > $p";
      "(a = 1 or b = 2) and c <> 3";
      "not (a = 1)";
      "a != 2";
    ]

let test_parser_errors () =
  let bad s = match Parser.pred_opt s with Ok _ -> false | Error _ -> true in
  List.iter
    (fun s -> Alcotest.(check bool) s true (bad s))
    [ "a <"; "= 3"; "a = $"; "a in (1,"; "a like"; "a = 'unterminated"; "a = 1 extra" ]

let test_parser_arith_eq_rejected () =
  Alcotest.(check bool) "arith with = rejected" true
    (match Parser.pred_opt "a - b = 3" with Error _ -> true | Ok _ -> false)

let test_parser_precedence () =
  (* and binds tighter than or *)
  let p = Parser.pred "a = 1 or a = 4 and c = 3" in
  Alcotest.(check bool) "or of and" true (ev p);
  match p with
  | Pred.Or [ _; Pred.And _ ] -> ()
  | _ -> Alcotest.failf "unexpected shape: %s" (Pred.to_string p)

(* --- Schema -------------------------------------------------------------- *)

let table ?(fks = []) name pk cols rows =
  {
    Schema.tname = name;
    pk;
    nonkeys =
      List.map (fun (c, d) -> { Schema.cname = c; domain_size = d; kind = Schema.Kint }) cols;
    fks;
    row_count = rows;
  }

let test_schema_ok () =
  let s =
    Schema.make
      [
        table "s" "s_pk" [ ("s1", 4) ] 4;
        table "t" "t_pk" [ ("t1", 5) ] 8
          ~fks:[ { Schema.fk_col = "t_fk"; references = "s" } ];
      ]
  in
  Alcotest.(check int) "tables" 2 (List.length (Schema.tables s));
  Alcotest.(check bool) "fk resolves" true (Schema.is_fk (Schema.table s "t") "t_fk");
  Alcotest.(check (list (pair string string))) "edges" [ ("s", "t") ]
    (Schema.referencing_edges s)

let test_schema_errors () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "dup table" true
    (raises (fun () -> ignore (Schema.make [ table "a" "pk" [] 1; table "a" "pk2" [] 1 ])));
  Alcotest.(check bool) "bad fk" true
    (raises (fun () ->
         ignore
           (Schema.make
              [ table "a" "pk" [] 1 ~fks:[ { Schema.fk_col = "x"; references = "nope" } ] ])));
  Alcotest.(check bool) "dup column" true
    (raises (fun () -> ignore (Schema.make [ table "a" "c" [ ("c", 2) ] 1 ])));
  Alcotest.(check bool) "bad rows" true
    (raises (fun () -> ignore (Schema.make [ table "a" "pk" [] 0 ])))

let test_schema_scale () =
  let s = Schema.make [ table "a" "pk" [ ("x", 3) ] 100 ] in
  let s2 = Schema.scale s 2.5 in
  Alcotest.(check int) "scaled" 250 (Schema.table s2 "a").Schema.row_count

let () =
  Alcotest.run "sql"
    [
      ( "value",
        [
          Alcotest.test_case "total order" `Quick test_value_compare_total;
          Alcotest.test_case "null sql" `Quick test_value_cmp_sql_null;
          Alcotest.test_case "mixed types" `Quick test_value_cmp_sql_mixed;
          Alcotest.test_case "to_float" `Quick test_value_to_float;
        ] );
      ( "like",
        [
          Alcotest.test_case "cases" `Quick test_like_cases;
          QCheck_alcotest.to_alcotest prop_like_vs_reference;
        ] );
      ( "pred",
        [
          Alcotest.test_case "comparisons" `Quick test_pred_cmp;
          Alcotest.test_case "null semantics" `Quick test_pred_null_semantics;
          Alcotest.test_case "in and like" `Quick test_pred_in_like;
          Alcotest.test_case "arithmetic" `Quick test_pred_arith;
          Alcotest.test_case "logic" `Quick test_pred_logic;
          Alcotest.test_case "unbound param" `Quick test_pred_unbound_param;
          Alcotest.test_case "columns and params" `Quick test_columns_params;
          Alcotest.test_case "negate involution" `Quick test_negate_literal_involution;
          QCheck_alcotest.to_alcotest prop_cnf_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_pp_parse_roundtrip;
        ] );
      ( "parser",
        [
          Alcotest.test_case "accepted shapes" `Quick test_parser_roundtrip_shapes;
          Alcotest.test_case "rejected shapes" `Quick test_parser_errors;
          Alcotest.test_case "arith eq rejected" `Quick test_parser_arith_eq_rejected;
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
        ] );
      ( "schema",
        [
          Alcotest.test_case "valid schema" `Quick test_schema_ok;
          Alcotest.test_case "invalid schemas" `Quick test_schema_errors;
          Alcotest.test_case "scaling" `Quick test_schema_scale;
        ] );
    ]
