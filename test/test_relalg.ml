module Plan = Mirage_relalg.Plan
module Aqt = Mirage_relalg.Aqt
module Parser = Mirage_sql.Parser
module Schema = Mirage_sql.Schema

let schema =
  Schema.make
    [
      {
        Schema.tname = "s";
        pk = "s_pk";
        nonkeys = [ { Schema.cname = "s1"; domain_size = 4; kind = Schema.Kint } ];
        fks = [];
        row_count = 4;
      };
      {
        Schema.tname = "t";
        pk = "t_pk";
        nonkeys =
          [
            { Schema.cname = "t1"; domain_size = 5; kind = Schema.Kint };
            { Schema.cname = "t2"; domain_size = 4; kind = Schema.Kint };
          ];
        fks = [ { Schema.fk_col = "t_fk"; references = "s" } ];
        row_count = 8;
      };
    ]

let join ?(jt = Plan.Inner) left right =
  Plan.Join { jt; pk_table = "s"; fk_table = "t"; fk_col = "t_fk"; left; right }

let q1 =
  Plan.Project
    {
      cols = [ "t_fk" ];
      input =
        join
          (Plan.Select (Parser.pred "s1 < $p1", Plan.Table "s"))
          (Plan.Select (Parser.pred "t1 > $p2", Plan.Table "t"));
    }

let test_preorder_order () =
  let labels = List.map Plan.node_label (Plan.preorder q1) in
  Alcotest.(check int) "six views" 6 (List.length labels);
  (* root first, then left subtree, then right subtree *)
  Alcotest.(check bool) "project first" true
    (String.length (List.nth labels 0) > 0 && String.sub (List.nth labels 0) 0 1 <> "s");
  Alcotest.(check string) "s under its select" "s" (List.nth labels 3)

let test_size_tables_params () =
  Alcotest.(check int) "size" 6 (Plan.size q1);
  Alcotest.(check (list string)) "tables" [ "s"; "t" ] (Plan.tables q1);
  Alcotest.(check (list string)) "params" [ "p1"; "p2" ] (Plan.params q1)

let test_joins_indexed () =
  match Plan.joins q1 with
  | [ (idx, Plan.Join _) ] -> Alcotest.(check int) "join at preorder 1" 1 idx
  | _ -> Alcotest.fail "expected exactly one join"

let test_selects_over () =
  let so = Plan.selects_over q1 in
  Alcotest.(check int) "two tables" 2 (List.length so);
  List.iter
    (fun (t, preds) ->
      Alcotest.(check int) (t ^ " has one select") 1 (List.length preds))
    so

let test_validate_ok () =
  Alcotest.(check bool) "valid" true (Plan.validate schema q1 = Ok ())

let test_validate_errors () =
  let is_err = function Error _ -> true | Ok () -> false in
  Alcotest.(check bool) "unknown table" true
    (is_err (Plan.validate schema (Plan.Table "nope")));
  Alcotest.(check bool) "bad predicate column" true
    (is_err
       (Plan.validate schema (Plan.Select (Parser.pred "zz > 1", Plan.Table "s"))));
  Alcotest.(check bool) "pk side must hold pk table" true
    (is_err
       (Plan.validate schema
          (Plan.Join
             {
               jt = Plan.Inner;
               pk_table = "s";
               fk_table = "t";
               fk_col = "t_fk";
               left = Plan.Table "t";
               right = Plan.Table "s";
             })));
  Alcotest.(check bool) "non-fk join column" true
    (is_err
       (Plan.validate schema
          (Plan.Join
             {
               jt = Plan.Inner;
               pk_table = "s";
               fk_table = "t";
               fk_col = "t1";
               left = Plan.Table "s";
               right = Plan.Table "t";
             })))

let test_all_join_types_validate () =
  List.iter
    (fun jt ->
      Alcotest.(check bool) "join type validates" true
        (Plan.validate schema (join ~jt (Plan.Table "s") (Plan.Table "t")) = Ok ()))
    [
      Plan.Inner; Plan.Left_outer; Plan.Right_outer; Plan.Full_outer;
      Plan.Left_semi; Plan.Right_semi; Plan.Left_anti; Plan.Right_anti;
    ]

let test_aqt_annotation () =
  let aqt = Aqt.unannotated ~name:"q" q1 in
  Alcotest.(check (list (pair int int))) "none yet" []
    (List.map (fun (i, _, n) -> (i, n)) (Aqt.annotated_views aqt));
  let aqt = Aqt.annotate (Aqt.annotate aqt 0 2) 1 3 in
  Alcotest.(check (option int)) "view 0" (Some 2) (Aqt.card aqt 0);
  Alcotest.(check (option int)) "view 1" (Some 3) (Aqt.card aqt 1);
  Alcotest.(check (option int)) "view 2 unset" None (Aqt.card aqt 2);
  Alcotest.(check int) "two annotated" 2 (List.length (Aqt.annotated_views aqt))

let test_aqt_out_of_range () =
  let aqt = Aqt.unannotated ~name:"q" q1 in
  Alcotest.(check bool) "bad index raises" true
    (try ignore (Aqt.annotate aqt 99 1); false with Invalid_argument _ -> true);
  Alcotest.(check (option int)) "card out of range" None (Aqt.card aqt 99)

let () =
  Alcotest.run "relalg"
    [
      ( "plan",
        [
          Alcotest.test_case "preorder" `Quick test_preorder_order;
          Alcotest.test_case "size/tables/params" `Quick test_size_tables_params;
          Alcotest.test_case "joins indexed" `Quick test_joins_indexed;
          Alcotest.test_case "selects_over" `Quick test_selects_over;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "validate errors" `Quick test_validate_errors;
          Alcotest.test_case "all join types" `Quick test_all_join_types_validate;
        ] );
      ( "aqt",
        [
          Alcotest.test_case "annotation" `Quick test_aqt_annotation;
          Alcotest.test_case "out of range" `Quick test_aqt_out_of_range;
        ] );
    ]
