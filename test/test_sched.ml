(* Pipeline scheduler (Driver.config.schedule): the dependency-aware overlap
   schedule must generate byte-identical databases and parameters to the
   legacy barrier walk — across workloads, domain counts and chunk sizes —
   answer the same number of CP solves from the solve cache, survive a
   kill-and-resume through the live per-table export, and never start a task
   before its dependencies complete (QCheck, randomized task latencies). *)

module Driver = Mirage_core.Driver
module Solve_cache = Mirage_core.Solve_cache
module Scale_out = Mirage_core.Scale_out
module Sink = Mirage_engine.Sink
module Db = Mirage_engine.Db
module Par = Mirage_par.Par
module Schema = Mirage_sql.Schema

let fresh_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Sink.mkdir_p base;
  base

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let table_names db =
  List.map (fun (t : Schema.table) -> t.Schema.tname) (Schema.tables (Db.schema db))

let concat_shards dir tname =
  let rec go k acc =
    let p = Filename.concat dir (Printf.sprintf "%s.csv.%d" tname k) in
    if Sys.file_exists p then go (k + 1) (acc ^ read_file p) else acc
  in
  go 0 ""

let largest_table db =
  List.fold_left (fun m t -> max m (Db.row_count db t)) 1 (table_names db)

(* value digest over every column: rendered values, not Marshal bytes —
   chunked assembly may change physical string sharing without changing a
   single value, and the schedule contract is about values *)
let db_digest db =
  let b = Buffer.create 4096 in
  let acc = Buffer.create 256 in
  List.iter
    (fun (tbl : Schema.table) ->
      let t = tbl.Schema.tname in
      List.iter
        (fun c ->
          Buffer.clear b;
          Array.iter
            (fun v ->
              Buffer.add_string b (Mirage_sql.Value.to_string v);
              Buffer.add_char b '\x00')
            (Db.column db t c);
          Buffer.add_string acc (Digest.string (Buffer.contents b)))
        (Schema.column_names tbl))
    (Schema.tables (Db.schema db));
  Digest.to_hex (Digest.string (Buffer.contents acc))

let generate ?(schedule = `Overlap) ?chunk_rows ?(domains = 1) ?cache
    ?on_table_ready ?on_attempt_abort make ~sf =
  let workload, ref_db, prod_env = make ~sf ~seed:7 in
  let config =
    { Driver.default_config with
      seed = 42; batch_size = 1_000_000; domains; chunk_rows; schedule; cache;
      on_table_ready; on_attempt_abort }
  in
  match Driver.generate ~config workload ~ref_db ~prod_env with
  | Error d -> Alcotest.fail (Mirage_core.Diag.to_string d)
  | Ok r -> r

(* --- overlap = barrier byte identity --------------------------------------- *)

let test_sched_identity make ~sf () =
  let barrier = generate ~schedule:`Barrier make ~sf in
  let ref_digest = db_digest barrier.Driver.r_db in
  let ref_env = Mirage_sql.Pred.Env.bindings barrier.Driver.r_env in
  let largest = largest_table barrier.Driver.r_db in
  (* a non-dividing prime and a several-chunks-per-fact-table size, so the
     solve-ahead window crosses ragged chunk boundaries *)
  List.iter
    (fun chunk_rows ->
      List.iter
        (fun domains ->
          let r = generate ~chunk_rows ~domains make ~sf in
          let label = Printf.sprintf "chunk=%d domains=%d" chunk_rows domains in
          Alcotest.(check string)
            (label ^ ": overlap db = barrier db")
            ref_digest (db_digest r.Driver.r_db);
          Alcotest.(check bool)
            (label ^ ": parameters identical")
            true
            (ref_env = Mirage_sql.Pred.Env.bindings r.Driver.r_env))
        [ 1; 2; 4 ])
    [ 37; max 2 (largest / 3) ];
  (* monolithic overlap too — the schedule must not depend on chunking *)
  let r = generate ~domains:4 make ~sf in
  Alcotest.(check string)
    "monolithic overlap db = barrier db" ref_digest (db_digest r.Driver.r_db)

(* --- solve-cache parity ----------------------------------------------------- *)

(* the overlap schedule routes CP solves through the same sharded
   single-flight cache; with a private cache per mode, both modes must
   answer the same number of solves from it (waiters count as hits) *)
let test_cache_parity () =
  let run schedule =
    let cache = Solve_cache.create () in
    let r =
      generate ~schedule ~domains:2 ~cache Mirage_workloads.Tpch.make ~sf:0.05
    in
    let t = r.Driver.r_timings in
    (t.Driver.cp_solves, t.Driver.cp_cache_hits, db_digest r.Driver.r_db)
  in
  let solves_b, hits_b, dg_b = run `Barrier in
  let solves_o, hits_o, dg_o = run `Overlap in
  Alcotest.(check string) "same database" dg_b dg_o;
  Alcotest.(check int) "same CP solve count" solves_b solves_o;
  Alcotest.(check int) "same cache hit count" hits_b hits_o

(* --- kill + resume through the live per-table export ------------------------ *)

let test_live_export_crash_resume () =
  let make = Mirage_workloads.Ssb.make and sf = 0.05 in
  let mono = generate ~schedule:`Barrier make ~sf in
  let dir_m = fresh_dir "mirage_sched_m" and dir_c = fresh_dir "mirage_sched_c" in
  Scale_out.to_csv_dir ~db:mono.Driver.r_db ~copies:1 ~dir:dir_m ();
  let chunk_rows = max 1 (largest_table mono.Driver.r_db / 3) in
  let run_id = "sched-resume" in
  let pool = Par.get ~domains:2 () in
  let with_live ?backend ?(resume = false) f =
    let h =
      Scale_out.open_csv_export ~pool ?backend ~resume ~copies:1 ~chunk_rows
        ~dir:dir_c ~run_id ()
    in
    let r =
      generate ~domains:2 ~chunk_rows
        ~on_table_ready:(fun db tname -> Scale_out.export_table h ~db tname)
        ~on_attempt_abort:(fun () -> Scale_out.abort_csv_export h)
        make ~sf
    in
    f h r
  in
  (* run 1: the backend simulates a kill at the third shard commit.  Export
     tasks riding generation swallow the crash (releasing their claims), so
     the finish pass is where it must surface — exactly 2 shards committed. *)
  let crashed =
    let backend =
      Sink.faulty
        { Sink.no_faults with Sink.crash_after_shards = Some 2 }
        Sink.os_backend
    in
    with_live ~backend (fun h r ->
        match Scale_out.finish_csv_export h ~db:r.Driver.r_db with
        | _ -> false
        | exception Sink.Injected_crash _ -> true)
  in
  Alcotest.(check bool) "run 1 crashed" true crashed;
  (* run 2: same parameters, --resume; the committed prefix is skipped and
     the completed export is byte-identical to the monolithic writer *)
  with_live ~resume:true (fun h r ->
      let rep = Scale_out.finish_csv_export h ~db:r.Driver.r_db in
      Alcotest.(check int) "committed prefix resumed" 2 rep.Scale_out.cr_resumed;
      List.iter
        (fun t ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: resumed live export = monolithic" t)
            true
            (String.equal
               (read_file (Filename.concat dir_m (t ^ ".csv")))
               (concat_shards dir_c t)))
        (table_names r.Driver.r_db));
  rm_rf dir_m;
  rm_rf dir_c

(* --- QCheck: task-DAG ordering under randomized latencies ------------------- *)

(* test/dune has no unix dependency, so latency is a spin-wait; opaque to
   keep the loop from being optimised away *)
let spin n =
  let x = ref 0 in
  for _ = 1 to n * 20 do
    x := Sys.opaque_identity (!x + 1)
  done

(* the driver's orchestration pattern in miniature: a task is submitted only
   once every dependency's future has been awaited, so no queued task ever
   waits on upward work (the helping-deadlock freedom argument in
   DESIGN.md).  The property: every task runs exactly once and never starts
   before all of its dependencies finished, for random DAGs, random task
   latencies and random pool widths. *)
let qcheck_dag_ordering =
  QCheck.Test.make ~count:25
    ~name:"orchestrated task DAG respects dependencies under random latency"
    QCheck.(
      pair (int_range 2 14) (pair (int_range 1 4) (pair int (small_list (int_range 0 400)))))
    (fun (n, (domains, (seed, lats))) ->
      let rng = Random.State.make [| seed |] in
      (* deps.(i) ⊆ {0..i-1}: acyclic by construction, like topo-ordered
         FK edges *)
      let deps =
        Array.init n (fun i ->
            List.filter (fun _ -> Random.State.bool rng) (List.init i Fun.id))
      in
      let latency_of t =
        match lats with [] -> 0 | _ -> List.nth lats (t mod List.length lats)
      in
      let pool = Par.get ~domains () in
      let m = Mutex.create () in
      let finished = Array.make n false in
      let runs = Array.make n 0 in
      let violations = ref 0 in
      let futs = Hashtbl.create n in
      let remaining = Array.init n (fun i -> List.length deps.(i)) in
      let submit i =
        Hashtbl.replace futs i
          (Par.Future.submit pool (fun () ->
               Mutex.lock m;
               if not (List.for_all (fun d -> finished.(d)) deps.(i)) then
                 incr violations;
               runs.(i) <- runs.(i) + 1;
               Mutex.unlock m;
               spin (latency_of i);
               Mutex.lock m;
               finished.(i) <- true;
               Mutex.unlock m))
      in
      for i = 0 to n - 1 do
        if remaining.(i) = 0 then submit i
      done;
      for i = 0 to n - 1 do
        Par.Future.await (Hashtbl.find futs i);
        for j = i + 1 to n - 1 do
          if List.mem i deps.(j) then begin
            remaining.(j) <- remaining.(j) - 1;
            if remaining.(j) = 0 then submit j
          end
        done
      done;
      !violations = 0
      && Array.for_all (fun r -> r = 1) runs
      && Array.for_all Fun.id finished)

let () =
  Alcotest.run "sched"
    [
      ( "identity",
        [
          Alcotest.test_case
            "ssb overlap = barrier, chunks x domains 1/2/4" `Slow
            (test_sched_identity Mirage_workloads.Ssb.make ~sf:0.05);
          Alcotest.test_case
            "tpch overlap = barrier, chunks x domains 1/2/4" `Slow
            (test_sched_identity Mirage_workloads.Tpch.make ~sf:0.05);
        ] );
      ( "cache",
        [ Alcotest.test_case "solve-cache hit parity" `Slow test_cache_parity ] );
      ( "live-export",
        [
          Alcotest.test_case "kill+resume through the live export" `Slow
            test_live_export_crash_resume;
        ] );
      ( "dag",
        [ QCheck_alcotest.to_alcotest qcheck_dag_ordering ] );
    ]
