module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Parser = Mirage_sql.Parser
module Schema = Mirage_sql.Schema
module Plan = Mirage_relalg.Plan
module Db = Mirage_engine.Db
module Col = Mirage_engine.Col
module Exec = Mirage_engine.Exec
module Ir = Mirage_core.Ir
module Diag = Mirage_core.Diag
module Decouple = Mirage_core.Decouple
module Cdf = Mirage_core.Cdf
module Nonkey = Mirage_core.Nonkey
module Acc = Mirage_core.Acc
module Rewrite = Mirage_core.Rewrite
module Extract = Mirage_core.Extract
module Keygen = Mirage_core.Keygen
module Workload = Mirage_core.Workload

module Str_ext = struct
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    nn = 0 || go 0
end

let schema =
  Schema.make
    [
      {
        Schema.tname = "s";
        pk = "s_pk";
        nonkeys = [ { Schema.cname = "s1"; domain_size = 4; kind = Schema.Kint } ];
        fks = [];
        row_count = 4;
      };
      {
        Schema.tname = "t";
        pk = "t_pk";
        nonkeys =
          [
            { Schema.cname = "t1"; domain_size = 5; kind = Schema.Kint };
            { Schema.cname = "t2"; domain_size = 4; kind = Schema.Kint };
            { Schema.cname = "tt"; domain_size = 3; kind = Schema.Kstring };
          ];
        fks = [ { Schema.fk_col = "t_fk"; references = "s" } ];
        row_count = 8;
      };
    ]

let dom t c = (Schema.nonkey (Schema.table schema t) c).Schema.domain_size
let table_rows t = (Schema.table schema t).Schema.row_count

let scc table pred rows =
  { Ir.scc_table = table; scc_pred = Parser.pred pred; scc_rows = rows; scc_source = "test" }

(* --- Decouple (§4.1) ------------------------------------------------------ *)

let test_decouple_single_literal () =
  let d = Decouple.run schema ~dom ~table_rows [ scc "t" "t1 > $p" 6 ] in
  Alcotest.(check int) "one ucc" 1 (List.length d.Decouple.uccs);
  Alcotest.(check int) "no acc" 0 (List.length d.Decouple.accs)

let test_decouple_arith_to_acc () =
  let d = Decouple.run schema ~dom ~table_rows [ scc "t" "t1 - t2 > $p" 5 ] in
  Alcotest.(check int) "one acc" 1 (List.length d.Decouple.accs);
  let a = List.hd d.Decouple.accs in
  Alcotest.(check int) "rows kept" 5 a.Ir.acc_rows

let test_decouple_fig5_v9 () =
  (* (t1 <= p4 or t2 = p5) and t1 - t2 < p6 with |V| = 1: the kept clause is
     the unary one (cheapest), the arith clause becomes universal, the
     eliminated literal gets a sentinel *)
  let d =
    Decouple.run schema ~dom ~table_rows
      [ scc "t" "(t1 <= $p4 or t2 = $p5) and t1 - t2 < $p6" 1 ]
  in
  Alcotest.(check int) "exactly one ucc" 1 (List.length d.Decouple.uccs);
  let u = List.hd d.Decouple.uccs in
  Alcotest.(check int) "count preserved" 1 u.Ir.ucc_rows;
  Alcotest.(check string) "on t1" "t1" u.Ir.ucc_col;
  (* p6 eliminated as universe *)
  (match Pred.Env.find "p6" d.Decouple.fixed_env with
  | Some (Pred.Env.Scalar (Value.Float f)) ->
      Alcotest.(check bool) "p6 = +inf" true (f > 1e17)
  | _ -> Alcotest.fail "p6 not bound");
  (* p5 eliminated as empty (value 0 outside cardinality space) *)
  match Pred.Env.find "p5" d.Decouple.fixed_env with
  | Some (Pred.Env.Scalar (Value.Int 0)) -> ()
  | _ -> Alcotest.fail "p5 not bound to the empty sentinel"

let test_decouple_fig5_v10_demorgan () =
  (* t1 <> p7 or t2 <> p8 with |V| = 5 over |T| = 8: rule 3 gives the
     complement intersection with count 3, as equality UCCs plus a bound
     group *)
  let d =
    Decouple.run schema ~dom ~table_rows [ scc "t" "t1 <> $p7 or t2 <> $p8" 5 ]
  in
  Alcotest.(check int) "two eq uccs" 2 (List.length d.Decouple.uccs);
  List.iter
    (fun (u : Ir.ucc) -> Alcotest.(check int) "complement count" 3 u.Ir.ucc_rows)
    d.Decouple.uccs;
  match d.Decouple.bound with
  | [ b ] ->
      Alcotest.(check int) "bound rows" 3 b.Ir.br_rows;
      Alcotest.(check int) "two cells" 2 (List.length b.Ir.br_cells)
  | _ -> Alcotest.fail "expected one bound group"

let test_decouple_key_column_skipped () =
  let d = Decouple.run schema ~dom ~table_rows [ scc "t" "t_fk = $p" 2 ] in
  Alcotest.(check int) "skipped" 1 (List.length d.Decouple.skipped)

let test_decouple_conflicting_param_counts () =
  let sccs = [ scc "t" "t1 = $p" 3; scc "t" "t1 = $p" 5 ] in
  let d = Decouple.run schema ~dom ~table_rows sccs in
  Alcotest.(check int) "kept one" 1 (List.length d.Decouple.uccs);
  Alcotest.(check int) "conflict reported" 1 (List.length d.Decouple.skipped)

let test_decouple_double_bind_guard () =
  (* $p is kept as a forced UCC and also appears in an OR clause whose
     elimination would sentinel-bind it; the guard must keep the counted
     constraint and drop the sentinel binding *)
  let d =
    Decouple.run schema ~dom ~table_rows
      [ scc "t" "t1 = $p" 3; scc "t" "t1 = $p or t2 > $q" 5 ]
  in
  Alcotest.(check bool) "p not sentinel-bound" false
    (List.mem_assoc "p" (Pred.Env.bindings d.Decouple.fixed_env));
  Alcotest.(check bool) "double bind reported" true
    (List.exists
       (fun (d : Diag.t) ->
         Str_ext.contains d.Diag.d_message "both eliminated and kept")
       d.Decouple.skipped)

let test_sentinels () =
  let lit cmp = Pred.Cmp { col = "t1"; cmp; arg = Pred.Param "p" } in
  let u = Decouple.universe_sentinel Schema.Kint ~dom:5 in
  let e = Decouple.empty_sentinel Schema.Kint ~dom:5 in
  Alcotest.(check bool) "gt universe = 0" true
    (u (lit Pred.Gt) = Some (Pred.Env.Scalar (Value.Int 0)));
  Alcotest.(check bool) "le universe = dom" true
    (u (lit Pred.Le) = Some (Pred.Env.Scalar (Value.Int 5)));
  Alcotest.(check bool) "eq has no universe" true (u (lit Pred.Eq) = None);
  Alcotest.(check bool) "eq empty = 0" true
    (e (lit Pred.Eq) = Some (Pred.Env.Scalar (Value.Int 0)));
  Alcotest.(check bool) "neq has no empty" true (e (lit Pred.Neq) = None)

(* --- Cdf (§4.2-4.3) ------------------------------------------------------- *)

let no_elements _ = []
let no_key _ = None

let ucc table col lit rows =
  { Ir.ucc_table = table; ucc_col = col; ucc_lit = lit; ucc_rows = rows; ucc_source = "test" }

let cmp_lit col cmp p = Pred.Cmp { col; cmp; arg = Pred.Param p }

let layout_exn = function Ok l -> l | Error m -> Alcotest.failf "cdf failed: %s" m

(* evaluate a UCC against a layout: count rows its instantiated parameter
   selects in the value multiset *)
let count_in_layout (l : Cdf.layout) lit =
  let card p =
    match Cdf.lookup_param_card l p with Some v -> v | None -> Alcotest.failf "no card for %s" p
  in
  let counts = l.Cdf.l_value_counts in
  let sum_where f =
    let s = ref 0 in
    Array.iteri (fun i c -> if f (i + 1) then s := !s + c) counts;
    !s
  in
  match lit with
  | Pred.Cmp { cmp = Pred.Le; arg = Pred.Param p; _ } -> sum_where (fun v -> v <= card p)
  | Pred.Cmp { cmp = Pred.Lt; arg = Pred.Param p; _ } -> sum_where (fun v -> v < card p)
  | Pred.Cmp { cmp = Pred.Gt; arg = Pred.Param p; _ } -> sum_where (fun v -> v > card p)
  | Pred.Cmp { cmp = Pred.Ge; arg = Pred.Param p; _ } -> sum_where (fun v -> v >= card p)
  | Pred.Cmp { cmp = Pred.Eq; arg = Pred.Param p; _ } -> sum_where (fun v -> v = card p)
  | Pred.Cmp { cmp = Pred.Neq; arg = Pred.Param p; _ } -> sum_where (fun v -> v <> card p)
  | _ -> Alcotest.fail "unsupported literal in test"

let test_cdf_example_46 () =
  (* Example 4.6: |T| = 8, dom 5, UCCs t1>p2=6, t1<=p4=1, t1=p7=3 *)
  let uccs =
    [
      ucc "t" "t1" (cmp_lit "t1" Pred.Gt "p2") 6;
      ucc "t" "t1" (cmp_lit "t1" Pred.Le "p4") 1;
      ucc "t" "t1" (cmp_lit "t1" Pred.Eq "p7") 3;
    ]
  in
  let l =
    layout_exn
      (Cdf.build ~table:"t" ~col:"t1" ~kind:Schema.Kint ~dom:5 ~rows:8 ~uccs
         ~elements:no_elements ~param_key:no_key ())
  in
  Alcotest.(check int) "total rows" 8 (Array.fold_left ( + ) 0 l.Cdf.l_value_counts);
  Alcotest.(check int) "all 5 values present" 5
    (Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 l.Cdf.l_value_counts);
  List.iter
    (fun (u : Ir.ucc) ->
      let expected =
        match u.Ir.ucc_lit with
        | Pred.Cmp { cmp = Pred.Gt; _ } -> 6
        | Pred.Cmp { cmp = Pred.Le; _ } -> 1
        | _ -> 3
      in
      Alcotest.(check int) "ucc satisfied" expected (count_in_layout l u.Ir.ucc_lit))
    uccs

let test_cdf_equal_counts_share_value () =
  let uccs =
    [
      ucc "t" "t1" (cmp_lit "t1" Pred.Eq "a") 4;
      ucc "t" "t1" (cmp_lit "t1" Pred.Eq "b") 4;
    ]
  in
  let key p = Some (Value.Int (if p = "a" || p = "b" then 2 else 0)) in
  let l =
    layout_exn
      (Cdf.build ~table:"t" ~col:"t1" ~kind:Schema.Kint ~dom:5 ~rows:8 ~uccs
         ~elements:no_elements ~param_key:key ())
  in
  Alcotest.(check (option int)) "same value" (Cdf.lookup_param_card l "a")
    (Cdf.lookup_param_card l "b")

let test_cdf_string_rendering_order () =
  let uccs = [ ucc "t" "tt" (cmp_lit "tt" Pred.Le "p") 5 ] in
  let l =
    layout_exn
      (Cdf.build ~table:"t" ~col:"tt" ~kind:Schema.Kstring ~dom:3 ~rows:8 ~uccs
         ~elements:no_elements ~param_key:no_key ())
  in
  (* rendering preserves order *)
  let r1 = l.Cdf.l_render 1 and r2 = l.Cdf.l_render 2 in
  Alcotest.(check bool) "lexicographic" true (Value.compare r1 r2 < 0)

let test_cdf_infeasible_inputs () =
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "count > rows" true
    (is_err
       (Cdf.build ~table:"t" ~col:"t1" ~kind:Schema.Kint ~dom:5 ~rows:8
          ~uccs:[ ucc "t" "t1" (cmp_lit "t1" Pred.Eq "p") 9 ]
          ~elements:no_elements ~param_key:no_key ()));
  Alcotest.(check bool) "dom > rows" true
    (is_err
       (Cdf.build ~table:"t" ~col:"t1" ~kind:Schema.Kint ~dom:9 ~rows:8 ~uccs:[]
          ~elements:no_elements ~param_key:no_key ()))

let test_cdf_default_layout () =
  let l = Cdf.default_layout ~table:"t" ~col:"t1" ~kind:Schema.Kint ~dom:5 ~rows:8 in
  Alcotest.(check int) "rows" 8 (Array.fold_left ( + ) 0 l.Cdf.l_value_counts);
  Array.iter (fun c -> Alcotest.(check bool) "every value present" true (c > 0))
    l.Cdf.l_value_counts

let prop_cdf_satisfies_random_anchor_sets =
  (* random consistent F-anchors (from a production-like column) are always
     satisfied exactly: Theorem 6.1 *)
  QCheck.Test.make ~name:"random anchor sets reproduce exactly" ~count:200
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Mirage_util.Rng.create seed in
      let rows = 40 + Mirage_util.Rng.int rng 60 in
      let dom = 2 + Mirage_util.Rng.int rng 10 in
      (* fabricate a production column and derive true counts *)
      let data = Array.init rows (fun _ -> 1 + Mirage_util.Rng.int rng dom) in
      let dom_actual = Array.to_list data |> List.sort_uniq compare |> List.length in
      let n_anchors = 1 + Mirage_util.Rng.int rng 3 in
      let uccs =
        List.init n_anchors (fun i ->
            let pv = 1 + Mirage_util.Rng.int rng dom in
            let cnt = Array.fold_left (fun a v -> if v <= pv then a + 1 else a) 0 data in
            ( ucc "t" "t1" (cmp_lit "t1" Pred.Le (Printf.sprintf "p%d" i)) cnt,
              cnt ))
      in
      match
        Cdf.build ~table:"t" ~col:"t1" ~kind:Schema.Kint ~dom:dom_actual ~rows
          ~uccs:(List.map fst uccs) ~elements:no_elements ~param_key:no_key ()
      with
      | Error _ -> false
      | Ok l ->
          List.for_all
            (fun ((u : Ir.ucc), cnt) -> count_in_layout l u.Ir.ucc_lit = cnt)
            uccs)

(* --- Nonkey (§4.3) --------------------------------------------------------- *)

let test_nonkey_preserves_multisets () =
  let t = Schema.table schema "t" in
  let layouts =
    List.map
      (fun (c : Schema.column) ->
        ( c.Schema.cname,
          Cdf.default_layout ~table:"t" ~col:c.Schema.cname ~kind:c.Schema.kind
            ~dom:c.Schema.domain_size ~rows:8 ))
      t.Schema.nonkeys
  in
  let cols =
    Nonkey.generate ~rng:(Mirage_util.Rng.create 3) ~table:t ~rows:8 ~layouts
      ~bound:[] ~param_values:(fun _ -> None) ()
  in
  Alcotest.(check int) "pk + 3 nonkeys" 4 (List.length cols);
  List.iter
    (fun (name, col) ->
      Alcotest.(check int) (name ^ " length") 8 (Mirage_engine.Col.length col);
      Alcotest.(check bool) (name ^ " no nulls") true
        (Array.for_all
           (fun v -> v <> Value.Null)
           (Mirage_engine.Col.to_values col)))
    cols

let test_nonkey_bound_rows () =
  let t = Schema.table schema "t" in
  let mk col =
    (col, Cdf.default_layout ~table:"t" ~col ~kind:Schema.Kint
            ~dom:(Schema.nonkey t col).Schema.domain_size ~rows:8)
  in
  let layouts = [ mk "t1"; mk "t2"; ("tt", Cdf.default_layout ~table:"t" ~col:"tt" ~kind:Schema.Kstring ~dom:3 ~rows:8) ] in
  let bound =
    [ { Ir.br_table = "t"; br_cells = [ ("t1", "p7"); ("t2", "p8") ]; br_rows = 1;
        br_source = "test" } ]
  in
  let param_values p = if p = "p7" then Some [ 4 ] else if p = "p8" then Some [ 2 ] else None in
  let cols =
    Nonkey.generate ~rng:(Mirage_util.Rng.create 4) ~table:t ~rows:8 ~layouts ~bound
      ~param_values ()
  in
  let t1 = Mirage_engine.Col.to_values (List.assoc "t1" cols)
  and t2 = Mirage_engine.Col.to_values (List.assoc "t2" cols) in
  (* count rows where t1=4 and t2=2 simultaneously: at least the bound one *)
  let joint = ref 0 in
  Array.iteri
    (fun i v -> if v = Value.Int 4 && t2.(i) = Value.Int 2 then incr joint)
    t1;
  Alcotest.(check bool) "bound row present" true (!joint >= 1)

(* --- Acc (§4.4) ------------------------------------------------------------ *)

let test_acc_threshold_exact () =
  let values = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let t = Acc.choose_threshold ~cmp:Pred.Gt ~target:2 values in
  Alcotest.(check int) "exactly 2 greater" 2
    (Array.fold_left (fun a v -> if v > t then a + 1 else a) 0 values);
  let t = Acc.choose_threshold ~cmp:Pred.Le ~target:4 values in
  Alcotest.(check int) "exactly 4 at most" 4
    (Array.fold_left (fun a v -> if v <= t then a + 1 else a) 0 values)

let test_acc_threshold_extremes () =
  let values = [| 1.0; 2.0; 3.0 |] in
  let t = Acc.choose_threshold ~cmp:Pred.Gt ~target:0 values in
  Alcotest.(check int) "none greater" 0
    (Array.fold_left (fun a v -> if v > t then a + 1 else a) 0 values);
  let t = Acc.choose_threshold ~cmp:Pred.Gt ~target:3 values in
  Alcotest.(check int) "all greater" 3
    (Array.fold_left (fun a v -> if v > t then a + 1 else a) 0 values)

let prop_acc_threshold_best_effort =
  QCheck.Test.make ~name:"threshold minimises deviation" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) (int_range 0 10)) (int_range 0 30))
    (fun (vals, target) ->
      let values = Array.of_list (List.map float_of_int vals) in
      let target = min target (Array.length values) in
      let t = Acc.choose_threshold ~cmp:Pred.Le ~target values in
      let count = Array.fold_left (fun a v -> if v <= t then a + 1 else a) 0 values in
      (* achieved count is within the best achievable deviation: check no
         single distinct value does strictly better *)
      let distinct = Array.to_list values |> List.sort_uniq compare in
      let best =
        List.fold_left
          (fun best d ->
            let c = Array.fold_left (fun a v -> if v <= d then a + 1 else a) 0 values in
            min best (abs (c - target)))
          (abs (0 - target))
          distinct
      in
      abs (count - target) <= best)

(* --- Rewrite (§3) ----------------------------------------------------------- *)

let join left right =
  Plan.Join { jt = Plan.Inner; pk_table = "s"; fk_table = "t"; fk_col = "t_fk"; left; right }

let test_rewrite_pushes_conjuncts () =
  let plan = Plan.Select (Parser.pred "s1 < $a and t1 > $b", join (Plan.Table "s") (Plan.Table "t")) in
  let r = Rewrite.push_down schema plan in
  Alcotest.(check bool) "pushed down" true (Rewrite.is_pushed_down r.Rewrite.rw_plan);
  Alcotest.(check int) "no aux" 0 (List.length r.Rewrite.rw_aux)

let test_rewrite_or_across_makes_aux () =
  let plan = Plan.Select (Parser.pred "s1 < $a or t1 > $b", join (Plan.Table "s") (Plan.Table "t")) in
  let r = Rewrite.push_down schema plan in
  Alcotest.(check int) "one aux complement" 1 (List.length r.Rewrite.rw_aux);
  (* the aux joins the complements: sigma(s1>=a) x sigma(t1<=b) *)
  match r.Rewrite.rw_aux with
  | [ Plan.Join { left = Plan.Select (pl, _); right = Plan.Select (pr, _); _ } ] ->
      Alcotest.(check bool) "left negated" true
        (String.length (Pred.to_string pl) > 0 && Pred.columns pl = [ "s1" ]);
      Alcotest.(check bool) "right negated" true (Pred.columns pr = [ "t1" ])
  | _ -> Alcotest.fail "unexpected aux shape"

let test_rewrite_nested_or_marginals () =
  (* pushable conjunct + mixed OR: the negated literal on the filtered side
     must be recorded as a marginal *)
  let plan =
    Plan.Select
      ( Parser.pred "(s1 < $a or t1 > $b) and t2 = $c",
        join (Plan.Table "s") (Plan.Table "t") )
  in
  let r = Rewrite.push_down schema plan in
  Alcotest.(check int) "aux" 1 (List.length r.Rewrite.rw_aux);
  Alcotest.(check bool) "marginal recorded for t side" true
    (List.exists (fun (t, _) -> t = "t") r.Rewrite.rw_marginals)

let test_rewrite_two_mixed_clauses_unsupported () =
  let plan =
    Plan.Select
      ( Parser.pred "(s1 < $a or t1 > $b) and (s1 > $c or t2 < $d)",
        join (Plan.Table "s") (Plan.Table "t") )
  in
  Alcotest.(check bool) "unsupported" true
    (try ignore (Rewrite.push_down schema plan); false
     with Rewrite.Unsupported _ -> true)

(* --- Extract ---------------------------------------------------------------- *)

let test_child_view_classification () =
  (match Extract.child_view_of ~table:"s" (Plan.Table "s") with
  | Ir.Cv_full "s" -> ()
  | _ -> Alcotest.fail "full");
  (match Extract.child_view_of ~table:"t" (Plan.Select (Parser.pred "t1 > 1", Plan.Table "t")) with
  | Ir.Cv_select _ -> ()
  | _ -> Alcotest.fail "select");
  match Extract.child_view_of ~table:"t" (join (Plan.Table "s") (Plan.Table "t")) with
  | Ir.Cv_subplan _ -> ()
  | _ -> Alcotest.fail "subplan"

let mini_db () =
  let ints l = Array.of_list (List.map (fun x -> Value.Int x) l) in
  let db = Db.create schema in
  Db.put db "s" [ ("s_pk", ints [ 1; 2; 3; 4 ]); ("s1", ints [ 10; 20; 30; 40 ]) ];
  Db.put db "t"
    [
      ("t_pk", ints [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
      ("t_fk", ints [ 1; 2; 2; 3; 3; 3; 4; 4 ]);
      ("t1", ints [ 1; 2; 3; 4; 4; 4; 5; 3 ]);
      ("t2", ints [ 1; 2; 2; 2; 3; 4; 1; 3 ]);
      ("tt", Array.of_list (List.map (fun s -> Value.Str s) [ "a"; "b"; "c"; "a"; "b"; "c"; "a"; "b" ]));
    ];
  db

let test_extract_trivial_jcc_dropped () =
  (* full-table left view: the jcc is implied and must be dropped *)
  let w =
    Workload.make schema
      [ { Workload.q_name = "q"; q_plan = join (Plan.Table "s") (Plan.Select (Parser.pred "t1 > $p", Plan.Table "t")) } ]
  in
  let env = Pred.Env.add_scalar "p" (Value.Int 2) Pred.Env.empty in
  let ex = Extract.run w ~ref_db:(mini_db ()) ~prod_env:env in
  Alcotest.(check int) "no join constraints" 0 (List.length ex.Extract.ir.Ir.joins)

let test_extract_semi_yields_jdc () =
  let plan =
    Plan.Join
      {
        jt = Plan.Left_semi;
        pk_table = "s";
        fk_table = "t";
        fk_col = "t_fk";
        left = Plan.Select (Parser.pred "s1 < $p", Plan.Table "s");
        right = Plan.Table "t";
      }
  in
  let w = Workload.make schema [ { Workload.q_name = "q"; q_plan = plan } ] in
  let env = Pred.Env.add_scalar "p" (Value.Int 30) Pred.Env.empty in
  let ex = Extract.run w ~ref_db:(mini_db ()) ~prod_env:env in
  match ex.Extract.ir.Ir.joins with
  | [ jc ] ->
      Alcotest.(check (option int)) "jdc = matched distinct" (Some 2) jc.Ir.jc_jdc;
      Alcotest.(check (option int)) "no jcc for semi" None jc.Ir.jc_jcc
  | l -> Alcotest.failf "expected 1 join constraint, got %d" (List.length l)

let test_extract_pcc_on_direct_join () =
  let plan =
    Plan.Project
      { cols = [ "t_fk" ];
        input = join (Plan.Select (Parser.pred "s1 < $p", Plan.Table "s")) (Plan.Table "t") }
  in
  let w = Workload.make schema [ { Workload.q_name = "q"; q_plan = plan } ] in
  let env = Pred.Env.add_scalar "p" (Value.Int 30) Pred.Env.empty in
  let ex = Extract.run w ~ref_db:(mini_db ()) ~prod_env:env in
  Alcotest.(check bool) "some constraint has a jdc" true
    (List.exists (fun jc -> jc.Ir.jc_jdc <> None) ex.Extract.ir.Ir.joins)

let test_extract_range_conjunction_split () =
  let plan = Plan.Select (Parser.pred "t1 >= $a and t1 <= $b", Plan.Table "t") in
  let w = Workload.make schema [ { Workload.q_name = "q"; q_plan = plan } ] in
  let env =
    Pred.Env.add_scalar "a" (Value.Int 2)
      (Pred.Env.add_scalar "b" (Value.Int 4) Pred.Env.empty)
  in
  let ex = Extract.run w ~ref_db:(mini_db ()) ~prod_env:env in
  (* the BETWEEN splits into two marginal SCCs *)
  Alcotest.(check int) "two marginal sccs" 2 (List.length ex.Extract.ir.Ir.sccs);
  List.iter
    (fun (s : Ir.scc) ->
      Alcotest.(check bool) "marked as range split" true
        (String.length s.Ir.scc_source >= 6))
    ex.Extract.ir.Ir.sccs

(* --- Keygen membership ------------------------------------------------------ *)

let test_membership_forms () =
  let db = mini_db () in
  let env = Pred.Env.add_scalar "p" (Value.Int 2) Pred.Env.empty in
  let full = Keygen.membership ~db ~env ~table:"t" (Ir.Cv_full "t") in
  Alcotest.(check int) "full covers all" 8 (Col.Bitset.count full);
  let sel =
    Keygen.membership ~db ~env ~table:"t"
      (Ir.Cv_select { cv_table = "t"; cv_pred = Parser.pred "t1 > $p" })
  in
  Alcotest.(check int) "select filters" 6 (Col.Bitset.count sel);
  let sub =
    Keygen.membership ~db ~env ~table:"t"
      (Ir.Cv_subplan { cv_plan = join (Plan.Table "s") (Plan.Table "t"); cv_table = "t" })
  in
  Alcotest.(check int) "subplan pks" 8 (Col.Bitset.count sub)

(* --- SQL export --------------------------------------------------------------- *)

let test_sql_ddl () =
  let sql = Mirage_core.Sql_export.ddl schema in
  Alcotest.(check bool) "has pk" true
    (String.length sql > 0
    && Str_ext.contains sql "s_pk BIGINT PRIMARY KEY"
    && Str_ext.contains sql "t_fk BIGINT REFERENCES s")

let test_sql_inserts_escaping () =
  let esc_schema =
    Schema.make
      [
        {
          Schema.tname = "x";
          pk = "x_pk";
          nonkeys = [ { Schema.cname = "x1"; domain_size = 2; kind = Schema.Kstring } ];
          fks = [];
          row_count = 1;
        };
      ]
  in
  let db = Db.create esc_schema in
  Db.put db "x"
    [ ("x_pk", [| Value.Int 1 |]); ("x1", [| Value.Str "o'neil" |]) ];
  let sql = Mirage_core.Sql_export.inserts db ~table:"x" in
  Alcotest.(check bool) "quote doubled" true (Str_ext.contains sql "'o''neil'")

let test_sql_query_shapes () =
  let env =
    Pred.Env.of_list
      [
        ("p", Pred.Env.Scalar (Value.Int 3));
        ("l", Pred.Env.Vlist []);
      ]
  in
  let check plan needle =
    match Mirage_core.Sql_export.query_sql plan ~schema ~env with
    | Ok sql ->
        Alcotest.(check bool) (needle ^ " in " ^ sql) true (Str_ext.contains sql needle)
    | Error m -> Alcotest.failf "sql failed: %s" m
  in
  check (Plan.Select (Parser.pred "t1 < $p", Plan.Table "t")) "WHERE t1 < 3";
  check
    (Plan.Join
       { jt = Plan.Left_semi; pk_table = "s"; fk_table = "t"; fk_col = "t_fk";
         left = Plan.Table "s"; right = Plan.Table "t" })
    "EXISTS";
  check
    (Plan.Join
       { jt = Plan.Left_anti; pk_table = "s"; fk_table = "t"; fk_col = "t_fk";
         left = Plan.Table "s"; right = Plan.Table "t" })
    "NOT EXISTS";
  check
    (Plan.Aggregate
       { group_by = [ "t1" ]; aggs = [ (Plan.Sum, "t2") ]; input = Plan.Table "t" })
    "GROUP BY t1";
  (* empty IN list must not produce invalid SQL *)
  check (Plan.Select (Parser.pred "t1 in $l", Plan.Table "t")) "WHERE FALSE";
  match
    Mirage_core.Sql_export.query_sql
      (Plan.Select (Parser.pred "t1 < $nope", Plan.Table "t"))
      ~schema ~env
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound parameter accepted"

(* --- Keygen on the paper's running example (Figs. 8-10) -------------------- *)

let test_keygen_paper_example () =
  (* S = {1..4}, T rows 1..8; two join constraints like V5 and V8 of Fig. 7:
     an equi join between filtered views (jcc 3, jdc 2 via PCC) and a
     left-outer join with the arithmetic view *)
  let db = mini_db () in
  let env =
    Pred.Env.of_list
      [
        ("p1", Pred.Env.Scalar (Value.Int 30));
        ("p2", Pred.Env.Scalar (Value.Int 2));
      ]
  in
  let edge = { Ir.e_pk_table = "s"; e_fk_table = "t"; e_fk_col = "t_fk" } in
  let constraints =
    [
      {
        Ir.jc_edge = edge;
        jc_left = Ir.Cv_select { cv_table = "s"; cv_pred = Parser.pred "s1 < $p1" };
        jc_right = Ir.Cv_select { cv_table = "t"; cv_pred = Parser.pred "t1 > $p2" };
        jc_jcc = Some 3;
        jc_jdc = Some 2;
        jc_source = "v5";
      };
      {
        Ir.jc_edge = edge;
        jc_left = Ir.Cv_full "s";
        jc_right = Ir.Cv_select { cv_table = "t"; cv_pred = Parser.pred "t1 >= 4" };
        jc_jcc = Some 4;
        jc_jdc = Some 3;
        jc_source = "v8";
      };
    ]
  in
  let times = Keygen.fresh_times () in
  match
    Keygen.populate_edge ~rng:(Mirage_util.Rng.create 5) ~db ~env ~edge ~constraints
      ~batch_size:1000 ~cp_max_nodes:100_000 ~times ()
  with
  | Error f -> Alcotest.fail (Diag.to_string f.Keygen.kf_diag)
  | Ok (fk_vec, notices) ->
      let fk = Col.Ivec.to_array fk_vec in
      (* the per-edge CP summary is Info severity; resize notices are not *)
      let resizes =
        List.filter (fun d -> d.Mirage_core.Diag.d_severity <> Mirage_core.Diag.Info) notices
      in
      Alcotest.(check int) "no resize notices" 0 (List.length resizes);
      (* verify both constraints on the populated column *)
      let t1 = Db.column db "t" "t1" in
      let s1 = Db.column db "s" "s1" in
      let in_vl1 pk = (match s1.(pk - 1) with Value.Int v -> v < 30 | _ -> false) in
      let matched1 = ref [] in
      Array.iteri
        (fun i pk ->
          match t1.(i) with
          | Value.Int t1v when t1v > 2 && in_vl1 pk ->
              matched1 := pk :: !matched1
          | _ -> ())
        fk;
      Alcotest.(check int) "v5 jcc" 3 (List.length !matched1);
      Alcotest.(check int) "v5 jdc" 2 (List.length (List.sort_uniq compare !matched1));
      let matched2 = ref [] in
      Array.iteri
        (fun i pk ->
          match t1.(i) with
          | Value.Int t1v when t1v >= 4 -> matched2 := pk :: !matched2
          | _ -> ())
        fk;
      Alcotest.(check int) "v8 jcc" 4 (List.length !matched2);
      Alcotest.(check int) "v8 jdc" 3 (List.length (List.sort_uniq compare !matched2))

(* --- cross-partition solve cache ------------------------------------------- *)

module Solve_cache = Mirage_core.Solve_cache
module Cp = Mirage_cp.Cp

let cache_model names =
  (* a small transportation system; [names] only relabels the variables and
     must not affect the fingerprint *)
  let m = Cp.create () in
  let xs =
    Array.init 6 (fun i -> Cp.var m ~name:names.(i) ~lo:0 ~hi:50)
  in
  Cp.linear_eq m [ (1, xs.(0)); (1, xs.(1)); (1, xs.(2)) ] 30;
  Cp.linear_eq m [ (1, xs.(3)); (1, xs.(4)); (1, xs.(5)) ] 20;
  Cp.linear_le m [ (1, xs.(0)); (1, xs.(3)) ] 25;
  Cp.imply_pos m xs.(1) xs.(4);
  m

let test_solve_cache_hit_renamed () =
  let m1 = cache_model [| "a"; "b"; "c"; "d"; "e"; "f" |] in
  let m2 = cache_model [| "u"; "v"; "w"; "x"; "y"; "z" |] in
  Alcotest.(check string)
    "renamed systems share a fingerprint" (Cp.fingerprint m1) (Cp.fingerprint m2);
  let cache = Solve_cache.create () in
  let o1, st1 = Solve_cache.solve ~cache m1 in
  let o2, st2 = Solve_cache.solve ~cache m2 in
  Alcotest.(check bool) "first solve ran search" true (st1 <> None);
  Alcotest.(check bool) "second solve was a cache hit" true (st2 = None);
  Alcotest.(check int) "hits" 1 (Solve_cache.hits cache);
  Alcotest.(check int) "misses" 1 (Solve_cache.misses cache);
  match (o1, o2) with
  | Cp.Sat f1, Cp.Sat f2 ->
      Alcotest.(check (array int))
        "identical solutions" (Cp.solution_of_fun m1 f1) (Cp.solution_of_fun m2 f2)
  | _ -> Alcotest.fail "expected both solves Sat"

let test_solve_cache_distinct_systems_miss () =
  let m1 = cache_model [| "a"; "b"; "c"; "d"; "e"; "f" |] in
  let m2 = cache_model [| "a"; "b"; "c"; "d"; "e"; "f" |] in
  Cp.linear_le m2 [ (1, Cp.var m2 ~lo:0 ~hi:1) ] 1;
  Alcotest.(check bool) "different structure, different fingerprint" true
    (Cp.fingerprint m1 <> Cp.fingerprint m2);
  let cache = Solve_cache.create () in
  ignore (Solve_cache.solve ~cache m1);
  ignore (Solve_cache.solve ~cache m2);
  Alcotest.(check int) "no hits" 0 (Solve_cache.hits cache);
  (* same options replayed: now it hits *)
  ignore (Solve_cache.solve ~cache m1);
  Alcotest.(check int) "replay hits" 1 (Solve_cache.hits cache);
  (* different solve options must not share entries *)
  ignore (Solve_cache.solve ~cache ~max_nodes:12_345 m1);
  Alcotest.(check int) "options are part of the key" 1 (Solve_cache.hits cache)

let test_solve_cache_driver_identity () =
  (* end-to-end: the generated database is bit-identical with the cache on
     and off (the cache only skips work, never changes outcomes) *)
  let db = mini_db () in
  let env =
    Pred.Env.of_list
      [
        ("p1", Pred.Env.Scalar (Value.Int 30));
        ("p2", Pred.Env.Scalar (Value.Int 2));
        ("p3", Pred.Env.Scalar (Value.Int 2));
      ]
  in
  let queries =
    [
      { Workload.q_name = "q1";
        q_plan =
          Plan.Join
            { jt = Plan.Inner; pk_table = "s"; fk_table = "t"; fk_col = "t_fk";
              left = Plan.Select (Parser.pred "s1 < $p1", Plan.Table "s");
              right = Plan.Select (Parser.pred "t1 > $p2", Plan.Table "t") } };
      { Workload.q_name = "q2";
        q_plan = Plan.Select (Parser.pred "t2 = $p3", Plan.Table "t") };
    ]
  in
  let workload = Workload.make schema queries in
  let gen cache_on =
    let config =
      { Mirage_core.Driver.default_config with
        Mirage_core.Driver.solve_cache = cache_on; seed = 11 }
    in
    match Mirage_core.Driver.generate ~config workload ~ref_db:db ~prod_env:env with
    | Ok r -> r
    | Error d -> Alcotest.failf "generation failed: %s" (Diag.to_string d)
  in
  let on = gen true and off = gen false in
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      Alcotest.(check int)
        (tname ^ " row count")
        (Db.row_count off.Mirage_core.Driver.r_db tname)
        (Db.row_count on.Mirage_core.Driver.r_db tname);
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s.%s identical with cache on/off" tname c)
            true
            (Db.column off.Mirage_core.Driver.r_db tname c
            = Db.column on.Mirage_core.Driver.r_db tname c))
        (Schema.column_names tbl))
    (Schema.tables (Db.schema on.Mirage_core.Driver.r_db))

(* --- randomized end-to-end fuzz --------------------------------------------- *)

let prop_random_applications_regenerate =
  (* random production databases + random query mixes over the S/T schema:
     generation must not crash and must reproduce the constraints almost
     exactly (the only slack is ACC ties on tiny tables) *)
  QCheck.Test.make ~name:"random applications regenerate with tiny error" ~count:25
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let rng = Mirage_util.Rng.create seed in
      let n_s = 4 + Mirage_util.Rng.int rng 12 in
      let n_t = 20 + Mirage_util.Rng.int rng 60 in
      let fuzz_schema =
        Schema.make
          [
            {
              Schema.tname = "s";
              pk = "s_pk";
              nonkeys = [ { Schema.cname = "s1"; domain_size = 4; kind = Schema.Kint } ];
              fks = [];
              row_count = n_s;
            };
            {
              Schema.tname = "t";
              pk = "t_pk";
              nonkeys =
                [
                  { Schema.cname = "t1"; domain_size = 5; kind = Schema.Kint };
                  { Schema.cname = "t2"; domain_size = 4; kind = Schema.Kint };
                ];
              fks = [ { Schema.fk_col = "t_fk"; references = "s" } ];
              row_count = n_t;
            };
          ]
      in
      let db = Db.create fuzz_schema in
      let ints f = Array.init n_t (fun i -> Value.Int (f i)) in
      Db.put db "s"
        [
          ("s_pk", Array.init n_s (fun i -> Value.Int (i + 1)));
          ("s1", Array.init n_s (fun _ -> Value.Int (Mirage_util.Rng.int_in rng 1 40)));
        ];
      Db.put db "t"
        [
          ("t_pk", ints (fun i -> i + 1));
          ("t_fk", ints (fun _ -> Mirage_util.Rng.int_in rng 1 n_s));
          ("t1", ints (fun _ -> Mirage_util.Rng.int_in rng 1 5));
          ("t2", ints (fun _ -> Mirage_util.Rng.int_in rng 1 4));
        ];
      let jt =
        match Mirage_util.Rng.int rng 4 with
        | 0 -> Plan.Inner
        | 1 -> Plan.Left_outer
        | 2 -> Plan.Left_semi
        | _ -> Plan.Left_anti
      in
      let queries =
        [
          { Workload.q_name = "f1";
            q_plan =
              Plan.Join
                { jt; pk_table = "s"; fk_table = "t"; fk_col = "t_fk";
                  left = Plan.Select (Parser.pred "s1 < $f_a", Plan.Table "s");
                  right = Plan.Select (Parser.pred "t1 > $f_b", Plan.Table "t") } };
          { Workload.q_name = "f2";
            q_plan = Plan.Select (Parser.pred "t1 <= $f_c or t2 = $f_d", Plan.Table "t") };
        ]
      in
      let workload = Workload.make fuzz_schema queries in
      let prod_env =
        Pred.Env.of_list
          [
            ("f_a", Pred.Env.Scalar (Value.Int (Mirage_util.Rng.int_in rng 5 40)));
            ("f_b", Pred.Env.Scalar (Value.Int (Mirage_util.Rng.int_in rng 1 4)));
            ("f_c", Pred.Env.Scalar (Value.Int (Mirage_util.Rng.int_in rng 1 4)));
            ("f_d", Pred.Env.Scalar (Value.Int (Mirage_util.Rng.int_in rng 1 4)));
          ]
      in
      match Mirage_core.Driver.generate workload ~ref_db:db ~prod_env with
      | Error _ -> false
      | Ok r ->
          List.for_all
            (fun (e : Mirage_core.Error.query_error) -> e.Mirage_core.Error.qe_relative < 0.05)
            (Mirage_core.Driver.measure_errors r))

let () =
  Alcotest.run "core"
    [
      ( "decouple",
        [
          Alcotest.test_case "single literal" `Quick test_decouple_single_literal;
          Alcotest.test_case "arith to acc" `Quick test_decouple_arith_to_acc;
          Alcotest.test_case "paper Fig5 V9" `Quick test_decouple_fig5_v9;
          Alcotest.test_case "paper Fig5 V10 De Morgan" `Quick test_decouple_fig5_v10_demorgan;
          Alcotest.test_case "key column skipped" `Quick test_decouple_key_column_skipped;
          Alcotest.test_case "conflicting counts" `Quick test_decouple_conflicting_param_counts;
          Alcotest.test_case "sentinels" `Quick test_sentinels;
          Alcotest.test_case "double-bind guard" `Quick test_decouple_double_bind_guard;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "Example 4.6" `Quick test_cdf_example_46;
          Alcotest.test_case "equal counts share value" `Quick test_cdf_equal_counts_share_value;
          Alcotest.test_case "string order" `Quick test_cdf_string_rendering_order;
          Alcotest.test_case "infeasible inputs" `Quick test_cdf_infeasible_inputs;
          Alcotest.test_case "default layout" `Quick test_cdf_default_layout;
          QCheck_alcotest.to_alcotest prop_cdf_satisfies_random_anchor_sets;
        ] );
      ( "nonkey",
        [
          Alcotest.test_case "multisets" `Quick test_nonkey_preserves_multisets;
          Alcotest.test_case "bound rows" `Quick test_nonkey_bound_rows;
        ] );
      ( "acc",
        [
          Alcotest.test_case "exact thresholds" `Quick test_acc_threshold_exact;
          Alcotest.test_case "extremes" `Quick test_acc_threshold_extremes;
          QCheck_alcotest.to_alcotest prop_acc_threshold_best_effort;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "pushes conjuncts" `Quick test_rewrite_pushes_conjuncts;
          Alcotest.test_case "or-across aux" `Quick test_rewrite_or_across_makes_aux;
          Alcotest.test_case "nested marginals" `Quick test_rewrite_nested_or_marginals;
          Alcotest.test_case "two mixed unsupported" `Quick test_rewrite_two_mixed_clauses_unsupported;
        ] );
      ( "extract",
        [
          Alcotest.test_case "child view classification" `Quick test_child_view_classification;
          Alcotest.test_case "trivial jcc dropped" `Quick test_extract_trivial_jcc_dropped;
          Alcotest.test_case "semi yields jdc" `Quick test_extract_semi_yields_jdc;
          Alcotest.test_case "pcc on direct join" `Quick test_extract_pcc_on_direct_join;
          Alcotest.test_case "range conjunction split" `Quick test_extract_range_conjunction_split;
        ] );
      ( "keygen",
        [
          Alcotest.test_case "membership forms" `Quick test_membership_forms;
          Alcotest.test_case "paper Figs 8-10 example" `Quick test_keygen_paper_example;
          Alcotest.test_case "solve cache: renamed systems hit" `Quick
            test_solve_cache_hit_renamed;
          Alcotest.test_case "solve cache: keying" `Quick
            test_solve_cache_distinct_systems_miss;
          Alcotest.test_case "solve cache: driver identity" `Quick
            test_solve_cache_driver_identity;
        ] );
      ( "sql-export",
        [
          Alcotest.test_case "ddl" `Quick test_sql_ddl;
          Alcotest.test_case "insert escaping" `Quick test_sql_inserts_escaping;
          Alcotest.test_case "query shapes" `Quick test_sql_query_shapes;
        ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest prop_random_applications_regenerate ] );
    ]
