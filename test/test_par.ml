(* Determinism of the domain-parallel pipeline: the generated database and
   its measured errors must be bit-identical for every domain count, and the
   Par primitives must match their sequential counterparts exactly. *)

module Rng = Mirage_util.Rng
module Par = Mirage_par.Par
module Value = Mirage_sql.Value
module Schema = Mirage_sql.Schema
module Db = Mirage_engine.Db
module Driver = Mirage_core.Driver
module Error = Mirage_core.Error
module Scale_out = Mirage_core.Scale_out

(* --- Rng.split ~stream --------------------------------------------------- *)

let seq rng n = List.init n (fun _ -> Rng.int rng 1_000_000)

let test_split_pure () =
  (* deriving streams must not advance the parent *)
  let a = Rng.create 42 and b = Rng.create 42 in
  ignore (Rng.split ~stream:0 a);
  ignore (Rng.split ~stream:17 a);
  Alcotest.(check (list int))
    "parent unchanged by ~stream splits" (seq b 32) (seq a 32)

let test_split_stable () =
  (* same parent state + same stream index = same generator *)
  let a = Rng.create 7 and b = Rng.create 7 in
  let sa = Rng.split ~stream:3 a and sb = Rng.split ~stream:3 b in
  Alcotest.(check (list int)) "stream 3 reproducible" (seq sa 32) (seq sb 32);
  (* and independent of how many other streams were derived first *)
  let c = Rng.create 7 in
  List.iter (fun i -> ignore (Rng.split ~stream:i c)) [ 0; 1; 2; 9; 100 ];
  let sc = Rng.split ~stream:3 c in
  let d = Rng.create 7 in
  Alcotest.(check (list int))
    "stream 3 independent of sibling count"
    (seq (Rng.split ~stream:3 d) 32)
    (seq sc 32)

let test_split_distinct () =
  let rng = Rng.create 99 in
  let streams = List.init 16 (fun i -> seq (Rng.split ~stream:i rng) 16) in
  let distinct = List.sort_uniq compare streams in
  Alcotest.(check int)
    "16 streams pairwise distinct" 16 (List.length distinct)

(* --- Par primitives ------------------------------------------------------ *)

let with_pools f =
  List.iter (fun d -> Par.with_pool ~domains:d f) [ 1; 2; 4 ]

let test_run () =
  with_pools (fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Par.run pool n (fun i -> hits.(i) <- hits.(i) + (i + 1));
      Alcotest.(check (array int))
        "run touches every index exactly once"
        (Array.init n (fun i -> i + 1))
        hits)

let test_init () =
  with_pools (fun pool ->
      let n = 1237 in
      Alcotest.(check (array int))
        "init matches Array.init"
        (Array.init n (fun i -> (i * i) mod 7919))
        (Par.init pool n (fun i -> (i * i) mod 7919)))

let test_iter_chunks () =
  with_pools (fun pool ->
      List.iter
        (fun n ->
          let hits = Array.make (max n 1) 0 in
          Par.iter_chunks pool n (fun lo hi ->
              for i = lo to hi do
                hits.(i) <- hits.(i) + 1
              done);
          Alcotest.(check (array int))
            (Printf.sprintf "chunks cover [0,%d) exactly once" n)
            (Array.init (max n 1) (fun i -> if i < n then 1 else 0))
            hits)
        [ 0; 1; 2; 63; 64; 1000 ])

let test_map_chunks_list () =
  with_pools (fun pool ->
      let xs = Array.init 513 (fun i -> i) in
      Alcotest.(check (array int))
        "map_chunks matches Array.map"
        (Array.map (fun x -> (3 * x) + 1) xs)
        (Par.map_chunks pool (fun x -> (3 * x) + 1) xs);
      let l = List.init 47 (fun i -> i) in
      Alcotest.(check (list int))
        "map_list preserves order"
        (List.map (fun x -> x * x) l)
        (Par.map_list pool (fun x -> x * x) l))

exception Boom

let test_exception () =
  with_pools (fun pool ->
      let raised =
        try
          Par.run pool 64 (fun i -> if i = 13 then raise Boom);
          false
        with Boom -> true
      in
      Alcotest.(check bool) "task exception re-raised in caller" true raised)

let test_iter_tiles_order () =
  with_pools (fun pool ->
      let written = ref [] in
      Par.iter_tiles pool ~tiles:23
        ~render:(fun ~slot ~tile ->
          Alcotest.(check bool) "slot within window" true
            (slot >= 0 && slot < Par.size pool);
          tile * 10)
        ~write:(fun ~tile v -> written := (tile, v) :: !written);
      Alcotest.(check (list (pair int int)))
        "tiles written sequentially in tile order"
        (List.init 23 (fun t -> (t, t * 10)))
        (List.rev !written))

(* --- end-to-end determinism across domain counts ------------------------- *)

let generate_with ~domains workload ref_db prod_env =
  let config = { Driver.default_config with Driver.domains; seed = 5 } in
  match Driver.generate ~config workload ~ref_db ~prod_env with
  | Ok r -> r
  | Error d ->
      Alcotest.failf "generation failed: %s" (Mirage_core.Diag.to_string d)

let check_same_db label (a : Db.t) (b : Db.t) =
  let schema = Db.schema a in
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      Alcotest.(check int)
        (Printf.sprintf "%s: %s row count" label tname)
        (Db.row_count a tname) (Db.row_count b tname);
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s.%s identical" label tname c)
            true
            (Db.column a tname c = Db.column b tname c))
        (Schema.column_names tbl))
    (Schema.tables schema)

let check_workload name (workload, ref_db, prod_env) =
  let r1 = generate_with ~domains:1 workload ref_db prod_env in
  let errs1 = Driver.measure_errors r1 in
  List.iter
    (fun domains ->
      let r = generate_with ~domains workload ref_db prod_env in
      Alcotest.(check int)
        (Printf.sprintf "%s: pool width used" name)
        domains r.Driver.r_timings.Driver.domains_used;
      check_same_db
        (Printf.sprintf "%s domains=%d vs 1" name domains)
        r1.Driver.r_db r.Driver.r_db;
      let errs = Driver.measure_errors r in
      List.iter2
        (fun (e1 : Error.query_error) (e : Error.query_error) ->
          Alcotest.(check string)
            (Printf.sprintf "%s: query name" name)
            e1.Error.qe_name e.Error.qe_name;
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s: %s error identical" name e.Error.qe_name)
            e1.Error.qe_relative e.Error.qe_relative)
        errs1 errs)
    [ 2; 4 ]

let test_determinism_ssb () =
  check_workload "ssb" (Mirage_workloads.Ssb.make ~sf:0.25 ~seed:7)

let test_determinism_tpch () =
  check_workload "tpch" (Mirage_workloads.Tpch.make ~sf:0.05 ~seed:7)

(* --- scale-out writer byte-identity -------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_scaleout_bytes () =
  let workload, ref_db, prod_env = Mirage_workloads.Ssb.make ~sf:0.1 ~seed:7 in
  let r = generate_with ~domains:1 workload ref_db prod_env in
  let db = r.Driver.r_db in
  let copies = 5 in
  (* reference: the in-memory tiled database rendered by the sequential
     exporter — to_csv_dir must produce exactly these bytes *)
  let tiled = Scale_out.tile_db ~db ~copies in
  let dir = Filename.temp_file "mirage_par_test" "" in
  Sys.remove dir;
  Par.with_pool ~domains:3 (fun pool ->
      Scale_out.to_csv_dir ~pool ~db ~copies ~dir ());
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let got = read_file (Filename.concat dir (tname ^ ".csv")) in
      Alcotest.(check bool)
        (Printf.sprintf "%s.csv byte-identical to sequential render" tname)
        true
        (got = Db.to_csv tiled tname))
    (Schema.tables (Db.schema db));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let () =
  Alcotest.run "par"
    [
      ( "rng-split",
        [
          Alcotest.test_case "stream splits are pure" `Quick test_split_pure;
          Alcotest.test_case "stream splits are stable" `Quick test_split_stable;
          Alcotest.test_case "streams are distinct" `Quick test_split_distinct;
        ] );
      ( "pool",
        [
          Alcotest.test_case "run" `Quick test_run;
          Alcotest.test_case "init" `Quick test_init;
          Alcotest.test_case "iter_chunks" `Quick test_iter_chunks;
          Alcotest.test_case "map_chunks / map_list" `Quick test_map_chunks_list;
          Alcotest.test_case "exception propagation" `Quick test_exception;
          Alcotest.test_case "iter_tiles ordering" `Quick test_iter_tiles_order;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "ssb domains 1/2/4" `Slow test_determinism_ssb;
          Alcotest.test_case "tpch domains 1/2/4" `Slow test_determinism_tpch;
          Alcotest.test_case "scale-out bytes" `Quick test_scaleout_bytes;
        ] );
    ]
