(* Determinism of the domain-parallel pipeline: the generated database and
   its measured errors must be bit-identical for every domain count, and the
   Par primitives must match their sequential counterparts exactly. *)

module Rng = Mirage_util.Rng
module Par = Mirage_par.Par
module Value = Mirage_sql.Value
module Schema = Mirage_sql.Schema
module Db = Mirage_engine.Db
module Driver = Mirage_core.Driver
module Error = Mirage_core.Error
module Scale_out = Mirage_core.Scale_out

(* --- Rng.split ~stream --------------------------------------------------- *)

let seq rng n = List.init n (fun _ -> Rng.int rng 1_000_000)

let test_split_pure () =
  (* deriving streams must not advance the parent *)
  let a = Rng.create 42 and b = Rng.create 42 in
  ignore (Rng.split ~stream:0 a);
  ignore (Rng.split ~stream:17 a);
  Alcotest.(check (list int))
    "parent unchanged by ~stream splits" (seq b 32) (seq a 32)

let test_split_stable () =
  (* same parent state + same stream index = same generator *)
  let a = Rng.create 7 and b = Rng.create 7 in
  let sa = Rng.split ~stream:3 a and sb = Rng.split ~stream:3 b in
  Alcotest.(check (list int)) "stream 3 reproducible" (seq sa 32) (seq sb 32);
  (* and independent of how many other streams were derived first *)
  let c = Rng.create 7 in
  List.iter (fun i -> ignore (Rng.split ~stream:i c)) [ 0; 1; 2; 9; 100 ];
  let sc = Rng.split ~stream:3 c in
  let d = Rng.create 7 in
  Alcotest.(check (list int))
    "stream 3 independent of sibling count"
    (seq (Rng.split ~stream:3 d) 32)
    (seq sc 32)

let test_split_distinct () =
  let rng = Rng.create 99 in
  let streams = List.init 16 (fun i -> seq (Rng.split ~stream:i rng) 16) in
  let distinct = List.sort_uniq compare streams in
  Alcotest.(check int)
    "16 streams pairwise distinct" 16 (List.length distinct)

(* --- Par primitives ------------------------------------------------------ *)

let with_pools f =
  List.iter (fun d -> Par.with_pool ~domains:d f) [ 1; 2; 4 ]

let test_run () =
  with_pools (fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Par.run pool n (fun i -> hits.(i) <- hits.(i) + (i + 1));
      Alcotest.(check (array int))
        "run touches every index exactly once"
        (Array.init n (fun i -> i + 1))
        hits)

let test_init () =
  with_pools (fun pool ->
      let n = 1237 in
      Alcotest.(check (array int))
        "init matches Array.init"
        (Array.init n (fun i -> (i * i) mod 7919))
        (Par.init pool n (fun i -> (i * i) mod 7919)))

let test_iter_chunks () =
  with_pools (fun pool ->
      List.iter
        (fun n ->
          let hits = Array.make (max n 1) 0 in
          Par.iter_chunks pool n (fun lo hi ->
              for i = lo to hi do
                hits.(i) <- hits.(i) + 1
              done);
          Alcotest.(check (array int))
            (Printf.sprintf "chunks cover [0,%d) exactly once" n)
            (Array.init (max n 1) (fun i -> if i < n then 1 else 0))
            hits)
        [ 0; 1; 2; 63; 64; 1000 ])

let test_map_chunks_list () =
  with_pools (fun pool ->
      let xs = Array.init 513 (fun i -> i) in
      Alcotest.(check (array int))
        "map_chunks matches Array.map"
        (Array.map (fun x -> (3 * x) + 1) xs)
        (Par.map_chunks pool (fun x -> (3 * x) + 1) xs);
      let l = List.init 47 (fun i -> i) in
      Alcotest.(check (list int))
        "map_list preserves order"
        (List.map (fun x -> x * x) l)
        (Par.map_list pool (fun x -> x * x) l))

exception Boom

let test_exception () =
  with_pools (fun pool ->
      let raised =
        try
          Par.run pool 64 (fun i -> if i = 13 then raise Boom);
          false
        with Boom -> true
      in
      Alcotest.(check bool) "task exception re-raised in caller" true raised)

let test_iter_tiles_order () =
  with_pools (fun pool ->
      let written = ref [] in
      Par.iter_tiles pool ~tiles:23
        ~render:(fun ~slot ~tile ->
          Alcotest.(check bool) "slot within lookahead" true
            (slot >= 0 && slot < Par.tile_slots pool);
          tile * 10)
        ~write:(fun ~tile v -> written := (tile, v) :: !written);
      Alcotest.(check (list (pair int int)))
        "tiles written sequentially in tile order"
        (List.init 23 (fun t -> (t, t * 10)))
        (List.rev !written))

(* --- persistent resident pool (Par.get) ---------------------------------- *)

let test_get_identity () =
  let p2 = Par.get ~domains:2 () in
  Alcotest.(check bool)
    "same width returns the same resident pool" true
    (p2 == Par.get ~domains:2 ());
  Alcotest.(check int) "resident pool width" 2 (Par.size p2);
  let p1 = Par.get ~domains:1 () in
  Alcotest.(check int) "width 1 is sequential" 1 (Par.size p1);
  Alcotest.(check bool)
    "width 1 is shared too" true
    (p1 == Par.get ~domains:1 ())

let test_get_survives_failure () =
  let pool = Par.get ~domains:3 () in
  (try Par.run pool 64 (fun i -> if i = 7 then raise Boom) with Boom -> ());
  let n = 257 in
  Alcotest.(check (array int))
    "resident pool usable after a failed region"
    (Array.init n (fun i -> i * 2))
    (Par.init pool n (fun i -> i * 2))

let test_iter_tiles_exns_then_reuse () =
  let pool = Par.get ~domains:4 () in
  (* a render failure must propagate after in-flight tiles settle, with the
     writes forming an in-order prefix that stops before the failed tile *)
  let written = ref [] in
  let raised =
    try
      Par.iter_tiles pool ~tiles:20
        ~render:(fun ~slot:_ ~tile -> if tile = 11 then raise Boom else tile)
        ~write:(fun ~tile v -> written := (tile, v) :: !written);
      false
    with Boom -> true
  in
  Alcotest.(check bool) "render exception re-raised" true raised;
  let w = List.rev !written in
  Alcotest.(check (list (pair int int)))
    "writes are an in-order prefix"
    (List.init (List.length w) (fun t -> (t, t)))
    w;
  Alcotest.(check bool) "failed tile never written" true (List.length w <= 11);
  (* a write failure stops the drain immediately *)
  let count = ref 0 in
  let raised =
    try
      Par.iter_tiles pool ~tiles:20
        ~render:(fun ~slot:_ ~tile -> tile)
        ~write:(fun ~tile:_ _ ->
          incr count;
          if !count = 5 then raise Boom);
      false
    with Boom -> true
  in
  Alcotest.(check bool) "write exception re-raised" true raised;
  Alcotest.(check int) "no write after the failing one" 5 !count;
  (* and the same resident pool still runs a clean pass in order *)
  let written = ref [] in
  Par.iter_tiles pool ~tiles:23
    ~render:(fun ~slot:_ ~tile -> tile * 3)
    ~write:(fun ~tile v -> written := (tile, v) :: !written);
  Alcotest.(check (list (pair int int)))
    "pool reusable after failed tile regions"
    (List.init 23 (fun t -> (t, t * 3)))
    (List.rev !written)

exception Stop

let test_iter_tiles_interrupt () =
  List.iter
    (fun domains ->
      let pool = Par.get ~domains () in
      let written = ref 0 and calls = ref 0 in
      let raised =
        try
          Par.iter_tiles pool
            ~interrupt:(fun () ->
              incr calls;
              if !calls > 6 then raise Stop)
            ~tiles:50
            ~render:(fun ~slot:_ ~tile -> tile)
            ~write:(fun ~tile:_ _ -> incr written);
          false
        with Stop -> true
      in
      Alcotest.(check bool) "interrupt propagates" true raised;
      Alcotest.(check int)
        (Printf.sprintf "interrupt checked before every write (domains=%d)"
           domains)
        6 !written)
    [ 1; 4 ]

(* --- randomized pipelining (QCheck) -------------------------------------- *)

(* test/dune has no unix dependency, so latency is a spin-wait; opaque to
   keep the loop from being optimised away *)
let spin n =
  let x = ref 0 in
  for _ = 1 to n * 20 do
    x := Sys.opaque_identity (!x + 1)
  done

let latency_of lats t =
  match lats with [] -> 0 | _ -> List.nth lats (t mod List.length lats)

let qcheck_tiles_order =
  QCheck.Test.make ~count:25
    ~name:"iter_tiles writes every tile in order under random render latency"
    QCheck.(
      pair (int_range 0 40) (pair (int_range 1 4) (small_list (int_range 0 500))))
    (fun (tiles, (domains, lats)) ->
      let pool = Par.get ~domains () in
      let written = ref [] in
      Par.iter_tiles pool ~tiles
        ~render:(fun ~slot ~tile ->
          if slot < 0 || slot >= Par.tile_slots pool then
            QCheck.Test.fail_report "slot out of lookahead range";
          spin (latency_of lats tile);
          tile * 7)
        ~write:(fun ~tile v -> written := (tile, v) :: !written);
      List.rev !written = List.init tiles (fun t -> (t, t * 7)))

let qcheck_slot_safety =
  QCheck.Test.make ~count:25
    ~name:"slot buffers never reused before their tile is written"
    QCheck.(pair (int_range 1 4) (small_list (int_range 0 300)))
    (fun (domains, lats) ->
      let tiles = 33 in
      let pool = Par.get ~domains () in
      let slots = Par.tile_slots pool in
      (* a slot is claimed by its tile at render entry and released only when
         that tile is written; any overlap means a buffer would have been
         clobbered while still unwritten *)
      let owner = Array.init slots (fun _ -> Atomic.make (-1)) in
      let ok = Atomic.make true in
      Par.iter_tiles pool ~tiles
        ~render:(fun ~slot ~tile ->
          if not (Atomic.compare_and_set owner.(slot) (-1) tile) then
            Atomic.set ok false;
          spin (latency_of lats tile);
          tile)
        ~write:(fun ~tile v ->
          ignore v;
          if not (Atomic.compare_and_set owner.(tile mod slots) tile (-1)) then
            Atomic.set ok false);
      Atomic.get ok)

(* --- end-to-end determinism across domain counts ------------------------- *)

let generate_with ~domains workload ref_db prod_env =
  let config = { Driver.default_config with Driver.domains; seed = 5 } in
  match Driver.generate ~config workload ~ref_db ~prod_env with
  | Ok r -> r
  | Error d ->
      Alcotest.failf "generation failed: %s" (Mirage_core.Diag.to_string d)

let check_same_db label (a : Db.t) (b : Db.t) =
  let schema = Db.schema a in
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      Alcotest.(check int)
        (Printf.sprintf "%s: %s row count" label tname)
        (Db.row_count a tname) (Db.row_count b tname);
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s.%s identical" label tname c)
            true
            (Db.column a tname c = Db.column b tname c))
        (Schema.column_names tbl))
    (Schema.tables schema)

let check_workload name (workload, ref_db, prod_env) =
  let r1 = generate_with ~domains:1 workload ref_db prod_env in
  let errs1 = Driver.measure_errors r1 in
  List.iter
    (fun domains ->
      let r = generate_with ~domains workload ref_db prod_env in
      Alcotest.(check int)
        (Printf.sprintf "%s: pool width used" name)
        domains r.Driver.r_timings.Driver.domains_used;
      check_same_db
        (Printf.sprintf "%s domains=%d vs 1" name domains)
        r1.Driver.r_db r.Driver.r_db;
      let errs = Driver.measure_errors r in
      List.iter2
        (fun (e1 : Error.query_error) (e : Error.query_error) ->
          Alcotest.(check string)
            (Printf.sprintf "%s: query name" name)
            e1.Error.qe_name e.Error.qe_name;
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s: %s error identical" name e.Error.qe_name)
            e1.Error.qe_relative e.Error.qe_relative)
        errs1 errs)
    [ 2; 4 ]

let test_driver_shared_pool () =
  (* the daemon-style usage: one resident pool and one solve cache shared
     across consecutive runs must yield the same database as fresh serial
     generation — cache sharing may only change wall-clock, never content *)
  let workload, ref_db, prod_env = Mirage_workloads.Ssb.make ~sf:0.1 ~seed:7 in
  let base = generate_with ~domains:1 workload ref_db prod_env in
  let cache = Mirage_core.Solve_cache.create () in
  List.iter
    (fun domains ->
      let pool = Par.get ~domains () in
      let run () =
        let config =
          {
            Driver.default_config with
            Driver.domains;
            seed = 5;
            pool = Some pool;
            cache = Some cache;
          }
        in
        match Driver.generate ~config workload ~ref_db ~prod_env with
        | Ok r -> r
        | Error d ->
            Alcotest.failf "generation failed: %s"
              (Mirage_core.Diag.to_string d)
      in
      let r1 = run () in
      let r2 = run () in
      check_same_db
        (Printf.sprintf "shared pool d=%d run 1 vs serial" domains)
        base.Driver.r_db r1.Driver.r_db;
      check_same_db
        (Printf.sprintf "shared pool d=%d run 2 vs run 1" domains)
        r1.Driver.r_db r2.Driver.r_db)
    [ 1; 2; 4 ];
  Alcotest.(check bool)
    "shared solve cache hit across runs" true
    (Mirage_core.Solve_cache.hits cache > 0)

let test_determinism_ssb () =
  check_workload "ssb" (Mirage_workloads.Ssb.make ~sf:0.25 ~seed:7)

let test_determinism_tpch () =
  check_workload "tpch" (Mirage_workloads.Tpch.make ~sf:0.05 ~seed:7)

(* --- scale-out writer byte-identity -------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_scaleout_bytes () =
  let workload, ref_db, prod_env = Mirage_workloads.Ssb.make ~sf:0.1 ~seed:7 in
  let r = generate_with ~domains:1 workload ref_db prod_env in
  let db = r.Driver.r_db in
  let copies = 5 in
  (* reference: the in-memory tiled database rendered by the sequential
     exporter — to_csv_dir must produce exactly these bytes *)
  let tiled = Scale_out.tile_db ~db ~copies in
  let dir = Filename.temp_file "mirage_par_test" "" in
  Sys.remove dir;
  Par.with_pool ~domains:3 (fun pool ->
      Scale_out.to_csv_dir ~pool ~db ~copies ~dir ());
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let got = read_file (Filename.concat dir (tname ^ ".csv")) in
      Alcotest.(check bool)
        (Printf.sprintf "%s.csv byte-identical to sequential render" tname)
        true
        (got = Db.to_csv tiled tname))
    (Schema.tables (Db.schema db));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let () =
  Alcotest.run "par"
    [
      ( "rng-split",
        [
          Alcotest.test_case "stream splits are pure" `Quick test_split_pure;
          Alcotest.test_case "stream splits are stable" `Quick test_split_stable;
          Alcotest.test_case "streams are distinct" `Quick test_split_distinct;
        ] );
      ( "pool",
        [
          Alcotest.test_case "run" `Quick test_run;
          Alcotest.test_case "init" `Quick test_init;
          Alcotest.test_case "iter_chunks" `Quick test_iter_chunks;
          Alcotest.test_case "map_chunks / map_list" `Quick test_map_chunks_list;
          Alcotest.test_case "exception propagation" `Quick test_exception;
          Alcotest.test_case "iter_tiles ordering" `Quick test_iter_tiles_order;
        ] );
      ( "resident-pool",
        [
          Alcotest.test_case "Par.get identity" `Quick test_get_identity;
          Alcotest.test_case "usable after failed region" `Quick
            test_get_survives_failure;
          Alcotest.test_case "iter_tiles exceptions then reuse" `Quick
            test_iter_tiles_exns_then_reuse;
          Alcotest.test_case "per-tile interrupt" `Quick
            test_iter_tiles_interrupt;
          QCheck_alcotest.to_alcotest qcheck_tiles_order;
          QCheck_alcotest.to_alcotest qcheck_slot_safety;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "shared pool and cache across runs" `Slow
            test_driver_shared_pool;
          Alcotest.test_case "ssb domains 1/2/4" `Slow test_determinism_ssb;
          Alcotest.test_case "tpch domains 1/2/4" `Slow test_determinism_tpch;
          Alcotest.test_case "scale-out bytes" `Quick test_scaleout_bytes;
        ] );
    ]
