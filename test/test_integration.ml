(* End-to-end pipeline test on the paper's running example (Fig. 1):
   tables S(s_pk, s1) and T(t_pk, t_fk -> S, t1, t2), queries Q1-Q4. *)

module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Schema = Mirage_sql.Schema
module Parser = Mirage_sql.Parser
module Plan = Mirage_relalg.Plan
module Db = Mirage_engine.Db
module Workload = Mirage_core.Workload
module Driver = Mirage_core.Driver
module Error = Mirage_core.Error

let schema =
  Schema.make
    [
      {
        Schema.tname = "s";
        pk = "s_pk";
        nonkeys = [ { Schema.cname = "s1"; domain_size = 4; kind = Schema.Kint } ];
        fks = [];
        row_count = 4;
      };
      {
        Schema.tname = "t";
        pk = "t_pk";
        nonkeys =
          [
            { Schema.cname = "t1"; domain_size = 5; kind = Schema.Kint };
            { Schema.cname = "t2"; domain_size = 4; kind = Schema.Kint };
          ];
        fks = [ { Schema.fk_col = "t_fk"; references = "s" } ];
        row_count = 8;
      };
    ]

(* Production database (Example 2.4 shape). *)
let ref_db () =
  let db = Db.create schema in
  let ints l = Array.of_list (List.map (fun x -> Value.Int x) l) in
  Db.put db "s" [ ("s_pk", ints [ 1; 2; 3; 4 ]); ("s1", ints [ 10; 20; 30; 40 ]) ];
  Db.put db "t"
    [
      ("t_pk", ints [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
      ("t_fk", ints [ 1; 2; 2; 3; 3; 3; 4; 4 ]);
      ("t1", ints [ 1; 2; 3; 4; 4; 4; 5; 3 ]);
      ("t2", ints [ 1; 2; 2; 2; 3; 4; 1; 3 ]);
    ];
  db

let prod_env =
  Pred.Env.of_list
    [
      ("p1", Pred.Env.Scalar (Value.Int 30));
      ("p2", Pred.Env.Scalar (Value.Int 2));
      ("p3", Pred.Env.Scalar (Value.Float 0.0));
      ("p4", Pred.Env.Scalar (Value.Int 1));
      ("p5", Pred.Env.Scalar (Value.Int 4));
      ("p6", Pred.Env.Scalar (Value.Float 2.0));
      ("p7", Pred.Env.Scalar (Value.Int 4));
      ("p8", Pred.Env.Scalar (Value.Int 2));
    ]

let q1 =
  (* Π_tfk( σ_{s1<p1}(S) ⋈ σ_{t1>p2}(T) ) *)
  Plan.Project
    {
      cols = [ "t_fk" ];
      input =
        Plan.Join
          {
            jt = Plan.Inner;
            pk_table = "s";
            fk_table = "t";
            fk_col = "t_fk";
            left = Plan.Select (Parser.pred "s1 < $p1", Plan.Table "s");
            right = Plan.Select (Parser.pred "t1 > $p2", Plan.Table "t");
          };
    }

let q2 =
  (* S ⟕ σ_{t1-t2>p3}(T) *)
  Plan.Join
    {
      jt = Plan.Left_outer;
      pk_table = "s";
      fk_table = "t";
      fk_col = "t_fk";
      left = Plan.Table "s";
      right = Plan.Select (Parser.pred "t1 - t2 > $p3", Plan.Table "t");
    }

let q3 = Plan.Select (Parser.pred "(t1 <= $p4 or t2 = $p5) and t1 - t2 < $p6", Plan.Table "t")

let q4 = Plan.Select (Parser.pred "t1 <> $p7 or t2 <> $p8", Plan.Table "t")

let workload =
  Workload.make schema
    [
      { Workload.q_name = "q1"; q_plan = q1 };
      { Workload.q_name = "q2"; q_plan = q2 };
      { Workload.q_name = "q3"; q_plan = q3 };
      { Workload.q_name = "q4"; q_plan = q4 };
    ]

let config = { Driver.default_config with batch_size = 1000 }

let run_pipeline () =
  match Driver.generate ~config workload ~ref_db:(ref_db ()) ~prod_env with
  | Ok r -> r
  | Error d ->
      Alcotest.failf "generation failed: %s" (Mirage_core.Diag.to_string d)

let test_generation_succeeds () =
  let r = run_pipeline () in
  Alcotest.(check int) "|S|" 4 (Db.row_count r.Driver.r_db "s");
  Alcotest.(check int) "|T|" 8 (Db.row_count r.Driver.r_db "t")

let test_zero_errors () =
  let r = run_pipeline () in
  let errors = Driver.measure_errors r in
  List.iter
    (fun (e : Error.query_error) ->
      (* q2 carries an arithmetic predicate over an 8-row table: the result
         multiset may not admit an exact threshold (tie effect), so it is
         allowed a small deviation; everything else must be exact. *)
      let bound = if e.Error.qe_name = "q2" then 0.15 else 0.0001 in
      if e.Error.qe_relative > bound then
        Alcotest.failf "%s relative error %.4f > %.4f (expected %s, got %s)"
          e.Error.qe_name e.Error.qe_relative bound
          (String.concat "," (List.map string_of_int e.Error.qe_expected))
          (String.concat "," (List.map string_of_int e.Error.qe_actual)))
    errors

let test_domain_sizes_preserved () =
  let r = run_pipeline () in
  Alcotest.(check int) "|T|_t1" 5 (Db.distinct_count r.Driver.r_db "t" "t1");
  Alcotest.(check int) "|T|_t2" 4 (Db.distinct_count r.Driver.r_db "t" "t2");
  Alcotest.(check int) "|S|_s1" 4 (Db.distinct_count r.Driver.r_db "s" "s1")

let test_warnings_only_resizes () =
  (* the only acceptable warnings are §6 bounded-error resize notices *)
  let r = run_pipeline () in
  List.iter
    (fun w ->
      if not (String.length w >= 13 && String.sub w 0 13 = "keygen resize") then
        Alcotest.failf "unexpected warning: %s" w)
    r.Driver.r_warnings

(* --- full workloads end-to-end -------------------------------------------- *)

let gen_workload make ~sf ~batch =
  let workload, ref_db, prod_env = make ~sf ~seed:7 in
  let config = { Driver.default_config with Driver.batch_size = batch } in
  match Driver.generate ~config workload ~ref_db ~prod_env with
  | Ok r -> r
  | Error d ->
      Alcotest.failf "generation failed: %s" (Mirage_core.Diag.to_string d)

let max_err r =
  List.fold_left
    (fun acc (e : Error.query_error) -> max acc e.Error.qe_relative)
    0.0 (Driver.measure_errors r)

let test_ssb_end_to_end () =
  let r = gen_workload Mirage_workloads.Ssb.make ~sf:0.5 ~batch:1_000_000 in
  Alcotest.(check (float 1e-9)) "all 13 queries exact" 0.0 (max_err r)

let test_tpch_end_to_end () =
  let r = gen_workload Mirage_workloads.Tpch.make ~sf:0.1 ~batch:1_000_000 in
  Alcotest.(check bool)
    (Printf.sprintf "all 22 queries near-exact (worst %.5f)" (max_err r))
    true
    (max_err r < 0.005)

let test_determinism () =
  let a = gen_workload Mirage_workloads.Ssb.make ~sf:0.25 ~batch:1_000_000 in
  let b = gen_workload Mirage_workloads.Ssb.make ~sf:0.25 ~batch:1_000_000 in
  Alcotest.(check string) "identical synthetic lineorder"
    (Db.to_csv a.Driver.r_db "lineorder")
    (Db.to_csv b.Driver.r_db "lineorder");
  Alcotest.(check bool) "identical parameters" true
    (Pred.Env.bindings a.Driver.r_env = Pred.Env.bindings b.Driver.r_env)

let test_batching_consistency () =
  (* small batches introduce only the paper's bounded deviations *)
  let big = gen_workload Mirage_workloads.Ssb.make ~sf:0.5 ~batch:1_000_000 in
  let small = gen_workload Mirage_workloads.Ssb.make ~sf:0.5 ~batch:500 in
  Alcotest.(check (float 1e-9)) "single batch exact" 0.0 (max_err big);
  Alcotest.(check bool)
    (Printf.sprintf "batched within bound (worst %.5f)" (max_err small))
    true
    (max_err small < 0.02)

let test_row_and_domain_cardinalities () =
  let workload, ref_db, prod_env = Mirage_workloads.Tpch.make ~sf:0.1 ~seed:7 in
  match Driver.generate workload ~ref_db ~prod_env with
  | Error d -> Alcotest.fail (Mirage_core.Diag.to_string d)
  | Ok r ->
      List.iter
        (fun (tbl : Schema.table) ->
          Alcotest.(check int)
            (tbl.Schema.tname ^ " row count")
            (Db.row_count ref_db tbl.Schema.tname)
            (Db.row_count r.Driver.r_db tbl.Schema.tname);
          List.iter
            (fun (c : Schema.column) ->
              Alcotest.(check int)
                (tbl.Schema.tname ^ "." ^ c.Schema.cname ^ " domain")
                (Db.distinct_count ref_db tbl.Schema.tname c.Schema.cname)
                (Db.distinct_count r.Driver.r_db tbl.Schema.tname c.Schema.cname))
            tbl.Schema.nonkeys)
        (Schema.tables workload.Workload.w_schema)

let test_fixed_point () =
  (* extracting constraints from the synthetic database with the synthetic
     parameters reproduces the production annotations: D' is a fixed point
     of the workload parser *)
  let workload, ref_db, prod_env = Mirage_workloads.Ssb.make ~sf:0.5 ~seed:7 in
  match Driver.generate workload ~ref_db ~prod_env with
  | Error d -> Alcotest.fail (Mirage_core.Diag.to_string d)
  | Ok r ->
      let ex_prod = Mirage_core.Extract.run workload ~ref_db ~prod_env in
      let ex_synth =
        Mirage_core.Extract.run workload ~ref_db:r.Driver.r_db ~prod_env:r.Driver.r_env
      in
      List.iter2
        (fun (a : Mirage_relalg.Aqt.t) (b : Mirage_relalg.Aqt.t) ->
          Alcotest.(check (array (option int)))
            ("annotations of " ^ a.Mirage_relalg.Aqt.name)
            a.Mirage_relalg.Aqt.cards b.Mirage_relalg.Aqt.cards)
        ex_prod.Mirage_core.Extract.aqts ex_synth.Mirage_core.Extract.aqts

let test_fk_referential_integrity () =
  let r = gen_workload Mirage_workloads.Tpch.make ~sf:0.1 ~batch:1_000_000 in
  let db = r.Driver.r_db in
  let schema = Db.schema db in
  List.iter
    (fun (tbl : Schema.table) ->
      List.iter
        (fun (f : Schema.fk) ->
          let target = Db.row_count db f.Schema.references in
          Array.iter
            (fun v ->
              match v with
              | Value.Int x ->
                  if x < 1 || x > target then
                    Alcotest.failf "dangling fk %s.%s = %d" tbl.Schema.tname
                      f.Schema.fk_col x
              | _ -> Alcotest.failf "null fk in %s.%s" tbl.Schema.tname f.Schema.fk_col)
            (Db.column db tbl.Schema.tname f.Schema.fk_col))
        tbl.Schema.fks)
    (Schema.tables schema)

let test_scale_out_exactness () =
  (* tiling multiplies every annotated cardinality by the copy count *)
  let r = gen_workload Mirage_workloads.Ssb.make ~sf:0.25 ~batch:1_000_000 in
  let copies = 3 in
  let tiled = Mirage_core.Scale_out.tile_db ~db:r.Driver.r_db ~copies in
  let workload, _, _ = Mirage_workloads.Ssb.make ~sf:0.25 ~seed:7 in
  List.iter
    (fun (q : Workload.query) ->
      let base = Mirage_engine.Exec.analyze r.Driver.r_db ~env:r.Driver.r_env q.Workload.q_plan in
      let big = Mirage_engine.Exec.analyze tiled ~env:r.Driver.r_env q.Workload.q_plan in
      Array.iteri
        (fun i c ->
          Alcotest.(check int)
            (Printf.sprintf "%s view %d scales" q.Workload.q_name i)
            (copies * c) big.Mirage_engine.Exec.cards.(i))
        base.Mirage_engine.Exec.cards)
    workload.Workload.w_queries

let test_scale_out_csv () =
  let r = gen_workload Mirage_workloads.Ssb.make ~sf:0.25 ~batch:1_000_000 in
  let dir = Filename.temp_file "mirage" "" in
  Sys.remove dir;
  Mirage_core.Scale_out.to_csv_dir ~db:r.Driver.r_db ~copies:2 ~dir ();
  let ic = open_in (Filename.concat dir "lineorder.csv") in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "header + 2 tiles"
    (1 + (2 * Db.row_count r.Driver.r_db "lineorder"))
    !lines

let test_bundle_roundtrip_generation () =
  (* the bundle mode — generation without the production database — must
     produce exactly the same database as direct generation *)
  let workload, ref_db, prod_env = Mirage_workloads.Ssb.make ~sf:0.5 ~seed:7 in
  let ex = Mirage_core.Extract.run workload ~ref_db ~prod_env in
  let bundle = Mirage_core.Bundle.of_extraction workload ex ~prod_env in
  let reloaded =
    match Mirage_core.Bundle.of_string (Mirage_core.Bundle.to_string bundle) with
    | Ok b -> b
    | Error m -> Alcotest.failf "bundle parse: %s" m
  in
  let direct =
    match Driver.generate workload ~ref_db ~prod_env with
    | Ok r -> r
    | Error d -> Alcotest.fail (Mirage_core.Diag.to_string d)
  in
  let from_bundle =
    match Driver.generate_from_bundle reloaded with
    | Ok r -> r
    | Error d -> Alcotest.fail (Mirage_core.Diag.to_string d)
  in
  List.iter
    (fun tname ->
      Alcotest.(check string) (tname ^ " identical")
        (Db.to_csv direct.Driver.r_db tname)
        (Db.to_csv from_bundle.Driver.r_db tname))
    [ "lineorder"; "customer"; "part" ];
  (* replaying the original AQTs against the bundle-generated database must
     reproduce the production annotations exactly *)
  let errs =
    Mirage_core.Error.measure ~aqts:ex.Mirage_core.Extract.aqts
      ~db:from_bundle.Driver.r_db ~env:from_bundle.Driver.r_env
  in
  List.iter
    (fun (e : Error.query_error) ->
      Alcotest.(check (float 1e-9)) (e.Error.qe_name ^ " exact") 0.0 e.Error.qe_relative)
    errs

let test_bundle_rejects_garbage () =
  (match Mirage_core.Bundle.of_string "(not-a-bundle)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  match Mirage_core.Bundle.of_string "(mirage-bundle 1)\n(nonsense)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown line"

let () =
  Alcotest.run "integration"
    [
      ( "paper-example",
        [
          Alcotest.test_case "generation succeeds" `Quick test_generation_succeeds;
          Alcotest.test_case "all queries zero error" `Quick test_zero_errors;
          Alcotest.test_case "domain sizes preserved" `Quick test_domain_sizes_preserved;
          Alcotest.test_case "warnings only resizes" `Quick test_warnings_only_resizes;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "ssb exact end-to-end" `Quick test_ssb_end_to_end;
          Alcotest.test_case "tpch near-exact end-to-end" `Slow test_tpch_end_to_end;
          Alcotest.test_case "deterministic generation" `Quick test_determinism;
          Alcotest.test_case "batching stays within bounds" `Quick test_batching_consistency;
          Alcotest.test_case "row and domain cardinalities" `Slow test_row_and_domain_cardinalities;
          Alcotest.test_case "workload-parser fixed point" `Quick test_fixed_point;
          Alcotest.test_case "fk referential integrity" `Slow test_fk_referential_integrity;
        ] );
      ( "bundle",
        [
          Alcotest.test_case "round trip equals direct generation" `Quick
            test_bundle_roundtrip_generation;
          Alcotest.test_case "rejects garbage" `Quick test_bundle_rejects_garbage;
        ] );
      ( "scale-out",
        [
          Alcotest.test_case "cardinalities scale exactly" `Quick test_scale_out_exactness;
          Alcotest.test_case "csv tiles" `Quick test_scale_out_csv;
        ] );
    ]
