(* Output-engine suite: the render kernel's digit writers and escaping, and
   the templated tile splicer against the per-cell reference renderer it
   replaced.  The QCheck properties pin itoa/ftoa to string_of_int /
   round-trip float parsing; the differential cases prove the templated
   to_csv_dir is byte-identical to the naive renderer for every domain
   count and copy count, on generated workloads and on a hand-built
   database full of quote-needing strings; a committed golden pins the
   RFC-4180 escaping bytes themselves. *)

module Value = Mirage_sql.Value
module Schema = Mirage_sql.Schema
module Col = Mirage_engine.Col
module Db = Mirage_engine.Db
module Render = Mirage_engine.Render
module Scale_out = Mirage_core.Scale_out
module Driver = Mirage_core.Driver
module Par = Mirage_par.Par

let buf_str f =
  let b = Render.Buf.create 8 in
  f b;
  Render.Buf.contents b

(* --- itoa ------------------------------------------------------------------ *)

let test_itoa_cases () =
  List.iter
    (fun n ->
      Alcotest.(check string)
        (Printf.sprintf "itoa %d" n)
        (string_of_int n)
        (buf_str (fun b -> Render.Buf.itoa b n)))
    [
      0; 1; -1; 9; 10; 11; 99; 100; 101; -9; -10; -99; -100; 4096;
      999_999_999; 1_000_000_000; max_int; min_int; max_int - 1; min_int + 1;
    ]

let prop_itoa =
  QCheck.Test.make ~name:"itoa = string_of_int" ~count:2000
    QCheck.(int)
    (fun n -> buf_str (fun b -> Render.Buf.itoa b n) = string_of_int n)

(* --- ftoa ------------------------------------------------------------------ *)

(* the unified float format, pinned byte-for-byte: shortest round-trip
   decimal, integral values as bare digits (the committed goldens' %.17g
   images), specials as nan/inf *)
let test_ftoa_pinned () =
  List.iter
    (fun (f, want) ->
      Alcotest.(check string)
        (Printf.sprintf "float_repr %h" f)
        want (Render.float_repr f);
      Alcotest.(check string)
        (Printf.sprintf "ftoa %h" f)
        want
        (buf_str (fun b -> Render.Buf.ftoa b f)))
    [
      (0.0, "0");
      (-0.0, "-0");
      (1.0, "1");
      (-1.0, "-1");
      (0.5, "0.5");
      (-2.25, "-2.25");
      (0.1, "0.1");
      (1.0 /. 3.0, "0.3333333333333333");
      (1234.5, "1234.5");
      (43250.0, "43250");
      (1e22, "1e+22");
      (5e-324, "5e-324");
      (nan, "nan");
      (infinity, "inf");
      (neg_infinity, "-inf");
    ]

let float_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun i -> float_of_int i /. 64.0) (int_range (-1_000_000) 1_000_000));
        (2, map float_of_int (int_range (-1_000_000_000) 1_000_000_000));
        (2, float);
        (1, oneofl [ 0.0; -0.0; 1e308; -1e308; 5e-324; 4.2e18; 1.5e16 ]);
      ])

let prop_ftoa_roundtrip =
  QCheck.Test.make ~name:"float_of_string (float_repr f) = f" ~count:2000
    (QCheck.make float_gen) (fun f ->
      let s = Render.float_repr f in
      let f' = float_of_string s in
      if Float.is_nan f then Float.is_nan f'
      else f' = f && 1.0 /. f' = 1.0 /. f (* sign of zero survives *))

let prop_ftoa_buf_agrees =
  QCheck.Test.make ~name:"Buf.ftoa = float_repr" ~count:2000
    (QCheck.make float_gen) (fun f ->
      buf_str (fun b -> Render.Buf.ftoa b f) = Render.float_repr f)

(* --- CSV escaping ---------------------------------------------------------- *)

let test_csv_escape_cases () =
  List.iter
    (fun (s, want) ->
      Alcotest.(check string) (Printf.sprintf "csv_escape %S" s) want
        (Render.csv_escape s))
    [
      ("", "");
      ("plain", "plain");
      ("with space", "with space");
      ("a,b", "\"a,b\"");
      ("say \"hi\"", "\"say \"\"hi\"\"\"");
      ("line\nbreak", "\"line\nbreak\"");
      ("cr\rhere", "\"cr\rhere\"");
      (",", "\",\"");
      ("\"", "\"\"\"\"");
    ];
  (* unquoted entries are returned physically — pool escaping never copies
     the common case *)
  let s = "no-quoting-needed" in
  Alcotest.(check bool) "physical reuse" true (Render.csv_escape s == s)

(* RFC-4180 unquote as an independent model: escape must invert *)
let csv_unescape s =
  let n = String.length s in
  if n = 0 || s.[0] <> '"' then s
  else begin
    let b = Buffer.create n in
    let i = ref 1 in
    while !i < n - 1 do
      if s.[!i] = '"' && !i + 1 < n - 1 && s.[!i + 1] = '"' then begin
        Buffer.add_char b '"';
        i := !i + 2
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  end

let prop_csv_escape_roundtrip =
  QCheck.Test.make ~name:"csv_escape round-trips through RFC-4180 unquote"
    ~count:2000
    (QCheck.make
       QCheck.Gen.(
         string_size ~gen:(oneofl [ 'a'; ','; '"'; '\n'; '\r'; 'z' ]) (0 -- 12)))
    (fun s -> csv_unescape (Render.csv_escape s) = s)

(* --- templated splicer vs reference renderer ------------------------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let render_both ~db ~copies ~domains =
  let dir_t = Filename.temp_file "mirage_tpl" "" in
  let dir_r = Filename.temp_file "mirage_ref" "" in
  Sys.remove dir_t;
  Sys.remove dir_r;
  Par.with_pool ~domains (fun pool ->
      Scale_out.to_csv_dir ~pool ~db ~copies ~dir:dir_t ();
      Scale_out.Reference.to_csv_dir ~pool ~db ~copies ~dir:dir_r ());
  let collect dir =
    let files = Array.to_list (Sys.readdir dir) |> List.sort compare in
    let all =
      List.map (fun f -> (f, read_file (Filename.concat dir f))) files
    in
    List.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
    Sys.rmdir dir;
    all
  in
  (collect dir_t, collect dir_r)

let check_identical ~label ~db ~copies ~domains =
  let tpl, reference = render_both ~db ~copies ~domains in
  Alcotest.(check (list string))
    (label ^ ": same file set")
    (List.map fst reference) (List.map fst tpl);
  List.iter2
    (fun (f, want) (_, got) ->
      if not (String.equal want got) then
        Alcotest.failf "%s: %s differs (%d bytes vs %d reference bytes)" label
          f (String.length got) (String.length want))
    reference tpl

(* a schema exercising every splice shape: keys (pk + fk, one nullable),
   dictionary strings that need quoting, floats, NULLs and a wide fixed
   tail around interleaved key columns *)
let special_db () =
  let dim =
    {
      Schema.tname = "dim";
      pk = "d_key";
      nonkeys =
        [ { Schema.cname = "d_label"; domain_size = 4; kind = Schema.Kstring } ];
      fks = [];
      row_count = 4;
    }
  in
  let fact =
    {
      Schema.tname = "fact";
      pk = "f_key";
      nonkeys =
        [
          { Schema.cname = "f_note"; domain_size = 5; kind = Schema.Kstring };
          { Schema.cname = "f_ratio"; domain_size = 8; kind = Schema.Kfloat };
          { Schema.cname = "f_count"; domain_size = 8; kind = Schema.Kint };
        ];
      fks = [ { Schema.fk_col = "f_dim"; references = "dim" } ];
      row_count = 8;
    }
  in
  let schema = Schema.make [ dim; fact ] in
  let db = Db.create schema in
  Db.put_cols db "dim"
    [
      ("d_key", Col.of_ints [| 1; 2; 3; 4 |]);
      ( "d_label",
        Col.of_strings
          [| "plain"; "comma, inside"; "quote \"q\" here"; "multi\nline" |] );
    ];
  let null3 n =
    let b = Col.Bitset.create n in
    Col.Bitset.set b 3;
    b
  in
  Db.put_cols db "fact"
    [
      ("f_key", Col.of_ints [| 1; 2; 3; 4; 5; 6; 7; 8 |]);
      ( "f_note",
        Col.of_strings ~nulls:(null3 8)
          [| "a"; "b,c"; "d\r\n"; ""; "\""; "x"; "y,"; ",z" |] );
      ( "f_ratio",
        Col.of_floats ~nulls:(null3 8)
          [| 0.5; -2.25; 1.0 /. 3.0; 0.0; 1e22; -0.0; 42.0; 0.1 |] );
      (* a Boxed column: the fallback arms must splice identically *)
      ( "f_count",
        Col.Boxed
          [|
            Value.Int 7; Value.Null; Value.Str "n,a"; Value.Float 2.5;
            Value.Int (-3); Value.Str "plain"; Value.Null; Value.Int 0;
          |] );
      ("f_dim", Col.of_ints ~nulls:(null3 8) [| 1; 2; 3; 0; 4; 1; 2; 3 |]);
    ];
  db

let test_special_identity () =
  let db = special_db () in
  List.iter
    (fun (copies, domains) ->
      check_identical
        ~label:(Printf.sprintf "special copies=%d domains=%d" copies domains)
        ~db ~copies ~domains)
    [ (1, 1); (3, 1); (3, 2); (16, 2) ]

(* the templated writer, Db.to_csv and tile_db must agree on the same bytes
   even with quote-needing cells in play *)
let test_special_matches_tile_db () =
  let db = special_db () in
  let copies = 3 in
  let tiled = Scale_out.tile_db ~db ~copies in
  let dir = Filename.temp_file "mirage_tiledb" "" in
  Sys.remove dir;
  Scale_out.to_csv_dir ~db ~copies ~dir ();
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let got = read_file (Filename.concat dir (tname ^ ".csv")) in
      Alcotest.(check bool)
        (tname ^ ".csv matches Db.to_csv of tile_db")
        true
        (String.equal got (Db.to_csv tiled tname));
      Sys.remove (Filename.concat dir (tname ^ ".csv")))
    (Schema.tables (Db.schema db));
  Sys.rmdir dir

(* committed golden with quote-needing strings: pins the escaping bytes.
   Regenerate with MIRAGE_UPDATE_GOLDENS=1 from the source test/ dir. *)
let test_quote_golden () =
  let db = special_db () in
  let dir = Filename.temp_file "mirage_quote" "" in
  Sys.remove dir;
  Scale_out.to_csv_dir ~db ~copies:2 ~dir ();
  let update = Sys.getenv_opt "MIRAGE_UPDATE_GOLDENS" <> None in
  if update then Scale_out.mkdir_p (Filename.concat "goldens" "quote");
  List.iter
    (fun tname ->
      let got = read_file (Filename.concat dir (tname ^ ".csv")) in
      let golden =
        List.fold_left Filename.concat "goldens" [ "quote"; tname ^ ".csv" ]
      in
      if update then
        Out_channel.with_open_bin golden (fun oc ->
            Out_channel.output_string oc got)
      else begin
        let want = read_file golden in
        if not (String.equal want got) then
          Alcotest.failf "goldens/quote/%s.csv: bytes differ (%d vs %d golden)"
            tname (String.length got) (String.length want)
      end;
      Sys.remove (Filename.concat dir (tname ^ ".csv")))
    [ "dim"; "fact" ];
  Sys.rmdir dir

let test_nested_dir () =
  let base = Filename.temp_file "mirage_nested" "" in
  Sys.remove base;
  let dir = Filename.concat (Filename.concat base "deep") "er" in
  let db = special_db () in
  Scale_out.to_csv_dir ~db ~copies:1 ~dir ();
  Alcotest.(check bool) "nested dir created" true (Sys.is_directory dir);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir;
  Sys.rmdir (Filename.concat base "deep");
  Sys.rmdir base

(* --- generated workloads: SSB + TPC-H, domains × copies ------------------- *)

let generate make ~sf =
  let workload, ref_db, prod_env = make ~sf ~seed:7 in
  let config =
    { Driver.default_config with seed = 42; batch_size = 1_000_000; domains = 1 }
  in
  match Driver.generate ~config workload ~ref_db ~prod_env with
  | Error d -> Alcotest.fail (Mirage_core.Diag.to_string d)
  | Ok r -> r.Driver.r_db

let test_workload_identity name make ~sf () =
  let db = generate make ~sf in
  List.iter
    (fun domains ->
      List.iter
        (fun copies ->
          check_identical
            ~label:(Printf.sprintf "%s domains=%d copies=%d" name domains copies)
            ~db ~copies ~domains)
        [ 1; 3; 16 ])
    [ 1; 2; 4 ]

let () =
  Alcotest.run "render"
    [
      ( "kernel",
        [
          Alcotest.test_case "itoa boundary cases" `Quick test_itoa_cases;
          QCheck_alcotest.to_alcotest prop_itoa;
          Alcotest.test_case "ftoa pinned format" `Quick test_ftoa_pinned;
          QCheck_alcotest.to_alcotest prop_ftoa_roundtrip;
          QCheck_alcotest.to_alcotest prop_ftoa_buf_agrees;
          Alcotest.test_case "csv_escape cases" `Quick test_csv_escape_cases;
          QCheck_alcotest.to_alcotest prop_csv_escape_roundtrip;
        ] );
      ( "template",
        [
          Alcotest.test_case "special chars: templated = reference" `Quick
            test_special_identity;
          Alcotest.test_case "special chars: matches tile_db render" `Quick
            test_special_matches_tile_db;
          Alcotest.test_case "quote-needing golden bytes" `Quick
            test_quote_golden;
          Alcotest.test_case "nested output directories" `Quick test_nested_dir;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "ssb domains 1/2/4 x copies 1/3/16" `Slow
            (test_workload_identity "ssb" Mirage_workloads.Ssb.make ~sf:0.1);
          Alcotest.test_case "tpch domains 1/2/4 x copies 1/3/16" `Slow
            (test_workload_identity "tpch" Mirage_workloads.Tpch.make ~sf:0.05);
        ] );
    ]
