module Lp = Mirage_lp.Lp

let test_feasible_point_simple () =
  (* x + y = 5 *)
  let a = [| [| 1.0; 1.0 |] |] and b = [| 5.0 |] in
  match Lp.feasible_point ~a ~b () with
  | Some x ->
      Alcotest.(check (float 1e-6)) "sums to 5" 5.0 (x.(0) +. x.(1));
      Alcotest.(check bool) "non-negative" true (x.(0) >= -1e-9 && x.(1) >= -1e-9)
  | None -> Alcotest.fail "feasible system"

let test_optimal_known () =
  (* minimise x subject to x + y = 10, x - s = 3  (i.e. x >= 3) -> x = 3 *)
  let a = [| [| 1.0; 1.0; 0.0 |]; [| 1.0; 0.0; -1.0 |] |] in
  let b = [| 10.0; 3.0 |] in
  let c = [| 1.0; 0.0; 0.0 |] in
  match Lp.solve ~a ~b ~c () with
  | Lp.Optimal x -> Alcotest.(check (float 1e-6)) "x = 3" 3.0 x.(0)
  | _ -> Alcotest.fail "should be optimal"

let test_infeasible () =
  (* x = 5 and x = 3 *)
  let a = [| [| 1.0 |]; [| 1.0 |] |] and b = [| 5.0; 3.0 |] in
  Alcotest.(check bool) "infeasible" true (Lp.feasible_point ~a ~b () = None)

let test_negative_rhs_normalised () =
  (* -x = -4  ->  x = 4 *)
  let a = [| [| -1.0 |] |] and b = [| -4.0 |] in
  match Lp.feasible_point ~a ~b () with
  | Some x -> Alcotest.(check (float 1e-6)) "x = 4" 4.0 x.(0)
  | None -> Alcotest.fail "feasible"

let test_ragged_rejected () =
  Alcotest.(check bool) "ragged" true
    (try
       ignore (Lp.solve ~a:[| [| 1.0 |] |] ~b:[| 1.0 |] ~c:[| 1.0; 2.0 |] ());
       false
     with Invalid_argument _ -> true)

let test_round_preserving_sum_basic () =
  let r = Lp.round_preserving_sum [| 1.4; 2.6; 3.0 |] ~total:7 in
  Alcotest.(check int) "sums" 7 (Array.fold_left ( + ) 0 r);
  Array.iter (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0)) r

let test_round_deficit_and_excess () =
  let r = Lp.round_preserving_sum [| 0.5; 0.5 |] ~total:1 in
  Alcotest.(check int) "deficit handled" 1 (Array.fold_left ( + ) 0 r);
  let r = Lp.round_preserving_sum [| 2.0; 2.0 |] ~total:3 in
  Alcotest.(check int) "excess handled" 3 (Array.fold_left ( + ) 0 r)

let prop_round_sum =
  QCheck.Test.make ~name:"rounding preserves total and non-negativity" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 8) (float_range 0.0 50.0)) (int_range 0 100))
    (fun (xs, total) ->
      let arr = Array.of_list xs in
      let r = Lp.round_preserving_sum arr ~total in
      Array.fold_left ( + ) 0 r = total || Array.fold_left ( +. ) 0.0 arr < float_of_int total /. 2.0
      (* when the input mass is far below the target the repair can only add
         1 per element; accept those degenerate cases *)
      || Array.length r = 0)

let prop_feasible_systems_found =
  (* A x = b with b computed from a known x0 >= 0 must be feasible *)
  QCheck.Test.make ~name:"systems with known solutions are feasible" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 1 6))
    (fun (m, n) ->
      let rng = Mirage_util.Rng.create ((m * 13) + n) in
      let a =
        Array.init m (fun _ ->
            Array.init n (fun _ -> float_of_int (Mirage_util.Rng.int rng 4)))
      in
      let x0 = Array.init n (fun _ -> float_of_int (Mirage_util.Rng.int rng 9)) in
      let b =
        Array.init m (fun r ->
            Array.to_list (Array.mapi (fun j v -> v *. x0.(j)) a.(r))
            |> List.fold_left ( +. ) 0.0)
      in
      match Lp.feasible_point ~a ~b () with
      | Some x ->
          (* verify A x = b within tolerance *)
          Array.to_list a
          |> List.mapi (fun r row ->
                 let s =
                   Array.to_list (Array.mapi (fun j v -> v *. x.(j)) row)
                   |> List.fold_left ( +. ) 0.0
                 in
                 abs_float (s -. b.(r)) < 1e-4)
          |> List.for_all (fun ok -> ok)
      | None -> false)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "feasible point" `Quick test_feasible_point_simple;
          Alcotest.test_case "known optimum" `Quick test_optimal_known;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs_normalised;
          Alcotest.test_case "ragged rejected" `Quick test_ragged_rejected;
          QCheck_alcotest.to_alcotest prop_feasible_systems_found;
        ] );
      ( "rounding",
        [
          Alcotest.test_case "basic" `Quick test_round_preserving_sum_basic;
          Alcotest.test_case "deficit and excess" `Quick test_round_deficit_and_excess;
          QCheck_alcotest.to_alcotest prop_round_sum;
        ] );
    ]
