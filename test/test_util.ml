module Rng = Mirage_util.Rng
module Toposort = Mirage_util.Toposort
module Hoeffding = Mirage_util.Hoeffding
module Stats = Mirage_util.Stats

let test_rng_bounds () =
  let t = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int t 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_rng_int_in () =
  let t = Rng.create 2 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in t 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_split_independent () =
  let t = Rng.create 7 in
  let s = Rng.split t in
  let xs = List.init 50 (fun _ -> Rng.int t 1000) in
  let ys = List.init 50 (fun _ -> Rng.int s 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_float_range () =
  let t = Rng.create 3 in
  for _ = 1 to 1_000 do
    let v = Rng.float t 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_shuffle_is_permutation () =
  let t = Rng.create 5 in
  let arr = Array.init 200 (fun i -> i) in
  let copy = Array.copy arr in
  Rng.shuffle t copy;
  Array.sort compare copy;
  Alcotest.(check bool) "permutation" true (arr = copy)

let test_sample_without_replacement () =
  let t = Rng.create 6 in
  let s = Rng.sample_without_replacement t 30 100 in
  Alcotest.(check int) "size" 30 (Array.length s);
  let distinct = Array.to_list s |> List.sort_uniq compare in
  Alcotest.(check int) "distinct" 30 (List.length distinct);
  Array.iter (fun v -> Alcotest.(check bool) "range" true (v >= 0 && v < 100)) s

let test_sample_dense_case () =
  let t = Rng.create 8 in
  let s = Rng.sample_without_replacement t 90 100 in
  Alcotest.(check int) "size" 90 (Array.length s);
  Alcotest.(check int) "distinct" 90
    (Array.to_list s |> List.sort_uniq compare |> List.length)

let test_rng_invalid () =
  let t = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int t 0));
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement: k > n") (fun () ->
      ignore (Rng.sample_without_replacement t 5 3))

let test_topo_chain () =
  let order =
    Toposort.sort ~vertices:[ "c"; "a"; "b" ] ~edges:[ ("a", "b"); ("b", "c") ]
  in
  Alcotest.(check (list string)) "chain order" [ "a"; "b"; "c" ] order

let test_topo_respects_edges () =
  let vertices = [ "s"; "t"; "u"; "v"; "w" ] in
  let edges = [ ("s", "t"); ("s", "u"); ("u", "v"); ("t", "v") ] in
  let order = Toposort.sort ~vertices ~edges in
  Alcotest.(check bool) "is topological" true
    (Toposort.is_topological ~vertices ~edges order)

let test_topo_cycle () =
  Alcotest.check_raises "cycle" (Failure "Toposort.sort: graph has a cycle")
    (fun () ->
      ignore (Toposort.sort ~vertices:[ "a"; "b" ] ~edges:[ ("a", "b"); ("b", "a") ]))

let test_topo_deterministic () =
  let vertices = [ "z"; "y"; "x" ] in
  let a = Toposort.sort ~vertices ~edges:[] in
  let b = Toposort.sort ~vertices ~edges:[] in
  Alcotest.(check (list string)) "stable" a b

let test_hoeffding_paper_setting () =
  (* §8: delta 0.1%, alpha 99.9% -> about 3.8M rows *)
  let n = Hoeffding.sample_size ~delta:0.001 ~alpha:0.999 in
  Alcotest.(check bool) "in the 3-4.5M range" true (n > 3_000_000 && n < 4_500_000)

let test_hoeffding_inverse () =
  let n = Hoeffding.sample_size ~delta:0.01 ~alpha:0.95 in
  let d = Hoeffding.error_bound ~sample_size:n ~alpha:0.95 in
  Alcotest.(check bool) "bound holds" true (d <= 0.01 +. 1e-6)

let test_hoeffding_monotone () =
  let a = Hoeffding.sample_size ~delta:0.01 ~alpha:0.9 in
  let b = Hoeffding.sample_size ~delta:0.005 ~alpha:0.9 in
  Alcotest.(check bool) "smaller delta needs more samples" true (b > a)

let test_relative_error_zero () =
  Alcotest.(check (float 1e-9)) "exact" 0.0
    (Stats.relative_error ~expected:[ 5; 10 ] ~actual:[ 5; 10 ])

let test_relative_error_paper_metric () =
  Alcotest.(check (float 1e-9)) "metric" (3.0 /. 15.0)
    (Stats.relative_error ~expected:[ 5; 10 ] ~actual:[ 4; 12 ])

let test_relative_error_degenerate () =
  Alcotest.(check (float 1e-9)) "0/0" 0.0 (Stats.relative_error ~expected:[ 0 ] ~actual:[ 0 ]);
  Alcotest.(check (float 1e-9)) "x/0" 1.0 (Stats.relative_error ~expected:[ 0 ] ~actual:[ 3 ])

let test_percentile () =
  let data = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile data 0.5);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.percentile data 0.0);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.percentile data 1.0)

let test_histogram () =
  let h = Stats.histogram ~buckets:2 [| 0.0; 0.1; 0.9; 1.0 |] in
  Alcotest.(check (array int)) "split" [| 2; 2 |] h

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let arr = Array.of_list l in
      let t = Rng.create seed in
      Rng.shuffle t arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let prop_topo_random_dags =
  QCheck.Test.make ~name:"random DAGs sort topologically" ~count:100
    QCheck.small_nat
    (fun n ->
      let n = max 2 (min 15 n) in
      let vertices = List.init n string_of_int in
      let edges =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j ->
                if (i + j) mod 3 = 0 then Some (string_of_int i, string_of_int j)
                else None)
              (List.init (n - i - 1) (fun k -> i + k + 1)))
          (List.init n (fun i -> i))
      in
      let order = Toposort.sort ~vertices ~edges in
      Toposort.is_topological ~vertices ~edges order)

module Sexp = Mirage_util.Sexp

let test_sexp_roundtrip_cases () =
  let cases =
    [
      Sexp.Atom "hello";
      Sexp.Atom "with space";
      Sexp.Atom "quo\"te";
      Sexp.Atom "";
      Sexp.List [];
      Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ] ];
      Sexp.List [ Sexp.Atom "(paren)"; Sexp.Atom "new\nline" ];
    ]
  in
  List.iter
    (fun s ->
      match Sexp.of_string (Sexp.to_string s) with
      | Ok s' -> Alcotest.(check bool) (Sexp.to_string s) true (s = s')
      | Error m -> Alcotest.failf "parse failed: %s" m)
    cases

let test_sexp_errors () =
  let bad s = match Sexp.of_string s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "unclosed" true (bad "(a (b)");
  Alcotest.(check bool) "stray paren" true (bad ")");
  Alcotest.(check bool) "two exprs" true (bad "a b");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc")

let prop_sexp_roundtrip =
  let rec gen_sexp n =
    let open QCheck.Gen in
    if n = 0 then map (fun s -> Sexp.Atom s) (string_size ~gen:printable (0 -- 6))
    else
      frequency
        [
          (2, map (fun s -> Sexp.Atom s) (string_size ~gen:printable (0 -- 6)));
          (1, map (fun l -> Sexp.List l) (list_size (0 -- 4) (gen_sexp (n - 1))));
        ]
  in
  QCheck.Test.make ~name:"sexp print/parse round trip" ~count:300
    (QCheck.make (gen_sexp 3))
    (fun s -> Sexp.of_string (Sexp.to_string s) = Ok s)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "sample dense" `Quick test_sample_dense_case;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid;
          QCheck_alcotest.to_alcotest prop_shuffle_permutation;
        ] );
      ( "toposort",
        [
          Alcotest.test_case "chain" `Quick test_topo_chain;
          Alcotest.test_case "respects edges" `Quick test_topo_respects_edges;
          Alcotest.test_case "cycle detected" `Quick test_topo_cycle;
          Alcotest.test_case "deterministic" `Quick test_topo_deterministic;
          QCheck_alcotest.to_alcotest prop_topo_random_dags;
        ] );
      ( "hoeffding",
        [
          Alcotest.test_case "paper setting" `Quick test_hoeffding_paper_setting;
          Alcotest.test_case "inverse" `Quick test_hoeffding_inverse;
          Alcotest.test_case "monotone" `Quick test_hoeffding_monotone;
        ] );
      ( "sexp",
        [
          Alcotest.test_case "round trip cases" `Quick test_sexp_roundtrip_cases;
          Alcotest.test_case "errors" `Quick test_sexp_errors;
          QCheck_alcotest.to_alcotest prop_sexp_roundtrip;
        ] );
      ( "stats",
        [
          Alcotest.test_case "relative error zero" `Quick test_relative_error_zero;
          Alcotest.test_case "paper metric" `Quick test_relative_error_paper_metric;
          Alcotest.test_case "degenerate" `Quick test_relative_error_degenerate;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
    ]
