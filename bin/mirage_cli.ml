(* mirage — query-aware database generation from the command line.

   Subcommands:
     generate   regenerate a benchmark application and export CSVs
     verify     regenerate and report per-query relative errors
     compare    run the baseline generators on the same workload
     table1     print the operator-supportability matrix
     parse      parse a predicate and print its features *)

open Cmdliner

module Driver = Mirage_core.Driver
module Diag = Mirage_core.Diag
module Error = Mirage_core.Error
module Db = Mirage_engine.Db
module Schema = Mirage_sql.Schema
module Budget = Mirage_util.Budget
module Sink = Mirage_engine.Sink
module Scale_out = Mirage_core.Scale_out
module Par = Mirage_par.Par

(* exports ride the same resident domain pool generation used (Par.get hands
   out one long-lived pool per width for the whole process) — CSV tiles
   render in parallel instead of sequentially, at no extra spawn cost *)
let export_pool () = Par.get ()

(* process exit codes, also rendered in every subcommand's man page *)
let exits =
  Cmd.Exit.info 0 ~doc:"generation succeeded with every query exact."
  :: Cmd.Exit.info 1
       ~doc:
         "degraded result: at least one query was generated with adjusted, \
          quarantined or unsupported constraints (see the per-query \
          feasibility report), or a verification found mismatches."
  :: Cmd.Exit.info 2 ~doc:"infeasible workload or generation failure."
  :: Cmd.Exit.info 3
       ~doc:
         "resource budget exceeded: max rows, heap watermark or wall-clock \
          deadline (--budget-rows / --budget-mb / --budget-seconds)."
  :: Cmd.Exit.info 4
       ~doc:
         "I/O failure while exporting (disk full, permissions).  Committed \
          shards and MANIFEST.json are intact; rerun with --resume."
  :: Cmd.Exit.defaults

(* uniform classification: a budget breach or sink failure anywhere in a
   subcommand maps to its documented exit code *)
let guarded f =
  try f () with
  | Sink.Io_failure m ->
      Fmt.epr "mirage: I/O failure: %s@." m;
      4
  | Budget.Exceeded r ->
      Fmt.epr "mirage: %s@." (Budget.describe r);
      3
  (* filesystem errors from paths the sink never touches (schema.sql,
     parameters.txt, bundle files) surface as Sys_error — same exit code as
     the sink's typed failures *)
  | Sys_error m ->
      Fmt.epr "mirage: I/O failure: %s@." m;
      4
  | Failure m ->
      Fmt.epr "mirage: %s@." m;
      2

let make_workload name sf seed =
  match name with
  | "ssb" -> Mirage_workloads.Ssb.make ~sf ~seed
  | "tpch" -> Mirage_workloads.Tpch.make ~sf ~seed
  | "tpcds" -> Mirage_workloads.Tpcds.make ~sf ~seed
  | other -> failwith (Printf.sprintf "unknown workload %s (ssb|tpch|tpcds)" other)

let workload_arg =
  let doc = "Workload to regenerate: ssb, tpch or tpcds." in
  Arg.(value & opt string "tpch" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let sf_arg =
  let doc = "Scale factor (1.0 = the laptop-scale base size)." in
  Arg.(value & opt float 0.2 & info [ "sf"; "scale" ] ~docv:"SF" ~doc)

let seed_arg =
  let doc = "Deterministic seed for both the production data and generation." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc)

let batch_arg =
  let doc = "Generation batch size in rows (the paper's default is 7M)." in
  Arg.(value & opt int 1_000_000 & info [ "batch" ] ~docv:"ROWS" ~doc)

let out_arg =
  let doc = "Directory to write synthetic CSVs and the parameter file into." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)

let copies_arg =
  let doc =
    "Tile the generated database this many times when exporting (every      cardinality constraint scales exactly by the same factor; memory stays      at one tile)."
  in
  Arg.(value & opt int 1 & info [ "copies" ] ~docv:"K" ~doc)

let budget_rows_arg =
  let doc = "Clamp the generation batch and export chunk sizes to $(docv) rows." in
  Arg.(value & opt (some int) None & info [ "budget-rows" ] ~docv:"ROWS" ~doc)

let budget_mb_arg =
  let doc =
    "Abort with exit code 3 once the heap exceeds $(docv) MB (polled at stage      boundaries, every keygen batch and every 64 CP search nodes)."
  in
  Arg.(value & opt (some int) None & info [ "budget-mb" ] ~docv:"MB" ~doc)

let budget_seconds_arg =
  let doc = "Abort with exit code 3 after $(docv) seconds of wall-clock time." in
  Arg.(value & opt (some float) None & info [ "budget-seconds" ] ~docv:"S" ~doc)

let limits_of rows mb secs =
  { Budget.max_chunk_rows = rows; max_heap_mb = mb; deadline_s = secs }

let chunk_rows_arg =
  let doc =
    "Stream generation and export in chunks of at most $(docv) rows: fact      tables are generated chunk-at-a-time (peak heap stays at one chunk      plus the dimension tables, byte-identical to the monolithic path) and      exported through the crash-safe chunked sink, at most $(docv) rows per      shard file <table>.csv.<k>: each shard is written to a temp file,      atomically renamed into place and recorded in MANIFEST.json, so a      killed export loses at most one shard of work."
  in
  Arg.(value & opt (some int) None & info [ "chunk-rows" ] ~docv:"ROWS" ~doc)

let big_rows_arg =
  let doc =
    "Store columns with at least $(docv) rows off-heap in mmapped buffers      instead of the OCaml heap.  Overrides the MIRAGE_BIG_ROWS environment      variable, which stays the default (1M rows when unset)."
  in
  Arg.(value & opt (some int) None & info [ "big-rows" ] ~docv:"ROWS" ~doc)

let big_dir_arg =
  let doc =
    "Back off-heap column buffers with unlinked temp files under $(docv)      (created if missing) instead of anonymous memory, letting the OS page      cold columns out to that filesystem.  Overrides the MIRAGE_BIG_DIR      environment variable, which stays the default."
  in
  Arg.(value & opt (some string) None & info [ "big-dir" ] ~docv:"DIR" ~doc)

(* the flags win over the environment for this process only; validation
   failures surface as exit code 2 before any generation work starts *)
let apply_big_flags big_rows big_dir =
  (match big_rows with
  | Some r when r < 1 ->
      failwith (Printf.sprintf "--big-rows must be >= 1 (got %d)" r)
  | Some r -> Mirage_engine.Col.set_big_rows r
  | None -> ());
  match big_dir with
  | Some d ->
      Scale_out.mkdir_p d;
      Mirage_engine.Col.set_big_dir (Some d)
  | None -> ()

let schedule_arg =
  let doc =
    "Keygen scheduling: $(b,overlap) (the default) runs FK edges with no      ordering constraint between them concurrently on the domain pool,      solves each constrained edge's next CP batch while the current batch's      rows fill, and starts exporting a table the moment its last edge      commits; $(b,barrier) is the legacy one-edge-at-a-time walk, kept as      the differential oracle.  Both schedules generate byte-identical      databases for every domain count and chunk size — only wall-clock      time differs."
  in
  Arg.(value & opt string "overlap" & info [ "schedule" ] ~docv:"MODE" ~doc)

let schedule_of = function
  | "overlap" -> `Overlap
  | "barrier" -> `Barrier
  | other -> failwith (Printf.sprintf "unknown schedule %s (barrier|overlap)" other)

let resume_arg =
  let doc =
    "Resume a chunked export: shards recorded in the output directory's      MANIFEST.json under the same run parameters are skipped without      rendering, and the completed output is byte-identical to an      uninterrupted run."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let compress_arg =
  let doc =
    "Gzip every shard as it streams out (<table>.csv.<k>.gz, pure-OCaml      DEFLATE): concatenating a table's shards in manifest order yields a      valid multi-member gzip file whose decompression is the uncompressed      CSV, byte for byte.  Requires --chunk-rows."
  in
  Arg.(value & flag & info [ "compress" ] ~doc)

let shard_per_domain_arg =
  let doc =
    "Write shards concurrently, one open shard stream per worker domain,      instead of rendering in parallel but draining through one writer.      Same shard files, manifest and bytes as the serial drain — only the      I/O parallelism changes.  Requires --chunk-rows."
  in
  Arg.(value & flag & info [ "shard-per-domain" ] ~doc)

let run_generation ?(schedule = `Overlap) ?on_table_ready ?on_attempt_abort
    ~chunk_rows name sf seed batch limits =
  let workload, ref_db, prod_env = make_workload name sf seed in
  let config =
    { Driver.default_config with
      Driver.batch_size = batch; seed; budget = limits; chunk_rows; schedule;
      on_table_ready; on_attempt_abort }
  in
  (workload, Driver.generate ~config workload ~ref_db ~prod_env)

(* exit 0 only when every query kept its exact guarantees *)
let verdict_code r =
  if
    List.exists
      (fun (v : Diag.verdict) -> v.Diag.v_status <> Diag.Exact)
      r.Driver.r_verdicts
  then 1
  else 0

let report_fatal d =
  Fmt.epr "mirage: generation failed: %s@." (Diag.to_string d);
  Diag.exit_code d

let report_diagnostics r =
  List.iter
    (fun (d : Diag.t) ->
      if d.Diag.d_severity <> Diag.Info then Fmt.pr "note: %a@." Diag.pp d)
    r.Driver.r_diags;
  let degraded =
    List.filter
      (fun (v : Diag.verdict) -> v.Diag.v_status <> Diag.Exact)
      r.Driver.r_verdicts
  in
  if degraded <> [] then begin
    Fmt.pr "per-query feasibility:@.";
    List.iter (fun v -> Fmt.pr "  %a@." Diag.pp_verdict v) r.Driver.r_verdicts
  end

let report_errors r =
  let errs = Driver.measure_errors r in
  Fmt.pr "%-14s %s@." "query" "relative error";
  List.iter
    (fun (e : Error.query_error) ->
      Fmt.pr "%-14s %.5f%s@." e.Error.qe_name e.Error.qe_relative
        (if e.Error.qe_relative = 0.0 then "  (exact)" else ""))
    errs;
  let exact =
    List.length
      (List.filter (fun (e : Error.query_error) -> e.Error.qe_relative = 0.0) errs)
  in
  Fmt.pr "%d/%d exact; mean %.5f@." exact (List.length errs)
    (List.fold_left (fun a (e : Error.query_error) -> a +. e.Error.qe_relative) 0.0 errs
    /. float_of_int (max 1 (List.length errs)))

let generate_cmd =
  let sql_arg =
    Arg.(value & flag & info [ "sql" ]
           ~doc:"Also write schema.sql / data.sql / queries.sql into the output directory.")
  in
  let run name sf seed batch out copies sql chunk resume compress sharded
      sched brows bmb bsecs big_rows big_dir =
    guarded @@ fun () ->
    let schedule = schedule_of sched in
    if (compress || sharded) && chunk = None then
      failwith "--compress and --shard-per-domain require --chunk-rows";
    apply_big_flags big_rows big_dir;
    let limits = limits_of brows bmb bsecs in
    (* overlapped live export: with an output directory and a chunked run
       under the overlap schedule, the sink opens before generation and each
       table's shards stream out the moment its last FK edge commits.  The
       export then shares the generation budget clock (it runs during
       generation); the barrier schedule and the domain-owned sharded writer
       keep the post-generation export with its own clock. *)
    let live =
      match (out, chunk) with
      | Some dir, Some chunk_rows when schedule = `Overlap && not sharded ->
          Scale_out.mkdir_p dir;
          let token = Budget.start limits in
          let chunk_rows = Budget.chunk_rows token ~default:chunk_rows in
          let run_id =
            Printf.sprintf "%s-sf%g-seed%d-copies%d-chunk%d%s" name sf seed
              copies chunk_rows
              (if compress then "-gz" else "")
          in
          Some
            (Scale_out.open_csv_export ~pool:(export_pool ()) ~resume
               ~compress
               ~interrupt:(fun () -> Budget.check token)
               ~copies ~chunk_rows ~dir ~run_id ())
      | _ -> None
    in
    let on_table_ready =
      Option.map
        (fun h db tname -> Scale_out.export_table h ~db tname)
        live
    in
    let on_attempt_abort =
      Option.map (fun h () -> Scale_out.abort_csv_export h) live
    in
    let workload, outcome =
      run_generation ~schedule ?on_table_ready ?on_attempt_abort
        ~chunk_rows:chunk name sf seed batch limits
    in
    match outcome with
    | Error d -> report_fatal d
    | Ok r ->
        Fmt.pr "generated %s (sf %.2f) in %.2fs@." name sf
          r.Driver.r_timings.Driver.t_total;
        report_diagnostics r;
        (match out with
        | None -> ()
        | Some dir -> (
            Scale_out.mkdir_p dir;
            (* the export gets its own budget clock; rows and heap limits
               carry over, the deadline restarts at export begin *)
            let token = Budget.start limits in
            let interrupt () = Budget.check token in
            (match chunk with
            | Some chunk_rows ->
                let chunk_rows = Budget.chunk_rows token ~default:chunk_rows in
                let t0 = Unix.gettimeofday () in
                let rep =
                  match live with
                  | Some h ->
                      (* tables exported while generation ran are already
                         committed; the finish pass renders whatever the
                         hook missed and seals the manifest *)
                      Scale_out.finish_csv_export h ~db:r.Driver.r_db
                  | None ->
                      (* run_id pins every parameter that changes the output
                         bytes; compression changes them (shard names and
                         contents), the domain-owned writer does not
                         (identical layout and bytes), so a sharded run may
                         resume a chunked one and vice versa *)
                      let run_id =
                        Printf.sprintf "%s-sf%g-seed%d-copies%d-chunk%d%s"
                          name sf seed copies chunk_rows
                          (if compress then "-gz" else "")
                      in
                      let export =
                        if sharded then Scale_out.to_csv_sharded
                        else Scale_out.to_csv_chunked
                      in
                      export ~pool:(export_pool ()) ~resume ~compress
                        ~interrupt ~db:r.Driver.r_db ~copies ~chunk_rows
                        ~dir ~run_id ()
                in
                let dt = Unix.gettimeofday () -. t0 in
                Fmt.pr "wrote %d shards to %s (%d resumed, %d bytes this run)@."
                  rep.Scale_out.cr_shards dir rep.Scale_out.cr_resumed
                  rep.Scale_out.cr_bytes;
                (* per-table totals come from the committed manifest, so they
                   cover resumed shards too — the full export, not this run *)
                List.iter
                  (fun (tname, (raw, disk)) ->
                    let rows = copies * Db.row_count r.Driver.r_db tname in
                    if compress then
                      Fmt.pr "  %-12s %d rows, %d bytes raw, %d gzipped@."
                        tname rows raw disk
                    else Fmt.pr "  %-12s %d rows, %d bytes@." tname rows raw)
                  rep.Scale_out.cr_tables;
                (* MB/s only when the whole export ran inside [t0, now] —
                   with a live export most bytes were written during
                   generation, so the tail-pass rate would be meaningless *)
                if Option.is_none live && dt > 0.0 && rep.Scale_out.cr_bytes > 0
                then
                  Fmt.pr "  %.1f MB/s this run@."
                    (float_of_int rep.Scale_out.cr_bytes /. 1e6 /. dt)
            | None ->
                Scale_out.to_csv_dir ~pool:(export_pool ()) ~db:r.Driver.r_db
                  ~copies ~dir ();
                List.iter
                  (fun (tbl : Schema.table) ->
                    Fmt.pr "wrote %s (%d rows)@."
                      (Filename.concat dir (tbl.Schema.tname ^ ".csv"))
                      (copies * Db.row_count r.Driver.r_db tbl.Schema.tname))
                  (Schema.tables workload.Mirage_core.Workload.w_schema));
            let oc = open_out (Filename.concat dir "parameters.txt") in
            List.iter
              (fun (p, b) ->
                match b with
                | Mirage_sql.Pred.Env.Scalar v ->
                    Printf.fprintf oc "%s = %s\n" p (Mirage_sql.Value.to_string v)
                | Mirage_sql.Pred.Env.Vlist vs ->
                    Printf.fprintf oc "%s = (%s)\n" p
                      (String.concat ", " (List.map Mirage_sql.Value.to_string vs)))
              (Mirage_sql.Pred.Env.bindings r.Driver.r_env);
            close_out oc;
            Fmt.pr "wrote %s@." (Filename.concat dir "parameters.txt");
            if sql then
              match chunk with
              | Some chunk_rows ->
                  let run_id =
                    Printf.sprintf "%s-sf%g-seed%d-sql-chunk%d" name sf seed
                      chunk_rows
                  in
                  let shards, resumed_n =
                    Mirage_core.Sql_export.export_chunked ~resume ~interrupt
                      ~db:r.Driver.r_db ~workload ~env:r.Driver.r_env ~dir
                      ~chunk_rows ~run_id ()
                  in
                  Fmt.pr
                    "wrote schema.sql, queries.sql and %d data.sql shards (%d \
                     resumed)@."
                    shards resumed_n
              | None ->
                  Mirage_core.Sql_export.export_dir ~db:r.Driver.r_db ~workload
                    ~env:r.Driver.r_env ~dir;
                  Fmt.pr "wrote schema.sql, data.sql, queries.sql@."));
        report_errors r;
        verdict_code r
  in
  let doc = "Regenerate a benchmark application and export the synthetic database." in
  Cmd.v (Cmd.info "generate" ~doc ~exits)
    Term.(
      const run $ workload_arg $ sf_arg $ seed_arg $ batch_arg $ out_arg
      $ copies_arg $ sql_arg $ chunk_rows_arg $ resume_arg $ compress_arg
      $ shard_per_domain_arg $ schedule_arg $ budget_rows_arg $ budget_mb_arg
      $ budget_seconds_arg $ big_rows_arg $ big_dir_arg)

let verify_cmd =
  let run name sf seed batch chunk sched brows bmb bsecs big_rows big_dir =
    guarded @@ fun () ->
    let schedule = schedule_of sched in
    apply_big_flags big_rows big_dir;
    match
      run_generation ~schedule ~chunk_rows:chunk name sf seed batch
        (limits_of brows bmb bsecs)
    with
    | _, Error d -> report_fatal d
    | _, Ok r ->
        report_errors r;
        verdict_code r
  in
  let doc = "Regenerate and report per-query relative errors." in
  Cmd.v (Cmd.info "verify" ~doc ~exits)
    Term.(
      const run $ workload_arg $ sf_arg $ seed_arg $ batch_arg $ chunk_rows_arg
      $ schedule_arg $ budget_rows_arg $ budget_mb_arg $ budget_seconds_arg
      $ big_rows_arg $ big_dir_arg)

let compare_cmd =
  let run name sf seed =
    guarded @@ fun () ->
    let workload, ref_db, prod_env = make_workload name sf seed in
    let aqts =
      (Mirage_core.Extract.run workload ~ref_db ~prod_env).Mirage_core.Extract.aqts
    in
    List.iter
      (fun (bname, gen) ->
        let b : Mirage_baselines.Types.result = gen workload ~ref_db ~prod_env ~seed in
        let errs =
          Error.measure ~aqts ~db:b.Mirage_baselines.Types.b_db
            ~env:b.Mirage_baselines.Types.b_env
        in
        let scored =
          List.map
            (fun (e : Error.query_error) ->
              if List.mem e.Error.qe_name b.Mirage_baselines.Types.b_unsupported then 1.0
              else e.Error.qe_relative)
            errs
        in
        Fmt.pr "%-12s supported %d/%d, mean error %.5f, %.2fs@." bname
          (List.length b.Mirage_baselines.Types.b_supported)
          (List.length workload.Mirage_core.Workload.w_queries)
          (List.fold_left ( +. ) 0.0 scored /. float_of_int (List.length scored))
          b.Mirage_baselines.Types.b_seconds)
      [
        ("touchstone", Mirage_baselines.Touchstone.generate);
        ("hydra", Mirage_baselines.Hydra.generate);
      ];
    0
  in
  let doc = "Run the baseline generators on the same workload." in
  Cmd.v (Cmd.info "compare" ~doc ~exits)
    Term.(const run $ workload_arg $ sf_arg $ seed_arg)

let extract_cmd =
  let bundle_arg =
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Bundle file to write.")
  in
  let run name sf seed out =
    guarded @@ fun () ->
    let workload, ref_db, prod_env = make_workload name sf seed in
    let ex = Mirage_core.Extract.run workload ~ref_db ~prod_env in
    let b = Mirage_core.Bundle.of_extraction workload ex ~prod_env in
    Mirage_core.Bundle.save b ~path:out;
    Fmt.pr "wrote constraint bundle %s (%d queries, %d selection and %d join constraints)@."
      out
      (List.length workload.Mirage_core.Workload.w_queries)
      (List.length b.Mirage_core.Bundle.b_ir.Mirage_core.Ir.sccs)
      (List.length b.Mirage_core.Bundle.b_ir.Mirage_core.Ir.joins);
    0
  in
  let doc =
    "Extract a constraint bundle from the production side (schema, templates,      cardinality constraints, parameter values) — the only artifact generation      needs."
  in
  Cmd.v (Cmd.info "extract" ~doc ~exits)
    Term.(const run $ workload_arg $ sf_arg $ seed_arg $ bundle_arg)

let from_bundle_cmd =
  let bundle_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BUNDLE")
  in
  let run path batch out copies chunk sched brows bmb bsecs big_rows big_dir =
    guarded @@ fun () ->
    let schedule = schedule_of sched in
    apply_big_flags big_rows big_dir;
    match Mirage_core.Bundle.load ~path with
    | Error m ->
        Fmt.epr "cannot load bundle: %s@." m;
        2
    | Ok b -> (
        let config =
          { Driver.default_config with
            Driver.batch_size = batch;
            budget = limits_of brows bmb bsecs;
            chunk_rows = chunk;
            schedule }
        in
        match Driver.generate_from_bundle ~config b with
        | Error d -> report_fatal d
        | Ok r ->
            Fmt.pr "generated from bundle in %.2fs@." r.Driver.r_timings.Driver.t_total;
            report_diagnostics r;
            (match out with
            | None -> ()
            | Some dir ->
                Scale_out.to_csv_dir ~pool:(export_pool ()) ~db:r.Driver.r_db
                  ~copies ~dir ();
                Fmt.pr "wrote CSVs to %s@." dir);
            verdict_code r)
  in
  let doc = "Generate a synthetic database from a saved constraint bundle (no production data needed)." in
  Cmd.v (Cmd.info "from-bundle" ~doc ~exits)
    Term.(
      const run $ bundle_arg $ batch_arg $ out_arg $ copies_arg $ chunk_rows_arg
      $ schedule_arg $ budget_rows_arg $ budget_mb_arg $ budget_seconds_arg
      $ big_rows_arg $ big_dir_arg)

let verify_dir_cmd =
  let bundle_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BUNDLE")
  in
  let dir_arg =
    Arg.(required & opt (some string) None & info [ "d"; "dir" ] ~docv:"DIR"
           ~doc:"Directory of <table>.csv files to verify (e.g. after loading                  and re-exporting from a DBMS).")
  in
  let params_arg =
    Arg.(required & opt (some string) None & info [ "p"; "params" ] ~docv:"FILE"
           ~doc:"parameters.txt written by generate (one 'name = value' per line).")
  in
  let run bundle dir params =
    guarded @@ fun () ->
    match Mirage_core.Bundle.load ~path:bundle with
    | Error m ->
        Fmt.epr "cannot load bundle: %s@." m;
        2
    | Ok b ->
        let schema = b.Mirage_core.Bundle.b_workload.Mirage_core.Workload.w_schema in
        let db = Db.create schema in
        List.iter
          (fun (tbl : Schema.table) ->
            let path = Filename.concat dir (tbl.Schema.tname ^ ".csv") in
            let ic = open_in path in
            let csv = really_input_string ic (in_channel_length ic) in
            close_in ic;
            Db.load_csv db tbl.Schema.tname csv)
          (Schema.tables schema);
        (* parameters.txt: name = value lines; values as printed by the CLI *)
        let env = ref Mirage_sql.Pred.Env.empty in
        let ic = open_in params in
        (try
           while true do
             let line = input_line ic in
             match String.index_opt line '=' with
             | None -> ()
             | Some eq ->
                 let name = String.trim (String.sub line 0 eq) in
                 let v =
                   String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
                 in
                 let parse_scalar v =
                   if String.length v >= 2 && v.[0] = '\'' then
                     Mirage_sql.Value.Str (String.sub v 1 (String.length v - 2))
                   else if String.contains v '.' || String.contains v 'e' then
                     Mirage_sql.Value.Float (float_of_string v)
                   else Mirage_sql.Value.Int (int_of_string v)
                 in
                 if String.length v >= 1 && v.[0] = '(' then begin
                   let inner = String.sub v 1 (String.length v - 2) in
                   let vs =
                     if String.trim inner = "" then []
                     else
                       String.split_on_char ',' inner
                       |> List.map (fun x -> parse_scalar (String.trim x))
                   in
                   env := Mirage_sql.Pred.Env.add name (Mirage_sql.Pred.Env.Vlist vs) !env
                 end
                 else
                   env :=
                     Mirage_sql.Pred.Env.add name
                       (Mirage_sql.Pred.Env.Scalar (parse_scalar v))
                       !env
           done
         with End_of_file -> close_in ic);
        (* check every constraint in the bundle against the loaded data *)
        let ir = b.Mirage_core.Bundle.b_ir in
        let bad = ref 0 and total = ref 0 in
        List.iter
          (fun (s : Mirage_core.Ir.scc) ->
            incr total;
            let actual =
              Mirage_engine.Exec.count_select db ~env:!env ~table:s.Mirage_core.Ir.scc_table
                s.Mirage_core.Ir.scc_pred
            in
            if actual <> s.Mirage_core.Ir.scc_rows then begin
              incr bad;
              Fmt.pr "MISMATCH %s: |σ(%s)| = %d, expected %d@."
                s.Mirage_core.Ir.scc_source s.Mirage_core.Ir.scc_table actual
                s.Mirage_core.Ir.scc_rows
            end)
          ir.Mirage_core.Ir.sccs;
        Fmt.pr "%d/%d selection constraints hold on the loaded data@." (!total - !bad)
          !total;
        if !bad > 0 then 1 else 0
  in
  let doc = "Verify exported CSVs against a constraint bundle (selection constraints)." in
  Cmd.v (Cmd.info "verify-dir" ~doc ~exits)
    Term.(const run $ bundle_arg $ dir_arg $ params_arg)

let explain_cmd =
  let query_arg =
    Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"NAME"
           ~doc:"Query to explain (e.g. tpch_q19).")
  in
  let run name sf seed qname =
    guarded @@ fun () ->
    let workload, ref_db, prod_env = make_workload name sf seed in
    let q = Mirage_core.Workload.query workload qname in
    Fmt.pr "=== original plan ===@.%a@." Mirage_relalg.Plan.pp
      q.Mirage_core.Workload.q_plan;
    let rw = Mirage_core.Rewrite.push_down workload.Mirage_core.Workload.w_schema
               q.Mirage_core.Workload.q_plan in
    Fmt.pr "=== rewritten (selections pushed down) ===@.%a@." Mirage_relalg.Plan.pp
      rw.Mirage_core.Rewrite.rw_plan;
    List.iter
      (fun aux -> Fmt.pr "=== auxiliary complement plan (Example 3.1) ===@.%a@."
          Mirage_relalg.Plan.pp aux)
      rw.Mirage_core.Rewrite.rw_aux;
    List.iter
      (fun (t, p) ->
        Fmt.pr "marginal constraint fetched from production: |σ[%a](%s)|@."
          Mirage_sql.Pred.pp p t)
      rw.Mirage_core.Rewrite.rw_marginals;
    (* constraints for just this query *)
    let single = { workload with Mirage_core.Workload.w_queries = [ q ] } in
    let ex = Mirage_core.Extract.run single ~ref_db ~prod_env in
    let ir = ex.Mirage_core.Extract.ir in
    Fmt.pr "=== extracted constraints ===@.%a@." Mirage_core.Ir.pp ir;
    let dom t c =
      match List.assoc_opt (t, c) ir.Mirage_core.Ir.column_cards with
      | Some d -> max 1 d
      | None -> 1
    in
    let table_rows t = List.assoc t ir.Mirage_core.Ir.table_cards in
    let dec =
      Mirage_core.Decouple.run workload.Mirage_core.Workload.w_schema ~dom ~table_rows
        ir.Mirage_core.Ir.sccs
    in
    Fmt.pr "=== decoupled (§4.1) ===@.";
    List.iter
      (fun (u : Mirage_core.Ir.ucc) ->
        Fmt.pr "ucc  %s.%s: |σ[%a]| = %d@." u.Mirage_core.Ir.ucc_table
          u.Mirage_core.Ir.ucc_col Mirage_sql.Pred.pp
          (Mirage_sql.Pred.Lit u.Mirage_core.Ir.ucc_lit)
          u.Mirage_core.Ir.ucc_rows)
      dec.Mirage_core.Decouple.uccs;
    List.iter
      (fun (a : Mirage_core.Ir.acc) ->
        Fmt.pr "acc  %s: %d rows via $%s@." a.Mirage_core.Ir.acc_table
          a.Mirage_core.Ir.acc_rows a.Mirage_core.Ir.acc_param)
      dec.Mirage_core.Decouple.accs;
    List.iter
      (fun (b : Mirage_core.Ir.bound_rows) ->
        Fmt.pr "bind %s: %d rows share {%s}@." b.Mirage_core.Ir.br_table
          b.Mirage_core.Ir.br_rows
          (String.concat ", "
             (List.map (fun (c, p) -> c ^ "=$" ^ p) b.Mirage_core.Ir.br_cells)))
      dec.Mirage_core.Decouple.bound;
    List.iter
      (fun (param, binding) ->
        match binding with
        | Mirage_sql.Pred.Env.Scalar v ->
            Fmt.pr "eliminated: $%s := %s (boundary value)@." param
              (Mirage_sql.Value.to_string v)
        | Mirage_sql.Pred.Env.Vlist vs ->
            Fmt.pr "eliminated: $%s := (%s)@." param
              (String.concat ", " (List.map Mirage_sql.Value.to_string vs)))
      (Mirage_sql.Pred.Env.bindings dec.Mirage_core.Decouple.fixed_env);
    0
  in
  let doc = "Show how a query's constraints are derived: rewriting, extraction, decoupling." in
  Cmd.v (Cmd.info "explain" ~doc ~exits)
    Term.(const run $ workload_arg $ sf_arg $ seed_arg $ query_arg)

let table1_cmd =
  let run () =
    Fmt.pr "%a" Mirage_baselines.Capability.pp (Mirage_baselines.Capability.table ());
    0
  in
  let doc = "Print the operator-supportability matrix (Table 1)." in
  Cmd.v (Cmd.info "table1" ~doc ~exits) Term.(const run $ const ())

let parse_cmd =
  let pred_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PREDICATE")
  in
  let run s =
    match Mirage_sql.Parser.pred_opt s with
    | Ok p ->
        Fmt.pr "parsed: %a@.parameters: %s@." Mirage_sql.Pred.pp p
          (String.concat ", " (Mirage_sql.Pred.params p));
        0
    | Error msg ->
        Fmt.epr "parse error: %s@." msg;
        2
  in
  let doc = "Parse a predicate of the template language and print it back." in
  Cmd.v (Cmd.info "parse" ~doc ~exits) Term.(const run $ pred_arg)

let () =
  let doc = "query-aware database generation (Mirage, ICDE 2024)" in
  let info = Cmd.info "mirage" ~version:"1.0.0" ~doc ~exits in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd; verify_cmd; compare_cmd; extract_cmd; from_bundle_cmd;
            verify_dir_cmd; explain_cmd; table1_cmd; parse_cmd;
          ]))
