(** Dense two-phase simplex over floats with Bland's rule.

    Substrate for the Hydra-style baseline, which casts query-aware
    generation as linear-programming tasks (DCGen [2], Hydra [22]).  Floating
    point plus integer rounding reproduces Hydra's characteristic "slender
    deviations" when LP solutions are merged (§8.1.1).

    Problem form: minimise [c·x] subject to [A·x = b], [x ≥ 0]. *)

type outcome =
  | Optimal of float array
  | Infeasible
  | Unbounded

val solve :
  ?eps:float -> a:float array array -> b:float array -> c:float array -> unit -> outcome
(** [solve ~a ~b ~c ()] with [a] an [m×n] matrix, [b] length [m] (made
    non-negative internally), [c] length [n].  Phase I finds a basic feasible
    solution via artificial variables; Phase II optimises [c]. *)

val feasible_point :
  ?eps:float -> a:float array array -> b:float array -> unit -> float array option
(** Feasibility-only convenience wrapper (zero objective). *)

val round_preserving_sum : float array -> total:int -> int array
(** Largest-remainder rounding of a non-negative vector to integers summing
    to [total] — how the baseline turns LP region weights into row counts. *)
