type outcome =
  | Optimal of float array
  | Infeasible
  | Unbounded

(* Standard-form tableau simplex.
   Tableau layout: rows 0..m-1 are constraints, row m is the objective.
   Columns 0..total-1 are variables, column total is the RHS.
   [basis.(r)] is the variable basic in row r. *)
let simplex_tableau ~eps ?allowed tab basis m total =
  let obj = m in
  let rhs = total in
  (* columns eligible to enter the basis: phase II must never re-admit the
     artificial variables *)
  let allowed = match allowed with Some a -> a | None -> total in
  let rec iterate guard =
    if guard > 20_000 then `Unbounded (* cycling guard; Bland prevents it in theory *)
    else begin
      (* Bland: entering variable = lowest index with negative reduced cost *)
      let entering = ref (-1) in
      (try
         for j = 0 to allowed - 1 do
           if tab.(obj).(j) < -.eps then begin
             entering := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !entering = -1 then `Optimal
      else begin
        let j = !entering in
        (* ratio test, Bland tie-break on basis variable index *)
        let leaving = ref (-1) in
        let best = ref infinity in
        for r = 0 to m - 1 do
          if tab.(r).(j) > eps then begin
            let ratio = tab.(r).(rhs) /. tab.(r).(j) in
            if
              ratio < !best -. eps
              || (abs_float (ratio -. !best) <= eps
                 && (!leaving = -1 || basis.(r) < basis.(!leaving)))
            then begin
              best := ratio;
              leaving := r
            end
          end
        done;
        if !leaving = -1 then `Unbounded
        else begin
          let r = !leaving in
          let piv = tab.(r).(j) in
          for k = 0 to total do
            tab.(r).(k) <- tab.(r).(k) /. piv
          done;
          for r' = 0 to m do
            if r' <> r && abs_float tab.(r').(j) > 0.0 then begin
              let f = tab.(r').(j) in
              for k = 0 to total do
                tab.(r').(k) <- tab.(r').(k) -. (f *. tab.(r).(k))
              done
            end
          done;
          basis.(r) <- j;
          iterate (guard + 1)
        end
      end
    end
  in
  iterate 0

let solve ?(eps = 1e-9) ~a ~b ~c () =
  let m = Array.length a in
  let n = Array.length c in
  if Array.length b <> m then invalid_arg "Lp.solve: |b| <> rows of A";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Lp.solve: ragged A")
    a;
  (* normalise to b >= 0 *)
  let a = Array.map Array.copy a and b = Array.copy b in
  for r = 0 to m - 1 do
    if b.(r) < 0.0 then begin
      b.(r) <- -.b.(r);
      for j = 0 to n - 1 do
        a.(r).(j) <- -.a.(r).(j)
      done
    end
  done;
  let total = n + m in
  (* columns: n structural + m artificial *)
  let tab = Array.make_matrix (m + 1) (total + 1) 0.0 in
  let basis = Array.make m 0 in
  for r = 0 to m - 1 do
    for j = 0 to n - 1 do
      tab.(r).(j) <- a.(r).(j)
    done;
    tab.(r).(n + r) <- 1.0;
    tab.(r).(total) <- b.(r);
    basis.(r) <- n + r
  done;
  (* Phase I objective: minimise sum of artificials = sum of rows *)
  for j = 0 to total do
    let s = ref 0.0 in
    for r = 0 to m - 1 do
      s := !s +. tab.(r).(j)
    done;
    tab.(m).(j) <- -. !s
  done;
  for r = 0 to m - 1 do
    tab.(m).(n + r) <- 0.0
  done;
  match simplex_tableau ~eps tab basis m total with
  | `Unbounded -> Infeasible (* phase I is bounded; numerical trouble *)
  | `Optimal ->
      if tab.(m).(total) < -.(eps *. 1e3) -. 1e-6 then Infeasible
      else begin
        (* drive artificials out of the basis where possible *)
        for r = 0 to m - 1 do
          if basis.(r) >= n then begin
            let j = ref (-1) in
            (try
               for k = 0 to n - 1 do
                 if abs_float tab.(r).(k) > eps *. 10.0 then begin
                   j := k;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !j >= 0 then begin
              let piv = tab.(r).(!j) in
              for k = 0 to total do
                tab.(r).(k) <- tab.(r).(k) /. piv
              done;
              for r' = 0 to m do
                if r' <> r && abs_float tab.(r').(!j) > 0.0 then begin
                  let f = tab.(r').(!j) in
                  for k = 0 to total do
                    tab.(r').(k) <- tab.(r').(k) -. (f *. tab.(r).(k))
                  done
                end
              done;
              basis.(r) <- !j
            end
          end
        done;
        (* Phase II objective (artificials may no longer enter) *)
        for k = 0 to total do
          tab.(m).(k) <- 0.0
        done;
        for j = 0 to n - 1 do
          tab.(m).(j) <- c.(j)
        done;
        (* reduce objective row against basic columns *)
        for r = 0 to m - 1 do
          if basis.(r) < n && abs_float tab.(m).(basis.(r)) > 0.0 then begin
            let f = tab.(m).(basis.(r)) in
            for k = 0 to total do
              tab.(m).(k) <- tab.(m).(k) -. (f *. tab.(r).(k))
            done
          end
        done;
        match simplex_tableau ~eps ~allowed:n tab basis m total with
        | `Unbounded -> Unbounded
        | `Optimal ->
            let x = Array.make n 0.0 in
            for r = 0 to m - 1 do
              if basis.(r) < n then x.(basis.(r)) <- tab.(r).(total)
            done;
            (* clamp numerical negatives *)
            Array.iteri (fun i v -> if v < 0.0 then x.(i) <- 0.0) x;
            Optimal x
      end

let feasible_point ?eps ~a ~b () =
  let n = if Array.length a > 0 then Array.length a.(0) else 0 in
  match solve ?eps ~a ~b ~c:(Array.make n 0.0) () with
  | Optimal x -> Some x
  | Infeasible | Unbounded -> None

let round_preserving_sum xs ~total =
  let n = Array.length xs in
  let floors = Array.map (fun x -> int_of_float (floor (x +. 1e-9))) xs in
  let remainders = Array.mapi (fun i x -> (x -. float_of_int floors.(i), i)) xs in
  let current = Array.fold_left ( + ) 0 floors in
  let deficit = total - current in
  let order = Array.copy remainders in
  Array.sort (fun (a, i) (b, j) -> match compare b a with 0 -> compare i j | c -> c) order;
  let out = Array.copy floors in
  if deficit >= 0 then begin
    (* spread the deficit by largest remainders, wrapping around when it
       exceeds the number of elements *)
    let left = ref deficit in
    while !left > 0 && n > 0 do
      for k = 0 to n - 1 do
        if !left > 0 then begin
          let _, i = order.(k) in
          out.(i) <- out.(i) + 1;
          decr left
        end
      done
    done
  end
  else begin
    (* too much mass: remove from the smallest remainders, keeping >= 0 *)
    let removed = ref 0 in
    let k = ref (n - 1) in
    while !removed < -deficit && !k >= 0 do
      let _, i = order.(!k) in
      if out.(i) > 0 then begin
        out.(i) <- out.(i) - 1;
        incr removed
      end
      else decr k
    done
  end;
  out
