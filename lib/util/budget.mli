(** Resource budgets and cooperative cancellation.

    Generation at SF ≫ RAM must fail {e predictably}: a run that outgrows
    its heap, overruns its wall-clock allowance or is cancelled from outside
    should stop at the next safe point and surface a typed verdict, not OOM,
    hang, or wedge a domain pool mid-region.  A {!t} token carries the run's
    {!limits}; every long-running loop of the pipeline — CP search nodes,
    keygen batches, export shards and tiles, driver stage boundaries — calls
    {!check} at its cancellation points, and the first breach raises
    {!Exceeded} with the reason.  The exception unwinds through
    {!Mirage_par.Par} regions exactly like any task exception (the region
    drains, the pool survives), so callers convert it to a diagnostic at one
    place.

    Checks are cheap (a clock read and a [Gc.quick_stat]) and safe to call
    from any domain; once a token trips it stays tripped, so every
    subsequent check re-raises the same reason. *)

type limits = {
  max_chunk_rows : int option;
      (** upper bound on rows handled per chunk: caps the keygen batch size
          and sizes export shards (a shard never exceeds this many rows,
          rounded up to whole tiles) *)
  max_heap_mb : int option;
      (** heap watermark: trip when the OCaml major heap exceeds this many
          MiB *)
  deadline_s : float option;
      (** wall-clock allowance in seconds, measured from {!start} *)
}

val no_limits : limits

type reason =
  | Deadline of float  (** the allowance that expired, in seconds *)
  | Heap of int  (** the watermark that was crossed, in MiB *)
  | Cancelled of string  (** external cooperative cancellation *)

exception Exceeded of reason

type t
(** A cancellation token: limits plus the clock origin and trip state. *)

val start : limits -> t
(** Arm a token: the deadline countdown begins now. *)

val unlimited : t
(** A shared token that never trips (and is never cancelled). *)

val limits : t -> limits

val check : t -> unit
(** Raise [Exceeded reason] if any limit is breached (or the token was
    already tripped / cancelled); return otherwise.  Call this at every
    cancellation point. *)

val exceeded : t -> reason option
(** The trip reason, without raising. *)

val cancel : t -> string -> unit
(** Trip the token from outside; every later {!check} raises
    [Exceeded (Cancelled msg)].  Safe from any domain. *)

val chunk_rows : t -> default:int -> int
(** The effective chunk-row cap: [max_chunk_rows] when set (at least 1),
    [default] otherwise. *)

val describe : reason -> string
(** One-line operator-facing rendering, e.g.
    ["wall-clock deadline of 30.0s expired"]. *)
