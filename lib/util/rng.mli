(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every stochastic choice in the generator pipeline is driven by one of
    these so that a run is reproducible from a single seed.  The state is
    mutable; [split] forks an independent stream, which lets parallel stages
    (per-column generation, per-batch population) stay deterministic
    regardless of evaluation order. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : ?stream:int -> t -> t
(** [split t] advances [t] and returns an independent stream.

    [split ~stream:i t] instead derives stream [i] as a {e pure} function of
    [t]'s current state and [i], without advancing [t]: shard [i] of a
    parallel region always receives the same generator regardless of how
    many shards exist, their scheduling order, or the domain count — the
    invariant behind deterministic domain-parallel generation.  Distinct
    stream indices give independent streams (one SplitMix64 finaliser apart,
    like successive {!split}s). *)

val copy : t -> t
(** [copy t] returns an independent generator whose next draws equal [t]'s:
    a snapshot of the current state.  Pair with {!skip} to hand a consumer
    its exact stream while the owner jumps past it in O(1). *)

val skip : t -> int -> unit
(** [skip t n] advances [t] as if [n] single-word draws ([int], [float],
    [bool], one {!split}) had been made, in constant time.  SplitMix64
    advances its state by a fixed gamma per draw, so the jump is one
    multiply-add.  Draws that consume several words (none today) would need
    their word count, not their call count. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] returns a uniform integer in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_swap : t -> int -> (int -> int -> unit) -> unit
(** [shuffle_swap t n swap] runs the same Fisher–Yates walk as {!shuffle}
    over an abstract sequence of length [n], calling [swap i j] for each
    exchange.  The RNG draw sequence is identical to [shuffle] on an
    [n]-element array, so containers that are not heap arrays (off-heap
    {!Mirage_engine.Col.Ivec} pools) shuffle to the same permutation. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] returns a uniform element of the non-empty array [arr]. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] returns [k] distinct integers drawn
    uniformly from [\[0, n)], in random order.  Requires [k <= n]. *)
