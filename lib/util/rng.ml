type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* SplitMix64 finaliser *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let copy t = { state = t.state }

let skip t n =
  (* every draw advances the state by exactly one gamma before mixing, so
     skipping n draws is a single multiply-add on the state *)
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int n) golden_gamma)

let split ?stream t =
  match stream with
  | None -> { state = next_int64 t }
  | Some i ->
      (* pure function of (parent state, stream index): the parent does NOT
         advance, so shard [i] of a parallel region gets the same stream no
         matter how many shards run, in what order, or on how many domains *)
      let z = Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma) in
      { state = mix64 z }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the OCaml int stays non-negative *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle_swap t n swap =
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    if j <> i then swap i j
  done

let shuffle t arr =
  shuffle_swap t (Array.length arr) (fun i j ->
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  if k * 3 >= n then begin
    (* dense case: shuffle a full index array and take a prefix *)
    let all = Array.init n (fun i -> i) in
    shuffle t all;
    Array.sub all 0 k
  end else begin
    (* sparse case: rejection sampling into a hash set *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
