(** Minimal s-expressions, used to serialise constraint bundles so the
    generation side never needs the production database itself. *)

type t = Atom of string | List of t list

val to_string : t -> string
(** Atoms containing whitespace, parens, quotes or empty atoms are quoted
    with ["..."] and backslash escapes. *)

val of_string : string -> (t, string) result
(** Parses a single s-expression (surrounding whitespace allowed). *)

val of_string_many : string -> (t list, string) result
(** Parses a sequence of top-level s-expressions. *)

val atom : t -> (string, string) result
val list : t -> (t list, string) result
