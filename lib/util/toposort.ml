let sort ~vertices ~edges =
  let n = List.length vertices in
  let index = Hashtbl.create n in
  List.iteri (fun i v -> Hashtbl.replace index v i) vertices;
  let idx v =
    match Hashtbl.find_opt index v with
    | Some i -> i
    | None -> failwith (Printf.sprintf "Toposort.sort: unknown vertex %s" v)
  in
  let names = Array.of_list vertices in
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  List.iter
    (fun (a, b) ->
      let ia = idx a and ib = idx b in
      succs.(ia) <- ib :: succs.(ia);
      indeg.(ib) <- indeg.(ib) + 1)
    edges;
  (* Kahn's algorithm with a sorted frontier for determinism. *)
  let module IS = Set.Make (Int) in
  let frontier = ref IS.empty in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then frontier := IS.add i !frontier
  done;
  let out = ref [] in
  let count = ref 0 in
  while not (IS.is_empty !frontier) do
    let i = IS.min_elt !frontier in
    frontier := IS.remove i !frontier;
    out := names.(i) :: !out;
    incr count;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then frontier := IS.add j !frontier)
      succs.(i)
  done;
  if !count <> n then failwith "Toposort.sort: graph has a cycle";
  List.rev !out

let is_topological ~vertices ~edges order =
  let pos = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace pos v i) order;
  List.length order = List.length vertices
  && List.for_all (fun v -> Hashtbl.mem pos v) vertices
  && List.for_all
       (fun (a, b) ->
         match (Hashtbl.find_opt pos a, Hashtbl.find_opt pos b) with
         | Some ia, Some ib -> ia < ib
         | _ -> false)
       edges
