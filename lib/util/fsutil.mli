(** Filesystem helpers shared across libraries. *)

val mkdir_p : ?fail:(string -> exn) -> string -> unit
(** [mkdir_p dir] creates [dir] and every missing parent, like [mkdir -p].

    Two domains (or processes) exporting side by side may both see a
    directory as missing and race the mkdir; whoever loses treats "it
    exists now" as success.  A genuine failure (permissions, ENOSPC, a
    file in the way) raises [fail msg] — default [Sys_error msg] — so
    callers can surface their own exception type (e.g.
    [Sink.Io_failure]) without wrapping the call. *)
