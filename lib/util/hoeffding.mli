(** Hoeffding-bound sample sizing (§4.4).

    The paper samples [n >= (ln 2 - ln (1 - alpha)) / (2 * delta^2)] rows to
    instantiate an arithmetic-predicate parameter with relative error at most
    [delta] at confidence level [alpha]. *)

val sample_size : delta:float -> alpha:float -> int
(** [sample_size ~delta ~alpha] returns the minimal sample size guaranteeing
    error bound [delta] at confidence [alpha].  Both must be in (0, 1). *)

val error_bound : sample_size:int -> alpha:float -> float
(** [error_bound ~sample_size ~alpha] inverts {!sample_size}: the [delta]
    guaranteed by a given sample size at confidence [alpha]. *)
