let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sum_int = List.fold_left ( + ) 0

let relative_error ~expected ~actual =
  if List.length expected <> List.length actual then
    invalid_arg "Stats.relative_error: length mismatch";
  let num =
    List.fold_left2 (fun acc e a -> acc + abs (e - a)) 0 expected actual
  in
  let den = sum_int expected in
  if den = 0 then (if num = 0 then 0.0 else 1.0)
  else float_of_int num /. float_of_int den

let percentile data p =
  if Array.length data = 0 then invalid_arg "Stats.percentile: empty data";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let idx = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor idx) and hi = int_of_float (ceil idx) in
  if lo = hi then sorted.(lo)
  else
    let w = idx -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let histogram ~buckets data =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  let counts = Array.make buckets 0 in
  if Array.length data > 0 then begin
    let lo = Array.fold_left min data.(0) data in
    let hi = Array.fold_left max data.(0) data in
    let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0 in
    Array.iter
      (fun v ->
        let b = int_of_float ((v -. lo) /. width) in
        let b = if b >= buckets then buckets - 1 else b in
        counts.(b) <- counts.(b) + 1)
      data
  end;
  counts
