let word_bytes = Sys.word_size / 8

let live_bytes () =
  Gc.minor ();
  let st = Gc.quick_stat () in
  st.Gc.heap_words * word_bytes

let top_heap_bytes () =
  let st = Gc.quick_stat () in
  st.Gc.top_heap_words * word_bytes

let measure f =
  Gc.compact ();
  let before = (Gc.quick_stat ()).Gc.heap_words in
  (* [top_heap_words] is a process-lifetime mark: once any earlier phase has
     grown the heap past what [f] needs, [top - before] reports that phase's
     peak forever after.  Only trust it when [f] itself moves it; otherwise
     sample the heap at every major cycle while [f] runs. *)
  let top_before = (Gc.quick_stat ()).Gc.top_heap_words in
  let sampled = ref before in
  let alarm =
    Gc.create_alarm (fun () ->
        let hw = (Gc.quick_stat ()).Gc.heap_words in
        if hw > !sampled then sampled := hw)
  in
  let r =
    Fun.protect
      ~finally:(fun () ->
        (* forced sample at region exit: a run shorter than one major cycle
           never fires the alarm, and its live data may still sit in the
           minor heap where [heap_words] can't see it — promote and sample
           before the alarm goes away, so short regions stop reporting a
           spurious zero peak *)
        Gc.minor ();
        let hw = (Gc.quick_stat ()).Gc.heap_words in
        if hw > !sampled then sampled := hw;
        Gc.delete_alarm alarm)
      f
  in
  let after = (Gc.quick_stat ()).Gc.heap_words in
  let top_after = (Gc.quick_stat ()).Gc.top_heap_words in
  let peak_words =
    let observed = max after !sampled in
    if top_after > top_before then max observed top_after else observed
  in
  (r, max 0 (peak_words - before) * word_bytes)
