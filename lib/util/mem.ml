let word_bytes = Sys.word_size / 8

let live_bytes () =
  Gc.minor ();
  let st = Gc.quick_stat () in
  st.Gc.heap_words * word_bytes

let top_heap_bytes () =
  let st = Gc.quick_stat () in
  st.Gc.top_heap_words * word_bytes

let measure f =
  Gc.compact ();
  let before = (Gc.quick_stat ()).Gc.heap_words in
  let r = f () in
  let after = (Gc.quick_stat ()).Gc.heap_words in
  let top = (Gc.quick_stat ()).Gc.top_heap_words in
  let peak = max (after - before) (top - before) in
  (r, max 0 peak * word_bytes)
