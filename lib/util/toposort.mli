(** Kahn's topological sort over string-named vertices (§5.3 of the paper:
    ordering foreign-key population by table reference dependencies). *)

val sort : vertices:string list -> edges:(string * string) list -> string list
(** [sort ~vertices ~edges] returns the vertices in a topological order where
    every edge [(a, b)] ("a must come before b") is respected.  Ties are
    broken by the order vertices were supplied, so the result is
    deterministic.

    @raise Failure if the graph contains a cycle. *)

val is_topological : vertices:string list -> edges:(string * string) list -> string list -> bool
(** [is_topological ~vertices ~edges order] checks that [order] is a
    permutation of [vertices] respecting every edge; used by tests. *)
