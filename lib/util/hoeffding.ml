let check_unit_interval name v =
  if v <= 0.0 || v >= 1.0 then
    invalid_arg (Printf.sprintf "Hoeffding: %s must be in (0,1), got %g" name v)

let sample_size ~delta ~alpha =
  check_unit_interval "delta" delta;
  check_unit_interval "alpha" alpha;
  let n = (log 2.0 -. log (1.0 -. alpha)) /. (2.0 *. delta *. delta) in
  int_of_float (ceil n)

let error_bound ~sample_size ~alpha =
  if sample_size <= 0 then invalid_arg "Hoeffding: sample_size must be positive";
  check_unit_interval "alpha" alpha;
  sqrt ((log 2.0 -. log (1.0 -. alpha)) /. (2.0 *. float_of_int sample_size))
