(** Small numeric helpers shared by the generators and the bench harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val sum_int : int list -> int

val relative_error : expected:int list -> actual:int list -> float
(** The paper's fidelity metric: [sum |Vi - V̂i| / sum Vi] over the operator
    views of one query.  When the denominator is 0 the error is 0 if all
    actuals are 0 too, else 1. *)

val percentile : float array -> float -> float
(** [percentile data p] with [p] in [\[0,1\]]; sorts a copy. *)

val histogram : buckets:int -> float array -> int array
(** Equi-width histogram over the data's own min/max range. *)
