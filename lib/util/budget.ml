type limits = {
  max_chunk_rows : int option;
  max_heap_mb : int option;
  deadline_s : float option;
}

let no_limits = { max_chunk_rows = None; max_heap_mb = None; deadline_s = None }

type reason = Deadline of float | Heap of int | Cancelled of string

exception Exceeded of reason

type t = {
  lim : limits;
  t0 : float;
  (* first breach wins and is sticky: checks from other domains keep
     re-raising the same reason, so one trip cancels the whole region *)
  tripped : reason option Atomic.t;
}

let start lim = { lim; t0 = Unix.gettimeofday (); tripped = Atomic.make None }
let unlimited = { lim = no_limits; t0 = 0.0; tripped = Atomic.make None }
let limits t = t.lim

let heap_mb () =
  (* quick_stat reads cached counters — cheap enough for per-node checks *)
  (Gc.quick_stat ()).Gc.heap_words / (1024 * 1024 / (Sys.word_size / 8))

let trip t reason =
  ignore (Atomic.compare_and_set t.tripped None (Some reason));
  (* re-read: a concurrent trip may have won the race *)
  match Atomic.get t.tripped with Some r -> raise (Exceeded r) | None -> ()

let check t =
  match Atomic.get t.tripped with
  | Some r -> raise (Exceeded r)
  | None ->
      (match t.lim.deadline_s with
      | Some d when Unix.gettimeofday () -. t.t0 > d -> trip t (Deadline d)
      | _ -> ());
      (match t.lim.max_heap_mb with
      | Some mb when heap_mb () > mb -> trip t (Heap mb)
      | _ -> ())

let exceeded t = Atomic.get t.tripped

let cancel t msg =
  ignore (Atomic.compare_and_set t.tripped None (Some (Cancelled msg)))

let chunk_rows t ~default =
  match t.lim.max_chunk_rows with Some n -> max 1 n | None -> default

let describe = function
  | Deadline d -> Printf.sprintf "wall-clock deadline of %.1fs expired" d
  | Heap mb -> Printf.sprintf "heap watermark of %d MiB crossed" mb
  | Cancelled msg -> Printf.sprintf "cancelled: %s" msg
