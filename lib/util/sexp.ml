type t = Atom of string | List of t list

let needs_quotes s =
  s = ""
  || String.exists
       (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '(' || c = ')' || c = '"' || c = '\\')
       s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_string = function
  | Atom s -> if needs_quotes s then quote s else s
  | List l -> "(" ^ String.concat " " (List.map to_string l) ^ ")"

exception Parse of string

let parse_all s =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  let skip_ws () =
    while !i < n && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\n' || s.[!i] = '\r') do
      incr i
    done
  in
  let parse_quoted () =
    incr i;
    let buf = Buffer.create 16 in
    let rec go () =
      if !i >= n then raise (Parse "unterminated string")
      else
        match s.[!i] with
        | '"' -> incr i
        | '\\' ->
            if !i + 1 >= n then raise (Parse "dangling escape");
            (match s.[!i + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | c -> Buffer.add_char buf c);
            i := !i + 2;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr i;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_atom () =
    let start = !i in
    while
      !i < n
      && not
           (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\n' || s.[!i] = '\r'
          || s.[!i] = '(' || s.[!i] = ')')
    do
      incr i
    done;
    String.sub s start (!i - start)
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse "unexpected end of input")
    | Some '(' ->
        incr i;
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | Some ')' -> incr i
          | None -> raise (Parse "unclosed list")
          | Some _ ->
              items := parse_one () :: !items;
              loop ()
        in
        loop ();
        List (List.rev !items)
    | Some '"' -> Atom (parse_quoted ())
    | Some ')' -> raise (Parse "unexpected )")
    | Some _ -> Atom (parse_atom ())
  in
  let out = ref [] in
  skip_ws ();
  while !i < n do
    out := parse_one () :: !out;
    skip_ws ()
  done;
  List.rev !out

let of_string_many s = try Ok (parse_all s) with Parse m -> Error m

let of_string s =
  match of_string_many s with
  | Ok [ one ] -> Ok one
  | Ok _ -> Error "expected exactly one s-expression"
  | Error m -> Error m

let atom = function Atom s -> Ok s | List _ -> Error "expected atom"
let list = function List l -> Ok l | Atom _ -> Error "expected list"
