let mkdir_p ?(fail = fun m -> Sys_error m) dir =
  let rec go dir =
    if not (Sys.file_exists dir) then begin
      let parent = Filename.dirname dir in
      if parent <> dir then go parent;
      try Sys.mkdir dir 0o755 with
      | Sys_error _ when Sys.file_exists dir -> ()
      | Sys_error m -> raise (fail ("mkdir: " ^ m))
    end
  in
  go dir
