(** Coarse memory metering for the efficiency experiments (Figs. 14–16).

    We report the OCaml heap's high-water mark, which is the analogue of the
    paper's "memory required to guarantee the generation". *)

val live_bytes : unit -> int
(** Current live heap bytes (after a minor collection). *)

val top_heap_bytes : unit -> int
(** High-water mark of the major heap in bytes since program start. *)

val measure : (unit -> 'a) -> 'a * int
(** [measure f] runs [f ()] and returns its result together with the peak
    additional heap bytes attributable to [f] itself: the heap is compacted
    first, then sampled at every major collection while [f] runs, plus a
    forced minor collection and sample at region exit (so a region shorter
    than one major cycle still reports its live data instead of zero), and
    [top_heap_words] is consulted only when [f] moves it — so an earlier,
    hungrier phase of the same process can no longer leak its high-water
    mark into this measurement. *)
