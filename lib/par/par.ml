(* Fixed-size domain pool.  Workers block on a mutex/condition-protected
   task queue; a parallel region pushes up to [size - 1] "runner" closures
   that drain a shared atomic index counter, and the caller runs the same
   runner inline, so a region always makes progress even when every worker
   is busy with an enclosing region (nested regions degrade gracefully). *)

type task = unit -> unit

type pool = {
  domains : int;  (* total width including the caller *)
  q : task Queue.t;
  m : Mutex.t;
  work : Condition.t;
  mutable stop : bool;
  mutable handles : unit Domain.t array;
}

let default_domains () = max 1 (min 8 (Domain.recommended_domain_count ()))

let rec worker pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.q && not pool.stop do
    Condition.wait pool.work pool.m
  done;
  if Queue.is_empty pool.q then Mutex.unlock pool.m (* stop *)
  else begin
    let t = Queue.pop pool.q in
    Mutex.unlock pool.m;
    t ();
    worker pool
  end

let create ?domains () =
  let domains =
    match domains with
    | Some d -> max 1 (min 64 d)
    | None -> default_domains ()
  in
  let pool =
    {
      domains;
      q = Queue.create ();
      m = Mutex.create ();
      work = Condition.create ();
      stop = false;
      handles = [||];
    }
  in
  if domains > 1 then
    pool.handles <-
      Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let sequential = create ~domains:1 ()

let size pool = pool.domains

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  Array.iter Domain.join pool.handles;
  pool.handles <- [||]

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run pool n f =
  if n <= 0 then ()
  else if pool.domains = 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let next = Atomic.make 0 in
    let left = Atomic.make n in
    let err = Atomic.make None in
    let fin_m = Mutex.create () and fin_c = Condition.create () in
    (* each runner drains the shared counter; task index, not arrival order,
       decides what work a call does, so scheduling cannot leak into results *)
    let rec runner () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (try f i
         with e -> ignore (Atomic.compare_and_set err None (Some e)));
        if Atomic.fetch_and_add left (-1) = 1 then begin
          Mutex.lock fin_m;
          Condition.signal fin_c;
          Mutex.unlock fin_m
        end;
        runner ()
      end
    in
    let helpers = min (pool.domains - 1) (n - 1) in
    Mutex.lock pool.m;
    for _ = 1 to helpers do
      Queue.push runner pool.q
    done;
    Condition.broadcast pool.work;
    Mutex.unlock pool.m;
    runner ();
    Mutex.lock fin_m;
    while Atomic.get left > 0 do
      Condition.wait fin_c fin_m
    done;
    Mutex.unlock fin_m;
    match Atomic.get err with Some e -> raise e | None -> ()
  end

let iter_chunks pool ?chunks n f =
  if n > 0 then begin
    let chunks =
      match chunks with Some c -> max 1 c | None -> 4 * pool.domains
    in
    let nchunks = min n chunks in
    let per = n / nchunks and rem = n mod nchunks in
    run pool nchunks (fun c ->
        let lo = (c * per) + min c rem in
        let hi = lo + per + (if c < rem then 1 else 0) - 1 in
        f lo hi)
  end

let init pool ?chunks n f =
  if n <= 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    iter_chunks pool ?chunks (n - 1) (fun lo hi ->
        for i = lo to hi do
          a.(i + 1) <- f (i + 1)
        done);
    a
  end

let map_chunks pool ?chunks f a =
  init pool ?chunks (Array.length a) (fun i -> f a.(i))

let map_list pool f l =
  let a = Array.of_list l in
  (* one task per element: list fan-out is used for coarse jobs *)
  let n = Array.length a in
  if n = 0 then []
  else begin
    let out = Array.make n (f a.(0)) in
    run pool (n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    Array.to_list out
  end

let both pool f g =
  let rf = ref None and rg = ref None in
  run pool 2 (fun i ->
      if i = 0 then rf := Some (f ()) else rg := Some (g ()));
  match (!rf, !rg) with
  | Some x, Some y -> (x, y)
  | _ -> assert false

let iter_tiles ?(interrupt = fun () -> ()) pool ~tiles ~render ~write =
  let window = pool.domains in
  let base = ref 0 in
  while !base < tiles do
    interrupt ();
    let g = min window (tiles - !base) in
    let b = !base in
    let rendered = init pool ~chunks:g g (fun s -> render ~slot:s ~tile:(b + s)) in
    Array.iteri (fun s r -> write ~tile:(b + s) r) rendered;
    base := b + g
  done
