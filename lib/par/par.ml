(* Fixed-size domain pool.  Workers block on a mutex/condition-protected
   task queue; a parallel region pushes up to [size - 1] "runner" closures
   that drain a shared atomic index counter, and the caller runs the same
   runner inline, so a region always makes progress even when every worker
   is busy with an enclosing region (nested regions degrade gracefully).

   Pools are designed to be long-lived: a region that raises drains fully
   before re-raising in the caller, so the workers are back on the queue and
   the pool is immediately reusable — the process-global pools handed out by
   [get] survive failed runs. *)

type task = unit -> unit

type pool = {
  domains : int;  (* total width including the caller *)
  q : task Queue.t;
  m : Mutex.t;
  work : Condition.t;
  mutable stop : bool;
  mutable handles : unit Domain.t array;
}

let default_domains () = max 1 (min 8 (Domain.recommended_domain_count ()))

let rec worker pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.q && not pool.stop do
    Condition.wait pool.work pool.m
  done;
  if Queue.is_empty pool.q then Mutex.unlock pool.m (* stop *)
  else begin
    let t = Queue.pop pool.q in
    Mutex.unlock pool.m;
    t ();
    worker pool
  end

let create ?domains () =
  let domains =
    match domains with
    | Some d -> max 1 (min 64 d)
    | None -> default_domains ()
  in
  let pool =
    {
      domains;
      q = Queue.create ();
      m = Mutex.create ();
      work = Condition.create ();
      stop = false;
      handles = [||];
    }
  in
  if domains > 1 then
    pool.handles <-
      Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let sequential = create ~domains:1 ()

let size pool = pool.domains

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  Array.iter Domain.join pool.handles;
  pool.handles <- [||]

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* --- process-global persistent pools ----------------------------------------

   Spawning a domain costs hundreds of microseconds plus a minor-heap
   allocation per domain; paying it per generation run made every region
   shorter than ~10 ms a net loss.  [get] hands out one resident pool per
   width for the whole process — driver runs, CLI exports and bench entries
   all share it, and a run that fails leaves it usable (regions drain before
   re-raising).  The pools are joined via [at_exit]. *)

let registry : (int, pool) Hashtbl.t = Hashtbl.create 4
let registry_m = Mutex.create ()
let registry_at_exit = ref false

let get ?domains () =
  let domains =
    match domains with
    | Some d -> max 1 (min 64 d)
    | None -> default_domains ()
  in
  if domains = 1 then sequential
  else begin
    Mutex.lock registry_m;
    let pool =
      match Hashtbl.find_opt registry domains with
      | Some p -> p
      | None ->
          let p = create ~domains () in
          Hashtbl.replace registry domains p;
          if not !registry_at_exit then begin
            registry_at_exit := true;
            at_exit (fun () ->
                Mutex.lock registry_m;
                let ps = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
                Hashtbl.reset registry;
                Mutex.unlock registry_m;
                List.iter shutdown ps)
          end;
          p
    in
    Mutex.unlock registry_m;
    pool
  end

let run pool n f =
  if n <= 0 then ()
  else if pool.domains = 1 || n = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let next = Atomic.make 0 in
    let left = Atomic.make n in
    let err = Atomic.make None in
    let fin_m = Mutex.create () and fin_c = Condition.create () in
    (* each runner drains the shared counter; task index, not arrival order,
       decides what work a call does, so scheduling cannot leak into results *)
    let rec runner () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (try f i
         with e -> ignore (Atomic.compare_and_set err None (Some e)));
        if Atomic.fetch_and_add left (-1) = 1 then begin
          Mutex.lock fin_m;
          Condition.signal fin_c;
          Mutex.unlock fin_m
        end;
        runner ()
      end
    in
    let helpers = min (pool.domains - 1) (n - 1) in
    Mutex.lock pool.m;
    for _ = 1 to helpers do
      Queue.push runner pool.q
    done;
    Condition.broadcast pool.work;
    Mutex.unlock pool.m;
    runner ();
    Mutex.lock fin_m;
    while Atomic.get left > 0 do
      Condition.wait fin_c fin_m
    done;
    Mutex.unlock fin_m;
    match Atomic.get err with Some e -> raise e | None -> ()
  end

(* one body invocation per worker slot: just [run] over the pool width.
   Slot identity is the task index, so a fast domain may execute two slots
   back-to-back — bodies must treat the slot as a buffer identity, not a
   thread identity, and pull their actual work from a shared counter. *)
let run_workers pool f = run pool pool.domains f

let iter_chunks pool ?chunks ?(grain = 1) n f =
  if n > 0 then begin
    let chunks =
      match chunks with Some c -> max 1 c | None -> 4 * pool.domains
    in
    (* adaptive grain: never split finer than [grain] items per chunk, so a
       tiny region collapses to one (inline) chunk instead of paying queue
       wakeups that dwarf its work.  Chunk boundaries still depend only on
       [n], [chunks] and [grain] — never on the domain count. *)
    let nchunks = min (min n chunks) (max 1 (n / max 1 grain)) in
    let per = n / nchunks and rem = n mod nchunks in
    run pool nchunks (fun c ->
        let lo = (c * per) + min c rem in
        let hi = lo + per + (if c < rem then 1 else 0) - 1 in
        f lo hi)
  end

let init pool ?chunks ?grain n f =
  if n <= 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    iter_chunks pool ?chunks ?grain (n - 1) (fun lo hi ->
        for i = lo to hi do
          a.(i + 1) <- f (i + 1)
        done);
    a
  end

let map_chunks pool ?chunks ?grain f a =
  init pool ?chunks ?grain (Array.length a) (fun i -> f a.(i))

let map_list pool f l =
  let a = Array.of_list l in
  (* one task per element: list fan-out is used for coarse jobs *)
  let n = Array.length a in
  if n = 0 then []
  else begin
    let out = Array.make n (f a.(0)) in
    run pool (n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    Array.to_list out
  end

let both pool f g =
  let rf = ref None and rg = ref None in
  run pool 2 (fun i ->
      if i = 0 then rf := Some (f ()) else rg := Some (g ()));
  match (!rf, !rg) with
  | Some x, Some y -> (x, y)
  | _ -> assert false

(* --- futures ----------------------------------------------------------------

   A future is a single task submitted to the pool's queue whose completion
   is published under the pool mutex.  [await] never parks while the queue
   holds runnable work: a blocked caller pops and runs queued tasks itself
   ("helping"), so a DAG whose edges are awaits cannot deadlock the pool —
   in the worst case the caller executes the whole graph inline, exactly the
   sequential schedule.  On a width-1 pool [submit] runs the closure
   immediately, so futures degrade to direct calls in submission order.

   Determinism contract: the pool decides only *when* a task runs, never
   what it computes — every submitted closure must already own its inputs
   (its RNG stream, its row window), pre-sequenced by the submitter. *)

module Future = struct
  type 'a state = Pending | Done of 'a | Raised of exn

  type 'a t = { mutable st : 'a state; fpool : pool }

  let submit pool f =
    let fut = { st = Pending; fpool = pool } in
    let runner () =
      let r = try Done (f ()) with e -> Raised e in
      Mutex.lock pool.m;
      fut.st <- r;
      (* completion must wake awaiting callers, who share the workers'
         condition; workers woken spuriously re-check the queue and park *)
      Condition.broadcast pool.work;
      Mutex.unlock pool.m
    in
    if pool.domains = 1 then runner ()
    else begin
      Mutex.lock pool.m;
      Queue.push runner pool.q;
      Condition.signal pool.work;
      Mutex.unlock pool.m
    end;
    fut

  let ready v = { st = Done v; fpool = sequential }

  let await fut =
    (* always synchronise through the pool mutex, even when the state is
       already published: awaiting a dependency must also make the dep
       task's side effects (committed columns, cache entries) visible to
       this domain, which a racy read of [st] alone would not *)
    let pool = fut.fpool in
    let rec loop () =
      match fut.st with
      | Done v ->
          Mutex.unlock pool.m;
          v
      | Raised e ->
          Mutex.unlock pool.m;
          raise e
      | Pending ->
          if not (Queue.is_empty pool.q) then begin
            let t = Queue.pop pool.q in
            Mutex.unlock pool.m;
            t ();
            Mutex.lock pool.m
          end
          else Condition.wait pool.work pool.m;
          loop ()
    in
    Mutex.lock pool.m;
    loop ()

  let is_done fut = match fut.st with Pending -> false | _ -> true
end

(* --- pipelined tile production ----------------------------------------------

   The old implementation rendered a lock-step window of [domains] tiles,
   then stalled every renderer behind the sequential writes.  Here tiles
   flow through a bounded in-order completion queue instead: workers render
   ahead (claiming tile indices in order), the caller drains finished tiles
   to [write] strictly in tile order, and a tile may only start rendering
   when its slot — [tile mod tile_slots] — has been drained, which caps the
   resident tiles at [tile_slots] and keeps per-slot buffers reusable.

   Invariant making the slot contract safe: tile [t] is claimed only when
   [t < written + slots], so no two unwritten tiles ever share a slot.  The
   same invariant rules out deadlock — when nothing is rendering and nothing
   is claimable, the tile the writer is waiting for is already in [ready]. *)

let tile_slots pool = if pool.domains = 1 then 1 else 2 * pool.domains

let iter_tiles ?(interrupt = fun () -> ()) pool ~tiles ~render ~write =
  if tiles > 0 then begin
    if pool.domains = 1 then
      for t = 0 to tiles - 1 do
        interrupt ();
        write ~tile:t (render ~slot:0 ~tile:t)
      done
    else begin
      let slots = tile_slots pool in
      let m = Mutex.create () and cv = Condition.create () in
      let ready = Array.make slots None in
      let next = ref 0 (* next tile to claim for rendering *)
      and written = ref 0 (* tiles drained to [write] *)
      and rendering = ref 0 (* renders in flight *)
      and err = ref None in
      let cancelled () = !err <> None in
      (* first failure wins; everyone re-checks [cancelled] on wake-up *)
      let fail e =
        if !err = None then err := Some e;
        Condition.broadcast cv
      in
      let can_claim () =
        (not (cancelled ())) && !next < tiles && !next < !written + slots
      in
      (* claim the next tile and render it outside the lock *)
      let do_render () =
        let t = !next in
        incr next;
        incr rendering;
        Mutex.unlock m;
        let r = try Ok (render ~slot:(t mod slots) ~tile:t) with e -> Error e in
        Mutex.lock m;
        decr rendering;
        (match r with
        | Ok v -> ready.(t mod slots) <- Some (t, v)
        | Error e -> fail e);
        Condition.broadcast cv
      in
      let helper () =
        Mutex.lock m;
        while (not (cancelled ())) && !next < tiles do
          if can_claim () then do_render () else Condition.wait cv m
        done;
        Mutex.unlock m
      in
      let helpers = min (pool.domains - 1) (max 0 (tiles - 1)) in
      Mutex.lock pool.m;
      for _ = 1 to helpers do
        Queue.push helper pool.q
      done;
      Condition.broadcast pool.work;
      Mutex.unlock pool.m;
      (* the caller is the writer: drain finished tiles in order (freeing
         their slots for renders [slots] tiles ahead), render when the
         lookahead is open, wait only when neither is possible *)
      Mutex.lock m;
      while (not (cancelled ())) && !written < tiles do
        match ready.(!written mod slots) with
        | Some (t, v) when t = !written ->
            ready.(!written mod slots) <- None;
            Mutex.unlock m;
            (* cooperative cancellation per tile, not per window: a deadline
               trips between two tile writes, never mid-write *)
            let r =
              try
                interrupt ();
                write ~tile:t v;
                None
              with e -> Some e
            in
            Mutex.lock m;
            (match r with
            | None ->
                incr written;
                Condition.broadcast cv
            | Some e -> fail e)
        | Some _ | None ->
            if can_claim () then do_render () else Condition.wait cv m
      done;
      (* settle before returning or re-raising: no render may be left in
         flight touching the caller's slot buffers, and the queued helper
         closures must find nothing to claim *)
      while !rendering > 0 do
        Condition.wait cv m
      done;
      let e = !err in
      Mutex.unlock m;
      match e with Some e -> raise e | None -> ()
    end
  end
