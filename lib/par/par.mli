(** Fixed-size domain pool with deterministic work splitting.

    The generation pipeline is embarrassingly parallel at several grains —
    per-batch FK population, per-column CDF construction, per-table non-key
    instantiation, per-tile scale-out writes — and every one of those grains
    is driven through this module so the split is {e deterministic}: a
    parallel region always produces results indexed by shard/chunk/tile
    number, merged sequentially in index order, and any randomness inside a
    shard comes from an RNG stream derived from the shard index
    ({!Mirage_util.Rng.split} with [~stream]).  Output is therefore
    bit-identical for any domain count, including [1].

    A pool of size [n] consists of the calling domain plus [n - 1] spawned
    worker domains that block on a task queue.  The caller always
    participates in its own parallel regions, so nested regions cannot
    deadlock (they degrade to the caller draining the queue itself).

    Pools are built to be {e long-lived}: a region that raises still drains
    fully before the exception re-raises in the caller, leaving the workers
    parked on the queue and the pool usable for the next region.  Prefer
    {!get} — one resident pool per width for the whole process — over
    {!with_pool}, which pays a domain spawn/join per call. *)

type pool

val create : ?domains:int -> unit -> pool
(** [create ~domains ()] spawns [domains - 1] worker domains.  [domains] is
    clamped to [\[1, 64\]]; it defaults to {!default_domains}.  A pool of
    size 1 spawns nothing and runs every region inline. *)

val sequential : pool
(** A shared size-1 pool: every region runs inline on the caller.  Never
    needs {!shutdown}. *)

val get : ?domains:int -> unit -> pool
(** [get ~domains ()] returns the process-global resident pool of that
    width, creating it on first use ([domains] clamps and defaults as in
    {!create}; width 1 returns {!sequential}).  The pool is shared by every
    caller for the life of the process — generation runs, CLI exports and
    bench entries reuse the same worker domains instead of re-spawning them —
    and is joined automatically at process exit.  Never {!shutdown} a pool
    obtained here.  A failed region (exception, budget breach) leaves the
    pool fully usable. *)

val size : pool -> int
(** Total domains participating in a region, including the caller. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [\[1, 8\]] — the default
    width used when a config does not pin one. *)

val shutdown : pool -> unit
(** Joins the worker domains.  Idempotent.  The pool must not be used
    afterwards.  Only for pools from {!create}/{!with_pool} — the resident
    pools of {!get} shut down at process exit. *)

val with_pool : ?domains:int -> (pool -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards,
    also on exception.  Pays a domain spawn/join per call; prefer {!get}
    unless the test specifically wants an isolated pool. *)

val run : pool -> int -> (int -> unit) -> unit
(** [run pool n f] executes [f 0 .. f (n-1)], distributing tasks over the
    pool (the caller participates).  Returns when all [n] calls finished.
    The first exception raised by any task is re-raised in the caller after
    the region drains; the remaining tasks still run, so the pool stays
    usable. *)

val run_workers : pool -> (int -> unit) -> unit
(** [run_workers pool body] invokes [body w] once per worker slot
    [w ∈ 0 .. size pool - 1], concurrently across the pool (the caller
    participates).  Unlike {!run} with per-item tasks, the slot index is a
    {e buffer identity}: each invocation owns slot-[w] scratch state (a
    render buffer, an output stream) for its whole duration.  Slots may be
    executed by fewer domains than [size pool] when a domain finishes one
    slot and claims another, so bodies must pull their actual work items
    from a shared source (an atomic counter) rather than partitioning by
    [w].  Used by the domain-owned sharded CSV export. *)

val iter_chunks :
  pool -> ?chunks:int -> ?grain:int -> int -> (int -> int -> unit) -> unit
(** [iter_chunks pool n f] splits [0 .. n-1] into at most [chunks]
    contiguous ranges (default [4 × size]) and calls [f lo hi] (inclusive)
    for each in parallel.  [grain] (default 1) is the minimum items per
    chunk: a region with fewer than [2 × grain] items runs as a single
    inline chunk, so tiny regions never pay parallel dispatch.  Chunk
    boundaries depend only on [n], [chunks] and [grain], never on the domain
    count, so per-chunk work is deterministic. *)

val init : pool -> ?chunks:int -> ?grain:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]: element order is by index, as sequentially. *)

val map_chunks :
  pool -> ?chunks:int -> ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with chunked scheduling. *)

val map_list : pool -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map]; preserves list order.  Each element is one task, so
    use it for coarse-grained jobs (a column build, a table instantiation). *)

val both : pool -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both pool f g] runs [f] and [g] concurrently and returns both. *)

(** Futures on the resident pool — the task layer under the dependency-aware
    pipeline scheduler ({!Mirage_core.Driver} overlap mode).

    A future wraps one closure queued on the pool.  The pool decides only
    {e when} the closure runs, never what it computes: submitters must hand
    each task everything it draws from (its RNG stream, its row window)
    already sequenced, so execution order cannot leak into results.

    [await] {e helps}: while the future is pending and the queue holds
    tasks, the caller pops and runs them instead of parking.  A graph whose
    only blocking is [await] therefore cannot deadlock — in the degenerate
    case the caller executes every task itself, which is exactly the
    sequential schedule.  On a width-1 pool [submit] runs the closure
    inline, so overlap mode on one domain {e is} the sequential schedule. *)
module Future : sig
  type 'a t

  val submit : pool -> (unit -> 'a) -> 'a t
  (** [submit pool f] queues [f] and returns its future.  Width-1 pools run
      [f] before returning.  An exception escaping [f] is stored and
      re-raised by every {!await}. *)

  val ready : 'a -> 'a t
  (** An already-completed future; [await] returns immediately.  Lets DAG
      nodes with no work share the plumbing of real tasks. *)

  val await : 'a t -> 'a
  (** Blocks until the future completes, running queued pool tasks while it
      waits; returns the result or re-raises the task's exception.  May be
      called from multiple domains and any number of times. *)

  val is_done : 'a t -> bool
  (** Non-blocking completion probe (true for [Raised] results too). *)
end

val tile_slots : pool -> int
(** Number of render slots {!iter_tiles} cycles through: [2 × size] (1 for a
    sequential pool).  Callers allocating per-slot buffers must size their
    arrays with this, not {!size}. *)

val iter_tiles :
  ?interrupt:(unit -> unit) ->
  pool ->
  tiles:int ->
  render:(slot:int -> tile:int -> 'b) ->
  write:(tile:int -> 'b -> unit) ->
  unit
(** Pipelined tile production through a bounded in-order completion queue:
    workers render tiles ahead while the caller drains finished tiles to
    [write] {e strictly in tile order}, so the output is byte-identical to a
    sequential loop — but renderers no longer stall behind the writes.  The
    lookahead is bounded: at most [tile_slots pool] tiles are resident at
    once, capping memory independently of [tiles].

    [slot] is [tile mod tile_slots pool].  A tile only starts rendering
    once the previous tile of its slot has been written, so per-slot buffers
    are safe to reuse across tiles: a buffer filled by [render ~slot] is
    owned by the pipeline until that tile's [write] returns, and untouched
    by any other tile in between.

    [interrupt] is a cooperative cancellation point called in the caller
    before {e every} tile write (not once per window): whatever it raises
    propagates after in-flight renders settle, with no tile half-written.
    Exceptions from [render]/[write] propagate the same way; the pool
    remains usable afterwards. *)
