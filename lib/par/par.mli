(** Fixed-size domain pool with deterministic work splitting.

    The generation pipeline is embarrassingly parallel at several grains —
    per-batch FK population, per-column CDF construction, per-table non-key
    instantiation, per-tile scale-out writes — and every one of those grains
    is driven through this module so the split is {e deterministic}: a
    parallel region always produces results indexed by shard/chunk/tile
    number, merged sequentially in index order, and any randomness inside a
    shard comes from an RNG stream derived from the shard index
    ({!Mirage_util.Rng.split} with [~stream]).  Output is therefore
    bit-identical for any domain count, including [1].

    A pool of size [n] consists of the calling domain plus [n - 1] spawned
    worker domains that block on a task queue.  The caller always
    participates in its own parallel regions, so nested regions cannot
    deadlock (they degrade to the caller draining the queue itself). *)

type pool

val create : ?domains:int -> unit -> pool
(** [create ~domains ()] spawns [domains - 1] worker domains.  [domains] is
    clamped to [\[1, 64\]]; it defaults to {!default_domains}.  A pool of
    size 1 spawns nothing and runs every region inline. *)

val sequential : pool
(** A shared size-1 pool: every region runs inline on the caller.  Never
    needs {!shutdown}. *)

val size : pool -> int
(** Total domains participating in a region, including the caller. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [\[1, 8\]] — the default
    width used when a config does not pin one. *)

val shutdown : pool -> unit
(** Joins the worker domains.  Idempotent.  The pool must not be used
    afterwards. *)

val with_pool : ?domains:int -> (pool -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards,
    also on exception. *)

val run : pool -> int -> (int -> unit) -> unit
(** [run pool n f] executes [f 0 .. f (n-1)], distributing tasks over the
    pool (the caller participates).  Returns when all [n] calls finished.
    The first exception raised by any task is re-raised in the caller after
    the region drains; the remaining tasks still run. *)

val iter_chunks : pool -> ?chunks:int -> int -> (int -> int -> unit) -> unit
(** [iter_chunks pool n f] splits [0 .. n-1] into at most [chunks]
    contiguous ranges (default [4 × size]) and calls [f lo hi] (inclusive)
    for each in parallel.  Chunk boundaries depend only on [n] and [chunks],
    never on the domain count, so per-chunk work is deterministic. *)

val init : pool -> ?chunks:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]: element order is by index, as sequentially. *)

val map_chunks : pool -> ?chunks:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with chunked scheduling. *)

val map_list : pool -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map]; preserves list order.  Each element is one task, so
    use it for coarse-grained jobs (a column build, a table instantiation). *)

val both : pool -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both pool f g] runs [f] and [g] concurrently and returns both. *)

val iter_tiles :
  ?interrupt:(unit -> unit) ->
  pool ->
  tiles:int ->
  render:(slot:int -> tile:int -> 'b) ->
  write:(tile:int -> 'b -> unit) ->
  unit
(** Pipelined tile production: tiles are rendered in parallel in windows of
    [size pool], then written {e sequentially in tile order}, so the writer
    output is identical to a sequential loop.  [slot] is the tile's index
    within its window ([0 .. size-1]) and is unique among concurrently
    rendered tiles — callers use it to reuse per-slot buffers, which are
    safe to touch again once [write] for that window has run.

    [interrupt] is a cooperative cancellation point called before each
    window, outside any parallel region: whatever it raises propagates with
    no render in flight and no tile half-written. *)
