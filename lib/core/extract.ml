module Pred = Mirage_sql.Pred
module Schema = Mirage_sql.Schema
module Plan = Mirage_relalg.Plan
module Aqt = Mirage_relalg.Aqt
module Db = Mirage_engine.Db
module Exec = Mirage_engine.Exec

type extraction = {
  ir : Ir.t;
  aqts : Aqt.t list;
  rewritten : (string * Plan.t * Plan.t list) list;
  diags : Diag.t list;
}

let rec child_view_of ~table plan =
  match plan with
  | Plan.Table t when t = table -> Ir.Cv_full t
  | Plan.Select (p, Plan.Table t) when t = table ->
      Ir.Cv_select { cv_table = t; cv_pred = p }
  | Plan.Select (p, (Plan.Select _ as inner)) -> (
      match child_view_of ~table inner with
      | Ir.Cv_select { cv_table; cv_pred } ->
          Ir.Cv_select { cv_table; cv_pred = Pred.And [ p; cv_pred ] }
      | _ -> Ir.Cv_subplan { cv_plan = plan; cv_table = table })
  | _ -> Ir.Cv_subplan { cv_plan = plan; cv_table = table }

(* Which of (jcc, jdc) each join type constrains — Table 2. *)
let constrained_stats jt (stat : Exec.join_stat) =
  match jt with
  | Plan.Inner -> (Some stat.jcc, None)
  | Plan.Left_outer -> (Some stat.jcc, Some stat.jdc)
  | Plan.Right_outer -> (None, None)
  | Plan.Full_outer -> (None, Some stat.jdc)
  | Plan.Left_semi -> (None, Some stat.jdc)
  | Plan.Right_semi -> (Some stat.jcc, None)
  | Plan.Left_anti -> (None, Some stat.jdc)
  | Plan.Right_anti -> (Some stat.jcc, None)

(* Extract SCCs and join constraints from one pushed-down plan annotated by
   [analysis].  [source] tags the constraints for diagnostics. *)
let constraints_of_plan schema ~source plan (analysis : Exec.analysis) =
  let sccs = ref [] and joins = ref [] in
  let counter = ref 0 in
  let jstat idx = List.assoc idx analysis.Exec.join_stats in
  let rec go p =
    let idx = !counter in
    incr counter;
    (match p with
    | Plan.Table _ -> ()
    | Plan.Select (pred, Plan.Table t) ->
        sccs :=
          {
            Ir.scc_table = t;
            scc_pred = pred;
            scc_rows = analysis.Exec.cards.(idx);
            scc_source = source;
          }
          :: !sccs
    | Plan.Select _ -> ()
    | Plan.Join { jt; pk_table; fk_table; fk_col; left; right } ->
        let stat = jstat idx in
        let jcc, jdc = constrained_stats jt stat in
        (* A JCC whose left child view is the whole referenced table is
           trivially satisfied (every foreign key matches some primary key),
           so it carries no information — and dropping it breaks spurious
           dependency cycles between FK columns (e.g. TPC-H Q3 vs Q18). *)
        let jcc =
          match child_view_of ~table:pk_table left with
          | Ir.Cv_full _ -> None
          | Ir.Cv_select _ | Ir.Cv_subplan _ -> jcc
        in
        if jcc <> None || jdc <> None then
          joins :=
            {
              Ir.jc_edge = { e_pk_table = pk_table; e_fk_table = fk_table; e_fk_col = fk_col };
              jc_left = child_view_of ~table:pk_table left;
              jc_right = child_view_of ~table:fk_table right;
              jc_jcc = jcc;
              jc_jdc = jdc;
              jc_source = source;
            }
            :: !joins
    | Plan.Aggregate _ -> ()
    | Plan.Project { cols; input } -> (
        (* PCC on a foreign-key column → JDC (§2.2, Fig. 2). *)
        match cols with
        | [ col ] -> (
            let owner =
              List.find_opt
                (fun tname ->
                  let tbl = Schema.table schema tname in
                  Schema.is_fk tbl col)
                (Plan.tables input)
            in
            match owner with
            | None -> ()
            | Some fk_table -> (
                let tbl = Schema.table schema fk_table in
                let pk_table = (Schema.fk tbl col).Schema.references in
                let edge =
                  { Ir.e_pk_table = pk_table; e_fk_table = fk_table; e_fk_col = col }
                in
                match input with
                | Plan.Join { fk_col; _ } when fk_col = col ->
                    (* direct child join on the same edge: its own JDC *)
                    let stat = jstat (idx + 1) in
                    joins :=
                      {
                        Ir.jc_edge = edge;
                        jc_left = child_view_of ~table:pk_table
                            (match input with
                            | Plan.Join { left; _ } -> left
                            | _ -> assert false);
                        jc_right = child_view_of ~table:fk_table
                            (match input with
                            | Plan.Join { right; _ } -> right
                            | _ -> assert false);
                        jc_jcc = None;
                        jc_jdc = Some stat.Exec.jdc;
                        jc_source = source ^ "#pcc";
                      }
                      :: !joins
                | _ ->
                    (* virtual right-semi join: full referenced table on the
                       left, the projection's input on the right *)
                    joins :=
                      {
                        Ir.jc_edge = edge;
                        jc_left = Ir.Cv_full pk_table;
                        jc_right = child_view_of ~table:fk_table input;
                        jc_jcc = None;
                        jc_jdc = Some analysis.Exec.cards.(idx);
                        jc_source = source ^ "#pcc";
                      }
                      :: !joins))
        | _ -> ()));
    match p with
    | Plan.Table _ -> ()
    | Plan.Select (_, q) | Plan.Project { input = q; _ } | Plan.Aggregate { input = q; _ }
      ->
        go q
    | Plan.Join { left; right; _ } ->
        go left;
        go right
  in
  go plan;
  (List.rev !sccs, List.rev !joins)

let run (w : Workload.t) ~ref_db ~prod_env =
  let schema = w.Workload.w_schema in
  let table_cards =
    List.map
      (fun (tbl : Schema.table) -> (tbl.Schema.tname, Db.row_count ref_db tbl.Schema.tname))
      (Schema.tables schema)
  in
  let column_cards =
    List.concat_map
      (fun (tbl : Schema.table) ->
        List.map
          (fun (c : Schema.column) ->
            ( (tbl.Schema.tname, c.Schema.cname),
              Db.distinct_count ref_db tbl.Schema.tname c.Schema.cname ))
          tbl.Schema.nonkeys)
      (Schema.tables schema)
  in
  let sccs = ref [] and joins = ref [] in
  let aqts = ref [] and rewritten = ref [] in
  let diags = ref [] in
  (* per-query tolerance: a template the rewriter or analyzer cannot handle
     is diagnosed and skipped (it will be reported Unsupported) instead of
     aborting the whole extraction; any partial constraints it contributed
     are rolled back *)
  let try_query (q : Workload.query) body =
    let saved = (!sccs, !joins, !aqts, !rewritten) in
    let restore () =
      let s, j, a, r = saved in
      sccs := s;
      joins := j;
      aqts := a;
      rewritten := r
    in
    match body () with
    | () -> ()
    | exception Rewrite.Unsupported msg ->
        restore ();
        diags :=
          Diag.error ~query:q.Workload.q_name
            ~hint:
              "rewrite the template with supported operators, or remove it \
               from the workload"
            Diag.Extract "rewrite: %s" msg
          :: !diags
    | exception Invalid_argument msg ->
        restore ();
        diags :=
          Diag.error ~query:q.Workload.q_name Diag.Extract "%s" msg :: !diags
  in
  List.iter
    (fun (q : Workload.query) ->
      try_query q @@ fun () ->
      let { Rewrite.rw_plan; rw_aux; rw_marginals } =
        Rewrite.push_down schema q.Workload.q_plan
      in
      rewritten := (q.Workload.q_name, rw_plan, rw_aux) :: !rewritten;
      (* marginal counts for nested complement literals (Example 3.1's n₃/n₄
         when the complement lands on an already-filtered side) *)
      List.iter
        (fun (table, pred) ->
          let rows = Exec.count_select ref_db ~env:prod_env ~table pred in
          sccs :=
            {
              Ir.scc_table = table;
              scc_pred = pred;
              scc_rows = rows;
              scc_source = q.Workload.q_name ^ "#marginal";
            }
            :: !sccs)
        rw_marginals;
      (* constraints from the rewritten plan *)
      let analysis = Exec.analyze ref_db ~env:prod_env rw_plan in
      let s, j = constraints_of_plan schema ~source:q.Workload.q_name rw_plan analysis in
      sccs := s @ !sccs;
      joins := j @ !joins;
      (* constraints from the auxiliary complement plans *)
      List.iteri
        (fun i aux ->
          let source = Printf.sprintf "%s#aux%d" q.Workload.q_name i in
          let analysis = Exec.analyze ref_db ~env:prod_env aux in
          let s, j = constraints_of_plan schema ~source aux analysis in
          sccs := s @ !sccs;
          joins := j @ !joins)
        rw_aux;
      (* verification AQT over the ORIGINAL plan *)
      let orig_analysis = Exec.analyze ref_db ~env:prod_env q.Workload.q_plan in
      let aqt = Aqt.unannotated ~name:q.Workload.q_name q.Workload.q_plan in
      let aqt =
        Array.to_list orig_analysis.Exec.cards
        |> List.mapi (fun i c -> (i, c))
        |> List.fold_left (fun a (i, c) -> Aqt.annotate a i c) aqt
      in
      aqts := aqt :: !aqts)
    w.Workload.w_queries;
  (* a predicate that is purely a conjunction of range literals on ONE
     column (e.g. a BETWEEN) is replaced by one marginal SCC per literal:
     the marginal counts come from the production database and the
     conjunction count follows exactly (same-column identity), keeping the
     CDF anchors aligned with the production distribution *)
  let split_range_conjunctions l =
    List.concat_map
      (fun (s : Ir.scc) ->
        let clauses =
          try Some (Pred.cnf s.Ir.scc_pred)
          with Failure _ | Invalid_argument _ -> None
        in
        match clauses with
        | Some (( _ :: _ :: _ ) as cs)
          when List.for_all
                 (fun c ->
                   match c with
                   | [ Pred.Lit (Pred.Cmp { cmp = Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge; _ }) ] ->
                       true
                   | _ -> false)
                 cs
               &&
               let cols = List.concat_map (fun c -> List.concat_map Pred.columns c) cs in
               (match cols with [] -> false | c0 :: rest -> List.for_all (( = ) c0) rest)
          ->
            List.map
              (fun c ->
                let pred = match c with [ p ] -> p | _ -> assert false in
                {
                  s with
                  Ir.scc_pred = pred;
                  scc_rows = Exec.count_select ref_db ~env:prod_env ~table:s.Ir.scc_table pred;
                  scc_source = s.Ir.scc_source ^ "#range";
                })
              cs
        | _ -> [ s ])
      l
  in
  (* identical SCCs can arise once per plan that mentions a selection (the
     rewritten main plan and its auxiliary complements share pushed-down
     filters); keep one copy so the CDF does not double-count *)
  let dedup_sccs l =
    let seen = Hashtbl.create 32 in
    List.filter
      (fun (s : Ir.scc) ->
        let key = (s.Ir.scc_table, Pred.to_string s.Ir.scc_pred, s.Ir.scc_rows) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      l
  in
  let final_sccs = dedup_sccs (split_range_conjunctions (List.rev !sccs)) in
  (* production elements for every in/like parameter appearing in the
     selection constraints (used by the CDF and by constraint bundles) *)
  let param_elements =
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    let count_eq table col v =
      let a = Db.column ref_db table col in
      let c = ref 0 in
      Array.iter (fun x -> if Mirage_sql.Value.compare x v = 0 then incr c) a;
      !c
    in
    let record table lit =
      match lit with
      | Pred.In { col; arg = Pred.Param p; _ } ->
          if not (Hashtbl.mem seen p) then begin
            Hashtbl.add seen p ();
            let vs =
              match Pred.Env.find p prod_env with
              | Some (Pred.Env.Vlist vs) -> vs
              | Some (Pred.Env.Scalar v) -> [ v ]
              | None -> []
            in
            out := (p, List.map (fun v -> (v, count_eq table col v)) vs) :: !out
          end
      | Pred.Like { col; arg = Pred.Param p; _ } ->
          if not (Hashtbl.mem seen p) then begin
            Hashtbl.add seen p ();
            match Pred.Env.find p prod_env with
            | Some (Pred.Env.Scalar (Mirage_sql.Value.Str pattern)) ->
                let counts = Hashtbl.create 16 in
                Array.iter
                  (fun v ->
                    match v with
                    | Mirage_sql.Value.Str str
                      when Mirage_sql.Like.matches ~pattern str ->
                        Hashtbl.replace counts str
                          (1 + try Hashtbl.find counts str with Not_found -> 0)
                    | _ -> ())
                  (Db.column ref_db table col);
                let els =
                  Hashtbl.fold
                    (fun v c acc -> (Mirage_sql.Value.Str v, c) :: acc)
                    counts []
                  |> List.sort compare
                in
                out := (p, els) :: !out
            | _ -> out := (p, []) :: !out
          end
      | Pred.Cmp _ | Pred.In _ | Pred.Like _ | Pred.Arith_cmp _ -> ()
    in
    List.iter
      (fun (s : Ir.scc) ->
        let rec walk = function
          | Pred.True | Pred.False -> ()
          | Pred.Lit l -> record s.Ir.scc_table l
          | Pred.Not q -> walk q
          | Pred.And qs | Pred.Or qs -> List.iter walk qs
        in
        walk s.Ir.scc_pred)
      final_sccs;
    List.rev !out
  in
  {
    ir =
      {
        Ir.sccs = final_sccs;
        joins = List.rev !joins;
        table_cards;
        column_cards;
        param_elements;
      };
    aqts = List.rev !aqts;
    rewritten = List.rev !rewritten;
    diags = List.rev !diags;
  }
