(** Export the synthetic environment as standard SQL.

    The paper replays the instantiated workload on PostgreSQL; this module
    produces the artifacts to do the same with any DBMS: DDL for the schema,
    CSV-backed COPY/INSERT data, and the instantiated query templates
    rendered as SQL (PK–FK joins as INNER/LEFT JOIN, semi joins as EXISTS,
    anti joins as NOT EXISTS, FK projections as SELECT DISTINCT, aggregates
    as GROUP BY). *)

val ddl : Mirage_sql.Schema.t -> string
(** CREATE TABLE statements with primary/foreign keys. *)

val inserts : Mirage_engine.Db.t -> table:string -> string
(** Multi-row INSERT statements for one table (batches of 500 rows),
    rendered on the shared kernel ({!Mirage_engine.Render}): digits written
    in place, string pools SQL-escaped once per distinct entry, floats in
    the unified round-trip format. *)

val query_sql :
  Mirage_relalg.Plan.t ->
  schema:Mirage_sql.Schema.t ->
  env:Mirage_sql.Pred.Env.t ->
  (string, string) result
(** The plan rendered as a SELECT statement with the environment's parameter
    values inlined.  Errors on unbound parameters. *)

val export_dir :
  db:Mirage_engine.Db.t ->
  workload:Workload.t ->
  env:Mirage_sql.Pred.Env.t ->
  dir:string ->
  unit
(** Writes [schema.sql], [data.sql] and [queries.sql] into [dir]. *)

val export_chunked :
  ?backend:Mirage_engine.Sink.backend ->
  ?resume:bool ->
  ?interrupt:(unit -> unit) ->
  db:Mirage_engine.Db.t ->
  workload:Workload.t ->
  env:Mirage_sql.Pred.Env.t ->
  dir:string ->
  chunk_rows:int ->
  run_id:string ->
  unit ->
  int * int
(** Crash-safe variant of {!export_dir}: the data stream is emitted as
    shards [data.sql.0], [data.sql.1], … of at most [chunk_rows] rows each
    (rounded down to whole 500-row INSERT batches, so no shard splits a
    statement) through a {!Mirage_engine.Sink} run — temp file + atomic
    rename + manifest checkpoint per shard.  Concatenating the shards in
    index order reproduces the monolithic [data.sql] byte-for-byte.  With
    [~resume:true] and a matching [run_id], committed shards are skipped
    without rendering.  Returns [(shards, resumed)].
    @raise Mirage_engine.Sink.Io_failure on I/O errors. *)
