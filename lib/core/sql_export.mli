(** Export the synthetic environment as standard SQL.

    The paper replays the instantiated workload on PostgreSQL; this module
    produces the artifacts to do the same with any DBMS: DDL for the schema,
    CSV-backed COPY/INSERT data, and the instantiated query templates
    rendered as SQL (PK–FK joins as INNER/LEFT JOIN, semi joins as EXISTS,
    anti joins as NOT EXISTS, FK projections as SELECT DISTINCT, aggregates
    as GROUP BY). *)

val ddl : Mirage_sql.Schema.t -> string
(** CREATE TABLE statements with primary/foreign keys. *)

val inserts : Mirage_engine.Db.t -> table:string -> string
(** Multi-row INSERT statements for one table (batches of 500 rows),
    rendered on the shared kernel ({!Mirage_engine.Render}): digits written
    in place, string pools SQL-escaped once per distinct entry, floats in
    the unified round-trip format. *)

val query_sql :
  Mirage_relalg.Plan.t ->
  schema:Mirage_sql.Schema.t ->
  env:Mirage_sql.Pred.Env.t ->
  (string, string) result
(** The plan rendered as a SELECT statement with the environment's parameter
    values inlined.  Errors on unbound parameters. *)

val export_dir :
  db:Mirage_engine.Db.t ->
  workload:Workload.t ->
  env:Mirage_sql.Pred.Env.t ->
  dir:string ->
  unit
(** Writes [schema.sql], [data.sql] and [queries.sql] into [dir]. *)
