(** Cross-partition CP solve cache.

    The population systems the key generator solves recur heavily: FK
    partitions of different batches (and different edges of the same AQT
    shape) build structurally identical models — same covers, same
    constraint pattern, same bounds — differing only in variable names.
    {!Mirage_cp.Cp.fingerprint} canonicalises exactly that equivalence, and
    the solver is deterministic in everything the fingerprint covers, so a
    cached outcome is {e bit-identical} to what a fresh solve would return:
    enabling the cache never changes the generated database, only skips
    redundant search.

    The cache is domain-safe and {e single-flight}: entries live in sharded
    hash tables, each guarded by its own mutex, and a solve already running
    for a key makes identical concurrent requests wait for its result
    instead of duplicating the search.  The waiter counts as a hit, so total
    {!hits}/{!misses} match a sequential replay of the same solve sequence
    in any order — the parity the overlap scheduler's tests pin. *)

type t

val create : unit -> t

val hits : t -> int
(** Solves answered from the cache since {!create}. *)

val misses : t -> int
(** Solves that ran the solver (and populated the cache). *)

val solve :
  ?cache:t ->
  ?max_nodes:int ->
  ?lp_guide:bool ->
  ?interrupt:(unit -> unit) ->
  Mirage_cp.Cp.t ->
  Mirage_cp.Cp.outcome * Mirage_cp.Cp.stats option
(** Drop-in for {!Mirage_cp.Cp.solve}.  [interrupt] is forwarded to the
    underlying solver on a miss (a cache hit runs no search, so there is
    nothing to cancel).  [None] stats signal a cache hit (no
    search ran); [Some st] is the underlying solver's statistics on a miss.
    The cache key includes [max_nodes] and [lp_guide] because the outcome of
    a budgeted solve depends on them.  Without [?cache] this is exactly
    [Cp.solve]. *)
