module Plan = Mirage_relalg.Plan

type query = { q_name : string; q_plan : Plan.t }

type t = { w_schema : Mirage_sql.Schema.t; w_queries : query list }

let make w_schema w_queries =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun q ->
      if Hashtbl.mem seen q.q_name then
        invalid_arg (Printf.sprintf "Workload.make: duplicate query %s" q.q_name);
      Hashtbl.add seen q.q_name ();
      match Plan.validate w_schema q.q_plan with
      | Ok () -> ()
      | Error msg ->
          invalid_arg (Printf.sprintf "Workload.make: query %s: %s" q.q_name msg))
    w_queries;
  let params = Hashtbl.create 64 in
  List.iter
    (fun q ->
      List.iter
        (fun p ->
          match Hashtbl.find_opt params p with
          | Some other when other <> q.q_name ->
              invalid_arg
                (Printf.sprintf
                   "Workload.make: parameter %s shared by queries %s and %s" p
                   other q.q_name)
          | _ -> Hashtbl.replace params p q.q_name)
        (Plan.params q.q_plan))
    w_queries;
  { w_schema; w_queries }

(* non-raising counterpart of [make]'s checks, for fail-fast validation of
   workloads that arrive pre-constructed (e.g. deserialised from a bundle) *)
let validate t =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun q ->
      if Hashtbl.mem seen q.q_name then
        push
          (Diag.error ~query:q.q_name Diag.Validate "duplicate query name %s"
             q.q_name)
      else Hashtbl.add seen q.q_name ();
      match Plan.validate t.w_schema q.q_plan with
      | Ok () -> ()
      | Error msg ->
          push
            (Diag.error ~query:q.q_name
               ~hint:"the plan references tables or columns absent from the \
                      schema"
               Diag.Validate "%s" msg))
    t.w_queries;
  let params = Hashtbl.create 64 in
  List.iter
    (fun q ->
      List.iter
        (fun p ->
          match Hashtbl.find_opt params p with
          | Some other when other <> q.q_name ->
              push
                (Diag.error ~query:q.q_name Diag.Validate
                   "parameter %s shared by queries %s and %s" p other q.q_name)
          | _ -> Hashtbl.replace params p q.q_name)
        (Plan.params q.q_plan))
    t.w_queries;
  List.rev !diags

let query t name =
  match List.find_opt (fun q -> q.q_name = name) t.w_queries with
  | Some q -> q
  | None -> invalid_arg (Printf.sprintf "Workload.query: unknown query %s" name)

let take t n =
  { t with w_queries = List.filteri (fun i _ -> i < n) t.w_queries }

let param_names t =
  List.concat_map (fun q -> Plan.params q.q_plan) t.w_queries
