module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Db = Mirage_engine.Db

let shift_column ~is_key ~offset arr =
  if not is_key then arr
  else
    Array.map
      (fun v -> match v with Value.Int x -> Value.Int (x + offset) | other -> other)
      arr

(* columns of one tile of [tname], with keys shifted into the tile's range *)
let tile_columns db (tbl : Schema.table) t =
  let tname = tbl.Schema.tname in
  let n = Db.row_count db tname in
  let key_offsets =
    (tbl.Schema.pk, t * n)
    :: List.map
         (fun (f : Schema.fk) -> (f.Schema.fk_col, t * Db.row_count db f.Schema.references))
         tbl.Schema.fks
  in
  List.map
    (fun c ->
      let arr = Db.column db tname c in
      match List.assoc_opt c key_offsets with
      | Some offset -> shift_column ~is_key:true ~offset arr
      | None -> arr)
    (Schema.column_names tbl)

let to_csv_dir ~db ~copies ~dir =
  if copies < 1 then invalid_arg "Scale_out.to_csv_dir: copies must be >= 1";
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let schema = Db.schema db in
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let names = Schema.column_names tbl in
      let n = Db.row_count db tname in
      let oc = open_out (Filename.concat dir (tname ^ ".csv")) in
      output_string oc (String.concat "," names);
      output_char oc '\n';
      for t = 0 to copies - 1 do
        let cols = tile_columns db tbl t in
        for i = 0 to n - 1 do
          let cells =
            List.map
              (fun a ->
                match a.(i) with
                | Value.Null -> ""
                | Value.Int x -> string_of_int x
                | Value.Float x -> string_of_float x
                | Value.Str s -> s)
              cols
          in
          output_string oc (String.concat "," cells);
          output_char oc '\n'
        done
      done;
      close_out oc)
    (Schema.tables schema)

let tile_db ~db ~copies =
  if copies < 1 then invalid_arg "Scale_out.tile_db: copies must be >= 1";
  let schema = Db.schema db in
  let out = Db.create schema in
  List.iter
    (fun (tbl : Schema.table) ->
      let names = Schema.column_names tbl in
      let tiles = List.init copies (fun t -> tile_columns db tbl t) in
      let cols =
        List.mapi
          (fun ci name -> (name, Array.concat (List.map (fun tile -> List.nth tile ci) tiles)))
          names
      in
      Db.put out tbl.Schema.tname cols)
    (Schema.tables schema);
  out

let scaled_rows db ~copies =
  List.map
    (fun (tbl : Schema.table) ->
      (tbl.Schema.tname, copies * Db.row_count db tbl.Schema.tname))
    (Schema.tables (Db.schema db))
