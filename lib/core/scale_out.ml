module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Col = Mirage_engine.Col
module Db = Mirage_engine.Db
module Par = Mirage_par.Par

let cell_null nulls i =
  match nulls with Some b -> Col.Bitset.get b i | None -> false

(* key offset per column of [tbl] for tile [t]: pk shifts by t·|R|, each FK by
   t·|referenced table| *)
let key_offsets db (tbl : Schema.table) t =
  let n = Db.row_count db tbl.Schema.tname in
  (tbl.Schema.pk, t * n)
  :: List.map
       (fun (f : Schema.fk) ->
         (f.Schema.fk_col, t * Db.row_count db f.Schema.references))
       tbl.Schema.fks

let add_cell buf = function
  | Value.Null -> ()
  | Value.Int x -> Buffer.add_string buf (string_of_int x)
  | Value.Float x -> Buffer.add_string buf (string_of_float x)
  | Value.Str s -> Buffer.add_string buf s

(* per-column CSV cell writer: the representation (and the tile's key offset)
   is resolved once, not per cell; key columns are integer, so only the [Ints]
   and [Boxed] arms apply the offset *)
let cell_renderer buf ~offset col =
  match col with
  | Col.Ints { data; nulls } ->
      fun i ->
        if not (cell_null nulls i) then
          Buffer.add_string buf (string_of_int (data.(i) + offset))
  | Col.Floats { data; nulls } ->
      fun i ->
        if not (cell_null nulls i) then
          Buffer.add_string buf (string_of_float data.(i))
  | Col.Dict { codes; pool; nulls } ->
      fun i ->
        if not (cell_null nulls i) then Buffer.add_string buf pool.(codes.(i))
  | Col.Boxed vs -> (
      fun i ->
        match vs.(i) with
        | Value.Int x -> Buffer.add_string buf (string_of_int (x + offset))
        | v -> add_cell buf v)

(* render one tile of [tbl] into [buf] (cleared first): cells go straight
   from typed storage into the reused buffer — no per-tile shifted copy of
   the key columns, no boxing *)
let render_tile buf db tbl ~tile =
  Buffer.clear buf;
  let tname = tbl.Schema.tname in
  let n = Db.row_count db tname in
  let offsets = key_offsets db tbl tile in
  let renderers =
    Array.of_list
      (List.map
         (fun c ->
           let offset =
             match List.assoc_opt c offsets with Some o -> o | None -> 0
           in
           cell_renderer buf ~offset (Db.col db tname c))
         (Schema.column_names tbl))
  in
  let ncols = Array.length renderers in
  for i = 0 to n - 1 do
    for c = 0 to ncols - 1 do
      if c > 0 then Buffer.add_char buf ',';
      renderers.(c) i
    done;
    Buffer.add_char buf '\n'
  done

let to_csv_dir ?(pool = Par.sequential) ~db ~copies ~dir () =
  if copies < 1 then invalid_arg "Scale_out.to_csv_dir: copies must be >= 1";
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let schema = Db.schema db in
  (* one reused buffer per pipeline slot: tiles render in parallel, the
     writer drains them sequentially in tile order, so the bytes on disk are
     identical to a sequential writer's and memory stays at one window of
     tiles regardless of [copies] *)
  let bufs = Array.init (Par.size pool) (fun _ -> Buffer.create (1 lsl 16)) in
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let names = Schema.column_names tbl in
      let oc = open_out (Filename.concat dir (tname ^ ".csv")) in
      output_string oc (String.concat "," names);
      output_char oc '\n';
      Par.iter_tiles pool ~tiles:copies
        ~render:(fun ~slot ~tile ->
          let buf = bufs.(slot) in
          render_tile buf db tbl ~tile;
          buf)
        ~write:(fun ~tile:_ buf -> Buffer.output_buffer oc buf);
      close_out oc)
    (Schema.tables schema)

(* [copies] tiles of one stored column as a single typed column;
   [offset_of t] is the key shift of tile [t] (0 for non-key columns) *)
let tile_col ~copies ~offset_of col =
  let n = Col.length col in
  let total = copies * n in
  let tile_nulls nulls =
    Option.map
      (fun b ->
        let ob = Col.Bitset.create total in
        for t = 0 to copies - 1 do
          let base = t * n in
          for i = 0 to n - 1 do
            if Col.Bitset.get b i then Col.Bitset.set ob (base + i)
          done
        done;
        ob)
      nulls
  in
  match col with
  | Col.Ints { data; nulls } ->
      let out = Array.make total 0 in
      for t = 0 to copies - 1 do
        let off = offset_of t in
        let base = t * n in
        if off = 0 then Array.blit data 0 out base n
        else for i = 0 to n - 1 do out.(base + i) <- data.(i) + off done
      done;
      Col.of_ints ?nulls:(tile_nulls nulls) out
  | Col.Floats { data; nulls } ->
      let out = Array.make total 0.0 in
      for t = 0 to copies - 1 do
        Array.blit data 0 out (t * n) n
      done;
      Col.of_floats ?nulls:(tile_nulls nulls) out
  | Col.Dict { codes; pool; nulls } ->
      let out = Array.make total 0 in
      for t = 0 to copies - 1 do
        Array.blit codes 0 out (t * n) n
      done;
      Col.dict ?nulls:(tile_nulls nulls) ~codes:out ~pool ()
  | Col.Boxed vs ->
      let shifted off =
        Array.map
          (function Value.Int x -> Value.Int (x + off) | v -> v)
          vs
      in
      Col.Boxed (Array.concat (List.init copies (fun t -> shifted (offset_of t))))

let tile_db ~db ~copies =
  if copies < 1 then invalid_arg "Scale_out.tile_db: copies must be >= 1";
  let schema = Db.schema db in
  let out = Db.create schema in
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let cols =
        List.map
          (fun c ->
            let col = Db.col db tname c in
            let offset_of =
              match List.assoc_opt c (key_offsets db tbl 1) with
              | Some per_tile -> fun t -> t * per_tile
              | None -> fun _ -> 0
            in
            (c, tile_col ~copies ~offset_of col))
          (Schema.column_names tbl)
      in
      Db.put_cols out tname cols)
    (Schema.tables schema);
  out

let scaled_rows db ~copies =
  List.map
    (fun (tbl : Schema.table) ->
      (tbl.Schema.tname, copies * Db.row_count db tbl.Schema.tname))
    (Schema.tables (Db.schema db))
