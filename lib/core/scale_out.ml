module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Db = Mirage_engine.Db
module Par = Mirage_par.Par

let shift_column ~is_key ~offset arr =
  if not is_key then arr
  else
    Array.map
      (fun v -> match v with Value.Int x -> Value.Int (x + offset) | other -> other)
      arr

(* columns of one tile of [tname], with keys shifted into the tile's range *)
let tile_columns db (tbl : Schema.table) t =
  let tname = tbl.Schema.tname in
  let n = Db.row_count db tname in
  let key_offsets =
    (tbl.Schema.pk, t * n)
    :: List.map
         (fun (f : Schema.fk) -> (f.Schema.fk_col, t * Db.row_count db f.Schema.references))
         tbl.Schema.fks
  in
  List.map
    (fun c ->
      let arr = Db.column db tname c in
      match List.assoc_opt c key_offsets with
      | Some offset -> shift_column ~is_key:true ~offset arr
      | None -> arr)
    (Schema.column_names tbl)

let add_cell buf = function
  | Value.Null -> ()
  | Value.Int x -> Buffer.add_string buf (string_of_int x)
  | Value.Float x -> Buffer.add_string buf (string_of_float x)
  | Value.Str s -> Buffer.add_string buf s

(* render one tile of [tbl] into [buf] (cleared first): no per-row
   [String.concat] — every cell goes straight into the reused buffer *)
let render_tile buf db tbl ~tile =
  Buffer.clear buf;
  let n = Db.row_count db tbl.Schema.tname in
  let cols = Array.of_list (tile_columns db tbl tile) in
  let ncols = Array.length cols in
  for i = 0 to n - 1 do
    for c = 0 to ncols - 1 do
      if c > 0 then Buffer.add_char buf ',';
      add_cell buf cols.(c).(i)
    done;
    Buffer.add_char buf '\n'
  done

let to_csv_dir ?(pool = Par.sequential) ~db ~copies ~dir () =
  if copies < 1 then invalid_arg "Scale_out.to_csv_dir: copies must be >= 1";
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let schema = Db.schema db in
  (* one reused buffer per pipeline slot: tiles render in parallel, the
     writer drains them sequentially in tile order, so the bytes on disk are
     identical to a sequential writer's and memory stays at one window of
     tiles regardless of [copies] *)
  let bufs = Array.init (Par.size pool) (fun _ -> Buffer.create (1 lsl 16)) in
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let names = Schema.column_names tbl in
      let oc = open_out (Filename.concat dir (tname ^ ".csv")) in
      output_string oc (String.concat "," names);
      output_char oc '\n';
      Par.iter_tiles pool ~tiles:copies
        ~render:(fun ~slot ~tile ->
          let buf = bufs.(slot) in
          render_tile buf db tbl ~tile;
          buf)
        ~write:(fun ~tile:_ buf -> Buffer.output_buffer oc buf);
      close_out oc)
    (Schema.tables schema)

let tile_db ~db ~copies =
  if copies < 1 then invalid_arg "Scale_out.tile_db: copies must be >= 1";
  let schema = Db.schema db in
  let out = Db.create schema in
  List.iter
    (fun (tbl : Schema.table) ->
      let names = Schema.column_names tbl in
      let tiles = List.init copies (fun t -> tile_columns db tbl t) in
      let cols =
        List.mapi
          (fun ci name -> (name, Array.concat (List.map (fun tile -> List.nth tile ci) tiles)))
          names
      in
      Db.put out tbl.Schema.tname cols)
    (Schema.tables schema);
  out

let scaled_rows db ~copies =
  List.map
    (fun (tbl : Schema.table) ->
      (tbl.Schema.tname, copies * Db.row_count db tbl.Schema.tname))
    (Schema.tables (Db.schema db))
