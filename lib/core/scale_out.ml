module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Col = Mirage_engine.Col
module Db = Mirage_engine.Db
module Render = Mirage_engine.Render
module Par = Mirage_par.Par

let cell_null nulls i =
  match nulls with Some b -> Col.Bitset.get b i | None -> false

(* key offset per column of [tbl] for tile [t]: pk shifts by t·|R|, each FK by
   t·|referenced table| *)
let key_offsets db (tbl : Schema.table) t =
  let n = Db.row_count db tbl.Schema.tname in
  (tbl.Schema.pk, t * n)
  :: List.map
       (fun (f : Schema.fk) ->
         (f.Schema.fk_col, t * Db.row_count db f.Schema.references))
       tbl.Schema.fks

(* hardened against concurrent creation (see Fsutil.mkdir_p); failures map
   to [Sink.Io_failure] so the CLI's exit-code-4 contract holds for every
   export path *)
let mkdir_p dir =
  Mirage_util.Fsutil.mkdir_p
    ~fail:(fun m -> Mirage_engine.Sink.Io_failure m)
    dir

(* --- line templates --------------------------------------------------------

   A tile differs from the base tile only at key cells (shifted by an integer
   per tile), so the base rows are rendered ONCE into [fixed] — every
   non-key cell, separator and newline, pre-escaped — leaving a splice point
   per non-null key cell.  Emitting tile [t] is then a strict alternation of
   memcpy (fragment i, ending at [ends.(i)]) and an in-place itoa of
   [base.(i) + t * per_tile.(which.(i))]: per-tile work is
   O(bytes + rows·key_cols) with no per-cell allocation, instead of
   re-rendering all O(rows·cols) cells through [string_of_int].

   Templates are immutable after construction and shared read-only across
   the domains of the tile pipeline. *)
type template = {
  fixed : Bytes.t;  (* all fixed fragments, concatenated in emit order *)
  ends : int array;  (* end offset in [fixed] of the fragment before splice i *)
  base : int array;  (* unshifted key value at splice i *)
  which : int array;  (* key slot of splice i, indexes [per_tile] *)
  per_tile : int array;  (* per key slot: key shift per tile *)
}

(* [?lo]/[?rows] restrict the template to a row window — chunked streaming
   builds one template per chunk, and concatenating the windows' emissions
   for a tile reproduces the whole-table template's bytes for that tile
   exactly (the window only bounds which base rows render; key shifts are
   still per whole-table tile) *)
let build_template ?(lo = 0) ?rows db (tbl : Schema.table) =
  let tname = tbl.Schema.tname in
  let n = Db.row_count db tname in
  let nrows = match rows with Some r -> r | None -> n - lo in
  let names = Schema.column_names tbl in
  (* key slots in key_offsets order; duplicate columns (a PK doubling as an
     FK) keep the first entry, matching the per-cell renderer's assoc lookup *)
  let slots = List.mapi (fun j (c, per) -> (c, (j, per))) (key_offsets db tbl 1) in
  let per_tile = Array.of_list (List.map (fun (_, (_, per)) -> per) slots) in
  let buf = Render.Buf.create (1 lsl 16) in
  let max_splices = nrows * Array.length per_tile in
  let s_end = Array.make max_splices 0
  and s_base = Array.make max_splices 0
  and s_which = Array.make max_splices 0 in
  let m = ref 0 in
  let splice which base =
    s_end.(!m) <- Render.Buf.length buf;
    s_base.(!m) <- base;
    s_which.(!m) <- which;
    incr m
  in
  (* one emitter per column, representation and key slot resolved once; key
     cells register a splice, everything else renders into the template *)
  let emitters =
    Array.of_list
      (List.map
         (fun c ->
           let col = Db.col db tname c in
           match (List.assoc_opt c slots, col) with
           | Some (j, _), Col.Ints { data; nulls } ->
               fun i -> if not (cell_null nulls i) then splice j data.(i)
           | Some (j, _), Col.Big_ints { data; nulls } ->
               fun i ->
                 if not (cell_null nulls i) then
                   splice j (Bigarray.Array1.unsafe_get data i)
           | Some (j, _), Col.Boxed vs -> (
               fun i ->
                 match vs.(i) with
                 | Value.Int x -> splice j x
                 | Value.Null -> ()
                 | Value.Float f -> Render.Buf.ftoa buf f
                 | Value.Str s -> Render.Buf.add_string buf (Render.csv_escape s))
           | _, Col.Ints { data; nulls } ->
               fun i -> if not (cell_null nulls i) then Render.Buf.itoa buf data.(i)
           | _, Col.Floats { data; nulls } ->
               fun i -> if not (cell_null nulls i) then Render.Buf.ftoa buf data.(i)
           | _, Col.Dict { codes; pool; nulls } ->
               let epool = Render.csv_pool pool in
               fun i ->
                 if not (cell_null nulls i) then
                   Render.Buf.add_string buf epool.(codes.(i))
           | _, Col.Big_ints { data; nulls } ->
               fun i ->
                 if not (cell_null nulls i) then
                   Render.Buf.itoa buf (Bigarray.Array1.unsafe_get data i)
           | _, Col.Big_floats { data; nulls } ->
               fun i ->
                 if not (cell_null nulls i) then
                   Render.Buf.ftoa buf (Bigarray.Array1.unsafe_get data i)
           | _, Col.Big_dict { codes; pool; nulls } ->
               let epool = Render.csv_pool pool in
               fun i ->
                 if not (cell_null nulls i) then
                   Render.Buf.add_string buf
                     epool.(Bigarray.Array1.unsafe_get codes i)
           | _, Col.Boxed vs -> (
               fun i ->
                 match vs.(i) with
                 | Value.Null -> ()
                 | Value.Int x -> Render.Buf.itoa buf x
                 | Value.Float f -> Render.Buf.ftoa buf f
                 | Value.Str s -> Render.Buf.add_string buf (Render.csv_escape s)))
         names)
  in
  let ncols = Array.length emitters in
  for i = lo to lo + nrows - 1 do
    for c = 0 to ncols - 1 do
      if c > 0 then Render.Buf.add_char buf ',';
      emitters.(c) i
    done;
    Render.Buf.add_char buf '\n'
  done;
  {
    fixed = Render.Buf.to_bytes buf;
    ends = Array.sub s_end 0 !m;
    base = Array.sub s_base 0 !m;
    which = Array.sub s_which 0 !m;
    per_tile;
  }

(* splice one tile into [buf] (cleared first): memcpy fragments verbatim,
   re-render only the shifted keys *)
let emit_tile buf tpl ~tile =
  Render.Buf.clear buf;
  let m = Array.length tpl.base in
  let offs = Array.map (fun per -> tile * per) tpl.per_tile in
  let pos = ref 0 in
  for i = 0 to m - 1 do
    let e = Array.unsafe_get tpl.ends i in
    Render.Buf.add_subbytes buf tpl.fixed ~pos:!pos ~len:(e - !pos);
    pos := e;
    Render.Buf.itoa buf
      (Array.unsafe_get tpl.base i
      + Array.unsafe_get offs (Array.unsafe_get tpl.which i))
  done;
  Render.Buf.add_subbytes buf tpl.fixed ~pos:!pos
    ~len:(Bytes.length tpl.fixed - !pos)

let csv_header names = String.concat "," (List.map Render.csv_escape names)

let to_csv_dir ?(pool = Par.sequential) ~db ~copies ~dir () =
  if copies < 1 then invalid_arg "Scale_out.to_csv_dir: copies must be >= 1";
  mkdir_p dir;
  let schema = Db.schema db in
  (* one reused buffer per pipeline slot ([Par.tile_slots], the pipeline's
     bounded lookahead): tiles splice in parallel from the shared template,
     the writer drains them in tile order while later tiles keep rendering,
     so the bytes on disk are identical to a sequential writer's and memory
     stays at one lookahead of tiles regardless of [copies] *)
  let bufs =
    Array.init (Par.tile_slots pool) (fun _ -> Render.Buf.create (1 lsl 16))
  in
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let tpl = build_template db tbl in
      let oc = open_out (Filename.concat dir (tname ^ ".csv")) in
      output_string oc (csv_header (Schema.column_names tbl));
      output_char oc '\n';
      Par.iter_tiles pool ~tiles:copies
        ~render:(fun ~slot ~tile ->
          let buf = bufs.(slot) in
          emit_tile buf tpl ~tile;
          buf)
        ~write:(fun ~tile:_ buf -> Render.Buf.output oc buf);
      close_out oc)
    (Schema.tables schema)

(* --- crash-safe chunked export ---------------------------------------------

   Same templates, same tile pipeline, but the bytes go through the Sink
   layer shard-at-a-time: shard [k] of a table holds a contiguous run of
   tiles sized to [chunk_rows], shard 0 additionally carries the header, so
   [cat table.csv.0 table.csv.1 ...] is byte-for-byte the monolithic
   [to_csv_dir] output.  Shards committed in the manifest are skipped
   without rendering — that, plus per-shard determinism, is what makes a
   resumed run byte-identical to an uninterrupted one. *)

module Sink = Mirage_engine.Sink
module Gz = Mirage_engine.Gz

type chunk_report = {
  cr_shards : int;
  cr_resumed : int;
  cr_bytes : int;
  cr_tables : (string * (int * int)) list;
}

let shard_name ?(compress = false) tname k =
  Printf.sprintf "%s.csv.%d%s" tname k (if compress then ".gz" else "")

(* table name of a committed shard: the prefix before ".csv." *)
let shard_table name =
  let n = String.length name in
  let rec find i =
    if i + 5 > n then n
    else if String.sub name i 5 = ".csv." then i
    else find (i + 1)
  in
  String.sub name 0 (find 0)

(* per-table (raw, on-disk) byte totals straight from the manifest — the CLI
   summary reads these instead of a second stat pass *)
let table_totals sink schema =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Sink.shard) ->
      let t = shard_table s.Sink.sh_name in
      let raw, disk =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tbl t)
      in
      Hashtbl.replace tbl t (raw + s.Sink.sh_raw, disk + s.Sink.sh_bytes))
    (Sink.completed sink);
  List.filter_map
    (fun (t : Schema.table) ->
      Option.map
        (fun b -> (t.Schema.tname, b))
        (Hashtbl.find_opt tbl t.Schema.tname))
    (Schema.tables schema)

(* run [body] with a payload writer: plain [Sink.put], or gzip-compressed
   with the raw byte count reported to the manifest *)
let with_payload ~compress w body =
  if not compress then
    body (fun b ~pos ~len -> Sink.put w b ~pos ~len)
  else begin
    let gz = Gz.create (fun b ~pos ~len -> Sink.put w b ~pos ~len) in
    body (fun b ~pos ~len ->
        Sink.add_raw w len;
        Gz.write gz b ~pos ~len);
    Gz.finish gz
  end

(* delete shards beyond [nshards] left by a previous run with a different
   chunk count (either compression form) — they would corrupt concatenation *)
let remove_surplus_shards ~dir tname nshards =
  List.iter
    (fun compress ->
      let j = ref nshards in
      while
        Sys.file_exists (Filename.concat dir (shard_name ~compress tname !j))
      do
        (try Sys.remove (Filename.concat dir (shard_name ~compress tname !j))
         with Sys_error _ -> ());
        incr j
      done)
    [ false; true ]

(* shard layout shared by the chunked and sharded writers: tables in schema
   order, [tiles_per_shard] tiles per shard, global [seq] in concatenation
   order *)
type shard_unit = {
  u_table : Schema.table;
  u_name : string;
  u_seq : int;
  u_lo : int;  (* first tile *)
  u_tiles : int;
  u_header : bool;
}

let shard_units ~db ~copies ~chunk_rows ~compress schema =
  let seq = ref 0 in
  List.concat_map
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let rows = Db.row_count db tname in
      let tiles_per_shard = max 1 (chunk_rows / max 1 rows) in
      let nshards = (copies + tiles_per_shard - 1) / tiles_per_shard in
      List.init nshards (fun k ->
          let lo = k * tiles_per_shard in
          let s = !seq in
          incr seq;
          {
            u_table = tbl;
            u_name = shard_name ~compress tname k;
            u_seq = s;
            u_lo = lo;
            u_tiles = min copies (lo + tiles_per_shard) - lo;
            u_header = k = 0;
          }))
    (Schema.tables schema)

(* --- live (per-table) export -------------------------------------------------

   The overlapped scheduler exports a table the moment its last FK edge
   commits, while other tables still generate.  A [live_export] is the
   shared state of such a run: the sink, the memoized shard layout, which
   tables have been claimed, and which shard names this generation attempt
   wrote (so an aborted attempt can retract exactly those).  [export_table]
   is idempotent and safe to call concurrently from pool tasks: each call
   owns its render buffers and its table's template, and all cross-call
   state is behind one mutex.  Rendering within one call still goes through
   the tile pipeline, so the sequential open → export-each-table → finish
   composition ([to_csv_chunked]) keeps the exact parallel structure — and
   bytes — of the old monolithic writer. *)

type live_export = {
  le_sink : Sink.t;
  le_pool : Par.pool;
  le_compress : bool;
  le_interrupt : unit -> unit;
  le_copies : int;
  le_chunk_rows : int;
  le_dir : string;
  le_m : Mutex.t;  (* guards the three mutable fields below *)
  mutable le_units : shard_unit list option;
      (* full shard layout, memoized at the first export: row counts are
         final once key generation starts, and the global [seq] needs every
         table's count *)
  le_claimed : (string, unit) Hashtbl.t;  (* tables exported (or in flight) *)
  mutable le_written : string list;  (* shards committed by this attempt *)
}

let le_locked h f =
  Mutex.lock h.le_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.le_m) f

let open_csv_export ?(pool = Par.sequential) ?backend ?(resume = false)
    ?(compress = false) ?(interrupt = fun () -> ()) ~copies ~chunk_rows ~dir
    ~run_id () =
  if copies < 1 then invalid_arg "Scale_out.open_csv_export: copies must be >= 1";
  if chunk_rows < 1 then
    invalid_arg "Scale_out.open_csv_export: chunk_rows must be >= 1";
  {
    le_sink = Sink.create ?backend ~resume ~dir ~run_id ();
    le_pool = pool;
    le_compress = compress;
    le_interrupt = interrupt;
    le_copies = copies;
    le_chunk_rows = chunk_rows;
    le_dir = dir;
    le_m = Mutex.create ();
    le_units = None;
    le_claimed = Hashtbl.create 8;
    le_written = [];
  }

let le_units h ~db =
  match h.le_units with
  | Some units -> units
  | None ->
      let units =
        shard_units ~db ~copies:h.le_copies ~chunk_rows:h.le_chunk_rows
          ~compress:h.le_compress (Db.schema db)
      in
      h.le_units <- Some units;
      units

(* render one shard into the sink — the body shared by every chunked
   writer.  [template] memoizes the whole-table template across the shards
   of one [export_table] call (never across calls, so concurrent exporters
   share nothing mutable). *)
let render_unit h ~db ~bufs ~template u =
  let compress = h.le_compress and interrupt = h.le_interrupt in
  let chunk_rows = h.le_chunk_rows in
  let rows = Db.row_count db u.u_table.Schema.tname in
  Sink.write_shard h.le_sink ~seq:u.u_seq ~name:u.u_name (fun w ->
      with_payload ~compress w (fun put ->
          if u.u_header then begin
            let hdr = csv_header (Schema.column_names u.u_table) ^ "\n" in
            put (Bytes.unsafe_of_string hdr) ~pos:0 ~len:(String.length hdr)
          end;
          if rows <= chunk_rows || rows < Col.big_rows () then begin
            (* the table fits one chunk, or its columns live on the
               heap anyway: the cached whole-table template is no
               asymptotic cost and avoids per-window rebuild churn *)
            let tpl = template u.u_table in
            Par.iter_tiles ~interrupt h.le_pool ~tiles:u.u_tiles
              ~render:(fun ~slot ~tile ->
                let buf = bufs.(slot) in
                emit_tile buf tpl ~tile:(u.u_lo + tile);
                buf)
              ~write:(fun ~tile:_ buf ->
                put (Render.Buf.unsafe_bytes buf) ~pos:0
                  ~len:(Render.Buf.length buf))
          end
          else begin
            (* [rows > chunk_rows] forces tiles_per_shard = 1, so this
               shard is exactly tile [u.u_lo].  The pipeline's work
               item becomes the chunk: each slot builds the template
               for its own row window and splices the tile's shift
               into it, the in-order drain concatenates the windows —
               byte-for-byte what the whole-table template would have
               emitted, at O(chunk) resident bytes per slot. *)
            let ranges = Chunk_plan.ranges ~rows ~chunk_rows in
            Par.iter_tiles ~interrupt h.le_pool ~tiles:(Array.length ranges)
              ~render:(fun ~slot ~tile:ci ->
                let lo, len = ranges.(ci) in
                let tpl = build_template ~lo ~rows:len db u.u_table in
                let buf = bufs.(slot) in
                emit_tile buf tpl ~tile:u.u_lo;
                buf)
              ~write:(fun ~tile:_ buf ->
                put (Render.Buf.unsafe_bytes buf) ~pos:0
                  ~len:(Render.Buf.length buf))
          end))

let export_table h ~db tname =
  let claim =
    le_locked h (fun () ->
        if Hashtbl.mem h.le_claimed tname then None
        else begin
          Hashtbl.replace h.le_claimed tname ();
          Some
            (List.filter
               (fun u -> u.u_table.Schema.tname = tname)
               (le_units h ~db))
        end)
  in
  match claim with
  | None -> ()
  | Some units -> (
      let bufs =
        Array.init (Par.tile_slots h.le_pool) (fun _ ->
            Render.Buf.create (1 lsl 16))
      in
      let tpl = ref None in
      let template tbl =
        match !tpl with
        | Some t -> t
        | None ->
            let t = build_template db tbl in
            tpl := Some t;
            t
      in
      let written = ref [] in
      match
        List.iter
          (fun u ->
            h.le_interrupt ();
            if not (Sink.is_done h.le_sink u.u_name) then begin
              render_unit h ~db ~bufs ~template u;
              written := u.u_name :: !written
            end)
          units;
        remove_surplus_shards ~dir:h.le_dir tname (List.length units)
      with
      | () -> le_locked h (fun () -> h.le_written <- !written @ h.le_written)
      | exception e ->
          (* release the claim so the finish pass retries the table; the
             shards already committed stay recorded for a possible abort *)
          le_locked h (fun () ->
              Hashtbl.remove h.le_claimed tname;
              h.le_written <- !written @ h.le_written);
          raise e)

let abort_csv_export h =
  let names =
    le_locked h (fun () ->
        let names = h.le_written in
        h.le_written <- [];
        Hashtbl.reset h.le_claimed;
        names)
  in
  Sink.forget h.le_sink names

let finish_csv_export h ~db =
  let schema = Db.schema db in
  List.iter
    (fun (tbl : Schema.table) -> export_table h ~db tbl.Schema.tname)
    (Schema.tables schema);
  let units = le_locked h (fun () -> le_units h ~db) in
  Sink.finish h.le_sink;
  {
    cr_shards = List.length units;
    cr_resumed = Sink.resumed_shards h.le_sink;
    cr_bytes = Sink.bytes_written h.le_sink;
    cr_tables = table_totals h.le_sink schema;
  }

let to_csv_chunked ?(pool = Par.sequential) ?backend ?(resume = false)
    ?(compress = false) ?(interrupt = fun () -> ()) ~db ~copies ~chunk_rows
    ~dir ~run_id () =
  if copies < 1 then invalid_arg "Scale_out.to_csv_chunked: copies must be >= 1";
  if chunk_rows < 1 then
    invalid_arg "Scale_out.to_csv_chunked: chunk_rows must be >= 1";
  let h =
    open_csv_export ~pool ?backend ~resume ~compress ~interrupt ~copies
      ~chunk_rows ~dir ~run_id ()
  in
  finish_csv_export h ~db

(* --- domain-owned sharded export --------------------------------------------

   Same shard layout (and therefore the same concatenation bytes) as
   [to_csv_chunked], but the shard is the unit of parallelism instead of the
   tile: each worker slot owns one render buffer and an exclusive output
   stream for whichever shard it claims, renders that shard's tiles
   sequentially into its own [Sink.write_shard], and commits with the usual
   temp-file + rename + CRC protocol.  The serial drain of the tile
   pipeline disappears — N domains hold N shard files open and write
   concurrently — while [seq] keeps the manifest in concatenation order, so
   resume and concatenation semantics are unchanged. *)

let to_csv_sharded ?(pool = Par.sequential) ?backend ?(resume = false)
    ?(compress = false) ?(interrupt = fun () -> ()) ~db ~copies ~chunk_rows
    ~dir ~run_id () =
  if copies < 1 then invalid_arg "Scale_out.to_csv_sharded: copies must be >= 1";
  if chunk_rows < 1 then
    invalid_arg "Scale_out.to_csv_sharded: chunk_rows must be >= 1";
  let sink = Sink.create ?backend ~resume ~dir ~run_id () in
  let schema = Db.schema db in
  let units =
    Array.of_list (shard_units ~db ~copies ~chunk_rows ~compress schema)
  in
  let pending =
    Array.to_list units
    |> List.filter (fun u -> not (Sink.is_done sink u.u_name))
    |> Array.of_list
  in
  (* whole-table templates (for tables that fit one chunk, or whose columns
     are heap-resident anyway) are forced eagerly: [Lazy.force] is not safe
     across domains, and every pending small table will need its template
     anyway.  Genuinely big tables build their chunk templates inside the
     claiming worker instead. *)
  let tpls = Hashtbl.create 8 in
  Array.iter
    (fun u ->
      let tname = u.u_table.Schema.tname in
      let rows = Db.row_count db tname in
      if
        (rows <= chunk_rows || rows < Col.big_rows ())
        && not (Hashtbl.mem tpls tname)
      then Hashtbl.replace tpls tname (build_template db u.u_table))
    pending;
  let next = Atomic.make 0 in
  let stopped = Atomic.make false in
  Par.run_workers pool (fun _slot ->
      let buf = Render.Buf.create (1 lsl 16) in
      try
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= Array.length pending || Atomic.get stopped then
            continue := false
          else begin
            interrupt ();
            let u = pending.(i) in
            let rows = Db.row_count db u.u_table.Schema.tname in
            Sink.write_shard sink ~seq:u.u_seq ~name:u.u_name (fun w ->
                with_payload ~compress w (fun put ->
                    if u.u_header then begin
                      let hdr =
                        csv_header (Schema.column_names u.u_table) ^ "\n"
                      in
                      put (Bytes.unsafe_of_string hdr) ~pos:0
                        ~len:(String.length hdr)
                    end;
                    if rows <= chunk_rows || rows < Col.big_rows () then begin
                      let tpl = Hashtbl.find tpls u.u_table.Schema.tname in
                      for tile = u.u_lo to u.u_lo + u.u_tiles - 1 do
                        interrupt ();
                        emit_tile buf tpl ~tile;
                        put (Render.Buf.unsafe_bytes buf) ~pos:0
                          ~len:(Render.Buf.length buf)
                      done
                    end
                    else
                      (* single-tile shard (see to_csv_chunked): stream the
                         tile's row windows so this worker's resident bytes
                         stay O(chunk) *)
                      Array.iter
                        (fun (lo, len) ->
                          interrupt ();
                          let tpl = build_template ~lo ~rows:len db u.u_table in
                          emit_tile buf tpl ~tile:u.u_lo;
                          put (Render.Buf.unsafe_bytes buf) ~pos:0
                            ~len:(Render.Buf.length buf))
                        (Chunk_plan.ranges ~rows ~chunk_rows)))
          end
        done
      with e ->
        (* first failure stops the other workers from claiming new shards;
           in-flight shards abort at their own interrupt poll or I/O error *)
        Atomic.set stopped true;
        raise e);
  List.iter
    (fun (tbl : Schema.table) ->
      let nshards =
        Array.fold_left
          (fun acc u ->
            if u.u_table.Schema.tname = tbl.Schema.tname then acc + 1 else acc)
          0 units
      in
      remove_surplus_shards ~dir tbl.Schema.tname nshards)
    (Schema.tables schema);
  Sink.finish sink;
  {
    cr_shards = Array.length units;
    cr_resumed = Sink.resumed_shards sink;
    cr_bytes = Sink.bytes_written sink;
    cr_tables = table_totals sink schema;
  }

(* exact CSV output size without rendering: fixed template bytes per tile
   plus the decimal width of every spliced key — the uniform basis for the
   bench harness's mb_per_s *)
let decimal_width x =
  if x = 0 then 1
  else begin
    let n = ref (if x < 0 then 1 else 0) in
    let x = ref (abs x) in
    while !x > 0 do
      incr n;
      x := !x / 10
    done;
    !n
  end

let csv_bytes ?chunk_rows ~db ~copies () =
  if copies < 1 then invalid_arg "Scale_out.csv_bytes: copies must be >= 1";
  let chunk_rows =
    match chunk_rows with
    | Some c ->
        if c < 1 then invalid_arg "Scale_out.csv_bytes: chunk_rows must be >= 1";
        c
    | None -> Col.big_rows ()
  in
  List.fold_left
    (fun acc (tbl : Schema.table) ->
      let rows = Db.row_count db tbl.Schema.tname in
      let header = String.length (csv_header (Schema.column_names tbl)) + 1 in
      let total = ref header in
      (* template per row window, never per whole table — the count is a
         sum over (window, tile) cells, so the order change vs the old
         whole-table template is invisible in the total *)
      Array.iter
        (fun (lo, len) ->
          let tpl = build_template ~lo ~rows:len db tbl in
          let fixed = Bytes.length tpl.fixed in
          let m = Array.length tpl.base in
          for t = 0 to copies - 1 do
            let splices = ref 0 in
            for i = 0 to m - 1 do
              splices :=
                !splices
                + decimal_width
                    (Array.unsafe_get tpl.base i
                    + t
                      * Array.unsafe_get tpl.per_tile
                          (Array.unsafe_get tpl.which i))
            done;
            total := !total + fixed + !splices
          done)
        (Chunk_plan.ranges ~rows ~chunk_rows);
      acc + !total)
    0
    (Schema.tables (Db.schema db))

(* --- reference renderer -----------------------------------------------------

   The pre-template per-cell renderer, kept verbatim (same per-cell
   [string_of_int] allocation profile) with only the cell formatting policy
   updated to the shared kernel's, so the differential tests and the [emit]
   benchmark compare templated splicing against exactly what it replaced. *)
module Reference = struct
  let add_cell buf = function
    | Value.Null -> ()
    | Value.Int x -> Buffer.add_string buf (string_of_int x)
    | Value.Float x -> Buffer.add_string buf (Render.float_repr x)
    | Value.Str s -> Buffer.add_string buf (Render.csv_escape s)

  (* per-column CSV cell writer: the representation (and the tile's key
     offset) is resolved once, not per cell; key columns are integer, so only
     the [Ints] and [Boxed] arms apply the offset *)
  let cell_renderer buf ~offset col =
    match col with
    | Col.Ints { data; nulls } ->
        fun i ->
          if not (cell_null nulls i) then
            Buffer.add_string buf (string_of_int (data.(i) + offset))
    | Col.Floats { data; nulls } ->
        fun i ->
          if not (cell_null nulls i) then
            Buffer.add_string buf (Render.float_repr data.(i))
    | Col.Dict { codes; pool; nulls } ->
        let epool = Render.csv_pool pool in
        fun i ->
          if not (cell_null nulls i) then Buffer.add_string buf epool.(codes.(i))
    | Col.Big_ints { data; nulls } ->
        fun i ->
          if not (cell_null nulls i) then
            Buffer.add_string buf
              (string_of_int (Bigarray.Array1.get data i + offset))
    | Col.Big_floats { data; nulls } ->
        fun i ->
          if not (cell_null nulls i) then
            Buffer.add_string buf (Render.float_repr (Bigarray.Array1.get data i))
    | Col.Big_dict { codes; pool; nulls } ->
        let epool = Render.csv_pool pool in
        fun i ->
          if not (cell_null nulls i) then
            Buffer.add_string buf epool.(Bigarray.Array1.get codes i)
    | Col.Boxed vs -> (
        fun i ->
          match vs.(i) with
          | Value.Int x -> Buffer.add_string buf (string_of_int (x + offset))
          | v -> add_cell buf v)

  (* render one tile of [tbl] into [buf] (cleared first), re-rendering every
     cell through allocating conversions *)
  let render_tile buf db tbl ~tile =
    Buffer.clear buf;
    let tname = tbl.Schema.tname in
    let n = Db.row_count db tname in
    let offsets = key_offsets db tbl tile in
    let renderers =
      Array.of_list
        (List.map
           (fun c ->
             let offset =
               match List.assoc_opt c offsets with Some o -> o | None -> 0
             in
             cell_renderer buf ~offset (Db.col db tname c))
           (Schema.column_names tbl))
    in
    let ncols = Array.length renderers in
    for i = 0 to n - 1 do
      for c = 0 to ncols - 1 do
        if c > 0 then Buffer.add_char buf ',';
        renderers.(c) i
      done;
      Buffer.add_char buf '\n'
    done

  let to_csv_dir ?(pool = Par.sequential) ~db ~copies ~dir () =
    if copies < 1 then
      invalid_arg "Scale_out.Reference.to_csv_dir: copies must be >= 1";
    mkdir_p dir;
    let schema = Db.schema db in
    let bufs =
      Array.init (Par.tile_slots pool) (fun _ -> Buffer.create (1 lsl 16))
    in
    List.iter
      (fun (tbl : Schema.table) ->
        let tname = tbl.Schema.tname in
        let oc = open_out (Filename.concat dir (tname ^ ".csv")) in
        output_string oc (csv_header (Schema.column_names tbl));
        output_char oc '\n';
        Par.iter_tiles pool ~tiles:copies
          ~render:(fun ~slot ~tile ->
            let buf = bufs.(slot) in
            render_tile buf db tbl ~tile;
            buf)
          ~write:(fun ~tile:_ buf -> Buffer.output_buffer oc buf);
        close_out oc)
      (Schema.tables schema)
end

(* [copies] tiles of one stored column as a single typed column;
   [offset_of t] is the key shift of tile [t] (0 for non-key columns) *)
let tile_col ~copies ~offset_of col =
  let n = Col.length col in
  let total = copies * n in
  let tile_nulls nulls =
    Option.map
      (fun b ->
        let ob = Col.Bitset.create total in
        for t = 0 to copies - 1 do
          let base = t * n in
          for i = 0 to n - 1 do
            if Col.Bitset.get b i then Col.Bitset.set ob (base + i)
          done
        done;
        ob)
      nulls
  in
  match col with
  | Col.Ints { data; nulls } ->
      let out = Array.make total 0 in
      for t = 0 to copies - 1 do
        let off = offset_of t in
        let base = t * n in
        if off = 0 then Array.blit data 0 out base n
        else for i = 0 to n - 1 do out.(base + i) <- data.(i) + off done
      done;
      Col.of_ints ?nulls:(tile_nulls nulls) out
  | Col.Floats { data; nulls } ->
      let out = Array.make total 0.0 in
      for t = 0 to copies - 1 do
        Array.blit data 0 out (t * n) n
      done;
      Col.of_floats ?nulls:(tile_nulls nulls) out
  | Col.Dict { codes; pool; nulls } ->
      let out = Array.make total 0 in
      for t = 0 to copies - 1 do
        Array.blit codes 0 out (t * n) n
      done;
      Col.dict ?nulls:(tile_nulls nulls) ~codes:out ~pool ()
  | Col.Big_ints { data; nulls } ->
      let out = Col.alloc_int_big total in
      for t = 0 to copies - 1 do
        let off = offset_of t in
        let base = t * n in
        for i = 0 to n - 1 do
          Bigarray.Array1.unsafe_set out (base + i)
            (Bigarray.Array1.unsafe_get data i + off)
        done
      done;
      Col.Big_ints { data = out; nulls = tile_nulls nulls }
  | Col.Big_floats { data; nulls } ->
      let out = Col.alloc_float_big total in
      for t = 0 to copies - 1 do
        let base = t * n in
        for i = 0 to n - 1 do
          Bigarray.Array1.unsafe_set out (base + i)
            (Bigarray.Array1.unsafe_get data i)
        done
      done;
      Col.Big_floats { data = out; nulls = tile_nulls nulls }
  | Col.Big_dict { codes; pool; nulls } ->
      let out = Col.alloc_int_big total in
      for t = 0 to copies - 1 do
        let base = t * n in
        for i = 0 to n - 1 do
          Bigarray.Array1.unsafe_set out (base + i)
            (Bigarray.Array1.unsafe_get codes i)
        done
      done;
      Col.Big_dict { codes = out; pool; nulls = tile_nulls nulls }
  | Col.Boxed vs ->
      (* offset-0 tiles reuse the source array — Array.concat copies, so
         sharing is safe and the common unshifted case allocates nothing
         beyond the concatenation itself *)
      let shifted off =
        if off = 0 then vs
        else
          Array.map
            (function Value.Int x -> Value.Int (x + off) | v -> v)
            vs
      in
      Col.Boxed (Array.concat (List.init copies (fun t -> shifted (offset_of t))))

let tile_db ~db ~copies =
  if copies < 1 then invalid_arg "Scale_out.tile_db: copies must be >= 1";
  let schema = Db.schema db in
  let out = Db.create schema in
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let cols =
        List.map
          (fun c ->
            let col = Db.col db tname c in
            let offset_of =
              match List.assoc_opt c (key_offsets db tbl 1) with
              | Some per_tile -> fun t -> t * per_tile
              | None -> fun _ -> 0
            in
            (c, tile_col ~copies ~offset_of col))
          (Schema.column_names tbl)
      in
      Db.put_cols out tname cols)
    (Schema.tables schema);
  out

let scaled_rows db ~copies =
  List.map
    (fun (tbl : Schema.table) ->
      (tbl.Schema.tname, copies * Db.row_count db tbl.Schema.tname))
    (Schema.tables (Db.schema db))
