module Pred = Mirage_sql.Pred
module Plan = Mirage_relalg.Plan

type scc = {
  scc_table : string;
  scc_pred : Pred.t;
  scc_rows : int;
  scc_source : string;
}

type ucc = {
  ucc_table : string;
  ucc_col : string;
  ucc_lit : Pred.literal;
  ucc_rows : int;
  ucc_source : string;
}

type acc = {
  acc_table : string;
  acc_expr : Pred.arith;
  acc_cmp : Pred.cmp;
  acc_param : string;
  acc_rows : int;
  acc_source : string;
}

type bound_rows = {
  br_table : string;
  br_cells : (string * string) list;
  br_rows : int;
  br_source : string;
}

type child_view =
  | Cv_full of string
  | Cv_select of { cv_table : string; cv_pred : Pred.t }
  | Cv_subplan of { cv_plan : Plan.t; cv_table : string }

type edge = { e_pk_table : string; e_fk_table : string; e_fk_col : string }

type join_constraint = {
  jc_edge : edge;
  jc_left : child_view;
  jc_right : child_view;
  jc_jcc : int option;
  jc_jdc : int option;
  jc_source : string;
}

type t = {
  sccs : scc list;
  joins : join_constraint list;
  table_cards : (string * int) list;
  column_cards : ((string * string) * int) list;
  param_elements : (string * (Mirage_sql.Value.t * int) list) list;
}

let child_view_table = function
  | Cv_full t -> t
  | Cv_select { cv_table; _ } -> cv_table
  | Cv_subplan { cv_table; _ } -> cv_table

let pp_child_view ppf = function
  | Cv_full t -> Fmt.pf ppf "%s" t
  | Cv_select { cv_table; cv_pred } ->
      Fmt.pf ppf "σ[%a](%s)" Pred.pp cv_pred cv_table
  | Cv_subplan { cv_table; _ } -> Fmt.pf ppf "⟨subplan⟩→%s" cv_table

let pp_join_constraint ppf jc =
  Fmt.pf ppf "%s: %a ⋈ %a on %s.%s jcc=%a jdc=%a" jc.jc_source pp_child_view
    jc.jc_left pp_child_view jc.jc_right jc.jc_edge.e_fk_table
    jc.jc_edge.e_fk_col
    Fmt.(option ~none:(any "-") int)
    jc.jc_jcc
    Fmt.(option ~none:(any "-") int)
    jc.jc_jdc

let pp ppf t =
  Fmt.pf ppf "tables:@.";
  List.iter (fun (n, c) -> Fmt.pf ppf "  |%s| = %d@." n c) t.table_cards;
  Fmt.pf ppf "selections:@.";
  List.iter
    (fun s ->
      Fmt.pf ppf "  %s: |σ[%a](%s)| = %d@." s.scc_source Pred.pp s.scc_pred
        s.scc_table s.scc_rows)
    t.sccs;
  Fmt.pf ppf "joins:@.";
  List.iter (fun jc -> Fmt.pf ppf "  %a@." pp_join_constraint jc) t.joins
