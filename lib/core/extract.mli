(** The workload parser (§3, Fig. 4): executes the (rewritten) templates on
    the production database and collects every cardinality constraint in
    {!Ir.t} form, plus fully annotated AQTs of the {e original} plans for
    later verification. *)

type extraction = {
  ir : Ir.t;
  aqts : Mirage_relalg.Aqt.t list;
      (** original plans, every view annotated with its production output
          size — the ground truth used to measure simulation error *)
  rewritten :
    (string * Mirage_relalg.Plan.t * Mirage_relalg.Plan.t list) list;
      (** per query: rewritten plan and auxiliary complement plans *)
}

val run :
  Workload.t ->
  ref_db:Mirage_engine.Db.t ->
  prod_env:Mirage_sql.Pred.Env.t ->
  extraction
(** @raise Rewrite.Unsupported when a template cannot be pushed down. *)

val child_view_of : table:string -> Mirage_relalg.Plan.t -> Ir.child_view
(** Classify a join child subtree (exposed for tests). *)
