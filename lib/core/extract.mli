(** The workload parser (§3, Fig. 4): executes the (rewritten) templates on
    the production database and collects every cardinality constraint in
    {!Ir.t} form, plus fully annotated AQTs of the {e original} plans for
    later verification. *)

type extraction = {
  ir : Ir.t;
  aqts : Mirage_relalg.Aqt.t list;
      (** original plans, every view annotated with its production output
          size — the ground truth used to measure simulation error *)
  rewritten :
    (string * Mirage_relalg.Plan.t * Mirage_relalg.Plan.t list) list;
      (** per query: rewritten plan and auxiliary complement plans *)
  diags : Diag.t list;
      (** per-query extraction failures: a template the rewriter cannot push
          down is skipped (reported Unsupported) instead of aborting *)
}

val run :
  Workload.t ->
  ref_db:Mirage_engine.Db.t ->
  prod_env:Mirage_sql.Pred.Env.t ->
  extraction
(** A template that cannot be pushed down or analysed contributes no
    constraints; the failure is recorded in [diags]. *)

val child_view_of : table:string -> Mirage_relalg.Plan.t -> Ir.child_view
(** Classify a join child subtree (exposed for tests). *)
