(** Query rewriting (§3): push selection operators below joins so that the
    dependency between key and non-key columns becomes unidirectional.

    Two relational-algebra transformations are applied:
    - a CNF clause whose columns all belong to one side of a join is pushed
      into that side (Example 3.2);
    - a single clause that mixes both sides (an OR across the join, which
      cannot be pushed) is replaced by its complement
      [σ_{¬P_S}(S) ⋈ σ_{¬P_T}(T)], emitted as an auxiliary {e generation-only}
      plan whose join cardinality equals [n₁ − n₂] (Example 3.1).  The
      auxiliary plan's own annotations (the [n₃], [n₄], [n₁ − n₂] of the
      paper) are obtained by the workload parser executing it on the
      production database.

    The rewritten plan is used only during generation; the user's original
    plan and all its constraints remain what is verified (§3). *)

exception Unsupported of string

type result = {
  rw_plan : Mirage_relalg.Plan.t;  (** all selects directly above base tables *)
  rw_aux : Mirage_relalg.Plan.t list;  (** auxiliary complement plans *)
  rw_marginals : (string * Mirage_sql.Pred.t) list;
      (** (table, predicate) marginal selection counts the workload parser
          must fetch from the production database: negated literals whose
          side already carries a selection stay nested in the auxiliary plan
          and need their own instantiating constraint *)
}

val push_down : Mirage_sql.Schema.t -> Mirage_relalg.Plan.t -> result
(** @raise Unsupported for predicates that cannot be decomposed (a literal
    spanning both join sides, or more than one mixed OR clause above one
    join). *)

val is_pushed_down : Mirage_relalg.Plan.t -> bool
(** True when every select's input is a base table or another select over
    one (the invariant [push_down] establishes). *)
