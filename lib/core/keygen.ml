module Pred = Mirage_sql.Pred
module Value = Mirage_sql.Value
module Schema = Mirage_sql.Schema
module Plan = Mirage_relalg.Plan
module Col = Mirage_engine.Col
module Db = Mirage_engine.Db
module Exec = Mirage_engine.Exec
module Rel = Mirage_engine.Rel
module Rng = Mirage_util.Rng
module Par = Mirage_par.Par
module Cp = Mirage_cp.Cp

type stage_times = {
  mutable t_cs : float;
  mutable t_cp : float;
  mutable t_pf : float;
  mutable cp_solves : int;
  mutable cp_nodes : int;
  mutable cp_restarts : int;
  mutable cp_props : int;
  mutable cp_cache_hits : int;
  mutable batch_alloc_bytes : int;
      (* largest allocation volume of a single batch: the working set the
         paper's Fig. 14 trades off against CP rounds *)
}

let fresh_times () =
  { t_cs = 0.0; t_cp = 0.0; t_pf = 0.0; cp_solves = 0; cp_nodes = 0;
    cp_restarts = 0; cp_props = 0; cp_cache_hits = 0; batch_alloc_bytes = 0 }

(* fold [src] into [acc]: the overlap scheduler gives each edge task its own
   counter record (so concurrent edges never race on one) and merges them in
   topological edge order afterwards — same totals as the shared record the
   barrier path threads through every call *)
let add_times acc src =
  acc.t_cs <- acc.t_cs +. src.t_cs;
  acc.t_cp <- acc.t_cp +. src.t_cp;
  acc.t_pf <- acc.t_pf +. src.t_pf;
  acc.cp_solves <- acc.cp_solves + src.cp_solves;
  acc.cp_nodes <- acc.cp_nodes + src.cp_nodes;
  acc.cp_restarts <- acc.cp_restarts + src.cp_restarts;
  acc.cp_props <- acc.cp_props + src.cp_props;
  acc.cp_cache_hits <- acc.cp_cache_hits + src.cp_cache_hits;
  acc.batch_alloc_bytes <- max acc.batch_alloc_bytes src.batch_alloc_bytes

let now () = Unix.gettimeofday ()

(* Membership vectors are bitsets — 1 bit per row instead of the 8 bytes a
   [bool array] element costs, so the 2m child-view vectors of a wide edge
   stay negligible next to the table itself. *)
let membership ~db ~env ~table view =
  let n = Db.row_count db table in
  match view with
  | Ir.Cv_full t ->
      if t <> table then invalid_arg "Keygen.membership: table mismatch";
      let b = Col.Bitset.create n in
      for i = 0 to n - 1 do
        Col.Bitset.set b i
      done;
      b
  | Ir.Cv_select { cv_table; cv_pred } ->
      if cv_table <> table then invalid_arg "Keygen.membership: table mismatch";
      Exec.select_mask db ~env ~table cv_pred
  | Ir.Cv_subplan { cv_plan; cv_table } ->
      if cv_table <> table then invalid_arg "Keygen.membership: table mismatch";
      let rel = Exec.run db ~env cv_plan in
      let pk_col = (Schema.table (Db.schema db) table).Schema.pk in
      let set = Rel.int_set rel pk_col in
      let b = Col.Bitset.create n in
      (match Db.col db table pk_col with
      | Col.Ints { data; nulls = None } ->
          for i = 0 to n - 1 do
            if Hashtbl.mem set data.(i) then Col.Bitset.set b i
          done
      | Col.Big_ints { data; nulls = None } ->
          for i = 0 to n - 1 do
            if Hashtbl.mem set (Bigarray.Array1.unsafe_get data i) then
              Col.Bitset.set b i
          done
      | col ->
          for i = 0 to n - 1 do
            match Col.get col i with
            | Value.Int v -> if Hashtbl.mem set v then Col.Bitset.set b i
            | _ -> ()
          done);
      b

(* Exact proportional split of a remaining total across a batch:
   [alloc] rows of [total_left] are assigned to a batch holding
   [batch_view] of the view's [view_left] remaining rows, clamped so the
   rest stays feasible. *)
let split_alloc ~total_left ~view_left ~batch_view =
  if view_left = 0 then 0
  else begin
    let ideal = total_left * batch_view / view_left in
    let min_needed = max 0 (total_left - (view_left - batch_view)) in
    let alloc = max ideal min_needed in
    min alloc (min batch_view total_left)
  end

(* check that a subplan does not join on the FK column being populated *)
let rec subplan_uses_fk fk_col = function
  | Plan.Table _ -> false
  | Plan.Select (_, q) | Plan.Project { input = q; _ } | Plan.Aggregate { input = q; _ }
    ->
      subplan_uses_fk fk_col q
  | Plan.Join { fk_col = c; left; right; _ } ->
      c = fk_col || subplan_uses_fk fk_col left || subplan_uses_fk fk_col right

exception Key_error of string

(* proved-infeasible population system: carries the conflicting constraint
   sources (an IIS-style subset) so the driver can quarantine the offending
   queries and regenerate the rest *)
exception Key_conflict of string list * string

type failure = { kf_diag : Diag.t; kf_culprits : string list }

let populate_edge ?(lp_guide = true) ?(sparsify = true) ?(capacity_repair = true)
    ?(pool = Par.sequential) ?cache ?(interrupt = fun () -> ()) ?(overlap = false)
    ~rng ~db ~env ~edge ~constraints ~batch_size ~cp_max_nodes ~times () =
  (* solve-ahead window (overlap mode): batch [b]'s FK fill runs as a pool
     task while batch [b+1]'s model builds and solves.  At most one fill is
     in flight; every exit path drains it before returning so no task
     outlives the call *)
  let pending = ref None in
  let await_pending () =
    match !pending with
    | None -> ()
    | Some fut ->
        pending := None;
        Par.Future.await fut
  in
  let drain_quiet () =
    (* on an error path the prepare-side exception wins; a secondary fill
       failure concerns state we are about to discard *)
    match !pending with
    | None -> ()
    | Some fut -> (
        pending := None;
        try Par.Future.await fut with _ -> ())
  in
  try
    let s_table = edge.Ir.e_pk_table and t_table = edge.Ir.e_fk_table in
    (* per-edge counter snapshots, reported as an info diagnostic below *)
    let edge_solves0 = times.cp_solves and edge_hits0 = times.cp_cache_hits in
    let edge_nodes0 = times.cp_nodes and edge_props0 = times.cp_props in
    let edge_tcp0 = times.t_cp in
    let n_s = Db.row_count db s_table and n_t = Db.row_count db t_table in
    let m = List.length constraints in
    if m > 60 then raise (Key_error "too many join constraints on one edge (max 60)");
    let constraints = Array.of_list constraints in
    (* --- CS: status vectors --------------------------------------------- *)
    let t0 = now () in
    Array.iter
      (fun jc ->
        let check = function
          | Ir.Cv_subplan { cv_plan; _ } ->
              if subplan_uses_fk edge.Ir.e_fk_col cv_plan then
                raise
                  (Key_error
                     (Printf.sprintf "constraint %s: child view depends on %s itself"
                        jc.Ir.jc_source edge.Ir.e_fk_col))
          | Ir.Cv_full _ | Ir.Cv_select _ -> ()
        in
        check jc.Ir.jc_left;
        check jc.Ir.jc_right)
      constraints;
    (* the 2m child-view membership vectors are independent read-only scans
       of the synthetic database — compute them as one parallel region, one
       task per vector (results land by index, so order is deterministic) *)
    let memberships =
      Par.init pool ~chunks:(2 * m) (2 * m) (fun idx ->
          let jc = constraints.(idx / 2) in
          if idx land 1 = 0 then membership ~db ~env ~table:s_table jc.Ir.jc_left
          else membership ~db ~env ~table:t_table jc.Ir.jc_right)
    in
    let left_member = Array.init m (fun k -> memberships.(2 * k)) in
    let right_member = Array.init m (fun k -> memberships.((2 * k) + 1)) in
    (* per-row work here is a handful of bit tests — with the default chunk
       count a small table pays more in queue wakeups than in vector
       building, so floor the chunks at [vec_grain] rows each (tiny regions
       collapse to one inline chunk; boundaries stay domain-independent).
       Status vectors are Ivecs: above the big-rows threshold they live
       off-heap, and disjoint-index writes are domain-safe. *)
    let vec_grain = 4096 in
    let status_vec member n =
      let v = Col.Ivec.make n 0 in
      Par.iter_chunks pool ~grain:vec_grain n (fun lo hi ->
          for i = lo to hi do
            let x = ref 0 in
            for k = 0 to m - 1 do
              if Col.Bitset.get member.(k) i then x := !x lor (1 lsl k)
            done;
            Col.Ivec.unsafe_set v i !x
          done);
      v
    in
    let s_vec = status_vec left_member n_s in
    let t_vec = status_vec right_member n_t in
    let s_pk_col =
      Db.col db s_table (Schema.table (Db.schema db) s_table).Schema.pk
    in
    (* unboxed pk reader: anything but a non-null integer is a hard error *)
    let s_pk_at =
      match s_pk_col with
      | Col.Ints { data; nulls = None } -> fun i -> data.(i)
      | Col.Big_ints { data; nulls = None } ->
          fun i -> Bigarray.Array1.unsafe_get data i
      | Col.Ints { data; nulls = Some b } ->
          fun i ->
            if Col.Bitset.get b i then
              raise (Key_error "non-integer primary key")
            else data.(i)
      | col -> (
          fun i ->
            match Col.get col i with
            | Value.Int pk -> pk
            | _ -> raise (Key_error "non-integer primary key"))
    in
    (* S partitions: vector -> shuffled pk pool + allocation cursor.  Pools
       are Ivecs filled by a counting pass (no per-row cons cells) and sized
       exactly. *)
    let s_counts = Hashtbl.create 16 in
    for i = 0 to n_s - 1 do
      let v = Col.Ivec.unsafe_get s_vec i in
      Hashtbl.replace s_counts v
        (1 + Option.value ~default:0 (Hashtbl.find_opt s_counts v))
    done;
    let s_partitions =
      Hashtbl.fold (fun v c acc -> (v, c) :: acc) s_counts []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map (fun (v, c) -> (v, Col.Ivec.make c 0, ref 0))
      |> Array.of_list
    in
    let part_idx = Hashtbl.create 16 in
    Array.iteri (fun k (v, _, _) -> Hashtbl.replace part_idx v k) s_partitions;
    let fill = Array.make (Array.length s_partitions) 0 in
    for i = 0 to n_s - 1 do
      let k = Hashtbl.find part_idx (Col.Ivec.unsafe_get s_vec i) in
      let _, pks, _ = s_partitions.(k) in
      Col.Ivec.set pks fill.(k) (s_pk_at i);
      fill.(k) <- fill.(k) + 1
    done;
    (* Shuffle each pool in [s_counts] enumeration order: the historical
       code shuffled inside a Hashtbl.fold over a table built by the same
       key-insertion sequence, so iterating this table reproduces the exact
       RNG draw order — the committed goldens depend on it. *)
    Hashtbl.iter
      (fun v _ ->
        let _, pks, _ = s_partitions.(Hashtbl.find part_idx v) in
        Rng.shuffle_swap rng (Col.Ivec.length pks) (fun i j ->
            let tmp = Col.Ivec.get pks i in
            Col.Ivec.set pks i (Col.Ivec.get pks j);
            Col.Ivec.set pks j tmp))
      s_counts;
    times.t_cs <- times.t_cs +. (now () -. t0);
    (* total view sizes on the synthetic side *)
    let vr_total = Array.init m (fun k -> Col.Bitset.count right_member.(k)) in
    let vl_total = Array.init m (fun k -> Col.Bitset.count left_member.(k)) in
    (* §6: when sampling-based instantiation leaves a child view smaller than
       its constraint, resize the constraint to the largest satisfiable value
       — the relative error stays within the sampling bound δ. *)
    let resized = ref [] in
    let jcc_left =
      Array.mapi
        (fun k jc ->
          ref
            (Option.map
               (fun n ->
                 (* when the left view covers all of S, every right-view row
                    matches: jcc is forced to |V̂_r| *)
                 let n' =
                   if vl_total.(k) = n_s then vr_total.(k)
                   else min n vr_total.(k)
                 in
                 if n' <> n then
                   resized :=
                     Diag.warning ~table:t_table ~query:jc.Ir.jc_source
                       Diag.Keygen "jcc %d resized to %d" n n'
                     :: !resized;
                 n')
               jc.Ir.jc_jcc))
        constraints
    in
    let jdc_left =
      Array.mapi
        (fun k jc ->
          ref
            (Option.map
               (fun n ->
                 let cap =
                   match !(jcc_left.(k)) with
                   | Some jcc -> min jcc (min vl_total.(k) vr_total.(k))
                   | None -> min vl_total.(k) vr_total.(k)
                 in
                 let floor_1 =
                   (* matched pairs need at least one distinct PK *)
                   match !(jcc_left.(k)) with
                   | Some jcc when jcc > 0 -> 1
                   | _ -> 0
                 in
                 let n' = max floor_1 (min n cap) in
                 if n' <> n then
                   resized :=
                     Diag.warning ~table:t_table ~query:jc.Ir.jc_source
                       Diag.Keygen "jdc %d resized to %d" n n'
                     :: !resized;
                 n')
               jc.Ir.jc_jdc))
        constraints
    in
    let vr_left = Array.init m (fun k -> ref vr_total.(k)) in
    (* every row of T is covered by exactly one partition below, so the whole
       vector is overwritten before it is returned; as an Ivec, an enormous
       FK column fills directly off-heap *)
    let fk = Col.Ivec.make n_t 0 in
    (* unconstrained rows draw any PK: an accessor, not a copy, so a big PK
       column is never re-materialised on the heap *)
    let all_pk_at =
      match s_pk_col with
      | Col.Ints { data; nulls = None } -> fun i -> Array.unsafe_get data i
      | Col.Big_ints { data; nulls = None } ->
          fun i -> Bigarray.Array1.unsafe_get data i
      | col ->
          fun i -> ( match Col.get col i with Value.Int pk -> pk | _ -> 0)
    in
    if n_s = 0 then raise (Key_error "referenced table is empty");
    (* --- batch loop ------------------------------------------------------ *)
    let n_batches = (n_t + batch_size - 1) / batch_size in
    for b = 0 to n_batches - 1 do
      interrupt ();
      let alloc0 = Gc.allocated_bytes () in
      let lo = b * batch_size and hi = min n_t ((b + 1) * batch_size) - 1 in
      (* T partitions restricted to the batch *)
      let t_parts = Hashtbl.create 16 in
      for i = lo to hi do
        let v = Col.Ivec.unsafe_get t_vec i in
        let cur = try Hashtbl.find t_parts v with Not_found -> [] in
        Hashtbl.replace t_parts v (i :: cur)
      done;
      let t_partitions =
        Hashtbl.fold (fun v rows acc -> (v, Array.of_list (List.rev rows)) :: acc) t_parts []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> Array.of_list
      in
      (* batch share of each view and of each constraint *)
      let batch_vr =
        Array.init m (fun k ->
            let c = ref 0 in
            for i = lo to hi do
              if Col.Bitset.get right_member.(k) i then incr c
            done;
            !c)
      in
      let jcc_batch = Array.make m None and jdc_batch = Array.make m None in
      for k = 0 to m - 1 do
        (match !(jcc_left.(k)) with
        | Some left ->
            let a =
              split_alloc ~total_left:left ~view_left:!(vr_left.(k))
                ~batch_view:batch_vr.(k)
            in
            jcc_batch.(k) <- Some a
        | None -> ());
        match !(jdc_left.(k)) with
        | Some left -> (
            match jcc_batch.(k) with
            | Some jcc_b ->
                (* JDC rides along with the JCC share.  A batch carrying
                   matched pairs needs at least one distinct PK; the clamp may
                   overshoot the total slightly — this is the paper's
                   batch-induced error source (§8, Fig. 11 discussion). *)
                let jcc_total_left =
                  match !(jcc_left.(k)) with Some l -> l | None -> jcc_b
                in
                let ideal =
                  if jcc_total_left = 0 then 0
                  else (left * jcc_b) + (jcc_total_left / 2)
                in
                let ideal = if jcc_total_left = 0 then 0 else ideal / jcc_total_left in
                let lo = if jcc_b > 0 then 1 else 0 in
                let hi = jcc_b in
                let min_needed =
                  (* the rest of the view cannot absorb more than what is left *)
                  max 0 (left - (jcc_total_left - jcc_b))
                in
                let a = min hi (max lo (max ideal min_needed)) in
                jdc_batch.(k) <- Some a
            | None ->
                let a =
                  split_alloc ~total_left:left ~view_left:!(vr_left.(k))
                    ~batch_view:batch_vr.(k)
                in
                jdc_batch.(k) <- Some a)
        | None -> ()
      done;
      (* --- CP: build and solve the model ---------------------------------
         Two phases, mirroring how CP-SAT exploits structure: phase 1 decides
         the population counts x_ij (covers + JCC sums + aggregate JDC lower
         bounds); phase 2, with x fixed, decides the distinct counts d_ij
         (JDC sums + composability/expressibility bounds + coverability).
         This removes the x–d coupling from the search. *)
      let t1 = now () in
      let np_s = Array.length s_partitions and np_t = Array.length t_partitions in
      let debug = Sys.getenv_opt "MIRAGE_DEBUG" <> None in
      if debug then begin
        Printf.eprintf "edge %s.%s batch %d: %d S-parts %d T-parts\n" t_table
          edge.Ir.e_fk_col b np_s np_t;
        Array.iteri
          (fun i (sv, pks, cur) ->
            Printf.eprintf "  S[%d] vec=%d size=%d cursor=%d\n" i sv
              (Col.Ivec.length pks) !cur)
          s_partitions;
        Array.iteri
          (fun j (tv, rows) ->
            Printf.eprintf "  T[%d] vec=%d size=%d\n" j tv (Array.length rows))
          t_partitions;
        for k = 0 to m - 1 do
          Printf.eprintf "  k=%d (%s) jcc_b=%s jdc_b=%s vr_b=%d\n" k
            constraints.(k).Ir.jc_source
            (match jcc_batch.(k) with Some x -> string_of_int x | None -> "-")
            (match jdc_batch.(k) with Some x -> string_of_int x | None -> "-")
            batch_vr.(k)
        done
      end;
      let jdc_pair i j =
        let sv, _, _ = s_partitions.(i) and tv, _ = t_partitions.(j) in
        let found = ref false in
        for k = 0 to m - 1 do
          if
            !(jdc_left.(k)) <> None
            && sv land (1 lsl k) <> 0
            && tv land (1 lsl k) <> 0
          then found := true
        done;
        !found
      in
      let pairs_of k =
        let bit v = v land (1 lsl k) <> 0 in
        List.concat_map
          (fun i ->
            let sv, _, _ = s_partitions.(i) in
            if bit sv then
              List.filter_map
                (fun j ->
                  let tv, _ = t_partitions.(j) in
                  if bit tv then Some (i, j) else None)
                (List.init np_t (fun j -> j))
            else [])
          (List.init np_s (fun i -> i))
      in
      (* ---- phase 1: x ----
         The model builder is parameterised over a per-constraint exclusion
         mask so the IIS-style deletion filter below can re-solve without
         individual annotations; the cover equalities are structural (they
         encode the batch partition sizes) and are always kept. *)
      let build_model1 excluded =
        let model1 = Cp.create () in
        let xs = Array.make_matrix np_s np_t None in
        for j = 0 to np_t - 1 do
          let tv, rows = t_partitions.(j) in
          if tv <> 0 then
            for i = 0 to np_s - 1 do
              xs.(i).(j) <-
                Some
                  (Cp.var model1
                     ~name:(Printf.sprintf "x_%d_%d" i j)
                     ~lo:0 ~hi:(Array.length rows))
            done
        done;
        for j = 0 to np_t - 1 do
          let tv, rows = t_partitions.(j) in
          if tv <> 0 then begin
            let terms =
              List.filter_map
                (fun i -> match xs.(i).(j) with Some x -> Some (1, x) | None -> None)
                (List.init np_s (fun i -> i))
            in
            Cp.linear_eq model1 terms (Array.length rows)
          end
        done;
        for k = 0 to m - 1 do
          if not excluded.(k) then begin
            let terms =
              List.filter_map
                (fun (i, j) -> Option.map (fun x -> (1, x)) xs.(i).(j))
                (pairs_of k)
            in
            (match jcc_batch.(k) with
            | Some target -> Cp.linear_eq model1 terms target
            | None -> ());
            match jdc_batch.(k) with
            | Some target ->
                (* matched pairs must at least reach the distinct count *)
                Cp.linear_le model1 (List.map (fun (c, v) -> (-c, v)) terms) (-target);
                (* pool-capacity awareness, as LP-only rows: the distinct PKs
                   drawable from S_i toward this view are at most
                   min(pool_i, Σ_{j∈Vr_k} x_ij); auxiliary y_{k,i} ≤ both with
                   Σ_i y_{k,i} ≥ jdc_k shapes the LP guide so phase 2 stays
                   feasible, without burdening the integer search *)
                let bit v = v land (1 lsl k) <> 0 in
                let ys = ref [] in
                for i = 0 to np_s - 1 do
                  let sv, pks, cursor = s_partitions.(i) in
                  if bit sv then begin
                    let pool = Col.Ivec.length pks - !cursor in
                    let row_terms =
                      List.filter_map
                        (fun j ->
                          let tv, _ = t_partitions.(j) in
                          if bit tv then Option.map (fun x -> (1, x)) xs.(i).(j)
                          else None)
                        (List.init np_t (fun j -> j))
                    in
                    if row_terms <> [] && pool > 0 then begin
                      let y =
                        Cp.var model1 ~aux:true
                          ~name:(Printf.sprintf "y_%d_%d" k i)
                          ~lo:0 ~hi:pool
                      in
                      Cp.lp_linear_le model1
                        ((1, y) :: List.map (fun (c, v) -> (-c, v)) row_terms)
                        0;
                      ys := (1, y) :: !ys
                    end
                  end
                done;
                if !ys <> [] then
                  Cp.lp_linear_le model1
                    (List.map (fun (c, v) -> (-c, v)) !ys)
                    (-target)
            | None -> ()
          end
        done;
        (* LP-guide objective: keep population mass off JDC-view pairs so
           distinct-count capacity is not wasted (free pairs absorb it) *)
        let obj = ref [] in
        for i = 0 to np_s - 1 do
          for j = 0 to np_t - 1 do
            if jdc_pair i j then
              match xs.(i).(j) with Some x -> obj := (1, x) :: !obj | None -> ()
          done
        done;
        Cp.set_objective model1 !obj;
        (model1, xs)
      in
      let model1, xs = build_model1 (Array.make m false) in
      (* Soft fallback when the exact system is infeasible (overlapping view
         requirements can contradict each other on the synthetic joint
         distribution): an LP minimising the total JCC violation, with the
         covers kept hard and restored exactly by per-cover largest-remainder
         rounding.  Residual deviations are reported. *)
      let solve_x_soft () =
        let pair_list = ref [] in
        for j = 0 to np_t - 1 do
          let tv, _ = t_partitions.(j) in
          if tv <> 0 then
            for i = 0 to np_s - 1 do
              pair_list := (i, j) :: !pair_list
            done
        done;
        let pairs = Array.of_list (List.rev !pair_list) in
        let np = Array.length pairs in
        let index = Hashtbl.create np in
        Array.iteri (fun q (i, j) -> Hashtbl.replace index (i, j) q) pairs;
        let jccs =
          List.filter_map
            (fun k -> match jcc_batch.(k) with Some t -> Some (k, t) | None -> None)
            (List.init m (fun k -> k))
        in
        let n_slack = 2 * List.length jccs in
        let covers =
          List.filter_map
            (fun j ->
              let tv, rows = t_partitions.(j) in
              if tv <> 0 then Some (j, Array.length rows) else None)
            (List.init np_t (fun j -> j))
        in
        let rows_n = List.length covers + List.length jccs in
        let a = Array.make_matrix rows_n (np + n_slack) 0.0 in
        let bvec = Array.make rows_n 0.0 in
        let c = Array.make (np + n_slack) 0.0 in
        List.iteri
          (fun r (j, size) ->
            Array.iteri
              (fun q (_, j') -> if j' = j then a.(r).(q) <- 1.0)
              pairs;
            bvec.(r) <- float_of_int size)
          covers;
        List.iteri
          (fun kk (k, target) ->
            let r = List.length covers + kk in
            List.iter
              (fun (i, j) ->
                match Hashtbl.find_opt index (i, j) with
                | Some q -> a.(r).(q) <- 1.0
                | None -> ())
              (pairs_of k);
            (* Σx + s⁻ − s⁺ = target, minimise s⁻ + s⁺ *)
            a.(r).(np + (2 * kk)) <- 1.0;
            a.(r).(np + (2 * kk) + 1) <- -1.0;
            c.(np + (2 * kk)) <- 1.0;
            c.(np + (2 * kk) + 1) <- 1.0;
            bvec.(r) <- float_of_int target)
          jccs;
        match Mirage_lp.Lp.solve ~a ~b:bvec ~c () with
        | Mirage_lp.Lp.Optimal x ->
            let xsol = Array.make_matrix np_s np_t 0 in
            List.iter
              (fun (j, size) ->
                let qidx =
                  Array.to_list pairs
                  |> List.mapi (fun q (i, j') -> (q, i, j'))
                  |> List.filter (fun (_, _, j') -> j' = j)
                in
                let vals = Array.of_list (List.map (fun (q, _, _) -> x.(q)) qidx) in
                let ints = Mirage_lp.Lp.round_preserving_sum vals ~total:size in
                List.iteri (fun idx (_, i, _) -> xsol.(i).(j) <- ints.(idx)) qidx)
              covers;
            (* report residual violations *)
            List.iter
              (fun (k, target) ->
                let s =
                  List.fold_left (fun acc (i, j) -> acc + xsol.(i).(j)) 0 (pairs_of k)
                in
                if s <> target then
                  resized :=
                    Diag.warning ~table:t_table
                      ~query:constraints.(k).Ir.jc_source Diag.Keygen
                      "jcc deviates by %d (soft fallback)" (s - target)
                    :: !resized)
              jccs;
            Some xsol
        | Mirage_lp.Lp.Infeasible | Mirage_lp.Lp.Unbounded -> None
      in
      let record_stats st =
        times.cp_solves <- times.cp_solves + 1;
        match st with
        | None -> times.cp_cache_hits <- times.cp_cache_hits + 1
        | Some st ->
            times.cp_nodes <- times.cp_nodes + st.Cp.st_nodes;
            times.cp_restarts <- times.cp_restarts + st.Cp.st_restarts;
            times.cp_props <- times.cp_props + st.Cp.st_props
      in
      let active_ks =
        List.filter
          (fun k -> jcc_batch.(k) <> None || jdc_batch.(k) <> None)
          (List.init m (fun k -> k))
      in
      (* IIS-style deletion filter (run only on a proved-Unsat system): drop
         one annotation at a time, cumulatively, and re-solve; an annotation
         whose removal stops the Unsat proof is load-bearing and stays in the
         conflict set.  An Unknown during filtering keeps the annotation
         (conservative: the result is a superset of an IIS). *)
      let conflict_culprits () =
        let excluded = Array.make m false in
        let budget = min cp_max_nodes 50_000 in
        List.iter
          (fun k ->
            excluded.(k) <- true;
            let mdl, _ = build_model1 excluded in
            match Solve_cache.solve ?cache ~max_nodes:budget ~interrupt mdl with
            | Cp.Unsat, st -> record_stats st
            | (Cp.Sat _ | Cp.Unknown), st ->
                record_stats st;
                excluded.(k) <- false)
          active_ks;
        List.filter_map
          (fun k ->
            if excluded.(k) then None else Some constraints.(k).Ir.jc_source)
          active_ks
        |> List.sort_uniq compare
      in
      let xsol =
        match Solve_cache.solve ?cache ~max_nodes:cp_max_nodes ~interrupt model1 with
        | Cp.Sat sol1, st ->
            record_stats st;
            let xsol = Array.make_matrix np_s np_t 0 in
            for i = 0 to np_s - 1 do
              for j = 0 to np_t - 1 do
                match xs.(i).(j) with Some v -> xsol.(i).(j) <- sol1 v | None -> ()
              done
            done;
            xsol
        | Cp.Unsat, st ->
            record_stats st;
            let culprits = conflict_culprits () in
            raise
              (Key_conflict
                 ( culprits,
                   Printf.sprintf
                     "population constraints proved infeasible (batch %d); \
                      conflicting annotations: %s"
                     b
                     (match culprits with
                     | [] -> "(none isolated)"
                     | cs -> String.concat ", " cs) ))
        | Cp.Unknown, st -> (
            record_stats st;
            match solve_x_soft () with
            | Some xsol -> xsol
            | None ->
                raise
                  (Key_conflict
                     ( List.sort_uniq compare
                         (List.map
                            (fun k -> constraints.(k).Ir.jc_source)
                            active_ks),
                       Printf.sprintf
                         "population CP unsolved within node budget (batch %d)" b
                     )))
      in
      (* JDC sparsification: a positive JDC pair consumes at least one
         distinct PK from S_i's pool, so shift population mass from JDC pairs
         onto JCC-signature-compatible non-JDC pairs in the same cover
         column.  This is the integral counterpart of the LP-guide objective
         and keeps distinct-count capacity for the views that need it. *)
      let jcc_signature sv tv =
        let s = ref 0 in
        for k = 0 to m - 1 do
          if jcc_batch.(k) <> None && sv land (1 lsl k) <> 0 && tv land (1 lsl k) <> 0
          then s := !s lor (1 lsl k)
        done;
        !s
      in
      let jdc_view_x_sum k =
        List.fold_left (fun acc (i, j) -> acc + xsol.(i).(j)) 0 (pairs_of k)
      in
      let pool_of i =
        let _, pks, cursor = s_partitions.(i) in
        Col.Ivec.length pks - !cursor
      in
      let view_x k i =
        let bit v = v land (1 lsl k) <> 0 in
        let sv, _, _ = s_partitions.(i) in
        if not (bit sv) then 0
        else begin
          let s = ref 0 in
          for j = 0 to np_t - 1 do
            let tv, _ = t_partitions.(j) in
            if bit tv then s := !s + xsol.(i).(j)
          done;
          !s
        end
      in
      let achievable k =
        let s = ref 0 in
        for i = 0 to np_s - 1 do
          s := !s + min (pool_of i) (view_x k i)
        done;
        !s
      in
      (* per-view health: (total reaches target, pool-capped capacity reaches
         target); moves must never turn a true into a false *)
      let view_state () =
        Array.init m (fun k ->
            match jdc_batch.(k) with
            | Some target ->
                (jdc_view_x_sum k >= target, achievable k >= target)
            | None -> (true, true))
      in
      let degraded before after =
        let bad = ref false in
        Array.iteri
          (fun k (t0, a0) ->
            let t1, a1 = after.(k) in
            if (t0 && not t1) || (a0 && not a1) then bad := true)
          before;
        !bad
      in
      for j = 0 to np_t - 1 do
        let tv, _ = t_partitions.(j) in
        if sparsify && tv <> 0 then
          for i = 0 to np_s - 1 do
            if xsol.(i).(j) > 0 && jdc_pair i j then begin
              let sv, _, _ = s_partitions.(i) in
              let want = jcc_signature sv tv in
              let target = ref (-1) in
              for i' = 0 to np_s - 1 do
                if !target = -1 && i' <> i then begin
                  let sv', _, _ = s_partitions.(i') in
                  if (not (jdc_pair i' j)) && jcc_signature sv' tv = want then
                    target := i'
                end
              done;
              match !target with
              | -1 -> ()
              | i' ->
                  (* tentatively move, then re-validate every JDC view's
                     matched-pair lower bound *)
                  let before = view_state () in
                  let moved = xsol.(i).(j) in
                  xsol.(i).(j) <- 0;
                  xsol.(i').(j) <- xsol.(i').(j) + moved;
                  (* the move must not degrade any JDC view's total or its
                     pool-capped achievability *)
                  if degraded before (view_state ()) then begin
                    xsol.(i).(j) <- moved;
                    xsol.(i').(j) <- xsol.(i').(j) - moved
                  end
            end
          done
      done;
      (* Capacity repair: a JDC view can draw at most
         Σ_i min(pool_i, Σ_{j∈view} x_ij) distinct PKs.  When that falls
         short of the target, shift x within a cover column from a
         pool-starved partition to a signature-compatible partition with
         spare pool, re-validating every view after each move. *)
      for k = 0 to m - 1 do
        match jdc_batch.(k) with
        | None -> ()
        | Some target ->
            let bit v = v land (1 lsl k) <> 0 in
            let guard = ref (if capacity_repair then 0 else 200) in
            while achievable k < target && !guard < 200 do
              incr guard;
              let moved = ref false in
              (* donor: surplus beyond its pool; receiver: spare pool *)
              for a = 0 to np_s - 1 do
                if (not !moved) && view_x k a > pool_of a then
                  for j = 0 to np_t - 1 do
                    let tv, _ = t_partitions.(j) in
                    let sva, _, _ = s_partitions.(a) in
                    if
                      (not !moved) && bit tv && bit sva && xsol.(a).(j) > 0
                    then
                      for b = 0 to np_s - 1 do
                        let svb, _, _ = s_partitions.(b) in
                        if
                          (not !moved) && b <> a && bit svb
                          && view_x k b < pool_of b
                          && jcc_signature sva tv = jcc_signature svb tv
                        then begin
                          let amount =
                            min xsol.(a).(j)
                              (min (view_x k a - pool_of a) (pool_of b - view_x k b))
                          in
                          if amount > 0 then begin
                            let before = view_state () in
                            xsol.(a).(j) <- xsol.(a).(j) - amount;
                            xsol.(b).(j) <- xsol.(b).(j) + amount;
                            if degraded before (view_state ()) then begin
                              (* undo: the move starved another view *)
                              xsol.(a).(j) <- xsol.(a).(j) + amount;
                              xsol.(b).(j) <- xsol.(b).(j) - amount
                            end
                            else moved := true
                          end
                        end
                      done
                  done
              done;
              (* 2-opt: when no signature-compatible single move exists,
                 exchange mass on two columns (a→b on j, b→a on j'), which
                 cancels the JCC effects; verified by snapshotting the sums *)
              if not !moved then begin
                let jcc_sums () =
                  Array.init m (fun k' ->
                      match jcc_batch.(k') with
                      | Some _ ->
                          List.fold_left
                            (fun acc (i, j) -> acc + xsol.(i).(j))
                            0 (pairs_of k')
                      | None -> 0)
                in
                for a = 0 to np_s - 1 do
                  if (not !moved) && view_x k a > pool_of a then
                    for j = 0 to np_t - 1 do
                      let tv_j, _ = t_partitions.(j) in
                      let sva, _, _ = s_partitions.(a) in
                      if (not !moved) && bit tv_j && bit sva && xsol.(a).(j) > 0 then
                        for b = 0 to np_s - 1 do
                          let svb, _, _ = s_partitions.(b) in
                          if (not !moved) && b <> a && bit svb && view_x k b < pool_of b
                          then
                            for j' = 0 to np_t - 1 do
                              if (not !moved) && j' <> j && xsol.(b).(j') > 0 then begin
                                let amount =
                                  min
                                    (min xsol.(a).(j) xsol.(b).(j'))
                                    (min (view_x k a - pool_of a)
                                       (pool_of b - view_x k b))
                                in
                                if amount > 0 then begin
                                  let before = view_state () in
                                  let sums0 = jcc_sums () in
                                  let ach0 = achievable k in
                                  xsol.(a).(j) <- xsol.(a).(j) - amount;
                                  xsol.(b).(j) <- xsol.(b).(j) + amount;
                                  xsol.(b).(j') <- xsol.(b).(j') - amount;
                                  xsol.(a).(j') <- xsol.(a).(j') + amount;
                                  if
                                    jcc_sums () <> sums0
                                    || degraded before (view_state ())
                                    || achievable k <= ach0
                                  then begin
                                    xsol.(a).(j) <- xsol.(a).(j) + amount;
                                    xsol.(b).(j) <- xsol.(b).(j) - amount;
                                    xsol.(b).(j') <- xsol.(b).(j') + amount;
                                    xsol.(a).(j') <- xsol.(a).(j') - amount
                                  end
                                  else moved := true
                                end
                              end
                            done
                        done
                    done
                done
              end;
              if not !moved then guard := 200
            done
      done;
      (* best-effort distinct counts when the exact CP is infeasible: start
         every positive JDC pair at one PK, clamp to pools, then walk the
         views adjusting toward their targets.  Residual deviations are
         reported (they are the analogue of the paper's bounded batch
         errors). *)
      let greedy_distinct () =
        let d = Array.make_matrix np_s np_t 0 in
        let used = Array.make np_s 0 in
        let pool i =
          let _, pks, cursor = s_partitions.(i) in
          Col.Ivec.length pks - !cursor
        in
        for i = 0 to np_s - 1 do
          for j = 0 to np_t - 1 do
            if jdc_pair i j && xsol.(i).(j) > 0 && used.(i) < pool i then begin
              d.(i).(j) <- 1;
              used.(i) <- used.(i) + 1
            end
          done
        done;
        for k = 0 to m - 1 do
          match jdc_batch.(k) with
          | None -> ()
          | Some target ->
              let view = List.filter (fun (i, j) -> jdc_pair i j) (pairs_of k) in
              let current () =
                List.fold_left (fun acc (i, j) -> acc + d.(i).(j)) 0 view
              in
              (* raise d where capacity remains *)
              let progress = ref true in
              while current () < target && !progress do
                progress := false;
                List.iter
                  (fun (i, j) ->
                    if
                      current () < target
                      && d.(i).(j) < xsol.(i).(j)
                      && used.(i) < pool i
                    then begin
                      d.(i).(j) <- d.(i).(j) + 1;
                      used.(i) <- used.(i) + 1;
                      progress := true
                    end)
                  view
              done;
              (* lower d where the view overshot (keeping the 1-per-positive
                 floor) *)
              let progress = ref true in
              while current () > target && !progress do
                progress := false;
                List.iter
                  (fun (i, j) ->
                    if current () > target && d.(i).(j) > 1 then begin
                      d.(i).(j) <- d.(i).(j) - 1;
                      used.(i) <- used.(i) - 1;
                      progress := true
                    end)
                  view
              done;
              let dev = current () - target in
              if dev <> 0 then
                resized :=
                  Diag.warning ~table:t_table
                    ~query:constraints.(k).Ir.jc_source Diag.Keygen
                    "jdc deviates by %d (best-effort fallback)" dev
                  :: !resized
        done;
        d
      in
      (* ---- phase 2: d (only when JDC constraints are present) ---- *)
      let dsol = Array.make_matrix np_s np_t None in
      let any_jdc = Array.exists (fun r -> r <> None) jdc_batch in
      if any_jdc then begin
        let model2 = Cp.create () in
        let ds = Array.make_matrix np_s np_t None in
        for i = 0 to np_s - 1 do
          for j = 0 to np_t - 1 do
            if jdc_pair i j then begin
              let _, pks, cursor = s_partitions.(i) in
              let x = xsol.(i).(j) in
              let hi = min x (Col.Ivec.length pks - !cursor) in
              let lo = min (if x > 0 then 1 else 0) hi in
              if hi >= 0 then
                ds.(i).(j) <-
                  Some (Cp.var model2 ~name:(Printf.sprintf "d_%d_%d" i j) ~lo ~hi)
            end
          done
        done;
        for k = 0 to m - 1 do
          match jdc_batch.(k) with
          | Some target ->
              let terms =
                List.filter_map
                  (fun (i, j) -> Option.map (fun d -> (1, d)) ds.(i).(j))
                  (pairs_of k)
              in
              Cp.linear_eq model2 terms target
          | None -> ()
        done;
        for i = 0 to np_s - 1 do
          let _, pks, cursor = s_partitions.(i) in
          let terms =
            List.filter_map
              (fun j -> match ds.(i).(j) with Some d -> Some (1, d) | None -> None)
              (List.init np_t (fun j -> j))
          in
          if terms <> [] then Cp.linear_le model2 terms (Col.Ivec.length pks - !cursor)
        done;
        let apply_greedy () =
          let d = greedy_distinct () in
          for i = 0 to np_s - 1 do
            for j = 0 to np_t - 1 do
              if d.(i).(j) >= 1 then dsol.(i).(j) <- Some d.(i).(j)
            done
          done
        in
        match Solve_cache.solve ?cache ~max_nodes:cp_max_nodes ~lp_guide model2 with
        | Cp.Sat sol2, st ->
            record_stats st;
            for i = 0 to np_s - 1 do
              for j = 0 to np_t - 1 do
                match ds.(i).(j) with
                | Some d -> dsol.(i).(j) <- Some (sol2 d)
                | None -> ()
              done
            done
        | (Cp.Unsat | Cp.Unknown), st ->
            record_stats st;
            if debug then begin
                for i = 0 to np_s - 1 do
                  let sv, pks, cursor = s_partitions.(i) in
                  let pos = ref [] in
                  for j = 0 to np_t - 1 do
                    if xsol.(i).(j) > 0 && jdc_pair i j then
                      pos := (j, xsol.(i).(j)) :: !pos
                  done;
                  Printf.eprintf "  S[%d] vec=%d pool=%d posjdc=[%s]\n" i sv
                    (Col.Ivec.length pks - !cursor)
                    (String.concat ","
                       (List.map (fun (j, x) -> Printf.sprintf "T%d:%d" j x) !pos))
                done;
                for k = 0 to m - 1 do
                  match jdc_batch.(k) with
                  | Some target ->
                      let lo_sum = ref 0 and hi_sum = ref 0 in
                      List.iter
                        (fun (i, j) ->
                          if jdc_pair i j then begin
                            let _, pks, cursor = s_partitions.(i) in
                            let x = xsol.(i).(j) in
                            if x > 0 then incr lo_sum;
                            hi_sum := !hi_sum + min x (Col.Ivec.length pks - !cursor)
                          end)
                        (pairs_of k);
                      Printf.eprintf "  k=%d jdc=%d achievable=[%d,%d]\n" k target
                        !lo_sum !hi_sum
                  | None -> ()
                done
              end;
            apply_greedy ()
      end;
      times.t_cp <- times.t_cp +. (now () -. t1);
      (* --- PF: populate foreign keys -------------------------------------
         A sequential reservation pass walks the T-partitions in index order
         and claims distinct-PK slices from the (global, cross-batch)
         S-partition cursors, exactly as the sequential writer did; the
         fills — value materialisation, shuffle, writes into [fk] — then run
         as one parallel region, one task per T-partition, each driven by an
         RNG stream derived from the partition index.  T-partitions are
         disjoint row sets, so the writes are race-free, and stream-indexed
         RNGs make the output bit-identical for any domain count. *)
      let t2 = now () in
      let pf_rng = Rng.split rng in
      (* (pks, offset, d, x): emit x FKs; d >= 1 cycles the d fresh distinct
         PKs at [offset]; d = 0 cycles the partition's whole pool *)
      let plans =
        Array.init np_t (fun j ->
            let tv, _ = t_partitions.(j) in
            if tv = 0 then []
            else begin
              let segs = ref [] in
              for i = 0 to np_s - 1 do
                let x = xsol.(i).(j) in
                if x > 0 then begin
                  let _, pks, cursor = s_partitions.(i) in
                  match dsol.(i).(j) with
                  | Some d when d >= 1 ->
                      (* JDC pair: reserve exactly d fresh distinct PKs *)
                      if !cursor + d > Col.Ivec.length pks then
                        raise (Key_error "PK pool exhausted during allocation");
                      segs := (pks, !cursor, d, x) :: !segs;
                      cursor := !cursor + d
                  | Some _ | None ->
                      (* unconstrained (or pool-starved) pair: cycle over the
                         partition's pool for a natural spread *)
                      segs := (pks, 0, 0, x) :: !segs
                end
              done;
              List.rev !segs
            end)
      in
      times.t_pf <- times.t_pf +. (now () -. t2);
      (* the fill closure owns everything it reads — this batch's partitions,
         plan segments whose pool slices were reserved above, and an RNG
         pre-split from the edge stream — and writes only this batch's row
         range of [fk]; queueing it cannot perturb any draw or any state the
         next batch's prepare touches *)
      let fill () =
        let t3 = now () in
        Par.run pool np_t (fun j ->
          let rng_j = Rng.split ~stream:j pf_rng in
          let tv, rows = t_partitions.(j) in
          if tv = 0 then
            (* one draw per row, same sequence [Rng.pick] made on the alias *)
            Array.iter
              (fun r -> Col.Ivec.set fk r (all_pk_at (Rng.int rng_j n_s)))
              rows
          else begin
            let n_rows = Array.length rows in
            let total =
              List.fold_left (fun acc (_, _, _, x) -> acc + x) 0 plans.(j)
            in
            if total <> n_rows then
              raise (Key_error "internal: population does not cover partition");
            let values = Array.make n_rows 0 in
            let w = ref 0 in
            List.iter
              (fun (pks, off, d, x) ->
                let len = if d >= 1 then d else Col.Ivec.length pks in
                let base = if d >= 1 then off else 0 in
                for q = 0 to x - 1 do
                  values.(!w) <- Col.Ivec.get pks (base + (q mod len));
                  incr w
                done)
              plans.(j);
            Rng.shuffle rng_j values;
            Array.iteri (fun q r -> Col.Ivec.set fk r values.(q)) rows
          end);
        times.t_pf <- times.t_pf +. (now () -. t3)
      in
      (* remaining totals depend only on this batch's allocations (fixed at
         reservation time), never on the fill, so updating them now frees the
         fill to run behind batch b+1's prepare *)
      for k = 0 to m - 1 do
        (match (jcc_batch.(k), !(jcc_left.(k))) with
        | Some a, Some left -> jcc_left.(k) := Some (left - a)
        | _ -> ());
        (match (jdc_batch.(k), !(jdc_left.(k))) with
        | Some a, Some left -> jdc_left.(k) := Some (max 0 (left - a))
        | _ -> ());
        vr_left.(k) := !(vr_left.(k)) - batch_vr.(k)
      done;
      if overlap then begin
        times.batch_alloc_bytes <-
          max times.batch_alloc_bytes
            (int_of_float (Gc.allocated_bytes () -. alloc0));
        (* window of one: wait out batch b-1's fill before queueing ours, so
           at most two batches of fill state are ever live *)
        await_pending ();
        pending := Some (Par.Future.submit pool fill)
      end
      else begin
        fill ();
        times.batch_alloc_bytes <-
          max times.batch_alloc_bytes
            (int_of_float (Gc.allocated_bytes () -. alloc0))
      end
    done;
    await_pending ();
    (* per-edge CP accounting: solves, cache reuse, search effort, wall time
       — an Info diagnostic so perf triage does not need a debug build *)
    let summary =
      Diag.info ~table:t_table Diag.Cp
        "edge %s.%s: %d CP solves (%d cache hits), %d nodes, %d propagations, %.3fs"
        t_table edge.Ir.e_fk_col
        (times.cp_solves - edge_solves0)
        (times.cp_cache_hits - edge_hits0)
        (times.cp_nodes - edge_nodes0)
        (times.cp_props - edge_props0)
        (times.t_cp -. edge_tcp0)
    in
    Ok (fk, List.rev (summary :: !resized))
  with
  | Key_error msg ->
      drain_quiet ();
      Error
        {
          kf_diag =
            Diag.error ~table:edge.Ir.e_fk_table Diag.Keygen "%s.%s: %s"
              edge.Ir.e_fk_table edge.Ir.e_fk_col msg;
          kf_culprits = [];
        }
  | Key_conflict (culprits, msg) ->
      drain_quiet ();
      Error
        {
          kf_diag =
            Diag.error ~table:edge.Ir.e_fk_table
              ?query:(match culprits with c :: _ -> Some c | [] -> None)
              ~hint:
                "relax one of the conflicting annotations, or rely on \
                 degraded mode to quarantine the offending query"
              Diag.Keygen "%s.%s: %s" edge.Ir.e_fk_table edge.Ir.e_fk_col msg;
          kf_culprits = culprits;
        }
  | e ->
      (* budget breach or solver failure: drain the in-flight fill, then let
         the driver's classification see the original exception *)
      drain_quiet ();
      raise e
