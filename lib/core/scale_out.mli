(** Linear scale-out of a generated database (the paper's terabyte-generation
    claim, §8.1.2).

    A generated database [D'] is {e tiled}: copy [t] shifts every primary key
    and foreign key by [t·|R|], keeping each tile self-contained.  Every
    selection cardinality, join cardinality and join-distinct count scales
    exactly by the number of copies, so an instantiated workload whose
    constraints are multiplied by [copies] replays exactly on the tiled
    database; non-key domain sizes stay at the base size (value multisets are
    repeated).

    Tiles are produced one window at a time, so writing CSVs needs memory
    proportional to one window of tiles regardless of the target size. *)

val to_csv_dir :
  ?pool:Mirage_par.Par.pool ->
  db:Mirage_engine.Db.t ->
  copies:int ->
  dir:string ->
  unit ->
  unit
(** Writes [<table>.csv] per table with [copies] tiles each.  Tiles render
    in parallel on [pool] (one domain per tile, each into a reused buffer)
    and are written sequentially in tile order, so the output bytes are
    independent of the domain count.
    @raise Invalid_argument if [copies < 1]. *)

val tile_db : db:Mirage_engine.Db.t -> copies:int -> Mirage_engine.Db.t
(** In-memory tiled database (for verification and tests; memory grows with
    [copies], unlike {!to_csv_dir}). *)

val scaled_rows : Mirage_engine.Db.t -> copies:int -> (string * int) list
(** Row count per table after tiling. *)
