(** Linear scale-out of a generated database (the paper's terabyte-generation
    claim, §8.1.2).

    A generated database [D'] is {e tiled}: copy [t] shifts every primary key
    and foreign key by [t·|R|], keeping each tile self-contained.  Every
    selection cardinality, join cardinality and join-distinct count scales
    exactly by the number of copies, so an instantiated workload whose
    constraints are multiplied by [copies] replays exactly on the tiled
    database; non-key domain sizes stay at the base size (value multisets are
    repeated).

    Tiles are produced one window at a time, so writing CSVs needs memory
    proportional to one window of tiles regardless of the target size.

    {2 Templated rendering}

    Because tiles differ only at key cells, the CSV writer renders each base
    row {e once} into a line template: fixed byte fragments (non-key cells,
    separators, newlines — pre-escaped) with a splice point per non-null key
    cell.  Emitting tile [t] alternates fragment memcpys with in-place
    {!Mirage_engine.Render.Buf.itoa} of the shifted keys, so per-tile cost is
    O(bytes + rows·key_cols) with zero per-cell allocation, instead of
    re-rendering O(rows·cols) cells through [string_of_int].  Templates are
    immutable and shared read-only across the pipeline's domains.  Output is
    byte-identical to the per-cell {!Reference} renderer for every domain
    count and copy count. *)

val mkdir_p : string -> unit
(** Recursive [Sys.mkdir]: creates missing parent directories, succeeds if
    the directory already exists — including one that appears concurrently
    ({!Mirage_util.Fsutil.mkdir_p} with failures mapped to
    {!Mirage_engine.Sink.Io_failure}).  Shared by every exporter. *)

val to_csv_dir :
  ?pool:Mirage_par.Par.pool ->
  db:Mirage_engine.Db.t ->
  copies:int ->
  dir:string ->
  unit ->
  unit
(** Writes [<table>.csv] per table with [copies] tiles each, creating [dir]
    (and missing parents) if needed.  Tiles are spliced from a per-table
    line template in parallel on [pool] (one domain per tile, each into a
    reused buffer) and written sequentially in tile order, so the output
    bytes are independent of the domain count.  Cells follow the shared
    render-kernel policy: RFC-4180 quoting only where required, round-trip
    floats ({!Mirage_engine.Render.float_repr}).
    @raise Invalid_argument if [copies < 1]. *)

type chunk_report = {
  cr_shards : int;  (** shard files the export comprises, across tables *)
  cr_resumed : int;  (** shards skipped because the manifest had them *)
  cr_bytes : int;  (** bytes written by this process (excludes resumed) *)
  cr_tables : (string * (int * int)) list;
      (** per table in schema order: (raw CSV bytes, bytes on disk) summed
          over the manifest's committed shards — identical numbers unless
          compression is on *)
}

val to_csv_chunked :
  ?pool:Mirage_par.Par.pool ->
  ?backend:Mirage_engine.Sink.backend ->
  ?resume:bool ->
  ?compress:bool ->
  ?interrupt:(unit -> unit) ->
  db:Mirage_engine.Db.t ->
  copies:int ->
  chunk_rows:int ->
  dir:string ->
  run_id:string ->
  unit ->
  chunk_report
(** Crash-safe chunked variant of {!to_csv_dir}: each table is emitted as
    shard files [<table>.csv.0], [<table>.csv.1], … of at most [chunk_rows]
    rows' worth of tiles each (at least one tile per shard), through a
    {!Mirage_engine.Sink} run — temp file + atomic rename + manifest
    checkpoint per shard.  Shard 0 carries the CSV header, so concatenating
    a table's shards in index order reproduces the monolithic [to_csv_dir]
    file byte-for-byte.

    With [~compress:true] every shard is a gzip member named
    [<table>.csv.<k>.gz] ({!Mirage_engine.Gz}); concatenating a table's
    shards yields a valid multi-member gzip file whose decompression is the
    monolithic CSV, and the manifest records both raw and compressed sizes.

    With [~resume:true] and a matching [run_id], shards recorded in
    [dir/MANIFEST.json] are skipped without rendering, and the remaining
    shards come out byte-identical to an uninterrupted run (rendering is
    deterministic per shard).  [run_id] must encode everything that changes
    the bytes (seed, scale, chunk size, compression).  [interrupt] is
    polled before every shard and every tile window.

    Tables larger than [chunk_rows] rows never materialize a whole-table
    template: their shards are single tiles (the layout guarantees it), and
    each tile streams through per-chunk templates built over
    {!Chunk_plan.ranges} row windows — resident bytes stay O(chunk) per
    pipeline slot while the concatenated output is unchanged.

    @raise Mirage_engine.Sink.Io_failure on I/O errors (no temp files left
    behind).
    @raise Invalid_argument if [copies < 1] or [chunk_rows < 1]. *)

(** {2 Live (per-table) export}

    The overlapped pipeline scheduler ({!Driver.config.schedule}) exports a
    table the moment its last FK edge commits, while other tables still
    generate.  These four calls decompose {!to_csv_chunked} into an open /
    export-table / finish protocol with an abort hook for dead generation
    attempts; composing them sequentially over the schema is exactly
    [to_csv_chunked] — same shard layout, manifest and bytes. *)

type live_export
(** An open chunked-export run accepting tables one at a time. *)

val open_csv_export :
  ?pool:Mirage_par.Par.pool ->
  ?backend:Mirage_engine.Sink.backend ->
  ?resume:bool ->
  ?compress:bool ->
  ?interrupt:(unit -> unit) ->
  copies:int ->
  chunk_rows:int ->
  dir:string ->
  run_id:string ->
  unit ->
  live_export
(** Open the sink (creating [dir], loading the manifest under [~resume])
    before generation starts.  Parameters mean exactly what they mean on
    {!to_csv_chunked}.  The shard layout is computed lazily at the first
    {!export_table} call — row counts are final once key generation
    starts.
    @raise Invalid_argument if [copies < 1] or [chunk_rows < 1]. *)

val export_table : live_export -> db:Mirage_engine.Db.t -> string -> unit
(** Render and commit every shard of one table (skipping shards the
    manifest already has).  Idempotent — a table already exported (or
    currently exporting) is skipped — and safe to call concurrently from
    pool tasks: each call owns its render buffers and template; shared
    bookkeeping is mutex-protected.  The table's columns must be final
    when called (the driver's [on_table_ready] guarantees it).  On an
    exception the claim is released so a later call (the finish pass)
    retries the table.
    @raise Mirage_engine.Sink.Io_failure on I/O errors. *)

val abort_csv_export : live_export -> unit
(** Retract every shard committed by this generation attempt — delete the
    files, drop their manifest entries ({!Mirage_engine.Sink.forget}) and
    forget all table claims — because the attempt died and the retry will
    generate different bytes.  Shards {e resumed} from a previous run are
    kept: they already hold the final deterministic output.  Wired to the
    driver's [on_attempt_abort]. *)

val finish_csv_export :
  live_export -> db:Mirage_engine.Db.t -> chunk_report
(** Export whatever tables were never claimed (or were released by a
    failure), remove surplus shards from earlier runs with different chunk
    counts, mark the manifest complete and return the report.  After this
    the concatenation contract of {!to_csv_chunked} holds verbatim. *)

val to_csv_sharded :
  ?pool:Mirage_par.Par.pool ->
  ?backend:Mirage_engine.Sink.backend ->
  ?resume:bool ->
  ?compress:bool ->
  ?interrupt:(unit -> unit) ->
  db:Mirage_engine.Db.t ->
  copies:int ->
  chunk_rows:int ->
  dir:string ->
  run_id:string ->
  unit ->
  chunk_report
(** Domain-owned sharded export: the same shard layout, names, manifest
    order and concatenation bytes as {!to_csv_chunked} with identical
    arguments, but each worker domain claims whole shards from a shared
    queue and streams its shard through its own exclusive
    {!Mirage_engine.Sink.write_shard} — N domains keep N shard files open
    and write concurrently, eliminating the tile pipeline's serial drain.
    Commit bookkeeping is mutex-protected inside the sink; the manifest's
    [seq] field keeps concatenation order deterministic, so [--resume] and
    post-hoc concatenation behave exactly as in the chunked writer.
    [interrupt] is polled per claimed shard and per tile, so a budget
    breach aborts mid-shard leaving only committed, size-verified shards in
    the manifest and no temp files. *)

val csv_bytes :
  ?chunk_rows:int -> db:Mirage_engine.Db.t -> copies:int -> unit -> int
(** Exact byte size of the CSV export ({!to_csv_dir} or, equivalently, the
    concatenated {!to_csv_chunked} shards) without rendering it: template
    fixed bytes per tile plus the decimal width of every spliced key.
    Templates are built one [chunk_rows] row window at a time (default
    {!Mirage_engine.Col.big_rows}), so the count itself runs in O(chunk)
    heap on enormous tables.  The bench harness derives its MB/s from
    this, uniformly across experiments.
    @raise Invalid_argument if [copies < 1] or [chunk_rows < 1]. *)

module Reference : sig
  val to_csv_dir :
    ?pool:Mirage_par.Par.pool ->
    db:Mirage_engine.Db.t ->
    copies:int ->
    dir:string ->
    unit ->
    unit
  (** The pre-template renderer: every cell of every tile re-rendered
      through per-cell allocating conversions.  Kept as the differential
      oracle for the byte-identity tests and as the baseline the [emit]
      benchmark measures the templated engine against.  Same output bytes,
      same pipeline, same escaping policy. *)
end

val tile_db : db:Mirage_engine.Db.t -> copies:int -> Mirage_engine.Db.t
(** In-memory tiled database (for verification and tests; memory grows with
    [copies], unlike {!to_csv_dir}). *)

val scaled_rows : Mirage_engine.Db.t -> copies:int -> (string * int) list
(** Row count per table after tiling. *)
