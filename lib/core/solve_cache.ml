module Cp = Mirage_cp.Cp

type entry = E_sat of int array | E_unsat | E_unknown

(* a key is either solved (Filled) or being solved right now by some domain
   (Inflight); waiters on an Inflight key park on the shard condition and
   read the filled entry when the leader publishes it *)
type slot = Filled of entry | Inflight

type shard = {
  tbl : (string, slot) Hashtbl.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable s_hits : int;
  mutable s_misses : int;
}

type t = { shards : shard array }

(* power of two so the selector is a mask; 16 shards keep contention
   negligible at the pool widths we run (≤ 64 domains) while the per-shard
   tables stay small enough to never rehash under a reader *)
let n_shards = 16

let create () =
  {
    shards =
      Array.init n_shards (fun _ ->
          {
            tbl = Hashtbl.create 16;
            m = Mutex.create ();
            cv = Condition.create ();
            s_hits = 0;
            s_misses = 0;
          });
  }

let shard_of t key = t.shards.(Hashtbl.hash key land (n_shards - 1))

let sum f t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.m;
      let v = f sh in
      Mutex.unlock sh.m;
      acc + v)
    0 t.shards

let hits t = sum (fun sh -> sh.s_hits) t
let misses t = sum (fun sh -> sh.s_misses) t

let of_entry = function
  | E_sat a -> Cp.Sat (Cp.fun_of_solution a)
  | E_unsat -> Cp.Unsat
  | E_unknown -> Cp.Unknown

let solve ?cache ?(max_nodes = 1_000_000) ?(lp_guide = true)
    ?(interrupt = fun () -> ()) model =
  let run () = Cp.solve ~max_nodes ~lp_guide ~interrupt model in
  match cache with
  | None ->
      let outcome, st = run () in
      (outcome, Some st)
  | Some c ->
      let key =
        Printf.sprintf "%s:%d:%b" (Cp.fingerprint model) max_nodes lp_guide
      in
      let sh = shard_of c key in
      Mutex.lock sh.m;
      let rec acquire () =
        match Hashtbl.find_opt sh.tbl key with
        | Some (Filled e) ->
            (* counts as a hit whether the entry predates this call or a
               concurrent leader just published it: total hits/misses match
               a sequential replay of the same solves in any order *)
            sh.s_hits <- sh.s_hits + 1;
            Mutex.unlock sh.m;
            (of_entry e, None)
        | Some Inflight ->
            Condition.wait sh.cv sh.m;
            acquire ()
        | None -> (
            Hashtbl.replace sh.tbl key Inflight;
            sh.s_misses <- sh.s_misses + 1;
            Mutex.unlock sh.m;
            (* the search runs outside the shard lock; identical concurrent
               requests wait instead of duplicating it (single-flight) *)
            match run () with
            | outcome, st ->
                let e =
                  match outcome with
                  | Cp.Sat f -> E_sat (Cp.solution_of_fun model f)
                  | Cp.Unsat -> E_unsat
                  | Cp.Unknown -> E_unknown
                in
                Mutex.lock sh.m;
                Hashtbl.replace sh.tbl key (Filled e);
                Condition.broadcast sh.cv;
                Mutex.unlock sh.m;
                (outcome, Some st)
            | exception exn ->
                (* interrupt (budget) or solver failure: release the key so a
                   waiter can become the new leader, then re-raise *)
                Mutex.lock sh.m;
                Hashtbl.remove sh.tbl key;
                Condition.broadcast sh.cv;
                Mutex.unlock sh.m;
                raise exn)
      in
      acquire ()
