module Cp = Mirage_cp.Cp

type entry = E_sat of int array | E_unsat | E_unknown

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable n_hits : int;
  mutable n_misses : int;
}

let create () = { tbl = Hashtbl.create 64; n_hits = 0; n_misses = 0 }
let hits t = t.n_hits
let misses t = t.n_misses

let solve ?cache ?(max_nodes = 1_000_000) ?(lp_guide = true)
    ?(interrupt = fun () -> ()) model =
  let run () = Cp.solve ~max_nodes ~lp_guide ~interrupt model in
  match cache with
  | None ->
      let outcome, st = run () in
      (outcome, Some st)
  | Some c -> (
      let key =
        Printf.sprintf "%s:%d:%b" (Cp.fingerprint model) max_nodes lp_guide
      in
      match Hashtbl.find_opt c.tbl key with
      | Some (E_sat a) ->
          c.n_hits <- c.n_hits + 1;
          (Cp.Sat (Cp.fun_of_solution a), None)
      | Some E_unsat ->
          c.n_hits <- c.n_hits + 1;
          (Cp.Unsat, None)
      | Some E_unknown ->
          c.n_hits <- c.n_hits + 1;
          (Cp.Unknown, None)
      | None ->
          c.n_misses <- c.n_misses + 1;
          let outcome, st = run () in
          (match outcome with
          | Cp.Sat f -> Hashtbl.replace c.tbl key (E_sat (Cp.solution_of_fun model f))
          | Cp.Unsat -> Hashtbl.replace c.tbl key E_unsat
          | Cp.Unknown -> Hashtbl.replace c.tbl key E_unknown);
          (outcome, Some st))
