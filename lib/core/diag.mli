(** Structured pipeline diagnostics.

    Every stage of the generation pipeline reports problems as typed
    diagnostics instead of bare strings or exceptions: a diagnostic carries
    the stage it originated from, the table and/or query (constraint source)
    it concerns, a severity, a message, and — where we know one — a recovery
    hint for the operator.  [Driver.generate] collects them in [r_diags] and
    per-query feasibility {!verdict}s; an [Error d] result means generation
    could not proceed at all and [d] says why. *)

type stage =
  | Validate  (** up-front workload / bundle validation *)
  | Extract  (** workload parsing + rewriting *)
  | Decouple  (** LCC decoupling (§4.1) *)
  | Cdf  (** per-column CDF construction (§4.2) *)
  | Nonkey  (** non-key data generation (§4.3) *)
  | Acc  (** arithmetic-constraint parameter search (§4.4) *)
  | Keygen  (** FK population (§5) *)
  | Cp  (** the constraint-programming solver *)
  | Bundle  (** bundle (de)serialisation *)
  | Driver  (** pipeline orchestration *)
  | Sink  (** crash-safe chunked export (shard files, manifest) *)
  | Budget  (** resource-budget breach: rows / heap / wall-clock deadline *)

type severity = Info | Warning | Error

type t = {
  d_stage : stage;
  d_severity : severity;
  d_table : string option;  (** table the problem concerns, when known *)
  d_query : string option;
      (** originating constraint source, e.g. ["q18"] or ["q18#pcc"] *)
  d_message : string;
  d_hint : string option;  (** suggested operator action, when we have one *)
}

val error :
  ?table:string -> ?query:string -> ?hint:string -> stage ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val warning :
  ?table:string -> ?query:string -> ?hint:string -> stage ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val info :
  ?table:string -> ?query:string -> ?hint:string -> stage ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val stage_name : stage -> string
val severity_name : severity -> string

val exit_code : t -> int
(** Process exit code a fatal diagnostic maps to (see [mirage_cli --help]):
    [Budget] → 3 (budget / deadline exceeded), [Sink] → 4 (I/O failure),
    any other stage → 2 (infeasible workload / generation failure).  Codes
    0 (success) and 1 (degraded / quarantined verdicts) are decided by the
    caller from the overall result, not from a diagnostic. *)

val base_query : t -> string option
(** The plain query name behind [d_query]: a constraint source such as
    ["q18#pcc"] or ["q18#aux0"] belongs to query ["q18"]. *)

val query_of_source : string -> string
(** ["q18#pcc"] → ["q18"]; a plain name maps to itself. *)

val to_string : t -> string
(** One-line rendering: [stage: severity: [query] [table] message (hint)]. *)

val pp : Format.formatter -> t -> unit

(** {2 Per-query feasibility verdicts}

    Degraded mode (see DESIGN.md, "Failure modes and degraded generation")
    classifies every query of the workload after generation. *)

type status =
  | Exact  (** all of the query's constraints honoured exactly *)
  | Degraded
      (** generated, but at least one constraint was adjusted (resize,
          soft fallback, dropped bound group, …) *)
  | Quarantined
      (** the query's constraints were removed from the system because they
          made it infeasible; the query still runs but its cardinalities
          carry no guarantee *)
  | Unsupported  (** the template could not be analysed at all *)

type verdict = {
  v_query : string;
  v_status : status;
  v_detail : string option;  (** why, for non-[Exact] statuses *)
}

val status_name : status -> string
val pp_verdict : Format.formatter -> verdict -> unit
