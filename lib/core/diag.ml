type stage =
  | Validate
  | Extract
  | Decouple
  | Cdf
  | Nonkey
  | Acc
  | Keygen
  | Cp
  | Bundle
  | Driver
  | Sink
  | Budget

type severity = Info | Warning | Error

type t = {
  d_stage : stage;
  d_severity : severity;
  d_table : string option;
  d_query : string option;
  d_message : string;
  d_hint : string option;
}

let make severity ?table ?query ?hint stage fmt =
  Fmt.kstr
    (fun d_message ->
      {
        d_stage = stage;
        d_severity = severity;
        d_table = table;
        d_query = query;
        d_message;
        d_hint = hint;
      })
    fmt

let error ?table ?query ?hint stage fmt = make Error ?table ?query ?hint stage fmt
let warning ?table ?query ?hint stage fmt = make Warning ?table ?query ?hint stage fmt
let info ?table ?query ?hint stage fmt = make Info ?table ?query ?hint stage fmt

let stage_name = function
  | Validate -> "validate"
  | Extract -> "extract"
  | Decouple -> "decouple"
  | Cdf -> "cdf"
  | Nonkey -> "nonkey"
  | Acc -> "acc"
  | Keygen -> "keygen"
  | Cp -> "cp"
  | Bundle -> "bundle"
  | Driver -> "driver"
  | Sink -> "sink"
  | Budget -> "budget"

let exit_code d =
  match d.d_stage with Budget -> 3 | Sink -> 4 | _ -> 2

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

(* constraint sources are "<query>" or "<query>#<suffix>" (aux plans, pcc,
   marginal, range splits) *)
let query_of_source src =
  match String.index_opt src '#' with
  | Some i -> String.sub src 0 i
  | None -> src

let base_query d = Option.map query_of_source d.d_query

let pp ppf d =
  Fmt.pf ppf "%s: %s:" (stage_name d.d_stage) (severity_name d.d_severity);
  (match d.d_query with Some q -> Fmt.pf ppf " [%s]" q | None -> ());
  (match d.d_table with Some t -> Fmt.pf ppf " [table %s]" t | None -> ());
  Fmt.pf ppf " %s" d.d_message;
  match d.d_hint with Some h -> Fmt.pf ppf " (hint: %s)" h | None -> ()

let to_string d = Fmt.str "%a" pp d

type status = Exact | Degraded | Quarantined | Unsupported

type verdict = {
  v_query : string;
  v_status : status;
  v_detail : string option;
}

let status_name = function
  | Exact -> "exact"
  | Degraded -> "degraded"
  | Quarantined -> "quarantined"
  | Unsupported -> "unsupported"

let pp_verdict ppf v =
  Fmt.pf ppf "%s: %s" v.v_query (status_name v.v_status);
  match v.v_detail with Some d -> Fmt.pf ppf " — %s" d | None -> ()
