(** Decoupling logical cardinality constraints (§4.1).

    Every SCC whose predicate is a CNF formula is reduced — via the set
    transforming rules [rule₁] (eliminate U-intersectands), [rule₂]
    (eliminate ∅-unionands) and [rule₃] (De Morgan) — to either a single
    UCC/ACC or a conjunction of equality views whose values must be bound
    into the same rows (Theorem 4.4).

    Eliminated sub-predicates have their parameters instantiated to boundary
    values (Table 3, adapted to our engine's semantics: the cardinality space
    is [\[1, dom\]], so e.g. [A > 0] is universal and [A = 0] is empty). *)

type result = {
  uccs : Ir.ucc list;
  accs : Ir.acc list;
  bound : Ir.bound_rows list;
  fixed_env : Mirage_sql.Pred.Env.t;
      (** boundary values for eliminated parameters *)
  skipped : Diag.t list;
      (** SCCs that could not be decoupled, with source and reason *)
}

val run :
  Mirage_sql.Schema.t ->
  dom:(string -> string -> int) ->
  table_rows:(string -> int) ->
  ?param_key:(string -> Mirage_sql.Value.t option) ->
  Ir.scc list ->
  result
(** [dom table col] is the target domain size [|R|_A]; [table_rows table] the
    target [|R|].  [param_key] maps a parameter to its production value; it
    lets the budget accounting recognise constraints that will alias to one
    synthetic value.  Forced (single-literal) SCCs are processed before OR
    clauses so the elimination's kept-literal choice sees the true remaining
    per-column row budget. *)

val universe_sentinel :
  Mirage_sql.Schema.kind -> dom:int -> Mirage_sql.Pred.literal ->
  Mirage_sql.Pred.Env.binding option
(** The parameter value making a literal universal, if any (exposed for
    tests). *)

val empty_sentinel :
  Mirage_sql.Schema.kind -> dom:int -> Mirage_sql.Pred.literal ->
  Mirage_sql.Pred.Env.binding option
