module Pred = Mirage_sql.Pred
module Plan = Mirage_relalg.Plan
module Schema = Mirage_sql.Schema

exception Unsupported of string

type result = {
  rw_plan : Plan.t;
  rw_aux : Plan.t list;
  rw_marginals : (string * Pred.t) list;
      (* per-table marginal selections whose counts the workload parser must
         fetch from the production database (negated literals that land on an
         already-filtered side and therefore stay nested) *)
}

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(* A CNF clause (list of literal-level predicates) back to a predicate. *)
let pred_of_clause = function
  | [] -> Pred.False
  | [ p ] -> p
  | ps -> Pred.Or ps

let pred_of_clauses = function
  | [] -> Pred.True
  | [ c ] -> pred_of_clause c
  | cs -> Pred.And (List.map pred_of_clause cs)

let clause_scope lit_pred =
  match lit_pred with
  | Pred.Lit l -> Pred.columns (Pred.Lit l)
  | Pred.Not (Pred.Lit l) -> Pred.columns (Pred.Lit l)
  | _ -> unsupported "non-literal inside CNF clause"

let negate_lit_pred = function
  | Pred.Lit l -> (
      match Pred.negate_literal l with
      | Some l' -> Pred.Lit l'
      | None -> unsupported "literal cannot be negated")
  | Pred.Not (Pred.Lit l) -> Pred.Lit l
  | _ -> unsupported "non-literal inside CNF clause"

(* Attach a selection predicate on top of a plan, merging with an existing
   root select for compactness. *)
let select_on pred plan =
  match pred with
  | Pred.True -> plan
  | _ -> (
      match plan with
      | Plan.Select (p0, q) -> Plan.Select (Pred.And [ p0; pred ], q)
      | _ -> Plan.Select (pred, plan))

let rec push_into schema ~aux ~marginals pred plan =
  (* [pred] must be entirely scoped within [plan]'s tables. *)
  match plan with
  | Plan.Table _ -> select_on pred plan
  | Plan.Select (p0, q) -> push_into schema ~aux ~marginals (Pred.And [ pred; p0 ]) q
  | Plan.Project { cols; input } ->
      (* σ and duplicate-eliminating Π commute when the predicate only uses
         projected columns; enforced by scope checks upstream. *)
      Plan.Project { cols; input = push_into schema ~aux ~marginals pred input }
  | Plan.Aggregate { group_by; aggs; input } ->
      Plan.Aggregate
        { group_by; aggs; input = push_into schema ~aux ~marginals pred input }
  | Plan.Join _ -> push_select schema ~aux ~marginals pred plan

and push_select schema ~aux ~marginals pred plan =
  match plan with
  | Plan.Join ({ left; right; _ } as j) ->
      let left_tables = Plan.tables left and right_tables = Plan.tables right in
      let side_of clause =
        let cols = List.concat_map clause_scope clause in
        let table_of c =
          let rec find = function
            | [] -> unsupported "column %s not found in any table" c
            | t :: rest ->
                if List.mem c (Schema.column_names (Schema.table schema t)) then t
                else find rest
          in
          find (left_tables @ right_tables)
        in
        let tabs = List.map table_of cols in
        if List.for_all (fun t -> List.mem t left_tables) tabs then `Left
        else if List.for_all (fun t -> List.mem t right_tables) tabs then `Right
        else `Mixed
      in
      let clauses = Pred.cnf pred in
      let lefts, rights, mixed =
        List.fold_left
          (fun (l, r, m) clause ->
            match side_of clause with
            | `Left -> (clause :: l, r, m)
            | `Right -> (l, clause :: r, m)
            | `Mixed -> (l, r, clause :: m))
          ([], [], []) clauses
      in
      let lefts = List.rev lefts and rights = List.rev rights in
      let left' = push_into schema ~aux ~marginals (pred_of_clauses lefts) left in
      let right' = push_into schema ~aux ~marginals (pred_of_clauses rights) right in
      (match mixed with
      | [] -> ()
      | [ clause ] ->
          (* Example 3.1: emit the complement join as an auxiliary plan.
             Each literal of the OR clause belongs to one side; the negated
             conjunction splits cleanly. *)
          let neg_left, neg_right =
            List.fold_left
              (fun (nl, nr) lit ->
                match side_of [ lit ] with
                | `Left -> (negate_lit_pred lit :: nl, nr)
                | `Right -> (nl, negate_lit_pred lit :: nr)
                | `Mixed -> unsupported "literal spans both join sides")
              ([], []) clause
          in
          let conj = function
            | [] -> Pred.True
            | [ p ] -> p
            | ps -> Pred.And (List.rev ps)
          in
          (* Attach the complement WITHOUT merging into existing selects:
             a merged conjunction would masquerade as a flat SCC and clash
             with the side's own selection constraint.  When the side is a
             bare table the complement lands directly (a plain SCC);
             otherwise it stays nested and each negated literal's marginal
             count is fetched separately from the production database. *)
          let owner_of lit_pred =
            match Pred.columns lit_pred with
            | col :: _ ->
                List.find_opt
                  (fun t -> List.mem col (Schema.column_names (Schema.table schema t)))
                  (Plan.tables plan)
            | [] -> None
          in
          let attach neg side =
            match (neg, side) with
            | Pred.True, _ -> side
            | _, Plan.Table _ -> Plan.Select (neg, side)
            | _ ->
                let lits =
                  match neg with Pred.And ps -> ps | p -> [ p ]
                in
                List.iter
                  (fun lp ->
                    match owner_of lp with
                    | Some t -> marginals := (t, lp) :: !marginals
                    | None -> ())
                  lits;
                Plan.Select (neg, side)
          in
          let aux_plan =
            Plan.Join
              {
                j with
                left = attach (conj neg_left) left';
                right = attach (conj neg_right) right';
              }
          in
          aux := aux_plan :: !aux
      | _ :: _ :: _ ->
          unsupported "more than one OR clause across a join is not supported");
      Plan.Join { j with left = left'; right = right' }
  | _ -> select_on pred plan

let rec rewrite schema ~aux ~marginals = function
  | Plan.Table _ as p -> p
  | Plan.Select (pred, q) ->
      let q' = rewrite schema ~aux ~marginals q in
      (match q' with
      | Plan.Table _ | Plan.Select _ -> select_on pred q'
      | Plan.Join _ -> push_select schema ~aux ~marginals pred q'
      | Plan.Project { cols; input } ->
          Plan.Project { cols; input = push_select schema ~aux ~marginals pred input }
      | Plan.Aggregate { group_by; aggs; input } ->
          Plan.Aggregate
            { group_by; aggs; input = push_select schema ~aux ~marginals pred input })
  | Plan.Project { cols; input } ->
      Plan.Project { cols; input = rewrite schema ~aux ~marginals input }
  | Plan.Aggregate { group_by; aggs; input } ->
      Plan.Aggregate { group_by; aggs; input = rewrite schema ~aux ~marginals input }
  | Plan.Join j ->
      Plan.Join
        {
          j with
          left = rewrite schema ~aux ~marginals j.left;
          right = rewrite schema ~aux ~marginals j.right;
        }

let push_down schema plan =
  let aux = ref [] in
  let marginals = ref [] in
  let rw_plan = rewrite schema ~aux ~marginals plan in
  { rw_plan; rw_aux = List.rev !aux; rw_marginals = List.rev !marginals }

let is_pushed_down plan =
  let ok = ref true in
  let rec go = function
    | Plan.Table _ -> ()
    | Plan.Select (_, q) ->
        (match q with
        | Plan.Table _ | Plan.Select _ -> ()
        | Plan.Join _ | Plan.Project _ | Plan.Aggregate _ -> ok := false);
        go q
    | Plan.Project { input; _ } | Plan.Aggregate { input; _ } -> go input
    | Plan.Join { left; right; _ } ->
        go left;
        go right
  in
  go plan;
  !ok
