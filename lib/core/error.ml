module Aqt = Mirage_relalg.Aqt
module Exec = Mirage_engine.Exec
module Stats = Mirage_util.Stats

type query_error = {
  qe_name : string;
  qe_relative : float;
  qe_expected : int list;
  qe_actual : int list;
  qe_note : string option;
}

let unsupported ?note name =
  {
    qe_name = name;
    qe_relative = 1.0;
    qe_expected = [];
    qe_actual = [];
    qe_note = note;
  }

let measure ~aqts ~db ~env =
  List.map
    (fun (aqt : Aqt.t) ->
      match Exec.analyze db ~env aqt.Aqt.plan with
      | analysis ->
          let views = Aqt.annotated_views aqt in
          let expected = List.map (fun (_, _, n) -> n) views in
          let actual =
            List.map (fun (i, _, _) -> analysis.Exec.cards.(i)) views
          in
          {
            qe_name = aqt.Aqt.name;
            qe_relative = Stats.relative_error ~expected ~actual;
            qe_expected = expected;
            qe_actual = actual;
            qe_note = None;
          }
      | exception (Invalid_argument msg | Failure msg) ->
          unsupported ~note:msg aqt.Aqt.name
      | exception Not_found ->
          unsupported ~note:"replay raised Not_found (missing binding)"
            aqt.Aqt.name)
    aqts

type latency = { lat_name : string; lat_ref : float; lat_synth : float }

(* one untimed warm-up run (hash tables sized, code paths hot), then the
   median of [repeat] timed runs — the same discipline as the paper's warmed
   PostgreSQL measurements *)
let median_of ~repeat f =
  ignore (f ());
  let times = Array.init (max 1 repeat) (fun _ -> snd (f ())) in
  Array.sort compare times;
  times.(Array.length times / 2)

let latencies ~aqts ~ref_db ~prod_env ~synth_db ~synth_env ~repeat =
  List.map
    (fun (aqt : Aqt.t) ->
      let lat_ref =
        median_of ~repeat (fun () -> Exec.timed_run ref_db ~env:prod_env aqt.Aqt.plan)
      in
      let lat_synth =
        median_of ~repeat (fun () -> Exec.timed_run synth_db ~env:synth_env aqt.Aqt.plan)
      in
      { lat_name = aqt.Aqt.name; lat_ref; lat_synth })
    aqts
