(** Constraint bundles: everything the generation side needs, serialised.

    This is the paper's deployment story (§1): the production side exports
    only execution metrics — schema, query templates, parameter values,
    per-operator cardinalities and the derived constraints — and the
    database developers regenerate the data processing environment offline,
    without ever seeing production rows.

    A bundle contains the schema, the query templates, the extracted
    constraint IR (including the in/like production elements) and the
    production parameter values, in a line-oriented s-expression format. *)

type t = {
  b_workload : Workload.t;
  b_ir : Ir.t;
  b_env : Mirage_sql.Pred.Env.t;
}

val of_extraction :
  Workload.t -> Extract.extraction -> prod_env:Mirage_sql.Pred.Env.t -> t

val to_string : t -> string
val of_string : string -> (t, string) result

val save : t -> path:string -> unit
val load : path:string -> (t, string) result

val validate : t -> Diag.t list
(** Referential-integrity and sanity checks over a deserialised bundle:
    every schema table has a non-negative cardinality entry, selection
    constraints name known tables and satisfy |σ(T)| ≤ |T|, join
    constraints ride real FK edges of the schema with sane counts, and no
    populated table references a zero-row table.  Includes
    {!Workload.validate} of the embedded workload.  Errors in the returned
    list make generation fail fast ({!Driver.generate_from_bundle}). *)

(** Individual serialisers, exposed for tests. *)

val plan_to_sexp : Mirage_relalg.Plan.t -> Mirage_util.Sexp.t
val plan_of_sexp : Mirage_util.Sexp.t -> (Mirage_relalg.Plan.t, string) result
val value_to_sexp : Mirage_sql.Value.t -> Mirage_util.Sexp.t
val value_of_sexp : Mirage_util.Sexp.t -> (Mirage_sql.Value.t, string) result
