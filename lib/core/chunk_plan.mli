(** Per-table chunk plans for streaming generation.

    A chunk plan fixes, up front, how a fact table's rows are cut into
    fixed-size chunks: chunk [i] covers rows [[i·chunk_rows,
    min((i+1)·chunk_rows, rows))].  The layout is a pure function of
    [(rows, chunk_rows)] — independent of domain count, budget interrupts
    and resume points — which is what makes the streamed pipeline
    byte-identical to the monolithic one: every stage (non-key fill, FK
    population, Acc repair, templated rendering) visits the same rows in
    the same order, merely yielding between chunks instead of after the
    whole table.

    The driver builds one plan per table when {!Driver.config.chunk_rows}
    is set and threads it through the generation stages; the exporters
    slice template construction by the same ranges so no table-sized
    buffer exists anywhere between the CDF sampler and the sink. *)

type chunk = {
  c_index : int;  (** 0-based position in the plan *)
  c_lo : int;  (** first row of the chunk *)
  c_rows : int;  (** rows in the chunk; the last chunk may be short *)
}

type t = {
  cp_table : string;
  cp_rows : int;  (** total rows planned *)
  cp_chunk_rows : int;  (** requested chunk size (≥ 1) *)
  cp_chunks : chunk array;  (** ⌈rows / chunk_rows⌉ chunks, in row order *)
}

val make : table:string -> rows:int -> chunk_rows:int -> t
(** @raise Invalid_argument when [chunk_rows < 1].  [rows = 0] yields an
    empty plan. *)

val n_chunks : t -> int

val iter : ?interrupt:(unit -> unit) -> t -> (chunk -> unit) -> unit
(** Visit chunks in row order, calling [interrupt] before each one — the
    cooperative budget / sink poll point of every streaming loop. *)

val ranges : rows:int -> chunk_rows:int -> (int * int) array
(** [(lo, len)] per chunk — the raw slicing shared with the exporters,
    for callers that don't need the table name.
    @raise Invalid_argument when [chunk_rows < 1]. *)
