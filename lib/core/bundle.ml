module Sexp = Mirage_util.Sexp
module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Parser = Mirage_sql.Parser
module Schema = Mirage_sql.Schema
module Plan = Mirage_relalg.Plan

type t = {
  b_workload : Workload.t;
  b_ir : Ir.t;
  b_env : Pred.Env.t;
}

let ( let* ) = Result.bind

let err fmt = Fmt.kstr (fun s -> Error s) fmt

let int_atom what a =
  match int_of_string_opt a with
  | Some n -> Ok n
  | None -> err "bad %s %S (expected an integer)" what a

(* --- values ---------------------------------------------------------------- *)

let value_to_sexp = function
  | Value.Null -> Sexp.List [ Sexp.Atom "null" ]
  | Value.Int x -> Sexp.List [ Sexp.Atom "int"; Sexp.Atom (string_of_int x) ]
  | Value.Float x -> Sexp.List [ Sexp.Atom "float"; Sexp.Atom (Printf.sprintf "%h" x) ]
  | Value.Str s -> Sexp.List [ Sexp.Atom "str"; Sexp.Atom s ]

let value_of_sexp = function
  | Sexp.List [ Sexp.Atom "null" ] -> Ok Value.Null
  | Sexp.List [ Sexp.Atom "int"; Sexp.Atom x ] -> (
      match int_of_string_opt x with
      | Some v -> Ok (Value.Int v)
      | None -> err "bad int %s" x)
  | Sexp.List [ Sexp.Atom "float"; Sexp.Atom x ] -> (
      match float_of_string_opt x with
      | Some v -> Ok (Value.Float v)
      | None -> err "bad float %s" x)
  | Sexp.List [ Sexp.Atom "str"; Sexp.Atom s ] -> Ok (Value.Str s)
  | other -> err "bad value %s" (Sexp.to_string other)

(* --- predicates (via the template language's own printer/parser) ----------- *)

let pred_to_sexp p = Sexp.Atom (Pred.to_string p)

let pred_of_sexp s =
  let* str = Sexp.atom s in
  match Parser.pred_opt str with
  | Ok p -> Ok p
  | Error m -> err "bad predicate %S: %s" str m

(* --- plans ------------------------------------------------------------------ *)

let jt_name = function
  | Plan.Inner -> "inner"
  | Plan.Left_outer -> "left-outer"
  | Plan.Right_outer -> "right-outer"
  | Plan.Full_outer -> "full-outer"
  | Plan.Left_semi -> "left-semi"
  | Plan.Right_semi -> "right-semi"
  | Plan.Left_anti -> "left-anti"
  | Plan.Right_anti -> "right-anti"

let jt_of_name = function
  | "inner" -> Ok Plan.Inner
  | "left-outer" -> Ok Plan.Left_outer
  | "right-outer" -> Ok Plan.Right_outer
  | "full-outer" -> Ok Plan.Full_outer
  | "left-semi" -> Ok Plan.Left_semi
  | "right-semi" -> Ok Plan.Right_semi
  | "left-anti" -> Ok Plan.Left_anti
  | "right-anti" -> Ok Plan.Right_anti
  | other -> err "bad join type %s" other

let agg_name = function
  | Plan.Count -> "count"
  | Plan.Sum -> "sum"
  | Plan.Avg -> "avg"
  | Plan.Min -> "min"
  | Plan.Max -> "max"

let agg_of_name = function
  | "count" -> Ok Plan.Count
  | "sum" -> Ok Plan.Sum
  | "avg" -> Ok Plan.Avg
  | "min" -> Ok Plan.Min
  | "max" -> Ok Plan.Max
  | other -> err "bad aggregate %s" other

let rec plan_to_sexp = function
  | Plan.Table t -> Sexp.List [ Sexp.Atom "table"; Sexp.Atom t ]
  | Plan.Select (p, q) ->
      Sexp.List [ Sexp.Atom "select"; pred_to_sexp p; plan_to_sexp q ]
  | Plan.Join { jt; pk_table; fk_table; fk_col; left; right } ->
      Sexp.List
        [
          Sexp.Atom "join"; Sexp.Atom (jt_name jt); Sexp.Atom pk_table;
          Sexp.Atom fk_table; Sexp.Atom fk_col; plan_to_sexp left; plan_to_sexp right;
        ]
  | Plan.Project { cols; input } ->
      Sexp.List
        [
          Sexp.Atom "project";
          Sexp.List (List.map (fun c -> Sexp.Atom c) cols);
          plan_to_sexp input;
        ]
  | Plan.Aggregate { group_by; aggs; input } ->
      Sexp.List
        [
          Sexp.Atom "aggregate";
          Sexp.List (List.map (fun c -> Sexp.Atom c) group_by);
          Sexp.List
            (List.map
               (fun (f, c) -> Sexp.List [ Sexp.Atom (agg_name f); Sexp.Atom c ])
               aggs);
          plan_to_sexp input;
        ]

let rec plan_of_sexp s =
  let* l = Sexp.list s in
  match l with
  | [ Sexp.Atom "table"; Sexp.Atom t ] -> Ok (Plan.Table t)
  | [ Sexp.Atom "select"; p; q ] ->
      let* p = pred_of_sexp p in
      let* q = plan_of_sexp q in
      Ok (Plan.Select (p, q))
  | [ Sexp.Atom "join"; Sexp.Atom jt; Sexp.Atom pk_table; Sexp.Atom fk_table;
      Sexp.Atom fk_col; left; right ] ->
      let* jt = jt_of_name jt in
      let* left = plan_of_sexp left in
      let* right = plan_of_sexp right in
      Ok (Plan.Join { jt; pk_table; fk_table; fk_col; left; right })
  | [ Sexp.Atom "project"; Sexp.List cols; input ] ->
      let* cols =
        List.fold_right
          (fun c acc ->
            let* acc = acc in
            let* c = Sexp.atom c in
            Ok (c :: acc))
          cols (Ok [])
      in
      let* input = plan_of_sexp input in
      Ok (Plan.Project { cols; input })
  | [ Sexp.Atom "aggregate"; Sexp.List group; Sexp.List aggs; input ] ->
      let* group_by =
        List.fold_right
          (fun c acc ->
            let* acc = acc in
            let* c = Sexp.atom c in
            Ok (c :: acc))
          group (Ok [])
      in
      let* aggs =
        List.fold_right
          (fun a acc ->
            let* acc = acc in
            match a with
            | Sexp.List [ Sexp.Atom f; Sexp.Atom c ] ->
                let* f = agg_of_name f in
                Ok ((f, c) :: acc)
            | other -> err "bad aggregate spec %s" (Sexp.to_string other))
          aggs (Ok [])
      in
      let* input = plan_of_sexp input in
      Ok (Plan.Aggregate { group_by; aggs; input })
  | _ -> err "bad plan %s" (Sexp.to_string s)

(* --- schema ----------------------------------------------------------------- *)

let kind_name = function
  | Schema.Kint -> "int"
  | Schema.Kfloat -> "float"
  | Schema.Kstring -> "string"

let kind_of_name = function
  | "int" -> Ok Schema.Kint
  | "float" -> Ok Schema.Kfloat
  | "string" -> Ok Schema.Kstring
  | other -> err "bad kind %s" other

let table_to_sexp (tbl : Schema.table) =
  Sexp.List
    [
      Sexp.Atom "table"; Sexp.Atom tbl.Schema.tname; Sexp.Atom tbl.Schema.pk;
      Sexp.Atom (string_of_int tbl.Schema.row_count);
      Sexp.List
        (List.map
           (fun (c : Schema.column) ->
             Sexp.List
               [
                 Sexp.Atom c.Schema.cname;
                 Sexp.Atom (string_of_int c.Schema.domain_size);
                 Sexp.Atom (kind_name c.Schema.kind);
               ])
           tbl.Schema.nonkeys);
      Sexp.List
        (List.map
           (fun (f : Schema.fk) ->
             Sexp.List [ Sexp.Atom f.Schema.fk_col; Sexp.Atom f.Schema.references ])
           tbl.Schema.fks);
    ]

let table_of_sexp s =
  let* l = Sexp.list s in
  match l with
  | [ Sexp.Atom "table"; Sexp.Atom tname; Sexp.Atom pk; Sexp.Atom rows;
      Sexp.List nonkeys; Sexp.List fks ] ->
      let* row_count =
        match int_of_string_opt rows with Some r -> Ok r | None -> err "bad rows"
      in
      let* nonkeys =
        List.fold_right
          (fun c acc ->
            let* acc = acc in
            match c with
            | Sexp.List [ Sexp.Atom cname; Sexp.Atom dom; Sexp.Atom kind ] ->
                let* kind = kind_of_name kind in
                let* domain_size =
                  match int_of_string_opt dom with
                  | Some d -> Ok d
                  | None -> err "bad domain"
                in
                Ok ({ Schema.cname; domain_size; kind } :: acc)
            | other -> err "bad column %s" (Sexp.to_string other))
          nonkeys (Ok [])
      in
      let* fks =
        List.fold_right
          (fun f acc ->
            let* acc = acc in
            match f with
            | Sexp.List [ Sexp.Atom fk_col; Sexp.Atom references ] ->
                Ok ({ Schema.fk_col; references } :: acc)
            | other -> err "bad fk %s" (Sexp.to_string other))
          fks (Ok [])
      in
      Ok { Schema.tname; pk; row_count; nonkeys; fks }
  | _ -> err "bad table %s" (Sexp.to_string s)

(* --- IR ---------------------------------------------------------------------- *)

let cv_to_sexp = function
  | Ir.Cv_full t -> Sexp.List [ Sexp.Atom "full"; Sexp.Atom t ]
  | Ir.Cv_select { cv_table; cv_pred } ->
      Sexp.List [ Sexp.Atom "filtered"; Sexp.Atom cv_table; pred_to_sexp cv_pred ]
  | Ir.Cv_subplan { cv_plan; cv_table } ->
      Sexp.List [ Sexp.Atom "subplan"; Sexp.Atom cv_table; plan_to_sexp cv_plan ]

let cv_of_sexp s =
  let* l = Sexp.list s in
  match l with
  | [ Sexp.Atom "full"; Sexp.Atom t ] -> Ok (Ir.Cv_full t)
  | [ Sexp.Atom "filtered"; Sexp.Atom cv_table; p ] ->
      let* cv_pred = pred_of_sexp p in
      Ok (Ir.Cv_select { cv_table; cv_pred })
  | [ Sexp.Atom "subplan"; Sexp.Atom cv_table; p ] ->
      let* cv_plan = plan_of_sexp p in
      Ok (Ir.Cv_subplan { cv_plan; cv_table })
  | _ -> err "bad child view %s" (Sexp.to_string s)

let opt_int_to_sexp = function
  | None -> Sexp.Atom "-"
  | Some n -> Sexp.Atom (string_of_int n)

let opt_int_of_sexp s =
  let* a = Sexp.atom s in
  if a = "-" then Ok None
  else
    match int_of_string_opt a with
    | Some n -> Ok (Some n)
    | None -> err "bad optional int %s" a

let ir_to_sexps (ir : Ir.t) =
  List.map
    (fun (t, n) ->
      Sexp.List [ Sexp.Atom "rows"; Sexp.Atom t; Sexp.Atom (string_of_int n) ])
    ir.Ir.table_cards
  @ List.map
      (fun ((t, c), n) ->
        Sexp.List
          [ Sexp.Atom "domain"; Sexp.Atom t; Sexp.Atom c; Sexp.Atom (string_of_int n) ])
      ir.Ir.column_cards
  @ List.map
      (fun (s : Ir.scc) ->
        Sexp.List
          [
            Sexp.Atom "scc"; Sexp.Atom s.Ir.scc_table;
            Sexp.Atom (string_of_int s.Ir.scc_rows); Sexp.Atom s.Ir.scc_source;
            pred_to_sexp s.Ir.scc_pred;
          ])
      ir.Ir.sccs
  @ List.map
      (fun (jc : Ir.join_constraint) ->
        Sexp.List
          [
            Sexp.Atom "join"; Sexp.Atom jc.Ir.jc_edge.Ir.e_pk_table;
            Sexp.Atom jc.Ir.jc_edge.Ir.e_fk_table; Sexp.Atom jc.Ir.jc_edge.Ir.e_fk_col;
            opt_int_to_sexp jc.Ir.jc_jcc; opt_int_to_sexp jc.Ir.jc_jdc;
            Sexp.Atom jc.Ir.jc_source; cv_to_sexp jc.Ir.jc_left; cv_to_sexp jc.Ir.jc_right;
          ])
      ir.Ir.joins
  @ List.map
      (fun (p, els) ->
        Sexp.List
          (Sexp.Atom "elements" :: Sexp.Atom p
          :: List.map
               (fun (v, c) ->
                 Sexp.List [ value_to_sexp v; Sexp.Atom (string_of_int c) ])
               els))
      ir.Ir.param_elements

(* --- environment -------------------------------------------------------------- *)

let env_to_sexps env =
  List.map
    (fun (p, b) ->
      match b with
      | Pred.Env.Scalar v -> Sexp.List [ Sexp.Atom "param"; Sexp.Atom p; value_to_sexp v ]
      | Pred.Env.Vlist vs ->
          Sexp.List
            (Sexp.Atom "param-list" :: Sexp.Atom p :: List.map value_to_sexp vs))
    (Pred.Env.bindings env)

(* --- bundle -------------------------------------------------------------------- *)

let of_extraction (w : Workload.t) (ex : Extract.extraction) ~prod_env =
  (* keep only the parameters the workload actually mentions *)
  let params = Workload.param_names w in
  let env =
    List.fold_left
      (fun acc p ->
        match Pred.Env.find p prod_env with
        | Some b -> Pred.Env.add p b acc
        | None -> acc)
      Pred.Env.empty params
  in
  { b_workload = w; b_ir = ex.Extract.ir; b_env = env }

let to_string b =
  let buf = Buffer.create 4096 in
  let line s =
    Buffer.add_string buf (Sexp.to_string s);
    Buffer.add_char buf '\n'
  in
  line (Sexp.List [ Sexp.Atom "mirage-bundle"; Sexp.Atom "1" ]);
  List.iter (fun t -> line (table_to_sexp t))
    (Schema.tables b.b_workload.Workload.w_schema);
  List.iter
    (fun (q : Workload.query) ->
      line
        (Sexp.List
           [ Sexp.Atom "query"; Sexp.Atom q.Workload.q_name; plan_to_sexp q.Workload.q_plan ]))
    b.b_workload.Workload.w_queries;
  List.iter line (ir_to_sexps b.b_ir);
  List.iter line (env_to_sexps b.b_env);
  Buffer.contents buf

let of_string str =
  let* sexps = Sexp.of_string_many str in
  match sexps with
  | Sexp.List [ Sexp.Atom "mirage-bundle"; Sexp.Atom "1" ] :: rest ->
      let tables = ref [] and queries = ref [] in
      let rows = ref [] and domains = ref [] and sccs = ref [] in
      let joins = ref [] and elements = ref [] and env = ref Pred.Env.empty in
      let* () =
        List.fold_left
          (fun acc s ->
            let* () = acc in
            match s with
            | Sexp.List (Sexp.Atom "table" :: _) ->
                let* t = table_of_sexp s in
                tables := t :: !tables;
                Ok ()
            | Sexp.List [ Sexp.Atom "query"; Sexp.Atom name; plan ] ->
                let* plan = plan_of_sexp plan in
                queries := { Workload.q_name = name; q_plan = plan } :: !queries;
                Ok ()
            | Sexp.List [ Sexp.Atom "rows"; Sexp.Atom t; Sexp.Atom n ] ->
                let* n = int_atom "row count" n in
                rows := (t, n) :: !rows;
                Ok ()
            | Sexp.List [ Sexp.Atom "domain"; Sexp.Atom t; Sexp.Atom c; Sexp.Atom n ] ->
                let* n = int_atom "domain size" n in
                domains := ((t, c), n) :: !domains;
                Ok ()
            | Sexp.List [ Sexp.Atom "scc"; Sexp.Atom table; Sexp.Atom n;
                          Sexp.Atom source; pred ] ->
                let* p = pred_of_sexp pred in
                let* n = int_atom "selection cardinality" n in
                sccs :=
                  {
                    Ir.scc_table = table;
                    scc_rows = n;
                    scc_source = source;
                    scc_pred = p;
                  }
                  :: !sccs;
                Ok ()
            | Sexp.List [ Sexp.Atom "join"; Sexp.Atom pk; Sexp.Atom fkt; Sexp.Atom fkc;
                          jcc; jdc; Sexp.Atom source; left; right ] ->
                let* jc_jcc = opt_int_of_sexp jcc in
                let* jc_jdc = opt_int_of_sexp jdc in
                let* jc_left = cv_of_sexp left in
                let* jc_right = cv_of_sexp right in
                joins :=
                  {
                    Ir.jc_edge = { Ir.e_pk_table = pk; e_fk_table = fkt; e_fk_col = fkc };
                    jc_left;
                    jc_right;
                    jc_jcc;
                    jc_jdc;
                    jc_source = source;
                  }
                  :: !joins;
                Ok ()
            | Sexp.List (Sexp.Atom "elements" :: Sexp.Atom p :: els) ->
                let* els =
                  List.fold_right
                    (fun e acc ->
                      let* acc = acc in
                      match e with
                      | Sexp.List [ v; Sexp.Atom c ] ->
                          let* v = value_of_sexp v in
                          let* c = int_atom "element count" c in
                          Ok ((v, c) :: acc)
                      | other -> err "bad element %s" (Sexp.to_string other))
                    els (Ok [])
                in
                elements := (p, els) :: !elements;
                Ok ()
            | Sexp.List [ Sexp.Atom "param"; Sexp.Atom p; v ] ->
                let* v = value_of_sexp v in
                env := Pred.Env.add p (Pred.Env.Scalar v) !env;
                Ok ()
            | Sexp.List (Sexp.Atom "param-list" :: Sexp.Atom p :: vs) ->
                let* vs =
                  List.fold_right
                    (fun v acc ->
                      let* acc = acc in
                      let* v = value_of_sexp v in
                      Ok (v :: acc))
                    vs (Ok [])
                in
                env := Pred.Env.add p (Pred.Env.Vlist vs) !env;
                Ok ()
            | other -> err "unknown bundle line %s" (Sexp.to_string other))
          (Ok ()) rest
      in
      let* schema =
        try Ok (Schema.make (List.rev !tables))
        with Invalid_argument m -> Error m
      in
      let* workload =
        try Ok (Workload.make schema (List.rev !queries))
        with Invalid_argument m -> Error m
      in
      Ok
        {
          b_workload = workload;
          b_ir =
            {
              Ir.sccs = List.rev !sccs;
              joins = List.rev !joins;
              table_cards = List.rev !rows;
              column_cards = List.rev !domains;
              param_elements = List.rev !elements;
            };
          b_env = !env;
        }
  | _ -> Error "not a mirage bundle (expected header)"

(* --- validation --------------------------------------------------------------- *)

let validate (b : t) : Diag.t list =
  let diags = ref [] in
  let push d = diags := d :: !diags in
  let schema = b.b_workload.Workload.w_schema in
  List.iter push (Workload.validate b.b_workload);
  (* every schema table needs a (rows ...) entry, and it must be sane *)
  List.iter
    (fun (tbl : Schema.table) ->
      match List.assoc_opt tbl.Schema.tname b.b_ir.Ir.table_cards with
      | None ->
          push
            (Diag.error ~table:tbl.Schema.tname
               ~hint:"add a (rows ...) entry for every schema table"
               Diag.Bundle "no cardinality entry for table %s" tbl.Schema.tname)
      | Some n when n < 0 ->
          push
            (Diag.error ~table:tbl.Schema.tname Diag.Bundle
               "negative cardinality %d for table %s" n tbl.Schema.tname)
      | Some _ -> ())
    (Schema.tables schema);
  List.iter
    (fun (t, _) ->
      if not (Schema.mem schema t) then
        push
          (Diag.error ~table:t Diag.Bundle
             "cardinality entry for unknown table %s" t))
    b.b_ir.Ir.table_cards;
  let rows_of t =
    match List.assoc_opt t b.b_ir.Ir.table_cards with
    | Some n -> Some n
    | None ->
        Option.map
          (fun (tbl : Schema.table) -> tbl.Schema.row_count)
          (Schema.table_opt schema t)
  in
  (* selection constraints: known table, 0 <= |sigma(T)| <= |T| *)
  List.iter
    (fun (s : Ir.scc) ->
      if not (Schema.mem schema s.Ir.scc_table) then
        push
          (Diag.error ~table:s.Ir.scc_table ~query:s.Ir.scc_source Diag.Bundle
             "selection constraint on unknown table %s" s.Ir.scc_table)
      else if s.Ir.scc_rows < 0 then
        push
          (Diag.error ~table:s.Ir.scc_table ~query:s.Ir.scc_source Diag.Bundle
             "negative selection cardinality %d" s.Ir.scc_rows)
      else
        match rows_of s.Ir.scc_table with
        | Some total when s.Ir.scc_rows > total ->
            push
              (Diag.error ~table:s.Ir.scc_table ~query:s.Ir.scc_source
                 ~hint:
                   "a selection cannot return more rows than its table holds; \
                    fix the annotation or the (rows ...) entry"
                 Diag.Bundle "selection cardinality %d exceeds table size %d"
                 s.Ir.scc_rows total)
        | _ -> ())
    b.b_ir.Ir.sccs;
  (* join constraints: the edge must be a real FK edge of the schema *)
  List.iter
    (fun (jc : Ir.join_constraint) ->
      let e = jc.Ir.jc_edge in
      (match Schema.table_opt schema e.Ir.e_fk_table with
      | None ->
          push
            (Diag.error ~table:e.Ir.e_fk_table ~query:jc.Ir.jc_source
               Diag.Bundle "join constraint on unknown table %s"
               e.Ir.e_fk_table)
      | Some tbl -> (
          match
            List.find_opt
              (fun (f : Schema.fk) -> f.Schema.fk_col = e.Ir.e_fk_col)
              tbl.Schema.fks
          with
          | None ->
              push
                (Diag.error ~table:e.Ir.e_fk_table ~query:jc.Ir.jc_source
                   ~hint:"the bundle references a FK edge the schema lacks"
                   Diag.Bundle "no foreign key %s.%s in the schema"
                   e.Ir.e_fk_table e.Ir.e_fk_col)
          | Some f ->
              if f.Schema.references <> e.Ir.e_pk_table then
                push
                  (Diag.error ~table:e.Ir.e_fk_table ~query:jc.Ir.jc_source
                     Diag.Bundle "foreign key %s.%s references %s, not %s"
                     e.Ir.e_fk_table e.Ir.e_fk_col f.Schema.references
                     e.Ir.e_pk_table)));
      (match (jc.Ir.jc_jcc, jc.Ir.jc_jdc) with
      | Some jcc, _ when jcc < 0 ->
          push
            (Diag.error ~table:e.Ir.e_fk_table ~query:jc.Ir.jc_source
               Diag.Bundle "negative join cardinality %d" jcc)
      | _, Some jdc when jdc < 0 ->
          push
            (Diag.error ~table:e.Ir.e_fk_table ~query:jc.Ir.jc_source
               Diag.Bundle "negative join distinct count %d" jdc)
      | Some jcc, Some jdc when jdc > jcc ->
          push
            (Diag.warning ~table:e.Ir.e_fk_table ~query:jc.Ir.jc_source
               ~hint:"distinct joining rows cannot exceed joining pairs"
               Diag.Bundle "join distinct count %d exceeds join cardinality %d"
               jdc jcc)
      | _ -> ()))
    b.b_ir.Ir.joins;
  (* a referenced table with zero rows starves every FK pointing at it *)
  List.iter
    (fun (referenced, referencing) ->
      match (rows_of referenced, rows_of referencing) with
      | Some 0, Some n when n > 0 ->
          push
            (Diag.error ~table:referenced
               ~hint:
                 "rows in the referencing table need a primary key to point \
                  at; give the referenced table at least one row"
               Diag.Bundle "table %s has zero rows but %s (%d rows) references \
                            it"
               referenced referencing n)
      | _ -> ())
    (Schema.referencing_edges schema);
  List.rev !diags

let save b ~path =
  let oc = open_out path in
  output_string oc (to_string b);
  close_out oc

let load ~path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let str = really_input_string ic len in
  close_in ic;
  of_string str
