type chunk = { c_index : int; c_lo : int; c_rows : int }

type t = {
  cp_table : string;
  cp_rows : int;
  cp_chunk_rows : int;
  cp_chunks : chunk array;
}

let ranges ~rows ~chunk_rows =
  if chunk_rows < 1 then invalid_arg "Chunk_plan: chunk_rows must be >= 1";
  let rows = max rows 0 in
  let n = (rows + chunk_rows - 1) / chunk_rows in
  Array.init n (fun i ->
      let lo = i * chunk_rows in
      (lo, min chunk_rows (rows - lo)))

let make ~table ~rows ~chunk_rows =
  let cp_chunks =
    Array.mapi
      (fun i (lo, len) -> { c_index = i; c_lo = lo; c_rows = len })
      (ranges ~rows ~chunk_rows)
  in
  { cp_table = table; cp_rows = max rows 0; cp_chunk_rows = chunk_rows; cp_chunks }

let n_chunks t = Array.length t.cp_chunks

let iter ?(interrupt = fun () -> ()) t f =
  Array.iter
    (fun c ->
      interrupt ();
      f c)
    t.cp_chunks
