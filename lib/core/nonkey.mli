(** Non-key column materialisation (§4.3).

    Rows required to carry co-occurring values (bound-row groups from the
    decoupling of pure-equality clauses) are emitted first; the remaining
    value multiset of every column is then shuffled independently and
    appended.  Primary keys are auto-incrementing integers. *)

val generate :
  ?chunk_rows:int ->
  ?interrupt:(unit -> unit) ->
  rng:Mirage_util.Rng.t ->
  table:Mirage_sql.Schema.table ->
  rows:int ->
  layouts:(string * Cdf.layout) list ->
  bound:Ir.bound_rows list ->
  param_values:(string -> int list option) ->
  unit ->
  (string * Mirage_engine.Col.t) list
(** Returns the pk column and every non-key column as typed columns (foreign
    keys are filled later by the key generator).  [layouts] maps each non-key column to its
    CDF layout; [bound] lists this table's bound-row groups; [param_values]
    resolves a bound cell's parameter to its cardinality value(s) — several
    for in/like parameters, whose groups are split per value.

    With [chunk_rows] (a streamed run's chunk plan) the row scans proceed
    chunk-at-a-time, polling [interrupt] between chunks; visit order — and
    therefore every RNG draw and output byte — is identical to the
    monolithic single-pass scan.
    @raise Invalid_argument when bound groups exceed a value's row budget
    or [chunk_rows < 1]. *)
