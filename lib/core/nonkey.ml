module Schema = Mirage_sql.Schema
module Rng = Mirage_util.Rng
module Col = Mirage_engine.Col

(* Bound-row groups (§4.3 "Arrange Values"): each group pins [n] rows to
   carry specific values in specific columns simultaneously.  A group cell
   whose parameter is an in/like literal maps to several values; such a
   group is split into one sub-group per value, sized by the value's row
   budget (their budgets sum to the group size by construction). *)
let generate ?(chunk_rows = max_int) ?(interrupt = fun () -> ()) ~rng ~table
    ~rows ~layouts ~bound ~param_values () =
  if chunk_rows < 1 then invalid_arg "Nonkey.generate: chunk_rows must be >= 1";
  (* chunked row scans: identical visit order to a single pass, with a
     cooperative poll between chunks — the draws and writes are unchanged,
     so streamed output is byte-identical to the monolithic path *)
  let scan_rows f =
    let lo = ref 0 in
    while !lo < rows do
      interrupt ();
      let hi = min rows (!lo + chunk_rows) in
      for i = !lo to hi - 1 do
        f i
      done;
      lo := hi
    done
  in
  let layout_of col =
    match List.assoc_opt col layouts with
    | Some l -> l
    | None -> invalid_arg (Printf.sprintf "Nonkey.generate: no layout for %s" col)
  in
  let counts =
    List.map (fun (col, l) -> (col, Array.copy l.Cdf.l_value_counts)) layouts
  in
  let counts_of col = List.assoc col counts in
  (* per-column value-domain ints; 0 marks a free slot (values are 1-based).
     Work vectors follow the big-rows threshold, so fact-table instantiation
     does not park one heap array per column. *)
  let columns =
    List.map
      (fun (c : Schema.column) -> (c.Schema.cname, Col.Ivec.make rows 0))
      table.Schema.nonkeys
  in
  let col_arr c = List.assoc c columns in
  let offset = ref 0 in
  let emit_group cells n =
    (* [cells]: (column, single value); write [n] rows at the cursor *)
    if n > 0 then begin
      if !offset + n > rows then
        invalid_arg "Nonkey.generate: bound rows exceed table size";
      List.iter
        (fun (col, v) ->
          if v < 1 then
            invalid_arg (Printf.sprintf "Nonkey.generate: bound cell %s unresolved" col);
          let cnt = counts_of col in
          if cnt.(v - 1) < n then
            invalid_arg
              (Printf.sprintf
                 "Nonkey.generate: bound group needs %d rows of %s=%d, only %d left" n
                 col v cnt.(v - 1));
          cnt.(v - 1) <- cnt.(v - 1) - n;
          let arr = col_arr col in
          for i = !offset to !offset + n - 1 do
            Col.Ivec.set arr i v
          done)
        cells;
      offset := !offset + n
    end
  in
  List.iter
    (fun (br : Ir.bound_rows) ->
      let cell_values =
        List.map
          (fun (col, param) ->
            match param_values param with
            | Some (_ :: _ as vs) -> (col, vs)
            | Some [] | None ->
                invalid_arg
                  (Printf.sprintf "Nonkey.generate: bound cell %s=%s unresolved" col
                     param))
          br.Ir.br_cells
      in
      let singles, multis =
        List.partition (fun (_, vs) -> List.length vs = 1) cell_values
      in
      let fixed = List.map (fun (c, vs) -> (c, List.hd vs)) singles in
      match multis with
      | [] -> emit_group fixed br.Ir.br_rows
      | [ (mcol, mvals) ] ->
          (* split across the multi-valued cell, bounded by each value's
             remaining budget *)
          let remaining = ref br.Ir.br_rows in
          List.iter
            (fun v ->
              if !remaining > 0 && v >= 1 then begin
                let budget = (counts_of mcol).(v - 1) in
                let n = min !remaining budget in
                emit_group ((mcol, v) :: fixed) n;
                remaining := !remaining - n
              end)
            mvals;
          if !remaining > 0 then
            invalid_arg
              (Printf.sprintf
                 "Nonkey.generate: bound group on %s short by %d rows" mcol !remaining)
      | _ :: _ :: _ ->
          invalid_arg
            "Nonkey.generate: more than one multi-valued cell in a bound group"
    )
    bound;
  (* shuffle the residual pool of every column into the free slots.  The
     free-slot positions are recomputed by a second ascending scan instead of
     materialising them (the old cons-list of indices cost ~24 bytes per free
     row), and the pool itself is an Ivec so it goes off-heap with the
     column. *)
  List.iter
    (fun (col, cnt) ->
      let arr = col_arr col in
      let nfree = ref 0 in
      scan_rows (fun i -> if Col.Ivec.unsafe_get arr i = 0 then incr nfree);
      let nfree = !nfree in
      let pool = Col.Ivec.make nfree 0 in
      let k = ref 0 in
      Array.iteri
        (fun vi c ->
          for _ = 1 to c do
            if !k >= nfree then
              invalid_arg
                (Printf.sprintf "Nonkey.generate: %s pool larger than free slots" col);
            Col.Ivec.set pool !k (vi + 1);
            incr k
          done)
        cnt;
      if !k <> nfree then
        invalid_arg
          (Printf.sprintf "Nonkey.generate: %s pool (%d) < free slots (%d)" col !k
             nfree);
      let col_rng = Rng.split rng in
      Rng.shuffle_swap col_rng nfree (fun i j ->
          let tmp = Col.Ivec.get pool i in
          Col.Ivec.set pool i (Col.Ivec.get pool j);
          Col.Ivec.set pool j tmp);
      let j = ref 0 in
      scan_rows (fun i ->
          if Col.Ivec.unsafe_get arr i = 0 then begin
            Col.Ivec.unsafe_set arr i (Col.Ivec.get pool !j);
            incr j
          end))
    counts;
  let pk = Col.init_ints rows (fun i -> i + 1) in
  (table.Schema.pk, pk)
  :: List.map (fun (col, arr) -> (col, Cdf.to_col (layout_of col) arr)) columns
