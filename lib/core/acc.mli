(** Arithmetic-predicate parameter instantiation (§4.4).

    Given generated non-key data and an ACC [|σ_{g(A…) ◦ p}(R)| = n], the
    result view [g] is computed over a (Hoeffding-sized) sample and [p] is
    chosen as the order statistic that makes the predicate select the scaled
    target count — exact when the sample is the whole table, within the
    paper's δ bound otherwise. *)

val instantiate :
  ?repair:bool ->
  ?frozen_prefix:int ->
  ?interrupt:(unit -> unit) ->
  rng:Mirage_util.Rng.t ->
  db:Mirage_engine.Db.t ->
  sample_size:int ->
  Ir.acc ->
  string * Mirage_sql.Pred.Env.binding
(** Returns the parameter's binding.  When the whole table is scanned and
    ties prevent an exact threshold, [repair] (default on) swaps values of
    an involved column between rows — preserving every column's value
    multiset, hence every UCC — until the ACC count is exact; rows below
    [frozen_prefix] (bound-row groups) are never touched.  [interrupt] is
    the cooperative budget poll: called at entry and periodically inside
    the repair swap search.  Repair mutates the stored columns in place
    (off-heap above the big-rows threshold) and its scratch state is the
    sample itself, so a streamed run's heap stays O(sample), not O(rows).
    @raise Invalid_argument if the expression references unknown columns or
    non-numeric data. *)

val choose_threshold :
  cmp:Mirage_sql.Pred.cmp -> target:int -> float array -> float
(** The order-statistic search on a materialised result view (exposed for
    tests): picks the threshold whose selected count is as close as possible
    to [target]. *)
