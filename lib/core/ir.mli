(** Intermediate representation of extracted cardinality constraints.

    The workload parser (§3, Fig. 4) turns annotated query templates into:
    - {e selection cardinality constraints} (SCCs) per base table, which the
      decoupler further reduces to UCCs / ACCs / bound-row groups (§4.1);
    - {e join constraints} per PK–FK edge, in the paper's uniform
      (JCC, JDC) representation with explicit left/right child views (§5.1). *)

module Pred = Mirage_sql.Pred
module Plan = Mirage_relalg.Plan

type scc = {
  scc_table : string;
  scc_pred : Pred.t;
  scc_rows : int;  (** required output size *)
  scc_source : string;  (** query name, for diagnostics *)
}

(** A unary cardinality constraint after decoupling, normalised to the
    cardinality space: the comparator is kept as written, the row count is the
    required output size of [σ_(col cmp $param)(table)]. *)
type ucc = {
  ucc_table : string;
  ucc_col : string;
  ucc_lit : Pred.literal;  (** unary literal owning the parameter *)
  ucc_rows : int;
  ucc_source : string;
}

type acc = {
  acc_table : string;
  acc_expr : Pred.arith;
  acc_cmp : Pred.cmp;
  acc_param : string;
  acc_rows : int;
  acc_source : string;
}

(** [n] rows must carry all the listed (column = instantiated param) values
    simultaneously (Theorem 4.4, second case). *)
type bound_rows = {
  br_table : string;
  br_cells : (string * string) list;  (** (column, parameter) *)
  br_rows : int;
  br_source : string;
}

(** Child view of a join, as seen from one side of a PK–FK edge. *)
type child_view =
  | Cv_full of string  (** the whole base table *)
  | Cv_select of { cv_table : string; cv_pred : Pred.t }
      (** selection output directly over the base table *)
  | Cv_subplan of { cv_plan : Plan.t; cv_table : string }
      (** output of an upstream join; membership = the set of [cv_table]'s
          primary keys appearing in the subplan's output, computed on the
          partially generated database (§5.3) *)

type edge = { e_pk_table : string; e_fk_table : string; e_fk_col : string }

type join_constraint = {
  jc_edge : edge;
  jc_left : child_view;  (** over [e_pk_table] *)
  jc_right : child_view;  (** over [e_fk_table] *)
  jc_jcc : int option;  (** matched pairs, when the join type constrains it *)
  jc_jdc : int option;  (** distinct matched PKs, when constrained *)
  jc_source : string;
}

type t = {
  sccs : scc list;
  joins : join_constraint list;
  table_cards : (string * int) list;  (** |R| per table *)
  column_cards : ((string * string) * int) list;  (** |R|_A per non-key column *)
  param_elements : (string * (Mirage_sql.Value.t * int) list) list;
      (** per in/like parameter: production elements (value, row count) —
          collected by the workload parser so generation needs no further
          access to the production database *)
}

val child_view_table : child_view -> string
val pp_child_view : Format.formatter -> child_view -> unit
val pp_join_constraint : Format.formatter -> join_constraint -> unit
val pp : Format.formatter -> t -> unit
