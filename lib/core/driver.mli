(** End-to-end generation (Fig. 4): workload parser → non-key generator →
    key generator, with per-stage timings for the efficiency experiments. *)

type config = {
  seed : int;
  batch_size : int;  (** rows per generation batch (§8 "Setting") *)
  sample_size : int;  (** ACC sample size (default: Hoeffding for δ=0.1%, α=99.9%) *)
  cp_max_nodes : int;
  latency_repeat : int;
  domains : int;
      (** width of the domain pool driving the parallel regions (CDF
          fan-out, per-table non-key instantiation, keygen CS/PF, scale-out
          tiles).  Clamped to [\[1, 64\]]; the default is
          [Mirage_par.Par.default_domains ()].  The pool itself is the
          process-global resident one of this width ([Mirage_par.Par.get]) —
          repeated runs share its worker domains — unless [pool] pins one.
          The generated database is bit-identical for every value of
          [domains]. *)
  acc_repair : bool;
      (** arrangement repair for arithmetic predicates: swap involved-column
          values between rows until tie-blocked ACC counts become exact
          (multiset-preserving, so UCCs stay exact); an extension beyond the
          paper's sampling bound — disable to reproduce the paper's exact
          behaviour *)
  lp_guide : bool;  (** ablation: LP-relaxation guidance inside the CP solver *)
  sparsify : bool;  (** ablation: JDC sparsification of the population matrix *)
  capacity_repair : bool;  (** ablation: pool-capacity x-moves before phase 2 *)
  guided_placement : bool;  (** ablation: production-guided CDF bin placement *)
  solve_cache : bool;
      (** cross-partition CP solve cache: structurally identical population
          systems (canonical fingerprint match) reuse the first solve's
          outcome.  Replay-identical — the generated database is bit-for-bit
          the same with the cache on or off; disable only to measure raw
          solver cost. *)
  budget : Mirage_util.Budget.limits;
      (** cooperative resource budget (default {!Mirage_util.Budget.no_limits}):
          [max_chunk_rows] clamps the keygen batch size, [max_heap_mb] and
          [deadline_s] are polled at stage boundaries, every keygen batch and
          every 64 CP search nodes.  A breach aborts generation with a typed
          [Diag.Budget] error result (process exit code 3) — never an
          uncaught exception, and the domain pool is left fully usable for
          the next run. *)
  pool : Mirage_par.Par.pool option;
      (** domain pool to run on; [None] (the default) uses the resident
          process-global pool of width [domains].  Pass one to pin runs to a
          caller-managed pool — e.g. a daemon's long-lived worker set.  The
          pool is never shut down by the driver. *)
  cache : Solve_cache.t option;
      (** CP solve cache shared across runs; [None] (the default) creates a
          fresh per-attempt cache when [solve_cache] is on.  Cached outcomes
          are replay-identical, so sharing a cache across runs changes only
          wall-clock, never the generated database. *)
}

val default_config : config

type timings = {
  t_extract : float;  (** workload parsing + rewriting (on the production DB) *)
  t_decouple : float;  (** LCC decoupling (§4.1) *)
  t_cdf : float;  (** CDF construction + UCC parameter instantiation (§4.2) *)
  t_gd : float;  (** non-key data generation (§4.3) *)
  t_acc : float;  (** ACC sampling + parameter search (§4.4) *)
  t_cs : float;  (** join status vectors (§5.2) *)
  t_cp : float;  (** CP solving *)
  t_pf : float;  (** FK population *)
  t_total : float;  (** wall-clock, extract included *)
  t_cpu : float;
      (** CPU seconds spent generating (extract excluded), summed across
          every domain — [t_cpu / (t_total − t_extract)] approximates the
          effective parallelism of the run *)
  domains_used : int;  (** domain-pool width the run actually used *)
  cp_solves : int;
  cp_nodes : int;
  cp_restarts : int;  (** CP restart-ladder rungs taken across all solves *)
  cp_props : int;
      (** propagator executions across all CP solves — the event-driven
          kernel's unit of work *)
  cp_cache_hits : int;  (** CP solves answered by the cross-partition cache *)
  batch_alloc_bytes : int;
      (** largest single-batch allocation volume in the key generator — the
          per-batch working set the paper's Fig. 14 trades against CP rounds *)
}

type result = {
  r_db : Mirage_engine.Db.t;  (** the synthetic database D' *)
  r_env : Mirage_sql.Pred.Env.t;  (** instantiated parameters (workload W') *)
  r_extraction : Extract.extraction;
  r_timings : timings;
  r_peak_bytes : int;  (** working-set high-water mark during generation *)
  r_warnings : string list;
      (** legacy one-line rendering of the warning diagnostics *)
  r_diags : Diag.t list;
      (** structured diagnostics from every stage, including validation
          warnings and quarantine decisions *)
  r_verdicts : Diag.verdict list;
      (** per-query feasibility verdict — Exact, Degraded, Quarantined or
          Unsupported — in workload order *)
}

val generate :
  ?config:config ->
  Workload.t ->
  ref_db:Mirage_engine.Db.t ->
  prod_env:Mirage_sql.Pred.Env.t ->
  (result, Diag.t) Stdlib.result
(** End-to-end generation with degraded mode: an infeasible population
    system quarantines the most implicated query (its constraints are
    removed, diagnosed in [r_diags] and verdicted [Quarantined]) and
    regenerates, so one contradictory annotation no longer aborts the whole
    workload.  [Error d] means generation could not proceed at all. *)

val generate_from_bundle :
  ?config:config -> Bundle.t -> (result, Diag.t) Stdlib.result
(** Generation from a saved constraint bundle — the production-side export —
    without any access to a production database.  The bundle is validated
    up-front ({!Bundle.validate}); the first validation error fails fast.
    [r_extraction.aqts] is empty (there is no ground truth to verify against
    in this mode); the constraints themselves are fully honoured. *)

val measure_errors : result -> Error.query_error list
(** Replays the original templates on the synthetic database. *)
