module Pred = Mirage_sql.Pred
module Value = Mirage_sql.Value
module Db = Mirage_engine.Db
module Col = Mirage_engine.Col
module Rng = Mirage_util.Rng

(* Exact count of elements of [sorted] (ascending) satisfying [x ◦ t]. *)
let count_selected ~cmp sorted t =
  let n = Array.length sorted in
  (* index of first element > t (upper bound) and first >= t (lower bound) *)
  let upper =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sorted.(mid) <= t then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let lower =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sorted.(mid) < t then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  match cmp with
  | Pred.Gt -> n - upper
  | Pred.Ge -> n - lower
  | Pred.Lt -> lower
  | Pred.Le -> upper
  | Pred.Eq -> upper - lower
  | Pred.Neq -> n - (upper - lower)

let choose_threshold ~cmp ~target values =
  if Array.length values = 0 then 0.0
  else begin
    let sorted = Array.copy values in
    Array.sort compare sorted;
    let n = Array.length sorted in
    (* candidate thresholds: every distinct value, plus sentinels outside the
       data range; pick the one minimising |count − target| *)
    let candidates = ref [ sorted.(0) -. 1.0; sorted.(n - 1) +. 1.0 ] in
    Array.iter (fun v -> candidates := v :: !candidates) sorted;
    let best = ref (sorted.(0) -. 1.0) in
    let best_dev = ref max_int in
    List.iter
      (fun t ->
        let dev = abs (count_selected ~cmp sorted t - target) in
        if dev < !best_dev then begin
          best_dev := dev;
          best := t
        end)
      !candidates;
    !best
  end

let eval_expr_on_row lookup expr =
  let rec go = function
    | Pred.Acol c -> lookup c
    | Pred.Aconst f -> f
    | Pred.Aadd (a, b) -> go a +. go b
    | Pred.Asub (a, b) -> go a -. go b
    | Pred.Amul (a, b) -> go a *. go b
    | Pred.Adiv (a, b) ->
        let d = go b in
        if d = 0.0 then invalid_arg "Acc: division by zero" else go a /. d
  in
  go expr

let non_numeric () =
  invalid_arg "Acc: non-numeric column in arithmetic expression"

let cell_null nulls i =
  match nulls with Some b -> Col.Bitset.get b i | None -> false

(* unboxed per-row float reader over a stored column *)
let float_accessor = function
  | Col.Ints { data; nulls } ->
      fun i -> if cell_null nulls i then non_numeric () else float_of_int data.(i)
  | Col.Floats { data; nulls } ->
      fun i -> if cell_null nulls i then non_numeric () else data.(i)
  | Col.Big_ints { data; nulls } ->
      fun i ->
        if cell_null nulls i then non_numeric ()
        else float_of_int (Bigarray.Array1.get data i)
  | Col.Big_floats { data; nulls } ->
      fun i ->
        if cell_null nulls i then non_numeric () else Bigarray.Array1.get data i
  | Col.Dict _ | Col.Big_dict _ -> fun _ -> non_numeric ()
  | Col.Boxed vs -> (
      fun i ->
        match Value.to_float vs.(i) with Some f -> f | None -> non_numeric ())

(* swap two rows of one stored column in place; value multisets (and hence
   every UCC) are preserved by construction *)
let swap_cells col i j =
  let swap_bits = function
    | None -> ()
    | Some b ->
        let bi = Col.Bitset.get b i and bj = Col.Bitset.get b j in
        if bi <> bj then begin
          if bj then Col.Bitset.set b i else Col.Bitset.clear b i;
          if bi then Col.Bitset.set b j else Col.Bitset.clear b j
        end
  in
  match col with
  | Col.Ints { data; nulls } ->
      let t = data.(i) in
      data.(i) <- data.(j);
      data.(j) <- t;
      swap_bits nulls
  | Col.Floats { data; nulls } ->
      let t = data.(i) in
      data.(i) <- data.(j);
      data.(j) <- t;
      swap_bits nulls
  | Col.Dict { codes; nulls; _ } ->
      let t = codes.(i) in
      codes.(i) <- codes.(j);
      codes.(j) <- t;
      swap_bits nulls
  | Col.Big_ints { data; nulls } ->
      let t = Bigarray.Array1.get data i in
      Bigarray.Array1.set data i (Bigarray.Array1.get data j);
      Bigarray.Array1.set data j t;
      swap_bits nulls
  | Col.Big_floats { data; nulls } ->
      let t = Bigarray.Array1.get data i in
      Bigarray.Array1.set data i (Bigarray.Array1.get data j);
      Bigarray.Array1.set data j t;
      swap_bits nulls
  | Col.Big_dict { codes; nulls; _ } ->
      let t = Bigarray.Array1.get codes i in
      Bigarray.Array1.set codes i (Bigarray.Array1.get codes j);
      Bigarray.Array1.set codes j t;
      swap_bits nulls
  | Col.Boxed vs ->
      let t = vs.(i) in
      vs.(i) <- vs.(j);
      vs.(j) <- t

let satisfies cmp v t =
  match cmp with
  | Pred.Gt -> v > t
  | Pred.Ge -> v >= t
  | Pred.Lt -> v < t
  | Pred.Le -> v <= t
  | Pred.Eq -> v = t
  | Pred.Neq -> v <> t

(* Arrangement repair (see below): when ties in the result view leave the
   best threshold off target, swapping one involved column's values between
   two rows changes the count without touching any column's value multiset,
   so every UCC stays exact.  Rows below [frozen_prefix] carry bound-row
   groups and are never touched. *)
let instantiate ?(repair = true) ?(frozen_prefix = 0)
    ?(interrupt = fun () -> ()) ~rng ~db ~sample_size (acc : Ir.acc) =
  interrupt ();
  let table = acc.Ir.acc_table in
  let cols = Pred.arith_columns acc.Ir.acc_expr in
  (* live typed columns: the repair swaps below must mutate the stored
     table, not a boxed copy *)
  let arrays = List.map (fun c -> (c, Db.col db table c)) cols in
  let accessors = List.map (fun (c, col) -> (c, float_accessor col)) arrays in
  let n = Db.row_count db table in
  let s = min n sample_size in
  let idx =
    if s = n then Array.init n (fun i -> i)
    else Rng.sample_without_replacement rng s n
  in
  let row_value i =
    let lookup c =
      match List.assoc_opt c accessors with
      | Some f -> f i
      | None -> invalid_arg (Printf.sprintf "Acc: unknown column %s" c)
    in
    eval_expr_on_row lookup acc.Ir.acc_expr
  in
  let values = Array.map row_value idx in
  (* scale the target to the sample, rounding to nearest *)
  let target =
    if s = n then acc.Ir.acc_rows
    else
      int_of_float
        (Float.round (float_of_int acc.Ir.acc_rows *. float_of_int s /. float_of_int n))
  in
  let p = choose_threshold ~cmp:acc.Ir.acc_cmp ~target values in
  (* tie repair only applies when the whole table was scanned: on a sample
     the paper's delta bound already covers the deviation *)
  (if repair && s = n then
     let count () =
       let c = ref 0 in
       for i = 0 to n - 1 do
         if satisfies acc.Ir.acc_cmp (row_value i) p then incr c
       done;
       !c
     in
     if count () <> target then begin
       let cols_arr = Array.of_list (List.map snd arrays) in
       if Array.length cols_arr > 0 && n - frozen_prefix >= 2 then begin
         let tries = ref (50 * n) in
         let current = ref (count ()) in
         while !current <> target && !tries > 0 do
           (* cooperative poll on the swap search, cheap enough to keep the
              hot loop branch-predictable: repair only runs on fully-scanned
              tables, whose swaps mutate the stored (possibly off-heap)
              columns in place — resident state stays at the sample *)
           if !tries land 4095 = 0 then interrupt ();
           decr tries;
           let i = frozen_prefix + Rng.int rng (n - frozen_prefix) in
           let j = frozen_prefix + Rng.int rng (n - frozen_prefix) in
           if i <> j then begin
             let col = cols_arr.(Rng.int rng (Array.length cols_arr)) in
             let before =
               (if satisfies acc.Ir.acc_cmp (row_value i) p then 1 else 0)
               + if satisfies acc.Ir.acc_cmp (row_value j) p then 1 else 0
             in
             swap_cells col i j;
             let after =
               (if satisfies acc.Ir.acc_cmp (row_value i) p then 1 else 0)
               + if satisfies acc.Ir.acc_cmp (row_value j) p then 1 else 0
             in
             let next = !current + after - before in
             if abs (next - target) < abs (!current - target) then current := next
             else swap_cells col i j
           end
         done
       end
     end);
  (acc.Ir.acc_param, Pred.Env.Scalar (Value.Float p))
