(** A workload: a schema plus named query templates.

    Templates are authored (or parsed) as plans with symbolic parameters; the
    production database assigns them concrete values (the [prod_env]), and
    the workload parser extracts cardinality constraints by executing the
    instantiated templates on the production database. *)

type query = { q_name : string; q_plan : Mirage_relalg.Plan.t }

type t = { w_schema : Mirage_sql.Schema.t; w_queries : query list }

val make : Mirage_sql.Schema.t -> query list -> t
(** Validates every plan against the schema and checks query names are
    unique.  @raise Invalid_argument on failure. *)

val validate : t -> Diag.t list
(** Non-raising counterpart of {!make}'s checks: duplicate query names,
    plan/schema coherence, cross-query parameter sharing.  Empty when the
    workload is well-formed. *)

val query : t -> string -> query
val take : t -> int -> t
(** [take w n] keeps the first [n] queries (for the Fig. 15 scaling sweep). *)

val param_names : t -> string list
(** All parameters across all queries (must be globally unique). *)
