(** Foreign-key population (§5).

    For one PK–FK edge carrying [m] join constraints: every row of the
    referenced table [S] and the referencing table [T] gets an [m]-bit
    status vector recording its membership of each constraint's left/right
    child view; equal vectors form partitions (§5.2 step 1); per partition
    pair [(S_i, T_j)] the CP variables [x_ij] (FKs populated from [S_i] into
    [T_j]) and [d_ij] (distinct PKs used) satisfy the populating rules
    Eq. 3–5 plus composability / expressibility / coverability; a feasible CP
    point drives deterministic population.

    Generation is batched over [T]'s rows: constraint totals are split
    exactly across batches proportionally to each view's row share (the
    paper's batch strategy, §8), and the per-partition PK allocator is global
    so distinct counts add up across batches.

    The CS membership scans and the per-partition PF fills run on the given
    {!Mirage_par.Par.pool}; PK-slice reservation stays sequential, and each
    PF task draws from an RNG stream indexed by its partition, so the
    populated column is bit-identical for any domain count. *)

type stage_times = {
  mutable t_cs : float;  (** computing status vectors *)
  mutable t_cp : float;  (** solving the constraint program *)
  mutable t_pf : float;  (** populating foreign keys *)
  mutable cp_solves : int;
  mutable cp_nodes : int;
  mutable cp_restarts : int;  (** restart-ladder rungs taken across solves *)
  mutable cp_props : int;  (** propagator executions across solves *)
  mutable cp_cache_hits : int;
      (** solves answered by the cross-partition {!Solve_cache} instead of
          running search *)
  mutable batch_alloc_bytes : int;
      (** largest single-batch allocation volume: the per-batch working set *)
}

val fresh_times : unit -> stage_times

val add_times : stage_times -> stage_times -> unit
(** [add_times acc src] folds [src]'s counters into [acc] (times and counts
    add; [batch_alloc_bytes] takes the max).  The overlap scheduler gives
    each concurrent edge task a private record and merges them in
    topological edge order, reproducing the totals the barrier path
    accumulates in its single shared record. *)

type failure = {
  kf_diag : Diag.t;  (** what went wrong, with table/query context *)
  kf_culprits : string list;
      (** conflicting constraint sources (an IIS-style subset, found by a
          deletion filter) when the population system is proved infeasible;
          empty for other failures *)
}

val populate_edge :
  ?lp_guide:bool ->
  ?sparsify:bool ->
  ?capacity_repair:bool ->
  ?pool:Mirage_par.Par.pool ->
  ?cache:Solve_cache.t ->
  ?interrupt:(unit -> unit) ->
  ?overlap:bool ->
  rng:Mirage_util.Rng.t ->
  db:Mirage_engine.Db.t ->
  env:Mirage_sql.Pred.Env.t ->
  edge:Ir.edge ->
  constraints:Ir.join_constraint list ->
  batch_size:int ->
  cp_max_nodes:int ->
  times:stage_times ->
  unit ->
  (Mirage_engine.Col.Ivec.t * Diag.t list, failure) result
(** [interrupt] is checked at every batch boundary and forwarded into the CP
    solver's 64-node cancellation points; whatever it raises (typically
    {!Mirage_util.Budget.Exceeded}) propagates out of the populate call.

    [overlap] opens a solve-ahead window of one batch: batch [b]'s FK fill
    runs as a pool task while batch [b+1]'s CP model builds and solves.  The
    fill reads only state frozen at reservation time (its plan segments, row
    windows and a pre-split RNG stream) and writes a disjoint row range of
    the FK column, so the window changes wall time, never bytes; at most two
    batches of fill state are live at once, and every exit path — including
    failures — drains the in-flight fill before returning.

    Returns the FK column for [edge.e_fk_table] as a raw integer-key vector
    ({!Mirage_engine.Col.Ivec} — off-heap above the big-rows threshold,
    convertible zero-copy via [Ivec.to_col]) plus resize/deviation
    diagnostics (the §6 bounded-error adjustments) and a per-edge Info
    diagnostic with the CP solve/cache/node/propagation counters.  [cache]
    reuses outcomes across structurally identical population systems
    (recurring FK partitions and repeated AQT shapes); because the solver is
    deterministic in everything {!Mirage_cp.Cp.fingerprint} covers, enabling
    it never changes the generated column.  On a proved-infeasible
    population system the failure names the conflicting constraint sources so
    the caller can quarantine them.  The synthetic database must already
    contain the non-key columns of both tables and any FK columns that the
    constraints' subplan views join on. *)

val membership :
  db:Mirage_engine.Db.t ->
  env:Mirage_sql.Pred.Env.t ->
  table:string ->
  Ir.child_view ->
  Mirage_engine.Col.Bitset.t
(** Row membership of a child view, one bit per row (exposed for tests). *)
