(** Simulation-fidelity measurement (§8, Figs. 11 and 12).

    A query's relative error is [Σᵢ | |Vᵢ| − |V̂ᵢ| | / Σᵢ |Vᵢ|] over all its
    operator views, comparing production annotations against the synthetic
    database.  Unsupported queries score 1.0 ("100% error means no
    support"). *)

type query_error = {
  qe_name : string;
  qe_relative : float;
  qe_expected : int list;  (** per-view production cardinalities *)
  qe_actual : int list;  (** per-view synthetic cardinalities *)
  qe_note : string option;
      (** why the query scored 1.0 (the replay exception's message), when it
          could not be measured at all *)
}

val measure :
  aqts:Mirage_relalg.Aqt.t list ->
  db:Mirage_engine.Db.t ->
  env:Mirage_sql.Pred.Env.t ->
  query_error list
(** Replays every AQT's plan on [db] with the instantiated parameters [env]
    and scores it against its annotations.  A query whose replay raises
    (e.g. unbound parameter) scores 1.0, with the exception's message
    recorded in [qe_note]; unexpected exceptions propagate. *)

val unsupported : ?note:string -> string -> query_error
(** The 100%-error marker for a query a generator cannot handle. *)

type latency = { lat_name : string; lat_ref : float; lat_synth : float }

val latencies :
  aqts:Mirage_relalg.Aqt.t list ->
  ref_db:Mirage_engine.Db.t ->
  prod_env:Mirage_sql.Pred.Env.t ->
  synth_db:Mirage_engine.Db.t ->
  synth_env:Mirage_sql.Pred.Env.t ->
  repeat:int ->
  latency list
(** Wall-clock replay times on both databases: one warm-up run, then the
    median of [repeat] timed runs per query. *)
