module Pred = Mirage_sql.Pred
module Value = Mirage_sql.Value
module Schema = Mirage_sql.Schema
module Plan = Mirage_relalg.Plan
module Col = Mirage_engine.Col
module Db = Mirage_engine.Db
module Rng = Mirage_util.Rng
module Par = Mirage_par.Par
module Mem = Mirage_util.Mem
module Budget = Mirage_util.Budget
module Hoeffding = Mirage_util.Hoeffding
module Toposort = Mirage_util.Toposort

type config = {
  seed : int;
  batch_size : int;
  sample_size : int;
  cp_max_nodes : int;
  latency_repeat : int;
  domains : int;
  acc_repair : bool;
  lp_guide : bool;
  sparsify : bool;
  capacity_repair : bool;
  guided_placement : bool;
  solve_cache : bool;
  budget : Budget.limits;
      (** resource budget: max chunk rows, heap watermark, wall-clock
          deadline.  Breaches surface as a typed [Diag.Budget] error, never
          an uncaught exception or a wedged domain pool. *)
  pool : Par.pool option;
      (** the domain pool driving the run; [None] (the default) uses the
          process-global resident pool of width [domains] ([Par.get]), so
          repeated runs never re-spawn domains.  Pass a pool explicitly to
          pin runs to a caller-managed pool (a daemon's worker set). *)
  cache : Solve_cache.t option;
      (** a caller-owned CP solve cache shared across runs; [None] (the
          default) creates a fresh per-attempt cache when [solve_cache] is
          on.  Outcomes are replay-identical either way — sharing only
          skips redundant search on structurally repeated systems. *)
  chunk_rows : int option;
      (** streamed generation: with [Some c] the driver builds a
          {!Chunk_plan} per table, scopes the big-rows threshold so any
          vector longer than one chunk lives off-heap, and every row scan
          of the generation stages proceeds chunk-at-a-time with budget
          polls at chunk boundaries.  Output is byte-identical to the
          monolithic path ([None]) — the plan only changes where state
          lives and where the run can be interrupted, never what is
          drawn. *)
  schedule : [ `Barrier | `Overlap ];
      (** keygen stage scheduling.  [`Overlap] (the default) runs the
          per-edge population as a dependency-aware task DAG on the pool:
          independent FK edges populate concurrently, each edge's CP
          batches open a solve-ahead window, and a table whose last edge
          committed can start exporting while other tables still
          generate.  [`Barrier] is the legacy strictly-sequential stage
          structure, kept as the differential oracle.  Every RNG stream is
          pre-sequenced at submission time, so the two schedules produce
          byte-identical databases for any domain count. *)
  on_table_ready : (Db.t -> string -> unit) option;
      (** called once per table as soon as every column of that table is
          final (its last FK edge committed; immediately for tables with
          no FK) — the hook that lets an exporter overlap rendering with
          the remaining tables' generation.  Runs as a pool task;
          exceptions it raises are swallowed by the driver (the caller's
          finish pass re-exports anything missing).  [None] disables it. *)
  on_attempt_abort : (unit -> unit) option;
      (** called when a generation attempt dies on an infeasible
          population system (before the quarantine retry, and before the
          final error when retries are exhausted), so a live exporter can
          drop shards written for the dead attempt.  Budget breaches do
          {e not} trigger it: a budget abort happens on a deterministic
          prefix of the final output, so its shards stay valid for
          [--resume]. *)
}

let default_config =
  {
    seed = 42;
    batch_size = 7_000_000;
    sample_size = Hoeffding.sample_size ~delta:0.001 ~alpha:0.999;
    cp_max_nodes = 100_000;
    latency_repeat = 3;
    domains = Par.default_domains ();
    acc_repair = true;
    lp_guide = true;
    sparsify = true;
    capacity_repair = true;
    guided_placement = true;
    solve_cache = true;
    budget = Budget.no_limits;
    pool = None;
    cache = None;
    chunk_rows = None;
    schedule = `Overlap;
    on_table_ready = None;
    on_attempt_abort = None;
  }

type timings = {
  t_extract : float;
  t_decouple : float;
  t_cdf : float;
  t_gd : float;
  t_acc : float;
  t_cs : float;
  t_cp : float;
  t_pf : float;
  t_total : float;
  t_cpu : float;
  domains_used : int;
  cp_solves : int;
  cp_nodes : int;
  cp_restarts : int;
  cp_props : int;
  cp_cache_hits : int;
  batch_alloc_bytes : int;
}

type result = {
  r_db : Db.t;
  r_env : Pred.Env.t;
  r_extraction : Extract.extraction;
  r_timings : timings;
  r_peak_bytes : int;
  r_chunk_plans : Chunk_plan.t list;
  r_warnings : string list;
  r_diags : Diag.t list;
  r_verdicts : Diag.verdict list;
}

let now () = Unix.gettimeofday ()

(* process CPU seconds across every domain: wall − cpu divergence is how the
   bench harness sees the parallel speedup *)
let cpu_now () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime

(* owner table of a (globally unique) column name *)
let owner_table schema col =
  List.find_opt
    (fun (tbl : Schema.table) ->
      List.exists (fun (c : Schema.column) -> c.Schema.cname = col) tbl.Schema.nonkeys)
    (Schema.tables schema)

(* production elements for in/like literals (§4.2: the workload parser may
   query the production database); returns (canonical value, row count)
   pairs *)
let elements_fn schema ref_db prod_env lit =
  let count_eq table col v =
    let a = Db.column ref_db table col in
    let c = ref 0 in
    Array.iter (fun x -> if Value.compare x v = 0 then incr c) a;
    !c
  in
  match lit with
  | Pred.In { col; arg; _ } -> (
      let vs =
        match arg with
        | Pred.Const_list vs -> vs
        | Pred.Param p -> (
            match Pred.Env.find p prod_env with
            | Some (Pred.Env.Vlist vs) -> vs
            | Some (Pred.Env.Scalar v) -> [ v ]
            | None -> [])
        | Pred.Const v -> [ v ]
      in
      match owner_table schema col with
      | Some tbl -> List.map (fun v -> (v, count_eq tbl.Schema.tname col v)) vs
      | None -> [])
  | Pred.Like { col; arg; _ } -> (
      let pattern =
        match arg with
        | Pred.Const (Value.Str s) -> Some s
        | Pred.Param p -> (
            match Pred.Env.find p prod_env with
            | Some (Pred.Env.Scalar (Value.Str s)) -> Some s
            | _ -> None)
        | Pred.Const _ | Pred.Const_list _ -> None
      in
      match (pattern, owner_table schema col) with
      | Some pattern, Some tbl ->
          let a = Db.column ref_db tbl.Schema.tname col in
          let counts = Hashtbl.create 16 in
          Array.iter
            (fun v ->
              match v with
              | Value.Str s when Mirage_sql.Like.matches ~pattern s ->
                  Hashtbl.replace counts s
                    (1 + try Hashtbl.find counts s with Not_found -> 0)
              | _ -> ())
            a;
          Hashtbl.fold (fun v c acc -> (Value.Str v, c) :: acc) counts []
          |> List.sort compare
      | _ -> [])
  | Pred.Cmp _ | Pred.Arith_cmp _ -> []

(* production value of a scalar parameter, for value sharing and placement *)
let param_key_fn prod_env p =
  match Pred.Env.find p prod_env with
  | Some (Pred.Env.Scalar v) -> Some v
  | Some (Pred.Env.Vlist _) | None -> None

(* edges that must be populated: every FK column in the schema *)
let all_edges schema =
  List.concat_map
    (fun (tbl : Schema.table) ->
      List.map
        (fun (f : Schema.fk) ->
          {
            Ir.e_pk_table = f.Schema.references;
            e_fk_table = tbl.Schema.tname;
            e_fk_col = f.Schema.fk_col;
          })
        tbl.Schema.fks)
    (Schema.tables schema)

let edge_id (e : Ir.edge) = e.Ir.e_fk_table ^ "." ^ e.Ir.e_fk_col

(* edge A must precede edge B when B's child-view subplans join on A's FK
   column *)
let edge_order_edges edges (joins : Ir.join_constraint list) =
  let uses_fk jc fk_col =
    let rec plan_uses = function
      | Plan.Table _ -> false
      | Plan.Select (_, q) | Plan.Project { input = q; _ }
      | Plan.Aggregate { input = q; _ } ->
          plan_uses q
      | Plan.Join { fk_col = c; left; right; _ } ->
          c = fk_col || plan_uses left || plan_uses right
    in
    let view_uses = function
      | Ir.Cv_subplan { cv_plan; _ } -> plan_uses cv_plan
      | Ir.Cv_full _ | Ir.Cv_select _ -> false
    in
    view_uses jc.Ir.jc_left || view_uses jc.Ir.jc_right
  in
  List.concat_map
    (fun e_b ->
      let constraints_b =
        List.filter (fun jc -> jc.Ir.jc_edge = e_b) joins
      in
      List.filter_map
        (fun e_a ->
          if
            e_a <> e_b
            && List.exists (fun jc -> uses_fk jc e_a.Ir.e_fk_col) constraints_b
          then Some (edge_id e_a, edge_id e_b)
          else None)
        edges)
    edges

(* constraints sourced from quarantined queries are removed from the IR
   before an attempt; the queries still replay, they just carry no
   cardinality guarantee *)
let filter_ir quarantined (ir : Ir.t) =
  if quarantined = [] then ir
  else
    let dropped src = List.mem (Diag.query_of_source src) quarantined in
    {
      ir with
      Ir.sccs =
        List.filter (fun (s : Ir.scc) -> not (dropped s.Ir.scc_source)) ir.Ir.sccs;
      joins =
        List.filter
          (fun (jc : Ir.join_constraint) -> not (dropped jc.Ir.jc_source))
          ir.Ir.joins;
    }

(* next query to quarantine: the one implicated by the most culprit
   constraints of the keygen failure, lexicographic-smallest on ties *)
let victim_query ~quarantined (f : Keygen.failure) =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun src ->
      let q = Diag.query_of_source src in
      if not (List.mem q quarantined) then
        Hashtbl.replace counts q
          (1 + try Hashtbl.find counts q with Not_found -> 0))
    f.Keygen.kf_culprits;
  Hashtbl.fold
    (fun q c best ->
      match best with
      | Some (bq, bc) when bc > c || (bc = c && bq <= q) -> best
      | Some _ | None -> Some (q, c))
    counts None
  |> Option.map fst

exception Keygen_failed of Keygen.failure

let generate_internal ~config (w : Workload.t) ~extraction ~t_extract
    ~elements_fallback ~prod_env ~init_diags =
  let schema = w.Workload.w_schema in
  (* one budget token for the whole run: stage boundaries poll it, and the
     keygen/CP layers poll it from inside their loops via [interrupt].  A
     breach raises [Budget.Exceeded], turned into a typed [Diag.Budget]
     error by the attempt loop below — parallel regions drain before
     re-raising, so no domain is left wedged and the resident pool stays
     usable for the next run. *)
  let budget = Budget.start config.budget in
  let batch_size = Budget.chunk_rows budget ~default:config.batch_size in
  let t_start = now () -. t_extract in
  let cpu_start = cpu_now () in
  let peak = ref (Mem.live_bytes ()) in
  let bump_peak () = peak := max !peak (Mem.live_bytes ()) in
  let full_ir = extraction.Extract.ir in
  (* fail fast on an IR or config that cannot drive generation at all *)
  let config_problems =
    match config.chunk_rows with
    | Some c when c < 1 ->
        [
          Diag.error ~hint:"pass a positive --chunk-rows (or None)"
            Diag.Validate "chunk_rows must be >= 1 (got %d)" c;
        ]
    | _ -> []
  in
  let card_problems =
    List.filter_map
      (fun (tbl : Schema.table) ->
        let t = tbl.Schema.tname in
        match List.assoc_opt t full_ir.Ir.table_cards with
        | None ->
            Some
              (Diag.error ~table:t
                 ~hint:"add a (rows ...) entry for every schema table"
                 Diag.Validate "no target row count for table %s" t)
        | Some n when n < 0 ->
            Some
              (Diag.error ~table:t Diag.Validate "negative row count %d for table %s" n t)
        | Some _ -> None)
      (Schema.tables schema)
  in
  match config_problems @ card_problems with
  | d :: _ -> Error d
  | [] ->
  (* one pool for the whole generation: CDF fan-out, per-table non-key
     instantiation, keygen CS/PF regions and retries all share its domains.
     The pool is the process-global resident one (or the caller's), shared
     across runs — no domain spawn/join on the generation path. *)
  let pool =
    match config.pool with
    | Some p -> p
    | None -> Par.get ~domains:config.domains ()
  in
  (* one generation attempt with the given queries quarantined; raises
     [Keygen_failed] on an infeasible population system so the retry loop
     can widen the quarantine *)
  let run_attempt quarantined =
    let warnings = ref [] and diags = ref [] in
    let warn fmt = Fmt.kstr (fun s -> warnings := s :: !warnings) fmt in
    let pushd d = diags := d :: !diags in
    let rng = Rng.create config.seed in
    (* CP solve cache: population systems recur across FK partitions,
       batches, edges — and, when the caller shares one via [config.cache],
       across whole runs; outcomes are replay-identical (see Solve_cache),
       so the cache only skips redundant search *)
    let cp_cache =
      match config.cache with
      | Some _ as c -> c
      | None -> if config.solve_cache then Some (Solve_cache.create ()) else None
    in
    let ir = filter_ir quarantined full_ir in
    let table_rows t = List.assoc t ir.Ir.table_cards in
    let dom t c =
      match List.assoc_opt (t, c) ir.Ir.column_cards with Some d -> max 1 d | None -> 1
    in
    (* --- 2. decouple LCCs ---------------------------------------------- *)
    let t0 = now () in
    let dec =
      Decouple.run schema ~dom ~table_rows ~param_key:(param_key_fn prod_env)
        ir.Ir.sccs
    in
    List.iter
      (fun d ->
        pushd d;
        warn "decouple %s: %s"
          (Option.value ~default:"env" d.Diag.d_query)
          d.Diag.d_message)
      dec.Decouple.skipped;
    let t_decouple = now () -. t0 in
    Budget.check budget;
    (* --- 3. per-column CDFs -------------------------------------------- *)
    let t0 = now () in
    let elements lit =
      (* prefer the elements collected by the workload parser (which also
         serve generation from a saved bundle); fall back to the production
         database *)
      let param_of = function
        | Pred.In { arg = Pred.Param p; _ } | Pred.Like { arg = Pred.Param p; _ } ->
            Some p
        | _ -> None
      in
      match param_of lit with
      | Some p when List.mem_assoc p ir.Ir.param_elements ->
          List.assoc p ir.Ir.param_elements
      | _ -> elements_fallback lit
    in
    let param_key = param_key_fn prod_env in
    let layouts_by_table = Hashtbl.create 16 in
    (* CDF fan-out: every (table, column) build is independent — run them as
       one parallel region in schema order; diagnostics are collected per
       job and merged sequentially in job order so their order (and the
       resulting bindings) never depends on the domain count *)
    let cdf_jobs =
      List.concat_map
        (fun (tbl : Schema.table) ->
          let tname = tbl.Schema.tname in
          let rows = table_rows tname in
          List.map (fun (c : Schema.column) -> (tname, rows, c)) tbl.Schema.nonkeys)
        (Schema.tables schema)
    in
    let build_layout (tname, rows, (c : Schema.column)) =
      let col = c.Schema.cname in
      let uccs =
        List.filter
          (fun (u : Ir.ucc) -> u.Ir.ucc_table = tname && u.Ir.ucc_col = col)
          dec.Decouple.uccs
      in
      let d = min (dom tname col) rows in
      if uccs = [] then
        (Cdf.default_layout ~table:tname ~col ~kind:c.Schema.kind ~dom:d ~rows, None)
      else
        match
          Cdf.build ~guided_placement:config.guided_placement ~table:tname
            ~col ~kind:c.Schema.kind ~dom:d ~rows ~uccs ~elements ~param_key
            ()
        with
        | Ok l -> (l, None)
        | Error msg ->
            if Sys.getenv_opt "CDF_DEBUG" <> None then begin
              Printf.eprintf "[cdf] %s.%s failed: %s\n" tname col msg;
              List.iter
                (fun (u : Ir.ucc) ->
                  Printf.eprintf "  %s: %s rows=%d key=%s\n" u.Ir.ucc_source
                    (Pred.to_string (Pred.Lit u.Ir.ucc_lit))
                    u.Ir.ucc_rows
                    (match
                       match u.Ir.ucc_lit with
                       | Pred.Cmp { arg = Pred.Param pp; _ } ->
                           param_key_fn prod_env pp
                       | _ -> None
                     with
                    | Some v -> Value.to_string v
                    | None -> "-"))
                uccs
            end;
            let l =
              Cdf.default_layout ~table:tname ~col ~kind:c.Schema.kind ~dom:d
                ~rows
            in
            (* the degraded column's parameters still need bindings
               so replay does not crash; errors surface instead *)
            let fallback =
              List.filter_map
                (fun (u : Ir.ucc) ->
                  match u.Ir.ucc_lit with
                  | Pred.Cmp { arg = Pred.Param p; _ } ->
                      Some (p, Pred.Env.Scalar (l.Cdf.l_render 1))
                  | Pred.In { arg = Pred.Param p; _ } ->
                      Some (p, Pred.Env.Vlist [ l.Cdf.l_render 1 ])
                  | Pred.Like { arg = Pred.Param p; _ } ->
                      Some (p, Pred.Env.Scalar (Value.Str "%"))
                  | Pred.Cmp _ | Pred.In _ | Pred.Like _
                  | Pred.Arith_cmp _ ->
                      None)
                uccs
            in
            ({ l with Cdf.l_bindings = fallback }, Some msg)
    in
    let cdf_results = Par.map_list pool build_layout cdf_jobs in
    List.iter2
      (fun (tname, _, _) (_, degraded) ->
        match degraded with
        | None -> ()
        | Some msg ->
            warn "cdf: %s (column degraded to default layout)" msg;
            pushd
              (Diag.warning ~table:tname Diag.Cdf
                 "%s (column degraded to default layout)" msg))
      cdf_jobs cdf_results;
    let layout_pairs =
      List.map2
        (fun (tname, _, (c : Schema.column)) (layout, _) ->
          (tname, (c.Schema.cname, layout)))
        cdf_jobs cdf_results
    in
    List.iter
      (fun (tbl : Schema.table) ->
        let tname = tbl.Schema.tname in
        Hashtbl.replace layouts_by_table tname
          (List.filter_map
             (fun (tn, pair) -> if tn = tname then Some pair else None)
             layout_pairs))
      (Schema.tables schema);
    let env = ref dec.Decouple.fixed_env in
    Hashtbl.iter
      (fun _ layouts ->
        List.iter
          (fun (_, l) ->
            List.iter
              (fun (p, b) -> env := Pred.Env.add p b !env)
              l.Cdf.l_bindings)
          layouts)
      layouts_by_table;
    let t_cdf = now () -. t0 in
    bump_peak ();
    Budget.check budget;
    (* --- 4. non-key data (GD) ------------------------------------------ *)
    let t0 = now () in
    let db = Db.create schema in
    let columns_by_table = Hashtbl.create 16 in
    let param_values p =
      let prefix = p ^ "#" in
      let is_sub q =
        String.length q > String.length prefix
        && String.sub q 0 (String.length prefix) = prefix
      in
      let found = ref None in
      Hashtbl.iter
        (fun _ layouts ->
          List.iter
            (fun (_, l) ->
              if !found = None then
                match Cdf.lookup_param_card l p with
                | Some v -> found := Some [ v ]
                | None ->
                    let subs =
                      List.filter (fun (q, _) -> is_sub q) l.Cdf.l_param_card
                    in
                    if subs <> [] then
                      found :=
                        Some
                          (List.sort compare subs |> List.map snd
                          |> List.filter (fun v -> v >= 1)))
            layouts)
        layouts_by_table;
      !found
    in
    (* per-table fan-out: the RNG stream of every table is split off
       sequentially in schema order (exactly the sequence the sequential
       writer drew), then the instantiations run in parallel and the tables
       are committed to the database sequentially, again in schema order *)
    let gd_jobs =
      List.map (fun (tbl : Schema.table) -> (tbl, Rng.split rng)) (Schema.tables schema)
    in
    let gd_results =
      Par.map_list pool
        (fun ((tbl : Schema.table), rng_t) ->
          let tname = tbl.Schema.tname in
          let rows = table_rows tname in
          let layouts = Hashtbl.find layouts_by_table tname in
          let dropped = ref [] in
          let bound =
            List.filter
              (fun (b : Ir.bound_rows) ->
                b.Ir.br_table = tname && b.Ir.br_rows > 0
                &&
                (* a bound group is only usable when every cell's parameter got
                   a cardinality value (its column's layout was not degraded) *)
                let ok =
                  List.for_all
                    (fun (_, p) ->
                      match param_values p with Some (_ :: _) -> true | _ -> false)
                    b.Ir.br_cells
                in
                if not ok then dropped := b :: !dropped;
                ok)
              dec.Decouple.bound
          in
          let cols =
            Nonkey.generate ?chunk_rows:config.chunk_rows
              ~interrupt:(fun () -> Budget.check budget)
              ~rng:rng_t ~table:tbl ~rows ~layouts ~bound ~param_values ()
          in
          (* placeholder FK columns so the table is complete for the engine *)
          let cols =
            cols
            @ List.map
                (fun (f : Schema.fk) -> (f.Schema.fk_col, Col.const_null rows))
                tbl.Schema.fks
          in
          (tname, cols, List.rev !dropped))
        gd_jobs
    in
    List.iter
      (fun (tname, cols, dropped) ->
        List.iter
          (fun (b : Ir.bound_rows) ->
            warn "bound group from %s dropped (degraded column layout)"
              b.Ir.br_source;
            pushd
              (Diag.warning ~table:tname ~query:b.Ir.br_source Diag.Nonkey
                 "bound group dropped (degraded column layout)"))
          dropped;
        Hashtbl.replace columns_by_table tname cols;
        Db.put_cols db tname cols)
      gd_results;
    let t_gd = now () -. t0 in
    bump_peak ();
    Budget.check budget;
    (* --- 5. ACC parameters --------------------------------------------- *)
    let t0 = now () in
    let frozen_prefix_of table =
      List.fold_left
        (fun acc (b : Ir.bound_rows) ->
          if b.Ir.br_table = table then acc + b.Ir.br_rows else acc)
        0 dec.Decouple.bound
    in
    List.iter
      (fun (acc : Ir.acc) ->
        let p, b =
          Acc.instantiate ~repair:config.acc_repair
            ~frozen_prefix:(frozen_prefix_of acc.Ir.acc_table)
            ~interrupt:(fun () -> Budget.check budget)
            ~rng:(Rng.split rng) ~db ~sample_size:config.sample_size acc
        in
        env := Pred.Env.add p b !env)
      dec.Decouple.accs;
    let t_acc = now () -. t0 in
    Budget.check budget;
    (* --- 6. key generation (CS / CP / PF) ------------------------------- *)
    let times = Keygen.fresh_times () in
    let edges = all_edges schema in
    let order_edges = edge_order_edges edges ir.Ir.joins in
    let ids = List.map edge_id edges in
    let sorted_ids = Toposort.sort ~vertices:ids ~edges:order_edges in
    let edge_of_id id = List.find (fun e -> edge_id e = id) edges in
    let overlap = config.schedule = `Overlap in
    (* one edge's population.  [rng_e] is the exact RNG stream the
       sequential barrier walk would hand this edge — pre-sequenced by the
       caller, so the schedule decides only when the work runs, never what
       it draws. *)
    let edge_work ~rng_e ~times_e ~env_e edge constraints =
      let tname = edge.Ir.e_fk_table in
      let rows = table_rows tname in
      if constraints = [] then begin
        (* unconstrained FK: any primary key of the referenced table.
           The fill proceeds chunk-at-a-time under a chunk plan (same
           draw order as one pass, so same bytes), polling the budget
           between chunks. *)
        let step =
          match config.chunk_rows with Some c -> c | None -> max 1 rows
        in
        let pk_name = (Schema.table schema edge.Ir.e_pk_table).Schema.pk in
        match Db.col db edge.Ir.e_pk_table pk_name with
        | (Col.Ints { nulls = None; _ } | Col.Big_ints { nulls = None; _ })
          as pk_col ->
            let n = Col.length pk_col in
            let fk = Col.Ivec.make rows 0 in
            let lo = ref 0 in
            while !lo < rows do
              Budget.check budget;
              let hi = min rows (!lo + step) in
              for i = !lo to hi - 1 do
                Col.Ivec.unsafe_set fk i (Col.int_at pk_col (Rng.int rng_e n))
              done;
              lo := hi
            done;
            (Col.Ivec.to_col fk, [])
        | pk_col ->
            let pks = Col.to_values pk_col in
            let n = Array.length pks in
            (Col.of_values (Array.init rows (fun _ -> pks.(Rng.int rng_e n))), [])
      end
      else
        match
          Keygen.populate_edge ~lp_guide:config.lp_guide
            ~sparsify:config.sparsify ~capacity_repair:config.capacity_repair
            ~pool ?cache:cp_cache
            ~interrupt:(fun () -> Budget.check budget)
            ~overlap ~rng:rng_e ~db ~env:env_e ~edge ~constraints
            ~batch_size ~cp_max_nodes:config.cp_max_nodes ~times:times_e ()
        with
        | Ok (fk, notices) -> (Col.Ivec.to_col fk, notices)
        | Error f -> raise (Keygen_failed f)
    in
    let handle_notices notices =
      List.iter
        (fun d ->
          pushd d;
          (* Info notices (per-edge CP counters) stay diagnostics
             only; resize/deviation warnings also hit the legacy
             warning channel *)
          if d.Diag.d_severity <> Diag.Info then
            warn "keygen resize: %s: %s"
              (Option.value ~default:"?" d.Diag.d_query)
              d.Diag.d_message)
        notices
    in
    let commit_edge edge fk_col =
      let tname = edge.Ir.e_fk_table in
      let cols = Hashtbl.find columns_by_table tname in
      let cols =
        List.map
          (fun (c, a) -> if c = edge.Ir.e_fk_col then (c, fk_col) else (c, a))
          cols
      in
      Hashtbl.replace columns_by_table tname cols;
      Db.put_cols db tname cols
    in
    let constraints_of edge =
      List.filter (fun jc -> jc.Ir.jc_edge = edge) ir.Ir.joins
    in
    if not overlap then
      (* barrier schedule: edges strictly one after another in topological
         order, drawing from the shared RNG in place — the differential
         oracle the overlap path is tested against *)
      List.iter
        (fun id ->
          let edge = edge_of_id id in
          let constraints = constraints_of edge in
          let rng_e = if constraints = [] then rng else Rng.split rng in
          let fk_col, notices =
            edge_work ~rng_e ~times_e:times ~env_e:!env edge constraints
          in
          handle_notices notices;
          commit_edge edge fk_col)
        sorted_ids
    else begin
      (* overlap schedule: one pool task per edge.  The walk below visits
         edges in the same topological order as the barrier path and
         pre-sequences each task's RNG there — a constrained edge takes a
         split (one draw), an unconstrained edge takes a copy of the
         stream while the shared RNG skips the [rows] draws the fill will
         consume — so execution order cannot change a single byte.

         Scheduling is orchestrator-driven: a task is submitted only once
         every one of its dependencies (its [order_edges] predecessors,
         plus the previous edge of its own FK table — commits
         read-modify-write that table's column list) has been awaited.
         Task bodies therefore never block on other tasks, which makes
         [Future.await]'s queue-helping safe: nothing a blocked caller can
         pop depends on work suspended beneath it on the same stack.
         [await] synchronises through the pool mutex, so a committed
         dependency is fully visible to every task submitted after it. *)
      let env_e = !env in
      (* per edge id, in topo order: pre-sequenced RNG, private counter
         record, dependency set (deduplicated) *)
      let rng_of = Hashtbl.create 16 in
      let times_of = Hashtbl.create 16 in
      let deps_of = Hashtbl.create 16 in
      let last_seen = Hashtbl.create 8 in
      List.iter
        (fun id ->
          let edge = edge_of_id id in
          let constraints = constraints_of edge in
          let rng_e =
            if constraints = [] then begin
              let c = Rng.copy rng in
              Rng.skip rng (table_rows edge.Ir.e_fk_table);
              c
            end
            else Rng.split rng
          in
          Hashtbl.replace rng_of id rng_e;
          Hashtbl.replace times_of id (Keygen.fresh_times ());
          let deps =
            List.filter_map
              (fun (a, b) -> if b = id && a <> id then Some a else None)
              order_edges
            @
            match Hashtbl.find_opt last_seen edge.Ir.e_fk_table with
            | Some prev -> [ prev ]
            | None -> []
          in
          Hashtbl.replace deps_of id (List.sort_uniq compare deps);
          Hashtbl.replace last_seen edge.Ir.e_fk_table id)
        sorted_ids;
      let succs_of id =
        List.filter (fun s -> List.mem id (Hashtbl.find deps_of s)) sorted_ids
      in
      let futs = Hashtbl.create 16 in
      let submit id =
        let edge = edge_of_id id in
        let constraints = constraints_of edge in
        let rng_e = Hashtbl.find rng_of id in
        let times_e = Hashtbl.find times_of id in
        Hashtbl.replace futs id
          (Par.Future.submit pool (fun () ->
               let fk_col, notices =
                 edge_work ~rng_e ~times_e ~env_e edge constraints
               in
               commit_edge edge fk_col;
               notices))
      in
      (* a table is exportable the moment its last edge committed — or
         right now, if no edge writes into it (non-key data is final once
         ACC ran) *)
      let export_futs = ref [] in
      let edges_left = Hashtbl.create 8 in
      List.iter
        (fun id ->
          let t = (edge_of_id id).Ir.e_fk_table in
          Hashtbl.replace edges_left t
            (1 + Option.value ~default:0 (Hashtbl.find_opt edges_left t)))
        sorted_ids;
      let submit_export tname =
        match config.on_table_ready with
        | None -> ()
        | Some ready ->
            export_futs :=
              Par.Future.submit pool (fun () -> ready db tname) :: !export_futs
      in
      List.iter
        (fun (tbl : Schema.table) ->
          if not (Hashtbl.mem edges_left tbl.Schema.tname) then
            submit_export tbl.Schema.tname)
        (Schema.tables schema);
      let remaining = Hashtbl.create 16 in
      List.iter
        (fun id ->
          Hashtbl.replace remaining id (List.length (Hashtbl.find deps_of id)))
        sorted_ids;
      List.iter
        (fun id -> if Hashtbl.find remaining id = 0 then submit id)
        sorted_ids;
      (* collect in topological order: notices, per-edge counter merges and
         the winning error all replay exactly the barrier path's sequence.
         A failed edge stops further submissions (its dependents never
         run, as on the barrier path after a raise), but every submitted
         future — exports included — is awaited before re-raising, so the
         pool is fully drained for the quarantine retry. *)
      let first_err = ref None in
      List.iter
        (fun id ->
          match Hashtbl.find_opt futs id with
          | None -> () (* a dependency failed; never submitted *)
          | Some fut -> (
              match Par.Future.await fut with
              | notices ->
                  if !first_err = None then begin
                    Keygen.add_times times (Hashtbl.find times_of id);
                    handle_notices notices;
                    List.iter
                      (fun s ->
                        let left = Hashtbl.find remaining s - 1 in
                        Hashtbl.replace remaining s left;
                        if left = 0 then submit s)
                      (succs_of id);
                    let t = (edge_of_id id).Ir.e_fk_table in
                    let left = Hashtbl.find edges_left t - 1 in
                    Hashtbl.replace edges_left t left;
                    if left = 0 then submit_export t
                  end
              | exception e -> if !first_err = None then first_err := Some e))
        sorted_ids;
      (* live exports are best-effort: anything they failed to write is
         re-exported (or surfaced) by the caller's finish pass *)
      List.iter
        (fun f -> try ignore (Par.Future.await f) with _ -> ())
        !export_futs;
      match !first_err with Some e -> raise e | None -> ()
    end;
    bump_peak ();
    (* --- 7. close the environment -------------------------------------- *)
    List.iter
      (fun p ->
        if Pred.Env.find p !env = None then begin
          warn "parameter %s left unbound; defaulting" p;
          pushd
            (Diag.warning Diag.Driver "parameter %s left unbound; defaulting" p);
          env := Pred.Env.add p (Pred.Env.Scalar (Value.Int 1)) !env
        end)
      (Workload.param_names w);
    ( db,
      !env,
      (t_decouple, t_cdf, t_gd, t_acc, times),
      List.rev !warnings,
      List.rev !diags )
  in
  (* degraded mode: on an infeasible population system, quarantine the most
     implicated query and regenerate; the remaining queries keep their exact
     guarantees.  At most one query per retry, at most one retry per query. *)
  let quarantine_diags = ref [] in
  let rec attempt quarantined tries =
    match run_attempt quarantined with
    | outcome -> Ok (outcome, quarantined)
    | exception Keygen_failed f -> (
        (* the dead attempt may already have live-exported finished tables;
           give the exporter a chance to drop that attempt's shards before
           the quarantine retry regenerates them (or the error surfaces) *)
        (match config.on_attempt_abort with
        | Some abort -> ( try abort () with _ -> ())
        | None -> ());
        let fd = f.Keygen.kf_diag in
        if tries <= 0 then Error fd
        else
          match victim_query ~quarantined f with
          | None -> Error fd
          | Some q ->
              quarantine_diags :=
                Diag.error ~query:q
                  ~hint:
                    "fix or drop the conflicting annotations to restore \
                     exact generation for this query"
                  Diag.Driver "query %s quarantined: %s" q fd.Diag.d_message
                :: !quarantine_diags;
              attempt (q :: quarantined) (tries - 1))
    | exception Failure msg -> Error (Diag.error Diag.Driver "%s" msg)
    | exception Rewrite.Unsupported msg ->
        Error (Diag.error Diag.Extract "rewrite: %s" msg)
    | exception Budget.Exceeded r ->
        Error
          (Diag.error
             ~hint:
               "raise the budget (rows / heap / deadline) or lower the \
                scale factor and rerun"
             Diag.Budget "%s" (Budget.describe r))
  in
  (* streamed generation: under a chunk plan, no table-sized vector may
     live on the OCaml heap — scope the big-rows threshold down to one
     chunk for the whole attempt (restored even on error), so every column,
     work vector and bitmap longer than a chunk takes the off-heap
     representation.  Representation is invisible to replay and rendering
     (the engine is representation-blind), so the bytes are unchanged. *)
  let saved_big = Col.big_rows () in
  (match config.chunk_rows with
  | Some c -> Col.set_big_rows (min saved_big (c + 1))
  | None -> ());
  let outcome =
    Fun.protect
      ~finally:(fun () -> Col.set_big_rows saved_big)
      (fun () -> attempt [] (List.length w.Workload.w_queries))
  in
  match outcome with
  | Error d -> Error d
  | Ok ((db, env, (t_decouple, t_cdf, t_gd, t_acc, times), warnings, diags), quarantined)
    ->
      bump_peak ();
      let quarantine_diags = List.rev !quarantine_diags in
      let all_diags =
        init_diags @ extraction.Extract.diags @ quarantine_diags @ diags
      in
      let verdicts =
        List.map
          (fun (q : Workload.query) ->
            let name = q.Workload.q_name in
            let mentions d = Diag.base_query d = Some name in
            if List.mem name quarantined then
              {
                Diag.v_query = name;
                v_status = Diag.Quarantined;
                v_detail =
                  Option.map
                    (fun d -> d.Diag.d_message)
                    (List.find_opt mentions quarantine_diags);
              }
            else
              match
                List.find_opt mentions extraction.Extract.diags
              with
              | Some d ->
                  {
                    Diag.v_query = name;
                    v_status = Diag.Unsupported;
                    v_detail = Some d.Diag.d_message;
                  }
              | None -> (
                  match
                    List.find_opt
                      (fun d -> mentions d && d.Diag.d_severity <> Diag.Info)
                      diags
                  with
                  | Some d ->
                      {
                        Diag.v_query = name;
                        v_status = Diag.Degraded;
                        v_detail = Some d.Diag.d_message;
                      }
                  | None ->
                      {
                        Diag.v_query = name;
                        v_status = Diag.Exact;
                        v_detail = None;
                      }))
          w.Workload.w_queries
      in
      let t_total = now () -. t_start in
      (* the per-table chunk layouts this run generated under — exporters
         and resumable runs slice by exactly these ranges *)
      let chunk_plans =
        match config.chunk_rows with
        | Some c ->
            List.map
              (fun (tbl : Schema.table) ->
                Chunk_plan.make ~table:tbl.Schema.tname
                  ~rows:(Db.row_count db tbl.Schema.tname) ~chunk_rows:c)
              (Schema.tables schema)
        | None -> []
      in
      Ok
        {
          r_db = db;
          r_env = env;
          r_extraction = extraction;
          r_timings =
            {
              t_extract;
              t_decouple;
              t_cdf;
              t_gd;
              t_acc;
              t_cs = times.Keygen.t_cs;
              t_cp = times.Keygen.t_cp;
              t_pf = times.Keygen.t_pf;
              t_total;
              t_cpu = cpu_now () -. cpu_start;
              domains_used = Par.size pool;
              cp_solves = times.Keygen.cp_solves;
              cp_nodes = times.Keygen.cp_nodes;
              cp_restarts = times.Keygen.cp_restarts;
              cp_props = times.Keygen.cp_props;
              cp_cache_hits = times.Keygen.cp_cache_hits;
              batch_alloc_bytes = times.Keygen.batch_alloc_bytes;
            };
          r_peak_bytes = !peak;
          r_chunk_plans = chunk_plans;
          r_warnings = warnings;
          r_diags = all_diags;
          r_verdicts = verdicts;
        }

let first_error diags =
  List.find_opt (fun d -> d.Diag.d_severity = Diag.Error) diags

let generate ?(config = default_config) (w : Workload.t) ~ref_db ~prod_env =
  let vdiags = Workload.validate w in
  match first_error vdiags with
  | Some d -> Error d
  | None -> (
      let t0 = now () in
      match Extract.run w ~ref_db ~prod_env with
      | extraction ->
          let t_extract = now () -. t0 in
          generate_internal ~config w ~extraction ~t_extract
            ~elements_fallback:(elements_fn w.Workload.w_schema ref_db prod_env)
            ~prod_env ~init_diags:vdiags
      | exception Rewrite.Unsupported msg ->
          Error (Diag.error Diag.Extract "rewrite: %s" msg)
      | exception Invalid_argument msg ->
          Error (Diag.error Diag.Extract "%s" msg))

let generate_from_bundle ?(config = default_config) (b : Bundle.t) =
  (* generation from a saved constraint bundle: no production database —
     unresolved in/like elements simply have no production signal *)
  let vdiags = Bundle.validate b in
  match first_error vdiags with
  | Some d -> Error d
  | None ->
      let extraction =
        { Extract.ir = b.Bundle.b_ir; aqts = []; rewritten = []; diags = [] }
      in
      generate_internal ~config b.Bundle.b_workload ~extraction ~t_extract:0.0
        ~elements_fallback:(fun _ -> [])
        ~prod_env:b.Bundle.b_env ~init_diags:vdiags

let measure_errors r =
  Error.measure ~aqts:r.r_extraction.Extract.aqts ~db:r.r_db ~env:r.r_env
