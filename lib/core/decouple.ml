module Pred = Mirage_sql.Pred
module Value = Mirage_sql.Value
module Schema = Mirage_sql.Schema

type result = {
  uccs : Ir.ucc list;
  accs : Ir.acc list;
  bound : Ir.bound_rows list;
  fixed_env : Pred.Env.t;
  skipped : Diag.t list;
}

exception Skip of string

(* Rendering of cardinality-space value [v] in a column's declared kind.
   String values are zero-padded so lexicographic order equals numeric
   order. *)
let value_in_kind kind v =
  match kind with
  | Schema.Kint -> Value.Int v
  | Schema.Kfloat -> Value.Float (float_of_int v)
  | Schema.Kstring -> Value.Str (Printf.sprintf "v%08d" v)

let impossible_string = "\000nomatch"

let param_of_operand = function
  | Pred.Param p -> Some p
  | Pred.Const _ | Pred.Const_list _ -> None

let literal_param = function
  | Pred.Cmp { arg; _ } | Pred.In { arg; _ } | Pred.Like { arg; _ }
  | Pred.Arith_cmp { arg; _ } ->
      param_of_operand arg

(* Table 3, adapted to our cardinality space [1, dom]. *)
let universe_sentinel kind ~dom lit =
  match literal_param lit with
  | None -> None
  | Some _ -> (
      match lit with
      | Pred.Cmp { cmp = Pred.Gt; _ } -> Some (Pred.Env.Scalar (value_in_kind kind 0))
      | Pred.Cmp { cmp = Pred.Ge; _ } -> Some (Pred.Env.Scalar (value_in_kind kind 1))
      | Pred.Cmp { cmp = Pred.Lt; _ } ->
          Some (Pred.Env.Scalar (value_in_kind kind (dom + 1)))
      | Pred.Cmp { cmp = Pred.Le; _ } ->
          Some (Pred.Env.Scalar (value_in_kind kind dom))
      | Pred.Cmp { cmp = Pred.Neq; _ } ->
          Some (Pred.Env.Scalar (value_in_kind kind 0))
      | Pred.Cmp { cmp = Pred.Eq; _ } -> None
      | Pred.In { neg = true; _ } -> Some (Pred.Env.Vlist [])
      | Pred.In { neg = false; _ } -> None
      | Pred.Like { neg = true; _ } ->
          Some (Pred.Env.Scalar (Value.Str impossible_string))
      | Pred.Like { neg = false; _ } -> None
      | Pred.Arith_cmp { cmp = Pred.Lt | Pred.Le; _ } ->
          Some (Pred.Env.Scalar (Value.Float 1e18))
      | Pred.Arith_cmp { cmp = Pred.Gt | Pred.Ge; _ } ->
          Some (Pred.Env.Scalar (Value.Float (-1e18)))
      | Pred.Arith_cmp { cmp = Pred.Eq | Pred.Neq; _ } -> None)

let empty_sentinel kind ~dom lit =
  match literal_param lit with
  | None -> None
  | Some _ -> (
      match lit with
      | Pred.Cmp { cmp = Pred.Gt; _ } ->
          Some (Pred.Env.Scalar (value_in_kind kind dom))
      | Pred.Cmp { cmp = Pred.Ge; _ } ->
          Some (Pred.Env.Scalar (value_in_kind kind (dom + 1)))
      | Pred.Cmp { cmp = Pred.Lt; _ } -> Some (Pred.Env.Scalar (value_in_kind kind 1))
      | Pred.Cmp { cmp = Pred.Le; _ } -> Some (Pred.Env.Scalar (value_in_kind kind 0))
      | Pred.Cmp { cmp = Pred.Eq; _ } -> Some (Pred.Env.Scalar (value_in_kind kind 0))
      | Pred.Cmp { cmp = Pred.Neq; _ } -> None
      | Pred.In { neg = false; _ } -> Some (Pred.Env.Vlist [])
      | Pred.In { neg = true; _ } -> None
      | Pred.Like { neg = false; _ } ->
          Some (Pred.Env.Scalar (Value.Str impossible_string))
      | Pred.Like { neg = true; _ } -> None
      | Pred.Arith_cmp { cmp = Pred.Lt | Pred.Le; _ } ->
          Some (Pred.Env.Scalar (Value.Float (-1e18)))
      | Pred.Arith_cmp { cmp = Pred.Gt | Pred.Ge; _ } ->
          Some (Pred.Env.Scalar (Value.Float 1e18))
      | Pred.Arith_cmp { cmp = Pred.Eq | Pred.Neq; _ } -> None)

(* A fallback value for parameters whose literal is already irrelevant
   (their clause has been made U by another literal). *)
let harmless_binding kind ~dom lit =
  match empty_sentinel kind ~dom lit with
  | Some b -> Some b
  | None -> (
      match universe_sentinel kind ~dom lit with
      | Some b -> Some b
      | None -> (
          match lit with
          | Pred.In _ -> Some (Pred.Env.Vlist [ value_in_kind kind 1 ])
          | Pred.Like _ -> Some (Pred.Env.Scalar (Value.Str "%"))
          | Pred.Cmp _ -> Some (Pred.Env.Scalar (value_in_kind kind 1))
          | Pred.Arith_cmp _ -> Some (Pred.Env.Scalar (Value.Float 0.0))))

(* base preference order when keeping a literal: ranges are free (they only
   add a CDF anchor), arithmetic costs a sampling pass, equality classes
   consume the column's row budget *)
let base_cost = function
  | Pred.Cmp { arg = Pred.Param _; cmp = Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge; _ } -> 0
  | Pred.Arith_cmp { arg = Pred.Param _; _ } -> 2
  | Pred.Cmp { arg = Pred.Param _; cmp = Pred.Eq | Pred.Neq; _ } -> 3
  | Pred.In { arg = Pred.Param _; _ } -> 4
  | Pred.Like { arg = Pred.Param _; _ } -> 5
  | Pred.Cmp _ | Pred.In _ | Pred.Like _ | Pred.Arith_cmp _ -> 1000

let literal_of_cnf_member = function
  | Pred.Lit l -> l
  | Pred.Not (Pred.Lit l) -> (
      match Pred.negate_literal l with
      | Some l' -> l'
      | None -> raise (Skip "literal cannot be negated"))
  | _ -> raise (Skip "non-literal inside CNF clause")

let literal_main_column = function
  | Pred.Cmp { col; _ } | Pred.In { col; _ } | Pred.Like { col; _ } -> Some col
  | Pred.Arith_cmp _ -> None

type ctx = {
  schema : Schema.t;
  dom : string -> string -> int;
  table_rows : string -> int;
  e_used : (string * string, int * int) Hashtbl.t;
      (* per-column (rows, values) already claimed by equality-class
         constraints *)
  e_claimed : (string * string * string * int, unit) Hashtbl.t;
  param_key : string -> Value.t option;
  mutable out_uccs : Ir.ucc list;
  mutable out_accs : Ir.acc list;
  mutable out_bound : Ir.bound_rows list;
  mutable env : Pred.Env.t;
}

(* rows an equality-class literal would pin if kept with count [n] *)
let e_rows_of ctx table lit n =
  match lit with
  | Pred.Cmp { cmp = Pred.Eq; _ } | Pred.In { neg = false; _ }
  | Pred.Like { neg = false; _ } ->
      n
  | Pred.Cmp { cmp = Pred.Neq; _ } | Pred.In { neg = true; _ }
  | Pred.Like { neg = true; _ } ->
      ctx.table_rows table - n
  | Pred.Cmp _ | Pred.Arith_cmp _ -> 0

let is_range = function
  | Pred.Cmp { cmp = Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge; _ } -> true
  | Pred.Cmp _ | Pred.In _ | Pred.Like _ | Pred.Arith_cmp _ -> false

(* budget-aware cost: an equality-class literal that would overflow its
   column's remaining rows is heavily penalised so another literal of the
   clause is kept instead *)
(* a range anchor costs a value slot (its boundary splits a range); penalise
   when the domain has no slots left *)
let range_cost ctx table lit base =
  match literal_main_column lit with
  | None -> base
  | Some col ->
      let _, used_values =
        try Hashtbl.find ctx.e_used (table, col) with Not_found -> (0, 0)
      in
      if used_values + 1 >= ctx.dom table col then base + 100 else base

let literal_cost ctx table n lit =
  let base = base_cost lit in
  let pinned = e_rows_of ctx table lit n in
  if base >= 1000 then base
  else if is_range lit then range_cost ctx table lit base
  else if pinned = 0 then base
  else
    match literal_main_column lit with
    | None -> base
    | Some col ->
        let used_rows, used_values =
          try Hashtbl.find ctx.e_used (table, col) with Not_found -> (0, 0)
        in
        let rows = ctx.table_rows table in
        let dom = ctx.dom table col in
        (* every remaining domain value still needs at least one row, so the
           usable row budget excludes that reserve *)
        let reserve = max 0 (dom - used_values - 1) in
        if used_rows + pinned > rows - reserve then base + 100 else base


let claim_budget ctx table lit n =
  let pinned = e_rows_of ctx table lit n in
  (if is_range lit then
     match literal_main_column lit with
     | Some col ->
         let used_rows, used_values =
           try Hashtbl.find ctx.e_used (table, col) with Not_found -> (0, 0)
         in
         Hashtbl.replace ctx.e_used (table, col) (used_rows, used_values + 1)
     | None -> ());
  if pinned > 0 then
    match literal_main_column lit with
    | Some col ->
        (* constraints over the same production value with the same count
           alias to one synthetic value in the CDF, so they claim the budget
           only once *)
        let key =
          match literal_param lit with
          | Some p -> (
              match ctx.param_key p with
              | Some v -> Some (table, col, Value.to_string v, n)
              | None -> None)
          | None -> None
        in
        let fresh =
          match key with
          | Some k ->
              if Hashtbl.mem ctx.e_claimed k then false
              else begin
                Hashtbl.add ctx.e_claimed k ();
                true
              end
          | None -> true
        in
        if fresh then begin
          let used_rows, used_values =
            try Hashtbl.find ctx.e_used (table, col) with Not_found -> (0, 0)
          in
          Hashtbl.replace ctx.e_used (table, col) (used_rows + pinned, used_values + 1)
        end
    | None -> ()

let bind ctx param binding = ctx.env <- Pred.Env.add param binding ctx.env

let kind_and_dom ctx table lit =
  match literal_main_column lit with
  | Some col ->
      let tbl = Schema.table ctx.schema table in
      if Schema.is_pk tbl col || Schema.is_fk tbl col then
        raise (Skip (Printf.sprintf "selection on key column %s" col));
      let c = Schema.nonkey tbl col in
      (c.Schema.kind, ctx.dom table col)
  | None -> (Schema.Kfloat, 1)

let require_param lit =
  match literal_param lit with
  | Some p -> p
  | None -> raise (Skip "literal with constant argument kept after elimination")

(* Make a clause universal: one literal gets its U sentinel, the rest get
   harmless bindings. *)
let eliminate_clause_as_universe ctx table clause =
  let u_lit =
    match
      List.find_opt
        (fun lit ->
          let kind, dom = kind_and_dom ctx table lit in
          universe_sentinel kind ~dom lit <> None)
        clause
    with
    | Some l -> l
    | None -> raise (Skip "clause cannot be made universal")
  in
  List.iter
    (fun lit ->
      match literal_param lit with
      | None -> ()
      | Some p ->
          let kind, dom = kind_and_dom ctx table lit in
          let binding =
            if lit == u_lit then universe_sentinel kind ~dom lit
            else harmless_binding kind ~dom lit
          in
          (match binding with Some b -> bind ctx p b | None -> ()))
    clause

let eliminate_literal_as_empty ctx table lit =
  match literal_param lit with
  | None -> raise (Skip "constant literal cannot be eliminated")
  | Some p -> (
      let kind, dom = kind_and_dom ctx table lit in
      match empty_sentinel kind ~dom lit with
      | Some b -> bind ctx p b
      | None -> raise (Skip "literal cannot be made empty"))

let emit_single ctx table source lit rows =
  match lit with
  | Pred.Arith_cmp { expr; cmp; arg } ->
      let p =
        match param_of_operand arg with
        | Some p -> p
        | None -> raise (Skip "arithmetic literal with constant argument")
      in
      ctx.out_accs <-
        {
          Ir.acc_table = table;
          acc_expr = expr;
          acc_cmp = cmp;
          acc_param = p;
          acc_rows = rows;
          acc_source = source;
        }
        :: ctx.out_accs
  | Pred.Cmp { col; _ } | Pred.In { col; _ } | Pred.Like { col; _ } ->
      ignore (require_param lit);
      ignore (kind_and_dom ctx table lit);
      claim_budget ctx table lit rows;
      ctx.out_uccs <-
        {
          Ir.ucc_table = table;
          ucc_col = col;
          ucc_lit = lit;
          ucc_rows = rows;
          ucc_source = source;
        }
        :: ctx.out_uccs

(* Reduce a kept clause (an OR of literals) carrying required output size
   [rows]. *)
let process_kept_clause ctx table source clause rows =
  match clause with
  | [] -> raise (Skip "empty clause")
  | [ lit ] -> emit_single ctx table source lit rows
  | lits -> (
      let can_empty lit =
        let kind, dom = kind_and_dom ctx table lit in
        empty_sentinel kind ~dom lit <> None
      in
      let non_empties = List.filter (fun l -> not (can_empty l)) lits in
      match non_empties with
      | [] ->
          (* all can be ∅: keep the cheapest, eliminate the rest (rule₂) *)
          let kept =
            List.fold_left
              (fun best lit ->
                if literal_cost ctx table rows lit < literal_cost ctx table rows best
                then lit
                else best)
              (List.hd lits) lits
          in
          List.iter
            (fun lit -> if lit != kept then eliminate_literal_as_empty ctx table lit)
            lits;
          emit_single ctx table source kept rows
      | _ :: _ ->
          (* rule₃ (De Morgan): eliminate ∅-able literals, complement the
             rest: |∪ σ_li| = n  ⇔  |∩ σ_¬li| = |T| − n. *)
          List.iter
            (fun lit -> if can_empty lit then eliminate_literal_as_empty ctx table lit)
            lits;
          let negs =
            List.map
              (fun lit ->
                match Pred.negate_literal lit with
                | Some l -> l
                | None -> raise (Skip "cannot complement literal"))
              non_empties
          in
          let m = ctx.table_rows table - rows in
          if m < 0 then raise (Skip "complement count negative");
          List.iter (fun l -> emit_single ctx table source l m) negs;
          if List.length negs > 1 then begin
            let cells =
              List.map
                (fun l ->
                  match (literal_main_column l, literal_param l) with
                  | Some col, Some p -> (col, p)
                  | _ -> raise (Skip "complemented literal unusable for binding"))
                negs
            in
            ctx.out_bound <-
              { Ir.br_table = table; br_cells = cells; br_rows = m; br_source = source }
              :: ctx.out_bound
          end)

let process_scc ctx (scc : Ir.scc) =
  let table = scc.Ir.scc_table in
  let source = scc.Ir.scc_source in
  let clauses =
    Pred.cnf scc.Ir.scc_pred |> List.map (List.map literal_of_cnf_member)
  in
  match clauses with
  | [] -> () (* predicate is True: no constraint *)
  | [ [ lit ] ] -> emit_single ctx table source lit scc.Ir.scc_rows
  | _ -> (
      let can_universe clause =
        List.exists
          (fun lit ->
            let kind, dom = kind_and_dom ctx table lit in
            universe_sentinel kind ~dom lit <> None)
          clause
      in
      let hard = List.filter (fun c -> not (can_universe c)) clauses in
      match hard with
      | [] ->
          (* rule₁: all clauses can be U; keep the cheapest one *)
          let cost clause =
            List.fold_left
              (fun m l -> min m (literal_cost ctx table scc.Ir.scc_rows l))
              10000 clause
          in
          let kept =
            List.fold_left
              (fun best c -> if cost c < cost best then c else best)
              (List.hd clauses) clauses
          in
          List.iter
            (fun c -> if c != kept then eliminate_clause_as_universe ctx table c)
            clauses;
          process_kept_clause ctx table source kept scc.Ir.scc_rows
      | [ clause ] ->
          List.iter
            (fun c -> if not (c == clause) && can_universe c then
                eliminate_clause_as_universe ctx table c)
            clauses;
          process_kept_clause ctx table source clause scc.Ir.scc_rows
      | _ :: _ :: _ ->
          (* several clauses of pure {=, in, like} literals: each keeps one
             literal; their values must co-occur in the same rows *)
          List.iter
            (fun c -> if can_universe c then eliminate_clause_as_universe ctx table c)
            clauses;
          let kepts =
            List.map
              (fun clause ->
                let kept =
                  List.fold_left
                    (fun best lit ->
                      if
                        literal_cost ctx table scc.Ir.scc_rows lit
                        < literal_cost ctx table scc.Ir.scc_rows best
                      then lit
                      else best)
                    (List.hd clause) clause
                in
                List.iter
                  (fun lit ->
                    if lit != kept then eliminate_literal_as_empty ctx table lit)
                  clause;
                kept)
              hard
          in
          List.iter (fun l -> emit_single ctx table source l scc.Ir.scc_rows) kepts;
          let cells =
            List.map
              (fun l ->
                match (literal_main_column l, literal_param l) with
                | Some col, Some p -> (col, p)
                | _ -> raise (Skip "kept literal unusable for row binding"))
              kepts
          in
          ctx.out_bound <-
            {
              Ir.br_table = table;
              br_cells = cells;
              br_rows = scc.Ir.scc_rows;
              br_source = source;
            }
            :: ctx.out_bound)

let run schema ~dom ~table_rows ?(param_key = fun _ -> None) sccs =
  let ctx =
    {
      schema;
      dom;
      table_rows;
      e_used = Hashtbl.create 32;
      e_claimed = Hashtbl.create 32;
      param_key;
      out_uccs = [];
      out_accs = [];
      out_bound = [];
      env = Pred.Env.empty;
    }
  in
  let skipped = ref [] in
  (* single-literal SCCs are forced (no elimination choice) — processing
     them first lets the budget-aware choice for OR clauses see the true
     remaining capacity *)
  let forced, flexible =
    List.partition
      (fun (scc : Ir.scc) ->
        match Pred.cnf scc.Ir.scc_pred with
        | [] | [ [ _ ] ] -> true
        | cs -> List.for_all (fun c -> List.length c = 1) cs)
      sccs
  in
  List.iter
    (fun scc ->
      try process_scc ctx scc
      with Skip reason ->
        skipped :=
          Diag.warning ~table:scc.Ir.scc_table ~query:scc.Ir.scc_source
            ~hint:"the selection constraint is dropped; its cardinality is \
                   not guaranteed"
            Diag.Decouple "%s" reason
          :: !skipped)
    (forced @ flexible);
  (* a parameter both sentinel-bound (its literal was eliminated in one SCC)
     and kept as a UCC/ACC (in another) indicates literal sharing across
     clauses after CNF distribution; the kept constraint wins, so drop the
     sentinel and report *)
  let kept_params = Hashtbl.create 32 in
  List.iter
    (fun (u : Ir.ucc) ->
      match literal_param u.Ir.ucc_lit with
      | Some p -> Hashtbl.replace kept_params p ()
      | None -> ())
    (List.rev ctx.out_uccs);
  List.iter
    (fun (a : Ir.acc) -> Hashtbl.replace kept_params a.Ir.acc_param ())
    ctx.out_accs;
  List.iter
    (fun (p, _) ->
      if Hashtbl.mem kept_params p then begin
        skipped :=
          Diag.warning Diag.Decouple
            "parameter %s both eliminated and kept; keeping the constraint" p
          :: !skipped;
        (* rebuild the env without this binding *)
        ctx.env <-
          Pred.Env.of_list
            (List.filter (fun (q, _) -> q <> p) (Pred.Env.bindings ctx.env))
      end)
    (Pred.Env.bindings ctx.env);
  (* exact duplicates collapse; a parameter constrained twice with different
     counts is contradictory input — keep the first and report the rest *)
  let seen = Hashtbl.create 32 in
  let by_param = Hashtbl.create 32 in
  let uccs =
    List.filter
      (fun (u : Ir.ucc) ->
        let key = (u.Ir.ucc_table, u.Ir.ucc_col, u.Ir.ucc_lit, u.Ir.ucc_rows) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          match u.Ir.ucc_lit with
          | Pred.Cmp { arg = Pred.Param p; _ }
          | Pred.In { arg = Pred.Param p; _ }
          | Pred.Like { arg = Pred.Param p; _ } -> (
              match Hashtbl.find_opt by_param p with
              | Some prev when prev <> u.Ir.ucc_rows ->
                  skipped :=
                    Diag.warning ~table:u.Ir.ucc_table ~query:u.Ir.ucc_source
                      ~hint:"the first count wins; align the annotations"
                      Diag.Decouple
                      "parameter %s constrained with conflicting counts" p
                    :: !skipped;
                  false
              | _ ->
                  Hashtbl.replace by_param p u.Ir.ucc_rows;
                  true)
          | Pred.Cmp _ | Pred.In _ | Pred.Like _ | Pred.Arith_cmp _ -> true
        end)
      (List.rev ctx.out_uccs)
  in
  {
    uccs;
    accs = List.rev ctx.out_accs;
    bound = List.rev ctx.out_bound;
    fixed_env = ctx.env;
    skipped = List.rev !skipped;
  }
