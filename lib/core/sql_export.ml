module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Plan = Mirage_relalg.Plan
module Col = Mirage_engine.Col
module Db = Mirage_engine.Db
module Render = Mirage_engine.Render

let ( let* ) = Result.bind

let sql_string = Render.sql_quote

(* floats everywhere in the SQL export share the render kernel's round-trip
   format, the same one the CSV writers use *)
let sql_value = function
  | Value.Null -> "NULL"
  | Value.Int x -> string_of_int x
  | Value.Float x -> Render.float_repr x
  | Value.Str s -> sql_string s

let sql_kind = function
  | Schema.Kint -> "BIGINT"
  | Schema.Kfloat -> "DOUBLE PRECISION"
  | Schema.Kstring -> "VARCHAR(64)"

let ddl schema =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (tbl : Schema.table) ->
      Buffer.add_string buf (Printf.sprintf "CREATE TABLE %s (\n" tbl.Schema.tname);
      let cols =
        (Printf.sprintf "  %s BIGINT PRIMARY KEY" tbl.Schema.pk)
        :: List.map
             (fun (c : Schema.column) ->
               Printf.sprintf "  %s %s" c.Schema.cname (sql_kind c.Schema.kind))
             tbl.Schema.nonkeys
        @ List.map
            (fun (f : Schema.fk) ->
              Printf.sprintf "  %s BIGINT REFERENCES %s" f.Schema.fk_col
                f.Schema.references)
            tbl.Schema.fks
      in
      Buffer.add_string buf (String.concat ",\n" cols);
      Buffer.add_string buf "\n);\n\n")
    (Schema.tables schema);
  Buffer.contents buf

let cell_null nulls i =
  match nulls with Some b -> Col.Bitset.get b i | None -> false

(* per-column SQL cell writer on the render kernel: representation resolved
   once per column, digits written in place, dictionary pools escaped once
   per distinct string — never once per row *)
let sql_cell_renderer buf col =
  match col with
  | Col.Ints { data; nulls } ->
      fun i ->
        if cell_null nulls i then Render.Buf.add_string buf "NULL"
        else Render.Buf.itoa buf data.(i)
  | Col.Floats { data; nulls } ->
      fun i ->
        if cell_null nulls i then Render.Buf.add_string buf "NULL"
        else Render.Buf.ftoa buf data.(i)
  | Col.Dict { codes; pool; nulls } ->
      let escaped = Render.sql_pool pool in
      fun i ->
        Render.Buf.add_string buf
          (if cell_null nulls i then "NULL" else escaped.(codes.(i)))
  | Col.Big_ints { data; nulls } ->
      fun i ->
        if cell_null nulls i then Render.Buf.add_string buf "NULL"
        else Render.Buf.itoa buf (Bigarray.Array1.unsafe_get data i)
  | Col.Big_floats { data; nulls } ->
      fun i ->
        if cell_null nulls i then Render.Buf.add_string buf "NULL"
        else Render.Buf.ftoa buf (Bigarray.Array1.unsafe_get data i)
  | Col.Big_dict { codes; pool; nulls } ->
      let escaped = Render.sql_pool pool in
      fun i ->
        Render.Buf.add_string buf
          (if cell_null nulls i then "NULL"
           else escaped.(Bigarray.Array1.unsafe_get codes i))
  | Col.Boxed vs -> fun i -> Render.Buf.add_string buf (sql_value vs.(i))

(* appends one table's INSERT batches to [buf]; [export_dir] streams the
   same buffer to disk per table instead of concatenating per-table strings.
   [lo, hi) restricts to a row range for the chunked exporter; statements
   restart every [batch] rows from row 0, so ranges aligned to the batch
   size concatenate byte-identically to the full render *)
let batch = 500

let add_inserts ?(lo = 0) ?hi buf db ~table =
  let tbl = Schema.table (Db.schema db) table in
  let names = Schema.column_names tbl in
  let n = match hi with Some h -> h | None -> Db.row_count db table in
  let renderers =
    Array.of_list
      (List.map (fun c -> sql_cell_renderer buf (Db.col db table c)) names)
  in
  let ncols = Array.length renderers in
  let header = Printf.sprintf "INSERT INTO %s (%s) VALUES\n" table (String.concat ", " names) in
  let i = ref lo in
  while !i < n do
    Render.Buf.add_string buf header;
    let hi = min n (!i + batch) in
    for r = !i to hi - 1 do
      if r > !i then Render.Buf.add_string buf ",\n";
      Render.Buf.add_char buf '(';
      for c = 0 to ncols - 1 do
        if c > 0 then Render.Buf.add_string buf ", ";
        renderers.(c) r
      done;
      Render.Buf.add_char buf ')'
    done;
    Render.Buf.add_string buf ";\n";
    i := hi
  done

let inserts db ~table =
  let buf = Render.Buf.create 4096 in
  add_inserts buf db ~table;
  Render.Buf.contents buf

(* --- predicates ------------------------------------------------------------- *)

let cmp_sql = function
  | Pred.Eq -> "="
  | Pred.Neq -> "<>"
  | Pred.Lt -> "<"
  | Pred.Le -> "<="
  | Pred.Gt -> ">"
  | Pred.Ge -> ">="

let rec arith_sql = function
  | Pred.Acol c -> c
  | Pred.Aconst f -> Render.float_repr f
  | Pred.Aadd (a, b) -> Printf.sprintf "(%s + %s)" (arith_sql a) (arith_sql b)
  | Pred.Asub (a, b) -> Printf.sprintf "(%s - %s)" (arith_sql a) (arith_sql b)
  | Pred.Amul (a, b) -> Printf.sprintf "(%s * %s)" (arith_sql a) (arith_sql b)
  | Pred.Adiv (a, b) -> Printf.sprintf "(%s / %s)" (arith_sql a) (arith_sql b)

let operand_sql ~env = function
  | Pred.Const v -> Ok (sql_value v)
  | Pred.Const_list vs -> Ok ("(" ^ String.concat ", " (List.map sql_value vs) ^ ")")
  | Pred.Param p -> (
      match Pred.Env.find p env with
      | Some (Pred.Env.Scalar v) -> Ok (sql_value v)
      | Some (Pred.Env.Vlist vs) ->
          Ok ("(" ^ String.concat ", " (List.map sql_value vs) ^ ")")
      | None -> Error (Printf.sprintf "unbound parameter %s" p))

let rec pred_sql ~env = function
  | Pred.True -> Ok "TRUE"
  | Pred.False -> Ok "FALSE"
  | Pred.Not p ->
      let* s = pred_sql ~env p in
      Ok ("NOT (" ^ s ^ ")")
  | Pred.And ps ->
      let* parts = all ~env ps in
      Ok ("(" ^ String.concat " AND " parts ^ ")")
  | Pred.Or ps ->
      let* parts = all ~env ps in
      Ok ("(" ^ String.concat " OR " parts ^ ")")
  | Pred.Lit (Pred.Cmp { col; cmp; arg }) ->
      let* a = operand_sql ~env arg in
      Ok (Printf.sprintf "%s %s %s" col (cmp_sql cmp) a)
  | Pred.Lit (Pred.In { col; neg; arg }) ->
      let* a = operand_sql ~env arg in
      (* an empty IN list is not valid SQL *)
      if a = "()" then Ok (if neg then "TRUE" else "FALSE")
      else Ok (Printf.sprintf "%s %sIN %s" col (if neg then "NOT " else "") a)
  | Pred.Lit (Pred.Like { col; neg; arg }) ->
      let* a = operand_sql ~env arg in
      Ok (Printf.sprintf "%s %sLIKE %s" col (if neg then "NOT " else "") a)
  | Pred.Lit (Pred.Arith_cmp { expr; cmp; arg }) ->
      let* a = operand_sql ~env arg in
      Ok (Printf.sprintf "%s %s %s" (arith_sql expr) (cmp_sql cmp) a)

and all ~env = function
  | [] -> Ok []
  | p :: rest ->
      let* s = pred_sql ~env p in
      let* others = all ~env rest in
      Ok (s :: others)

(* --- plans ------------------------------------------------------------------- *)

let fresh =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "q%d" !n

(* renders a plan as something usable in a FROM clause *)
let rec relation_sql ~env ~schema plan =
  match plan with
  | Plan.Table t -> Ok t
  | _ ->
      let* s = select_sql ~env ~schema plan in
      Ok ("(" ^ s ^ ") " ^ fresh ())

and select_sql ~env ~schema plan =
  match plan with
  | Plan.Table t -> Ok ("SELECT * FROM " ^ t)
  | Plan.Select (p, q) ->
      let* rel = relation_sql ~env ~schema q in
      let* w = pred_sql ~env p in
      Ok (Printf.sprintf "SELECT * FROM %s WHERE %s" rel w)
  | Plan.Project { cols; input } ->
      let* rel = relation_sql ~env ~schema input in
      Ok (Printf.sprintf "SELECT DISTINCT %s FROM %s" (String.concat ", " cols) rel)
  | Plan.Aggregate { group_by; aggs; input } ->
      let* rel = relation_sql ~env ~schema input in
      let agg_exprs =
        List.map
          (fun (f, c) ->
            let fn =
              match f with
              | Plan.Count -> "COUNT"
              | Plan.Sum -> "SUM"
              | Plan.Avg -> "AVG"
              | Plan.Min -> "MIN"
              | Plan.Max -> "MAX"
            in
            Printf.sprintf "%s(%s) AS %s_%s" fn c (String.lowercase_ascii fn) c)
          aggs
      in
      let selects = group_by @ agg_exprs in
      if group_by = [] then
        Ok (Printf.sprintf "SELECT %s FROM %s" (String.concat ", " selects) rel)
      else
        Ok
          (Printf.sprintf "SELECT %s FROM %s GROUP BY %s" (String.concat ", " selects)
             rel
             (String.concat ", " group_by))
  | Plan.Join { jt; pk_table; fk_col; left; right; _ } -> (
      let pk_col = (Schema.table schema pk_table).Schema.pk in
      let* l = relation_sql ~env ~schema left in
      let* r = relation_sql ~env ~schema right in
      match jt with
      | Plan.Inner ->
          Ok (Printf.sprintf "SELECT * FROM %s JOIN %s ON %s = %s" l r pk_col fk_col)
      | Plan.Left_outer ->
          Ok (Printf.sprintf "SELECT * FROM %s LEFT JOIN %s ON %s = %s" l r pk_col fk_col)
      | Plan.Right_outer ->
          Ok (Printf.sprintf "SELECT * FROM %s RIGHT JOIN %s ON %s = %s" l r pk_col fk_col)
      | Plan.Full_outer ->
          Ok
            (Printf.sprintf "SELECT * FROM %s FULL OUTER JOIN %s ON %s = %s" l r pk_col
               fk_col)
      | Plan.Left_semi ->
          let a = fresh () and b = fresh () in
          Ok
            (Printf.sprintf
               "SELECT * FROM (%s) %s WHERE EXISTS (SELECT 1 FROM (%s) %s WHERE %s.%s = %s.%s)"
               (strip_rel l) a (strip_rel r) b b fk_col a pk_col)
      | Plan.Left_anti ->
          let a = fresh () and b = fresh () in
          Ok
            (Printf.sprintf
               "SELECT * FROM (%s) %s WHERE NOT EXISTS (SELECT 1 FROM (%s) %s WHERE %s.%s = %s.%s)"
               (strip_rel l) a (strip_rel r) b b fk_col a pk_col)
      | Plan.Right_semi ->
          let a = fresh () and b = fresh () in
          Ok
            (Printf.sprintf
               "SELECT * FROM (%s) %s WHERE EXISTS (SELECT 1 FROM (%s) %s WHERE %s.%s = %s.%s)"
               (strip_rel r) a (strip_rel l) b b pk_col a fk_col)
      | Plan.Right_anti ->
          let a = fresh () and b = fresh () in
          Ok
            (Printf.sprintf
               "SELECT * FROM (%s) %s WHERE NOT EXISTS (SELECT 1 FROM (%s) %s WHERE %s.%s = %s.%s)"
               (strip_rel r) a (strip_rel l) b b pk_col a fk_col))

(* a relation string is either a bare table name or "(SELECT ...) qN"; for
   EXISTS bodies we want the inner select *)
and strip_rel rel =
  if String.length rel > 0 && rel.[0] = '(' then
    (* drop the surrounding parens and alias *)
    let close = String.rindex rel ')' in
    String.sub rel 1 (close - 1)
  else "SELECT * FROM " ^ rel

let query_sql plan ~schema ~env = select_sql ~env ~schema plan

let export_dir ~db ~workload ~env ~dir =
  Mirage_util.Fsutil.mkdir_p
    ~fail:(fun m -> Mirage_engine.Sink.Io_failure m)
    dir;
  let schema = Db.schema db in
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "schema.sql" (ddl schema);
  (* stream the INSERTs table by table through one reused kernel buffer —
     no per-table string copies, no concatenation of the whole file *)
  let oc = open_out (Filename.concat dir "data.sql") in
  let buf = Render.Buf.create 65536 in
  List.iter
    (fun (tbl : Schema.table) ->
      Render.Buf.clear buf;
      add_inserts buf db ~table:tbl.Schema.tname;
      Render.Buf.output oc buf)
    (Schema.tables schema);
  close_out oc;
  let qbuf = Buffer.create 4096 in
  List.iter
    (fun (q : Workload.query) ->
      match query_sql q.Workload.q_plan ~schema ~env with
      | Ok sql ->
          Buffer.add_string qbuf (Printf.sprintf "-- %s\n%s;\n\n" q.Workload.q_name sql)
      | Error m ->
          Buffer.add_string qbuf (Printf.sprintf "-- %s: %s\n\n" q.Workload.q_name m))
    workload.Workload.w_queries;
  write "queries.sql" (Buffer.contents qbuf)

(* crash-safe chunked variant of the data.sql stream: shards of whole INSERT
   batches, so [cat data.sql.0 data.sql.1 ...] equals the monolithic file *)
module Sink = Mirage_engine.Sink

let export_chunked ?backend ?(resume = false) ?(interrupt = fun () -> ()) ~db
    ~workload ~env ~dir ~chunk_rows ~run_id () =
  if chunk_rows < 1 then
    invalid_arg "Sql_export.export_chunked: chunk_rows must be >= 1";
  let schema = Db.schema db in
  let sink = Sink.create ?backend ~resume ~dir ~run_id () in
  (* schema.sql and queries.sql are small and idempotent; only the data
     stream goes through the shard checkpoint *)
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "schema.sql" (ddl schema);
  let qbuf = Buffer.create 4096 in
  List.iter
    (fun (q : Workload.query) ->
      match query_sql q.Workload.q_plan ~schema ~env with
      | Ok sql ->
          Buffer.add_string qbuf (Printf.sprintf "-- %s\n%s;\n\n" q.Workload.q_name sql)
      | Error m ->
          Buffer.add_string qbuf (Printf.sprintf "-- %s: %s\n\n" q.Workload.q_name m))
    workload.Workload.w_queries;
  write "queries.sql" (Buffer.contents qbuf);
  (* shard row budget rounded down to whole INSERT batches so shard
     boundaries never split a statement *)
  let per = max batch (chunk_rows / batch * batch) in
  let buf = Render.Buf.create 65536 in
  let k = ref 0 and resumed = ref 0 in
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let n = Db.row_count db tname in
      let nshards = max 1 ((n + per - 1) / per) in
      for s = 0 to nshards - 1 do
        interrupt ();
        let name = Printf.sprintf "data.sql.%d" !k in
        incr k;
        if Sink.is_done sink name then incr resumed
        else
          Sink.write_shard sink ~name (fun w ->
              Render.Buf.clear buf;
              add_inserts ~lo:(s * per) ~hi:(min n ((s + 1) * per)) buf db
                ~table:tname;
              Sink.put w (Render.Buf.unsafe_bytes buf) ~pos:0
                ~len:(Render.Buf.length buf))
      done)
    (Schema.tables schema);
  (* drop leftovers from an earlier layout with more shards *)
  let j = ref !k in
  while Sys.file_exists (Filename.concat dir (Printf.sprintf "data.sql.%d" !j)) do
    (try Sys.remove (Filename.concat dir (Printf.sprintf "data.sql.%d" !j))
     with Sys_error _ -> ());
    incr j
  done;
  Sink.finish sink;
  (!k, !resumed)
