module Pred = Mirage_sql.Pred
module Value = Mirage_sql.Value
module Schema = Mirage_sql.Schema

type layout = {
  l_table : string;
  l_col : string;
  l_kind : Schema.kind;
  l_dom : int;
  l_rows : int;
  l_value_counts : int array;
  l_param_card : (string * int) list;
  l_bindings : (string * Pred.Env.binding) list;
  l_render : int -> Value.t;
}

exception Infeasible of string

let fail fmt = Fmt.kstr (fun s -> raise (Infeasible s)) fmt

(* F-anchor: cumulative constraint F(boundary) = cum rows.  [minus_one]
   marks parameters that sit one value above the boundary (from < and ≥
   comparators).  [fa_key] is the parameter's production value; for integer
   columns it localises the boundary in production value order. *)
type fa = {
  fa_param : string;
  fa_minus_one : bool;
  fa_cum : int;
  fa_key : Value.t option;
}

(* E-item: exactly [ei_rows] rows carry the (single) value of [ei_param].
   [ei_key] identifies the production value behind the parameter; two items
   with the same key and row count refer to the same value and may share it
   (the paper's parameter-reuse fallback, made semantics-safe). *)
type ei = { ei_param : string; ei_rows : int; ei_key : Value.t option }

type norm = {
  mutable fas : fa list;
  mutable eis : ei list;
  mutable zeros : string list;  (* sub-params bound outside the domain *)
  mutable groups : (string * string list) list;  (* like param -> sub-params *)
  mutable in_params : (string * string list) list;  (* in param -> sub-params *)
}

let sub_params p elements =
  List.mapi (fun i (key, k) -> (Printf.sprintf "%s#%d" p i, key, k)) elements

let normalise ~rows ~elements ~param_key (n : norm) (u : Ir.ucc) =
  let k = u.Ir.ucc_rows in
  if k < 0 || k > rows then
    fail "%s: count %d out of [0, %d]" u.Ir.ucc_source k rows;
  let param =
    match u.Ir.ucc_lit with
    | Pred.Cmp { arg = Pred.Param p; _ }
    | Pred.In { arg = Pred.Param p; _ }
    | Pred.Like { arg = Pred.Param p; _ } ->
        p
    | _ -> fail "%s: UCC without a parameter" u.Ir.ucc_source
  in
  let expand lit ~target =
    (* distribute [target] rows over the literal's production elements,
       keeping proportions and the exact total *)
    let els = elements lit in
    let els = if els = [] then [ (Value.Null, target) ] else els in
    let counts = List.map snd els in
    let total = List.fold_left ( + ) 0 counts in
    let scaled =
      if total = target then counts
      else if total = 0 then
        target :: List.map (fun _ -> 0) (List.tl counts)
      else
        Array.to_list
          (Mirage_lp.Lp.round_preserving_sum
             (Array.of_list
                (List.map
                   (fun c ->
                     float_of_int c *. float_of_int target /. float_of_int total)
                   counts))
             ~total:target)
    in
    (* keys stay aligned; a rescaled count no longer matches the production
       value exactly, so drop the key to disable aliasing in that case *)
    List.map2
      (fun (key, orig) c ->
        ((if total = target && orig = c then Some key else None), c))
      els scaled
  in
  let key () = param_key param in
  match u.Ir.ucc_lit with
  | Pred.Cmp { cmp = Pred.Le; _ } ->
      n.fas <-
        { fa_param = param; fa_minus_one = false; fa_cum = k; fa_key = param_key param }
        :: n.fas
  | Pred.Cmp { cmp = Pred.Lt; _ } ->
      n.fas <-
        { fa_param = param; fa_minus_one = true; fa_cum = k; fa_key = param_key param }
        :: n.fas
  | Pred.Cmp { cmp = Pred.Gt; _ } ->
      n.fas <-
        { fa_param = param; fa_minus_one = false; fa_cum = rows - k; fa_key = param_key param }
        :: n.fas
  | Pred.Cmp { cmp = Pred.Ge; _ } ->
      n.fas <-
        { fa_param = param; fa_minus_one = true; fa_cum = rows - k; fa_key = param_key param }
        :: n.fas
  | Pred.Cmp { cmp = Pred.Eq; _ } ->
      (* a zero-count equality binds outside the domain: giving it a real
         value would waste a domain slot on zero rows *)
      if k = 0 then n.zeros <- param :: n.zeros
      else n.eis <- { ei_param = param; ei_rows = k; ei_key = key () } :: n.eis
  | Pred.Cmp { cmp = Pred.Neq; _ } ->
      if rows - k = 0 then n.zeros <- param :: n.zeros
      else n.eis <- { ei_param = param; ei_rows = rows - k; ei_key = key () } :: n.eis
  | Pred.In { neg; _ } as lit ->
      let target = if neg then rows - k else k in
      let subs = sub_params param (expand lit ~target) in
      n.in_params <- (param, List.map (fun (sp, _, _) -> sp) subs) :: n.in_params;
      List.iter
        (fun (sp, key, c) ->
          if c = 0 then n.zeros <- sp :: n.zeros
          else n.eis <- { ei_param = sp; ei_rows = c; ei_key = key } :: n.eis)
        subs
  | Pred.Like { neg; _ } as lit ->
      let target = if neg then rows - k else k in
      let subs = sub_params param (expand lit ~target) in
      n.groups <- (param, List.map (fun (sp, _, _) -> sp) subs) :: n.groups;
      List.iter
        (fun (sp, key, c) ->
          if c = 0 then n.zeros <- sp :: n.zeros
          else n.eis <- { ei_param = sp; ei_rows = c; ei_key = key } :: n.eis)
        subs
  | Pred.Arith_cmp _ -> fail "%s: arithmetic literal is not a UCC" u.Ir.ucc_source

let build ?(guided_placement = true) ~table ~col ~kind ~dom ~rows ~uccs ~elements
    ~param_key () =
  try
    if dom <= 0 || rows <= 0 then fail "empty column";
    if dom > rows then fail "domain %d larger than row count %d" dom rows;
    let n = { fas = []; eis = []; zeros = []; groups = []; in_params = [] } in
    List.iter (normalise ~rows ~elements ~param_key n) uccs;
    (match (kind, n.groups) with
    | (Schema.Kint | Schema.Kfloat), _ :: _ ->
        fail "like predicate on non-string column %s" col
    | _ -> ());
    (* --- step 1: ranges from F-anchors ------------------------------- *)
    List.iter
      (fun f ->
        if f.fa_cum < 0 || f.fa_cum > rows then
          fail "cumulative count %d out of range" f.fa_cum)
      n.fas;
    let module IM = Map.Make (Int) in
    let by_cum =
      List.fold_left
        (fun m f ->
          IM.update f.fa_cum
            (function None -> Some [ f ] | Some fs -> Some (f :: fs))
            m)
        IM.empty n.fas
    in
    let boundaries = IM.bindings by_cum in
    (* range row counts: below first boundary, between boundaries, above last *)
    let cums = List.map fst boundaries in
    let range_rows =
      match cums with
      | [] -> [ rows ]
      | first :: _ ->
          let rec gaps = function
            | a :: (b :: _ as rest) -> (b - a) :: gaps rest
            | [ last ] -> [ rows - last ]
            | [] -> []
          in
          first :: gaps cums
    in
    let nr = List.length range_rows in
    let r = Array.of_list range_rows in
    Array.iter (fun x -> if x < 0 then fail "decreasing cumulative counts") r;
    (* --- step 2: best-fit-decreasing packing of E-items --------------- *)
    let eis = Array.of_list (List.rev n.eis) in
    let order = Array.init (Array.length eis) (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare eis.(b).ei_rows eis.(a).ei_rows with
        | 0 -> compare a b
        | c -> c)
      order;
    let slack = Array.copy r in
    let placed = Array.make (Array.length eis) (-1) in
    let alias = Array.make (Array.length eis) (-1) in
    (* Two equality items referring to the same production value (same key)
       with the same row count denote the same value and share it — the
       paper's parameter-reuse fallback, restricted to where it is sound. *)
    let alias_candidate item =
      match eis.(item).ei_key with
      | None -> None
      | Some key ->
          Array.to_list order
          |> List.find_opt (fun j ->
                 placed.(j) >= 0
                 && eis.(j).ei_rows = eis.(item).ei_rows
                 &&
                 match eis.(j).ei_key with
                 | Some k' -> Value.compare k' key = 0
                 | None -> false)
    in
    (* Production-guided placement: when the boundaries and an item all carry
       integer production values, the item's natural range — the one the
       production data put it in — is known, and placing it there reproduces
       a packing that is feasible by construction. *)
    let boundary_prod =
      List.map
        (fun (_, fs) ->
          List.fold_left
            (fun acc (f : fa) ->
              match (acc, f.fa_key) with
              | Some _, _ -> acc
              | None, Some (Value.Int v) ->
                  Some (if f.fa_minus_one then v - 1 else v)
              | None, _ -> None)
            None fs)
        boundaries
    in
    let all_boundaries_known =
      guided_placement
      &&
      (* also require production boundary values to increase with the
         cumulative counts: eliminations can shift an anchor's count away
         from its production marginal, making the guide incoherent *)
      boundary_prod <> []
      && List.for_all (fun b -> b <> None) boundary_prod
      &&
      let rec mono = function
        | Some a :: (Some b :: _ as rest) -> a < b && mono rest
        | _ -> true
      in
      mono boundary_prod
    in
    let natural_bin item =
      if not all_boundaries_known then None
      else
        match eis.(item).ei_key with
        | Some (Value.Int ev) ->
            let rec scan idx = function
              | [] -> Some idx (* above the last boundary *)
              | Some b :: rest -> if ev <= b then Some idx else scan (idx + 1) rest
              | None :: _ -> None
            in
            scan 0 boundary_prod
        | _ -> None
    in
    Array.iter
      (fun item ->
        match alias_candidate item with
        | Some j -> alias.(item) <- j
        | None -> (
            let nat =
              match natural_bin item with
              | Some bin when bin < nr && slack.(bin) >= eis.(item).ei_rows ->
                  Some bin
              | _ -> None
            in
            let best =
              match nat with
              | Some bin -> ref bin
              | None ->
                  let best = ref (-1) in
                  Array.iteri
                    (fun bin s ->
                      if s >= eis.(item).ei_rows && (!best = -1 || s < slack.(!best))
                      then best := bin)
                    slack;
                  best
            in
            match !best with
            | -1 ->
                fail "cannot place equality constraint of %d rows (param %s)"
                  eis.(item).ei_rows eis.(item).ei_param
            | bin ->
                placed.(item) <- bin;
                slack.(bin) <- slack.(bin) - eis.(item).ei_rows))
      order;
    (* --- step 3: distribute unique values over ranges ----------------- *)
    let e_count = Array.make nr 0 and e_rows = Array.make nr 0 in
    Array.iteri
      (fun item bin ->
        if bin >= 0 then begin
          e_count.(bin) <- e_count.(bin) + 1;
          e_rows.(bin) <- e_rows.(bin) + eis.(item).ei_rows
        end)
      placed;
    let lo = Array.init nr (fun i -> e_count.(i) + if r.(i) > e_rows.(i) then 1 else 0) in
    let hi = Array.init nr (fun i -> e_count.(i) + (r.(i) - e_rows.(i))) in
    let sum a = Array.fold_left ( + ) 0 a in
    if dom < sum lo then
      fail "domain %d too small for %d ranges/parameters" dom (sum lo);
    if dom > sum hi then fail "domain %d exceeds value capacity %d" dom (sum hi);
    let nv = Array.copy lo in
    let leftover = ref (dom - sum lo) in
    (* proportional bulk distribution, then round-robin for the residue *)
    let total_slack = sum hi - sum lo in
    if total_slack > 0 then
      for i = 0 to nr - 1 do
        let add =
          min (hi.(i) - lo.(i)) (!leftover * (hi.(i) - lo.(i)) / total_slack)
        in
        nv.(i) <- nv.(i) + add;
        leftover := !leftover - add
      done;
    let i = ref 0 in
    while !leftover > 0 do
      if nv.(!i) < hi.(!i) then begin
        nv.(!i) <- nv.(!i) + 1;
        decr leftover
      end;
      i := (!i + 1) mod nr
    done;
    (* --- step 4: lay out values, assign counts and parameter cards ---- *)
    let value_counts = Array.make dom 0 in
    let param_card = ref [] in
    let boundary_value = Array.make (nr + 1) 0 in
    let cursor = ref 0 in
    (* items per bin in deterministic order *)
    let items_of_bin = Array.make nr [] in
    for item = Array.length eis - 1 downto 0 do
      if placed.(item) >= 0 then
        items_of_bin.(placed.(item)) <- item :: items_of_bin.(placed.(item))
    done;
    let item_value = Array.make (Array.length eis) 0 in
    for bin = 0 to nr - 1 do
      List.iter
        (fun item ->
          incr cursor;
          if !cursor > dom then fail "internal: value overflow";
          value_counts.(!cursor - 1) <- eis.(item).ei_rows;
          item_value.(item) <- !cursor)
        items_of_bin.(bin);
      let fillers = nv.(bin) - e_count.(bin) in
      let filler_rows = r.(bin) - e_rows.(bin) in
      if fillers > 0 then begin
        let base = filler_rows / fillers and extra = filler_rows mod fillers in
        for j = 0 to fillers - 1 do
          incr cursor;
          if !cursor > dom then fail "internal: value overflow";
          value_counts.(!cursor - 1) <- base + (if j < extra then 1 else 0)
        done
      end
      else if filler_rows > 0 then
        (* unreachable: lo reserved a filler slot whenever r > e_rows *)
        fail "internal: residual rows without a value slot";
      boundary_value.(bin + 1) <- !cursor
    done;
    if !cursor <> dom then fail "internal: %d values laid out, domain %d" !cursor dom;
    (* aliased items share their target's value *)
    Array.iteri
      (fun item a -> if a >= 0 then item_value.(item) <- item_value.(a))
      alias;
    Array.iteri
      (fun item v ->
        if placed.(item) >= 0 || alias.(item) >= 0 then
          param_card := (eis.(item).ei_param, v) :: !param_card)
      item_value;
    List.iter (fun sp -> param_card := (sp, 0) :: !param_card) n.zeros;
    (* F parameters: boundary k (0-based) closes range k, so its value is the
       cumulative value count through range k *)
    List.iteri
      (fun k (_, fs) ->
        List.iter
          (fun f ->
            let v = boundary_value.(k + 1) + if f.fa_minus_one then 1 else 0 in
            param_card := (f.fa_param, v) :: !param_card)
          fs)
      boundaries;
    (* --- rendering and bindings --------------------------------------- *)
    let card_of p =
      match List.assoc_opt p !param_card with
      | Some v -> v
      | None -> fail "internal: parameter %s not instantiated" p
    in
    let group_list =
      List.mapi
        (fun gi (p, subs) ->
          (p, gi, List.filter_map (fun sp ->
               let v = card_of sp in
               if v = 0 then None else Some v) subs))
        (List.rev n.groups)
    in
    let groups_of_value = Hashtbl.create 16 in
    List.iter
      (fun (_, gi, vs) ->
        List.iter
          (fun v ->
            let cur = try Hashtbl.find groups_of_value v with Not_found -> [] in
            Hashtbl.replace groups_of_value v (cur @ [ gi ]))
          vs)
      group_list;
    let render v =
      match kind with
      | Schema.Kint -> Value.Int v
      | Schema.Kfloat -> Value.Float (float_of_int v)
      | Schema.Kstring -> (
          let base = Printf.sprintf "v%08d" v in
          match Hashtbl.find_opt groups_of_value v with
          | None | Some [] -> Value.Str base
          | Some gs ->
              Value.Str
                (base ^ String.concat "" (List.map (Printf.sprintf "_g%d") gs) ^ "_"))
    in
    let bindings = ref [] in
    let bind p b = bindings := (p, b) :: !bindings in
    List.iter
      (fun (u : Ir.ucc) ->
        match u.Ir.ucc_lit with
        | Pred.Cmp { arg = Pred.Param p; _ } ->
            bind p (Pred.Env.Scalar (render (card_of p)))
        | Pred.In { arg = Pred.Param p; _ } ->
            let subs = List.assoc p n.in_params in
            bind p (Pred.Env.Vlist (List.map (fun sp -> render (card_of sp)) subs))
        | Pred.Like { arg = Pred.Param p; _ } -> (
            match List.find_opt (fun (q, _, _) -> q = p) group_list with
            | Some (_, gi, _ :: _) ->
                bind p (Pred.Env.Scalar (Value.Str (Printf.sprintf "%%_g%d_%%" gi)))
            | Some (_, _, []) ->
                bind p (Pred.Env.Scalar (Value.Str "\000nomatch"))
            | None -> fail "internal: like parameter %s has no group" p)
        | Pred.Cmp _ | Pred.In _ | Pred.Like _ | Pred.Arith_cmp _ ->
            fail "UCC literal without parameter")
      uccs;
    Ok
      {
        l_table = table;
        l_col = col;
        l_kind = kind;
        l_dom = dom;
        l_rows = rows;
        l_value_counts = value_counts;
        l_param_card = !param_card;
        l_bindings = !bindings;
        l_render = render;
      }
  with Infeasible msg -> Error (Printf.sprintf "%s.%s: %s" table col msg)

let default_layout ~table ~col ~kind ~dom ~rows =
  let dom = min dom rows in
  let value_counts = Array.make dom 0 in
  let base = rows / dom and extra = rows mod dom in
  for v = 0 to dom - 1 do
    value_counts.(v) <- base + (if v < extra then 1 else 0)
  done;
  let render v =
    match kind with
    | Schema.Kint -> Value.Int v
    | Schema.Kfloat -> Value.Float (float_of_int v)
    | Schema.Kstring -> Value.Str (Printf.sprintf "v%08d" v)
  in
  {
    l_table = table;
    l_col = col;
    l_kind = kind;
    l_dom = dom;
    l_rows = rows;
    l_value_counts = value_counts;
    l_param_card = [];
    l_bindings = [];
    l_render = render;
  }

let lookup_param_card layout p = List.assoc_opt p layout.l_param_card

(* Render a whole column of value-domain ints straight into typed storage:
   ints are the identity, floats are flat, strings dictionary-encode with one
   rendered pool entry per distinct value (the renderer is injective in v, so
   pool entries are distinct by construction). *)
let to_col layout vals =
  let module Col = Mirage_engine.Col in
  let n = Col.Ivec.length vals in
  match layout.l_kind with
  | Schema.Kint -> Col.Ivec.to_col vals
  | Schema.Kfloat -> Col.init_floats n (fun i -> float_of_int (Col.Ivec.get vals i))
  | Schema.Kstring ->
      (* codes stay in an Ivec so a big value vector yields a big dictionary
         column without a heap-array intermediate *)
      let codes = Col.Ivec.make n 0 in
      let tbl = Hashtbl.create 256 in
      let rev_pool = ref [] and next = ref 0 in
      for i = 0 to n - 1 do
        let v = Col.Ivec.get vals i in
        let c =
          match Hashtbl.find_opt tbl v with
          | Some c -> c
          | None ->
              let c = !next in
              Hashtbl.add tbl v c;
              (match layout.l_render v with
              | Value.Str s -> rev_pool := s :: !rev_pool
              | _ -> assert false);
              incr next;
              c
        in
        Col.Ivec.set codes i c
      done;
      let pool = Array.of_list (List.rev !rev_pool) in
      (match Col.Ivec.to_col codes with
      | Col.Ints { data; _ } -> Col.dict ~codes:data ~pool ()
      | Col.Big_ints { data; _ } -> Col.Big_dict { codes = data; pool; nulls = None }
      | _ -> assert false)
