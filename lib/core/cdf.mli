(** Per-column distribution construction and parameter instantiation
    (§4.2) plus the derived value multiset used for data generation (§4.3).

    All bookkeeping is in exact integer row counts over the normalised
    cardinality space [\[1, dom\]] (Theorem 6.1's zero-error argument relies
    on this).  The pipeline:

    + normalise every UCC to an [F]-anchor ([A ≤ p] with a cumulative row
      count) or [E]-items ([A = p] with an exact row count; [in]/[like]
      literals expand to one item per element / per matching value, with
      production element counts supplied by the caller);
    + sort [F]-anchors, merge equal cumulative counts (equal parameters),
      split the cardinality space into ranges;
    + bin-pack [E]-items into ranges (best-fit decreasing, with the paper's
      fallback of reusing an equal-count parameter's value);
    + distribute the domain's unique values over ranges and instantiate every
      parameter as its position in the value order.

    String columns render value [v] as ["v%08d"] (order-preserving) and
    [like]-groups append ["_g<id>_"] suffixes matched by ["%_g<id>_%"]
    patterns, so equality, ranges, IN and LIKE can coexist on one column. *)

type layout = {
  l_table : string;
  l_col : string;
  l_kind : Mirage_sql.Schema.kind;
  l_dom : int;
  l_rows : int;
  l_value_counts : int array;  (** index [v-1] = rows carrying value [v]; sums to [l_rows] *)
  l_param_card : (string * int) list;
      (** cardinality value per parameter (0 = outside the domain);
          [in]/[like] sub-parameters appear as ["p#i"] *)
  l_bindings : (string * Mirage_sql.Pred.Env.binding) list;
      (** final parameter bindings in rendered (value-space) form *)
  l_render : int -> Mirage_sql.Value.t;  (** value renderer incl. like-groups *)
}

val build :
  ?guided_placement:bool ->
  table:string ->
  col:string ->
  kind:Mirage_sql.Schema.kind ->
  dom:int ->
  rows:int ->
  uccs:Ir.ucc list ->
  elements:(Mirage_sql.Pred.literal -> (Mirage_sql.Value.t * int) list) ->
  param_key:(string -> Mirage_sql.Value.t option) ->
  unit ->
  (layout, string) result
(** [elements lit] returns the production elements of an [in] literal (one
    per list element) or the matching distinct values of a [like] literal,
    as (production value, row count) pairs; never called for comparison
    literals.  [param_key p] is the production value bound to a scalar
    parameter.  Production values serve two purposes: items sharing a value
    and a row count may share one synthetic value (the paper's reuse
    fallback), and integer production values guide equality items into the
    range the production data placed them in, which keeps tightly-packed
    columns feasible. *)

val default_layout :
  table:string ->
  col:string ->
  kind:Mirage_sql.Schema.kind ->
  dom:int ->
  rows:int ->
  layout
(** Unconstrained column: uniform counts over the domain. *)

val lookup_param_card : layout -> string -> int option

val to_col : layout -> Mirage_engine.Col.Ivec.t -> Mirage_engine.Col.t
(** Render a whole column of value-domain ints ([1..dom], as produced by
    {!Nonkey}) into typed storage: [Kint] columns alias the vector's storage
    (zero-copy, heap or off-heap), [Kfloat] become flat float columns,
    [Kstring] dictionary-encode with one rendered string per distinct value.
    The output representation follows the vector's: a big work vector yields
    a big column. *)
