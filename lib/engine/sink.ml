exception Io_failure of string
exception Injected_crash of string

type file = Unix.file_descr

type backend = {
  bk_open : string -> file;
  bk_write : file -> Bytes.t -> pos:int -> len:int -> int;
  bk_close : file -> unit;
  bk_rename : src:string -> dst:string -> unit;
  bk_remove : string -> unit;
}

let io_msg op path e =
  Printf.sprintf "%s %s: %s" op path (Unix.error_message e)

let os_backend =
  {
    bk_open =
      (fun path ->
        try Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644
        with Unix.Unix_error (e, _, _) -> raise (Io_failure (io_msg "open" path e)));
    bk_write =
      (fun fd b ~pos ~len ->
        try Unix.write fd b pos len
        with Unix.Unix_error (e, _, _) ->
          raise (Io_failure ("write: " ^ Unix.error_message e)));
    bk_close =
      (fun fd ->
        try Unix.close fd
        with Unix.Unix_error (e, _, _) ->
          raise (Io_failure ("close: " ^ Unix.error_message e)));
    bk_rename =
      (fun ~src ~dst ->
        try Unix.rename src dst
        with Unix.Unix_error (e, _, _) -> raise (Io_failure (io_msg "rename" src e)));
    bk_remove =
      (fun path ->
        try Unix.unlink path
        with Unix.Unix_error (e, _, _) -> raise (Io_failure (io_msg "remove" path e)));
  }

type fault = {
  enospc_after_bytes : int option;
  crash_after_shards : int option;
  short_writes : bool;
}

let no_faults =
  { enospc_after_bytes = None; crash_after_shards = None; short_writes = false }

let faulty f inner =
  (* counters are atomic so a fault wrapper threaded through domain-owned
     shard writers still trips once, at a well-defined global threshold *)
  let bytes = Atomic.make 0 and renames = Atomic.make 0 in
  {
    bk_open = inner.bk_open;
    bk_write =
      (fun fd b ~pos ~len ->
        (match f.enospc_after_bytes with
        | Some cap when Atomic.get bytes >= cap ->
            raise (Io_failure "write: no space left on device (injected)")
        | _ -> ());
        let len = if f.short_writes then max 1 (len / 2) else len in
        let n = inner.bk_write fd b ~pos ~len in
        ignore (Atomic.fetch_and_add bytes n);
        n);
    bk_close = inner.bk_close;
    bk_rename =
      (fun ~src ~dst ->
        (match f.crash_after_shards with
        | Some n when Atomic.get renames >= n ->
            raise
              (Injected_crash
                 (Printf.sprintf "simulated kill before committing shard %d"
                    (Atomic.get renames)))
        | _ -> ());
        inner.bk_rename ~src ~dst;
        ignore (Atomic.fetch_and_add renames 1));
    bk_remove = inner.bk_remove;
  }

(* --- CRC-32 (IEEE 802.3) ---------------------------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(crc = 0) b ~pos ~len =
  let tbl = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get tbl ((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* --- directories ------------------------------------------------------------ *)

let mkdir_p dir =
  Mirage_util.Fsutil.mkdir_p ~fail:(fun m -> Io_failure m) dir

(* --- manifest --------------------------------------------------------------- *)

type shard = {
  sh_name : string;
  sh_seq : int;
  sh_bytes : int;
  sh_raw : int;
  sh_crc : int;
}

type t = {
  dir : string;
  run_id : string;
  backend : backend;
  lock : Mutex.t;
      (* guards [committed], [order], [fresh_bytes], [next_seq] and manifest
         saves; domain-owned shard writers commit concurrently *)
  committed : (string, shard) Hashtbl.t;
  mutable order : shard list;  (* reverse commit order *)
  mutable complete : bool;
  resumed : int;
  mutable fresh_bytes : int;
  mutable next_seq : int;
}

let manifest_path ~dir = Filename.concat dir "MANIFEST.json"

(* manifest order IS concatenation order: shards sorted by [seq], the
   caller-assigned global position (table order, then shard index), so a
   multi-writer run records the same manifest as a serial one *)
let sorted_shards t =
  List.sort (fun a b -> compare a.sh_seq b.sh_seq) t.order

(* one shard per line so loading is simple field extraction, the same
   convention the bench JSON uses.  Caller holds [t.lock]. *)
let save_manifest t =
  let path = manifest_path ~dir:t.dir in
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out tmp in
     Printf.fprintf oc "{\"run_id\": \"%s\", \"complete\": %b, \"shards\": [\n"
       t.run_id t.complete;
     let shards = sorted_shards t in
     let last = List.length shards - 1 in
     List.iteri
       (fun i s ->
         Printf.fprintf oc
           "  {\"name\": \"%s\", \"seq\": %d, \"bytes\": %d, \"raw\": %d, \
            \"crc32\": \"%08x\"}%s\n"
           s.sh_name s.sh_seq s.sh_bytes s.sh_raw s.sh_crc
           (if i = last then "" else ","))
       shards;
     output_string oc "]}\n";
     close_out oc
   with Sys_error m -> raise (Io_failure ("manifest: " ^ m)));
  (* deliberately not routed through the backend: fault injection counts
     shard commits, and the manifest rename is not one *)
  try Sys.rename tmp path
  with Sys_error m -> raise (Io_failure ("manifest: " ^ m))

let string_field line key =
  let pat = "\"" ^ key ^ "\": \"" in
  match
    let plen = String.length pat in
    let rec find i =
      if i + plen > String.length line then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | Some stop -> Some (String.sub line start (stop - start))
      | None -> None)

let int_field line key =
  let pat = "\"" ^ key ^ "\": " in
  let plen = String.length pat in
  let rec find i =
    if i + plen > String.length line then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < String.length line
        && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr stop
      done;
      int_of_string_opt (String.sub line start (!stop - start))

let load_manifest path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let lines = List.rev !lines in
    match lines with
    | [] -> None
    | head :: _ ->
        Option.map
          (fun run_id ->
            let complete =
              let pat = "\"complete\": true" in
              let plen = String.length pat in
              let rec find i =
                i + plen <= String.length head
                && (String.sub head i plen = pat || find (i + 1))
              in
              find 0
            in
            let shards =
              List.filteri
                (fun _ line -> string_field line "name" <> None)
                lines
              |> List.mapi (fun i line ->
                     match (string_field line "name", int_field line "bytes")
                     with
                     | Some sh_name, Some sh_bytes ->
                         let sh_crc =
                           match string_field line "crc32" with
                           | Some h -> ( try int_of_string ("0x" ^ h) with _ -> 0)
                           | None -> 0
                         in
                         (* manifests written before the sharded-sink fields
                            existed carry neither [seq] nor [raw]: fall back
                            to file position and on-disk size *)
                         let sh_seq =
                           Option.value ~default:i (int_field line "seq")
                         in
                         let sh_raw =
                           Option.value ~default:sh_bytes (int_field line "raw")
                         in
                         Some { sh_name; sh_seq; sh_bytes; sh_raw; sh_crc }
                     | _ -> None)
              |> List.filter_map Fun.id
            in
            (run_id, complete, shards))
          (string_field head "run_id")
  end

let remove_stale_tmp dir =
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||])

let create ?(backend = os_backend) ?(resume = false) ~dir ~run_id () =
  if String.exists (fun c -> c = '"' || c = '\n') run_id then
    invalid_arg "Sink.create: run_id must not contain quotes or newlines";
  mkdir_p dir;
  (* a temp file is by definition uncommitted work from a killed run *)
  remove_stale_tmp dir;
  let mpath = manifest_path ~dir in
  let loaded =
    if resume then
      match load_manifest mpath with
      | Some (id, complete, shards) when id = run_id ->
          (* trust only shards whose files survived with the recorded size;
             anything else is re-rendered (deterministically) *)
          Some
            ( complete,
              List.filter
                (fun s ->
                  let p = Filename.concat dir s.sh_name in
                  match Unix.stat p with
                  | { Unix.st_size; _ } -> st_size = s.sh_bytes
                  | exception Unix.Unix_error _ -> false)
                shards )
      | _ -> None
    else None
  in
  (if loaded = None && Sys.file_exists mpath then
     try Sys.remove mpath with Sys_error _ -> ());
  let complete, shards = Option.value ~default:(false, []) loaded in
  let committed = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace committed s.sh_name s) shards;
  {
    dir;
    run_id;
    backend;
    lock = Mutex.create ();
    committed;
    order = List.rev shards;
    complete;
    resumed = List.length shards;
    fresh_bytes = 0;
    next_seq =
      List.fold_left (fun acc s -> max acc (s.sh_seq + 1)) 0 shards;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let is_done t name = locked t (fun () -> Hashtbl.mem t.committed name)
let completed t = locked t (fun () -> sorted_shards t)
let resumed_shards t = t.resumed
let bytes_written t = locked t (fun () -> t.fresh_bytes)

(* --- shard writing ---------------------------------------------------------- *)

type writer = {
  w_file : file;
  w_backend : backend;
  mutable w_bytes : int;
  mutable w_raw : int;  (* -1: no wrapper reported, raw = bytes *)
  mutable w_crc : int;
}

let put w b ~pos ~len =
  let rec go pos len =
    if len > 0 then begin
      let n = w.w_backend.bk_write w.w_file b ~pos ~len in
      if n <= 0 then raise (Io_failure "write: no progress");
      go (pos + n) (len - n)
    end
  in
  go pos len;
  w.w_crc <- crc32 ~crc:w.w_crc b ~pos ~len;
  w.w_bytes <- w.w_bytes + len

let add_raw w n = w.w_raw <- (if w.w_raw < 0 then n else w.w_raw + n)

let write_shard t ?seq ~name body =
  if not (is_done t name) then begin
    let final = Filename.concat t.dir name in
    let tmp = final ^ ".tmp" in
    let file = t.backend.bk_open tmp in
    let w =
      { w_file = file; w_backend = t.backend; w_bytes = 0; w_raw = -1; w_crc = 0 }
    in
    let cleanup () =
      (try t.backend.bk_close file with _ -> ());
      try t.backend.bk_remove tmp with _ -> ()
    in
    (try
       body w;
       t.backend.bk_close file;
       t.backend.bk_rename ~src:tmp ~dst:final
     with
    | Injected_crash _ as e ->
        (* a real kill closes fds and leaves the temp file; do the same *)
        (try t.backend.bk_close file with _ -> ());
        raise e
    | Io_failure _ as e ->
        cleanup ();
        raise e
    | e ->
        cleanup ();
        raise e);
    locked t (fun () ->
        let sh_seq =
          match seq with
          | Some s -> s
          | None ->
              let s = t.next_seq in
              t.next_seq <- s + 1;
              s
        in
        t.next_seq <- max t.next_seq (sh_seq + 1);
        let s =
          {
            sh_name = name;
            sh_seq;
            sh_bytes = w.w_bytes;
            sh_raw = (if w.w_raw < 0 then w.w_bytes else w.w_raw);
            sh_crc = w.w_crc;
          }
        in
        Hashtbl.replace t.committed name s;
        t.order <- s :: t.order;
        t.fresh_bytes <- t.fresh_bytes + w.w_bytes;
        (* checkpoint after every commit: a crash between the shard rename and
           this save only costs re-rendering that one shard, which the atomic
           rename then replaces with identical bytes *)
        save_manifest t)
  end

let forget t names =
  locked t (fun () ->
      let dead = List.filter (fun n -> Hashtbl.mem t.committed n) names in
      if dead <> [] then begin
        List.iter
          (fun n ->
            Hashtbl.remove t.committed n;
            try t.backend.bk_remove (Filename.concat t.dir n) with _ -> ())
          dead;
        t.order <- List.filter (fun s -> not (List.mem s.sh_name dead)) t.order;
        save_manifest t
      end)

let finish t =
  locked t (fun () ->
      t.complete <- true;
      save_manifest t)
