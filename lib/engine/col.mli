(** Typed columnar storage.

    A column is an unboxed [int array] (keys and [Kint] data), a flat
    [float array] ([Kfloat]), or a dictionary-encoded string column
    ([int array] codes into a shared pool of distinct strings), each with an
    optional null bitmap.  [Boxed] is the generic fallback for heterogeneous
    value arrays; the generators never produce it, but the [Value.t]-based
    compatibility API ({!Db.put}) can.

    The representation is exposed so the engine and the exporters can
    pattern-match for vectorized evaluation and zero-copy rendering; the
    accessors below are the boxed escape hatch for generic paths. *)

module Bitset : sig
  type t

  val create : int -> t
  (** All-clear bitset of the given length. *)

  val set : t -> int -> unit
  val clear : t -> int -> unit
  val get : t -> int -> bool
  val length : t -> int
  val count : t -> int
  (** Number of set bits. *)

  val copy : t -> t
end

type t =
  | Ints of { data : int array; nulls : Bitset.t option }
  | Floats of { data : float array; nulls : Bitset.t option }
  | Dict of { codes : int array; pool : string array; nulls : Bitset.t option }
      (** [pool] holds distinct strings; [codes.(i)] indexes [pool].  Rows
          flagged null carry an arbitrary (ignored) code. *)
  | Boxed of Mirage_sql.Value.t array

val length : t -> int
val is_null : t -> int -> bool

val get : t -> int -> Mirage_sql.Value.t
(** Boxed escape hatch; [Null] for rows flagged in the null bitmap. *)

val float_at : t -> int -> float option
(** [Value.to_float] semantics on the typed representation: numeric rows
    yield their float value, nulls and strings yield [None]. *)

val of_ints : ?nulls:Bitset.t -> int array -> t
(** Takes ownership of the array (no copy). *)

val of_floats : ?nulls:Bitset.t -> float array -> t
(** Takes ownership of the array (no copy). *)

val of_strings : ?nulls:Bitset.t -> string array -> t
(** Dictionary-encodes: pool in order of first occurrence. *)

val dict : ?nulls:Bitset.t -> codes:int array -> pool:string array -> unit -> t
(** Unchecked constructor; the caller guarantees distinct pool entries and
    in-range codes (the CDF renderer does). *)

val const_null : int -> t
(** A column of [n] NULLs. *)

val of_values : Mirage_sql.Value.t array -> t
(** Kind inference: homogeneous non-null values choose the typed
    representation ([Int]s, [Float]s or dictionary-encoded [Str]s, with a
    null bitmap when NULLs are present); an all-NULL array becomes
    {!const_null}; heterogeneous arrays fall back to [Boxed] (copied). *)

val to_values : t -> Mirage_sql.Value.t array
(** Freshly allocated boxed copy. *)

val equal : t -> t -> bool
(** Logical (value-level) equality, independent of representation. *)

val add_csv_cell : Buffer.t -> t -> int -> unit
(** Append row [i] in {!Db.to_csv} cell syntax: NULL renders as the empty
    string, ints via [string_of_int], floats via {!Render.float_repr}
    (round-trip, shared with every exporter), strings RFC-4180 quoted when
    — and only when — they contain a comma, quote, CR or LF
    ({!Render.csv_escape}). *)
