(** Typed columnar storage.

    A column is an unboxed [int array] (keys and [Kint] data), a flat
    [float array] ([Kfloat]), or a dictionary-encoded string column
    ([int array] codes into a shared pool of distinct strings), each with an
    optional null bitmap.  [Boxed] is the generic fallback for heterogeneous
    value arrays; the generators never produce it, but the [Value.t]-based
    compatibility API ({!Db.put}) can.

    Above {!big_rows} rows the numeric representations move off the OCaml
    heap into [Bigarray]-backed variants ([Big_ints] / [Big_floats] /
    [Big_dict]): same logical contents, but the payload bytes live in
    malloc'd or file-backed (mmap) memory the GC neither scans nor copies,
    so enormous PK pools and fact columns stop inflating the heap's
    high-water mark.  The accessors below are representation-blind; engine
    fast paths that pattern-match add explicit arms for the big variants.

    The representation is exposed so the engine and the exporters can
    pattern-match for vectorized evaluation and zero-copy rendering; the
    accessors below are the boxed escape hatch for generic paths. *)

module Bitset : sig
  type t

  val create : int -> t
  (** All-clear bitset of the given length.  At {!big_rows} rows or more
      the bits live off-heap (same backing policy as the big column
      variants), so table-sized null bitmaps and membership vectors don't
      count against the heap budget of a streamed run. *)

  val set : t -> int -> unit
  val clear : t -> int -> unit
  val get : t -> int -> bool
  val length : t -> int
  val count : t -> int
  (** Number of set bits. *)

  val copy : t -> t
end

type int_big = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type float_big = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val big_rows : unit -> int
(** Row threshold above which freshly built numeric columns and work
    vectors go off-heap.  Defaults to 1_000_000; override with the
    [MIRAGE_BIG_ROWS] environment variable or {!set_big_rows}. *)

val set_big_rows : int -> unit

val big_dir : unit -> string option
(** Spill directory for file-backed big columns.  Seeded from the
    [MIRAGE_BIG_DIR] environment variable at startup; [None] means
    anonymous (malloc'd) Bigarray memory. *)

val set_big_dir : string option -> unit
(** Override the spill directory (the CLI's [--big-dir] flag).  Read per
    allocation, so it applies to every subsequently built big column. *)

val alloc_int_big : int -> int_big
(** Off-heap int vector, zero-filled.  Backed by an unlinked temp file under
    {!big_dir} (via [Unix.map_file]) when set, else by anonymous [Bigarray]
    memory. *)

val alloc_float_big : int -> float_big
(** Off-heap float vector, zero-filled; same backing policy. *)

type t =
  | Ints of { data : int array; nulls : Bitset.t option }
  | Floats of { data : float array; nulls : Bitset.t option }
  | Dict of { codes : int array; pool : string array; nulls : Bitset.t option }
      (** [pool] holds distinct strings; [codes.(i)] indexes [pool].  Rows
          flagged null carry an arbitrary (ignored) code. *)
  | Big_ints of { data : int_big; nulls : Bitset.t option }
  | Big_floats of { data : float_big; nulls : Bitset.t option }
  | Big_dict of { codes : int_big; pool : string array; nulls : Bitset.t option }
  | Boxed of Mirage_sql.Value.t array

type col = t
(** Alias for referring to the column type inside submodule signatures. *)

(** Mutable int vector whose backing store follows the {!big_rows}
    threshold: a plain [int array] for small lengths, an off-heap
    {!int_big} above it.  Used for FK fill buffers, PK pools and work
    arrays so the builders never commit to a representation; {!Ivec.to_col}
    converts zero-copy.  Writes to disjoint indices are safe from multiple
    domains (both backings are flat unboxed storage). *)
module Ivec : sig
  type t

  val make : int -> int -> t
  (** [make n v]: length [n], every slot [v]. *)

  val init : int -> (int -> int) -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val unsafe_get : t -> int -> int
  val unsafe_set : t -> int -> int -> unit

  val to_col : ?nulls:Bitset.t -> t -> col
  (** Zero-copy: the column aliases the vector's storage. *)

  val to_array : t -> int array
  (** Heap copy (aliases when already heap-backed). *)
end

val length : t -> int
val is_null : t -> int -> bool

val get : t -> int -> Mirage_sql.Value.t
(** Boxed escape hatch; [Null] for rows flagged in the null bitmap. *)

val int_at : t -> int -> int
(** Unchecked raw int read from an int-typed column ([Ints]/[Big_ints]);
    0 on other representations unless the boxed cell is an [Int]. *)

val float_at : t -> int -> float option
(** [Value.to_float] semantics on the typed representation: numeric rows
    yield their float value, nulls and strings yield [None]. *)

val of_ints : ?nulls:Bitset.t -> int array -> t
(** Takes ownership of the array (no copy). *)

val of_floats : ?nulls:Bitset.t -> float array -> t
(** Takes ownership of the array (no copy). *)

val init_ints : ?nulls:Bitset.t -> int -> (int -> int) -> t
(** Builds an int column of the threshold-selected representation. *)

val init_floats : ?nulls:Bitset.t -> int -> (int -> float) -> t
(** Builds a float column of the threshold-selected representation. *)

val of_strings : ?nulls:Bitset.t -> string array -> t
(** Dictionary-encodes: pool in order of first occurrence. *)

val dict : ?nulls:Bitset.t -> codes:int array -> pool:string array -> unit -> t
(** Unchecked constructor; the caller guarantees distinct pool entries and
    in-range codes (the CDF renderer does). *)

val const_null : int -> t
(** A column of [n] NULLs. *)

val of_values : Mirage_sql.Value.t array -> t
(** Kind inference: homogeneous non-null values choose the typed
    representation ([Int]s, [Float]s or dictionary-encoded [Str]s, with a
    null bitmap when NULLs are present); an all-NULL array becomes
    {!const_null}; heterogeneous arrays fall back to [Boxed] (copied). *)

val to_values : t -> Mirage_sql.Value.t array
(** Freshly allocated boxed copy. *)

val equal : t -> t -> bool
(** Logical (value-level) equality, independent of representation. *)

val add_csv_cell : Buffer.t -> t -> int -> unit
(** Append row [i] in {!Db.to_csv} cell syntax: NULL renders as the empty
    string, ints via [string_of_int], floats via {!Render.float_repr}
    (round-trip, shared with every exporter), strings RFC-4180 quoted when
    — and only when — they contain a comma, quote, CR or LF
    ({!Render.csv_escape}). *)
