(** Crash-safe chunked export sink.

    Fact tables are emitted shard-at-a-time: every shard is written to a
    [<name>.tmp] temp file and atomically renamed into place, then recorded
    (size + CRC-32) in a per-run [MANIFEST.json] checkpoint that is itself
    rewritten atomically after every commit.  A run killed at any point
    leaves either nothing or a fully committed prefix of shards plus at most
    one stale temp file; reopening the sink with [~resume:true] skips every
    committed shard, and because generation and rendering are deterministic
    per shard (stream-split RNG, templated splicing), the resumed run
    reproduces the remaining shards byte-identically.

    All file operations go through a {!backend} record so the fault-injection
    harness can interpose short writes, disk-full failures and simulated
    kills ({!faulty}) without touching the production path. *)

exception Io_failure of string
(** A genuine I/O failure (ENOSPC, EIO, permission, short write that made no
    progress).  The failing shard's temp file has been removed — an aborted
    run leaves no orphaned temp files, only committed shards. *)

exception Injected_crash of string
(** Raised by a {!faulty} backend to simulate a kill: no cleanup runs, the
    in-flight temp file is left behind exactly as a dead process would leave
    it.  Never raised by {!os_backend}. *)

type file

type backend = {
  bk_open : string -> file;
  bk_write : file -> Bytes.t -> pos:int -> len:int -> int;
      (** may write fewer than [len] bytes; returns the count accepted *)
  bk_close : file -> unit;
  bk_rename : src:string -> dst:string -> unit;
  bk_remove : string -> unit;
}

val os_backend : backend
(** [Unix] implementation; every [Unix_error] is rewrapped as
    {!Io_failure}. *)

type fault = {
  enospc_after_bytes : int option;
      (** fail every write once this many bytes were accepted in total *)
  crash_after_shards : int option;
      (** simulate a kill at the rename of shard [n] (0-based): exactly [n]
          shards end up committed, the [n+1]-th temp file is left behind *)
  short_writes : bool;
      (** accept at most half of every write request (min 1 byte) —
          exercises the caller's partial-write loop *)
}

val no_faults : fault

val faulty : fault -> backend -> backend
(** Wrap a backend with injected faults.  Counters (bytes accepted, shards
    renamed) are per-wrapper and atomic, so one [faulty] value describes one
    simulated incident even when several domains write through it. *)

val crc32 : ?crc:int -> Bytes.t -> pos:int -> len:int -> int
(** Incremental CRC-32 (IEEE 802.3, the zlib polynomial), as a non-negative
    int.  [crc] defaults to 0, the empty-prefix value; feed the previous
    result to extend.  [crc32 "123456789"] = [0xCBF43926]. *)

val mkdir_p : string -> unit
(** Recursive mkdir, hardened against concurrent creation: a directory that
    appears between the existence check and the [mkdir] (another domain or
    process racing us) is success, not an error.
    @raise Io_failure when creation fails for any other reason (a path
    component is a file, permission denied, …). *)

type shard = {
  sh_name : string;
  sh_seq : int;
      (** global concatenation position (table order, then shard index);
          {!completed} and the manifest are sorted by it, so a multi-writer
          run records the same manifest as a serial one *)
  sh_bytes : int;  (** bytes on disk (compressed when a wrapper compresses) *)
  sh_raw : int;
      (** uncompressed payload bytes ({!add_raw}); equals [sh_bytes] when no
          wrapper reported *)
  sh_crc : int;
}

type t
(** An open run: target directory, backend, and the committed-shard
    checkpoint.  Commit bookkeeping (including the manifest rewrite) is
    mutex-protected, so shards may be written concurrently from several
    domains; the bytes of each individual shard still come from exactly one
    writer. *)

val manifest_path : dir:string -> string
(** [dir/MANIFEST.json]. *)

val create : ?backend:backend -> ?resume:bool -> dir:string -> run_id:string -> unit -> t
(** Open a run over [dir] (created if missing).  Stale [*.tmp] files from a
    killed run are always removed.  With [~resume:true] and an existing
    manifest whose [run_id] matches, committed shards whose files still
    exist with the recorded size are loaded and subsequently skipped by
    {!write_shard}; a missing or mismatched manifest (or a different
    [run_id] — the caller must encode everything that changes the bytes:
    seed, scale, chunk size, format) starts fresh.  The [run_id] must be
    free of newlines and double quotes. *)

val is_done : t -> string -> bool
(** Whether a shard of this name is already committed (loaded from the
    manifest on resume, or written earlier in this run).  Check before
    rendering — skipping the render is where resume saves its time. *)

val completed : t -> shard list
(** Committed shards in [sh_seq] (concatenation) order. *)

val resumed_shards : t -> int
(** Shards that were already committed when the run was opened. *)

val bytes_written : t -> int
(** Bytes committed by {!write_shard} in this process (excludes resumed
    shards). *)

type writer

val put : writer -> Bytes.t -> pos:int -> len:int -> unit
(** Append bytes to the open shard, looping over partial backend writes.
    @raise Io_failure when the backend fails or stops making progress. *)

val add_raw : writer -> int -> unit
(** Record [n] uncompressed payload bytes for this shard.  Called by
    compressing wrappers (the gzip sink) so the manifest can report both
    sides; never calling it makes [sh_raw] default to [sh_bytes]. *)

val write_shard : t -> ?seq:int -> name:string -> (writer -> unit) -> unit
(** [write_shard t ~name body] streams one shard: opens [name.tmp] under the
    run directory, runs [body] (which calls {!put}), closes, atomically
    renames to [name], appends the shard to the manifest and atomically
    rewrites it.  No-op if [name] is already committed.  [seq] fixes the
    shard's global concatenation position; it defaults to a per-sink
    counter (correct for serial writers).  On {!Io_failure} the temp file
    is removed before the exception propagates; on {!Injected_crash}
    nothing is cleaned up (that is the point). *)

val forget : t -> string list -> unit
(** Un-commit the named shards: remove them from the manifest (rewritten
    atomically), delete their files, and make {!is_done} answer false for
    them again.  Names not currently committed are ignored.  This is how a
    live exporter retracts shards written for a generation attempt that
    was aborted and will be regenerated under different constraints —
    shards resumed from a {e previous} run should not be passed here, as
    they already hold the final deterministic bytes.  {!bytes_written}
    still counts the forgotten shards' I/O. *)

val finish : t -> unit
(** Mark the run complete in the manifest (["complete": true]) — a resumed
    run that finds a complete matching manifest skips every shard. *)
