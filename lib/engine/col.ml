module Value = Mirage_sql.Value

type int_big = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type float_big = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type byte_big = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let big_rows_threshold =
  ref
    (match Sys.getenv_opt "MIRAGE_BIG_ROWS" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1_000_000)
    | None -> 1_000_000)

let big_rows () = !big_rows_threshold
let set_big_rows n = if n > 0 then big_rows_threshold := n

(* spill directory: the env var seeds the default, the CLI flag overrides
   via [set_big_dir] — read per allocation so a change applies to every
   subsequent big column *)
let big_dir_ref = ref (Sys.getenv_opt "MIRAGE_BIG_DIR")
let big_dir () = !big_dir_ref
let set_big_dir d = big_dir_ref := d

(* File-backed allocation: an unlinked temp file under the spill directory
   keeps the pages evictable by the kernel (dirty pages write back to the
   file instead of pinning swap), and unlinking immediately means a crash
   leaks nothing.  Without a spill directory we fall back to anonymous
   Bigarray memory, which is still off the OCaml heap — the GC neither
   scans nor compacts it, which is the property the generation pipeline
   needs. *)
let big_file_seq = Atomic.make 0

let map_file_big : (Unix.file_descr -> ('a, 'b) Bigarray.kind -> int ->
                    ('a, 'b, Bigarray.c_layout) Bigarray.Array1.t) =
 fun fd kind n ->
  Bigarray.array1_of_genarray
    (Unix.map_file fd kind Bigarray.c_layout true [| n |])

let alloc_big : type a b. (a, b) Bigarray.kind -> a -> int ->
                (a, b, Bigarray.c_layout) Bigarray.Array1.t =
 fun kind zero n ->
  let n = max n 0 in
  match !big_dir_ref with
  | Some dir when n > 0 -> (
      match
        let path =
          Filename.concat dir
            (Printf.sprintf "mirage-big-%d-%d.tmp" (Unix.getpid ())
               (Atomic.fetch_and_add big_file_seq 1))
        in
        let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_EXCL ] 0o600 in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.unlink path with Unix.Unix_error _ -> ());
            Unix.close fd)
          (fun () -> map_file_big fd kind n)
      with
      | ba -> ba
      | exception (Unix.Unix_error _ | Sys_error _) ->
          (* fall back to anonymous memory rather than failing generation *)
          let ba = Bigarray.Array1.create kind Bigarray.c_layout n in
          Bigarray.Array1.fill ba zero;
          ba)
  | _ ->
      let ba = Bigarray.Array1.create kind Bigarray.c_layout n in
      (* malloc'd pages are not zeroed; mmap'd file pages are *)
      Bigarray.Array1.fill ba zero;
      ba

let alloc_int_big n : int_big = alloc_big Bigarray.int 0 n
let alloc_float_big n : float_big = alloc_big Bigarray.float64 0.0 n
let alloc_byte_big n : byte_big = alloc_big Bigarray.int8_unsigned 0 n

(* Bitsets follow the same threshold as numeric columns: a bitmap covering
   [big_rows] or more rows lives off-heap, so table-sized null bitmaps and
   membership vectors stop counting against the chunk-sized heap budget. *)
module Bitset = struct
  type store = Heap of Bytes.t | Big of byte_big
  type t = { bits : store; len : int }

  let create len =
    let nbytes = (len + 7) lsr 3 in
    if len >= !big_rows_threshold then { bits = Big (alloc_byte_big nbytes); len }
    else { bits = Heap (Bytes.make nbytes '\000'); len }

  let byte_at s i =
    match s with
    | Heap b -> Char.code (Bytes.unsafe_get b i)
    | Big ba -> Bigarray.Array1.unsafe_get ba i

  let byte_put s i v =
    match s with
    | Heap b -> Bytes.unsafe_set b i (Char.unsafe_chr v)
    | Big ba -> Bigarray.Array1.unsafe_set ba i v

  let set b i =
    let byte = i lsr 3 and bit = i land 7 in
    byte_put b.bits byte (byte_at b.bits byte lor (1 lsl bit))

  let clear b i =
    let byte = i lsr 3 and bit = i land 7 in
    byte_put b.bits byte (byte_at b.bits byte land lnot (1 lsl bit))

  let get b i = byte_at b.bits (i lsr 3) land (1 lsl (i land 7)) <> 0
  let length b = b.len

  let count b =
    let n = ref 0 in
    for i = 0 to b.len - 1 do
      if get b i then incr n
    done;
    !n

  let copy b =
    let bits =
      match b.bits with
      | Heap x -> Heap (Bytes.copy x)
      | Big ba ->
          let c = alloc_byte_big (Bigarray.Array1.dim ba) in
          Bigarray.Array1.blit ba c;
          Big c
    in
    { bits; len = b.len }
end

type t =
  | Ints of { data : int array; nulls : Bitset.t option }
  | Floats of { data : float array; nulls : Bitset.t option }
  | Dict of { codes : int array; pool : string array; nulls : Bitset.t option }
  | Big_ints of { data : int_big; nulls : Bitset.t option }
  | Big_floats of { data : float_big; nulls : Bitset.t option }
  | Big_dict of { codes : int_big; pool : string array; nulls : Bitset.t option }
  | Boxed of Value.t array

type col = t

module Ivec = struct
  type t = Small of int array | Big of int_big

  let make n v =
    if n >= !big_rows_threshold then begin
      let ba = alloc_int_big n in
      if v <> 0 then Bigarray.Array1.fill ba v;
      Big ba
    end
    else Small (Array.make n v)

  let init n f =
    if n >= !big_rows_threshold then begin
      let ba = alloc_int_big n in
      for i = 0 to n - 1 do
        Bigarray.Array1.unsafe_set ba i (f i)
      done;
      Big ba
    end
    else Small (Array.init n f)

  let length = function
    | Small a -> Array.length a
    | Big ba -> Bigarray.Array1.dim ba

  let get t i =
    match t with Small a -> a.(i) | Big ba -> Bigarray.Array1.get ba i

  let set t i v =
    match t with Small a -> a.(i) <- v | Big ba -> Bigarray.Array1.set ba i v

  let unsafe_get t i =
    match t with
    | Small a -> Array.unsafe_get a i
    | Big ba -> Bigarray.Array1.unsafe_get ba i

  let unsafe_set t i v =
    match t with
    | Small a -> Array.unsafe_set a i v
    | Big ba -> Bigarray.Array1.unsafe_set ba i v

  let to_col ?nulls t : col =
    match t with
    | Small data -> Ints { data; nulls }
    | Big data -> Big_ints { data; nulls }

  let to_array = function
    | Small a -> a
    | Big ba -> Array.init (Bigarray.Array1.dim ba) (Bigarray.Array1.get ba)
end

let length = function
  | Ints { data; _ } -> Array.length data
  | Floats { data; _ } -> Array.length data
  | Dict { codes; _ } -> Array.length codes
  | Big_ints { data; _ } -> Bigarray.Array1.dim data
  | Big_floats { data; _ } -> Bigarray.Array1.dim data
  | Big_dict { codes; _ } -> Bigarray.Array1.dim codes
  | Boxed vs -> Array.length vs

let null_at nulls i =
  match nulls with None -> false | Some b -> Bitset.get b i

let is_null t i =
  match t with
  | Ints { nulls; _ }
  | Floats { nulls; _ }
  | Dict { nulls; _ }
  | Big_ints { nulls; _ }
  | Big_floats { nulls; _ }
  | Big_dict { nulls; _ } ->
      null_at nulls i
  | Boxed vs -> vs.(i) = Value.Null

let get t i =
  match t with
  | Ints { data; nulls } ->
      if null_at nulls i then Value.Null else Value.Int data.(i)
  | Floats { data; nulls } ->
      if null_at nulls i then Value.Null else Value.Float data.(i)
  | Dict { codes; pool; nulls } ->
      if null_at nulls i then Value.Null else Value.Str pool.(codes.(i))
  | Big_ints { data; nulls } ->
      if null_at nulls i then Value.Null
      else Value.Int (Bigarray.Array1.get data i)
  | Big_floats { data; nulls } ->
      if null_at nulls i then Value.Null
      else Value.Float (Bigarray.Array1.get data i)
  | Big_dict { codes; pool; nulls } ->
      if null_at nulls i then Value.Null
      else Value.Str pool.(Bigarray.Array1.get codes i)
  | Boxed vs -> vs.(i)

let int_at t i =
  match t with
  | Ints { data; _ } -> data.(i)
  | Big_ints { data; _ } -> Bigarray.Array1.get data i
  | Boxed vs -> ( match vs.(i) with Value.Int x -> x | _ -> 0)
  | _ -> 0

let float_at t i =
  match t with
  | Ints { data; nulls } ->
      if null_at nulls i then None else Some (float_of_int data.(i))
  | Floats { data; nulls } ->
      if null_at nulls i then None else Some data.(i)
  | Big_ints { data; nulls } ->
      if null_at nulls i then None
      else Some (float_of_int (Bigarray.Array1.get data i))
  | Big_floats { data; nulls } ->
      if null_at nulls i then None else Some (Bigarray.Array1.get data i)
  | Dict _ | Big_dict _ -> None
  | Boxed vs -> Value.to_float vs.(i)

let of_ints ?nulls data = Ints { data; nulls }
let of_floats ?nulls data = Floats { data; nulls }
let dict ?nulls ~codes ~pool () = Dict { codes; pool; nulls }

let init_ints ?nulls n f =
  if n >= !big_rows_threshold then begin
    let data = alloc_int_big n in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set data i (f i)
    done;
    Big_ints { data; nulls }
  end
  else Ints { data = Array.init n f; nulls }

let init_floats ?nulls n f =
  if n >= !big_rows_threshold then begin
    let data = alloc_float_big n in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set data i (f i)
    done;
    Big_floats { data; nulls }
  end
  else Floats { data = Array.init n f; nulls }

let of_strings ?nulls strs =
  let tbl = Hashtbl.create (min 256 (Array.length strs + 1)) in
  let rev_pool = ref [] and next = ref 0 in
  let code s =
    match Hashtbl.find_opt tbl s with
    | Some c -> c
    | None ->
        let c = !next in
        Hashtbl.add tbl s c;
        rev_pool := s :: !rev_pool;
        incr next;
        c
  in
  let n = Array.length strs in
  if n >= !big_rows_threshold then begin
    let codes = alloc_int_big n in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set codes i (code strs.(i))
    done;
    Big_dict { codes; pool = Array.of_list (List.rev !rev_pool); nulls }
  end
  else begin
    let codes = Array.map code strs in
    Dict { codes; pool = Array.of_list (List.rev !rev_pool); nulls }
  end

let const_null n =
  let b = Bitset.create n in
  for i = 0 to n - 1 do
    Bitset.set b i
  done;
  if n >= !big_rows_threshold then
    Big_ints { data = alloc_int_big n; nulls = Some b }
  else Ints { data = Array.make n 0; nulls = Some b }

let of_values vs =
  let n = Array.length vs in
  let n_null = ref 0
  and n_int = ref 0
  and n_float = ref 0
  and n_str = ref 0 in
  Array.iter
    (function
      | Value.Null -> incr n_null
      | Value.Int _ -> incr n_int
      | Value.Float _ -> incr n_float
      | Value.Str _ -> incr n_str)
    vs;
  let nulls =
    if !n_null = 0 then None
    else begin
      let b = Bitset.create n in
      Array.iteri (fun i v -> if v = Value.Null then Bitset.set b i) vs;
      Some b
    end
  in
  if !n_int + !n_null = n && !n_int > 0 then begin
    if n >= !big_rows_threshold then begin
      let data = alloc_int_big n in
      Array.iteri
        (fun i v ->
          match v with
          | Value.Int x -> Bigarray.Array1.unsafe_set data i x
          | _ -> ())
        vs;
      Big_ints { data; nulls }
    end
    else
      Ints
        { data = Array.map (function Value.Int x -> x | _ -> 0) vs; nulls }
  end
  else if !n_float + !n_null = n && !n_float > 0 then begin
    if n >= !big_rows_threshold then begin
      let data = alloc_float_big n in
      Array.iteri
        (fun i v ->
          match v with
          | Value.Float x -> Bigarray.Array1.unsafe_set data i x
          | _ -> ())
        vs;
      Big_floats { data; nulls }
    end
    else
      Floats
        { data = Array.map (function Value.Float x -> x | _ -> 0.0) vs;
          nulls;
        }
  end
  else if !n_str + !n_null = n && !n_str > 0 then begin
    let strs =
      Array.map (function Value.Str s -> s | _ -> "") vs
    in
    match of_strings ?nulls strs with
    | Dict d -> Dict { d with nulls }
    | Big_dict d -> Big_dict { d with nulls }
    | c -> c
  end
  else if !n_null = n then const_null n
  else Boxed (Array.copy vs)

let to_values t =
  match t with
  | Boxed vs -> Array.copy vs
  | _ -> Array.init (length t) (get t)

let equal a b =
  let n = length a in
  n = length b
  &&
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    if not (Value.equal (get a !i) (get b !i)) then ok := false;
    incr i
  done;
  !ok

let add_csv_cell buf t i =
  match t with
  | Ints { data; nulls } ->
      if not (null_at nulls i) then
        Buffer.add_string buf (string_of_int data.(i))
  | Floats { data; nulls } ->
      if not (null_at nulls i) then
        Buffer.add_string buf (Render.float_repr data.(i))
  | Dict { codes; pool; nulls } ->
      if not (null_at nulls i) then
        Buffer.add_string buf (Render.csv_escape pool.(codes.(i)))
  | Big_ints { data; nulls } ->
      if not (null_at nulls i) then
        Buffer.add_string buf (string_of_int (Bigarray.Array1.get data i))
  | Big_floats { data; nulls } ->
      if not (null_at nulls i) then
        Buffer.add_string buf (Render.float_repr (Bigarray.Array1.get data i))
  | Big_dict { codes; pool; nulls } ->
      if not (null_at nulls i) then
        Buffer.add_string buf
          (Render.csv_escape pool.(Bigarray.Array1.get codes i))
  | Boxed vs -> (
      match vs.(i) with
      | Value.Null -> ()
      | Value.Int x -> Buffer.add_string buf (string_of_int x)
      | Value.Float f -> Buffer.add_string buf (Render.float_repr f)
      | Value.Str s -> Buffer.add_string buf (Render.csv_escape s))
