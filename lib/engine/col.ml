module Value = Mirage_sql.Value

module Bitset = struct
  type t = { bits : Bytes.t; len : int }

  let create len = { bits = Bytes.make ((len + 7) lsr 3) '\000'; len }

  let set b i =
    let byte = i lsr 3 and bit = i land 7 in
    Bytes.unsafe_set b.bits byte
      (Char.chr (Char.code (Bytes.unsafe_get b.bits byte) lor (1 lsl bit)))

  let clear b i =
    let byte = i lsr 3 and bit = i land 7 in
    Bytes.unsafe_set b.bits byte
      (Char.chr (Char.code (Bytes.unsafe_get b.bits byte) land lnot (1 lsl bit)))

  let get b i =
    Char.code (Bytes.unsafe_get b.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let length b = b.len

  let count b =
    let n = ref 0 in
    for i = 0 to b.len - 1 do
      if get b i then incr n
    done;
    !n

  let copy b = { bits = Bytes.copy b.bits; len = b.len }
end

type t =
  | Ints of { data : int array; nulls : Bitset.t option }
  | Floats of { data : float array; nulls : Bitset.t option }
  | Dict of { codes : int array; pool : string array; nulls : Bitset.t option }
  | Boxed of Value.t array

let length = function
  | Ints { data; _ } -> Array.length data
  | Floats { data; _ } -> Array.length data
  | Dict { codes; _ } -> Array.length codes
  | Boxed vs -> Array.length vs

let null_at nulls i =
  match nulls with None -> false | Some b -> Bitset.get b i

let is_null t i =
  match t with
  | Ints { nulls; _ } | Floats { nulls; _ } | Dict { nulls; _ } ->
      null_at nulls i
  | Boxed vs -> vs.(i) = Value.Null

let get t i =
  match t with
  | Ints { data; nulls } ->
      if null_at nulls i then Value.Null else Value.Int data.(i)
  | Floats { data; nulls } ->
      if null_at nulls i then Value.Null else Value.Float data.(i)
  | Dict { codes; pool; nulls } ->
      if null_at nulls i then Value.Null else Value.Str pool.(codes.(i))
  | Boxed vs -> vs.(i)

let float_at t i =
  match t with
  | Ints { data; nulls } ->
      if null_at nulls i then None else Some (float_of_int data.(i))
  | Floats { data; nulls } ->
      if null_at nulls i then None else Some data.(i)
  | Dict _ -> None
  | Boxed vs -> Value.to_float vs.(i)

let of_ints ?nulls data = Ints { data; nulls }
let of_floats ?nulls data = Floats { data; nulls }
let dict ?nulls ~codes ~pool () = Dict { codes; pool; nulls }

let of_strings ?nulls strs =
  let tbl = Hashtbl.create (min 256 (Array.length strs + 1)) in
  let rev_pool = ref [] and next = ref 0 in
  let codes =
    Array.map
      (fun s ->
        match Hashtbl.find_opt tbl s with
        | Some c -> c
        | None ->
            let c = !next in
            Hashtbl.add tbl s c;
            rev_pool := s :: !rev_pool;
            incr next;
            c)
      strs
  in
  Dict
    { codes; pool = Array.of_list (List.rev !rev_pool); nulls }

let const_null n =
  let b = Bitset.create n in
  for i = 0 to n - 1 do
    Bitset.set b i
  done;
  Ints { data = Array.make n 0; nulls = Some b }

let of_values vs =
  let n = Array.length vs in
  let n_null = ref 0
  and n_int = ref 0
  and n_float = ref 0
  and n_str = ref 0 in
  Array.iter
    (function
      | Value.Null -> incr n_null
      | Value.Int _ -> incr n_int
      | Value.Float _ -> incr n_float
      | Value.Str _ -> incr n_str)
    vs;
  let nulls =
    if !n_null = 0 then None
    else begin
      let b = Bitset.create n in
      Array.iteri (fun i v -> if v = Value.Null then Bitset.set b i) vs;
      Some b
    end
  in
  if !n_int + !n_null = n && !n_int > 0 then
    Ints
      { data =
          Array.map (function Value.Int x -> x | _ -> 0) vs;
        nulls;
      }
  else if !n_float + !n_null = n && !n_float > 0 then
    Floats
      { data =
          Array.map (function Value.Float x -> x | _ -> 0.0) vs;
        nulls;
      }
  else if !n_str + !n_null = n && !n_str > 0 then begin
    let strs =
      Array.map (function Value.Str s -> s | _ -> "") vs
    in
    match of_strings ?nulls strs with
    | Dict d -> Dict { d with nulls }
    | c -> c
  end
  else if !n_null = n then const_null n
  else Boxed (Array.copy vs)

let to_values t =
  match t with
  | Boxed vs -> Array.copy vs
  | _ -> Array.init (length t) (get t)

let equal a b =
  let n = length a in
  n = length b
  &&
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    if not (Value.equal (get a !i) (get b !i)) then ok := false;
    incr i
  done;
  !ok

let add_csv_cell buf t i =
  match t with
  | Ints { data; nulls } ->
      if not (null_at nulls i) then
        Buffer.add_string buf (string_of_int data.(i))
  | Floats { data; nulls } ->
      if not (null_at nulls i) then
        Buffer.add_string buf (Render.float_repr data.(i))
  | Dict { codes; pool; nulls } ->
      if not (null_at nulls i) then
        Buffer.add_string buf (Render.csv_escape pool.(codes.(i)))
  | Boxed vs -> (
      match vs.(i) with
      | Value.Null -> ()
      | Value.Int x -> Buffer.add_string buf (string_of_int x)
      | Value.Float f -> Buffer.add_string buf (Render.float_repr f)
      | Value.Str s -> Buffer.add_string buf (Render.csv_escape s))
