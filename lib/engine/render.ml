(* Zero-allocation output kernel: digit writers and pre-escaped fragment
   splicing over a growable Bytes buffer.  See render.mli for the
   formatting policy the exporters share. *)

(* integral floats in this range convert to int exactly (any integral
   double below 2^62 is an exact OCaml int), so they take the
   allocation-free digit path; the bound is far below 2^62 only to keep the
   reasoning local *)
let integral_fast f = Float.is_integer f && Float.abs f < 1e18

let float_repr f =
  if f <> f then "nan"
  else if f = infinity then "inf"
  else if f = neg_infinity then "-inf"
  else if f = 0.0 then (if 1.0 /. f < 0.0 then "-0" else "0")
  else if integral_fast f then string_of_int (int_of_float f)
  else begin
    (* shortest decimal that parses back to the identical double: data
       floats round-trip at low precision, so the loop is short in practice
       and capped at the 17 digits that always suffice for binary64 *)
    let rec go p =
      let s = Printf.sprintf "%.*g" p f in
      if p >= 17 || float_of_string s = f then s else go (p + 1)
    in
    go 1
  end

module Buf = struct
  type t = { mutable bytes : Bytes.t; mutable len : int }

  let create n = { bytes = Bytes.create (max 16 n); len = 0 }
  let clear b = b.len <- 0
  let length b = b.len
  let contents b = Bytes.sub_string b.bytes 0 b.len
  let to_bytes b = Bytes.sub b.bytes 0 b.len

  let ensure b extra =
    let need = b.len + extra in
    let cap = Bytes.length b.bytes in
    if need > cap then begin
      let cap' = ref (cap * 2) in
      while !cap' < need do
        cap' := !cap' * 2
      done;
      let nb = Bytes.create !cap' in
      Bytes.blit b.bytes 0 nb 0 b.len;
      b.bytes <- nb
    end

  let add_char b c =
    ensure b 1;
    Bytes.unsafe_set b.bytes b.len c;
    b.len <- b.len + 1

  let add_string b s =
    let n = String.length s in
    ensure b n;
    Bytes.blit_string s 0 b.bytes b.len n;
    b.len <- b.len + n

  let add_subbytes b src ~pos ~len =
    ensure b len;
    Bytes.blit src pos b.bytes b.len len;
    b.len <- b.len + len

  (* "00" "01" … "99": one table lookup emits two digits, halving the
     divisions on the per-key hot path *)
  let digit_pairs =
    String.init 200 (fun i ->
        let v = i / 2 in
        Char.chr (Char.code '0' + if i land 1 = 0 then v / 10 else v mod 10))

  let itoa b n =
    if n = 0 then add_char b '0'
    else if n = min_int then add_string b (string_of_int n)
      (* [-n] overflows only for min_int; one cold branch keeps the loop
         below free of overflow checks *)
    else begin
      let neg = n < 0 in
      let v = ref (if neg then -n else n) in
      let d = ref 0 and t = ref !v in
      while !t > 0 do
        incr d;
        t := !t / 10
      done;
      let total = !d + if neg then 1 else 0 in
      ensure b total;
      let bytes = b.bytes in
      let base = b.len in
      if neg then Bytes.unsafe_set bytes base '-';
      let p = ref (base + total) in
      while !v >= 100 do
        let r = !v mod 100 in
        v := !v / 100;
        p := !p - 2;
        Bytes.unsafe_set bytes !p (String.unsafe_get digit_pairs (2 * r));
        Bytes.unsafe_set bytes (!p + 1) (String.unsafe_get digit_pairs ((2 * r) + 1))
      done;
      if !v >= 10 then begin
        p := !p - 2;
        Bytes.unsafe_set bytes !p (String.unsafe_get digit_pairs (2 * !v));
        Bytes.unsafe_set bytes (!p + 1) (String.unsafe_get digit_pairs ((2 * !v) + 1))
      end
      else begin
        decr p;
        Bytes.unsafe_set bytes !p (Char.unsafe_chr (Char.code '0' + !v))
      end;
      b.len <- base + total
    end

  let ftoa b f =
    if integral_fast f then
      (* covers 0.0 too: -0.0 still takes the cold path to keep its sign *)
      if f = 0.0 && 1.0 /. f < 0.0 then add_string b "-0"
      else itoa b (int_of_float f)
    else add_string b (float_repr f)

  let output oc b = Stdlib.output oc b.bytes 0 b.len
  let unsafe_bytes b = b.bytes
end

let csv_needs_quote s =
  let n = String.length s in
  let rec go i =
    i < n
    &&
    match String.unsafe_get s i with
    | ',' | '"' | '\n' | '\r' -> true
    | _ -> go (i + 1)
  in
  go 0

let csv_escape s =
  if not (csv_needs_quote s) then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let csv_pool pool = Array.map csv_escape pool

let sql_quote s = "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"

let sql_pool pool = Array.map sql_quote pool
