module Value = Mirage_sql.Value

type view = { vname : string; vcol : Col.t; vsel : int array }

type t = { rcard : int; views : view array }

let card t = t.rcard

let empty names =
  {
    rcard = 0;
    views =
      Array.map
        (fun c -> { vname = c; vcol = Col.of_ints [||]; vsel = [||] })
        names;
  }

let identity_sel n = Array.init n (fun i -> i)

let of_cols cols =
  match cols with
  | [] -> { rcard = 0; views = [||] }
  | (_, c0) :: _ ->
      let n = Col.length c0 in
      List.iter
        (fun (name, c) ->
          if Col.length c <> n then
            invalid_arg (Printf.sprintf "Rel.of_cols: ragged column %s" name))
        cols;
      let sel = identity_sel n in
      {
        rcard = n;
        views =
          Array.of_list
            (List.map (fun (name, c) -> { vname = name; vcol = c; vsel = sel })
               cols);
      }

let of_rows names rows =
  let n = Array.length rows in
  let sel = identity_sel n in
  let views =
    Array.mapi
      (fun ci name ->
        let vals = Array.map (fun row -> row.(ci)) rows in
        { vname = name; vcol = Col.of_values vals; vsel = sel })
      names
  in
  { rcard = n; views }

let cols t = Array.map (fun v -> v.vname) t.views

let col_index t name =
  let n = Array.length t.views in
  let rec go i =
    if i >= n then
      invalid_arg (Printf.sprintf "Rel.col_index: unknown column %s" name)
    else if t.views.(i).vname = name then i
    else go (i + 1)
  in
  go 0

let has_col t name = Array.exists (fun v -> v.vname = name) t.views

let view t i = t.views.(i)

let get_view v i =
  let p = v.vsel.(i) in
  if p < 0 then Value.Null else Col.get v.vcol p

let get t ~row ~col = get_view t.views.(col) row

let rows t =
  let width = Array.length t.views in
  Array.init t.rcard (fun i ->
      Array.init width (fun ci -> get_view t.views.(ci) i))

(* Restrict to the given logical rows (in the given order), composing
   selection vectors.  Physically shared input sel arrays stay shared in the
   output: composition is cached by physical equality. *)
let select t keep =
  let cache = ref [] in
  let compose sel =
    let rec find = function
      | [] ->
          let composed =
            Array.map (fun i -> if i < 0 then -1 else sel.(i)) keep
          in
          cache := (sel, composed) :: !cache;
          composed
      | (s, c) :: rest -> if s == sel then c else find rest
    in
    find !cache
  in
  {
    rcard = Array.length keep;
    views =
      Array.map (fun v -> { v with vsel = compose v.vsel }) t.views;
  }

let column_values t name =
  let v = t.views.(col_index t name) in
  Array.init t.rcard (get_view v)

let distinct_on t names =
  let vs = List.map (fun n -> t.views.(col_index t n)) names in
  let seen = Hashtbl.create t.rcard in
  let out = ref [] in
  for i = 0 to t.rcard - 1 do
    let key = List.map (fun v -> get_view v i) vs in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := Array.of_list key :: !out
    end
  done;
  of_rows (Array.of_list names) (Array.of_list (List.rev !out))

let distinct_count_on t names =
  let vs = List.map (fun n -> t.views.(col_index t n)) names in
  let seen = Hashtbl.create t.rcard in
  for i = 0 to t.rcard - 1 do
    let key = List.map (fun v -> get_view v i) vs in
    Hashtbl.replace seen key ()
  done;
  Hashtbl.length seen

let int_set t name =
  let v = t.views.(col_index t name) in
  let set = Hashtbl.create t.rcard in
  (match v.vcol with
  | Col.Ints { data; nulls } ->
      Array.iter
        (fun p ->
          if p >= 0 then
            match nulls with
            | Some b when Col.Bitset.get b p -> ()
            | _ -> Hashtbl.replace set data.(p) ())
        v.vsel
  | _ ->
      for i = 0 to t.rcard - 1 do
        match get_view v i with
        | Value.Int x -> Hashtbl.replace set x ()
        | _ -> ()
      done);
  set
