module Value = Mirage_sql.Value

type t = { cols : string array; rows : Value.t array array }

let empty cols = { cols; rows = [||] }

let card t = Array.length t.rows

let col_index t name =
  let rec go i =
    if i >= Array.length t.cols then
      invalid_arg (Printf.sprintf "Rel.col_index: unknown column %s" name)
    else if t.cols.(i) = name then i
    else go (i + 1)
  in
  go 0

let has_col t name = Array.exists (fun c -> c = name) t.cols

let column_values t name =
  let i = col_index t name in
  Array.map (fun row -> row.(i)) t.rows

let distinct_on t names =
  let idxs = List.map (col_index t) names in
  let seen = Hashtbl.create (Array.length t.rows) in
  let out = ref [] in
  Array.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) idxs in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := Array.of_list key :: !out
      end)
    t.rows;
  { cols = Array.of_list names; rows = Array.of_list (List.rev !out) }

let distinct_count_on t names =
  let idxs = List.map (col_index t) names in
  let seen = Hashtbl.create (Array.length t.rows) in
  Array.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) idxs in
      Hashtbl.replace seen key ())
    t.rows;
  Hashtbl.length seen

let int_set t name =
  let i = col_index t name in
  let set = Hashtbl.create (Array.length t.rows) in
  Array.iter
    (fun row -> match row.(i) with Value.Int v -> Hashtbl.replace set v () | _ -> ())
    t.rows;
  set
