(** Intermediate relations: row-major tuples with a flat column-name header. *)

type t = { cols : string array; rows : Mirage_sql.Value.t array array }

val empty : string array -> t
val card : t -> int
val col_index : t -> string -> int
(** @raise Invalid_argument on unknown column. *)

val has_col : t -> string -> bool

val column_values : t -> string -> Mirage_sql.Value.t array
(** Extracted (copied) column. *)

val distinct_on : t -> string list -> t
(** Duplicate-eliminating projection onto the named columns. *)

val distinct_count_on : t -> string list -> int

val int_set : t -> string -> (int, unit) Hashtbl.t
(** The set of [Int] values in a column; non-int values are ignored. *)
