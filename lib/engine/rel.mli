(** Intermediate relations: columnar views.

    A relation is a set of named column views sharing a logical row order.
    Each view pairs a typed {!Col.t} with a selection vector [vsel]: logical
    row [i] lives at physical row [vsel.(i)] of [vcol], and [vsel.(i) = -1]
    marks a NULL row (outer-join padding).  Operators that only drop or
    reorder rows (filters, joins) compose selection vectors and never copy
    column data; selection arrays are physically shared between views that
    select from the same side, and {!select} preserves that sharing. *)

type view = {
  vname : string;
  vcol : Col.t;
  vsel : int array;  (** physical row per logical row; -1 = NULL row *)
}

type t = { rcard : int; views : view array }

val empty : string array -> t
val card : t -> int

val of_cols : (string * Col.t) list -> t
(** Relation over whole columns (identity selection, shared across views).
    @raise Invalid_argument on ragged column lengths. *)

val of_rows : string array -> Mirage_sql.Value.t array array -> t
(** Build from boxed row tuples (kind inference per column via
    {!Col.of_values}); used for aggregate/projection outputs and tests. *)

val cols : t -> string array

val col_index : t -> string -> int
(** @raise Invalid_argument on unknown column. *)

val has_col : t -> string -> bool

val view : t -> int -> view
val get_view : view -> int -> Mirage_sql.Value.t
(** Boxed value at a logical row of one view. *)

val get : t -> row:int -> col:int -> Mirage_sql.Value.t

val rows : t -> Mirage_sql.Value.t array array
(** Boxed row-major materialisation (tests and debugging). *)

val select : t -> int array -> t
(** [select t keep] keeps logical rows [keep] (in that order); entries of
    [-1] become NULL rows.  O(|keep| · distinct sel arrays). *)

val column_values : t -> string -> Mirage_sql.Value.t array
(** Extracted (copied) column. *)

val distinct_on : t -> string list -> t
(** Duplicate-eliminating projection onto the named columns. *)

val distinct_count_on : t -> string list -> int

val int_set : t -> string -> (int, unit) Hashtbl.t
(** The set of [Int] values in a column; non-int values are ignored. *)
