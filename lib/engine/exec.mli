(** Plan evaluation.

    [analyze] evaluates a plan bottom-up and records, for every operator view
    (preorder-indexed), its output cardinality — and for join views the
    paper's uniform join statistics: [jcc] = number of matched row pairs,
    [jdc] = number of distinct PK values occurring in matched pairs
    (§2.2, Table 2).  This is exactly what the workload parser extracts from
    the production database and what error measurement re-extracts from the
    synthetic one. *)

type join_stat = {
  jcc : int;
  jdc : int;
  left_card : int;  (** |V_l| *)
  right_card : int;  (** |V_r| *)
}

type analysis = {
  result : Rel.t;
  cards : int array;  (** output size per preorder view index *)
  join_stats : (int * join_stat) list;  (** per join view index *)
}

val run : Db.t -> env:Mirage_sql.Pred.Env.t -> Mirage_relalg.Plan.t -> Rel.t
(** Evaluate and return the final relation. *)

val analyze : Db.t -> env:Mirage_sql.Pred.Env.t -> Mirage_relalg.Plan.t -> analysis

val count_select :
  Db.t -> env:Mirage_sql.Pred.Env.t -> table:string -> Mirage_sql.Pred.t -> int
(** [count_select db ~env ~table p] = |σ_p(table)| without materialising. *)

val select_mask :
  Db.t ->
  env:Mirage_sql.Pred.Env.t ->
  table:string ->
  Mirage_sql.Pred.t ->
  Col.Bitset.t
(** Per-row verdict of a predicate over a whole stored table (compiled once;
    used for child-view membership vectors in key generation).  Returned as
    a bitset so table-sized masks follow the off-heap threshold instead of
    costing 8 heap bytes per row.
    @raise Invalid_argument like {!count_select} on unknown columns, and on
    unbound parameters when at least one row evaluates the literal. *)

val timed_run :
  Db.t -> env:Mirage_sql.Pred.Env.t -> Mirage_relalg.Plan.t -> Rel.t * float
(** Result plus wall-clock seconds (for the Fig. 12 latency experiment). *)
