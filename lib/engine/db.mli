(** In-memory columnar database instances.

    Used for (a) the "production" reference databases the workload parser
    extracts constraints from, and (b) the synthetic databases the generators
    emit, so that instantiated workloads can be replayed and compared.

    Tables are stored as typed {!Col.t} columns (unboxed int/float arrays,
    dictionary-encoded strings); the [Value.t]-based {!put}/{!column} pair is
    a boxed compatibility layer that converts on the way in/out. *)

type t

val create : Mirage_sql.Schema.t -> t
(** Empty database over a schema. *)

val schema : t -> Mirage_sql.Schema.t

val put_cols : t -> string -> (string * Col.t) list -> unit
(** [put_cols db tname cols] installs the full contents of table [tname] as
    typed columns.  Every declared column (pk, non-keys, fks) must be present
    with equal lengths; the actual length becomes the table's row count (it
    may differ from the schema's target [row_count]).
    @raise Invalid_argument on missing columns or ragged lengths. *)

val put :
  t -> string -> (string * Mirage_sql.Value.t array) list -> unit
(** Boxed compatibility wrapper over {!put_cols}: each value array is
    converted with {!Col.of_values}. *)

val row_count : t -> string -> int
(** Rows actually stored (0 if table not yet populated). *)

val col : t -> string -> string -> Col.t
(** The stored typed column itself (not a copy); in-place mutation of its
    arrays is visible to all readers — the ACC repair pass relies on this.
    @raise Invalid_argument if the table or column is unknown/unpopulated. *)

val replace_col : t -> string -> string -> Col.t -> unit
(** Swap in a new version of one existing column (same length).
    @raise Invalid_argument if unknown or ragged. *)

val column : t -> string -> string -> Mirage_sql.Value.t array
(** Boxed compatibility accessor: a freshly allocated [Value.t] copy of
    {!col}.  Mutating the result does NOT affect the stored table.
    @raise Invalid_argument if the table or column is unknown/unpopulated. *)

val has_table : t -> string -> bool

val distinct_count : t -> string -> string -> int
(** Number of distinct values in a stored column (NULL counts as a value). *)

val to_csv : t -> string -> string
(** Render a table as CSV (header + rows), for the CLI's export. *)

val load_csv : t -> string -> string -> unit
(** [load_csv db tname csv] parses a CSV produced by {!to_csv} (or by the
    scale-out exporter) and installs it as [tname]'s contents.  Cell syntax
    follows the declared column kinds; empty cells become NULL.
    @raise Invalid_argument on header mismatch or unparseable cells. *)

val iter_rows :
  t -> string -> (int -> (string -> Mirage_sql.Value.t) -> unit) -> unit
(** [iter_rows db tname f] calls [f i lookup] for every row index. *)
