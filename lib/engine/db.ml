module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value

type table_data = {
  tschema : Schema.table;
  nrows : int;
  cols : (string, Col.t) Hashtbl.t;
}

type t = { db_schema : Schema.t; tables : (string, table_data) Hashtbl.t }

let create db_schema = { db_schema; tables = Hashtbl.create 16 }

let schema t = t.db_schema

let put_cols t tname cols =
  let tschema = Schema.table t.db_schema tname in
  let expected = Schema.column_names tschema in
  let provided = List.map fst cols in
  List.iter
    (fun c ->
      if not (List.mem c provided) then
        invalid_arg (Printf.sprintf "Db.put: missing column %s.%s" tname c))
    expected;
  let nrows =
    match cols with
    | [] -> 0
    | (_, a) :: _ -> Col.length a
  in
  List.iter
    (fun (c, a) ->
      if Col.length a <> nrows then
        invalid_arg (Printf.sprintf "Db.put: ragged column %s.%s" tname c))
    cols;
  let tbl = Hashtbl.create (List.length cols) in
  List.iter (fun (c, a) -> Hashtbl.replace tbl c a) cols;
  Hashtbl.replace t.tables tname { tschema; nrows; cols = tbl }

let put t tname cols =
  put_cols t tname (List.map (fun (c, a) -> (c, Col.of_values a)) cols)

let data t tname =
  match Hashtbl.find_opt t.tables tname with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Db: table %s not populated" tname)

let row_count t tname =
  match Hashtbl.find_opt t.tables tname with
  | Some d -> d.nrows
  | None -> 0

let col t tname cname =
  let d = data t tname in
  match Hashtbl.find_opt d.cols cname with
  | Some c -> c
  | None ->
      invalid_arg (Printf.sprintf "Db.column: unknown column %s.%s" tname cname)

let column t tname cname = Col.to_values (col t tname cname)

let replace_col t tname cname c =
  let d = data t tname in
  if not (Hashtbl.mem d.cols cname) then
    invalid_arg (Printf.sprintf "Db.column: unknown column %s.%s" tname cname);
  if Col.length c <> d.nrows then
    invalid_arg (Printf.sprintf "Db.put: ragged column %s.%s" tname cname);
  Hashtbl.replace d.cols cname c

let has_table t tname = Hashtbl.mem t.tables tname

let distinct_count t tname cname =
  match col t tname cname with
  | Col.Ints { data; nulls } ->
      let seen = Hashtbl.create (Array.length data) in
      let has_null = ref false in
      Array.iteri
        (fun i x ->
          match nulls with
          | Some b when Col.Bitset.get b i -> has_null := true
          | _ -> Hashtbl.replace seen x ())
        data;
      Hashtbl.length seen + if !has_null then 1 else 0
  | Col.Floats { data; nulls } ->
      let seen = Hashtbl.create (Array.length data) in
      let has_null = ref false in
      Array.iteri
        (fun i x ->
          match nulls with
          | Some b when Col.Bitset.get b i -> has_null := true
          | _ -> Hashtbl.replace seen x ())
        data;
      Hashtbl.length seen + if !has_null then 1 else 0
  | Col.Dict { codes; nulls; _ } ->
      let seen = Hashtbl.create 64 in
      let has_null = ref false in
      Array.iteri
        (fun i c ->
          match nulls with
          | Some b when Col.Bitset.get b i -> has_null := true
          | _ -> Hashtbl.replace seen c ())
        codes;
      Hashtbl.length seen + if !has_null then 1 else 0
  | Col.Big_ints { data; nulls } ->
      let n = Bigarray.Array1.dim data in
      let seen = Hashtbl.create (min n 65536) in
      let has_null = ref false in
      for i = 0 to n - 1 do
        match nulls with
        | Some b when Col.Bitset.get b i -> has_null := true
        | _ -> Hashtbl.replace seen (Bigarray.Array1.get data i) ()
      done;
      Hashtbl.length seen + if !has_null then 1 else 0
  | Col.Big_floats { data; nulls } ->
      let n = Bigarray.Array1.dim data in
      let seen = Hashtbl.create (min n 65536) in
      let has_null = ref false in
      for i = 0 to n - 1 do
        match nulls with
        | Some b when Col.Bitset.get b i -> has_null := true
        | _ -> Hashtbl.replace seen (Bigarray.Array1.get data i) ()
      done;
      Hashtbl.length seen + if !has_null then 1 else 0
  | Col.Big_dict { codes; nulls; _ } ->
      let n = Bigarray.Array1.dim codes in
      let seen = Hashtbl.create 64 in
      let has_null = ref false in
      for i = 0 to n - 1 do
        match nulls with
        | Some b when Col.Bitset.get b i -> has_null := true
        | _ -> Hashtbl.replace seen (Bigarray.Array1.get codes i) ()
      done;
      Hashtbl.length seen + if !has_null then 1 else 0
  | Col.Boxed vs ->
      let seen = Hashtbl.create (Array.length vs) in
      Array.iter (fun v -> Hashtbl.replace seen v ()) vs;
      Hashtbl.length seen

let to_csv t tname =
  let d = data t tname in
  let names = Schema.column_names d.tschema in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," names);
  Buffer.add_char buf '\n';
  let cols = Array.of_list (List.map (fun c -> Hashtbl.find d.cols c) names) in
  let ncols = Array.length cols in
  for i = 0 to d.nrows - 1 do
    for ci = 0 to ncols - 1 do
      if ci > 0 then Buffer.add_char buf ',';
      Col.add_csv_cell buf cols.(ci) i
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Per-kind column builder for [load_csv]: parses straight into the typed
   representation, so a loaded table costs the same as a generated one. *)
type builder =
  | Bint of int array
  | Bfloat of float array
  | Bstr of string array

let load_csv t tname csv =
  let tschema = Schema.table t.db_schema tname in
  let names = Schema.column_names tschema in
  let lines =
    String.split_on_char '\n' csv |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> invalid_arg "Db.load_csv: empty input"
  | header :: rows ->
      if String.split_on_char ',' header <> names then
        invalid_arg (Printf.sprintf "Db.load_csv: header mismatch for %s" tname);
      let kind_of c =
        if Schema.is_pk tschema c || Schema.is_fk tschema c then Schema.Kint
        else (Schema.nonkey tschema c).Schema.kind
      in
      let names_a = Array.of_list names in
      let ncols = Array.length names_a in
      let kinds = Array.map kind_of names_a in
      let n = List.length rows in
      let builders =
        Array.map
          (function
            | Schema.Kint -> Bint (Array.make n 0)
            | Schema.Kfloat -> Bfloat (Array.make n 0.0)
            | Schema.Kstring -> Bstr (Array.make n ""))
          kinds
      in
      let nulls = Array.map (fun _ -> None) kinds in
      List.iteri
        (fun r line ->
          let cells = String.split_on_char ',' line in
          if List.length cells <> ncols then
            invalid_arg
              (Printf.sprintf "Db.load_csv: ragged row %d in %s" r tname);
          List.iteri
            (fun ci cell ->
              if cell = "" then begin
                let b =
                  match nulls.(ci) with
                  | Some b -> b
                  | None ->
                      let b = Col.Bitset.create n in
                      nulls.(ci) <- Some b;
                      b
                in
                Col.Bitset.set b r
              end
              else
                match builders.(ci) with
                | Bint arr -> (
                    match int_of_string_opt cell with
                    | Some v -> arr.(r) <- v
                    | None ->
                        invalid_arg
                          (Printf.sprintf "Db.load_csv: bad int %S in %s" cell
                             tname))
                | Bfloat arr -> (
                    match float_of_string_opt cell with
                    | Some v -> arr.(r) <- v
                    | None ->
                        invalid_arg
                          (Printf.sprintf "Db.load_csv: bad float %S in %s"
                             cell tname))
                | Bstr arr -> arr.(r) <- cell)
            cells)
        rows;
      let cols =
        List.mapi
          (fun ci name ->
            let nulls = nulls.(ci) in
            ( name,
              match builders.(ci) with
              | Bint arr -> Col.of_ints ?nulls arr
              | Bfloat arr -> Col.of_floats ?nulls arr
              | Bstr arr -> Col.of_strings ?nulls arr ))
          names
      in
      put_cols t tname cols

let iter_rows t tname f =
  let d = data t tname in
  let lookup i c =
    match Hashtbl.find_opt d.cols c with
    | Some a -> Col.get a i
    | None ->
        invalid_arg
          (Printf.sprintf "Db.iter_rows: unknown column %s.%s" tname c)
  in
  for i = 0 to d.nrows - 1 do
    f i (lookup i)
  done
