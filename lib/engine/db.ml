module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value

type table_data = {
  tschema : Schema.table;
  nrows : int;
  cols : (string, Value.t array) Hashtbl.t;
}

type t = { db_schema : Schema.t; tables : (string, table_data) Hashtbl.t }

let create db_schema = { db_schema; tables = Hashtbl.create 16 }

let schema t = t.db_schema

let put t tname cols =
  let tschema = Schema.table t.db_schema tname in
  let expected = Schema.column_names tschema in
  let provided = List.map fst cols in
  List.iter
    (fun c ->
      if not (List.mem c provided) then
        invalid_arg (Printf.sprintf "Db.put: missing column %s.%s" tname c))
    expected;
  let nrows =
    match cols with
    | [] -> 0
    | (_, a) :: _ -> Array.length a
  in
  List.iter
    (fun (c, a) ->
      if Array.length a <> nrows then
        invalid_arg (Printf.sprintf "Db.put: ragged column %s.%s" tname c))
    cols;
  let tbl = Hashtbl.create (List.length cols) in
  List.iter (fun (c, a) -> Hashtbl.replace tbl c a) cols;
  Hashtbl.replace t.tables tname { tschema; nrows; cols = tbl }

let data t tname =
  match Hashtbl.find_opt t.tables tname with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Db: table %s not populated" tname)

let row_count t tname =
  match Hashtbl.find_opt t.tables tname with
  | Some d -> d.nrows
  | None -> 0

let column t tname cname =
  let d = data t tname in
  match Hashtbl.find_opt d.cols cname with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Db.column: unknown column %s.%s" tname cname)

let has_table t tname = Hashtbl.mem t.tables tname

let distinct_count t tname cname =
  let a = column t tname cname in
  let seen = Hashtbl.create (Array.length a) in
  Array.iter (fun v -> Hashtbl.replace seen v ()) a;
  Hashtbl.length seen

let to_csv t tname =
  let d = data t tname in
  let names = Schema.column_names d.tschema in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," names);
  Buffer.add_char buf '\n';
  let arrays = List.map (fun c -> Hashtbl.find d.cols c) names in
  for i = 0 to d.nrows - 1 do
    let cells =
      List.map
        (fun a ->
          match a.(i) with
          | Value.Null -> ""
          | Value.Int x -> string_of_int x
          | Value.Float x -> string_of_float x
          | Value.Str s -> s)
        arrays
    in
    Buffer.add_string buf (String.concat "," cells);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let load_csv t tname csv =
  let tschema = Schema.table t.db_schema tname in
  let names = Schema.column_names tschema in
  let lines =
    String.split_on_char '\n' csv |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> invalid_arg "Db.load_csv: empty input"
  | header :: rows ->
      if String.split_on_char ',' header <> names then
        invalid_arg (Printf.sprintf "Db.load_csv: header mismatch for %s" tname);
      let kind_of c =
        if Schema.is_pk tschema c || Schema.is_fk tschema c then Schema.Kint
        else (Schema.nonkey tschema c).Schema.kind
      in
      let kinds = List.map kind_of names in
      let n = List.length rows in
      let arrays = List.map (fun _ -> Array.make n Value.Null) names in
      List.iteri
        (fun r line ->
          let cells = String.split_on_char ',' line in
          if List.length cells <> List.length names then
            invalid_arg (Printf.sprintf "Db.load_csv: ragged row %d in %s" r tname);
          List.iteri
            (fun ci cell ->
              let arr = List.nth arrays ci in
              let kind = List.nth kinds ci in
              arr.(r) <-
                (if cell = "" then Value.Null
                 else
                   match kind with
                   | Schema.Kint -> (
                       match int_of_string_opt cell with
                       | Some v -> Value.Int v
                       | None ->
                           invalid_arg
                             (Printf.sprintf "Db.load_csv: bad int %S in %s" cell tname))
                   | Schema.Kfloat -> (
                       match float_of_string_opt cell with
                       | Some v -> Value.Float v
                       | None ->
                           invalid_arg
                             (Printf.sprintf "Db.load_csv: bad float %S in %s" cell tname))
                   | Schema.Kstring -> Value.Str cell))
            cells)
        rows;
      put t tname (List.combine names arrays)

let iter_rows t tname f =
  let d = data t tname in
  let lookup i c =
    match Hashtbl.find_opt d.cols c with
    | Some a -> a.(i)
    | None -> invalid_arg (Printf.sprintf "Db.iter_rows: unknown column %s.%s" tname c)
  in
  for i = 0 to d.nrows - 1 do
    f i (lookup i)
  done
