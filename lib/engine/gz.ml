(* Streaming gzip: fixed-Huffman DEFLATE (RFC 1951 §3.2.6) framed per
   RFC 1952.  See gz.mli for the design constraints. *)

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits (* matcher window; distances stay <= 32768 *)
let hash_bits = 15
let hash_size = 1 lsl hash_bits
let max_match = 258
let min_match = 3
let max_dist = 32768
let max_chain = 48 (* hash-chain probes per position *)
let good_len = 96 (* stop probing once a match this long is found *)

(* Huffman codes are MSB-first in the LSB-first bit stream, so every code is
   stored pre-reversed and pushed with a single [put_bits]. *)
let rev_bits v n =
  let r = ref 0 and v = ref v in
  for _ = 1 to n do
    r := (!r lsl 1) lor (!v land 1);
    v := !v lsr 1
  done;
  !r

(* fixed literal/length alphabet (RFC 1951 §3.2.6): 0-143 → 8 bits from
   0x30, 144-255 → 9 bits from 0x190, 256-279 → 7 bits from 0, 280-287 → 8
   bits from 0xC0 *)
let lit_code, lit_bits =
  let code = Array.make 288 0 and bits = Array.make 288 0 in
  for sym = 0 to 287 do
    let c, n =
      if sym <= 143 then (0x30 + sym, 8)
      else if sym <= 255 then (0x190 + (sym - 144), 9)
      else if sym <= 279 then (sym - 256, 7)
      else (0xC0 + (sym - 280), 8)
    in
    code.(sym) <- rev_bits c n;
    bits.(sym) <- n
  done;
  (code, bits)

(* length symbols 257..285: (base, extra bits) *)
let len_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59;
     67; 83; 99; 115; 131; 163; 195; 227; 258 |]

let len_xbits =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4;
     5; 5; 5; 5; 0 |]

(* length 3..258 → index into the sym-257 tables *)
let len_lookup =
  let t = Bytes.make (max_match + 1) '\000' in
  for s = 0 to 28 do
    let hi = if s = 28 then max_match else len_base.(s + 1) - 1 in
    for l = len_base.(s) to min hi max_match do
      Bytes.unsafe_set t l (Char.unsafe_chr s)
    done
  done;
  (* length 258 is sym 285 (extra 0), not the top of sym 284's range *)
  Bytes.unsafe_set t max_match (Char.unsafe_chr 28);
  t

(* distance symbols 0..29: (base, extra bits); codes are 5 bits fixed *)
let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385;
     513; 769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_xbits =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10;
     10; 11; 11; 12; 12; 13; 13 |]

let dist_code = Array.init 30 (fun s -> rev_bits s 5)

(* distance 1..32768 → sym, one byte per distance *)
let dist_lookup =
  lazy
    (let t = Bytes.make (max_dist + 1) '\000' in
     for s = 0 to 29 do
       let hi = if s = 29 then max_dist else dist_base.(s + 1) - 1 in
       for d = dist_base.(s) to min hi max_dist do
         Bytes.unsafe_set t d (Char.unsafe_chr s)
       done
     done;
     t)

type t = {
  out : Bytes.t -> pos:int -> len:int -> unit;
  obuf : Buffer.t;
  mutable bitbuf : int;
  mutable bitcnt : int;
  chunk : Bytes.t;
  mutable clen : int;
  head : int array; (* hash → most recent chunk position, -1 = none *)
  prev : int array; (* position → previous position with the same hash *)
  mutable crc : int;
  mutable isize : int;
  mutable finished : bool;
}

let put_bits t v n =
  t.bitbuf <- t.bitbuf lor (v lsl t.bitcnt);
  t.bitcnt <- t.bitcnt + n;
  while t.bitcnt >= 8 do
    Buffer.add_char t.obuf (Char.unsafe_chr (t.bitbuf land 0xFF));
    t.bitbuf <- t.bitbuf lsr 8;
    t.bitcnt <- t.bitcnt - 8
  done

let flush_obuf t =
  if Buffer.length t.obuf > 0 then begin
    let b = Buffer.to_bytes t.obuf in
    Buffer.clear t.obuf;
    t.out b ~pos:0 ~len:(Bytes.length b)
  end

let create out =
  let t =
    {
      out;
      obuf = Buffer.create (chunk_size / 2);
      bitbuf = 0;
      bitcnt = 0;
      chunk = Bytes.create chunk_size;
      clen = 0;
      head = Array.make hash_size (-1);
      prev = Array.make chunk_size (-1);
      crc = 0;
      isize = 0;
      finished = false;
    }
  in
  (* gzip member header: magic, CM=8 (deflate), no flags, mtime 0, XFL 0,
     OS 255 (unknown) — mtime deliberately zero so output is deterministic *)
  Buffer.add_string t.obuf "\x1f\x8b\x08\x00\x00\x00\x00\x00\x00\xff";
  t

let hash3 b i =
  ((Char.code (Bytes.unsafe_get b i) lsl 10)
  lxor (Char.code (Bytes.unsafe_get b (i + 1)) lsl 5)
  lxor Char.code (Bytes.unsafe_get b (i + 2)))
  land (hash_size - 1)

let emit_literal t c = put_bits t lit_code.(c) lit_bits.(c)

let emit_match t ~len ~dist =
  let s = Char.code (Bytes.unsafe_get len_lookup len) in
  let sym = 257 + s in
  put_bits t lit_code.(sym) lit_bits.(sym);
  let xb = Array.unsafe_get len_xbits s in
  if xb > 0 then put_bits t (len - Array.unsafe_get len_base s) xb;
  let d = Char.code (Bytes.unsafe_get (Lazy.force dist_lookup) dist) in
  put_bits t (Array.unsafe_get dist_code d) 5;
  let xb = Array.unsafe_get dist_xbits d in
  if xb > 0 then put_bits t (dist - Array.unsafe_get dist_base d) xb

(* longest common prefix of chunk[i..] and chunk[j..], capped *)
let match_len b i j limit =
  let l = ref 0 in
  while
    !l < limit
    && Bytes.unsafe_get b (j + !l) = Bytes.unsafe_get b (i + !l)
  do
    incr l
  done;
  !l

(* one non-final fixed-Huffman block per chunk; greedy hash-chain LZ77 *)
let compress_chunk t =
  let n = t.clen in
  if n > 0 then begin
    put_bits t 0 1 (* BFINAL = 0 *);
    put_bits t 1 2 (* BTYPE = 01, fixed Huffman *);
    Array.fill t.head 0 hash_size (-1);
    let b = t.chunk in
    let i = ref 0 in
    while !i < n do
      let i0 = !i in
      let best_len = ref 0 and best_dist = ref 0 in
      if i0 + min_match <= n then begin
        let h = hash3 b i0 in
        let limit = min max_match (n - i0) in
        let j = ref t.head.(h) and chain = ref 0 in
        while !j >= 0 && !chain < max_chain && !best_len < good_len do
          (if i0 - !j <= max_dist then
             let l = match_len b i0 !j limit in
             if l > !best_len then begin
               best_len := l;
               best_dist := i0 - !j
             end);
          j := t.prev.(!j);
          incr chain
        done;
        t.prev.(i0) <- t.head.(h);
        t.head.(h) <- i0
      end;
      if !best_len >= min_match then begin
        emit_match t ~len:!best_len ~dist:!best_dist;
        (* index the skipped positions so later matches can reference them;
           position [i0 + best_len] is left to the main loop — inserting it
           here too would make the chain self-referential *)
        let stop = min (i0 + !best_len - 1) (n - min_match) in
        for p = i0 + 1 to stop do
          let h = hash3 b p in
          t.prev.(p) <- t.head.(h);
          t.head.(h) <- p
        done;
        i := i0 + !best_len
      end
      else begin
        emit_literal t (Char.code (Bytes.unsafe_get b i0));
        incr i
      end
    done;
    put_bits t lit_code.(256) lit_bits.(256) (* end of block *);
    t.clen <- 0;
    flush_obuf t
  end

let write t b ~pos ~len =
  if t.finished then invalid_arg "Gz.write: already finished";
  t.crc <- Sink.crc32 ~crc:t.crc b ~pos ~len;
  t.isize <- t.isize + len;
  let pos = ref pos and len = ref len in
  while !len > 0 do
    let room = chunk_size - t.clen in
    let take = min room !len in
    Bytes.blit b !pos t.chunk t.clen take;
    t.clen <- t.clen + take;
    pos := !pos + take;
    len := !len - take;
    if t.clen = chunk_size then compress_chunk t
  done

let finish t =
  if not t.finished then begin
    t.finished <- true;
    compress_chunk t;
    (* empty final block closes the DEFLATE stream *)
    put_bits t 1 1 (* BFINAL = 1 *);
    put_bits t 1 2;
    put_bits t lit_code.(256) lit_bits.(256);
    if t.bitcnt > 0 then begin
      Buffer.add_char t.obuf (Char.unsafe_chr (t.bitbuf land 0xFF));
      t.bitbuf <- 0;
      t.bitcnt <- 0
    end;
    let le32 v =
      for k = 0 to 3 do
        Buffer.add_char t.obuf (Char.unsafe_chr ((v lsr (8 * k)) land 0xFF))
      done
    in
    le32 (t.crc land 0xFFFFFFFF);
    le32 (t.isize land 0xFFFFFFFF);
    flush_obuf t
  end
