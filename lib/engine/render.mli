(** Zero-allocation output kernel.

    The exporters' hot loops — CSV tiling ({!Mirage_core.Scale_out}) and SQL
    INSERT rendering ({!Mirage_core.Sql_export}) — write digits and
    pre-escaped fragments straight into a growable [Bytes] buffer.  Nothing
    in the per-cell paths allocates: integers are written digit-by-digit
    ({!Buf.itoa}), floats hit an in-place fast path for integral values
    ({!Buf.ftoa}), and strings are escaped {e once per distinct pool entry}
    ({!csv_pool}, {!sql_pool}) rather than once per row.

    {2 Formatting policy}

    One float format serves every exporter: {!float_repr} prints the
    shortest decimal that parses back to the identical [float] (round-trip
    semantics) — ["1"], ["0.5"], ["1e+22"], ["nan"], ["inf"].  Integral
    values print as bare digits (no OCaml-style trailing ['.']), matching
    the [%.17g] images the SQL exporter always produced; for every value
    whose previous renderer image already round-trips — in particular every
    value in the committed goldens — the output is byte-identical to the
    pre-kernel renderers.

    CSV cells follow RFC 4180: a cell containing a comma, a double quote,
    CR or LF is wrapped in double quotes with embedded quotes doubled; all
    other cells (the committed goldens contain only these) are emitted
    verbatim. *)

module Buf : sig
  type t
  (** A growable byte buffer.  Like [Buffer.t] but with direct digit
      writers and sub-[Bytes] splicing; contents are reused across tiles
      via {!clear} without shrinking the allocation. *)

  val create : int -> t
  (** [create n] makes an empty buffer with [n] bytes pre-allocated. *)

  val clear : t -> unit
  (** Forget the contents, keep the storage. *)

  val length : t -> int

  val contents : t -> string
  (** Fresh string copy of the contents. *)

  val to_bytes : t -> Bytes.t
  (** Fresh [Bytes] copy of the contents (used to freeze a template). *)

  val add_char : t -> char -> unit
  val add_string : t -> string -> unit

  val add_subbytes : t -> Bytes.t -> pos:int -> len:int -> unit
  (** Splice [len] bytes of [src] starting at [pos] — a [memcpy], the
      fragment emitter of the template engine. *)

  val itoa : t -> int -> unit
  (** Append the decimal digits of an int, exactly as [string_of_int]
      would, without allocating an intermediate string. *)

  val ftoa : t -> float -> unit
  (** Append {!float_repr}'s image of a float.  Integral values within
      [2{^53}] are written digit-by-digit with a trailing ['.'] without
      allocating; other values fall back to a (cold) formatting call. *)

  val output : out_channel -> t -> unit
  (** Write the contents to a channel without copying them to a string. *)

  val unsafe_bytes : t -> Bytes.t
  (** The underlying storage, without copying; only the first {!length}
      bytes are meaningful, and any mutating call invalidates the view.
      For zero-copy hand-off to byte sinks. *)
end

val float_repr : float -> string
(** The unified float format (see the formatting policy above): shortest
    round-trip decimal, valid-float-lexem form.  [float_of_string
    (float_repr f)] is [f] for every non-NaN [f], and NaN maps to ["nan"]. *)

val csv_needs_quote : string -> bool
(** True iff RFC 4180 requires the cell to be quoted (comma, double
    quote, CR, LF). *)

val csv_escape : string -> string
(** RFC 4180 cell image: the input itself (physically — no copy) when no
    quoting is needed, otherwise a quoted copy with double quotes
    doubled. *)

val csv_pool : string array -> string array
(** [csv_escape] applied once per pool entry — dictionary columns escape
    each distinct string once, not once per row. *)

val sql_quote : string -> string
(** SQL string literal: ['…'] with embedded single quotes doubled. *)

val sql_pool : string array -> string array
(** [sql_quote] applied once per pool entry. *)
