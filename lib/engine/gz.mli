(** Pure-OCaml streaming gzip encoder (RFC 1951 DEFLATE + RFC 1952 framing).

    Fixed-Huffman blocks over an LZ77 hash-chain greedy matcher: each 64 KB
    input chunk becomes one non-final DEFLATE block (the matcher window is
    the chunk, so distances never exceed the 32 KB limit), and {!finish}
    closes the stream with an empty final block plus the CRC-32 / ISIZE
    trailer.  CSV text compresses ~3–4x; dynamic-Huffman would buy a few
    more percent at a much larger constant cost, which is the wrong trade
    for a generation pipeline that is otherwise disk-bound.

    The encoder pushes compressed bytes through the callback given to
    {!create}, so it wraps any byte sink — in particular a {!Sink.writer} —
    without buffering the whole member.  Output produced by several
    encoders concatenated in order is a valid multi-member gzip file
    ([gzip -d] decompresses the concatenation), which is what keeps
    sharded [.csv.N.gz] outputs concatenation-equal to the uncompressed
    export after decompression. *)

type t

val create : (Bytes.t -> pos:int -> len:int -> unit) -> t
(** Start a gzip member: the 10-byte header is pushed immediately.  The
    callback must consume the whole range it is given. *)

val write : t -> Bytes.t -> pos:int -> len:int -> unit
(** Feed uncompressed bytes.  Compressed output is pushed to the callback
    as 64 KB chunks fill. *)

val finish : t -> unit
(** Flush the last partial chunk, close the DEFLATE stream and push the
    gzip trailer.  The encoder must not be used afterwards. *)
