module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Like = Mirage_sql.Like
module Schema = Mirage_sql.Schema
module Plan = Mirage_relalg.Plan

type join_stat = { jcc : int; jdc : int; left_card : int; right_card : int }

type analysis = {
  result : Rel.t;
  cards : int array;
  join_stats : (int * join_stat) list;
}

let vnull nulls p =
  match nulls with Some b -> Col.Bitset.get b p | None -> false

(* ------------------------------------------------------------------ *)
(* Compiled predicates.

   A predicate is compiled once per operator into an [int -> bool] closure
   over logical row ids, resolving column views, parameters and dictionary
   pools a single time instead of per row.  Resolution happens lazily on the
   first row a literal actually evaluates, which preserves the legacy
   per-row semantics exactly: an unbound parameter or out-of-scope column
   only raises if some row reaches that literal, so empty relations and
   short-circuited branches never raise. *)

type scope = { find : string -> Rel.view }

let scope_of_rel ~missing (rel : Rel.t) =
  let idx = Hashtbl.create (Array.length rel.Rel.views) in
  Array.iter (fun v -> Hashtbl.replace idx v.Rel.vname v) rel.Rel.views;
  {
    find =
      (fun c ->
        match Hashtbl.find_opt idx c with
        | Some v -> v
        | None -> invalid_arg (missing c));
  }

let lazy_lit build =
  let cell = ref None in
  fun i ->
    let f =
      match !cell with
      | Some f -> f
      | None ->
          let f = build () in
          cell := Some f;
          f
    in
    f i

let int_test cmp y =
  match cmp with
  | Pred.Eq -> fun x -> x = y
  | Pred.Neq -> fun x -> x <> y
  | Pred.Lt -> fun x -> x < y
  | Pred.Le -> fun x -> x <= y
  | Pred.Gt -> fun x -> x > y
  | Pred.Ge -> fun x -> x >= y

let compile_cmp ~env scope col cmp arg =
  lazy_lit (fun () ->
      let arg_v = Pred.resolve_scalar ~env arg in
      let v = scope.find col in
      let sel = v.Rel.vsel in
      match (v.Rel.vcol, arg_v) with
      | Col.Ints { data; nulls }, Value.Int y ->
          let ok = int_test cmp y in
          fun i ->
            let p = sel.(i) in
            p >= 0 && (not (vnull nulls p)) && ok data.(p)
      | Col.Ints { data; nulls }, Value.Float y ->
          fun i ->
            let p = sel.(i) in
            p >= 0
            && (not (vnull nulls p))
            && Pred.cmp_holds cmp (Stdlib.compare (float_of_int data.(p)) y)
      | Col.Floats { data; nulls }, Value.Float y ->
          fun i ->
            let p = sel.(i) in
            p >= 0
            && (not (vnull nulls p))
            && Pred.cmp_holds cmp (Stdlib.compare data.(p) y)
      | Col.Floats { data; nulls }, Value.Int y ->
          let yf = float_of_int y in
          fun i ->
            let p = sel.(i) in
            p >= 0
            && (not (vnull nulls p))
            && Pred.cmp_holds cmp (Stdlib.compare data.(p) yf)
      | Col.Dict { codes; pool; nulls }, Value.Str y ->
          let verdict =
            Array.map (fun s -> Pred.cmp_holds cmp (String.compare s y)) pool
          in
          fun i ->
            let p = sel.(i) in
            p >= 0 && (not (vnull nulls p)) && verdict.(codes.(p))
      | _, _ ->
          fun i -> (
            match Value.cmp_sql (Rel.get_view v i) arg_v with
            | Some c -> Pred.cmp_holds cmp c
            | None -> false))

let compile_in ~env scope col neg arg =
  lazy_lit (fun () ->
      let v = scope.find col in
      let sel = v.Rel.vsel in
      (* the legacy evaluator resolves the list only once a non-NULL value
         reaches the literal — keep that, so an unbound list parameter over
         an all-NULL column still never raises *)
      let elems = ref None in
      let get_elems () =
        match !elems with
        | Some vs -> vs
        | None ->
            let vs = Pred.resolve_list ~env arg in
            elems := Some vs;
            vs
      in
      match v.Rel.vcol with
      | Col.Ints { data; nulls } ->
          let table = ref None in
          let member x =
            let set, floats =
              match !table with
              | Some p -> p
              | None ->
                  let vs = get_elems () in
                  let set = Hashtbl.create (List.length vs + 1) in
                  List.iter
                    (function
                      | Value.Int n -> Hashtbl.replace set n () | _ -> ())
                    vs;
                  let floats =
                    List.filter_map
                      (function Value.Float f -> Some f | _ -> None)
                      vs
                  in
                  let p = (set, floats) in
                  table := Some p;
                  p
            in
            Hashtbl.mem set x
            || List.exists
                 (fun f -> Stdlib.compare (float_of_int x) f = 0)
                 floats
          in
          fun i ->
            let p = sel.(i) in
            if p < 0 || vnull nulls p then false
            else
              let m = member data.(p) in
              if neg then not m else m
      | Col.Dict { codes; pool; nulls } ->
          let verdict = ref None in
          let get_verdict () =
            match !verdict with
            | Some a -> a
            | None ->
                let vs = get_elems () in
                let a =
                  Array.map
                    (fun s ->
                      let m =
                        List.exists
                          (fun x -> Value.cmp_sql (Value.Str s) x = Some 0)
                          vs
                      in
                      if neg then not m else m)
                    pool
                in
                verdict := Some a;
                a
          in
          fun i ->
            let p = sel.(i) in
            if p < 0 || vnull nulls p then false
            else (get_verdict ()).(codes.(p))
      | _ ->
          fun i -> (
            match Rel.get_view v i with
            | Value.Null -> false
            | vv ->
                let m =
                  List.exists
                    (fun x -> Value.cmp_sql vv x = Some 0)
                    (get_elems ())
                in
                if neg then not m else m))

let compile_like ~env scope col neg arg =
  lazy_lit (fun () ->
      let arg_v = Pred.resolve_scalar ~env arg in
      let v = scope.find col in
      let sel = v.Rel.vsel in
      match (v.Rel.vcol, arg_v) with
      | Col.Dict { codes; pool; nulls }, Value.Str pattern ->
          (* one LIKE match per distinct pool entry, not per row *)
          let verdict =
            Array.map
              (fun s ->
                let m = Like.matches ~pattern s in
                if neg then not m else m)
              pool
          in
          fun i ->
            let p = sel.(i) in
            p >= 0 && (not (vnull nulls p)) && verdict.(codes.(p))
      | _, Value.Str pattern ->
          fun i -> (
            match Rel.get_view v i with
            | Value.Str s ->
                let m = Like.matches ~pattern s in
                if neg then not m else m
            | _ -> false)
      | _, _ -> fun _ -> false)

let rec compile_arith scope = function
  | Pred.Acol c -> (
      let v = scope.find c in
      let sel = v.Rel.vsel in
      match v.Rel.vcol with
      | Col.Ints { data; nulls } ->
          fun i ->
            let p = sel.(i) in
            if p < 0 || vnull nulls p then None
            else Some (float_of_int data.(p))
      | Col.Floats { data; nulls } ->
          fun i ->
            let p = sel.(i) in
            if p < 0 || vnull nulls p then None else Some data.(p)
      | Col.Big_ints { data; nulls } ->
          fun i ->
            let p = sel.(i) in
            if p < 0 || vnull nulls p then None
            else Some (float_of_int (Bigarray.Array1.unsafe_get data p))
      | Col.Big_floats { data; nulls } ->
          fun i ->
            let p = sel.(i) in
            if p < 0 || vnull nulls p then None
            else Some (Bigarray.Array1.unsafe_get data p)
      | Col.Dict _ | Col.Big_dict _ -> fun _ -> None
      | Col.Boxed vs ->
          fun i ->
            let p = sel.(i) in
            if p < 0 then None else Value.to_float vs.(p))
  | Pred.Aconst f ->
      let r = Some f in
      fun _ -> r
  | Pred.Aadd (a, b) -> lift2 ( +. ) scope a b
  | Pred.Asub (a, b) -> lift2 ( -. ) scope a b
  | Pred.Amul (a, b) -> lift2 ( *. ) scope a b
  | Pred.Adiv (a, b) ->
      let fa = compile_arith scope a and fb = compile_arith scope b in
      fun i -> (
        match (fa i, fb i) with
        | Some x, Some y when y <> 0.0 -> Some (x /. y)
        | _ -> None)

and lift2 op scope a b =
  let fa = compile_arith scope a and fb = compile_arith scope b in
  fun i ->
    match (fa i, fb i) with
    | Some x, Some y -> Some (op x y)
    | _ -> None

let compile_arith_cmp ~env scope expr cmp arg =
  lazy_lit (fun () ->
      let arg_v = Pred.resolve_scalar ~env arg in
      let f = compile_arith scope expr in
      match Value.to_float arg_v with
      | None -> fun _ -> false
      | Some y -> (
          fun i ->
            match f i with
            | Some x -> Pred.cmp_holds cmp (Stdlib.compare x y)
            | None -> false))

let compile_literal ~env scope = function
  | Pred.Cmp { col; cmp; arg } -> compile_cmp ~env scope col cmp arg
  | Pred.In { col; neg; arg } -> compile_in ~env scope col neg arg
  | Pred.Like { col; neg; arg } -> compile_like ~env scope col neg arg
  | Pred.Arith_cmp { expr; cmp; arg } ->
      compile_arith_cmp ~env scope expr cmp arg

let rec compile ~env scope = function
  | Pred.True -> fun _ -> true
  | Pred.False -> fun _ -> false
  | Pred.Lit l -> compile_literal ~env scope l
  | Pred.And ps -> (
      match List.map (compile ~env scope) ps with
      | [] -> fun _ -> true
      | [ f ] -> f
      | fs -> fun i -> List.for_all (fun f -> f i) fs)
  | Pred.Or ps -> (
      match List.map (compile ~env scope) ps with
      | [] -> fun _ -> false
      | [ f ] -> f
      | fs -> fun i -> List.exists (fun f -> f i) fs)
  | Pred.Not p ->
      let f = compile ~env scope p in
      fun i -> not (f i)

(* ------------------------------------------------------------------ *)
(* Operators *)

let scan db tname =
  let tschema = Schema.table (Db.schema db) tname in
  let names = Schema.column_names tschema in
  Rel.of_cols (List.map (fun c -> (c, Db.col db tname c)) names)

let filter_rel ~env pred (rel : Rel.t) =
  let scope =
    scope_of_rel rel ~missing:(Printf.sprintf "Exec: column %s not in scope")
  in
  let p = compile ~env scope pred in
  let n = Rel.card rel in
  let keep = Array.make n 0 in
  let nk = ref 0 in
  for i = 0 to n - 1 do
    if p i then begin
      keep.(!nk) <- i;
      incr nk
    end
  done;
  Rel.select rel (Array.sub keep 0 !nk)

(* PK–FK hash join.  The left relation carries [pk_table]'s primary key
   column, the right relation the foreign key column.  Row-pair order
   replicates the legacy row-major evaluator exactly: right rows ascending,
   and within one right row the matching left rows in the (descending)
   bucket order the index build produced.  Returns the joined relation for
   the requested join type plus the uniform (jcc, jdc) statistics:
   jcc = matched pairs, jdc = distinct matched key values. *)
let join ~jt ~pk_col ~fk_col (left : Rel.t) (right : Rel.t) =
  let lv = Rel.view left (Rel.col_index left pk_col) in
  let rv = Rel.view right (Rel.col_index right fk_col) in
  let nleft = Rel.card left and nright = Rel.card right in
  let left_matched = Array.make nleft false in
  let right_matched = Array.make nright false in
  let jcc = ref 0 in
  let jdc = ref 0 in
  (* growable matched-pair buffers, in legacy emission order *)
  let cap = ref (max 16 nright) in
  let pl = ref (Array.make !cap 0) in
  let pr = ref (Array.make !cap 0) in
  let np = ref 0 in
  let push l r =
    if !np = !cap then begin
      let c = !cap * 2 in
      let nl = Array.make c 0 and nr = Array.make c 0 in
      Array.blit !pl 0 nl 0 !np;
      Array.blit !pr 0 nr 0 !np;
      pl := nl;
      pr := nr;
      cap := c
    end;
    !pl.(!np) <- l;
    !pr.(!np) <- r;
    incr np
  in
  (match (lv.Rel.vcol, rv.Rel.vcol) with
  | ( Col.Ints { data = ldata; nulls = lnulls },
      Col.Ints { data = rdata; nulls = rnulls } ) ->
      (* unboxed fast path: int-keyed index, no Value allocation *)
      let lsel = lv.Rel.vsel and rsel = rv.Rel.vsel in
      let index = Hashtbl.create nleft in
      for li = 0 to nleft - 1 do
        let p = lsel.(li) in
        if p >= 0 && not (vnull lnulls p) then
          let k = ldata.(p) in
          let cur = try Hashtbl.find index k with Not_found -> [] in
          Hashtbl.replace index k (li :: cur)
      done;
      let matched_fk = Hashtbl.create 64 in
      for ri = 0 to nright - 1 do
        let p = rsel.(ri) in
        if p >= 0 && not (vnull rnulls p) then
          let k = rdata.(p) in
          match Hashtbl.find_opt index k with
          | None -> ()
          | Some lidxs ->
              Hashtbl.replace matched_fk k ();
              right_matched.(ri) <- true;
              List.iter
                (fun li ->
                  incr jcc;
                  left_matched.(li) <- true;
                  push li ri)
                lidxs
      done;
      jdc := Hashtbl.length matched_fk
  | _ ->
      (* generic path: boxed keys, structural equality (legacy behaviour) *)
      let index = Hashtbl.create nleft in
      for li = 0 to nleft - 1 do
        match Rel.get_view lv li with
        | Value.Null -> ()
        | v ->
            let cur = try Hashtbl.find index v with Not_found -> [] in
            Hashtbl.replace index v (li :: cur)
      done;
      let matched_fk = Hashtbl.create 64 in
      for ri = 0 to nright - 1 do
        match Rel.get_view rv ri with
        | Value.Null -> ()
        | fkv -> (
            match Hashtbl.find_opt index fkv with
            | None -> ()
            | Some lidxs ->
                Hashtbl.replace matched_fk fkv ();
                right_matched.(ri) <- true;
                List.iter
                  (fun li ->
                    incr jcc;
                    left_matched.(li) <- true;
                    push li ri)
                  lidxs)
      done;
      jdc := Hashtbl.length matched_fk);
  let pairs_l = Array.sub !pl 0 !np and pairs_r = Array.sub !pr 0 !np in
  let rows_where flags wanted =
    let n = Array.length flags in
    let buf = Array.make n 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if flags.(i) = wanted then begin
        buf.(!k) <- i;
        incr k
      end
    done;
    Array.sub buf 0 !k
  in
  let nulls n = Array.make n (-1) in
  let combine lkeep rkeep =
    let lrel = Rel.select left lkeep and rrel = Rel.select right rkeep in
    {
      Rel.rcard = Array.length lkeep;
      views = Array.append lrel.Rel.views rrel.Rel.views;
    }
  in
  let rel =
    match jt with
    | Plan.Inner -> combine pairs_l pairs_r
    | Plan.Left_outer ->
        let ul = rows_where left_matched false in
        combine
          (Array.append pairs_l ul)
          (Array.append pairs_r (nulls (Array.length ul)))
    | Plan.Right_outer ->
        let ur = rows_where right_matched false in
        combine
          (Array.append pairs_l (nulls (Array.length ur)))
          (Array.append pairs_r ur)
    | Plan.Full_outer ->
        let ul = rows_where left_matched false in
        let ur = rows_where right_matched false in
        combine
          (Array.concat [ pairs_l; ul; nulls (Array.length ur) ])
          (Array.concat [ pairs_r; nulls (Array.length ul); ur ])
    | Plan.Left_semi -> Rel.select left (rows_where left_matched true)
    | Plan.Right_semi -> Rel.select right (rows_where right_matched true)
    | Plan.Left_anti -> Rel.select left (rows_where left_matched false)
    | Plan.Right_anti -> Rel.select right (rows_where right_matched false)
  in
  let stat =
    { jcc = !jcc; jdc = !jdc; left_card = nleft; right_card = nright }
  in
  (rel, stat)

let float_at_view (v : Rel.view) i =
  let p = v.Rel.vsel.(i) in
  if p < 0 then None else Col.float_at v.Rel.vcol p

(* hash aggregation: group rows by the group-by columns and fold each
   aggregate function; output columns are the group keys followed by one
   column per aggregate named "<fn>_<col>" *)
let aggregate ~group_by ~aggs (rel : Rel.t) =
  let gvs = List.map (fun c -> Rel.view rel (Rel.col_index rel c)) group_by in
  let avs =
    List.map (fun (f, c) -> (f, Rel.view rel (Rel.col_index rel c))) aggs
  in
  let n_aggs = List.length avs in
  let groups = Hashtbl.create 64 in
  for i = 0 to Rel.card rel - 1 do
    let key = List.map (fun v -> Rel.get_view v i) gvs in
    let accs =
      match Hashtbl.find_opt groups key with
      | Some a -> a
      | None ->
          let a = Array.make n_aggs (0, 0.0, infinity, neg_infinity) in
          Hashtbl.add groups key a;
          a
    in
    List.iteri
      (fun k (_, v) ->
        let cnt, sum, mn, mx = accs.(k) in
        match float_at_view v i with
        | Some x -> accs.(k) <- (cnt + 1, sum +. x, min mn x, max mx x)
        | None -> accs.(k) <- (cnt + 1, sum, mn, mx))
      avs
  done;
  let agg_name (f, c) =
    let fn =
      match f with
      | Plan.Count -> "count"
      | Plan.Sum -> "sum"
      | Plan.Avg -> "avg"
      | Plan.Min -> "min"
      | Plan.Max -> "max"
    in
    fn ^ "_" ^ c
  in
  let cols =
    Array.of_list (group_by @ List.map (fun (f, c) -> agg_name (f, c)) aggs)
  in
  let rows =
    Hashtbl.fold
      (fun key accs acc ->
        let agg_vals =
          List.mapi
            (fun k (f, _) ->
              let cnt, sum, mn, mx = accs.(k) in
              match f with
              | Plan.Count -> Value.Int cnt
              | Plan.Sum -> Value.Float sum
              | Plan.Avg ->
                  if cnt = 0 then Value.Null
                  else Value.Float (sum /. float_of_int cnt)
              | Plan.Min -> if cnt = 0 then Value.Null else Value.Float mn
              | Plan.Max -> if cnt = 0 then Value.Null else Value.Float mx)
            avs
        in
        Array.of_list (key @ agg_vals) :: acc)
      groups []
  in
  Rel.of_rows cols (Array.of_list rows)

let analyze db ~env plan =
  let n = Plan.size plan in
  let cards = Array.make n 0 in
  let join_stats = ref [] in
  let counter = ref 0 in
  let rec go p =
    let idx = !counter in
    incr counter;
    let rel =
      match p with
      | Plan.Table t -> scan db t
      | Plan.Select (pred, q) -> filter_rel ~env pred (go q)
      | Plan.Project { cols; input } -> Rel.distinct_on (go input) cols
      | Plan.Aggregate { group_by; aggs; input } ->
          aggregate ~group_by ~aggs (go input)
      | Plan.Join { jt; pk_table; fk_col; left; right; _ } ->
          let lrel = go left in
          let rrel = go right in
          let pk_col = (Schema.table (Db.schema db) pk_table).Schema.pk in
          let rel, stat = join ~jt ~pk_col ~fk_col lrel rrel in
          join_stats := (idx, stat) :: !join_stats;
          rel
    in
    cards.(idx) <- Rel.card rel;
    rel
  in
  let result = go plan in
  { result; cards; join_stats = List.rev !join_stats }

let run db ~env plan = (analyze db ~env plan).result

let table_scope db ~missing ~table cols =
  let n = Db.row_count db table in
  let sel = Array.init n (fun i -> i) in
  let views =
    List.map
      (fun c -> (c, { Rel.vname = c; vcol = Db.col db table c; vsel = sel }))
      cols
  in
  ( n,
    {
      find =
        (fun c ->
          match List.assoc_opt c views with
          | Some v -> v
          | None -> invalid_arg (missing c));
    } )

let count_select db ~env ~table pred =
  let tschema = Schema.table (Db.schema db) table in
  let names = Schema.column_names tschema in
  let n, scope =
    table_scope db ~table names
      ~missing:(Printf.sprintf "Exec.count_select: unknown column %s")
  in
  let p = compile ~env scope pred in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if p i then incr count
  done;
  !count

let select_mask db ~env ~table pred =
  let cols = Mirage_sql.Pred.columns pred in
  let n, scope =
    table_scope db ~table cols
      ~missing:(Printf.sprintf "Exec: column %s not in scope")
  in
  let p = compile ~env scope pred in
  let b = Col.Bitset.create n in
  for i = 0 to n - 1 do
    if p i then Col.Bitset.set b i
  done;
  b

let timed_run db ~env plan =
  let t0 = Unix.gettimeofday () in
  let r = run db ~env plan in
  let t1 = Unix.gettimeofday () in
  (r, t1 -. t0)
