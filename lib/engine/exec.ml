module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Schema = Mirage_sql.Schema
module Plan = Mirage_relalg.Plan

type join_stat = { jcc : int; jdc : int; left_card : int; right_card : int }

type analysis = {
  result : Rel.t;
  cards : int array;
  join_stats : (int * join_stat) list;
}

let scan db tname =
  let tschema = Schema.table (Db.schema db) tname in
  let names = Schema.column_names tschema in
  let arrays = Array.of_list (List.map (fun c -> Db.column db tname c) names) in
  let n = Db.row_count db tname in
  let rows = Array.init n (fun i -> Array.map (fun a -> a.(i)) arrays) in
  { Rel.cols = Array.of_list names; rows }

let filter_rel ~env pred (rel : Rel.t) =
  let cols = rel.Rel.cols in
  let idx = Hashtbl.create (Array.length cols) in
  Array.iteri (fun i c -> Hashtbl.replace idx c i) cols;
  let lookup row c =
    match Hashtbl.find_opt idx c with
    | Some i -> row.(i)
    | None -> invalid_arg (Printf.sprintf "Exec: column %s not in scope" c)
  in
  let rows =
    Array.to_list rel.Rel.rows
    |> List.filter (fun row -> Pred.eval ~env (lookup row) pred)
    |> Array.of_list
  in
  { rel with Rel.rows }

(* PK–FK hash join.  The left relation carries [pk_table]'s primary key
   column, the right relation the foreign key column.  Returns the joined
   relation for the requested join type plus the uniform (jcc, jdc)
   statistics: jcc = matched pairs, jdc = distinct matched key values. *)
let join ~jt ~pk_col ~fk_col (left : Rel.t) (right : Rel.t) =
  let lpk = Rel.col_index left pk_col in
  let rfk = Rel.col_index right fk_col in
  let nleft = Array.length left.Rel.rows in
  let index = Hashtbl.create nleft in
  Array.iteri
    (fun li lrow ->
      match lrow.(lpk) with
      | Value.Null -> ()
      | v ->
          let cur = try Hashtbl.find index v with Not_found -> [] in
          Hashtbl.replace index v (li :: cur))
    left.Rel.rows;
  let left_matched = Array.make nleft false in
  let matched_fk = Hashtbl.create 64 in
  let jcc = ref 0 in
  let pairs = ref [] in
  let unmatched_right = ref [] in
  let matched_right = ref [] in
  Array.iter
    (fun rrow ->
      let fkv = rrow.(rfk) in
      match (fkv, Hashtbl.find_opt index fkv) with
      | Value.Null, _ | _, None -> unmatched_right := rrow :: !unmatched_right
      | _, Some lidxs ->
          Hashtbl.replace matched_fk fkv ();
          matched_right := rrow :: !matched_right;
          List.iter
            (fun li ->
              incr jcc;
              left_matched.(li) <- true;
              pairs := (left.Rel.rows.(li), rrow) :: !pairs)
            lidxs)
    right.Rel.rows;
  let jdc = Hashtbl.length matched_fk in
  let cols = Array.append left.Rel.cols right.Rel.cols in
  let lwidth = Array.length left.Rel.cols in
  let rwidth = Array.length right.Rel.cols in
  let lnulls = Array.make lwidth Value.Null in
  let rnulls = Array.make rwidth Value.Null in
  let inner_rows () = List.rev_map (fun (l, r) -> Array.append l r) !pairs in
  let unmatched_left () =
    let out = ref [] in
    for li = nleft - 1 downto 0 do
      if not left_matched.(li) then out := left.Rel.rows.(li) :: !out
    done;
    !out
  in
  let matched_left () =
    let out = ref [] in
    for li = nleft - 1 downto 0 do
      if left_matched.(li) then out := left.Rel.rows.(li) :: !out
    done;
    !out
  in
  let rel =
    match jt with
    | Plan.Inner -> { Rel.cols; rows = Array.of_list (inner_rows ()) }
    | Plan.Left_outer ->
        let padded = List.map (fun l -> Array.append l rnulls) (unmatched_left ()) in
        { Rel.cols; rows = Array.of_list (inner_rows () @ padded) }
    | Plan.Right_outer ->
        let padded =
          List.rev_map (fun r -> Array.append lnulls r) !unmatched_right
        in
        { Rel.cols; rows = Array.of_list (inner_rows () @ padded) }
    | Plan.Full_outer ->
        let pad_l = List.map (fun l -> Array.append l rnulls) (unmatched_left ()) in
        let pad_r = List.rev_map (fun r -> Array.append lnulls r) !unmatched_right in
        { Rel.cols; rows = Array.of_list (inner_rows () @ pad_l @ pad_r) }
    | Plan.Left_semi ->
        { Rel.cols = left.Rel.cols; rows = Array.of_list (matched_left ()) }
    | Plan.Right_semi ->
        { Rel.cols = right.Rel.cols; rows = Array.of_list (List.rev !matched_right) }
    | Plan.Left_anti ->
        { Rel.cols = left.Rel.cols; rows = Array.of_list (unmatched_left ()) }
    | Plan.Right_anti ->
        { Rel.cols = right.Rel.cols; rows = Array.of_list (List.rev !unmatched_right) }
  in
  let stat =
    { jcc = !jcc; jdc; left_card = Rel.card left; right_card = Rel.card right }
  in
  (rel, stat)

(* hash aggregation: group rows by the group-by columns and fold each
   aggregate function; output columns are the group keys followed by one
   column per aggregate named "<fn>_<col>" *)
let aggregate ~group_by ~aggs (rel : Rel.t) =
  let gidx = List.map (Rel.col_index rel) group_by in
  let aidx = List.map (fun (f, c) -> (f, Rel.col_index rel c)) aggs in
  let groups = Hashtbl.create 64 in
  Array.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) gidx in
      let accs =
        match Hashtbl.find_opt groups key with
        | Some a -> a
        | None ->
            let a = Array.make (List.length aidx) (0, 0.0, infinity, neg_infinity) in
            Hashtbl.add groups key a;
            a
      in
      List.iteri
        (fun k (_, i) ->
          let cnt, sum, mn, mx = accs.(k) in
          match Value.to_float row.(i) with
          | Some v -> accs.(k) <- (cnt + 1, sum +. v, min mn v, max mx v)
          | None -> accs.(k) <- (cnt + 1, sum, mn, mx))
        aidx)
    rel.Rel.rows;
  let agg_name (f, c) =
    let fn =
      match f with
      | Plan.Count -> "count"
      | Plan.Sum -> "sum"
      | Plan.Avg -> "avg"
      | Plan.Min -> "min"
      | Plan.Max -> "max"
    in
    fn ^ "_" ^ c
  in
  let cols =
    Array.of_list (group_by @ List.map (fun (f, c) -> agg_name (f, c)) aggs)
  in
  let rows =
    Hashtbl.fold
      (fun key accs acc ->
        let agg_vals =
          List.mapi
            (fun k (f, _) ->
              let cnt, sum, mn, mx = accs.(k) in
              match f with
              | Plan.Count -> Value.Int cnt
              | Plan.Sum -> Value.Float sum
              | Plan.Avg ->
                  if cnt = 0 then Value.Null else Value.Float (sum /. float_of_int cnt)
              | Plan.Min -> if cnt = 0 then Value.Null else Value.Float mn
              | Plan.Max -> if cnt = 0 then Value.Null else Value.Float mx)
            aidx
        in
        Array.of_list (key @ agg_vals) :: acc)
      groups []
  in
  { Rel.cols; rows = Array.of_list rows }

let analyze db ~env plan =
  let n = Plan.size plan in
  let cards = Array.make n 0 in
  let join_stats = ref [] in
  let counter = ref 0 in
  let rec go p =
    let idx = !counter in
    incr counter;
    let rel =
      match p with
      | Plan.Table t -> scan db t
      | Plan.Select (pred, q) -> filter_rel ~env pred (go q)
      | Plan.Project { cols; input } -> Rel.distinct_on (go input) cols
      | Plan.Aggregate { group_by; aggs; input } ->
          aggregate ~group_by ~aggs (go input)
      | Plan.Join { jt; pk_table; fk_col; left; right; _ } ->
          let lrel = go left in
          let rrel = go right in
          let pk_col = (Schema.table (Db.schema db) pk_table).Schema.pk in
          let rel, stat = join ~jt ~pk_col ~fk_col lrel rrel in
          join_stats := (idx, stat) :: !join_stats;
          rel
    in
    cards.(idx) <- Rel.card rel;
    rel
  in
  let result = go plan in
  { result; cards; join_stats = List.rev !join_stats }

let run db ~env plan = (analyze db ~env plan).result

let count_select db ~env ~table pred =
  let tschema = Schema.table (Db.schema db) table in
  let names = Schema.column_names tschema in
  let arrays = List.map (fun c -> (c, Db.column db table c)) names in
  let n = Db.row_count db table in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let lookup c =
      match List.assoc_opt c arrays with
      | Some a -> a.(i)
      | None -> invalid_arg (Printf.sprintf "Exec.count_select: unknown column %s" c)
    in
    if Pred.eval ~env lookup pred then incr count
  done;
  !count

let timed_run db ~env plan =
  let t0 = Unix.gettimeofday () in
  let r = run db ~env plan in
  let t1 = Unix.gettimeofday () in
  (r, t1 -. t0)
