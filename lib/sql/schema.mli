(** Database schemas (§2.1).

    Every table has a single integer primary-key column, zero or more
    non-key columns (each with a target domain size [|R|_A]) and zero or more
    foreign keys, each referencing another table's primary key.  [row_count]
    is the table cardinality constraint [|R|]. *)

type kind = Kint | Kfloat | Kstring
(** Declared value kind of a non-key column; the generators work in the
    normalised integer cardinality space regardless, but reference databases
    and the engine respect the declared kind. *)

type column = { cname : string; domain_size : int; kind : kind }

type fk = { fk_col : string; references : string }

type table = {
  tname : string;
  pk : string;
  nonkeys : column list;
  fks : fk list;
  row_count : int;
}

type t

val make : table list -> t
(** Validates: unique table names, unique column names within a table, FK
    references resolve, positive row counts and domain sizes.
    @raise Invalid_argument on violation. *)

val tables : t -> table list
val table : t -> string -> table
val table_opt : t -> string -> table option
val mem : t -> string -> bool

val nonkey : table -> string -> column
val is_pk : table -> string -> bool
val is_fk : table -> string -> bool
val fk : table -> string -> fk

val column_names : table -> string list
(** pk, then non-keys, then fks — the canonical physical order. *)

val referencing_edges : t -> (string * string) list
(** [(referenced, referencing)] pairs — the FK dependency edges used for the
    topological population order (§5.3). *)

val scale : t -> float -> t
(** [scale t f] multiplies every row count (and key-correlated domain sizes
    are left alone) by [f], for scale-factor sweeps. *)

val pp : Format.formatter -> t -> unit
