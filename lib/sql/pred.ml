type cmp = Eq | Neq | Lt | Le | Gt | Ge

type arith =
  | Acol of string
  | Aconst of float
  | Aadd of arith * arith
  | Asub of arith * arith
  | Amul of arith * arith
  | Adiv of arith * arith

type operand =
  | Param of string
  | Const of Value.t
  | Const_list of Value.t list

type literal =
  | Cmp of { col : string; cmp : cmp; arg : operand }
  | In of { col : string; neg : bool; arg : operand }
  | Like of { col : string; neg : bool; arg : operand }
  | Arith_cmp of { expr : arith; cmp : cmp; arg : operand }

type t =
  | Lit of literal
  | And of t list
  | Or of t list
  | Not of t
  | True
  | False

module Env = struct
  type binding = Scalar of Value.t | Vlist of Value.t list

  module M = Map.Make (String)

  type t = binding M.t

  let empty = M.empty
  let add = M.add
  let add_scalar name v t = M.add name (Scalar v) t
  let of_list l = List.fold_left (fun m (k, v) -> M.add k v m) M.empty l
  let find name t = M.find_opt name t
  let union a b = M.union (fun _ _ rhs -> Some rhs) a b
  let bindings t = M.bindings t
end

let resolve_scalar ~env = function
  | Const v -> v
  | Const_list _ -> invalid_arg "Pred.eval: list operand in scalar position"
  | Param p -> (
      match Env.find p env with
      | Some (Env.Scalar v) -> v
      | Some (Env.Vlist _) ->
          invalid_arg (Printf.sprintf "Pred.eval: parameter %s bound to a list" p)
      | None -> invalid_arg (Printf.sprintf "Pred.eval: unbound parameter %s" p))

let resolve_list ~env = function
  | Const_list vs -> vs
  | Const v -> [ v ]
  | Param p -> (
      match Env.find p env with
      | Some (Env.Vlist vs) -> vs
      | Some (Env.Scalar v) -> [ v ]
      | None -> invalid_arg (Printf.sprintf "Pred.eval: unbound parameter %s" p))

let cmp_holds cmp c =
  match cmp with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec eval_arith lookup = function
  | Acol c -> Value.to_float (lookup c)
  | Aconst f -> Some f
  | Aadd (a, b) -> lift2 ( +. ) lookup a b
  | Asub (a, b) -> lift2 ( -. ) lookup a b
  | Amul (a, b) -> lift2 ( *. ) lookup a b
  | Adiv (a, b) -> (
      match (eval_arith lookup a, eval_arith lookup b) with
      | Some x, Some y when y <> 0.0 -> Some (x /. y)
      | _ -> None)

and lift2 op lookup a b =
  match (eval_arith lookup a, eval_arith lookup b) with
  | Some x, Some y -> Some (op x y)
  | _ -> None

let eval_literal ~env lookup = function
  | Cmp { col; cmp; arg } -> (
      let v = lookup col and arg_v = resolve_scalar ~env arg in
      match Value.cmp_sql v arg_v with
      | Some c -> cmp_holds cmp c
      | None -> false)
  | In { col; neg; arg } -> (
      let v = lookup col in
      match v with
      | Value.Null -> false
      | _ ->
          let vs = resolve_list ~env arg in
          let mem = List.exists (fun x -> Value.cmp_sql v x = Some 0) vs in
          if neg then not mem else mem)
  | Like { col; neg; arg } -> (
      match (lookup col, resolve_scalar ~env arg) with
      | Value.Str s, Value.Str pattern ->
          let m = Like.matches ~pattern s in
          if neg then not m else m
      | Value.Null, _ | _, Value.Null -> false
      | _ -> false)
  | Arith_cmp { expr; cmp; arg } -> (
      let arg_v = resolve_scalar ~env arg in
      match (eval_arith lookup expr, Value.to_float arg_v) with
      | Some x, Some y -> cmp_holds cmp (Stdlib.compare x y)
      | _ -> false)

let rec eval ~env lookup = function
  | True -> true
  | False -> false
  | Lit l -> eval_literal ~env lookup l
  | And ps -> List.for_all (eval ~env lookup) ps
  | Or ps -> List.exists (eval ~env lookup) ps
  | Not p -> not (eval ~env lookup p)

let rec arith_columns = function
  | Acol c -> [ c ]
  | Aconst _ -> []
  | Aadd (a, b) | Asub (a, b) | Amul (a, b) | Adiv (a, b) ->
      arith_columns a @ arith_columns b

let literal_columns = function
  | Cmp { col; _ } | In { col; _ } | Like { col; _ } -> [ col ]
  | Arith_cmp { expr; _ } -> arith_columns expr

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let columns p =
  let rec go = function
    | True | False -> []
    | Lit l -> literal_columns l
    | Not q -> go q
    | And qs | Or qs -> List.concat_map go qs
  in
  dedup (go p)

let operand_params = function Param p -> [ p ] | Const _ | Const_list _ -> []

let literal_params = function
  | Cmp { arg; _ } | In { arg; _ } | Like { arg; _ } | Arith_cmp { arg; _ } ->
      operand_params arg

let params p =
  let rec go = function
    | True | False -> []
    | Lit l -> literal_params l
    | Not q -> go q
    | And qs | Or qs -> List.concat_map go qs
  in
  dedup (go p)

let negate_cmp = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let negate_literal = function
  | Cmp c -> Some (Cmp { c with cmp = negate_cmp c.cmp })
  | In i -> Some (In { i with neg = not i.neg })
  | Like l -> Some (Like { l with neg = not l.neg })
  | Arith_cmp a -> Some (Arith_cmp { a with cmp = negate_cmp a.cmp })

(* Negation normal form: push Not down to literals, where it is absorbed by
   comparator flipping. *)
let rec nnf = function
  | True -> True
  | False -> False
  | Lit _ as p -> p
  | And ps -> And (List.map nnf ps)
  | Or ps -> Or (List.map nnf ps)
  | Not q -> nnf_neg q

and nnf_neg = function
  | True -> False
  | False -> True
  | Lit l -> (
      match negate_literal l with Some l' -> Lit l' | None -> Not (Lit l))
  | And ps -> Or (List.map nnf_neg ps)
  | Or ps -> And (List.map nnf_neg ps)
  | Not q -> nnf q

(* CNF by distribution.  Clauses are lists of literal predicates. *)
let cnf p =
  let rec clauses = function
    | True -> []
    | False -> [ [] ]
    | Lit _ as l -> [ [ l ] ]
    | Not _ as l -> [ [ l ] ] (* only possible for non-negatable literal *)
    | And ps -> List.concat_map clauses ps
    | Or ps ->
        let parts = List.map clauses ps in
        List.fold_left
          (fun acc cs ->
            List.concat_map (fun a -> List.map (fun c -> a @ c) cs) acc)
          [ [] ] parts
  in
  clauses (nnf p)

let pp_cmp ppf c =
  Fmt.string ppf
    (match c with
    | Eq -> "="
    | Neq -> "<>"
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let rec pp_arith ppf = function
  | Acol c -> Fmt.string ppf c
  | Aconst f -> Fmt.float ppf f
  | Aadd (a, b) -> Fmt.pf ppf "(%a + %a)" pp_arith a pp_arith b
  | Asub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_arith a pp_arith b
  | Amul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_arith a pp_arith b
  | Adiv (a, b) -> Fmt.pf ppf "(%a / %a)" pp_arith a pp_arith b

let pp_operand ppf = function
  | Param p -> Fmt.pf ppf "$%s" p
  | Const v -> Value.pp ppf v
  | Const_list vs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma Value.pp) vs

let pp_literal ppf = function
  | Cmp { col; cmp; arg } -> Fmt.pf ppf "%s %a %a" col pp_cmp cmp pp_operand arg
  | In { col; neg; arg } ->
      Fmt.pf ppf "%s %sin %a" col (if neg then "not " else "") pp_operand arg
  | Like { col; neg; arg } ->
      Fmt.pf ppf "%s %slike %a" col (if neg then "not " else "") pp_operand arg
  | Arith_cmp { expr; cmp; arg } ->
      Fmt.pf ppf "%a %a %a" pp_arith expr pp_cmp cmp pp_operand arg

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Lit l -> pp_literal ppf l
  | And ps -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " and ") pp) ps
  | Or ps -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " or ") pp) ps
  | Not p -> Fmt.pf ppf "not %a" pp p

let to_string p = Fmt.str "%a" pp p
let equal a b = a = b
