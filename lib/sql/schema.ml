type kind = Kint | Kfloat | Kstring

type column = { cname : string; domain_size : int; kind : kind }

type fk = { fk_col : string; references : string }

type table = {
  tname : string;
  pk : string;
  nonkeys : column list;
  fks : fk list;
  row_count : int;
}

type t = { list : table list; by_name : (string, table) Hashtbl.t }

let column_names tbl =
  (tbl.pk :: List.map (fun c -> c.cname) tbl.nonkeys)
  @ List.map (fun f -> f.fk_col) tbl.fks

let make tables =
  let by_name = Hashtbl.create (List.length tables) in
  List.iter
    (fun tbl ->
      if Hashtbl.mem by_name tbl.tname then
        invalid_arg (Printf.sprintf "Schema.make: duplicate table %s" tbl.tname);
      if tbl.row_count <= 0 then
        invalid_arg (Printf.sprintf "Schema.make: %s has non-positive row count" tbl.tname);
      let cols = column_names tbl in
      let seen = Hashtbl.create 8 in
      List.iter
        (fun c ->
          if Hashtbl.mem seen c then
            invalid_arg
              (Printf.sprintf "Schema.make: duplicate column %s.%s" tbl.tname c);
          Hashtbl.add seen c ())
        cols;
      List.iter
        (fun c ->
          if c.domain_size <= 0 then
            invalid_arg
              (Printf.sprintf "Schema.make: %s.%s has non-positive domain" tbl.tname
                 c.cname))
        tbl.nonkeys;
      Hashtbl.add by_name tbl.tname tbl)
    tables;
  List.iter
    (fun tbl ->
      List.iter
        (fun f ->
          if not (Hashtbl.mem by_name f.references) then
            invalid_arg
              (Printf.sprintf "Schema.make: %s.%s references unknown table %s"
                 tbl.tname f.fk_col f.references))
        tbl.fks)
    tables;
  { list = tables; by_name }

let tables t = t.list

let table_opt t name = Hashtbl.find_opt t.by_name name

let table t name =
  match table_opt t name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Schema.table: unknown table %s" name)

let mem t name = Hashtbl.mem t.by_name name

let nonkey tbl name =
  match List.find_opt (fun c -> c.cname = name) tbl.nonkeys with
  | Some c -> c
  | None ->
      invalid_arg (Printf.sprintf "Schema.nonkey: %s has no non-key column %s" tbl.tname name)

let is_pk tbl name = tbl.pk = name
let is_fk tbl name = List.exists (fun f -> f.fk_col = name) tbl.fks

let fk tbl name =
  match List.find_opt (fun f -> f.fk_col = name) tbl.fks with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Schema.fk: %s has no foreign key %s" tbl.tname name)

let referencing_edges t =
  List.concat_map
    (fun tbl -> List.map (fun f -> (f.references, tbl.tname)) tbl.fks)
    t.list

let scale t f =
  let scale_count n = max 1 (int_of_float (float_of_int n *. f)) in
  make
    (List.map (fun tbl -> { tbl with row_count = scale_count tbl.row_count }) t.list)

let pp ppf t =
  List.iter
    (fun tbl ->
      Fmt.pf ppf "@[<h>%s(%d rows): pk=%s%a%a@]@."
        tbl.tname tbl.row_count tbl.pk
        Fmt.(list ~sep:nop (fun ppf c -> Fmt.pf ppf ", %s[%d]" c.cname c.domain_size))
        tbl.nonkeys
        Fmt.(list ~sep:nop (fun ppf f -> Fmt.pf ppf ", %s->%s" f.fk_col f.references))
        tbl.fks)
    t.list
