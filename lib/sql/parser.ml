exception Parse_error of string

type token =
  | Tident of string
  | Tnumber of string
  | Tstring of string
  | Tparam of string
  | Tlparen
  | Trparen
  | Tcomma
  | Top of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (push Tlparen; incr i)
    else if c = ')' then (push Trparen; incr i)
    else if c = ',' then (push Tcomma; incr i)
    else if c = '$' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident s.[!i] do incr i done;
      if !i = start then fail "empty parameter name at offset %d" start;
      push (Tparam (String.sub s start (!i - start)))
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 8 in
      let closed = ref false in
      while !i < n && not !closed do
        if s.[!i] = '\'' then (closed := true; incr i)
        else (Buffer.add_char buf s.[!i]; incr i)
      done;
      if not !closed then fail "unterminated string literal";
      push (Tstring (Buffer.contents buf))
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit s.[!i + 1]
                           && (match !toks with
                               | Top _ :: _ | Tlparen :: _ | Tcomma :: _ | [] -> true
                               | _ -> false)) then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && (is_digit s.[!i] || s.[!i] = '.') do incr i done;
      push (Tnumber (String.sub s start (!i - start)))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident s.[!i] do incr i done;
      push (Tident (String.sub s start (!i - start)))
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" -> (push (Top two); i := !i + 2)
      | _ -> (
          match c with
          | '=' | '<' | '>' | '+' | '-' | '*' | '/' ->
              push (Top (String.make 1 c));
              incr i
          | _ -> fail "unexpected character %c at offset %d" c !i)
    end
  done;
  List.rev !toks

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> fail "unexpected end of input" | _ :: r -> st.toks <- r

let expect st t =
  match st.toks with
  | x :: r when x = t -> st.toks <- r
  | _ -> fail "syntax error: expected token missing"

let keyword = function
  | Tident s -> Some (String.lowercase_ascii s)
  | _ -> None

let cmp_of_string = function
  | "=" -> Pred.Eq
  | "<>" | "!=" -> Pred.Neq
  | "<" -> Pred.Lt
  | "<=" -> Pred.Le
  | ">" -> Pred.Gt
  | ">=" -> Pred.Ge
  | s -> fail "unknown comparator %s" s

let value_of_number s =
  if String.contains s '.' then Value.Float (float_of_string s)
  else Value.Int (int_of_string s)

let parse_operand st =
  match peek st with
  | Some (Tparam p) -> advance st; Pred.Param p
  | Some (Tnumber s) -> advance st; Pred.Const (value_of_number s)
  | Some (Tstring s) -> advance st; Pred.Const (Value.Str s)
  | Some Tlparen ->
      advance st;
      let rec items acc =
        match peek st with
        | Some (Tnumber s) -> advance st; next (value_of_number s :: acc)
        | Some (Tstring s) -> advance st; next (Value.Str s :: acc)
        | _ -> fail "expected literal inside list operand"
      and next acc =
        match peek st with
        | Some Tcomma -> advance st; items acc
        | Some Trparen -> advance st; List.rev acc
        | _ -> fail "expected ',' or ')' in list operand"
      in
      Pred.Const_list (items [])
  | _ -> fail "expected operand"

let rec parse_expr st =
  let lhs = parse_term st in
  let rec loop acc =
    match peek st with
    | Some (Top "+") -> advance st; loop (Pred.Aadd (acc, parse_term st))
    | Some (Top "-") -> advance st; loop (Pred.Asub (acc, parse_term st))
    | _ -> acc
  in
  loop lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec loop acc =
    match peek st with
    | Some (Top "*") -> advance st; loop (Pred.Amul (acc, parse_factor st))
    | Some (Top "/") -> advance st; loop (Pred.Adiv (acc, parse_factor st))
    | _ -> acc
  in
  loop lhs

and parse_factor st =
  match peek st with
  | Some (Tident c) when keyword (Tident c) <> Some "not" -> advance st; Pred.Acol c
  | Some (Tnumber s) -> advance st; Pred.Aconst (float_of_string s)
  | Some Tlparen ->
      advance st;
      let e = parse_expr st in
      expect st Trparen;
      e
  | _ -> fail "expected arithmetic factor"

let parse_comparison st =
  let expr = parse_expr st in
  match (expr, peek st) with
  | Pred.Acol col, Some (Tident kw)
    when keyword (Tident kw) = Some "in" || keyword (Tident kw) = Some "like"
         || keyword (Tident kw) = Some "not" -> (
      let neg =
        if keyword (Tident kw) = Some "not" then begin
          advance st;
          true
        end
        else false
      in
      match peek st with
      | Some (Tident k2) when keyword (Tident k2) = Some "in" ->
          advance st;
          Pred.Lit (Pred.In { col; neg; arg = parse_operand st })
      | Some (Tident k2) when keyword (Tident k2) = Some "like" ->
          advance st;
          Pred.Lit (Pred.Like { col; neg; arg = parse_operand st })
      | _ -> fail "expected 'in' or 'like' after column%s" (if neg then " not" else ""))
  | _, Some (Top op) ->
      advance st;
      let cmp = cmp_of_string op in
      let arg = parse_operand st in
      (match expr with
      | Pred.Acol col -> Pred.Lit (Pred.Cmp { col; cmp; arg })
      | _ ->
          (match cmp with
          | Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge -> ()
          | Pred.Eq | Pred.Neq ->
              fail "arithmetic predicates only support <, <=, >, >=");
          Pred.Lit (Pred.Arith_cmp { expr; cmp; arg }))
  | _ -> fail "expected comparator"

let rec parse_pred st =
  let lhs = parse_conj st in
  let rec loop acc =
    match peek st with
    | Some t when keyword t = Some "or" ->
        advance st;
        loop (parse_conj st :: acc)
    | _ -> List.rev acc
  in
  match loop [ lhs ] with [ p ] -> p | ps -> Pred.Or ps

and parse_conj st =
  let lhs = parse_atom st in
  let rec loop acc =
    match peek st with
    | Some t when keyword t = Some "and" ->
        advance st;
        loop (parse_atom st :: acc)
    | _ -> List.rev acc
  in
  match loop [ lhs ] with [ p ] -> p | ps -> Pred.And ps

and parse_atom st =
  match peek st with
  | Some t when keyword t = Some "not" ->
      advance st;
      Pred.Not (parse_atom st)
  | Some t when keyword t = Some "true" -> advance st; Pred.True
  | Some t when keyword t = Some "false" -> advance st; Pred.False
  | Some Tlparen ->
      (* Could be a parenthesised predicate or a parenthesised arithmetic
         expression starting a comparison.  Try predicate first, backtrack to
         comparison on failure. *)
      let saved = st.toks in
      (try
         advance st;
         let p = parse_pred st in
         expect st Trparen;
         p
       with Parse_error _ ->
         st.toks <- saved;
         parse_comparison st)
  | _ -> parse_comparison st

let pred s =
  let st = { toks = tokenize s } in
  let p = parse_pred st in
  (match st.toks with
  | [] -> ()
  | _ -> fail "trailing tokens after predicate");
  p

let pred_opt s = try Ok (pred s) with Parse_error m -> Error m
