(** Recursive-descent parser for the predicate language used by examples and
    the CLI.  Grammar (case-insensitive keywords):

    {v
    pred   := conj ('or' conj)*
    conj   := atom ('and' atom)*
    atom   := 'not' atom | '(' pred ')' | comparison
    comparison :=
        expr cmpop operand
      | ident 'not'? 'in' operand
      | ident 'not'? 'like' operand
    expr   := term (('+' | '-') term)*
    term   := factor (('*' | '/') factor)*
    factor := ident | number | '(' expr ')'
    operand:= '$' ident | number | string | '(' (number|string) (',' ...)* ')'
    cmpop  := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
    v}

    An [expr] consisting of a single column becomes a unary comparison; any
    compound arithmetic expression becomes an arithmetic predicate, which is
    only legal with an inequality comparator (as in the paper). *)

exception Parse_error of string

val pred : string -> Pred.t
(** @raise Parse_error on malformed input. *)

val pred_opt : string -> (Pred.t, string) result
