(** Typed SQL values.

    Dates are represented as [Int] day numbers; the generators work in the
    paper's normalised "cardinality space" (integers in [(0, |R|_A]]), so
    [Int] is the workhorse constructor.  [Null] follows SQL semantics for
    predicates: it matches nothing, including [Null = Null]. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

val compare : t -> t -> int
(** Total order used for sorting/indexing.  [Null] sorts first; values of
    different runtime types are ordered by constructor.  For predicate
    evaluation use {!cmp_sql} instead. *)

val cmp_sql : t -> t -> int option
(** SQL comparison: [None] when either side is [Null] or the types are not
    comparable, otherwise [Some c] with [c] as {!Stdlib.compare}.  [Int] and
    [Float] are compared numerically. *)

val equal : t -> t -> bool
(** Structural equality (NOT SQL equality: [equal Null Null = true]). *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_float : t -> float option
(** Numeric view of the value, for arithmetic predicates. *)
