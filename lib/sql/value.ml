type t =
  | Null
  | Int of int
  | Float of float
  | Str of string

let rank = function Null -> 0 | Int _ -> 1 | Float _ -> 2 | Str _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let cmp_sql a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (Stdlib.compare x y)
  | Float x, Float y -> Some (Stdlib.compare x y)
  | Int x, Float y -> Some (Stdlib.compare (float_of_int x) y)
  | Float x, Int y -> Some (Stdlib.compare x (float_of_int y))
  | Str x, Str y -> Some (String.compare x y)
  | _ -> None

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash x
  | Float x -> Hashtbl.hash x
  | Str s -> Hashtbl.hash s

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Int x -> Fmt.int ppf x
  | Float x -> Fmt.float ppf x
  | Str s -> Fmt.pf ppf "'%s'" s

let to_string v = Fmt.str "%a" pp v

let to_float = function
  | Int x -> Some (float_of_int x)
  | Float x -> Some x
  | Null | Str _ -> None
