(* Dynamic-programming wildcard matcher: dp.(j) holds "pattern[0..i) matches
   s[0..j)" while scanning pattern rows.  O(|pattern| * |s|), which is fine for
   the short patterns benchmarks use. *)
let matches ~pattern s =
  let pn = String.length pattern and sn = String.length s in
  let dp = Array.make (sn + 1) false in
  dp.(0) <- true;
  for i = 1 to pn do
    let c = pattern.[i - 1] in
    let prev_diag = ref dp.(0) in
    dp.(0) <- dp.(0) && c = '%';
    for j = 1 to sn do
      let cur = dp.(j) in
      dp.(j) <-
        (match c with
        | '%' -> dp.(j) || dp.(j - 1)
        | '_' -> !prev_diag
        | _ -> !prev_diag && c = s.[j - 1]);
      prev_diag := cur
    done
  done;
  dp.(sn)
