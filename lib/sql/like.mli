(** SQL [LIKE] pattern matching: ['%'] matches any sequence (possibly empty),
    ['_'] matches exactly one character.  No escape support — the workloads
    do not need it. *)

val matches : pattern:string -> string -> bool
