(** Predicate AST for selection operators (§2.2).

    A predicate is built from {e literals}: unary comparisons
    [col • arg] with [•] in [{=, <>, <, >, <=, >=, (not) in, (not) like}],
    and arithmetic comparisons [g(cols) ◦ arg] with [◦] in [{<, >, <=, >=}].
    Literals are combined with [AND]/[OR]/[NOT].

    Arguments are either constants or named {e parameters} ([$p]); the whole
    point of query-aware generation is to instantiate the parameters.  An
    environment maps parameter names to values (scalars, or value lists for
    [IN]). *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type arith =
  | Acol of string
  | Aconst of float
  | Aadd of arith * arith
  | Asub of arith * arith
  | Amul of arith * arith
  | Adiv of arith * arith

type operand =
  | Param of string
  | Const of Value.t
  | Const_list of Value.t list  (** only meaningful under [In] *)

type literal =
  | Cmp of { col : string; cmp : cmp; arg : operand }
  | In of { col : string; neg : bool; arg : operand }
  | Like of { col : string; neg : bool; arg : operand }
  | Arith_cmp of { expr : arith; cmp : cmp; arg : operand }
      (** [cmp] restricted to [{Lt; Le; Gt; Ge}] by construction in {!Parser}. *)

type t =
  | Lit of literal
  | And of t list
  | Or of t list
  | Not of t
  | True
  | False

(** Parameter environments. *)
module Env : sig
  type binding = Scalar of Value.t | Vlist of Value.t list
  type nonrec t

  val empty : t
  val add : string -> binding -> t -> t
  val add_scalar : string -> Value.t -> t -> t
  val of_list : (string * binding) list -> t
  val find : string -> t -> binding option
  val union : t -> t -> t
  (** Right-biased union. *)

  val bindings : t -> (string * binding) list
end

val eval : env:Env.t -> (string -> Value.t) -> t -> bool
(** [eval ~env lookup p] evaluates [p] on a row exposed as [lookup col].
    Unbound parameters raise [Invalid_argument]; comparisons involving [Null]
    are false (two-valued SQL-on-rows semantics, matching Table 3's use of
    NULL as an always-empty boundary). *)

val resolve_scalar : env:Env.t -> operand -> Value.t
(** The scalar an operand denotes under [env].
    @raise Invalid_argument on unbound parameters, list-bound parameters, or
    a [Const_list] operand. *)

val resolve_list : env:Env.t -> operand -> Value.t list
(** The value list an operand denotes under [env] (a scalar becomes a
    singleton).  @raise Invalid_argument on unbound parameters. *)

val cmp_holds : cmp -> int -> bool
(** Whether a three-way comparison result (à la [compare]) satisfies the
    comparator.  Exposed so compiled evaluators (the engine's vectorized
    executor) share the exact semantics of {!eval}. *)

val columns : t -> string list
(** Distinct column names mentioned, in first-appearance order. *)

val params : t -> string list
(** Distinct parameter names mentioned, in first-appearance order. *)

val arith_columns : arith -> string list

val cnf : t -> t list list
(** [cnf p] converts [p] to conjunctive normal form as a list of clauses,
    each clause being a list of literal-level predicates ([Lit] or
    [Not (Lit _)]).  [True]/[False] are simplified away ([cnf True = \[\]];
    [cnf False = \[\[\]\]]). *)

val negate_literal : literal -> literal option
(** The literal with its comparator flipped ([<] ↔ [>=], [in] ↔ [not in], …);
    [None] only for unsatisfiable/odd cases (none currently). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
