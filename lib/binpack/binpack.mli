(** Bin packing for CDF construction (§4.2, step 2).

    Each equality constraint [f_A(p) = k rows] is an item of size [k]; each
    CDF range [(p_i, p_j]] with [F_A(p_i, p_j) = c rows] is a bin of capacity
    [c].  The paper packs greedily: an item always goes to the feasible bin
    with the least slack ("best fit"), items considered largest-first. *)

type result = {
  assignment : int array;  (** bin index per item *)
  slack : int array;  (** remaining capacity per bin *)
}

val best_fit_decreasing :
  capacities:int array -> sizes:int array -> result option
(** [best_fit_decreasing ~capacities ~sizes] assigns every item to a bin so
    that no bin's capacity is exceeded, using best-fit over items in
    decreasing size order.  [None] when the greedy fails (the caller then
    applies the paper's fallbacks: parameter reuse or item splitting).
    Sizes and capacities must be non-negative. *)

val feasible : capacities:int array -> sizes:int array -> result -> bool
(** Validates a result against the instance (used by property tests). *)
