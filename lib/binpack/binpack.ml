type result = { assignment : int array; slack : int array }

let best_fit_decreasing ~capacities ~sizes =
  Array.iter (fun c -> if c < 0 then invalid_arg "Binpack: negative capacity") capacities;
  Array.iter (fun s -> if s < 0 then invalid_arg "Binpack: negative size") sizes;
  let n_items = Array.length sizes in
  let slack = Array.copy capacities in
  let assignment = Array.make n_items (-1) in
  (* items sorted by decreasing size, stable on index for determinism *)
  let order = Array.init n_items (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare sizes.(b) sizes.(a) with 0 -> compare a b | c -> c)
    order;
  let ok = ref true in
  Array.iter
    (fun item ->
      if !ok then begin
        (* best fit: feasible bin with minimal remaining slack *)
        let best = ref (-1) in
        Array.iteri
          (fun bin s ->
            if s >= sizes.(item) && (!best = -1 || s < slack.(!best)) then
              best := bin)
          slack;
        match !best with
        | -1 -> ok := false
        | bin ->
            assignment.(item) <- bin;
            slack.(bin) <- slack.(bin) - sizes.(item)
      end)
    order;
  if !ok then Some { assignment; slack } else None

let feasible ~capacities ~sizes r =
  let used = Array.make (Array.length capacities) 0 in
  let ok = ref (Array.length r.assignment = Array.length sizes) in
  Array.iteri
    (fun item bin ->
      if bin < 0 || bin >= Array.length capacities then ok := false
      else used.(bin) <- used.(bin) + sizes.(item))
    r.assignment;
  !ok
  && Array.for_all (fun x -> x) (Array.mapi (fun b u -> u <= capacities.(b)) used)
  && Array.for_all (fun x -> x)
       (Array.mapi (fun b s -> s = capacities.(b) - used.(b)) r.slack)
