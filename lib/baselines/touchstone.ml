module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Db = Mirage_engine.Db
module Rng = Mirage_util.Rng
module Workload = Mirage_core.Workload
module Extract = Mirage_core.Extract
module Ir = Mirage_core.Ir
module Keygen = Mirage_core.Keygen

let generate (w : Workload.t) ~ref_db ~prod_env ~seed =
  let t0 = Unix.gettimeofday () in
  let schema = w.Workload.w_schema in
  let rng = Rng.create seed in
  let supported_q, unsupported_q =
    List.partition
      (fun (q : Workload.query) -> Support.touchstone_supports schema q.Workload.q_plan)
      w.Workload.w_queries
  in
  let supported = { w with Workload.w_queries = supported_q } in
  let extraction = Extract.run supported ~ref_db ~prod_env in
  let ir = extraction.Extract.ir in
  let db = Db.create schema in
  (* --- non-keys: i.i.d. bootstrap from the production columns ---------- *)
  let columns_by_table = Hashtbl.create 16 in
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let n = Db.row_count ref_db tname in
      let trng = Rng.split rng in
      let nonkeys =
        List.map
          (fun (c : Schema.column) ->
            let src = Db.column ref_db tname c.Schema.cname in
            (c.Schema.cname, Array.init n (fun _ -> Rng.pick trng src)))
          tbl.Schema.nonkeys
      in
      let pk = Array.init n (fun i -> Value.Int (i + 1)) in
      let fks =
        List.map
          (fun (f : Schema.fk) -> (f.Schema.fk_col, Array.make n Value.Null))
          tbl.Schema.fks
      in
      let cols = ((tbl.Schema.pk, pk) :: nonkeys) @ fks in
      Hashtbl.replace columns_by_table tname cols;
      Db.put db tname cols)
    (Schema.tables schema)
  (* --- foreign keys: independent random marking per constraint --------- *);
  let failed_edges = ref [] in
  let edges =
    List.concat_map
      (fun (tbl : Schema.table) ->
        List.map
          (fun (f : Schema.fk) ->
            {
              Ir.e_pk_table = f.Schema.references;
              e_fk_table = tbl.Schema.tname;
              e_fk_col = f.Schema.fk_col;
            })
          tbl.Schema.fks)
      (Schema.tables schema)
  in
  List.iter
    (fun (edge : Ir.edge) ->
      let s_table = edge.Ir.e_pk_table and t_table = edge.Ir.e_fk_table in
      let n_s = Db.row_count db s_table and n_t = Db.row_count db t_table in
      let constraints =
        List.filter (fun (jc : Ir.join_constraint) -> jc.Ir.jc_edge = edge) ir.Ir.joins
        |> List.filter (fun jc -> jc.Ir.jc_jcc <> None)
      in
      let m = List.length constraints in
      let fk = Array.make n_t Value.Null in
      let s_pks = Db.column db s_table (Schema.table schema s_table).Schema.pk in
      if m = 0 then
        Array.iteri (fun i _ -> fk.(i) <- Rng.pick rng s_pks) fk
      else begin
        (* membership on both sides; subplan views that depend on an edge
           whose population failed are treated as empty *)
        let safe_membership table view =
          try Keygen.membership ~db ~env:prod_env ~table view
          with _ -> Mirage_engine.Col.Bitset.create (Db.row_count db table)
        in
        let constraints = Array.of_list constraints in
        let left_member =
          Array.map (fun jc -> safe_membership s_table jc.Ir.jc_left) constraints
        in
        let right_member =
          Array.map (fun jc -> safe_membership t_table jc.Ir.jc_right) constraints
        in
        (* random marking with a common per-row level: row i matches
           constraint k iff u_i < jcc_k/|Vr_k|.  The shared level keeps
           equal-view constraints nested (Touchstone's k-round sampling finds
           such consistent schemes on small workloads); rows still end up
           infeasible exactly where overlapping constraints genuinely
           disagree, which is what makes the scheme collapse as the number of
           queries grows. *)
        let vr_size = Array.map Mirage_engine.Col.Bitset.count right_member in
        let marked = Array.make n_t 0 in
        let levels = Array.init n_t (fun _ -> Rng.float rng 1.0) in
        Array.iteri
          (fun k (jc : Ir.join_constraint) ->
            let target = match jc.Ir.jc_jcc with Some n -> n | None -> 0 in
            let p =
              if vr_size.(k) = 0 then 0.0
              else float_of_int target /. float_of_int vr_size.(k)
            in
            for i = 0 to n_t - 1 do
              if Mirage_engine.Col.Bitset.get right_member.(k) i && levels.(i) < p
              then marked.(i) <- marked.(i) lor (1 lsl k)
            done)
          constraints;
        (* candidate PKs per (marking, membership) signature *)
        let s_vec =
          Array.init n_s (fun i ->
              let v = ref 0 in
              for k = 0 to m - 1 do
                if Mirage_engine.Col.Bitset.get left_member.(k) i then
                  v := !v lor (1 lsl k)
              done;
              !v)
        in
        let cand_cache = Hashtbl.create 64 in
        let candidates want avoid =
          match Hashtbl.find_opt cand_cache (want, avoid) with
          | Some c -> c
          | None ->
              let c = ref [] in
              for i = 0 to n_s - 1 do
                if s_vec.(i) land want = want && s_vec.(i) land avoid = 0 then
                  c := s_pks.(i) :: !c
              done;
              let arr = Array.of_list !c in
              Hashtbl.replace cand_cache (want, avoid) arr;
              arr
        in
        let failures = ref 0 in
        for i = 0 to n_t - 1 do
          let member = ref 0 in
          for k = 0 to m - 1 do
            if Mirage_engine.Col.Bitset.get right_member.(k) i then
              member := !member lor (1 lsl k)
          done;
          let want = marked.(i) in
          let avoid = !member land lnot want in
          let cands = candidates want avoid in
          if Array.length cands > 0 then fk.(i) <- Rng.pick rng cands
          else begin
            incr failures;
            fk.(i) <- Rng.pick rng s_pks
          end
        done;
        (* the scheme collapses when a noticeable fraction of rows found no
           compatible key (overlapping constraints from too many queries) *)
        if 100 * !failures > 10 * n_t then
          failed_edges := edge.Ir.e_fk_col :: !failed_edges
      end;
      let cols = Hashtbl.find columns_by_table t_table in
      let cols =
        List.map (fun (c, a) -> if c = edge.Ir.e_fk_col then (c, fk) else (c, a)) cols
      in
      Hashtbl.replace columns_by_table t_table cols;
      Db.put db t_table cols)
    edges;
  let failed = List.sort_uniq compare !failed_edges in
  let collapsed =
    List.concat_map (fun col -> Types.queries_on_edge w col) failed
  in
  {
    Types.b_db = db;
    b_env = prod_env;
    b_supported =
      List.filter
        (fun n -> not (List.mem n collapsed))
        (List.map (fun (q : Workload.query) -> q.Workload.q_name) supported_q);
    b_unsupported =
      List.map (fun (q : Workload.query) -> q.Workload.q_name) unsupported_q
      @ collapsed;
    b_failed_edges = failed;
    b_seconds = Unix.gettimeofday () -. t0;
  }
