type row = {
  r_name : string;
  r_selection : string;
  r_arith : bool;
  r_logical : string;
  r_equi : bool;
  r_anti : bool;
  r_outer : bool;
  r_semi : bool;
  r_fk_projection : bool;
  r_error : string;
  r_terabyte : bool;
  r_tpch_supported : int;
}

let count_tpch supports =
  let workload, _, _ = Mirage_workloads.Tpch.make ~sf:0.02 ~seed:1 in
  let schema = workload.Mirage_core.Workload.w_schema in
  List.length
    (List.filter
       (fun (q : Mirage_core.Workload.query) -> supports schema q.Mirage_core.Workload.q_plan)
       workload.Mirage_core.Workload.w_queries)

let table () =
  [
    (* literature rows (not implemented here) *)
    {
      r_name = "QAGen";
      r_selection = "arbitrary";
      r_arith = false;
      r_logical = "arbitrary";
      r_equi = true;
      r_anti = false;
      r_outer = false;
      r_semi = false;
      r_fk_projection = true;
      r_error = "zero";
      r_terabyte = false;
      r_tpch_supported = 13;
    };
    {
      r_name = "MyBenchmark";
      r_selection = "arbitrary";
      r_arith = false;
      r_logical = "arbitrary";
      r_equi = true;
      r_anti = false;
      r_outer = false;
      r_semi = false;
      r_fk_projection = true;
      r_error = "no guarantee";
      r_terabyte = false;
      r_tpch_supported = 13;
    };
    {
      r_name = "DCGen";
      r_selection = ">,>=,<,<=,=";
      r_arith = false;
      r_logical = "DNF";
      r_equi = true;
      r_anti = false;
      r_outer = false;
      r_semi = false;
      r_fk_projection = false;
      r_error = "low";
      r_terabyte = true;
      r_tpch_supported = 8;
    };
    (* implemented rows: TPC-H support measured against this repo's plans *)
    {
      r_name = "Hydra";
      r_selection = ">,>=,<,<=,=";
      r_arith = false;
      r_logical = "DNF";
      r_equi = true;
      r_anti = false;
      r_outer = false;
      r_semi = false;
      r_fk_projection = false;
      r_error = "zero";
      r_terabyte = true;
      r_tpch_supported = count_tpch Support.hydra_supports;
    };
    {
      r_name = "Touchstone";
      r_selection = "arbitrary";
      r_arith = true;
      r_logical = "simple";
      r_equi = true;
      r_anti = false;
      r_outer = false;
      r_semi = false;
      r_fk_projection = false;
      r_error = "no guarantee";
      r_terabyte = true;
      r_tpch_supported = count_tpch Support.touchstone_supports;
    };
    {
      r_name = "Mirage";
      r_selection = "arbitrary";
      r_arith = true;
      r_logical = "arbitrary";
      r_equi = true;
      r_anti = true;
      r_outer = true;
      r_semi = true;
      r_fk_projection = true;
      r_error = "zero";
      r_terabyte = true;
      r_tpch_supported = count_tpch Support.mirage_supports;
    };
  ]

let pp ppf rows =
  let b = function true -> "T" | false -> "F" in
  Fmt.pf ppf "%-12s %-12s %-6s %-10s %-5s %-5s %-6s %-5s %-8s %-13s %-9s %s@."
    "generator" "selection" "arith" "logical" "equi" "anti" "outer" "semi"
    "fk-proj" "error" "terabyte" "tpch";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-12s %-12s %-6s %-10s %-5s %-5s %-6s %-5s %-8s %-13s %-9s %d/22@."
        r.r_name r.r_selection (b r.r_arith) r.r_logical (b r.r_equi) (b r.r_anti)
        (b r.r_outer) (b r.r_semi) (b r.r_fk_projection) r.r_error (b r.r_terabyte)
        r.r_tpch_supported)
    rows
