(** Operator-support rules for the baseline generators (Table 1).

    The rules reproduce each system's documented capability envelope:
    - {e Touchstone} (Li et al., ATC'18): arbitrary predicates including
      arithmetic, but only simple logical combinations — no OR spanning a
      join — and only equi joins (no semi/anti; outer joins are attempted by
      treating the matched part).  FK projections are ignored rather than
      fatal.
    - {e Hydra} (Sanghi et al., EDBT'18): DNF over [{>, ≥, <, ≤, =}] on
      numeric columns (string ranges unsupported), equi joins only, no
      arithmetic predicates, no LIKE, no FK projection. *)

val touchstone_supports : Mirage_sql.Schema.t -> Mirage_relalg.Plan.t -> bool
val hydra_supports : Mirage_sql.Schema.t -> Mirage_relalg.Plan.t -> bool

val mirage_supports : Mirage_sql.Schema.t -> Mirage_relalg.Plan.t -> bool
(** Always true for the operator classes in this repository. *)
