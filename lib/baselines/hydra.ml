module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Db = Mirage_engine.Db
module Rng = Mirage_util.Rng
module Toposort = Mirage_util.Toposort
module Plan = Mirage_relalg.Plan
module Workload = Mirage_core.Workload
module Extract = Mirage_core.Extract
module Ir = Mirage_core.Ir
module Keygen = Mirage_core.Keygen

let generate (w : Workload.t) ~ref_db ~prod_env ~seed =
  let t0 = Unix.gettimeofday () in
  let schema = w.Workload.w_schema in
  let rng = Rng.create seed in
  let supported_q, unsupported_q =
    List.partition
      (fun (q : Workload.query) -> Support.hydra_supports schema q.Workload.q_plan)
      w.Workload.w_queries
  in
  let supported = { w with Workload.w_queries = supported_q } in
  let extraction = Extract.run supported ~ref_db ~prod_env in
  let ir = extraction.Extract.ir in
  let db = Db.create schema in
  let columns_by_table = Hashtbl.create 16 in
  (* --- selections: region LP per table --------------------------------- *)
  List.iter
    (fun (tbl : Schema.table) ->
      let tname = tbl.Schema.tname in
      let n = Db.row_count ref_db tname in
      let sccs =
        List.filter (fun (s : Ir.scc) -> s.Ir.scc_table = tname) ir.Ir.sccs
      in
      let preds = Array.of_list (List.map (fun (s : Ir.scc) -> s.Ir.scc_pred) sccs) in
      let m = Array.length preds in
      let nonkey_names = List.map (fun (c : Schema.column) -> c.Schema.cname) tbl.Schema.nonkeys in
      let src = List.map (fun c -> (c, Db.column ref_db tname c)) nonkey_names in
      (* sign pattern of every production row over the predicates *)
      let region_of = Hashtbl.create 64 in
      for i = 0 to n - 1 do
        let lookup c =
          match List.assoc_opt c src with
          | Some a -> a.(i)
          | None -> Value.Null
        in
        let sig_ = ref 0 in
        for k = 0 to m - 1 do
          if Pred.eval ~env:prod_env lookup preds.(k) then sig_ := !sig_ lor (1 lsl k)
        done;
        let reps, count =
          try Hashtbl.find region_of !sig_ with Not_found -> (i, 0)
        in
        Hashtbl.replace region_of !sig_ (reps, count + 1)
      done;
      let regions =
        Hashtbl.fold (fun s (rep, count) acc -> (s, rep, count) :: acc) region_of []
        |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
        |> Array.of_list
      in
      let nr = Array.length regions in
      (* Hydra "divides query aware generation into several LP tasks ...
         processed independently and then combined into a single solution"
         (§7 of the paper): one LP task per source query over the shared
         region space; the merged (averaged) solution is what introduces its
         slender deviations. *)
      let sources =
        List.sort_uniq compare (List.map (fun (s : Ir.scc) -> s.Ir.scc_source) sccs)
      in
      let solve_group group =
        let gm = List.length group in
        let a = Array.make_matrix (gm + 1) nr 0.0 in
        let b = Array.make (gm + 1) 0.0 in
        List.iteri
          (fun row (s : Ir.scc) ->
            let k =
              (* index of this scc among all sccs: its bit in the signature *)
              let rec find i = function
                | [] -> -1
                | s' :: rest -> if s' == s then i else find (i + 1) rest
              in
              find 0 sccs
            in
            Array.iteri
              (fun r (sig_, _, _) -> if sig_ land (1 lsl k) <> 0 then a.(row).(r) <- 1.0)
              regions;
            b.(row) <- float_of_int s.Ir.scc_rows)
          group;
        Array.iteri (fun r _ -> a.(gm).(r) <- 1.0) regions;
        b.(gm) <- float_of_int n;
        Mirage_lp.Lp.feasible_point ~a ~b ()
      in
      let solutions =
        List.filter_map
          (fun src ->
            solve_group (List.filter (fun (s : Ir.scc) -> s.Ir.scc_source = src) sccs))
          sources
      in
      (* the combination step: Hydra reconciles the per-task solutions with
         the global system; we blend the joint solution (when one exists)
         with the task average, which leaves the paper's "slender
         deviations" *)
      let joint =
        let a = Array.make_matrix (m + 1) nr 0.0 in
        let b = Array.make (m + 1) 0.0 in
        List.iteri
          (fun k (s : Ir.scc) ->
            Array.iteri
              (fun r (sig_, _, _) -> if sig_ land (1 lsl k) <> 0 then a.(k).(r) <- 1.0)
              regions;
            b.(k) <- float_of_int s.Ir.scc_rows)
          sccs;
        Array.iteri (fun r _ -> a.(m).(r) <- 1.0) regions;
        b.(m) <- float_of_int n;
        Mirage_lp.Lp.feasible_point ~a ~b ()
      in
      let sizes =
        match (solutions, joint) with
        | [], None -> Array.map (fun (_, _, c) -> c) regions
        | [], Some j -> Mirage_lp.Lp.round_preserving_sum j ~total:n
        | _ :: _, _ ->
            let avg =
              Array.init nr (fun r ->
                  List.fold_left (fun acc x -> acc +. x.(r)) 0.0 solutions
                  /. float_of_int (List.length solutions))
            in
            let merged =
              match joint with
              | Some j -> Array.init nr (fun r -> (0.8 *. j.(r)) +. (0.2 *. avg.(r)))
              | None -> avg
            in
            Mirage_lp.Lp.round_preserving_sum merged ~total:n
      in
      (* materialise: replicate a production representative per region *)
      let nonkeys =
        List.map (fun c -> (c, Array.make n Value.Null)) nonkey_names
      in
      let cursor = ref 0 in
      Array.iteri
        (fun r (_, rep, _) ->
          for _ = 1 to sizes.(r) do
            if !cursor < n then begin
              List.iter
                (fun (c, dst) -> dst.(!cursor) <- (List.assoc c src).(rep))
                nonkeys;
              incr cursor
            end
          done)
        regions;
      (* pad any rounding gap with the first representative *)
      while !cursor < n do
        List.iter
          (fun (c, dst) ->
            dst.(!cursor) <- (match regions with [||] -> Value.Null | _ ->
              let _, rep, _ = regions.(0) in
              (List.assoc c src).(rep)))
          nonkeys;
        incr cursor
      done;
      let pk = Array.init n (fun i -> Value.Int (i + 1)) in
      let fks =
        List.map
          (fun (f : Schema.fk) -> (f.Schema.fk_col, Array.make n Value.Null))
          tbl.Schema.fks
      in
      let cols = ((tbl.Schema.pk, pk) :: nonkeys) @ fks in
      Hashtbl.replace columns_by_table tname cols;
      Db.put db tname cols)
    (Schema.tables schema);
  (* --- joins: per-edge CP population (alignment) ------------------------ *)
  let edges =
    List.concat_map
      (fun (tbl : Schema.table) ->
        List.map
          (fun (f : Schema.fk) ->
            {
              Ir.e_pk_table = f.Schema.references;
              e_fk_table = tbl.Schema.tname;
              e_fk_col = f.Schema.fk_col;
            })
          tbl.Schema.fks)
      (Schema.tables schema)
  in
  let edge_id (e : Ir.edge) = e.Ir.e_fk_table ^ "." ^ e.Ir.e_fk_col in
  let order_edges =
    List.concat_map
      (fun e_b ->
        let cs = List.filter (fun jc -> jc.Ir.jc_edge = e_b) ir.Ir.joins in
        let uses_fk (jc : Ir.join_constraint) col =
          let rec plan_uses = function
            | Plan.Table _ -> false
            | Plan.Select (_, q) | Plan.Project { input = q; _ }
            | Plan.Aggregate { input = q; _ } ->
                plan_uses q
            | Plan.Join { fk_col = c; left; right; _ } ->
                c = col || plan_uses left || plan_uses right
          in
          let view_uses = function
            | Ir.Cv_subplan { cv_plan; _ } -> plan_uses cv_plan
            | Ir.Cv_full _ | Ir.Cv_select _ -> false
          in
          view_uses jc.Ir.jc_left || view_uses jc.Ir.jc_right
        in
        List.filter_map
          (fun e_a ->
            if e_a <> e_b && List.exists (fun jc -> uses_fk jc e_a.Ir.e_fk_col) cs
            then Some (edge_id e_a, edge_id e_b)
            else None)
          edges)
      edges
  in
  let sorted =
    Toposort.sort ~vertices:(List.map edge_id edges) ~edges:order_edges
  in
  let times = Keygen.fresh_times () in
  List.iter
    (fun id ->
      let edge = List.find (fun e -> edge_id e = id) edges in
      let constraints = List.filter (fun jc -> jc.Ir.jc_edge = edge) ir.Ir.joins in
      let t_table = edge.Ir.e_fk_table in
      let n_t = Db.row_count db t_table in
      let s_pks =
        Db.column db edge.Ir.e_pk_table (Schema.table schema edge.Ir.e_pk_table).Schema.pk
      in
      let fk =
        if constraints = [] then Array.init n_t (fun _ -> Rng.pick rng s_pks)
        else
          match
            Keygen.populate_edge ~rng:(Rng.split rng) ~db ~env:prod_env ~edge
              ~constraints ~batch_size:10_000_000 ~cp_max_nodes:500_000 ~times ()
          with
          | Ok (fk, _) ->
              Array.init (Mirage_engine.Col.Ivec.length fk) (fun i ->
                  Value.Int (Mirage_engine.Col.Ivec.get fk i))
          | Error _ -> Array.init n_t (fun _ -> Rng.pick rng s_pks)
      in
      let cols = Hashtbl.find columns_by_table t_table in
      let cols =
        List.map (fun (c, a) -> if c = edge.Ir.e_fk_col then (c, fk) else (c, a)) cols
      in
      Hashtbl.replace columns_by_table t_table cols;
      Db.put db t_table cols)
    sorted;
  {
    Types.b_db = db;
    b_env = prod_env;
    b_supported = List.map (fun (q : Workload.query) -> q.Workload.q_name) supported_q;
    b_unsupported =
      List.map (fun (q : Workload.query) -> q.Workload.q_name) unsupported_q;
    b_failed_edges = [];
    b_seconds = Unix.gettimeofday () -. t0;
  }
