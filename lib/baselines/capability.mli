(** Table 1: operator supportability of query-aware generators.

    The implemented systems' rows (Touchstone, Hydra, Mirage) are computed
    by probing their support rules against this repository's TPC-H
    templates; QAGen / MyBenchmark / DCGen rows are the literature values
    reproduced for context. *)

type row = {
  r_name : string;
  r_selection : string;  (** predicate classes *)
  r_arith : bool;
  r_logical : string;
  r_equi : bool;
  r_anti : bool;
  r_outer : bool;
  r_semi : bool;
  r_fk_projection : bool;
  r_error : string;  (** theoretical relative-error guarantee *)
  r_terabyte : bool;  (** scalable / batch generation *)
  r_tpch_supported : int;  (** of the 22 TPC-H queries *)
}

val table : unit -> row list
(** Recomputes the TPC-H support counts for the implemented generators. *)

val pp : Format.formatter -> row list -> unit
