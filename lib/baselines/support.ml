module Features = Mirage_workloads.Features

let touchstone_supports schema plan =
  let f = Features.of_plan schema plan in
  not (f.Features.f_or_across_join || f.Features.f_semi_join || f.Features.f_anti_join)

let hydra_supports schema plan =
  let f = Features.of_plan schema plan in
  not
    (f.Features.f_arith || f.Features.f_like || f.Features.f_string_range
   || f.Features.f_outer_join || f.Features.f_semi_join || f.Features.f_anti_join
   || f.Features.f_or_across_join || f.Features.f_fk_projection)

let mirage_supports _schema _plan = true
