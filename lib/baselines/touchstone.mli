(** Touchstone-style baseline (Li et al., USENIX ATC'18).

    Reimplements the approach's behavioural profile rather than its code
    (see DESIGN.md): non-key columns are drawn i.i.d. from the production
    columns' empirical distributions (random-sampling generation keeps
    production parameter values meaningful but reproduces counts only up to
    multinomial noise — the "no theoretical guarantee, low error" row of
    Table 1), and foreign keys are populated by randomly marking each join
    constraint's matched rows independently, then searching for a primary
    key compatible with all markings.  When overlapping constraints leave a
    row with no compatible key the scheme collapses for that FK column —
    the failure mode the paper observes on TPC-DS beyond ~25 queries. *)

val generate :
  Mirage_core.Workload.t ->
  ref_db:Mirage_engine.Db.t ->
  prod_env:Mirage_sql.Pred.Env.t ->
  seed:int ->
  Types.result
