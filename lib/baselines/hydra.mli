(** Hydra-style baseline (Sanghi et al., EDBT'18 / DCGen lineage).

    Region-based linear programming: each table's rows are partitioned into
    regions by the sign pattern of the supported selection predicates; an LP
    finds region sizes matching every selection cardinality, which are
    rounded to integers (the source of Hydra's characteristic "slender
    deviations" when its independently-solved LP tasks are merged) and
    materialised by replicating a production representative row per region.
    Foreign keys are populated per equi-join constraint with the same
    CP machinery Mirage uses (Hydra's alignment step).  Unsupported
    operator classes — arithmetic predicates, LIKE, string ranges, non-equi
    joins, FK projections — make a query score 100% (Table 1). *)

val generate :
  Mirage_core.Workload.t ->
  ref_db:Mirage_engine.Db.t ->
  prod_env:Mirage_sql.Pred.Env.t ->
  seed:int ->
  Types.result
