(** Common result shape for baseline generators. *)

type result = {
  b_db : Mirage_engine.Db.t;
  b_env : Mirage_sql.Pred.Env.t;
  b_supported : string list;  (** query names the generator attempted *)
  b_unsupported : string list;  (** scored as 100% error (Fig. 11) *)
  b_failed_edges : string list;
      (** FK columns whose population scheme collapsed (Touchstone on large
          workloads); queries touching them are scored as unsupported *)
  b_seconds : float;
}

let queries_on_edge (w : Mirage_core.Workload.t) edge_col =
  List.filter_map
    (fun (q : Mirage_core.Workload.query) ->
      let uses = ref false in
      let rec go = function
        | Mirage_relalg.Plan.Table _ -> ()
        | Mirage_relalg.Plan.Select (_, p)
        | Mirage_relalg.Plan.Project { input = p; _ }
        | Mirage_relalg.Plan.Aggregate { input = p; _ } ->
            go p
        | Mirage_relalg.Plan.Join { fk_col; left; right; _ } ->
            if fk_col = edge_col then uses := true;
            go left;
            go right
      in
      go q.Mirage_core.Workload.q_plan;
      if !uses then Some q.Mirage_core.Workload.q_name else None)
    w.Mirage_core.Workload.w_queries
