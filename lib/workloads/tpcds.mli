(** TPC-DS-style snowstorm workload: 3 fact tables (store / catalog / web
    sales) over 6 dimensions, and 100 distinct queries generated from 20
    parameterised families (5 instances each — the grouping granularity the
    paper uses in Fig. 11c).  Eleven families carry disjunctive predicates
    (55 queries), which is what separates the baselines' support levels on
    this workload; all joins are equi joins, so the key generator sees only
    JCC constraints (as the paper notes for TPC-DS in Fig. 15).

    See DESIGN.md for why this stands in for the official 100-query set. *)

val name : string

val make :
  sf:float ->
  seed:int ->
  Mirage_core.Workload.t * Mirage_engine.Db.t * Mirage_sql.Pred.Env.t
