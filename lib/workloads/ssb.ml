module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Parser = Mirage_sql.Parser
module Plan = Mirage_relalg.Plan
module Workload = Mirage_core.Workload

let name = "ssb"

let col n d k = { Schema.cname = n; domain_size = d; kind = k }
let fk c r = { Schema.fk_col = c; references = r }

let scale sf n = max 4 (int_of_float (float_of_int n *. sf))

let schema ~sf =
  Schema.make
    [
      {
        Schema.tname = "ddate";
        pk = "d_datekey";
        nonkeys =
          [
            col "d_year" 7 Schema.Kint;
            col "d_yearmonthnum" 84 Schema.Kint;
            col "d_weeknuminyear" 53 Schema.Kint;
            col "d_sellingseason" 5 Schema.Kstring;
          ];
        fks = [];
        row_count = 400;
      };
      {
        Schema.tname = "customer";
        pk = "c_custkey";
        nonkeys =
          [
            col "c_region" 5 Schema.Kstring;
            col "c_nation" 25 Schema.Kstring;
            col "c_city" 50 Schema.Kstring;
            col "c_mktsegment" 5 Schema.Kstring;
          ];
        fks = [];
        row_count = scale sf 600;
      };
      {
        Schema.tname = "supplier";
        pk = "s_suppkey";
        nonkeys =
          [
            col "s_region" 5 Schema.Kstring;
            col "s_nation" 25 Schema.Kstring;
            col "s_city" 50 Schema.Kstring;
          ];
        fks = [];
        row_count = scale sf 200;
      };
      {
        Schema.tname = "part";
        pk = "p_partkey";
        nonkeys =
          [
            col "p_mfgr" 5 Schema.Kstring;
            col "p_category" 25 Schema.Kstring;
            col "p_brand1" 250 Schema.Kstring;
          ];
        fks = [];
        row_count = scale sf 500;
      };
      {
        Schema.tname = "lineorder";
        pk = "lo_orderkey";
        nonkeys =
          [
            col "lo_quantity" 50 Schema.Kint;
            col "lo_discount" 11 Schema.Kint;
            col "lo_extendedprice" 1000 Schema.Kint;
            col "lo_revenue" 1000 Schema.Kint;
          ];
        fks =
          [
            fk "lo_custkey" "customer";
            fk "lo_suppkey" "supplier";
            fk "lo_partkey" "part";
            fk "lo_orderdate" "ddate";
          ];
        row_count = scale sf 6000;
      };
    ]

let specs =
  [
    ( "ddate",
      [
        ("d_sellingseason", Refgen.Cat_string ("SEASON", 5));
      ] );
    ( "customer",
      [
        ("c_region", Refgen.Cat_string ("REGION", 5));
        ("c_nation", Refgen.Cat_string ("NATION", 25));
        ("c_city", Refgen.Cat_string ("CITY", 50));
        ("c_mktsegment", Refgen.Cat_string ("SEGMENT", 5));
      ] );
    ( "supplier",
      [
        ("s_region", Refgen.Cat_string ("REGION", 5));
        ("s_nation", Refgen.Cat_string ("NATION", 25));
        ("s_city", Refgen.Cat_string ("CITY", 50));
      ] );
    ( "part",
      [
        ("p_mfgr", Refgen.Cat_string ("MFGR", 5));
        ("p_category", Refgen.Cat_string ("CAT", 25));
        ("p_brand1", Refgen.Cat_string ("BRAND", 250));
      ] );
    ( "lineorder",
      [
        ("lo_quantity", Refgen.Uniform_int 50);
        ("lo_discount", Refgen.Uniform_int 11);
        ("lo_extendedprice", Refgen.Skewed_int (1000, 1.5));
        ("lo_revenue", Refgen.Skewed_int (1000, 1.5));
      ] );
  ]

(* plan helpers *)
let sel s plan = Plan.Select (Parser.pred s, plan)
let t n = Plan.Table n

let join ?(jt = Plan.Inner) pk_table fk_col left right =
  Plan.Join { jt; pk_table; fk_table = "lineorder"; fk_col; left; right }

let cat n = Value.Str (Printf.sprintf "CAT#%05d" n)
let reg n = Value.Str (Printf.sprintf "REGION#%05d" n)
let nat n = Value.Str (Printf.sprintf "NATION#%05d" n)
let city n = Value.Str (Printf.sprintf "CITY#%05d" n)
let brand n = Value.Str (Printf.sprintf "BRAND#%05d" n)
let mfgr n = Value.Str (Printf.sprintf "MFGR#%05d" n)

let scalar v = Pred.Env.Scalar v
let vlist vs = Pred.Env.Vlist vs
let int n = scalar (Value.Int n)

(* Flight 1: lineorder ⋈ ddate with quantity/discount filters. *)
let q1_1 =
  join "ddate" "lo_orderdate"
    (sel "d_year = $s11_year" (t "ddate"))
    (sel "lo_discount >= $s11_dlo and lo_discount <= $s11_dhi and lo_quantity < $s11_q"
       (t "lineorder"))

let q1_2 =
  join "ddate" "lo_orderdate"
    (sel "d_yearmonthnum = $s12_ym" (t "ddate"))
    (sel
       "lo_discount >= $s12_dlo and lo_discount <= $s12_dhi and lo_quantity >= $s12_qlo and lo_quantity <= $s12_qhi"
       (t "lineorder"))

let q1_3 =
  join "ddate" "lo_orderdate"
    (sel "d_weeknuminyear = $s13_wk and d_year = $s13_year" (t "ddate"))
    (sel
       "lo_discount >= $s13_dlo and lo_discount <= $s13_dhi and lo_quantity >= $s13_qlo and lo_quantity <= $s13_qhi"
       (t "lineorder"))

(* Flight 2: part and supplier dimensions. *)
let flight2 ~part_pred ~supp_pred =
  let j1 = join "ddate" "lo_orderdate" (t "ddate") (t "lineorder") in
  let j2 = join "supplier" "lo_suppkey" (sel supp_pred (t "supplier")) j1 in
  join "part" "lo_partkey" (sel part_pred (t "part")) j2

let q2_1 = flight2 ~part_pred:"p_category = $s21_cat" ~supp_pred:"s_region = $s21_reg"

let q2_2 =
  flight2
    ~part_pred:"p_brand1 >= $s22_blo and p_brand1 <= $s22_bhi"
    ~supp_pred:"s_region = $s22_reg"

let q2_3 = flight2 ~part_pred:"p_brand1 = $s23_b" ~supp_pred:"s_region = $s23_reg"

(* Flight 3: customer and supplier with date ranges. *)
let flight3 ~cust_pred ~supp_pred ~date_pred =
  let j1 = join "ddate" "lo_orderdate" (sel date_pred (t "ddate")) (t "lineorder") in
  let j2 = join "supplier" "lo_suppkey" (sel supp_pred (t "supplier")) j1 in
  join "customer" "lo_custkey" (sel cust_pred (t "customer")) j2

let q3_1 =
  flight3 ~cust_pred:"c_region = $s31_creg" ~supp_pred:"s_region = $s31_sreg"
    ~date_pred:"d_year >= $s31_ylo and d_year <= $s31_yhi"

let q3_2 =
  flight3 ~cust_pred:"c_nation = $s32_cnat" ~supp_pred:"s_nation = $s32_snat"
    ~date_pred:"d_year >= $s32_ylo and d_year <= $s32_yhi"

let q3_3 =
  flight3 ~cust_pred:"c_city in $s33_ccity" ~supp_pred:"s_city in $s33_scity"
    ~date_pred:"d_year >= $s33_ylo and d_year <= $s33_yhi"

let q3_4 =
  flight3 ~cust_pred:"c_city in $s34_ccity" ~supp_pred:"s_city in $s34_scity"
    ~date_pred:"d_yearmonthnum = $s34_ym"

(* Flight 4: all four dimensions. *)
let flight4 ~cust_pred ~supp_pred ~part_pred ~date_pred =
  let j1 = join "ddate" "lo_orderdate" (sel date_pred (t "ddate")) (t "lineorder") in
  let j2 = join "supplier" "lo_suppkey" (sel supp_pred (t "supplier")) j1 in
  let j3 = join "customer" "lo_custkey" (sel cust_pred (t "customer")) j2 in
  join "part" "lo_partkey" (sel part_pred (t "part")) j3

let q4_1 =
  flight4 ~cust_pred:"c_region = $s41_creg" ~supp_pred:"s_region = $s41_sreg"
    ~part_pred:"p_mfgr in $s41_mfgr" ~date_pred:"d_year >= $s41_ylo"

let q4_2 =
  flight4 ~cust_pred:"c_region = $s42_creg" ~supp_pred:"s_region = $s42_sreg"
    ~part_pred:"p_mfgr in $s42_mfgr"
    ~date_pred:"d_year >= $s42_ylo and d_year <= $s42_yhi"

let q4_3 =
  flight4 ~cust_pred:"c_region = $s43_creg" ~supp_pred:"s_nation = $s43_snat"
    ~part_pred:"p_category = $s43_cat"
    ~date_pred:"d_year >= $s43_ylo and d_year <= $s43_yhi"

let prod_env =
  Pred.Env.of_list
    [
      ("s11_year", int 3);
      ("s11_dlo", int 2);
      ("s11_dhi", int 4);
      ("s11_q", int 25);
      ("s12_ym", int 23);
      ("s12_dlo", int 4);
      ("s12_dhi", int 6);
      ("s12_qlo", int 26);
      ("s12_qhi", int 35);
      ("s13_wk", int 6);
      ("s13_year", int 3);
      ("s13_dlo", int 5);
      ("s13_dhi", int 7);
      ("s13_qlo", int 26);
      ("s13_qhi", int 35);
      ("s21_cat", scalar (cat 12));
      ("s21_reg", scalar (reg 2));
      ("s22_blo", scalar (brand 60));
      ("s22_bhi", scalar (brand 68));
      ("s22_reg", scalar (reg 3));
      ("s23_b", scalar (brand 140));
      ("s23_reg", scalar (reg 4));
      ("s31_creg", scalar (reg 2));
      ("s31_sreg", scalar (reg 2));
      ("s31_ylo", int 2);
      ("s31_yhi", int 6);
      ("s32_cnat", scalar (nat 10));
      ("s32_snat", scalar (nat 10));
      ("s32_ylo", int 2);
      ("s32_yhi", int 6);
      ("s33_ccity", vlist [ city 11; city 15 ]);
      ("s33_scity", vlist [ city 11; city 15 ]);
      ("s33_ylo", int 2);
      ("s33_yhi", int 6);
      ("s34_ccity", vlist [ city 11; city 15 ]);
      ("s34_scity", vlist [ city 11; city 15 ]);
      ("s34_ym", int 42);
      ("s41_creg", scalar (reg 1));
      ("s41_sreg", scalar (reg 1));
      ("s41_mfgr", vlist [ mfgr 1; mfgr 2 ]);
      ("s41_ylo", int 2);
      ("s42_creg", scalar (reg 1));
      ("s42_sreg", scalar (reg 1));
      ("s42_mfgr", vlist [ mfgr 1; mfgr 2 ]);
      ("s42_ylo", int 5);
      ("s42_yhi", int 6);
      ("s43_creg", scalar (reg 1));
      ("s43_snat", scalar (nat 20));
      ("s43_cat", scalar (cat 3));
      ("s43_ylo", int 5);
      ("s43_yhi", int 6);
    ]

let queries =
  [
    ("ssb_q1.1", q1_1);
    ("ssb_q1.2", q1_2);
    ("ssb_q1.3", q1_3);
    ("ssb_q2.1", q2_1);
    ("ssb_q2.2", q2_2);
    ("ssb_q2.3", q2_3);
    ("ssb_q3.1", q3_1);
    ("ssb_q3.2", q3_2);
    ("ssb_q3.3", q3_3);
    ("ssb_q3.4", q3_4);
    ("ssb_q4.1", q4_1);
    ("ssb_q4.2", q4_2);
    ("ssb_q4.3", q4_3);
  ]

let make ~sf ~seed =
  let schema = schema ~sf in
  let workload =
    Workload.make schema
      (List.map (fun (n, p) -> { Workload.q_name = n; q_plan = p }) queries)
  in
  let ref_db = Refgen.build ~seed schema ~specs in
  (workload, ref_db, prod_env)
