(** Star Schema Benchmark (SSB): 5 tables, 13 queries in 4 flights
    (O'Neil et al.), authored as annotated-query-template plans.

    Base scale ([sf = 1.0]) is laptop-sized: 6 000 lineorder rows; [sf]
    scales the facts and the large dimensions linearly. *)

val name : string

val make :
  sf:float ->
  seed:int ->
  Mirage_core.Workload.t * Mirage_engine.Db.t * Mirage_sql.Pred.Env.t
(** Returns the workload (schema + 13 query plans), a freshly generated
    production database, and the production parameter values. *)
