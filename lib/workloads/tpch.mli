(** TPC-H: 8 tables and all 22 queries authored as cardinality-relevant
    plan templates — including the operator classes that defeat prior QAGs:
    arithmetic predicates (Q4, Q11, Q12, Q21), LIKE patterns (Q2, Q8, Q9,
    Q13, Q16, Q20), IN lists (Q5, Q7, Q12, Q16, Q19, Q22), left outer join
    (Q13), semi joins (Q4, Q17, Q18, Q20), anti joins (Q21, Q22), an OR
    predicate across a join (Q19) and a projection on a foreign key (Q16).

    Aggregations, ORDER BY and correlated scalar subqueries do not constrain
    operator cardinalities and are modelled by their cardinality-relevant
    skeletons (semi/anti joins and arithmetic filters), mirroring how the
    paper's workload parser reduces execution traces to annotated query
    templates.

    Base scale [sf = 1.0] is 1/100 of the official SF-1 database (60 000
    lineitem rows). *)

val name : string

val make :
  sf:float ->
  seed:int ->
  Mirage_core.Workload.t * Mirage_engine.Db.t * Mirage_sql.Pred.Env.t
