module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Parser = Mirage_sql.Parser
module Plan = Mirage_relalg.Plan
module Workload = Mirage_core.Workload

let name = "tpcds"

let col n d k = { Schema.cname = n; domain_size = d; kind = k }
let fk c r = { Schema.fk_col = c; references = r }
let scale sf n = max 4 (int_of_float (float_of_int n *. sf))

let schema ~sf =
  Schema.make
    [
      {
        Schema.tname = "dd";
        pk = "d_datekey";
        nonkeys =
          [ col "d_year" 6 Schema.Kint; col "d_moy" 12 Schema.Kint; col "d_qoy" 4 Schema.Kint ];
        fks = [];
        row_count = 500;
      };
      {
        Schema.tname = "it";
        pk = "i_itemkey";
        nonkeys =
          [
            col "i_category" 10 Schema.Kstring;
            col "i_brand" 100 Schema.Kstring;
            col "i_class" 50 Schema.Kstring;
            col "i_color" 40 Schema.Kstring;
          ];
        fks = [];
        row_count = scale sf 1000;
      };
      {
        Schema.tname = "ca";
        pk = "ca_addrkey";
        nonkeys = [ col "ca_state" 50 Schema.Kstring; col "ca_gmt" 10 Schema.Kint ];
        fks = [];
        row_count = scale sf 800;
      };
      {
        Schema.tname = "cu";
        pk = "cu_custkey";
        nonkeys =
          [
            col "cu_gender" 2 Schema.Kstring;
            col "cu_education" 7 Schema.Kstring;
            col "cu_credit" 4 Schema.Kstring;
            col "cu_income" 1000 Schema.Kint;
          ];
        fks = [ fk "cu_addrkey" "ca" ];
        row_count = scale sf 2000;
      };
      {
        Schema.tname = "st";
        pk = "st_storekey";
        nonkeys = [ col "st_state" 30 Schema.Kstring; col "st_size" 900 Schema.Kint ];
        fks = [];
        row_count = scale sf 100;
      };
      {
        Schema.tname = "wh";
        pk = "wh_whkey";
        nonkeys = [ col "wh_state" 30 Schema.Kstring ];
        fks = [];
        row_count = scale sf 50;
      };
      {
        Schema.tname = "ss";
        pk = "ss_salekey";
        nonkeys =
          [
            col "ss_quantity" 100 Schema.Kint;
            col "ss_price" 1000 Schema.Kint;
            col "ss_discount" 100 Schema.Kint;
          ];
        fks =
          [
            fk "ss_datekey" "dd"; fk "ss_itemkey" "it"; fk "ss_custkey" "cu";
            fk "ss_storekey" "st";
          ];
        row_count = scale sf 20000;
      };
      {
        Schema.tname = "cs";
        pk = "cs_salekey";
        nonkeys = [ col "cs_quantity" 100 Schema.Kint; col "cs_price" 1000 Schema.Kint ];
        fks =
          [
            fk "cs_datekey" "dd"; fk "cs_itemkey" "it"; fk "cs_custkey" "cu";
            fk "cs_whkey" "wh";
          ];
        row_count = scale sf 12000;
      };
      {
        Schema.tname = "ws";
        pk = "ws_salekey";
        nonkeys = [ col "ws_quantity" 100 Schema.Kint; col "ws_price" 1000 Schema.Kint ];
        fks = [ fk "ws_datekey" "dd"; fk "ws_itemkey" "it"; fk "ws_custkey" "cu" ];
        row_count = scale sf 8000;
      };
    ]

let specs =
  [
    ( "it",
      [
        ("i_category", Refgen.Cat_string ("CATEGORY", 10));
        ("i_brand", Refgen.Cat_string ("BRAND", 100));
        ("i_class", Refgen.Cat_string ("CLASS", 50));
        ("i_color", Refgen.Cat_string ("COLOR", 40));
      ] );
    ("ca", [ ("ca_state", Refgen.Cat_string ("STATE", 50)) ]);
    ( "cu",
      [
        ("cu_gender", Refgen.Cat_string ("GENDER", 2));
        ("cu_education", Refgen.Cat_string ("EDU", 7));
        ("cu_credit", Refgen.Cat_string ("CREDIT", 4));
        ("cu_income", Refgen.Uniform_int 1000);
      ] );
    ("st", [ ("st_state", Refgen.Cat_string ("STATE", 30)) ]);
    ("wh", [ ("wh_state", Refgen.Cat_string ("STATE", 30)) ]);
  ]

let sel s plan = Plan.Select (Parser.pred s, plan)
let t n = Plan.Table n

let j pk_table fk_table fk_col left right =
  Plan.Join { jt = Plan.Inner; pk_table; fk_table; fk_col; left; right }

let cat pfx n = Value.Str (Printf.sprintf "%s#%05d" pfx n)
let scalar v = Pred.Env.Scalar v
let vlist vs = Pred.Env.Vlist vs
let int n = scalar (Value.Int n)

(* One family = a plan builder over a parameter prefix, plus the production
   bindings for instance [inst] (1..5). *)
type family = {
  fam_id : int;
  build : string -> Plan.t;  (** prefix -> plan *)
  bindings : string -> int -> (string * Pred.Env.binding) list;
}

let families : family list =
  [
    {
      fam_id = 1;
      build =
        (fun p ->
          j "dd" "ss" "ss_datekey"
            (sel (Printf.sprintf "d_year = $%s_y" p) (t "dd"))
            (sel (Printf.sprintf "ss_quantity < $%s_q" p) (t "ss")));
      bindings =
        (fun p inst -> [ (p ^ "_y", int (1 + (inst mod 6))); (p ^ "_q", int (20 + (10 * inst))) ]);
    };
    {
      fam_id = 2;
      build =
        (fun p ->
          j "it" "ss" "ss_itemkey"
            (sel (Printf.sprintf "i_category = $%s_c" p) (t "it"))
            (j "dd" "ss" "ss_datekey"
               (sel (Printf.sprintf "d_year = $%s_y" p) (t "dd"))
               (t "ss")));
      bindings =
        (fun p inst ->
          [
            (p ^ "_c", scalar (cat "CATEGORY" (1 + (inst mod 10))));
            (p ^ "_y", int (1 + (inst mod 6)));
          ]);
    };
    {
      fam_id = 3;
      build =
        (fun p ->
          j "cu" "ss" "ss_custkey"
            (j "ca" "cu" "cu_addrkey"
               (sel (Printf.sprintf "ca_state in $%s_st" p) (t "ca"))
               (sel (Printf.sprintf "cu_gender = $%s_g" p) (t "cu")))
            (t "ss"));
      bindings =
        (fun p inst ->
          [
            (p ^ "_st", vlist [ cat "STATE" inst; cat "STATE" (inst + 10) ]);
            (p ^ "_g", scalar (cat "GENDER" (1 + (inst mod 2))));
          ]);
    };
    {
      fam_id = 4;
      build =
        (fun p ->
          j "st" "ss" "ss_storekey"
            (sel (Printf.sprintf "st_state = $%s_s" p) (t "st"))
            (sel (Printf.sprintf "ss_discount >= $%s_dlo and ss_discount <= $%s_dhi" p p)
               (t "ss")));
      bindings =
        (fun p inst ->
          [
            (p ^ "_s", scalar (cat "STATE" (1 + (2 * inst))));
            (p ^ "_dlo", int (10 * inst));
            (p ^ "_dhi", int ((10 * inst) + 20));
          ]);
    };
    {
      (* disjunctive fact filter *)
      fam_id = 5;
      build =
        (fun p ->
          j "dd" "ss" "ss_datekey"
            (sel (Printf.sprintf "d_year = $%s_y" p) (t "dd"))
            (sel (Printf.sprintf "ss_quantity < $%s_q or ss_price > $%s_p" p p) (t "ss")));
      bindings =
        (fun p inst ->
          [
            (p ^ "_y", int (1 + (inst mod 6)));
            (p ^ "_q", int (5 + (5 * inst)));
            (p ^ "_p", int (900 - (20 * inst)));
          ]);
    };
    {
      (* disjunctive dimension filter *)
      fam_id = 6;
      build =
        (fun p ->
          j "wh" "cs" "cs_whkey"
            (sel (Printf.sprintf "wh_state in $%s_w" p) (t "wh"))
            (j "dd" "cs" "cs_datekey"
               (sel (Printf.sprintf "d_qoy = $%s_q or d_moy >= $%s_m" p p) (t "dd"))
               (t "cs")));
      bindings =
        (fun p inst ->
          [
            (p ^ "_w", vlist [ cat "STATE" inst; cat "STATE" (inst + 5) ]);
            (p ^ "_q", int (1 + (inst mod 4)));
            (p ^ "_m", int (1 + (inst mod 12)));
          ]);
    };
    {
      fam_id = 7;
      build =
        (fun p ->
          j "it" "cs" "cs_itemkey"
            (sel (Printf.sprintf "i_brand = $%s_b" p) (t "it"))
            (t "cs"));
      bindings = (fun p inst -> [ (p ^ "_b", scalar (cat "BRAND" (7 * inst))) ]);
    };
    {
      fam_id = 8;
      build =
        (fun p ->
          j "cu" "cs" "cs_custkey"
            (sel (Printf.sprintf "cu_education = $%s_e" p) (t "cu"))
            (sel (Printf.sprintf "cs_quantity > $%s_q or cs_price < $%s_p" p p) (t "cs")));
      bindings =
        (fun p inst ->
          [
            (p ^ "_e", scalar (cat "EDU" (1 + (inst mod 7))));
            (p ^ "_q", int (90 - (5 * inst)));
            (p ^ "_p", int (50 + (20 * inst)));
          ]);
    };
    {
      fam_id = 9;
      build =
        (fun p ->
          j "dd" "ws" "ws_datekey"
            (sel (Printf.sprintf "d_year >= $%s_ylo and d_year <= $%s_yhi" p p) (t "dd"))
            (t "ws"));
      bindings =
        (fun p inst -> [ (p ^ "_ylo", int (1 + (inst mod 3))); (p ^ "_yhi", int (3 + (inst mod 3))) ]);
    };
    {
      fam_id = 10;
      build =
        (fun p ->
          j "it" "ws" "ws_itemkey"
            (sel (Printf.sprintf "i_color in $%s_c or i_class = $%s_k" p p) (t "it"))
            (t "ws"));
      bindings =
        (fun p inst ->
          [
            (p ^ "_c", vlist [ cat "COLOR" inst; cat "COLOR" (inst + 20) ]);
            (p ^ "_k", scalar (cat "CLASS" (3 * inst)));
          ]);
    };
    {
      fam_id = 11;
      build =
        (fun p ->
          j "cu" "ws" "ws_custkey"
            (sel (Printf.sprintf "cu_credit = $%s_c or cu_income > $%s_i" p p) (t "cu"))
            (sel (Printf.sprintf "ws_quantity <= $%s_q" p) (t "ws")));
      bindings =
        (fun p inst ->
          [
            (p ^ "_c", scalar (cat "CREDIT" (1 + (inst mod 4))));
            (p ^ "_i", int (600 + (50 * inst)));
            (p ^ "_q", int (30 + (10 * inst)));
          ]);
    };
    {
      fam_id = 12;
      build =
        (fun p ->
          j "st" "ss" "ss_storekey"
            (sel (Printf.sprintf "st_size > $%s_z" p) (t "st"))
            (j "it" "ss" "ss_itemkey"
               (sel (Printf.sprintf "i_category = $%s_c" p) (t "it"))
               (j "dd" "ss" "ss_datekey"
                  (sel (Printf.sprintf "d_year = $%s_y" p) (t "dd"))
                  (t "ss"))));
      bindings =
        (fun p inst ->
          [
            (p ^ "_z", int (100 * inst));
            (p ^ "_c", scalar (cat "CATEGORY" (1 + (inst mod 10))));
            (p ^ "_y", int (1 + (inst mod 6)));
          ]);
    };
    {
      fam_id = 13;
      build =
        (fun p ->
          j "it" "ss" "ss_itemkey"
            (sel (Printf.sprintf "i_brand = $%s_b2 or i_class = $%s_k" p p) (t "it"))
            (t "ss"));
      bindings =
        (fun p inst ->
          [
            (p ^ "_b2", scalar (cat "BRAND" (11 * inst)));
            (p ^ "_k", scalar (cat "CLASS" (5 * inst)));
          ]);
    };
    {
      fam_id = 14;
      build =
        (fun p ->
          j "cu" "cs" "cs_custkey"
            (j "ca" "cu" "cu_addrkey"
               (sel (Printf.sprintf "ca_gmt >= $%s_glo and ca_gmt <= $%s_ghi" p p) (t "ca"))
               (t "cu"))
            (sel (Printf.sprintf "cs_price >= $%s_plo" p) (t "cs")));
      bindings =
        (fun p inst ->
          [
            (p ^ "_glo", int (1 + (inst mod 5)));
            (p ^ "_ghi", int (5 + (inst mod 5)));
            (p ^ "_plo", int (100 * inst));
          ]);
    };
    {
      fam_id = 15;
      build =
        (fun p ->
          j "dd" "ss" "ss_datekey"
            (sel (Printf.sprintf "d_moy <= $%s_m or d_qoy = $%s_q" p p) (t "dd"))
            (t "ss"));
      bindings =
        (fun p inst ->
          [ (p ^ "_m", int (1 + (inst mod 12))); (p ^ "_q", int (1 + (inst mod 4))) ]);
    };
    {
      fam_id = 16;
      build =
        (fun p ->
          j "cu" "ws" "ws_custkey"
            (sel (Printf.sprintf "cu_credit = $%s_c" p) (t "cu"))
            (sel (Printf.sprintf "ws_quantity >= $%s_qlo or ws_price >= $%s_plo" p p)
               (t "ws")));
      bindings =
        (fun p inst ->
          [
            (p ^ "_c", scalar (cat "CREDIT" (1 + (inst mod 4))));
            (p ^ "_qlo", int (40 + (10 * inst)));
            (p ^ "_plo", int (800 - (30 * inst)));
          ]);
    };
    {
      fam_id = 17;
      build =
        (fun p ->
          j "st" "ss" "ss_storekey"
            (sel (Printf.sprintf "st_state = $%s_s or st_size > $%s_z" p p) (t "st"))
            (t "ss"));
      bindings =
        (fun p inst ->
          [
            (p ^ "_s", scalar (cat "STATE" (1 + (3 * inst))));
            (p ^ "_z", int (850 - (50 * inst)));
          ]);
    };
    {
      fam_id = 18;
      build =
        (fun p ->
          j "dd" "cs" "cs_datekey"
            (sel (Printf.sprintf "d_year = $%s_y" p) (t "dd"))
            (sel (Printf.sprintf "cs_price >= $%s_plo and cs_price <= $%s_phi" p p)
               (t "cs")));
      bindings =
        (fun p inst ->
          [
            (p ^ "_y", int (1 + (inst mod 6)));
            (p ^ "_plo", int (100 * inst));
            (p ^ "_phi", int ((100 * inst) + 300));
          ]);
    };
    {
      fam_id = 19;
      build =
        (fun p ->
          j "cu" "ss" "ss_custkey"
            (j "ca" "cu" "cu_addrkey"
               (sel (Printf.sprintf "ca_state = $%s_s or ca_gmt = $%s_g" p p) (t "ca"))
               (t "cu"))
            (t "ss"));
      bindings =
        (fun p inst ->
          [
            (p ^ "_s", scalar (cat "STATE" (4 * inst)));
            (p ^ "_g", int (1 + (inst mod 10)));
          ]);
    };
    {
      fam_id = 20;
      build =
        (fun p ->
          j "it" "cs" "cs_itemkey"
            (sel (Printf.sprintf "i_brand = $%s_b or i_color in $%s_c" p p) (t "it"))
            (t "cs"));
      bindings =
        (fun p inst ->
          [
            (p ^ "_b", scalar (cat "BRAND" (9 * inst)));
            (p ^ "_c", vlist [ cat "COLOR" (2 * inst); cat "COLOR" ((2 * inst) + 1) ]);
          ]);
    };
  ]

let instances = 5

let queries_and_env () =
  let queries = ref [] and env = ref Pred.Env.empty in
  List.iter
    (fun fam ->
      for inst = 1 to instances do
        let prefix = Printf.sprintf "f%02di%d" fam.fam_id inst in
        let name = Printf.sprintf "tpcds_q%02d.%d" fam.fam_id inst in
        queries := { Workload.q_name = name; q_plan = fam.build prefix } :: !queries;
        List.iter (fun (p, b) -> env := Pred.Env.add p b !env) (fam.bindings prefix inst)
      done)
    families;
  (List.rev !queries, !env)

let make ~sf ~seed =
  let schema = schema ~sf in
  let queries, prod_env = queries_and_env () in
  let workload = Workload.make schema queries in
  let ref_db = Refgen.build ~seed schema ~specs in
  (workload, ref_db, prod_env)
