(** Query feature detection, used to decide which queries each baseline
    generator supports (Table 1's operator-supportability matrix). *)

type t = {
  f_arith : bool;  (** arithmetic predicate over non-key columns *)
  f_logical_or : bool;  (** disjunction anywhere in a predicate *)
  f_or_across_join : bool;  (** OR clause spanning both sides of a join *)
  f_like : bool;
  f_in_pred : bool;
  f_string_range : bool;  (** <, >, ≤, ≥ on a string column *)
  f_outer_join : bool;
  f_semi_join : bool;
  f_anti_join : bool;
  f_fk_projection : bool;  (** duplicate-eliminating projection on an FK *)
}

val of_plan : Mirage_sql.Schema.t -> Mirage_relalg.Plan.t -> t
val pp : Format.formatter -> t -> unit

val none : t
(** All flags false. *)
