module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Parser = Mirage_sql.Parser
module Plan = Mirage_relalg.Plan
module Workload = Mirage_core.Workload

let name = "tpch"

let col n d k = { Schema.cname = n; domain_size = d; kind = k }
let fk c r = { Schema.fk_col = c; references = r }
let scale sf n = max 4 (int_of_float (float_of_int n *. sf))

let schema ~sf =
  Schema.make
    [
      {
        Schema.tname = "region";
        pk = "r_regionkey";
        nonkeys = [ col "r_name" 5 Schema.Kstring ];
        fks = [];
        row_count = 5;
      };
      {
        Schema.tname = "nation";
        pk = "n_nationkey";
        nonkeys = [ col "n_name" 25 Schema.Kstring ];
        fks = [ fk "n_regionkey" "region" ];
        row_count = 25;
      };
      {
        Schema.tname = "supplier";
        pk = "s_suppkey";
        nonkeys =
          [ col "s_acctbal" 900 Schema.Kint; col "s_comment" 100 Schema.Kstring ];
        fks = [ fk "s_nationkey" "nation" ];
        row_count = scale sf 100;
      };
      {
        Schema.tname = "customer";
        pk = "c_custkey";
        nonkeys =
          [
            col "c_mktsegment" 5 Schema.Kstring;
            col "c_acctbal" 1000 Schema.Kint;
            col "c_phonecc" 25 Schema.Kint;
          ];
        fks = [ fk "c_nationkey" "nation" ];
        row_count = scale sf 1500;
      };
      {
        Schema.tname = "part";
        pk = "p_partkey";
        nonkeys =
          [
            col "p_brand" 25 Schema.Kstring;
            col "p_type" 150 Schema.Kstring;
            col "p_container" 40 Schema.Kstring;
            col "p_size" 50 Schema.Kint;
            col "p_name" 1000 Schema.Kstring;
          ];
        fks = [];
        row_count = scale sf 2000;
      };
      {
        Schema.tname = "partsupp";
        pk = "ps_partsuppkey";
        nonkeys =
          [ col "ps_availqty" 1000 Schema.Kint; col "ps_supplycost" 1000 Schema.Kint ];
        fks = [ fk "ps_partkey" "part"; fk "ps_suppkey" "supplier" ];
        row_count = scale sf 8000;
      };
      {
        Schema.tname = "orders";
        pk = "o_orderkey";
        nonkeys =
          [
            col "o_orderdate" 2400 Schema.Kint;
            col "o_orderpriority" 5 Schema.Kstring;
            col "o_orderstatus" 3 Schema.Kstring;
            col "o_comment" 5000 Schema.Kstring;
          ];
        fks = [ fk "o_custkey" "customer" ];
        row_count = scale sf 15000;
      };
      {
        Schema.tname = "lineitem";
        pk = "l_linekey";
        nonkeys =
          [
            col "l_quantity" 50 Schema.Kint;
            col "l_discount" 11 Schema.Kint;
            col "l_shipdate" 2500 Schema.Kint;
            col "l_commitdate" 2500 Schema.Kint;
            col "l_receiptdate" 2500 Schema.Kint;
            col "l_returnflag" 3 Schema.Kstring;
            col "l_shipmode" 7 Schema.Kstring;
            col "l_extendedprice" 10000 Schema.Kint;
          ];
        fks =
          [
            fk "l_orderkey" "orders";
            fk "l_partkey" "part";
            fk "l_suppkey" "supplier";
          ];
        row_count = scale sf 60000;
      };
    ]

let type_lexicon =
  [| "ECONOMY"; "STANDARD"; "MEDIUM"; "ANODIZED"; "BRUSHED"; "POLISHED";
     "STEEL"; "BRASS"; "COPPER" |]

let name_lexicon =
  [| "green"; "blue"; "red"; "ivory"; "salmon"; "almond"; "antique"; "azure";
     "beige"; "bisque"; "black"; "blanched" |]

let specs =
  [
    ("region", [ ("r_name", Refgen.Perm_string "REGION") ]);
    ("nation", [ ("n_name", Refgen.Perm_string "NATION") ]);
    ( "supplier",
      [
        ("s_acctbal", Refgen.Uniform_int 900);
        ("s_comment", Refgen.Words_string (Refgen.comment_lexicon, 8));
      ] );
    ( "customer",
      [
        ("c_mktsegment", Refgen.Cat_string ("SEGMENT", 5));
        ("c_acctbal", Refgen.Uniform_int 1000);
        ("c_phonecc", Refgen.Uniform_int 25);
      ] );
    ( "part",
      [
        ("p_brand", Refgen.Cat_string ("BRAND", 25));
        ("p_type", Refgen.Words_string (type_lexicon, 3));
        ("p_container", Refgen.Cat_string ("CONTAINER", 40));
        ("p_size", Refgen.Uniform_int 50);
        ("p_name", Refgen.Words_string (name_lexicon, 4));
      ] );
    ( "partsupp",
      [
        ("ps_availqty", Refgen.Uniform_int 1000);
        ("ps_supplycost", Refgen.Uniform_int 1000);
      ] );
    ( "orders",
      [
        ("o_orderdate", Refgen.Date_int 2400);
        ("o_orderpriority", Refgen.Cat_string ("PRIO", 5));
        ("o_orderstatus", Refgen.Cat_string ("STATUS", 3));
        ("o_comment", Refgen.Words_string (Refgen.comment_lexicon, 10));
      ] );
    ( "lineitem",
      [
        ("l_quantity", Refgen.Uniform_int 50);
        ("l_discount", Refgen.Uniform_int 11);
        ("l_shipdate", Refgen.Date_int 2500);
        ("l_commitdate", Refgen.Date_int 2500);
        ("l_receiptdate", Refgen.Date_int 2500);
        ("l_returnflag", Refgen.Cat_string ("FLAG", 3));
        ("l_shipmode", Refgen.Cat_string ("MODE", 7));
        ("l_extendedprice", Refgen.Skewed_int (10000, 1.3));
      ] );
  ]

(* plan helpers *)
let sel s plan = Plan.Select (Parser.pred s, plan)
let t n = Plan.Table n

let j ?(jt = Plan.Inner) pk_table fk_table fk_col left right =
  Plan.Join { jt; pk_table; fk_table; fk_col; left; right }

let q1 =
  (* the real Q1 groups by return flag and aggregates; the group count (3)
     is stable because the domain is preserved, so the AQT stays exact *)
  Plan.Aggregate
    {
      group_by = [ "l_returnflag" ];
      aggs =
        [
          (Plan.Sum, "l_quantity"); (Plan.Sum, "l_extendedprice");
          (Plan.Avg, "l_discount"); (Plan.Count, "l_linekey");
        ];
      input = sel "l_shipdate <= $h1_d" (t "lineitem");
    }

let q2 =
  let parts =
    j "part" "partsupp" "ps_partkey"
      (sel "p_size = $h2_size and p_type like $h2_type" (t "part"))
      (t "partsupp")
  in
  let supps =
    j "nation" "supplier" "s_nationkey"
      (j "region" "nation" "n_regionkey"
         (sel "r_name = $h2_reg" (t "region"))
         (t "nation"))
      (t "supplier")
  in
  j "supplier" "partsupp" "ps_suppkey" supps parts

let q3 =
  j "orders" "lineitem" "l_orderkey"
    (j "customer" "orders" "o_custkey"
       (sel "c_mktsegment = $h3_seg" (t "customer"))
       (sel "o_orderdate < $h3_d" (t "orders")))
    (sel "l_shipdate > $h3_d2" (t "lineitem"))

let q4 =
  j ~jt:Plan.Left_semi "orders" "lineitem" "l_orderkey"
    (sel "o_orderdate >= $h4_dlo and o_orderdate < $h4_dhi" (t "orders"))
    (sel "l_commitdate - l_receiptdate < $h4_z" (t "lineitem"))

let q5 =
  j "orders" "lineitem" "l_orderkey"
    (j "customer" "orders" "o_custkey"
       (j "nation" "customer" "c_nationkey"
          (sel "n_name in $h5_nats" (t "nation"))
          (t "customer"))
       (sel "o_orderdate >= $h5_dlo and o_orderdate < $h5_dhi" (t "orders")))
    (t "lineitem")

let q6 =
  (* global revenue aggregate over the selected rows *)
  Plan.Aggregate
    {
      group_by = [];
      aggs = [ (Plan.Sum, "l_extendedprice") ];
      input =
        sel
          "l_shipdate >= $h6_dlo and l_shipdate < $h6_dhi and l_discount >= $h6_disclo and l_discount <= $h6_dischi and l_quantity < $h6_q"
          (t "lineitem");
    }

let q7 =
  j "supplier" "lineitem" "l_suppkey"
    (j "nation" "supplier" "s_nationkey"
       (sel "n_name in $h7_nats" (t "nation"))
       (t "supplier"))
    (sel "l_shipdate >= $h7_dlo and l_shipdate <= $h7_dhi" (t "lineitem"))

let q8 =
  let orders_side =
    j "orders" "lineitem" "l_orderkey"
      (j "customer" "orders" "o_custkey"
         (j "nation" "customer" "c_nationkey"
            (j "region" "nation" "n_regionkey"
               (sel "r_name = $h8_reg" (t "region"))
               (t "nation"))
            (t "customer"))
         (sel "o_orderdate >= $h8_dlo and o_orderdate <= $h8_dhi" (t "orders")))
      (t "lineitem")
  in
  j "part" "lineitem" "l_partkey" (sel "p_type like $h8_type" (t "part")) orders_side

let q9 =
  let part_side =
    j "part" "lineitem" "l_partkey"
      (sel "p_name like $h9_color" (t "part"))
      (t "lineitem")
  in
  j "supplier" "lineitem" "l_suppkey"
    (j "nation" "supplier" "s_nationkey" (t "nation") (t "supplier"))
    part_side

let q10 =
  j "orders" "lineitem" "l_orderkey"
    (j "customer" "orders" "o_custkey" (t "customer")
       (sel "o_orderdate >= $h10_dlo and o_orderdate < $h10_dhi" (t "orders")))
    (sel "l_returnflag = $h10_flag" (t "lineitem"))

let q11 =
  j "supplier" "partsupp" "ps_suppkey"
    (j "nation" "supplier" "s_nationkey"
       (sel "n_name = $h11_nat" (t "nation"))
       (t "supplier"))
    (sel "ps_supplycost * ps_availqty > $h11_v" (t "partsupp"))

let q12 =
  j "orders" "lineitem" "l_orderkey" (t "orders")
    (sel
       "l_shipmode in $h12_modes and l_commitdate - l_receiptdate < $h12_z and l_receiptdate >= $h12_dlo and l_receiptdate < $h12_dhi"
       (t "lineitem"))

let q13 =
  j ~jt:Plan.Left_outer "customer" "orders" "o_custkey" (t "customer")
    (sel "o_comment not like $h13_pat" (t "orders"))

let q14 =
  j "part" "lineitem" "l_partkey" (t "part")
    (sel "l_shipdate >= $h14_dlo and l_shipdate < $h14_dhi" (t "lineitem"))

let q15 =
  j "supplier" "lineitem" "l_suppkey" (t "supplier")
    (sel "l_shipdate >= $h15_dlo and l_shipdate < $h15_dhi" (t "lineitem"))

let q16 =
  Plan.Project
    {
      cols = [ "ps_suppkey" ];
      input =
        j "part" "partsupp" "ps_partkey"
          (sel "p_brand <> $h16_brand and p_type not like $h16_type and p_size in $h16_sizes"
             (t "part"))
          (t "partsupp");
    }

let q17 =
  j ~jt:Plan.Left_semi "part" "lineitem" "l_partkey"
    (sel "p_brand = $h17_brand and p_container = $h17_cont" (t "part"))
    (sel "l_quantity < $h17_q" (t "lineitem"))

let q18 =
  j "customer" "orders" "o_custkey" (t "customer")
    (j ~jt:Plan.Left_semi "orders" "lineitem" "l_orderkey" (t "orders")
       (sel "l_quantity > $h18_q" (t "lineitem")))

let q19 =
  sel "(p_brand = $h19_brand or l_quantity <= $h19_q) and l_shipmode in $h19_modes"
    (j "part" "lineitem" "l_partkey" (t "part") (t "lineitem"))

let q20 =
  j ~jt:Plan.Left_semi "supplier" "partsupp" "ps_suppkey"
    (j "nation" "supplier" "s_nationkey"
       (sel "n_name = $h20_nat" (t "nation"))
       (t "supplier"))
    (j "part" "partsupp" "ps_partkey"
       (sel "p_name like $h20_col" (t "part"))
       (sel "ps_availqty > $h20_qty" (t "partsupp")))

let q21 =
  j "supplier" "lineitem" "l_suppkey"
    (j "nation" "supplier" "s_nationkey"
       (sel "n_name = $h21_nat" (t "nation"))
       (t "supplier"))
    (j ~jt:Plan.Right_anti "orders" "lineitem" "l_orderkey"
       (sel "o_orderstatus = $h21_st" (t "orders"))
       (sel "l_receiptdate - l_commitdate > $h21_z" (t "lineitem")))

let q22 =
  j ~jt:Plan.Left_anti "customer" "orders" "o_custkey"
    (sel "c_phonecc in $h22_ccs and c_acctbal > $h22_bal" (t "customer"))
    (t "orders")

let scalar v = Pred.Env.Scalar v
let vlist vs = Pred.Env.Vlist vs
let int n = scalar (Value.Int n)
let str s = scalar (Value.Str s)
let nat n = Value.Str (Printf.sprintf "NATION#%05d" n)

let prod_env =
  Pred.Env.of_list
    [
      ("h1_d", int 2380);
      ("h2_size", int 15);
      ("h2_type", str "%BRASS");
      ("h2_reg", str "REGION#00003");
      ("h3_seg", str "SEGMENT#00002");
      ("h3_d", int 1200);
      ("h3_d2", int 1200);
      ("h4_dlo", int 800);
      ("h4_dhi", int 892);
      ("h4_z", scalar (Value.Float 0.0));
      ("h5_nats", vlist [ nat 1; nat 5; nat 9; nat 13; nat 17 ]);
      ("h5_dlo", int 400);
      ("h5_dhi", int 765);
      ("h6_dlo", int 400);
      ("h6_dhi", int 765);
      ("h6_disclo", int 3);
      ("h6_dischi", int 5);
      ("h6_q", int 24);
      ("h7_nats", vlist [ nat 4; nat 10 ]);
      ("h7_dlo", int 900);
      ("h7_dhi", int 1630);
      ("h8_reg", str "REGION#00002");
      ("h8_dlo", int 1100);
      ("h8_dhi", int 1830);
      ("h8_type", str "%STEEL");
      ("h9_color", str "%green%");
      ("h10_dlo", int 600);
      ("h10_dhi", int 692);
      ("h10_flag", str "FLAG#00002");
      ("h11_nat", nat 7 |> scalar);
      ("h11_v", scalar (Value.Float 400000.0));
      ("h12_modes", vlist [ Value.Str "MODE#00003"; Value.Str "MODE#00005" ]);
      ("h12_z", scalar (Value.Float 0.0));
      ("h12_dlo", int 1000);
      ("h12_dhi", int 1365);
      ("h13_pat", str "%special%requests%");
      ("h14_dlo", int 1400);
      ("h14_dhi", int 1430);
      ("h15_dlo", int 1500);
      ("h15_dhi", int 1591);
      ("h16_brand", str "BRAND#00015");
      ("h16_type", str "MEDIUM POLISHED%");
      ("h16_sizes", vlist (List.map (fun n -> Value.Int n) [ 3; 9; 14; 19; 23; 36; 45; 49 ]));
      ("h17_brand", str "BRAND#00023");
      ("h17_cont", str "CONTAINER#00017");
      ("h17_q", int 5);
      ("h18_q", int 47);
      ("h19_brand", str "BRAND#00012");
      ("h19_q", int 10);
      ("h19_modes", vlist [ Value.Str "MODE#00001"; Value.Str "MODE#00004" ]);
      ("h20_nat", nat 12 |> scalar);
      ("h20_col", str "%ivory%");
      ("h20_qty", int 500);
      ("h21_nat", nat 3 |> scalar);
      ("h21_st", str "STATUS#00002");
      ("h21_z", scalar (Value.Float 0.0));
      ("h22_ccs", vlist (List.map (fun n -> Value.Int n) [ 3; 6; 9; 12; 17; 20; 23 ]));
      ("h22_bal", int 500);
    ]

let queries =
  [
    ("tpch_q1", q1); ("tpch_q2", q2); ("tpch_q3", q3); ("tpch_q4", q4);
    ("tpch_q5", q5); ("tpch_q6", q6); ("tpch_q7", q7); ("tpch_q8", q8);
    ("tpch_q9", q9); ("tpch_q10", q10); ("tpch_q11", q11); ("tpch_q12", q12);
    ("tpch_q13", q13); ("tpch_q14", q14); ("tpch_q15", q15); ("tpch_q16", q16);
    ("tpch_q17", q17); ("tpch_q18", q18); ("tpch_q19", q19); ("tpch_q20", q20);
    ("tpch_q21", q21); ("tpch_q22", q22);
  ]

let make ~sf ~seed =
  let schema = schema ~sf in
  let workload =
    Workload.make schema
      (List.map (fun (n, p) -> { Workload.q_name = n; q_plan = p }) queries)
  in
  let ref_db = Refgen.build ~seed schema ~specs in
  (workload, ref_db, prod_env)
