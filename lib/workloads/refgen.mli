(** Reference ("production") database generation.

    Stands in for the official dbgen/dsdgen tools (see DESIGN.md): fills each
    schema with plausibly distributed data — uniform and skewed numerics,
    date-like day numbers, categorical strings, and word-salad comment
    columns that LIKE patterns can hit — so the workload parser has a
    production database to extract constraints from. *)

type col_spec =
  | Uniform_int of int  (** values uniform over [\[1, dom\]] *)
  | Skewed_int of int * float  (** power-law over [\[1, dom\]]; exponent > 1 skews low *)
  | Date_int of int  (** day numbers [\[1, days\]], uniform *)
  | Cat_string of string * int  (** ["<prefix>#%05d"] over [\[1, dom\]] *)
  | Perm_string of string  (** one distinct ["<prefix>#%05d"] per row (row [i] gets value [i+1]) *)
  | Words_string of string array * int  (** [n] words sampled from the lexicon *)

val build :
  seed:int ->
  Mirage_sql.Schema.t ->
  specs:(string * (string * col_spec) list) list ->
  Mirage_engine.Db.t
(** [build ~seed schema ~specs] populates every table at its schema
    [row_count].  Non-key columns use their spec ([Uniform_int] over the
    declared domain when unspecified); FKs reference uniform-random PKs of
    the referenced table; PKs are [1..n]. *)

val comment_lexicon : string array
(** Words used by comment-like columns ("special", "requests", …). *)
