module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Db = Mirage_engine.Db
module Rng = Mirage_util.Rng

type col_spec =
  | Uniform_int of int
  | Skewed_int of int * float
  | Date_int of int
  | Cat_string of string * int
  | Perm_string of string
  | Words_string of string array * int

let comment_lexicon =
  [|
    "special"; "requests"; "regular"; "deposits"; "pending"; "accounts";
    "express"; "packages"; "unusual"; "ideas"; "final"; "theodolites";
    "carefully"; "quickly"; "furiously"; "silent"; "bold"; "even";
  |]

let gen_value rng spec =
  match spec with
  | Uniform_int dom -> Value.Int (Rng.int_in rng 1 dom)
  | Skewed_int (dom, k) ->
      let u = Rng.float rng 1.0 in
      let v = 1 + int_of_float (float_of_int (dom - 1) *. (u ** k)) in
      Value.Int (min dom v)
  | Date_int days -> Value.Int (Rng.int_in rng 1 days)
  | Cat_string (prefix, dom) ->
      Value.Str (Printf.sprintf "%s#%05d" prefix (Rng.int_in rng 1 dom))
  | Perm_string prefix ->
      (* placeholder; handled positionally in [build] *)
      Value.Str (Printf.sprintf "%s#%05d" prefix 0)
  | Words_string (lexicon, n) ->
      let words = List.init n (fun _ -> Rng.pick rng lexicon) in
      Value.Str (String.concat " " words)

let build ~seed schema ~specs =
  let db = Db.create schema in
  let rng = Rng.create seed in
  (* populate in dependency order so FK pools exist *)
  let order =
    Mirage_util.Toposort.sort
      ~vertices:(List.map (fun (t : Schema.table) -> t.Schema.tname) (Schema.tables schema))
      ~edges:(Schema.referencing_edges schema)
  in
  List.iter
    (fun tname ->
      let tbl = Schema.table schema tname in
      let n = tbl.Schema.row_count in
      let trng = Rng.split rng in
      let table_specs = try List.assoc tname specs with Not_found -> [] in
      let pk = Array.init n (fun i -> Value.Int (i + 1)) in
      let nonkeys =
        List.map
          (fun (c : Schema.column) ->
            let spec =
              match List.assoc_opt c.Schema.cname table_specs with
              | Some s -> s
              | None -> Uniform_int c.Schema.domain_size
            in
            match spec with
            | Perm_string prefix ->
                (* one distinct value per row, e.g. nation/region names *)
                ( c.Schema.cname,
                  Array.init n (fun i ->
                      Value.Str (Printf.sprintf "%s#%05d" prefix (i + 1))) )
            | Uniform_int _ | Skewed_int _ | Date_int _ | Cat_string _
            | Words_string _ ->
                (c.Schema.cname, Array.init n (fun _ -> gen_value trng spec)))
          tbl.Schema.nonkeys
      in
      let fks =
        List.map
          (fun (f : Schema.fk) ->
            let target_rows = Db.row_count db f.Schema.references in
            ( f.Schema.fk_col,
              Array.init n (fun _ -> Value.Int (Rng.int_in trng 1 target_rows)) ))
          tbl.Schema.fks
      in
      Db.put db tname (((tbl.Schema.pk, pk) :: nonkeys) @ fks))
    order;
  db
