module Pred = Mirage_sql.Pred
module Schema = Mirage_sql.Schema
module Plan = Mirage_relalg.Plan

type t = {
  f_arith : bool;
  f_logical_or : bool;
  f_or_across_join : bool;
  f_like : bool;
  f_in_pred : bool;
  f_string_range : bool;
  f_outer_join : bool;
  f_semi_join : bool;
  f_anti_join : bool;
  f_fk_projection : bool;
}

let none =
  {
    f_arith = false;
    f_logical_or = false;
    f_or_across_join = false;
    f_like = false;
    f_in_pred = false;
    f_string_range = false;
    f_outer_join = false;
    f_semi_join = false;
    f_anti_join = false;
    f_fk_projection = false;
  }

let col_kind schema col =
  let tables = Schema.tables schema in
  let rec find = function
    | [] -> None
    | (tbl : Schema.table) :: rest -> (
        match
          List.find_opt (fun (c : Schema.column) -> c.Schema.cname = col) tbl.Schema.nonkeys
        with
        | Some c -> Some c.Schema.kind
        | None -> find rest)
  in
  find tables

let scan_pred schema acc pred =
  let acc = ref acc in
  let rec lit = function
    | Pred.Cmp { col; cmp; _ } -> (
        match (cmp, col_kind schema col) with
        | (Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge), Some Schema.Kstring ->
            acc := { !acc with f_string_range = true }
        | _ -> ())
    | Pred.In _ -> acc := { !acc with f_in_pred = true }
    | Pred.Like _ -> acc := { !acc with f_like = true }
    | Pred.Arith_cmp _ -> acc := { !acc with f_arith = true }
  and go = function
    | Pred.True | Pred.False -> ()
    | Pred.Lit l -> lit l
    | Pred.Not p -> go p
    | Pred.And ps -> List.iter go ps
    | Pred.Or ps ->
        acc := { !acc with f_logical_or = true };
        List.iter go ps
  in
  go pred;
  !acc

(* does a predicate above a join contain an OR clause spanning both sides? *)
let or_across schema pred left right =
  let left_tables = Plan.tables left and right_tables = Plan.tables right in
  let owner col =
    List.find_opt
      (fun t -> List.mem col (Schema.column_names (Schema.table schema t)))
      (left_tables @ right_tables)
  in
  let spans clause =
    let cols = List.concat_map Pred.columns clause in
    let tabs = List.filter_map owner cols in
    List.exists (fun t -> List.mem t left_tables) tabs
    && List.exists (fun t -> List.mem t right_tables) tabs
  in
  List.exists spans (Pred.cnf pred)

let of_plan schema plan =
  let acc = ref none in
  let rec go = function
    | Plan.Table _ -> ()
    | Plan.Select (p, q) ->
        acc := scan_pred schema !acc p;
        (match q with
        | Plan.Join { left; right; _ } ->
            if or_across schema p left right then
              acc := { !acc with f_or_across_join = true }
        | _ -> ());
        go q
    | Plan.Aggregate { input; _ } -> go input
    | Plan.Project { cols; input } ->
        List.iter
          (fun col ->
            List.iter
              (fun t ->
                let tbl = Schema.table schema t in
                if Schema.is_fk tbl col then
                  acc := { !acc with f_fk_projection = true })
              (Plan.tables input))
          cols;
        go input
    | Plan.Join { jt; left; right; _ } ->
        (match jt with
        | Plan.Inner -> ()
        | Plan.Left_outer | Plan.Right_outer | Plan.Full_outer ->
            acc := { !acc with f_outer_join = true }
        | Plan.Left_semi | Plan.Right_semi ->
            acc := { !acc with f_semi_join = true }
        | Plan.Left_anti | Plan.Right_anti ->
            acc := { !acc with f_anti_join = true });
        go left;
        go right
  in
  go plan;
  !acc

let pp ppf f =
  let flags =
    [
      ("arith", f.f_arith);
      ("or", f.f_logical_or);
      ("or-across", f.f_or_across_join);
      ("like", f.f_like);
      ("in", f.f_in_pred);
      ("str-range", f.f_string_range);
      ("outer", f.f_outer_join);
      ("semi", f.f_semi_join);
      ("anti", f.f_anti_join);
      ("fk-proj", f.f_fk_projection);
    ]
  in
  Fmt.pf ppf "{%s}"
    (String.concat "," (List.filter_map (fun (n, b) -> if b then Some n else None) flags))
