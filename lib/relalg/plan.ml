module Pred = Mirage_sql.Pred
module Schema = Mirage_sql.Schema

type agg_fn = Count | Sum | Avg | Min | Max

type join_type =
  | Inner
  | Left_outer
  | Right_outer
  | Full_outer
  | Left_semi
  | Right_semi
  | Left_anti
  | Right_anti

type t =
  | Table of string
  | Select of Pred.t * t
  | Join of {
      jt : join_type;
      pk_table : string;
      fk_table : string;
      fk_col : string;
      left : t;
      right : t;
    }
  | Project of { cols : string list; input : t }
  | Aggregate of {
      group_by : string list;
      aggs : (agg_fn * string) list;
      input : t;
    }

let rec preorder p =
  p
  ::
  (match p with
  | Table _ -> []
  | Select (_, q) | Project { input = q; _ } | Aggregate { input = q; _ } ->
      preorder q
  | Join { left; right; _ } -> preorder left @ preorder right)

let size p = List.length (preorder p)

let join_type_label = function
  | Inner -> "⋈"
  | Left_outer -> "⟕"
  | Right_outer -> "⟖"
  | Full_outer -> "⟗"
  | Left_semi -> "⋉"
  | Right_semi -> "⋊"
  | Left_anti -> "▷"
  | Right_anti -> "◁"

let node_label = function
  | Table t -> t
  | Select (p, _) -> Fmt.str "σ[%a]" Pred.pp p
  | Join { jt; fk_col; _ } -> Fmt.str "%s(%s)" (join_type_label jt) fk_col
  | Project { cols; _ } -> Fmt.str "Π[%s]" (String.concat "," cols)
  | Aggregate { group_by; _ } -> Fmt.str "γ[%s]" (String.concat "," group_by)

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let tables p =
  let rec go = function
    | Table t -> [ t ]
    | Select (_, q) | Project { input = q; _ } | Aggregate { input = q; _ } -> go q
    | Join { left; right; _ } -> go left @ go right
  in
  dedup (go p)

let params p =
  let rec go = function
    | Table _ -> []
    | Select (pr, q) -> Pred.params pr @ go q
    | Project { input = q; _ } | Aggregate { input = q; _ } -> go q
    | Join { left; right; _ } -> go left @ go right
  in
  dedup (go p)

let joins p =
  preorder p
  |> List.mapi (fun i sub -> (i, sub))
  |> List.filter (fun (_, sub) -> match sub with Join _ -> true | _ -> false)

let selects_over p =
  let acc = Hashtbl.create 8 in
  let add t pred =
    let cur = try Hashtbl.find acc t with Not_found -> [] in
    Hashtbl.replace acc t (pred @ cur)
  in
  let rec go pending = function
    | Table t -> add t pending
    | Select (pr, q) -> go (pr :: pending) q
    | Project { input = q; _ } | Aggregate { input = q; _ } -> go [] q
    | Join { left; right; _ } ->
        go [] left;
        go [] right
  in
  go [] p;
  List.map (fun t -> (t, try Hashtbl.find acc t with Not_found -> [])) (tables p)

let rec columns_in_scope schema = function
  | Table t -> Schema.column_names (Schema.table schema t)
  | Select (_, q) | Project { input = q; _ } | Aggregate { input = q; _ } ->
      columns_in_scope schema q
  | Join { left; right; _ } ->
      columns_in_scope schema left @ columns_in_scope schema right

let validate schema p =
  let ( let* ) r f = Result.bind r f in
  let check b msg = if b then Ok () else Error msg in
  let rec go = function
    | Table t ->
        check (Schema.mem schema t) (Printf.sprintf "unknown table %s" t)
    | Select (pr, q) ->
        let* () = go q in
        let scope = columns_in_scope schema q in
        List.fold_left
          (fun r c ->
            let* () = r in
            check (List.mem c scope)
              (Printf.sprintf "predicate column %s not in scope" c))
          (Ok ()) (Pred.columns pr)
    | Project { cols; input } ->
        let* () = go input in
        let scope = columns_in_scope schema input in
        List.fold_left
          (fun r c ->
            let* () = r in
            check (List.mem c scope)
              (Printf.sprintf "projected column %s not in scope" c))
          (Ok ()) cols
    | Aggregate { group_by; aggs; input } ->
        let* () = go input in
        let scope = columns_in_scope schema input in
        List.fold_left
          (fun r c ->
            let* () = r in
            check (List.mem c scope)
              (Printf.sprintf "aggregate column %s not in scope" c))
          (Ok ())
          (group_by @ List.map snd aggs)
    | Join { pk_table; fk_table; fk_col; left; right; _ } ->
        let* () = go left in
        let* () = go right in
        let* () =
          check (Schema.mem schema pk_table)
            (Printf.sprintf "unknown pk table %s" pk_table)
        in
        let* () =
          check (Schema.mem schema fk_table)
            (Printf.sprintf "unknown fk table %s" fk_table)
        in
        let ft = Schema.table schema fk_table in
        let* () =
          check (Schema.is_fk ft fk_col)
            (Printf.sprintf "%s.%s is not a foreign key" fk_table fk_col)
        in
        let* () =
          check ((Schema.fk ft fk_col).Schema.references = pk_table)
            (Printf.sprintf "%s.%s does not reference %s" fk_table fk_col pk_table)
        in
        let* () =
          check (List.mem pk_table (tables left))
            (Printf.sprintf "pk table %s not on left side" pk_table)
        in
        check (List.mem fk_table (tables right))
          (Printf.sprintf "fk table %s not on right side" fk_table)
  in
  go p

let rec pp_indent ppf (depth, p) =
  let pad = String.make (2 * depth) ' ' in
  Fmt.pf ppf "%s%s@." pad (node_label p);
  match p with
  | Table _ -> ()
  | Select (_, q) | Project { input = q; _ } | Aggregate { input = q; _ } ->
      pp_indent ppf (depth + 1, q)
  | Join { left; right; _ } ->
      pp_indent ppf (depth + 1, left);
      pp_indent ppf (depth + 1, right)

let pp ppf p = pp_indent ppf (0, p)
let to_string p = Fmt.str "%a" pp p
