(** Query plans / query-operator-view trees (§2.2).

    Plans are immutable trees.  The {e preorder index} of a node (root = 0,
    then children left-to-right, recursively) identifies an operator view;
    the annotated query template pairs a plan with a cardinality per preorder
    index.

    Join convention: the {b left} child is always the side carrying the
    referenced table's {b primary key}, the {b right} child the side carrying
    the referencing table's {b foreign key} — matching the paper's
    [V_l]/[V_r] convention.  So [Left_outer] preserves the PK side,
    [Right_semi] keeps matched FK-side rows, etc.

    Column names are required to be globally unique across the schema (true
    of SSB/TPC-H/our TPC-DS-style schema), so plans need no qualifiers. *)

type agg_fn = Count | Sum | Avg | Min | Max

type join_type =
  | Inner
  | Left_outer
  | Right_outer
  | Full_outer
  | Left_semi
  | Right_semi
  | Left_anti
  | Right_anti

type t =
  | Table of string
  | Select of Mirage_sql.Pred.t * t
  | Join of {
      jt : join_type;
      pk_table : string;  (** referenced table whose PK is the join key *)
      fk_table : string;  (** referencing table *)
      fk_col : string;    (** FK column in [fk_table] *)
      left : t;
      right : t;
    }
  | Project of { cols : string list; input : t }
      (** duplicate-eliminating projection *)
  | Aggregate of {
      group_by : string list;
      aggs : (agg_fn * string) list;  (** function and its input column *)
      input : t;
    }
      (** hash aggregation; output cardinality = number of groups.  The
          generators treat it as transparent (like non-key projections, its
          cardinality constraint is not interesting per §2.2); the engine
          evaluates it so replayed latencies include aggregation work. *)

val preorder : t -> t list
(** All subtrees in preorder; [List.nth (preorder p) i] is the view with
    preorder index [i]. *)

val size : t -> int
(** Number of operator views. *)

val node_label : t -> string
(** Short human-readable label of the root operator. *)

val tables : t -> string list
(** Base tables mentioned, preorder, with duplicates removed. *)

val params : t -> string list
(** All predicate parameters, first-appearance order. *)

val joins : t -> (int * t) list
(** Preorder indices and subtrees of all join nodes. *)

val selects_over : t -> (string * Mirage_sql.Pred.t list) list
(** For each base table, the select predicates applied directly above it
    (conjunction of stacked selects); tables scanned with no select map to
    []. *)

val validate : Mirage_sql.Schema.t -> t -> (unit, string) result
(** Checks tables exist, join FK edges are declared in the schema, the PK
    side/FK side contain the respective tables, and predicate columns resolve
    to columns of tables in scope. *)

val pp : Format.formatter -> t -> unit
(** Multi-line tree rendering. *)

val to_string : t -> string
