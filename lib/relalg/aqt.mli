(** Annotated query templates (§2.1).

    An AQT is a named plan whose operator views carry output-cardinality
    annotations (indexed by the plan's preorder numbering).  The annotations
    are produced by the workload parser executing the template — with its
    production parameter values — on the production database. *)

type t = {
  name : string;
  plan : Plan.t;
  cards : int option array;  (** [cards.(i)] = labelled output size of view [i] *)
}

val unannotated : name:string -> Plan.t -> t
(** All annotations set to [None]. *)

val annotate : t -> int -> int -> t
(** [annotate aqt i n] returns a copy with view [i] labelled [n]. *)

val card : t -> int -> int option
val annotated_views : t -> (int * Plan.t * int) list
(** [(preorder index, subtree, cardinality)] for every labelled view. *)

val pp : Format.formatter -> t -> unit
