type t = { name : string; plan : Plan.t; cards : int option array }

let unannotated ~name plan =
  { name; plan; cards = Array.make (Plan.size plan) None }

let annotate t i n =
  if i < 0 || i >= Array.length t.cards then
    invalid_arg (Printf.sprintf "Aqt.annotate: view %d out of range" i);
  let cards = Array.copy t.cards in
  cards.(i) <- Some n;
  { t with cards }

let card t i =
  if i < 0 || i >= Array.length t.cards then None else t.cards.(i)

let annotated_views t =
  let subs = Array.of_list (Plan.preorder t.plan) in
  Array.to_list t.cards
  |> List.mapi (fun i c -> (i, c))
  |> List.filter_map (fun (i, c) ->
         match c with Some n -> Some (i, subs.(i), n) | None -> None)

let pp ppf t =
  Fmt.pf ppf "AQT %s:@." t.name;
  let subs = Plan.preorder t.plan in
  List.iteri
    (fun i sub ->
      let label = Plan.node_label sub in
      match t.cards.(i) with
      | Some n -> Fmt.pf ppf "  [%d] %s  |V|=%d@." i label n
      | None -> Fmt.pf ppf "  [%d] %s@." i label)
    subs
