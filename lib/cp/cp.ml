type var = int

type constr =
  | Linear of { terms : (int * var) list; eq : bool; rhs : int }
      (** [Σ a·x (= | ≤) rhs] *)
  | Ge of var * var  (** x ≥ y *)
  | Imply_pos of var * var  (** x > 0 ⇒ y > 0 *)

type t = {
  mutable names : string array;  (* indexed by var id, grown with the bounds *)
  mutable nvars : int;
  mutable lo0 : int array;  (* initial bounds, grown on demand *)
  mutable hi0 : int array;
  mutable constrs : constr list;  (* reversed posting order *)
  mutable nodes : int;
  mutable props : int;  (* propagator executions during the last solve *)
  mutable objective : (int * var) list;  (* LP-guide objective, minimised *)
  mutable lp_constrs : constr list;  (* rows seen only by the LP relaxation *)
  mutable aux : bool array;  (* auxiliary vars the search never branches on *)
}

type outcome = Sat of (var -> int) | Unsat | Unknown

type stats = { st_nodes : int; st_restarts : int; st_props : int }

let create () =
  {
    names = Array.make 16 "";
    nvars = 0;
    lo0 = Array.make 16 0;
    hi0 = Array.make 16 0;
    constrs = [];
    nodes = 0;
    props = 0;
    objective = [];
    lp_constrs = [];
    aux = Array.make 16 false;
  }

let grow t =
  let cap = Array.length t.lo0 in
  if t.nvars >= cap then begin
    let lo = Array.make (2 * cap) 0 and hi = Array.make (2 * cap) 0 in
    let aux = Array.make (2 * cap) false in
    let names = Array.make (2 * cap) "" in
    Array.blit t.lo0 0 lo 0 cap;
    Array.blit t.hi0 0 hi 0 cap;
    Array.blit t.aux 0 aux 0 cap;
    Array.blit t.names 0 names 0 cap;
    t.lo0 <- lo;
    t.hi0 <- hi;
    t.aux <- aux;
    t.names <- names
  end

let var ?name ?(aux = false) t ~lo ~hi =
  if lo > hi then invalid_arg "Cp.var: lo > hi";
  grow t;
  let id = t.nvars in
  t.nvars <- id + 1;
  t.lo0.(id) <- lo;
  t.hi0.(id) <- hi;
  t.aux.(id) <- aux;
  t.names.(id) <- (match name with Some n -> n | None -> Printf.sprintf "v%d" id);
  id

let var_name t v = t.names.(v)
let var_count t = t.nvars

let linear_eq t terms rhs = t.constrs <- Linear { terms; eq = true; rhs } :: t.constrs
let linear_le t terms rhs = t.constrs <- Linear { terms; eq = false; rhs } :: t.constrs
let ge t x y = t.constrs <- Ge (x, y) :: t.constrs
let imply_pos t x y = t.constrs <- Imply_pos (x, y) :: t.constrs
let set_objective t terms = t.objective <- terms

let lp_linear_le t terms rhs =
  t.lp_constrs <- Linear { terms; eq = false; rhs } :: t.lp_constrs

let solution_of_fun t f = Array.init t.nvars (fun v -> f v)
let fun_of_solution a = fun v -> a.(v)

(* Canonical fingerprint of the population system: variable bounds and aux
   flags (creation order), constraints / LP rows / objective in posting
   order, names excluded — two systems differing only in variable names
   digest identically, and equal digests replay the exact same solve (the
   solver is deterministic in everything the digest covers). *)
let fingerprint t =
  let b = Buffer.create 256 in
  Buffer.add_string b "cp1\x00";
  Buffer.add_string b (string_of_int t.nvars);
  for v = 0 to t.nvars - 1 do
    Buffer.add_char b '\x01';
    Buffer.add_string b (string_of_int t.lo0.(v));
    Buffer.add_char b ',';
    Buffer.add_string b (string_of_int t.hi0.(v));
    if t.aux.(v) then Buffer.add_char b 'a'
  done;
  let add_terms terms =
    List.iter
      (fun (a, v) ->
        Buffer.add_string b (string_of_int a);
        Buffer.add_char b '*';
        Buffer.add_string b (string_of_int v);
        Buffer.add_char b ' ')
      terms
  in
  let add_constr c =
    match c with
    | Linear { terms; eq; rhs } ->
        Buffer.add_char b (if eq then 'E' else 'L');
        add_terms terms;
        Buffer.add_string b (string_of_int rhs)
    | Ge (x, y) ->
        Buffer.add_char b 'G';
        Buffer.add_string b (string_of_int x);
        Buffer.add_char b ',';
        Buffer.add_string b (string_of_int y)
    | Imply_pos (x, y) ->
        Buffer.add_char b 'I';
        Buffer.add_string b (string_of_int x);
        Buffer.add_char b ',';
        Buffer.add_string b (string_of_int y)
  in
  List.iter
    (fun c ->
      Buffer.add_char b '\x02';
      add_constr c)
    (List.rev t.constrs);
  Buffer.add_char b '\x03';
  List.iter
    (fun c ->
      Buffer.add_char b '\x02';
      add_constr c)
    (List.rev t.lp_constrs);
  Buffer.add_char b '\x04';
  add_terms t.objective;
  Digest.to_hex (Digest.string (Buffer.contents b))

exception Fail

(* --- event-driven kernel -------------------------------------------------

   The constraint store is compiled once per solve into flat arrays; each
   variable carries a watch list of the constraints mentioning it.
   Propagation runs a FIFO work queue of constraint indices seeded by the
   variables whose bounds changed, instead of sweeping the whole constraint
   list to fixpoint at every node.  Bounds-consistency propagators are
   monotone, so the event-driven fixpoint equals the naive sweep's fixpoint
   (the differential test in test_cp.ml checks this on random systems).

   Domains live in one (lo, hi) pair of arrays; every tightening pushes a
   (var, old_lo, old_hi) entry on a trail, and backtracking undoes the trail
   to a saved mark — no per-node domain copies. *)

type cc =
  | C_lin of { coefs : int array; cvars : int array; eq : bool; rhs : int }
  | C_ge of int * int
  | C_imp of int * int

type kernel = {
  cs : cc array;
  watch : int array array;  (* var -> indices of constraints mentioning it *)
  lo : int array;
  hi : int array;
  queue : int array;  (* FIFO ring of pending constraint indices *)
  mutable qhead : int;
  mutable qtail : int;
  on_q : bool array;  (* dedupe: constraint already pending *)
  mutable tr_var : int array;  (* trail of (var, old_lo, old_hi) *)
  mutable tr_lo : int array;
  mutable tr_hi : int array;
  mutable tr_len : int;
}

let compile t =
  let n = t.nvars in
  let cs =
    Array.of_list
      (List.rev_map
         (fun c ->
           match c with
           | Linear { terms; eq; rhs } ->
               let terms = Array.of_list terms in
               C_lin
                 {
                   coefs = Array.map fst terms;
                   cvars = Array.map snd terms;
                   eq;
                   rhs;
                 }
           | Ge (x, y) -> C_ge (x, y)
           | Imply_pos (x, y) -> C_imp (x, y))
         t.constrs)
  in
  let nc = Array.length cs in
  let deg = Array.make n 0 in
  let mention f =
    Array.iter
      (fun c ->
        match c with
        | C_lin { cvars; _ } -> Array.iter f cvars
        | C_ge (x, y) | C_imp (x, y) ->
            f x;
            f y)
      cs
  in
  mention (fun v -> deg.(v) <- deg.(v) + 1);
  let watch = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun ci c ->
      let add v =
        watch.(v).(fill.(v)) <- ci;
        fill.(v) <- fill.(v) + 1
      in
      match c with
      | C_lin { cvars; _ } -> Array.iter add cvars
      | C_ge (x, y) | C_imp (x, y) ->
          add x;
          add y)
    cs;
  {
    cs;
    watch;
    lo = Array.sub t.lo0 0 n;
    hi = Array.sub t.hi0 0 n;
    queue = Array.make (nc + 1) 0;
    qhead = 0;
    qtail = 0;
    on_q = Array.make nc false;
    tr_var = Array.make 64 0;
    tr_lo = Array.make 64 0;
    tr_hi = Array.make 64 0;
    tr_len = 0;
  }

let enqueue k c =
  if not k.on_q.(c) then begin
    k.on_q.(c) <- true;
    k.queue.(k.qtail) <- c;
    k.qtail <- (k.qtail + 1) mod Array.length k.queue
  end

let enqueue_watchers k v = Array.iter (fun c -> enqueue k c) k.watch.(v)

let enqueue_all k =
  for c = 0 to Array.length k.cs - 1 do
    enqueue k c
  done

(* drop pending work after a failed subtree *)
let reset_queue k =
  while k.qhead <> k.qtail do
    k.on_q.(k.queue.(k.qhead)) <- false;
    k.qhead <- (k.qhead + 1) mod Array.length k.queue
  done

let trail_push k v =
  let cap = Array.length k.tr_var in
  if k.tr_len >= cap then begin
    let tv = Array.make (2 * cap) 0
    and tl = Array.make (2 * cap) 0
    and th = Array.make (2 * cap) 0 in
    Array.blit k.tr_var 0 tv 0 cap;
    Array.blit k.tr_lo 0 tl 0 cap;
    Array.blit k.tr_hi 0 th 0 cap;
    k.tr_var <- tv;
    k.tr_lo <- tl;
    k.tr_hi <- th
  end;
  k.tr_var.(k.tr_len) <- v;
  k.tr_lo.(k.tr_len) <- k.lo.(v);
  k.tr_hi.(k.tr_len) <- k.hi.(v);
  k.tr_len <- k.tr_len + 1

let undo_to k mark =
  while k.tr_len > mark do
    k.tr_len <- k.tr_len - 1;
    let v = k.tr_var.(k.tr_len) in
    k.lo.(v) <- k.tr_lo.(k.tr_len);
    k.hi.(v) <- k.tr_hi.(k.tr_len)
  done

let tighten_lo k v x =
  if x > k.lo.(v) then begin
    trail_push k v;
    k.lo.(v) <- x;
    if x > k.hi.(v) then raise Fail;
    enqueue_watchers k v
  end

let tighten_hi k v x =
  if x < k.hi.(v) then begin
    trail_push k v;
    k.hi.(v) <- x;
    if k.lo.(v) > x then raise Fail;
    enqueue_watchers k v
  end

(* floor/ceil division for possibly negative numerators *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)

let prop_linear k coefs cvars eq rhs =
  let lo = k.lo and hi = k.hi in
  let nt = Array.length coefs in
  (* bounds of Σ a·x *)
  let sum_lo = ref 0 and sum_hi = ref 0 in
  for q = 0 to nt - 1 do
    let a = coefs.(q) and v = cvars.(q) in
    if a >= 0 then begin
      sum_lo := !sum_lo + (a * lo.(v));
      sum_hi := !sum_hi + (a * hi.(v))
    end
    else begin
      sum_lo := !sum_lo + (a * hi.(v));
      sum_hi := !sum_hi + (a * lo.(v))
    end
  done;
  if !sum_lo > rhs then raise Fail;
  if eq && !sum_hi < rhs then raise Fail;
  (* For each term, bound it by rhs minus the others' extreme sums. *)
  for q = 0 to nt - 1 do
    let a = coefs.(q) and v = cvars.(q) in
    if a <> 0 then begin
      let term_lo = if a >= 0 then a * lo.(v) else a * hi.(v) in
      let term_hi = if a >= 0 then a * hi.(v) else a * lo.(v) in
      let others_lo = !sum_lo - term_lo in
      let others_hi = !sum_hi - term_hi in
      (* a·x ≤ rhs - others_lo; for a < 0 divide by |a| with the bound
         negated — fdiv/cdiv require a positive divisor *)
      let ub = rhs - others_lo in
      if a > 0 then tighten_hi k v (fdiv ub a)
      else tighten_lo k v (cdiv (-ub) (-a));
      (* for equalities: a·x ≥ rhs - others_hi *)
      if eq then begin
        let lb = rhs - others_hi in
        if a > 0 then tighten_lo k v (cdiv lb a)
        else tighten_hi k v (fdiv (-lb) (-a))
      end
    end
  done

let run_propagator k c =
  match k.cs.(c) with
  | C_lin { coefs; cvars; eq; rhs } -> prop_linear k coefs cvars eq rhs
  | C_ge (x, y) ->
      tighten_lo k x k.lo.(y);
      tighten_hi k y k.hi.(x)
  | C_imp (x, y) ->
      if k.hi.(y) = 0 then tighten_hi k x 0;
      if k.lo.(x) > 0 then tighten_lo k y 1

(* Drain the work queue to fixpoint.  The pending flag is cleared before the
   propagator runs, so a propagator that tightens one of its own variables
   re-enqueues itself — exactly the naive sweep's keep-going-until-stable
   behaviour, restricted to constraints that can still act. *)
let propagate_queue t k =
  while k.qhead <> k.qtail do
    let c = k.queue.(k.qhead) in
    k.qhead <- (k.qhead + 1) mod Array.length k.queue;
    k.on_q.(c) <- false;
    t.props <- t.props + 1;
    (try run_propagator k c
     with Fail ->
       reset_queue k;
       raise Fail)
  done

(* Propagation-to-fixpoint on the initial domains, no search: exposed so the
   differential test can compare the event-driven fixpoint against a naive
   full-sweep reference.  Returns the fixpoint bounds, or [None] when
   propagation alone proves the system infeasible. *)
let root_fixpoint t =
  let k = compile t in
  enqueue_all k;
  match propagate_queue t k with
  | () -> Some (Array.copy k.lo, Array.copy k.hi)
  | exception Fail -> None

(* LP relaxation of the model, used to guide branching the way CP-SAT's
   internal LP does.  Equalities map directly; ≤ rows get a slack; Ge gets a
   slack; Imply_pos is ignored (it only matters at integrality).  Variable
   bounds become rows with slacks so the simplex respects them. *)
let lp_guess t lo hi =
  let n = t.nvars in
  let rows = ref [] in
  let n_slack = ref 0 in
  let add_row terms slack rhs = rows := (terms, slack, rhs) :: !rows in
  List.iter
    (fun c ->
      match c with
      | Linear { terms; eq = true; rhs } -> add_row terms None rhs
      | Linear { terms; eq = false; rhs } ->
          let s = !n_slack in
          incr n_slack;
          add_row terms (Some (s, 1.0)) rhs
      | Ge (x, y) ->
          (* x - y - s = 0 *)
          let s = !n_slack in
          incr n_slack;
          add_row [ (1, x); (-1, y) ] (Some (s, -1.0)) 0
      | Imply_pos _ -> ())
    (t.constrs @ t.lp_constrs);
  (* bounds x_v + s = hi_v and x_v - s' = lo_v (lo_v > 0 only) *)
  for v = 0 to n - 1 do
    let s = !n_slack in
    incr n_slack;
    add_row [ (1, v) ] (Some (s, 1.0)) hi.(v);
    if lo.(v) > 0 then begin
      let s' = !n_slack in
      incr n_slack;
      add_row [ (1, v) ] (Some (s', -1.0)) lo.(v)
    end
  done;
  let rows = List.rev !rows in
  let m = List.length rows in
  let total = n + !n_slack in
  let a = Array.make_matrix m total 0.0 in
  let b = Array.make m 0.0 in
  List.iteri
    (fun r (terms, slack, rhs) ->
      List.iter (fun (coef, v) -> a.(r).(v) <- a.(r).(v) +. float_of_int coef) terms;
      (match slack with Some (s, coef) -> a.(r).(n + s) <- coef | None -> ());
      b.(r) <- float_of_int rhs)
    rows;
  let c = Array.make total 0.0 in
  List.iter (fun (coef, v) -> c.(v) <- c.(v) +. float_of_int coef) t.objective;
  match Mirage_lp.Lp.solve ~a ~b ~c () with
  | Mirage_lp.Lp.Optimal x ->
      Some (Array.init n (fun v -> int_of_float (Float.round x.(v))))
  | Mirage_lp.Lp.Infeasible | Mirage_lp.Lp.Unbounded -> (
      (* the objective can stall the phase-II simplex on degenerate vertices;
         a pure feasibility solve is more robust *)
      match Mirage_lp.Lp.feasible_point ~a ~b () with
      | Some x -> Some (Array.init n (fun v -> int_of_float (Float.round x.(v))))
      | None ->
          if Sys.getenv_opt "CP_DEBUG" <> None then
            Printf.eprintf "[cp] LP relaxation failed (%d rows, %d cols)\n" m total;
          (match Sys.getenv_opt "CP_DUMP" with
          | Some path ->
              let oc = open_out path in
              List.iter
                (fun cstr ->
                  match cstr with
                  | Linear { terms; eq; rhs } ->
                      output_string oc
                        (String.concat " + "
                           (List.map (fun (a, v) -> Printf.sprintf "%d*x%d" a v) terms)
                        ^ (if eq then " = " else " <= ")
                        ^ string_of_int rhs ^ "\n")
                  | Ge (x, y) -> Printf.fprintf oc "x%d >= x%d\n" x y
                  | Imply_pos (x, y) -> Printf.fprintf oc "x%d>0 => x%d>0\n" x y)
                (List.rev t.constrs);
              for v = 0 to n - 1 do
                Printf.fprintf oc "bounds x%d in [%d,%d]\n" v lo.(v) hi.(v)
              done;
              close_out oc
          | None -> ());
          None)

(* Structure-aware repair of a candidate point.

   The key-generator models are transportation-like: a family of disjoint
   all-ones "partition" equalities (the covers) plus overlapping group sums.
   We (a) fix the partition equalities exactly by shifting within each group,
   then (b) repair the remaining constraints with {e swap moves} — increase
   one variable and decrease a partner from the same partition group that the
   violated constraint does not mention — which never break the covers.
   Ungrouped variables fall back to plain bounded shifts. *)
let repair_guess constrs lo hi g =
  let n = Array.length g in
  for v = 0 to n - 1 do
    if g.(v) < lo.(v) then g.(v) <- lo.(v);
    if g.(v) > hi.(v) then g.(v) <- hi.(v)
  done;
  let sum terms = List.fold_left (fun acc (a, v) -> acc + (a * g.(v))) 0 terms in
  (* partition groups: greedily take all-ones equalities over fresh vars, in
     posting order (constrs is a prepend list, so walk it reversed) *)
  let group_of = Array.make n (-1) in
  let groups = ref [] in
  List.iter
    (fun c ->
      match c with
      | Linear { terms; eq = true; rhs } when
          terms <> []
          && List.for_all (fun (a, v) -> a = 1 && group_of.(v) = -1) terms ->
          let gid = List.length !groups in
          List.iter (fun (_, v) -> group_of.(v) <- gid) terms;
          groups := (gid, List.map snd terms, rhs) :: !groups
      | Linear _ | Ge _ | Imply_pos _ -> ())
    (List.rev constrs);
  let group_members = Hashtbl.create 16 in
  List.iter (fun (gid, vs, _) -> Hashtbl.replace group_members gid vs) !groups;
  (* fix each partition equality exactly *)
  List.iter
    (fun (_, vs, rhs) ->
      let s = List.fold_left (fun acc v -> acc + g.(v)) 0 vs in
      let delta = ref (rhs - s) in
      List.iter
        (fun v ->
          if !delta <> 0 then begin
            let dv =
              if !delta > 0 then min !delta (hi.(v) - g.(v))
              else max !delta (lo.(v) - g.(v))
            in
            g.(v) <- g.(v) + dv;
            delta := !delta - dv
          end)
        vs)
    !groups;
  (* swap move: change v by ±1·amount, compensate within v's group on a
     partner outside [exclude] *)
  let in_set set v = Hashtbl.mem set v in
  let swap_toward exclude v want =
    (* want > 0: raise g.(v); want < 0: lower it; returns amount achieved *)
    if group_of.(v) = -1 then begin
      let dv =
        if want > 0 then min want (hi.(v) - g.(v))
        else max want (lo.(v) - g.(v))
      in
      g.(v) <- g.(v) + dv;
      dv
    end
    else begin
      let partners = Hashtbl.find group_members group_of.(v) in
      let achieved = ref 0 in
      List.iter
        (fun w ->
          if w <> v && (not (in_set exclude w)) && !achieved <> want then begin
            let remaining = want - !achieved in
            let dv =
              if remaining > 0 then
                min remaining (min (hi.(v) - g.(v)) (g.(w) - lo.(w)))
              else max remaining (max (lo.(v) - g.(v)) (g.(w) - hi.(w)))
            in
            if dv <> 0 then begin
              g.(v) <- g.(v) + dv;
              g.(w) <- g.(w) - dv;
              achieved := !achieved + dv
            end
          end)
        partners;
      !achieved
    end
  in
  let repair_linear terms eq rhs =
    let s = sum terms in
    let violated = if eq then s <> rhs else s > rhs in
    if violated then begin
      let exclude = Hashtbl.create (List.length terms) in
      List.iter (fun (_, v) -> Hashtbl.replace exclude v ()) terms;
      let delta = ref (rhs - s) in
      (* grouped variables first: their swap moves are side-effect-free for
         the covers, whereas plain shifts on free variables (e.g. the y
         aggregates) can oscillate against their defining rows *)
      let grouped, free =
        List.partition (fun (_, v) -> group_of.(v) <> -1) terms
      in
      List.iter
        (fun (a, v) ->
          if !delta <> 0 && a <> 0 then begin
            let want = !delta / a in
            if want <> 0 then begin
              let got = swap_toward exclude v want in
              delta := !delta - (a * got)
            end
          end)
        (grouped @ free);
      !delta = 0 || ((not eq) && !delta > 0)
    end
    else true
  in
  let debug = Sys.getenv_opt "CP_DEBUG" <> None in
  let ok = ref false in
  let passes = ref 0 in
  while (not !ok) && !passes < 100 do
    incr passes;
    ok := true;
    List.iter
      (fun c ->
        match c with
        | Linear { terms; eq; rhs } ->
            (* partition equalities stay exact under swap moves; repairing
               them again is harmless *)
            if not (repair_linear terms eq rhs) then ok := false
        | Ge (x, y) ->
            if g.(x) < g.(y) then begin
              let exclude = Hashtbl.create 2 in
              Hashtbl.replace exclude x ();
              Hashtbl.replace exclude y ();
              ignore (swap_toward exclude y (g.(x) - g.(y)));
              if g.(x) < g.(y) then
                ignore (swap_toward exclude x (g.(y) - g.(x)));
              if g.(x) < g.(y) then ok := false
            end
        | Imply_pos (x, y) ->
            if g.(x) > 0 && g.(y) = 0 then begin
              if hi.(y) >= 1 && group_of.(y) = -1 then g.(y) <- 1
              else begin
                let exclude = Hashtbl.create 2 in
                Hashtbl.replace exclude x ();
                if hi.(y) >= 1 then ignore (swap_toward exclude y 1);
                if g.(y) = 0 then begin
                  let exclude2 = Hashtbl.create 2 in
                  Hashtbl.replace exclude2 y ();
                  ignore (swap_toward exclude2 x (-g.(x)))
                end
              end;
              if g.(x) > 0 && g.(y) = 0 then ok := false
            end)
      constrs;
    (* verify everything still holds *)
    if !ok then
      List.iter
        (fun c ->
          match c with
          | Linear { terms; eq; rhs } ->
              let s = sum terms in
              if (eq && s <> rhs) || ((not eq) && s > rhs) then ok := false
          | Ge (x, y) -> if g.(x) < g.(y) then ok := false
          | Imply_pos (x, y) -> if g.(x) > 0 && g.(y) = 0 then ok := false)
        constrs
  done;
  if debug && not !ok then begin
    Printf.eprintf "[cp] repair failed after %d passes; residual violations:\n" !passes;
    List.iter
      (fun c ->
        match c with
        | Linear { terms; eq; rhs } ->
            let s = sum terms in
            if (eq && s <> rhs) || ((not eq) && s > rhs) then
              Printf.eprintf "  linear %s rhs=%d sum=%d nvars=%d\n"
                (if eq then "=" else "<=") rhs s (List.length terms)
        | Ge (x, y) ->
            if g.(x) < g.(y) then
              Printf.eprintf "  ge v%d(%d) < v%d(%d)\n" x g.(x) y g.(y)
        | Imply_pos (x, y) ->
            if g.(x) > 0 && g.(y) = 0 then Printf.eprintf "  imply v%d>0 v%d=0\n" x y)
      constrs
  end;
  !ok

let solve ?(max_nodes = 1_000_000) ?(lp_guide = true) ?(interrupt = fun () -> ()) t =
  (* cooperative cancellation point before any work: a tripped budget stops
     a solve that has not even started *)
  interrupt ();
  t.nodes <- 0;
  t.props <- 0;
  let n = t.nvars in
  let lo0 = Array.sub t.lo0 0 n and hi0 = Array.sub t.hi0 0 n in
  let constrs = t.constrs in
  let guess = if n = 0 || not lp_guide then None else lp_guess t lo0 hi0 in
  if Sys.getenv_opt "CP_DEBUG" <> None then
    Printf.eprintf "[cp] solve: %d vars, %d constraints, LP guess: %s\n" n
      (List.length constrs)
      (match guess with Some _ -> "found" | None -> "NONE");
  let stats restarts =
    { st_nodes = t.nodes; st_restarts = restarts; st_props = t.props }
  in
  (* fast path: a repaired LP point satisfying everything is a solution *)
  match
    match guess with
    | Some g when repair_guess constrs lo0 hi0 g -> Some g
    | _ -> None
  with
  | Some g ->
      t.nodes <- 1;
      (Sat (fun v -> g.(v)), stats 0)
  | None ->
  let guess =
    (* even a partial repair improves the search's value ordering *)
    match guess with
    | Some g ->
        ignore (repair_guess constrs lo0 hi0 g);
        Some g
    | None -> None
  in
  let exception Found of int array in
  let exception Out_of_nodes in
  let k = compile t in
  (* One bounded DFS attempt on the shared kernel state.  [salt]
     deterministically perturbs the variable tie-breaking scan origin and the
     order of the two value half-ranges, so each restart explores a genuinely
     different tree; [deadline] is a bound on the cumulative node counter, so
     the whole ladder respects [max_nodes]. *)
  let attempt ~salt ~deadline =
    let scan_start = if n = 0 then 0 else salt * 7919 mod n in
    let flip = salt land 1 = 1 in
    let lo = k.lo and hi = k.hi in
    let rec search () =
      t.nodes <- t.nodes + 1;
      if t.nodes > deadline then raise Out_of_nodes;
      (* cancellation point every 64 nodes: whatever [interrupt] raises
         aborts the whole ladder, trail state and all — the model is
         discarded by the caller *)
      if t.nodes land 63 = 0 then interrupt ();
      propagate_queue t k;
      (* choose the unfixed non-auxiliary variable with the widest domain;
         ties break by the salt-rotated scan order *)
      let best = ref (-1) in
      let best_width = ref 0 in
      for vi = 0 to n - 1 do
        let v = (vi + scan_start) mod n in
        let w = hi.(v) - lo.(v) in
        if w > !best_width && not t.aux.(v) then begin
          best := v;
          best_width := w
        end
      done;
      if !best = -1 then raise (Found (Array.copy lo))
      else begin
        let v = !best in
        (* value ordering: try the LP relaxation's (rounded, clamped) value
           first, then the halves below and above it *)
        let g =
          match guess with
          | Some arr -> min hi.(v) (max lo.(v) arr.(v))
          | None -> lo.(v)
        in
        let try_range l h =
          if l <= h then begin
            let mark = k.tr_len in
            try
              tighten_lo k v l;
              tighten_hi k v h;
              search ()
            with Fail ->
              reset_queue k;
              undo_to k mark
          end
        in
        (* the last branch propagates failure upward instead of swallowing;
           the catching ancestor unwinds the trail past this frame *)
        let last_range l h =
          if l <= h then begin
            tighten_lo k v l;
            tighten_hi k v h;
            search ()
          end
          else raise Fail
        in
        try_range g g;
        if flip then begin
          try_range (g + 1) hi.(v);
          last_range lo.(v) (g - 1)
        end
        else begin
          try_range lo.(v) (g - 1);
          last_range (g + 1) hi.(v)
        end
      end
    in
    (* fresh attempt: restore the root domains, clear trail and queue, and
       seed the queue with every constraint (the root full propagation) *)
    undo_to k 0;
    reset_queue k;
    Array.blit lo0 0 k.lo 0 n;
    Array.blit hi0 0 k.hi 0 n;
    enqueue_all k;
    search ()
  in
  (* Randomized-restart ladder with escalating budgets: an [Out_of_nodes]
     attempt restarts with twice the budget and a fresh perturbation.  An
     Unsat proof is definitive at any budget (Fail is only raised when a
     subtree is exhausted, never on the node limit), so only node-limited
     attempts escalate. *)
  let rec ladder ~restart ~budget =
    let deadline = min max_nodes (t.nodes + budget) in
    match attempt ~salt:restart ~deadline with
    | () -> (Unsat, stats restart) (* root propagation failed: unreachable *)
    | exception Fail -> (Unsat, stats restart)
    | exception Found a -> (Sat (fun v -> a.(v)), stats restart)
    | exception Out_of_nodes ->
        if t.nodes >= max_nodes then (Unknown, stats restart)
        else ladder ~restart:(restart + 1) ~budget:(2 * budget)
  in
  ladder ~restart:0 ~budget:(max 1_000 (max_nodes / 8))

let stats_nodes t = t.nodes
let stats_props t = t.props

let debug_lp_guess t =
  let n = t.nvars in
  let lo = Array.sub t.lo0 0 n and hi = Array.sub t.hi0 0 n in
  lp_guess t lo hi
