type var = int

type constr =
  | Linear of { terms : (int * var) list; eq : bool; rhs : int }
      (** [Σ a·x (= | ≤) rhs] *)
  | Ge of var * var  (** x ≥ y *)
  | Imply_pos of var * var  (** x > 0 ⇒ y > 0 *)

type t = {
  mutable names : string list;  (* reversed *)
  mutable nvars : int;
  mutable lo0 : int array;  (* initial bounds, grown on demand *)
  mutable hi0 : int array;
  mutable constrs : constr list;
  mutable watch : var list array;  (* var -> constraint indices, built at solve *)
  mutable nodes : int;
  mutable objective : (int * var) list;  (* LP-guide objective, minimised *)
  mutable lp_constrs : constr list;  (* rows seen only by the LP relaxation *)
  mutable aux : bool array;  (* auxiliary vars the search never branches on *)
}

type outcome = Sat of (var -> int) | Unsat | Unknown

type stats = { st_nodes : int; st_restarts : int }

let create () =
  {
    names = [];
    nvars = 0;
    lo0 = Array.make 16 0;
    hi0 = Array.make 16 0;
    constrs = [];
    watch = [||];
    nodes = 0;
    objective = [];
    lp_constrs = [];
    aux = Array.make 16 false;
  }

let grow t =
  let cap = Array.length t.lo0 in
  if t.nvars >= cap then begin
    let lo = Array.make (2 * cap) 0 and hi = Array.make (2 * cap) 0 in
    let aux = Array.make (2 * cap) false in
    Array.blit t.lo0 0 lo 0 cap;
    Array.blit t.hi0 0 hi 0 cap;
    Array.blit t.aux 0 aux 0 cap;
    t.lo0 <- lo;
    t.hi0 <- hi;
    t.aux <- aux
  end

let var ?name ?(aux = false) t ~lo ~hi =
  if lo > hi then invalid_arg "Cp.var: lo > hi";
  grow t;
  let id = t.nvars in
  t.nvars <- id + 1;
  t.lo0.(id) <- lo;
  t.hi0.(id) <- hi;
  t.aux.(id) <- aux;
  t.names <- (match name with Some n -> n | None -> Printf.sprintf "v%d" id) :: t.names;
  id

let var_name t v = List.nth t.names (t.nvars - 1 - v)
let var_count t = t.nvars

let linear_eq t terms rhs = t.constrs <- Linear { terms; eq = true; rhs } :: t.constrs
let linear_le t terms rhs = t.constrs <- Linear { terms; eq = false; rhs } :: t.constrs
let ge t x y = t.constrs <- Ge (x, y) :: t.constrs
let imply_pos t x y = t.constrs <- Imply_pos (x, y) :: t.constrs
let set_objective t terms = t.objective <- terms

let lp_linear_le t terms rhs =
  t.lp_constrs <- Linear { terms; eq = false; rhs } :: t.lp_constrs

exception Fail

(* Bounds-consistency propagation to fixpoint over interval domains [lo, hi].
   Returns the updated domains or raises Fail. *)
let propagate constrs lo hi =
  let changed = ref true in
  let tighten_lo v x =
    if x > lo.(v) then begin
      lo.(v) <- x;
      if lo.(v) > hi.(v) then raise Fail;
      changed := true
    end
  in
  let tighten_hi v x =
    if x < hi.(v) then begin
      hi.(v) <- x;
      if lo.(v) > hi.(v) then raise Fail;
      changed := true
    end
  in
  (* floor/ceil division for possibly negative numerators *)
  let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
  let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b) in
  let prop_linear terms eq rhs =
    (* bounds of Σ a·x *)
    let sum_lo = ref 0 and sum_hi = ref 0 in
    List.iter
      (fun (a, v) ->
        if a >= 0 then begin
          sum_lo := !sum_lo + (a * lo.(v));
          sum_hi := !sum_hi + (a * hi.(v))
        end
        else begin
          sum_lo := !sum_lo + (a * hi.(v));
          sum_hi := !sum_hi + (a * lo.(v))
        end)
      terms;
    if !sum_lo > rhs then raise Fail;
    if eq && !sum_hi < rhs then raise Fail;
    (* For each term, bound it by rhs minus the others' extreme sums. *)
    List.iter
      (fun (a, v) ->
        if a <> 0 then begin
          let term_lo = if a >= 0 then a * lo.(v) else a * hi.(v) in
          let term_hi = if a >= 0 then a * hi.(v) else a * lo.(v) in
          let others_lo = !sum_lo - term_lo in
          let others_hi = !sum_hi - term_hi in
          (* a·x ≤ rhs - others_lo *)
          let ub = rhs - others_lo in
          if a > 0 then tighten_hi v (fdiv ub a) else tighten_lo v (cdiv ub a);
          (* for equalities: a·x ≥ rhs - others_hi *)
          if eq then begin
            let lb = rhs - others_hi in
            if a > 0 then tighten_lo v (cdiv lb a) else tighten_hi v (fdiv lb a)
          end
        end)
      terms
  in
  while !changed do
    changed := false;
    List.iter
      (fun c ->
        match c with
        | Linear { terms; eq; rhs } -> prop_linear terms eq rhs
        | Ge (x, y) ->
            tighten_lo x lo.(y);
            tighten_hi y hi.(x)
        | Imply_pos (x, y) ->
            if hi.(y) = 0 then tighten_hi x 0;
            if lo.(x) > 0 then tighten_lo y 1)
      constrs
  done

(* LP relaxation of the model, used to guide branching the way CP-SAT's
   internal LP does.  Equalities map directly; ≤ rows get a slack; Ge gets a
   slack; Imply_pos is ignored (it only matters at integrality).  Variable
   bounds become rows with slacks so the simplex respects them. *)
let lp_guess t lo hi =
  let n = t.nvars in
  let rows = ref [] in
  let n_slack = ref 0 in
  let add_row terms slack rhs = rows := (terms, slack, rhs) :: !rows in
  List.iter
    (fun c ->
      match c with
      | Linear { terms; eq = true; rhs } -> add_row terms None rhs
      | Linear { terms; eq = false; rhs } ->
          let s = !n_slack in
          incr n_slack;
          add_row terms (Some (s, 1.0)) rhs
      | Ge (x, y) ->
          (* x - y - s = 0 *)
          let s = !n_slack in
          incr n_slack;
          add_row [ (1, x); (-1, y) ] (Some (s, -1.0)) 0
      | Imply_pos _ -> ())
    (t.constrs @ t.lp_constrs);
  (* bounds x_v + s = hi_v and x_v - s' = lo_v (lo_v > 0 only) *)
  for v = 0 to n - 1 do
    let s = !n_slack in
    incr n_slack;
    add_row [ (1, v) ] (Some (s, 1.0)) hi.(v);
    if lo.(v) > 0 then begin
      let s' = !n_slack in
      incr n_slack;
      add_row [ (1, v) ] (Some (s', -1.0)) lo.(v)
    end
  done;
  let rows = List.rev !rows in
  let m = List.length rows in
  let total = n + !n_slack in
  let a = Array.make_matrix m total 0.0 in
  let b = Array.make m 0.0 in
  List.iteri
    (fun r (terms, slack, rhs) ->
      List.iter (fun (coef, v) -> a.(r).(v) <- a.(r).(v) +. float_of_int coef) terms;
      (match slack with Some (s, coef) -> a.(r).(n + s) <- coef | None -> ());
      b.(r) <- float_of_int rhs)
    rows;
  let c = Array.make total 0.0 in
  List.iter (fun (coef, v) -> c.(v) <- c.(v) +. float_of_int coef) t.objective;
  match Mirage_lp.Lp.solve ~a ~b ~c () with
  | Mirage_lp.Lp.Optimal x ->
      Some (Array.init n (fun v -> int_of_float (Float.round x.(v))))
  | Mirage_lp.Lp.Infeasible | Mirage_lp.Lp.Unbounded -> (
      (* the objective can stall the phase-II simplex on degenerate vertices;
         a pure feasibility solve is more robust *)
      match Mirage_lp.Lp.feasible_point ~a ~b () with
      | Some x -> Some (Array.init n (fun v -> int_of_float (Float.round x.(v))))
      | None ->
          if Sys.getenv_opt "CP_DEBUG" <> None then
            Printf.eprintf "[cp] LP relaxation failed (%d rows, %d cols)\n" m total;
          (match Sys.getenv_opt "CP_DUMP" with
          | Some path ->
              let oc = open_out path in
              List.iter
                (fun cstr ->
                  match cstr with
                  | Linear { terms; eq; rhs } ->
                      output_string oc
                        (String.concat " + "
                           (List.map (fun (a, v) -> Printf.sprintf "%d*x%d" a v) terms)
                        ^ (if eq then " = " else " <= ")
                        ^ string_of_int rhs ^ "\n")
                  | Ge (x, y) -> Printf.fprintf oc "x%d >= x%d\n" x y
                  | Imply_pos (x, y) -> Printf.fprintf oc "x%d>0 => x%d>0\n" x y)
                (List.rev t.constrs);
              for v = 0 to n - 1 do
                Printf.fprintf oc "bounds x%d in [%d,%d]\n" v lo.(v) hi.(v)
              done;
              close_out oc
          | None -> ());
          None)

(* Structure-aware repair of a candidate point.

   The key-generator models are transportation-like: a family of disjoint
   all-ones "partition" equalities (the covers) plus overlapping group sums.
   We (a) fix the partition equalities exactly by shifting within each group,
   then (b) repair the remaining constraints with {e swap moves} — increase
   one variable and decrease a partner from the same partition group that the
   violated constraint does not mention — which never break the covers.
   Ungrouped variables fall back to plain bounded shifts. *)
let repair_guess constrs lo hi g =
  let n = Array.length g in
  for v = 0 to n - 1 do
    if g.(v) < lo.(v) then g.(v) <- lo.(v);
    if g.(v) > hi.(v) then g.(v) <- hi.(v)
  done;
  let sum terms = List.fold_left (fun acc (a, v) -> acc + (a * g.(v))) 0 terms in
  (* partition groups: greedily take all-ones equalities over fresh vars, in
     posting order (constrs is a prepend list, so walk it reversed) *)
  let group_of = Array.make n (-1) in
  let groups = ref [] in
  List.iter
    (fun c ->
      match c with
      | Linear { terms; eq = true; rhs } when
          terms <> []
          && List.for_all (fun (a, v) -> a = 1 && group_of.(v) = -1) terms ->
          let gid = List.length !groups in
          List.iter (fun (_, v) -> group_of.(v) <- gid) terms;
          groups := (gid, List.map snd terms, rhs) :: !groups
      | Linear _ | Ge _ | Imply_pos _ -> ())
    (List.rev constrs);
  let group_members = Hashtbl.create 16 in
  List.iter (fun (gid, vs, _) -> Hashtbl.replace group_members gid vs) !groups;
  (* fix each partition equality exactly *)
  List.iter
    (fun (_, vs, rhs) ->
      let s = List.fold_left (fun acc v -> acc + g.(v)) 0 vs in
      let delta = ref (rhs - s) in
      List.iter
        (fun v ->
          if !delta <> 0 then begin
            let dv =
              if !delta > 0 then min !delta (hi.(v) - g.(v))
              else max !delta (lo.(v) - g.(v))
            in
            g.(v) <- g.(v) + dv;
            delta := !delta - dv
          end)
        vs)
    !groups;
  (* swap move: change v by ±1·amount, compensate within v's group on a
     partner outside [exclude] *)
  let in_set set v = Hashtbl.mem set v in
  let swap_toward exclude v want =
    (* want > 0: raise g.(v); want < 0: lower it; returns amount achieved *)
    if group_of.(v) = -1 then begin
      let dv =
        if want > 0 then min want (hi.(v) - g.(v))
        else max want (lo.(v) - g.(v))
      in
      g.(v) <- g.(v) + dv;
      dv
    end
    else begin
      let partners = Hashtbl.find group_members group_of.(v) in
      let achieved = ref 0 in
      List.iter
        (fun w ->
          if w <> v && (not (in_set exclude w)) && !achieved <> want then begin
            let remaining = want - !achieved in
            let dv =
              if remaining > 0 then
                min remaining (min (hi.(v) - g.(v)) (g.(w) - lo.(w)))
              else max remaining (max (lo.(v) - g.(v)) (g.(w) - hi.(w)))
            in
            if dv <> 0 then begin
              g.(v) <- g.(v) + dv;
              g.(w) <- g.(w) - dv;
              achieved := !achieved + dv
            end
          end)
        partners;
      !achieved
    end
  in
  let repair_linear terms eq rhs =
    let s = sum terms in
    let violated = if eq then s <> rhs else s > rhs in
    if violated then begin
      let exclude = Hashtbl.create (List.length terms) in
      List.iter (fun (_, v) -> Hashtbl.replace exclude v ()) terms;
      let delta = ref (rhs - s) in
      (* grouped variables first: their swap moves are side-effect-free for
         the covers, whereas plain shifts on free variables (e.g. the y
         aggregates) can oscillate against their defining rows *)
      let grouped, free =
        List.partition (fun (_, v) -> group_of.(v) <> -1) terms
      in
      List.iter
        (fun (a, v) ->
          if !delta <> 0 && a <> 0 then begin
            let want = !delta / a in
            if want <> 0 then begin
              let got = swap_toward exclude v want in
              delta := !delta - (a * got)
            end
          end)
        (grouped @ free);
      !delta = 0 || ((not eq) && !delta > 0)
    end
    else true
  in
  let debug = Sys.getenv_opt "CP_DEBUG" <> None in
  let ok = ref false in
  let passes = ref 0 in
  while (not !ok) && !passes < 100 do
    incr passes;
    ok := true;
    List.iter
      (fun c ->
        match c with
        | Linear { terms; eq; rhs } ->
            (* partition equalities stay exact under swap moves; repairing
               them again is harmless *)
            if not (repair_linear terms eq rhs) then ok := false
        | Ge (x, y) ->
            if g.(x) < g.(y) then begin
              let exclude = Hashtbl.create 2 in
              Hashtbl.replace exclude x ();
              Hashtbl.replace exclude y ();
              ignore (swap_toward exclude y (g.(x) - g.(y)));
              if g.(x) < g.(y) then
                ignore (swap_toward exclude x (g.(y) - g.(x)));
              if g.(x) < g.(y) then ok := false
            end
        | Imply_pos (x, y) ->
            if g.(x) > 0 && g.(y) = 0 then begin
              if hi.(y) >= 1 && group_of.(y) = -1 then g.(y) <- 1
              else begin
                let exclude = Hashtbl.create 2 in
                Hashtbl.replace exclude x ();
                if hi.(y) >= 1 then ignore (swap_toward exclude y 1);
                if g.(y) = 0 then begin
                  let exclude2 = Hashtbl.create 2 in
                  Hashtbl.replace exclude2 y ();
                  ignore (swap_toward exclude2 x (-g.(x)))
                end
              end;
              if g.(x) > 0 && g.(y) = 0 then ok := false
            end)
      constrs;
    (* verify everything still holds *)
    if !ok then
      List.iter
        (fun c ->
          match c with
          | Linear { terms; eq; rhs } ->
              let s = sum terms in
              if (eq && s <> rhs) || ((not eq) && s > rhs) then ok := false
          | Ge (x, y) -> if g.(x) < g.(y) then ok := false
          | Imply_pos (x, y) -> if g.(x) > 0 && g.(y) = 0 then ok := false)
        constrs
  done;
  if debug && not !ok then begin
    Printf.eprintf "[cp] repair failed after %d passes; residual violations:\n" !passes;
    List.iter
      (fun c ->
        match c with
        | Linear { terms; eq; rhs } ->
            let s = sum terms in
            if (eq && s <> rhs) || ((not eq) && s > rhs) then
              Printf.eprintf "  linear %s rhs=%d sum=%d nvars=%d\n"
                (if eq then "=" else "<=") rhs s (List.length terms)
        | Ge (x, y) ->
            if g.(x) < g.(y) then
              Printf.eprintf "  ge v%d(%d) < v%d(%d)\n" x g.(x) y g.(y)
        | Imply_pos (x, y) ->
            if g.(x) > 0 && g.(y) = 0 then Printf.eprintf "  imply v%d>0 v%d=0\n" x y)
      constrs
  end;
  !ok

let solve ?(max_nodes = 1_000_000) ?(lp_guide = true) t =
  t.nodes <- 0;
  let n = t.nvars in
  let lo0 = Array.sub t.lo0 0 n and hi0 = Array.sub t.hi0 0 n in
  let constrs = t.constrs in
  let guess = if n = 0 || not lp_guide then None else lp_guess t lo0 hi0 in
  if Sys.getenv_opt "CP_DEBUG" <> None then
    Printf.eprintf "[cp] solve: %d vars, %d constraints, LP guess: %s\n" n
      (List.length constrs)
      (match guess with Some _ -> "found" | None -> "NONE");
  let stats restarts = { st_nodes = t.nodes; st_restarts = restarts } in
  (* fast path: a repaired LP point satisfying everything is a solution *)
  match
    match guess with
    | Some g when repair_guess constrs lo0 hi0 g -> Some g
    | _ -> None
  with
  | Some g ->
      t.nodes <- 1;
      (Sat (fun v -> g.(v)), stats 0)
  | None ->
  let guess =
    (* even a partial repair improves the search's value ordering *)
    match guess with
    | Some g ->
        ignore (repair_guess constrs lo0 hi0 g);
        Some g
    | None -> None
  in
  let exception Found of int array in
  let exception Out_of_nodes in
  (* One bounded DFS attempt.  [salt] deterministically perturbs the variable
     tie-breaking scan origin and the order of the two value half-ranges, so
     each restart explores a genuinely different tree; [deadline] is a bound
     on the cumulative node counter, so the whole ladder respects
     [max_nodes]. *)
  let attempt ~salt ~deadline =
    let scan_start = if n = 0 then 0 else salt * 7919 mod n in
    let flip = salt land 1 = 1 in
    let rec search lo hi =
      t.nodes <- t.nodes + 1;
      if t.nodes > deadline then raise Out_of_nodes;
      (match propagate constrs lo hi with () -> ());
      (* choose the unfixed non-auxiliary variable with the widest domain;
         ties break by the salt-rotated scan order *)
      let best = ref (-1) in
      let best_width = ref 0 in
      for vi = 0 to n - 1 do
        let v = (vi + scan_start) mod n in
        let w = hi.(v) - lo.(v) in
        if w > !best_width && not t.aux.(v) then begin
          best := v;
          best_width := w
        end
      done;
      if !best = -1 then raise (Found (Array.copy lo))
      else begin
        let v = !best in
        (* value ordering: try the LP relaxation's (rounded, clamped) value
           first, then the halves below and above it *)
        let g =
          match guess with
          | Some arr -> min hi.(v) (max lo.(v) arr.(v))
          | None -> lo.(v)
        in
        let try_range l h =
          if l <= h then begin
            try
              let lo' = Array.copy lo and hi' = Array.copy hi in
              lo'.(v) <- l;
              hi'.(v) <- h;
              search lo' hi'
            with Fail -> ()
          end
        in
        (* the last branch propagates failure upward instead of swallowing *)
        let last_range l h =
          if l <= h then begin
            let lo' = Array.copy lo and hi' = Array.copy hi in
            lo'.(v) <- l;
            hi'.(v) <- h;
            search lo' hi'
          end
          else raise Fail
        in
        try_range g g;
        if flip then begin
          try_range (g + 1) hi.(v);
          last_range lo.(v) (g - 1)
        end
        else begin
          try_range lo.(v) (g - 1);
          last_range (g + 1) hi.(v)
        end
      end
    in
    search (Array.copy lo0) (Array.copy hi0)
  in
  (* Randomized-restart ladder with escalating budgets: an [Out_of_nodes]
     attempt restarts with twice the budget and a fresh perturbation.  An
     Unsat proof is definitive at any budget (Fail is only raised when a
     subtree is exhausted, never on the node limit), so only node-limited
     attempts escalate. *)
  let rec ladder ~restart ~budget =
    let deadline = min max_nodes (t.nodes + budget) in
    match attempt ~salt:restart ~deadline with
    | () -> (Unsat, stats restart) (* root propagation failed: unreachable *)
    | exception Fail -> (Unsat, stats restart)
    | exception Found a -> (Sat (fun v -> a.(v)), stats restart)
    | exception Out_of_nodes ->
        if t.nodes >= max_nodes then (Unknown, stats restart)
        else ladder ~restart:(restart + 1) ~budget:(2 * budget)
  in
  ladder ~restart:0 ~budget:(max 1_000 (max_nodes / 8))

let stats_nodes t = t.nodes

let debug_lp_guess t =
  let n = t.nvars in
  let lo = Array.sub t.lo0 0 n and hi = Array.sub t.hi0 0 n in
  lp_guess t lo hi
