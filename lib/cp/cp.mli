(** Finite-domain constraint-programming solver (the paper uses Google
    OR-Tools [19]; this is our from-scratch substitute, see DESIGN.md).

    Variables range over integer intervals.  Supported constraints:
    - linear equalities / inequalities [Σ aᵢ·xᵢ (= | ≤) c],
    - pairwise order [x ≥ y],
    - positivity implications [x > 0 ⇒ y > 0].

    The solver interleaves bounds-consistency propagation with
    depth-first domain-splitting search ("constraint propagation to prune
    the search space", §5.2).  It is complete: given enough nodes it either
    finds a feasible assignment or proves unsatisfiability.

    The core is an event-driven kernel: the constraint store is compiled to
    flat arrays with per-variable watch lists, propagation drains a work
    queue seeded only by variables whose bounds changed, and backtracking
    undoes a (var, old_lo, old_hi) trail to a saved mark instead of copying
    the domain arrays at every node (see DESIGN.md, "CP kernel"). *)

type t
type var

type outcome =
  | Sat of (var -> int)  (** feasible assignment *)
  | Unsat
  | Unknown  (** node limit exhausted *)

type stats = {
  st_nodes : int;  (** search nodes explored, cumulative across restarts *)
  st_restarts : int;  (** restarts taken by the escalating-budget ladder *)
  st_props : int;
      (** propagator executions (work-queue pops), cumulative across
          restarts — the cost the event-driven kernel minimises *)
}

val create : unit -> t

val var : ?name:string -> ?aux:bool -> t -> lo:int -> hi:int -> var
(** New variable with inclusive bounds.  [aux] variables participate in
    LP-only rows but are never branched on by the search.
    @raise Invalid_argument if [lo > hi]. *)

val var_name : t -> var -> string
val var_count : t -> int

val linear_eq : t -> (int * var) list -> int -> unit
(** [linear_eq t terms c] posts [Σ coeff·var = c]. *)

val linear_le : t -> (int * var) list -> int -> unit
(** [linear_le t terms c] posts [Σ coeff·var ≤ c]. *)

val lp_linear_le : t -> (int * var) list -> int -> unit
(** Like {!linear_le}, but the row is seen only by the internal LP
    relaxation (to shape the branching guide), not by propagation or the
    feasibility check — use for redundant capacity hints. *)

val ge : t -> var -> var -> unit
(** [ge t x y] posts [x ≥ y]. *)

val imply_pos : t -> var -> var -> unit
(** [imply_pos t x y] posts [x > 0 ⇒ y > 0]. *)

val solve :
  ?max_nodes:int -> ?lp_guide:bool -> ?interrupt:(unit -> unit) -> t ->
  outcome * stats
(** [interrupt] is a cooperative cancellation point, called before the solve
    starts and every 64 search nodes; whatever it raises (typically
    {!Mirage_util.Budget.Exceeded}) aborts the search and propagates to the
    caller — use it to enforce wall-clock deadlines or heap watermarks on
    runaway solves.  It must not raise spuriously: the default does nothing.

    Default node limit 1_000_000 (cumulative across restarts).  [lp_guide]
    (default on) computes an LP relaxation to repair into a fast solution and
    to order branching values; disabling it leaves pure propagation + DFS
    (the ablation baseline).

    When an attempt exhausts its node budget the solver restarts
    deterministically with an escalating budget (starting at [max_nodes / 8],
    doubling per restart) and a perturbed variable/value ordering, until the
    cumulative budget is spent.  An [Unsat] answer is a proof and is returned
    immediately at any budget; [Unknown] means every attempt was node-limited.
    Search statistics are returned alongside every outcome. *)

val stats_nodes : t -> int
(** Search nodes explored by the last [solve] call (same as [st_nodes]). *)

val stats_props : t -> int
(** Propagator executions in the last [solve] call (same as [st_props]). *)

val fingerprint : t -> string
(** Canonical digest of the population system: variable bounds and aux flags
    in creation order plus constraints, LP-only rows and the objective in
    posting order — variable {e names} are excluded, so two structurally
    identical systems that differ only in naming digest identically.  The
    solver is deterministic in exactly what the digest covers, hence equal
    fingerprints (with equal solve options) yield identical outcomes — the
    contract the keygen solve cache relies on. *)

val root_fixpoint : t -> (int array * int array) option
(** Bounds-consistency propagation to fixpoint on the initial domains, no
    search: [Some (lo, hi)] with the tightened bounds per variable, or
    [None] when propagation alone proves infeasibility.  Exposed for the
    kernel-equivalence differential test. *)

val solution_of_fun : t -> (var -> int) -> int array
(** Materialise a [Sat] assignment as a plain array in variable-creation
    order (for caching / serialisation). *)

val fun_of_solution : int array -> var -> int
(** Inverse of {!solution_of_fun}. *)

(**/**)

val debug_lp_guess : t -> int array option
(** Internal: expose the LP relaxation guess for diagnostics. *)

val set_objective : t -> (int * var) list -> unit
(** Objective (minimised) used only by the internal LP relaxation to pick
    good branching values; the search itself remains pure feasibility. *)
